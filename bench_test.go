// Package repro's benchmark suite regenerates every table and figure
// of the CIAO paper's evaluation (run with `go test -bench=. -benchmem`).
// Each benchmark drives the corresponding experiment end-to-end and
// reports the headline quantities as custom metrics, so the paper's
// rows can be read straight from the -bench output. Simulation length
// is shortened (benchInstr) to keep the full suite tractable; use
// cmd/ciaosim for full-length runs.
package repro_test

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sched"
	"repro/internal/sm"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// benchInstr is the per-warp instruction budget for benchmark runs.
const benchInstr = 1500

func benchOpt() harness.Options {
	return harness.Options{InstrPerWarp: benchInstr, Parallelism: 0}
}

// BenchmarkTable1Config verifies and times construction of the Table I
// machine.
func BenchmarkTable1Config(b *testing.B) {
	spec, err := workload.ByName("SYRK")
	if err != nil {
		b.Fatal(err)
	}
	spec.InstrPerWarp = benchInstr
	for i := 0; i < b.N; i++ {
		cfg := sm.DefaultConfig()
		cfg.EnableSharedCache = true
		g := sm.MustGPU(cfg, workload.MustKernel(spec), core.NewC(), nil)
		if g.L1().Config().Sets() != 32 {
			b.Fatal("Table I L1D geometry wrong")
		}
	}
}

// BenchmarkTable2Characteristics regenerates the benchmark suite and
// checks the generated streams' memory intensity against the published
// APKI for every Table II entry.
func BenchmarkTable2Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range workload.Suite() {
			spec.InstrPerWarp = 2000
			s := workload.NewWarpStream(spec, 0)
			lines, total := 0, 0
			for {
				ins, ok := s.Next()
				if !ok {
					break
				}
				total++
				if ins.Kind == workload.GlobalLoad || ins.Kind == workload.GlobalStore {
					lines += int(ins.NAddr)
				}
			}
			if total == 0 || lines == 0 {
				b.Fatalf("%s generated no memory traffic", spec.Name)
			}
		}
	}
}

// BenchmarkFig1aInterferenceMatrix regenerates the Backprop inter-warp
// interference heatmap data.
func BenchmarkFig1aInterferenceMatrix(b *testing.B) {
	spec, err := workload.ByName("Backprop")
	if err != nil {
		b.Fatal(err)
	}
	gto, _ := harness.SchedulerByName("GTO")
	var total uint64
	for i := 0; i < b.N; i++ {
		_, g, err := harness.RunOne(spec, gto, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		total = g.Interference().Total()
	}
	b.ReportMetric(float64(total), "interference-events")
}

// BenchmarkFig1b regenerates the Backprop Best-SWL vs CCWS comparison.
func BenchmarkFig1b(b *testing.B) {
	var res *harness.Fig1bResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunFig1b(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.IPC["Best-SWL"]/res.IPC["CCWS"], "bestswl-over-ccws")
}

// BenchmarkFig4 regenerates the interference-skew study.
func BenchmarkFig4(b *testing.B) {
	var res *harness.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunFig4(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	mm := res.WorkloadMinMax[res.Bench]
	b.ReportMetric(float64(mm[1]), "max-pair-interference")
}

// BenchmarkFig8aIPC regenerates the headline scheduler comparison and
// reports the geometric-mean normalized IPCs.
func BenchmarkFig8aIPC(b *testing.B) {
	var res *harness.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunFig8(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.OverallGeoMean["CCWS"], "ccws-vs-gto")
	b.ReportMetric(res.OverallGeoMean["Best-SWL"], "bestswl-vs-gto")
	b.ReportMetric(res.OverallGeoMean["statPCAL"], "statpcal-vs-gto")
	b.ReportMetric(res.OverallGeoMean["CIAO-T"], "ciaot-vs-gto")
	b.ReportMetric(res.OverallGeoMean["CIAO-P"], "ciaop-vs-gto")
	b.ReportMetric(res.OverallGeoMean["CIAO-C"], "ciaoc-vs-gto")
}

// BenchmarkFig8bSharedMemUtilization reports the CIAO shared-memory
// cache utilization per class.
func BenchmarkFig8bSharedMemUtilization(b *testing.B) {
	var res *harness.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunFig8(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SharedUtil[workload.LWS], "util-lws")
	b.ReportMetric(res.SharedUtil[workload.SWS], "util-sws")
	b.ReportMetric(res.SharedUtil[workload.CI], "util-ci")
}

// BenchmarkFig9TimeSeries regenerates the ATAX/Backprop dynamic traces.
func BenchmarkFig9TimeSeries(b *testing.B) {
	opt := benchOpt()
	opt.SampleInterval = 1000
	for i := 0; i < b.N; i++ {
		for _, bench := range []string{"ATAX", "Backprop"} {
			if _, err := harness.RunTimeSeries(bench, []string{"Best-SWL", "CCWS", "CIAO-T"}, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig10TimeSeries regenerates the SYRK/KMN CIAO-variant traces.
func BenchmarkFig10TimeSeries(b *testing.B) {
	opt := benchOpt()
	opt.SampleInterval = 1000
	for i := 0; i < b.N; i++ {
		for _, bench := range []string{"SYRK", "KMN"} {
			if _, err := harness.RunTimeSeries(bench, []string{"CIAO-T", "CIAO-P", "CIAO-C"}, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig11aEpochSensitivity sweeps the high-cutoff epoch.
func BenchmarkFig11aEpochSensitivity(b *testing.B) {
	var res *harness.SensitivityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunEpochSensitivity([]uint64{1000, 5000, 10000, 50000}, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Spread across epoch values should stay modest (paper: ≤ ~15%).
	lo, hi := 10.0, 0.0
	for _, row := range res.Normalized {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	b.ReportMetric(hi-lo, "ipc-spread")
}

// BenchmarkFig11bCutoffSensitivity sweeps the high-cutoff threshold.
func BenchmarkFig11bCutoffSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunCutoffSensitivity([]float64{0.04, 0.02, 0.01, 0.005}, benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12aCacheConfigs regenerates the L1D configuration study.
func BenchmarkFig12aCacheConfigs(b *testing.B) {
	var res *harness.Fig12Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunFig12a(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GeoMean["GTO-cap"], "gtocap-vs-gto")
	b.ReportMetric(res.GeoMean["GTO-8way"], "gto8way-vs-gto")
	b.ReportMetric(res.GeoMean["CIAO-C"], "ciaoc-vs-gto")
}

// BenchmarkFig12bDRAMBandwidth regenerates the 2× bandwidth study.
func BenchmarkFig12bDRAMBandwidth(b *testing.B) {
	var res *harness.Fig12Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.RunFig12b(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GeoMean["statPCAL-2X"], "statpcal2x-vs-gto")
	b.ReportMetric(res.GeoMean["CIAO-C-2X"], "ciaoc2x-vs-gto")
}

// BenchmarkCellRun measures the end-to-end cost of one sweep cell —
// kernel construction plus a full simulation — and reports the two
// headline hot-path numbers tracked across PRs in BENCH_PR<N>.json:
// cells/sec (how many cells one core sustains) and ns/cycle (the cost
// of one simulated cycle). Run with -benchmem to see the allocation
// trajectory; the steady-state cycle loop is expected to be
// allocation-free (see BenchmarkCellCycle and the internal/sm alloc
// regression test).
func BenchmarkCellRun(b *testing.B) {
	for _, sc := range []string{"GTO", "CIAO-C"} {
		b.Run(sc, func(b *testing.B) {
			spec, err := workload.ByName("SYRK")
			if err != nil {
				b.Fatal(err)
			}
			spec.InstrPerWarp = 2000
			f, err := harness.SchedulerByName(sc)
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, _, err := harness.RunOne(spec, f, harness.Options{})
				if err != nil {
					b.Fatal(err)
				}
				cycles += r.Cycles
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "cells/sec")
			}
			if cycles > 0 {
				b.ReportMetric(sec*1e9/float64(cycles), "ns/cycle")
			}
		})
	}
}

// BenchmarkCellCycle times one steady-state simulated cycle: a GPU is
// built untimed and Step() is measured directly, so allocs/op is the
// per-cycle allocation count on the hot path (gated at 0 in CI).
func BenchmarkCellCycle(b *testing.B) {
	spec, err := workload.ByName("SYRK")
	if err != nil {
		b.Fatal(err)
	}
	spec.InstrPerWarp = 2000
	cfg := sm.DefaultConfig()
	cfg.SampleInterval = 0 // measure the pure cycle path
	newGPU := func() *sm.GPU {
		return sm.MustGPU(cfg, workload.MustKernel(spec), sched.NewGTO(), nil)
	}
	g := newGPU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Done() || g.Cycle() >= g.Config().MaxCycles {
			b.StopTimer()
			g = newGPU()
			b.StartTimer()
		}
		g.Step()
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (cycles/op) of the core engine under GTO.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, err := workload.ByName("SYRK")
	if err != nil {
		b.Fatal(err)
	}
	spec.InstrPerWarp = 2000
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		g := sm.MustGPU(sm.DefaultConfig(), workload.MustKernel(spec), sched.NewGTO(), nil)
		r := g.Run()
		cycles = r.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// --- Sweep engine hot path ---

// sweepSpec is the grid the sweep benchmarks expand: 7 schedulers ×
// 21 benchmarks × 4 configurations = 588 cells.
func sweepSpec() sweep.Spec {
	return sweep.Spec{
		Name: "bench",
		Axes: sweep.Axes{
			Configs: []sweep.Config{
				{Name: "base"},
				{Name: "l1-32k", Override: harness.Override{L1SizeKB: 32, L1Ways: 8}},
				{Name: "w24", Override: harness.Override{WarpsPerSM: 24}},
				{Name: "bw2x", Override: harness.Override{DRAMBandwidthX: 2}},
			},
		},
	}
}

// BenchmarkSweepExpansion measures declarative-spec expansion —
// validation, config cross product and content addressing for every
// cell — the setup cost every sweep pays before simulating.
func BenchmarkSweepExpansion(b *testing.B) {
	spec := sweepSpec()
	var n int
	for i := 0; i < b.N; i++ {
		cells, err := spec.Expand()
		if err != nil {
			b.Fatal(err)
		}
		n = len(cells)
	}
	b.ReportMetric(float64(n), "cells")
}

// BenchmarkSweepStoreAppend measures the NDJSON result store's append
// path (marshal + single write), the per-cell bookkeeping overhead of
// a running sweep.
func BenchmarkSweepStoreAppend(b *testing.B) {
	spec := sweepSpec()
	cells, err := spec.Expand()
	if err != nil {
		b.Fatal(err)
	}
	st, err := sweep.Create(filepath.Join(b.TempDir(), "s"), "bench", spec, len(cells))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	payload := []byte(`{"bench":"SYRK","sched":"GTO","ipc":1.25,"cycles":100000}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cells[i%len(cells)]
		rec := sweep.CellRecord{
			Key: c.Key(), Index: c.Index, Bench: c.Bench, Sched: c.Sched,
			Config: c.Config, Status: sweep.StatusOK, IPC: 1.25, Result: payload,
		}
		if err := st.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationXORHashing compares modulo vs XOR set indexing
// under GTO: the XOR hash is the baseline enhancement the paper adds.
func BenchmarkAblationXORHashing(b *testing.B) {
	spec, err := workload.ByName("SYRK")
	if err != nil {
		b.Fatal(err)
	}
	spec.InstrPerWarp = benchInstr
	var xor, mod float64
	for i := 0; i < b.N; i++ {
		cfg := sm.DefaultConfig()
		rx := sm.MustGPU(cfg, workload.MustKernel(spec), sched.NewGTO(), nil).Run()
		cfg2 := sm.DefaultConfig()
		cfg2.L1.UseXORHash = false
		rm := sm.MustGPU(cfg2, workload.MustKernel(spec), sched.NewGTO(), nil).Run()
		xor, mod = rx.IPC, rm.IPC
	}
	b.ReportMetric(xor/mod, "xor-over-modulo")
}

// BenchmarkAblationVTADepth compares the paper's 8-entry VTA against
// CCWS's 16 entries under CIAO-C.
func BenchmarkAblationVTADepth(b *testing.B) {
	spec, err := workload.ByName("SYRK")
	if err != nil {
		b.Fatal(err)
	}
	spec.InstrPerWarp = benchInstr
	var d8, d16 float64
	for i := 0; i < b.N; i++ {
		for _, depth := range []int{8, 16} {
			cfg := sm.DefaultConfig()
			cfg.EnableSharedCache = true
			cfg.VTAEntriesPerWarp = depth
			r := sm.MustGPU(cfg, workload.MustKernel(spec), core.NewC(), nil).Run()
			if depth == 8 {
				d8 = r.IPC
			} else {
				d16 = r.IPC
			}
		}
	}
	b.ReportMetric(d8/d16, "vta8-over-vta16")
}

// BenchmarkAblationMigration toggles the L1D→shared migration path by
// zeroing the penalty, quantifying the §IV-B coherence optimisation.
func BenchmarkAblationMigration(b *testing.B) {
	spec, err := workload.ByName("SYRK")
	if err != nil {
		b.Fatal(err)
	}
	spec.InstrPerWarp = benchInstr
	for i := 0; i < b.N; i++ {
		cfg := sm.DefaultConfig()
		cfg.EnableSharedCache = true
		cfg.MigrationPenalty = 20 // pessimistic: migration via DRAM-ish path
		slow := sm.MustGPU(cfg, workload.MustKernel(spec), core.NewC(), nil).Run()
		cfg.MigrationPenalty = 3
		fast := sm.MustGPU(cfg, workload.MustKernel(spec), core.NewC(), nil).Run()
		b.ReportMetric(fast.IPC/slow.IPC, "fast-over-slow-migration")
	}
}

// BenchmarkAblationSharedStallFactor sweeps the CIAO-C stall gate.
func BenchmarkAblationSharedStallFactor(b *testing.B) {
	spec, err := workload.ByName("KMN")
	if err != nil {
		b.Fatal(err)
	}
	spec.InstrPerWarp = benchInstr
	for i := 0; i < b.N; i++ {
		for _, f := range []float64{1, 4} {
			p := core.DefaultParams()
			p.SharedStallFactor = f
			cfg := sm.DefaultConfig()
			cfg.EnableSharedCache = true
			r := sm.MustGPU(cfg, workload.MustKernel(spec), core.New(core.ModeC, p), nil).Run()
			if f == 1 {
				b.ReportMetric(r.IPC, "ipc-factor1")
			} else {
				b.ReportMetric(r.IPC, "ipc-factor4")
			}
		}
	}
}
