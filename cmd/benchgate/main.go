// Command benchgate compares the cells/sec throughput metrics of two
// `go test -json -bench` snapshots and fails when the current run has
// regressed beyond a threshold against the committed baseline. It is
// the CI tripwire that keeps the perf trajectory (BENCH_PR*.json)
// honest: a PR that silently slows the cycle loop turns the bench job
// red instead of shipping.
//
// Usage:
//
//	benchgate -baseline BENCH_PR9.json -current fresh.json -max-regress 15
//
// Only benchmarks reporting a cells/sec metric participate; CI runners
// are noisy, so the default threshold is deliberately loose — it
// catches algorithmic regressions, not scheduler jitter.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	baseline := flag.String("baseline", "", "committed go test -json snapshot (required)")
	current := flag.String("current", "", "freshly produced go test -json snapshot (required)")
	maxRegress := flag.Float64("max-regress", 15, "maximum allowed cells/sec regression, percent")
	flag.Parse()
	if *baseline == "" || *current == "" {
		flag.Usage()
		os.Exit(2)
	}

	base, err := parseFile(*baseline)
	if err != nil {
		fatal("baseline: %v", err)
	}
	cur, err := parseFile(*current)
	if err != nil {
		fatal("current: %v", err)
	}
	if len(base) == 0 {
		// A baseline predating the cells/sec metric gates nothing; the
		// next committed snapshot arms the gate.
		fmt.Println("benchgate: baseline has no cells/sec benchmarks; nothing to gate")
		return
	}

	failed := false
	for _, name := range sortedKeys(base) {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: present in baseline, missing from current run\n", name)
			failed = true
			continue
		}
		change := (c - b) / b * 100
		status := "ok"
		if change < -*maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchgate: %-4s %-30s %10.2f -> %10.2f cells/sec (%+.1f%%)\n",
			status, name, b, c, change)
	}
	if failed {
		fatal("cells/sec regressed more than %.0f%% against the baseline", *maxRegress)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
