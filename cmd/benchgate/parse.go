package main

import (
	"bufio"
	"encoding/json"
	"os"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the `go test -json` (test2json) event
// stream benchgate cares about: benchmark result lines arrive as
// Action "output" with fragments of the textual benchmark line in
// Output. A single result line is typically split across events (the
// name is printed before the benchmark runs, the measurements after),
// so fragments are reassembled per package before parsing.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// parseFile extracts cells/sec benchmark results from a go test -json
// stream: benchmark name (GOMAXPROCS suffix stripped) → cells/sec.
func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// Packages may interleave in the stream, but output within one
	// package is ordered; buffer fragments per package until a newline
	// completes the line.
	partial := make(map[string]string)
	out := make(map[string]float64)
	emit := func(line string) {
		if name, val, ok := parseBenchLine(line); ok {
			out[name] = val
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 || raw[0] != '{' {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			continue // non-event noise in the stream
		}
		if ev.Action != "output" {
			continue
		}
		buf := partial[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			emit(buf[:nl])
			buf = buf[nl+1:]
		}
		partial[ev.Package] = buf
	}
	for _, rest := range partial {
		emit(rest)
	}
	return out, sc.Err()
}

// parseBenchLine pulls the cells/sec metric out of one benchmark
// result line, e.g.
//
//	BenchmarkCellRun/GTO-8  34  65371917 ns/op  15.30 cells/sec  85.93 ns/cycle
//
// ok is false for lines that are not benchmark results or do not
// report cells/sec.
func parseBenchLine(s string) (name string, cellsPerSec float64, ok bool) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i < len(fields); i++ {
		if fields[i] != "cells/sec" {
			continue
		}
		v, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			return "", 0, false
		}
		return trimProcs(fields[0]), v, true
	}
	return "", 0, false
}

// trimProcs strips the trailing -GOMAXPROCS suffix (`CellRun/GTO-8` →
// `CellRun/GTO`) so snapshots from differently sized runners compare.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// sortedKeys returns m's keys in stable order for deterministic output.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
