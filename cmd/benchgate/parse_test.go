package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		in   string
		name string
		val  float64
		ok   bool
	}{
		{"BenchmarkCellRun/GTO-8 \t      34\t  65371917 ns/op\t        15.30 cells/sec\t        85.93 ns/cycle\n",
			"BenchmarkCellRun/GTO", 15.30, true},
		{"BenchmarkCellRun/CIAO-C-8 \t 39\t 60983704 ns/op\t 16.40 cells/sec\n",
			"BenchmarkCellRun/CIAO-C", 16.40, true},
		{"BenchmarkREDObserve-8 \t 100\t 12 ns/op\t 0 B/op\t 0 allocs/op\n", "", 0, false},
		{"ok  \trepro\t1.2s\n", "", 0, false},
		{"PASS\n", "", 0, false},
	}
	for _, c := range cases {
		name, val, ok := parseBenchLine(c.in)
		if ok != c.ok || name != c.name || val != c.val {
			t.Errorf("parseBenchLine(%q) = %q,%v,%v; want %q,%v,%v",
				c.in, name, val, ok, c.name, c.val, c.ok)
		}
	}
}

func TestParseFileAndCompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Result lines split across output events the way test2json emits
	// them (name fragment first, measurements after the run), with a
	// second package's events interleaved between the fragments.
	stream := `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"BenchmarkCellRun/GTO-8 \t"}
{"Action":"output","Package":"repro/other","Output":"BenchmarkOther-8 \t10\t5 ns/op\t9.99 cells/sec\n"}
{"Action":"output","Package":"repro","Output":"34\t65371917 ns/op\t15.30 cells/sec\t85.93 ns/cycle\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkCellRun/CIAO-C-4 \t39\t60983704 ns/op\t16.40 cells/sec\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkREDObserve-8 \t100\t12 ns/op\t0 allocs/op\n"}
{"Action":"pass","Package":"repro"}
`
	got, err := parseFile(write("base.json", stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// GOMAXPROCS suffixes are stripped so differently sized runners
	// compare by benchmark identity; the split GTO line reassembled.
	if got["BenchmarkCellRun/GTO"] != 15.30 || got["BenchmarkCellRun/CIAO-C"] != 16.40 ||
		got["BenchmarkOther"] != 9.99 {
		t.Fatalf("unexpected parse result: %v", got)
	}
}
