// Command ciaoserve runs the CIAO reproduction as a long-lived HTTP
// service. Experiment results are cached (content-addressed LRU) and
// identical in-flight requests are coalesced, so a cell is simulated
// at most once no matter how many clients ask for it.
//
// Endpoints:
//
//	POST /run          one bench × sched cell, synchronous
//	POST /experiment   fig8, fig1b, fig4, fig9, fig10, fig11a, fig11b,
//	                   fig12a, fig12b, timeseries, overhead, run — async
//	GET  /jobs/{id}    poll an async job; result inlined once done
//	GET  /healthz      liveness + cache hit/miss counters
//
// Example:
//
//	ciaoserve -addr :8080 &
//	curl -s localhost:8080/run -d '{"bench":"SYRK","sched":"CIAO-C","options":{"instr_per_warp":2000}}'
//	curl -s localhost:8080/experiment -d '{"experiment":"fig8","options":{"instr_per_warp":1000}}'
//	curl -s localhost:8080/jobs/<id>
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "max concurrently executing experiments (0 = GOMAXPROCS)")
		entries = flag.Int("cache", 256, "result cache capacity in entries (<= 0 disables)")
		jobs    = flag.Int("jobs", 1024, "max retained async job records (oldest finished evicted first)")
	)
	flag.Parse()

	cacheEntries := *entries
	if cacheEntries <= 0 {
		cacheEntries = -1 // the engine treats 0 as "default"; the flag means "off"
	}
	engine := service.NewEngine(service.Config{Workers: *workers, CacheEntries: cacheEntries, MaxJobs: *jobs})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(service.NewHandler(engine)),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("ciaoserve listening on %s (workers=%d cache=%d)", *addr, *workers, *entries)
	log.Fatal(srv.ListenAndServe())
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		log.Printf("%s %s %d %s cache=%s",
			r.Method, r.URL.Path, rec.code, time.Since(start).Round(time.Microsecond),
			orDash(rec.Header().Get("X-Cache")))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
