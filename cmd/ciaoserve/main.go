// Command ciaoserve runs the CIAO reproduction as a long-lived HTTP
// service. Experiment results are cached (content-addressed LRU) and
// identical in-flight requests are coalesced, so a cell is simulated
// at most once no matter how many clients ask for it.
//
// The distributed sweep coordinator is crash-safe: shard lease state
// journals to coord.journal.ndjson next to each sweep's results, and
// on startup interrupted sweeps are recovered from those journals and
// resume serving /coord under their original ids (disable with
// -no-recover).
//
// Sweep results live in a tiered store: an append-only NDJSON tail
// per sweep, compacted (automatically past -compact-after records, or
// on demand) into immutable, optionally gzip'd segments that read
// back as one logical stream. Live /sweeps/{id}/results followers
// share one broadcast of the append path instead of polling the file.
//
// Two servers federate through -advertise/-peer: each stamps the
// journals it writes with its own URL, leaves the other's journals
// alone at boot (redirecting their workers there), and — watching the
// other through -peer health probes, or told to via POST /coord/adopt
// — adopts the orphaned sweeps of a dead sibling by replaying their
// journals, so surviving workers keep their leases across the
// hand-off. A shared -sweepdir is no longer required: while the peer
// is healthy its live sweeps are mirrored here over HTTP (segment
// blobs, tail, journal), and adoption replays the mirror.
//
// Endpoints:
//
//	POST   /run                  one bench × sched cell, synchronous
//	POST   /experiment           fig8, fig1b, fig4, fig9, fig10, fig11a,
//	                             fig11b, fig12a, fig12b, timeseries,
//	                             overhead, run — async
//	GET    /jobs/{id}            poll an async job; result inlined once done
//	POST   /sweeps               start a declarative parameter sweep
//	                             ("distributed": true hands it to the
//	                             shard coordinator instead of running
//	                             in-process)
//	GET    /sweeps               list sweeps
//	GET    /sweeps/{id}          sweep progress (done/total, failures,
//	                             geomean-so-far)
//	GET    /sweeps/{id}/results  stream results as NDJSON (segments +
//	                             live tail; ?follow=0 for a snapshot)
//	POST   /sweeps/{id}/compact  compact the live tail's settled prefix
//	                             into an immutable segment now
//	GET    /sweeps/{id}/segments segment blob names; append /{name} for
//	                             the raw blob (what a peer mirrors)
//	GET    /sweeps/{id}/store/{manifest|tail|journal}
//	                             the rest of the sweep directory, raw
//	DELETE /sweeps/{id}          cancel a sweep (results kept on disk)
//	POST   /coord/lease          worker: acquire a shard lease (workers
//	                             advertise capability tags + max-cells
//	                             hints; constrained shards wait for a
//	                             matching worker)
//	POST   /coord/heartbeat      worker: renew a lease
//	POST   /coord/complete       worker: upload a shard's records
//	POST   /coord/adopt          adopt orphaned sweeps from a dead peer
//	GET    /coord/status         shard tables of live distributed sweeps
//	POST   /coord/admin/expire   force-expire a lease ({"sweep","shard"})
//	POST   /coord/admin/quarantine    park a poisonous shard; the sweep
//	                                  can finish "done-with-quarantined"
//	POST   /coord/admin/unquarantine  release a parked shard
//	GET    /coord/admin/leases   live lease tables (ages, tags, renews)
//	GET    /metrics              cache/engine/sweep/coordinator counters
//	                             plus per-route RED metrics; JSON by
//	                             default, Prometheus text exposition
//	                             with ?format=prom or Accept: text/plain
//	GET    /healthz              liveness + the same counters
//
// Every request is classified into a bounded route-class label and
// observed into RED (rate, errors, duration) series; /run and /sweeps
// shed load with 429 + Retry-After once the engine queue or observed
// p95 latency degrades past -maxqueue / -shedlatency, and -clientrate
// adds a per-client token bucket. SIGINT/SIGTERM drains in-flight
// requests for up to -drain before exiting.
//
// Example:
//
//	ciaoserve -addr :8080 &
//	curl -s localhost:8080/run -d '{"bench":"SYRK","sched":"CIAO-C","options":{"instr_per_warp":2000}}'
//	curl -s localhost:8080/sweeps -d @examples/sweep-l1-capacity.json
//	curl -sN localhost:8080/sweeps/<id>/results
//	ciaosweep -worker http://localhost:8080 &   # serve leased shards
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/coord"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "max concurrently executing experiments (0 = GOMAXPROCS)")
		entries   = flag.Int("cache", 256, "result cache capacity in entries (<= 0 disables)")
		jobs      = flag.Int("jobs", 1024, "max retained async job records (oldest finished evicted first)")
		sweepDir  = flag.String("sweepdir", "sweeps", "directory for on-disk sweep results")
		shardSize = flag.Int("shardsize", coord.DefaultShardSize, "distributed sweeps: cells per leasable shard")
		leaseTTL  = flag.Duration("leasettl", coord.DefaultTTL, "distributed sweeps: lease TTL without a heartbeat")
		maxLeases = flag.Int("maxleases", coord.DefaultMaxLeases, "distributed sweeps: leases per shard before the sweep fails terminally")
		noRecover = flag.Bool("no-recover", false, "skip crash recovery of interrupted distributed sweeps under -sweepdir")
		advertise = flag.String("advertise", "", "federation: this server's URL, stamped into sweep journals as their owner (enables peer adoption)")
		peer      = flag.String("peer", "", "federation: sibling server URL; its live sweeps are mirrored here over HTTP and its orphaned sweeps adopted when it stops answering /healthz (a shared -sweepdir also works, mirroring then no-ops)")

		compactAfter = flag.Int("compact-after", 4096, "result store: auto-compact a sweep's live tail into an immutable segment once it holds this many records (0 = only on POST /sweeps/{id}/compact)")
		gzipSegments = flag.Bool("gzip-segments", false, "result store: gzip-compress newly written segments")
		syncResults  = flag.Bool("sync-results", false, "result store: fsync after every settled cell record; off, a power loss can drop the last unflushed lines (their cells re-run on resume)")

		maxQueue    = flag.Int("maxqueue", 256, "overload: max requests queued for an engine slot before /run and /sweeps shed with 429 (<= 0 disables)")
		shedLatency = flag.Duration("shedlatency", 0, "overload: shed /run and /sweeps when the observed /run p95 exceeds this (0 disables)")
		clientRate  = flag.Float64("clientrate", 0, "overload: per-client request rate on the work-creating POSTs, requests/second (0 disables)")
		clientBurst = flag.Int("clientburst", 0, "overload: per-client burst allowance (0 = derived from -clientrate)")
		drain       = flag.Duration("drain", 15*time.Second, "shutdown: how long to drain in-flight requests after SIGINT/SIGTERM")
	)
	flag.Parse()

	s := newServer(serverOpts{
		workers:      *workers,
		cacheEntries: *entries,
		jobs:         *jobs,
		sweepDir:     *sweepDir,
		shardSize:    *shardSize,
		leaseTTL:     *leaseTTL,
		maxLeases:    *maxLeases,
		advertise:    *advertise,
		peer:         *peer,
		compactAfter: *compactAfter,
		gzipSegments: *gzipSegments,
		syncResults:  *syncResults,
		maxQueue:     *maxQueue,
		shedLatency:  *shedLatency,
		clientRate:   *clientRate,
		clientBurst:  *clientBurst,
	})
	if !*noRecover {
		// Resume distributed sweeps a crash or restart interrupted:
		// their coordinators rebuild from the per-sweep journal and
		// keep serving /coord under the original sweep ids, so workers
		// that outlived the outage stay on their leases. A recovery
		// failure is loud but not fatal — the flag exists to boot past
		// a poisonous sweep directory.
		if n, err := s.sweeps.Recover(); err != nil {
			log.Printf("sweep recovery: %v (start with -no-recover to skip)", err)
		} else if n > 0 {
			log.Printf("recovered %d distributed sweep(s) from %s", n, *sweepDir)
		}
	}
	if *peer != "" {
		go watchPeer(*peer, *leaseTTL, s.sweeps.AdoptOrphans, s.sweeps.MirrorFrom)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: s.handler,
		// ReadTimeout bounds slow request uploads (bodies are tiny
		// specs); IdleTimeout reaps abandoned keep-alive connections.
		// WriteTimeout stays zero: the sweep results endpoint streams
		// for as long as a sweep runs.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("ciaoserve listening on %s (workers=%d cache=%d sweepdir=%s shardsize=%d leasettl=%s maxqueue=%d)",
		*addr, *workers, *entries, *sweepDir, *shardSize, *leaseTTL, *maxQueue)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		log.Printf("signal received; draining for up to %s", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			log.Printf("drain incomplete after %s: %v; closing", *drain, err)
			srv.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	}
}

// peerFailThreshold: consecutive failed health probes before the peer
// is presumed dead and its orphaned sweeps adopted. One failure is a
// blip (a restart, a slow GC pause); several in a row across probe
// intervals is an outage worth taking the fleet over for.
const peerFailThreshold = 3

// watchPeer probes the sibling server's /healthz. While the peer is
// healthy, each probe also refreshes this server's warm-standby
// mirror of the peer's live distributed sweeps — segment blobs, tail
// and journal fetched over HTTP into this server's own -sweepdir —
// so federation no longer requires a shared filesystem (on a shared
// directory the mirror refuses to touch the peer's files and the old
// behaviour is unchanged). Once the peer has stayed unreachable for
// peerFailThreshold consecutive probes, every orphaned sweep found
// locally — shared directory or mirror alike — is adopted. Watching
// continues afterwards — the peer may come back, die again, and leave
// new orphans (a restarted peer that finds its old sweeps adopted
// here simply redirects their workers this way, so a false positive
// costs a hand-off, not correctness).
func watchPeer(peer string, ttl time.Duration, adopt func() (int, error), mirror func(string) (int, error)) {
	interval := ttl
	if interval < 2*time.Second {
		interval = 2 * time.Second
	}
	client := &http.Client{Timeout: interval}
	url := strings.TrimRight(peer, "/") + "/healthz"
	fails := 0
	mirrorFailed := false
	for {
		time.Sleep(interval)
		resp, err := client.Get(url)
		if err == nil {
			resp.Body.Close()
			fails = 0
			if _, merr := mirror(peer); merr != nil {
				if !mirrorFailed {
					log.Printf("mirror from %s: %v", peer, merr)
				}
				mirrorFailed = true // log once per streak, not per probe
			} else {
				mirrorFailed = false
			}
			continue
		}
		fails++
		if fails < peerFailThreshold {
			continue
		}
		log.Printf("peer %s unreachable for %d probe(s): adopting its orphaned sweeps", peer, fails)
		n, aerr := adopt()
		if aerr != nil {
			log.Printf("adopt from %s: %v", peer, aerr)
		}
		if n > 0 {
			log.Printf("adopted %d sweep(s) orphaned by %s", n, peer)
		}
		fails = 0 // re-arm: adoption is idempotent, but don't spin every probe
	}
}
