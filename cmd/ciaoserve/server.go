package main

import (
	"log"
	"net/http"
	"time"

	"repro/internal/coord"
	"repro/internal/httpx"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/sweep"
)

// serverOpts assembles one ciaoserve instance. Zero values mean the
// same defaults the flags document; run and logf are test hooks (nil =
// the real executor and the standard access log).
type serverOpts struct {
	workers      int
	cacheEntries int
	jobs         int
	sweepDir     string
	parallelism  int

	shardSize int
	leaseTTL  time.Duration
	maxLeases int
	advertise string
	peer      string

	// Tiered result store tuning: compactAfter auto-freezes a sweep's
	// settled tail prefix into an immutable segment once the tail holds
	// that many records (0 = on-demand only), gzipSegments compresses
	// new segments, syncResults fsyncs every settled record.
	compactAfter int
	gzipSegments bool
	syncResults  bool

	// Overload protection: maxQueue bounds requests waiting for an
	// engine slot before /run and /sweeps shed with 429; shedLatency
	// sheds when the observed /run p95 degrades past it (0 = off);
	// clientRate/clientBurst configure the per-client token bucket
	// (rate 0 = off).
	maxQueue    int
	shedLatency time.Duration
	clientRate  float64
	clientBurst int

	run  service.RunFunc
	logf func(r *http.Request, code int, bytes int64, d time.Duration)
}

// server is the assembled ciaoserve instance: every subsystem plus the
// fully wrapped handler (routing, admission control, rate limiting,
// RED instrumentation).
type server struct {
	engine  *service.Engine
	hub     *coord.Hub
	sweeps  *sweep.Manager
	red     *metrics.RED
	handler http.Handler
}

// newServer wires the engine, sweep manager, and coordinator hub into
// one handler behind the observability and backpressure middleware:
//
//	Instrument (RED + access log)
//	  └─ mux
//	       POST /run, /sweeps, /experiment → rate limiter → admission → handler
//	       everything else → handler
//
// The admission controllers on /run and /sweeps have separate accept
// queues (a sweep burst cannot starve /run of queue slots) but share
// the shed signals: the engine's slot-wait depth and the windowed p95
// of /run latency.
func newServer(o serverOpts) *server {
	cacheEntries := o.cacheEntries
	if cacheEntries <= 0 {
		cacheEntries = -1 // the engine treats 0 as "default"; the flag means "off"
	}
	engine := service.NewEngine(service.Config{Workers: o.workers, CacheEntries: cacheEntries, MaxJobs: o.jobs, Run: o.run})
	hub := coord.NewHub(coord.Config{ShardSize: o.shardSize, TTL: o.leaseTTL, MaxLeases: o.maxLeases, Advertise: o.advertise, Peer: o.peer})
	sweeps := sweep.NewManager(engine, o.sweepDir, o.parallelism)
	sweeps.SetStoreOptions(sweep.StoreOptions{
		SyncAppend:   o.syncResults,
		CompactAfter: o.compactAfter,
		GzipSegments: o.gzipSegments,
	})
	sweeps.SetDistributor(hub)
	hub.SetAdoptFunc(sweeps.AdoptOrphans)

	red := metrics.NewRED()
	sweepRED := metrics.NewRED()
	sweeps.SetRED(sweepRED)

	sweepH := sweeps.Handler()
	svc := service.NewHandler(engine,
		service.WithExtraMetrics(func() map[string]any {
			return map[string]any{
				"sweeps": sweeps.MetricsSnapshot(),
				"coord":  hub.MetricsSnapshot(),
			}
		}),
		service.WithHTTPRED(red),
		service.WithProm(sweeps.WriteProm, hub.WriteProm))

	mux := http.NewServeMux()
	mux.Handle("/sweeps", sweepH)
	mux.Handle("/sweeps/", sweepH)
	mux.Handle("/coord/", hub.Handler())
	mux.Handle("/", svc)

	// Backpressure wraps only the POSTs that create work; the Go 1.22
	// method+path patterns are more specific than the catch-alls above,
	// so they win routing for exactly those requests.
	runSeries := red.Series("/run")
	sweepSeries := red.Series("/sweeps")
	window := metrics.NewWindow(runSeries, time.Second)
	admit := httpx.AdmissionConfig{
		MaxQueue:    o.maxQueue,
		ShedLatency: o.shedLatency,
		Depth:       engine.QueueDepth,
		P95:         window.P95,
	}
	limiter := httpx.NewRateLimiter(o.clientRate, o.clientBurst)
	runAdmit := httpx.NewAdmission(admit)
	sweepAdmit := httpx.NewAdmission(admit)
	mux.Handle("POST /run", limiter.Wrap(runSeries, runAdmit.Wrap(runSeries, svc)))
	mux.Handle("POST /experiment", limiter.Wrap(red.Series("/experiment"), svc))
	mux.Handle("POST /sweeps", limiter.Wrap(sweepSeries, sweepAdmit.Wrap(sweepSeries, sweepH)))

	logf := o.logf
	if logf == nil {
		logf = func(r *http.Request, code int, bytes int64, d time.Duration) {
			log.Printf("%s %s %d %dB %s", r.Method, r.URL.Path, code, bytes, d.Round(time.Microsecond))
		}
	}
	return &server{
		engine:  engine,
		hub:     hub,
		sweeps:  sweeps,
		red:     red,
		handler: httpx.Instrument(red, logf, mux),
	}
}
