package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// testServer assembles a server around a blocking executor: every
// simulated run parks on release, so worker slots and the engine queue
// fill deterministically.
func testServer(t *testing.T, opts serverOpts) (*server, *httptest.Server, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	opts.sweepDir = t.TempDir()
	opts.run = func(service.Spec) ([]byte, error) {
		<-release
		return []byte(`{"ok":true}`), nil
	}
	opts.logf = func(*http.Request, int, int64, time.Duration) {}
	s := newServer(opts)
	ts := httptest.NewServer(s.handler)
	t.Cleanup(ts.Close)
	return s, ts, release
}

// runSpec builds a distinct /run body per n, so requests neither hit
// the cache nor coalesce with each other.
func runSpec(n int) string {
	return fmt.Sprintf(`{"bench":"SYRK","sched":"CIAO-C","options":{"instr_per_warp":%d}}`, 1000+n)
}

func postRun(ts *httptest.Server, n int) (*http.Response, error) {
	return http.Post(ts.URL+"/run", "application/json", strings.NewReader(runSpec(n)))
}

// TestServerShedsUnderLoad drives the server past its accept-queue
// bound and checks the overload contract: excess work is refused fast
// with 429 + Retry-After while the health and coordination endpoints
// keep answering, and once the backlog drains the queued requests
// complete and new work is admitted again.
func TestServerShedsUnderLoad(t *testing.T) {
	s, ts, release := testServer(t, serverOpts{workers: 1, maxQueue: 2})

	// Fill the worker slot and the accept queue: request 0 executes
	// (blocked in the run func), request 1 queues for the engine slot.
	var wg sync.WaitGroup
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			resp, err := postRun(ts, n)
			if err != nil {
				t.Errorf("request %d: %v", n, err)
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}(i)
	}
	waitFor(t, "engine queue to fill", func() bool { return s.engine.QueueDepth() >= 1 })

	// The third request must shed immediately, not join the pile.
	start := time.Now()
	resp, err := postRun(ts, 2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("shed response took %s, want fail-fast", el)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request code = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}

	// Saturation must not take down the cheap endpoints.
	for _, probe := range []struct {
		method, path, body string
	}{
		{"GET", "/healthz", ""},
		{"POST", "/coord/heartbeat", `{}`},
	} {
		start := time.Now()
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader(probe.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s under load: %v", probe.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("%s under load took %s", probe.path, el)
		}
		if resp.StatusCode >= 500 {
			t.Fatalf("%s under load = %d", probe.path, resp.StatusCode)
		}
	}

	// Drain: the blocked and queued requests complete normally.
	close(release)
	wg.Wait()
	close(codes)
	for c := range codes {
		if c != http.StatusOK {
			t.Fatalf("queued request code = %d, want 200", c)
		}
	}

	// And the server admits new work again.
	resp, err = postRun(ts, 3)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain request code = %d, want 200", resp.StatusCode)
	}

	// The decisions all landed in the RED layer.
	snap := s.red.Series("/run").Snapshot()
	if snap.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", snap.Shed)
	}
	if snap.Requests < 4 {
		t.Fatalf("requests = %d, want >= 4", snap.Requests)
	}
}

func TestServerRateLimitsPerClient(t *testing.T) {
	_, ts, release := testServer(t, serverOpts{workers: 4, clientRate: 0.001, clientBurst: 1})
	close(release) // executor never blocks in this test

	do := func(n int, client string) int {
		req, _ := http.NewRequest("POST", ts.URL+"/run", strings.NewReader(runSpec(n)))
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := do(0, "a"); c != http.StatusOK {
		t.Fatalf("first request = %d, want 200", c)
	}
	if c := do(1, "a"); c != http.StatusTooManyRequests {
		t.Fatalf("burst-exceeded request = %d, want 429", c)
	}
	if c := do(2, "b"); c != http.StatusOK {
		t.Fatalf("other client = %d, want 200", c)
	}
}

// TestServerMetricsFormats checks the /metrics content negotiation:
// JSON by default (with the per-route RED block), Prometheus text
// exposition on request, carrying every subsystem's families.
func TestServerMetricsFormats(t *testing.T) {
	_, ts, release := testServer(t, serverOpts{workers: 2})
	close(release)

	if resp, err := postRun(ts, 0); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var js struct {
		Cache json.RawMessage            `json:"cache"`
		HTTP  map[string]json.RawMessage `json:"http"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default Content-Type = %q", ct)
	}
	if js.Cache == nil || js.HTTP["/run"] == nil {
		t.Fatalf("JSON payload missing cache or http//run block: %+v", js)
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("prom Content-Type = %q", ct)
	}
	for _, want := range []string{
		`ciao_http_requests_total{route="/run"} 1`,
		`ciao_http_request_seconds_bucket{route="/run",le="+Inf"} 1`,
		"ciao_cache_hits_total",
		"ciao_simulations_total",
		"ciao_engine_queue_depth",
		"ciao_sweeps_started_total",
		"coord_leases_granted",
		"coord_active",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}

	// Accept-based negotiation reaches the same encoder.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "# TYPE ciao_http_request_seconds histogram") {
		t.Error("Accept: text/plain did not produce exposition format")
	}
}

// waitFor polls cond for up to five seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
