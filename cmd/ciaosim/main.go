// Command ciaosim drives the CIAO reproduction experiments: it can
// regenerate every table and figure of the paper's evaluation section
// and print the corresponding rows or CSV series.
//
// Usage:
//
//	ciaosim -experiment fig8              # IPC of 7 schedulers × 21 benchmarks
//	ciaosim -experiment fig1b             # Backprop: Best-SWL vs CCWS
//	ciaosim -experiment fig1a             # Backprop interference heatmap
//	ciaosim -experiment fig4              # interference skew
//	ciaosim -experiment fig9              # ATAX/Backprop time series (CSV)
//	ciaosim -experiment fig10             # SYRK/KMN time series (CSV)
//	ciaosim -experiment fig11a|fig11b     # sensitivity sweeps
//	ciaosim -experiment fig12a|fig12b     # cache/DRAM configuration studies
//	ciaosim -experiment table1            # the simulated configuration
//	ciaosim -experiment table2            # benchmark characteristics
//	ciaosim -experiment overhead          # §V-F cost model
//	ciaosim -experiment run -bench SYRK -sched CIAO-C   # one cell
//
// -instr scales simulation length (instructions per warp). -json
// switches the output to the same stable JSON encoding served by
// cmd/ciaoserve; it supports the simulation experiments, timeseries
// (-sched takes a comma-separated scheduler list there) and the
// overhead model, and rejects the text-only views (fig1a, table1,
// table2, chip), which have no JSON form.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/overhead"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/sm"
	"repro/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "fig8", "experiment to run (fig1a, fig1b, fig4, fig8, fig9, fig10, fig11a, fig11b, fig12a, fig12b, table1, table2, overhead, run)")
		bench      = flag.String("bench", "SYRK", "benchmark for -experiment run")
		sched      = flag.String("sched", "CIAO-C", "scheduler for -experiment run (comma-separated list for -json timeseries)")
		instr      = flag.Uint64("instr", 0, "instructions per warp (0 = suite default)")
		seed       = flag.Uint64("seed", 0, "workload seed override")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	)
	flag.Parse()

	var err error
	if *jsonOut {
		err = runJSON(*experiment, *bench, *sched, *instr, *seed)
	} else {
		opt := harness.Options{InstrPerWarp: *instr, Seed: *seed}
		err = run(*experiment, *bench, *sched, opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciaosim:", err)
		os.Exit(1)
	}
}

// runJSON routes the experiment through the service runner so ciaosim
// -json and ciaoserve emit byte-identical encodings.
func runJSON(experiment, bench, sched string, instr, seed uint64) error {
	spec := service.Spec{
		Experiment: experiment,
		Options:    service.OptionSpec{InstrPerWarp: instr, Seed: seed},
	}
	switch experiment {
	case service.ExpRun:
		spec.Bench, spec.Sched = bench, sched
	case service.ExpTimeSeries:
		spec.Bench = bench
		spec.Schedulers = strings.Split(sched, ",")
	}
	payload, err := service.Execute(spec)
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(payload))
	return err
}

func run(experiment, bench, sched string, opt harness.Options) error {
	switch experiment {
	case "fig8":
		res, err := harness.RunFig8(opt)
		if err != nil {
			return err
		}
		fmt.Println("Figure 8a — IPC normalized to GTO")
		fmt.Print(res.Table().String())
		fmt.Println("\nFigure 8b — shared-memory cache utilization (CIAO-C)")
		for _, c := range []workload.Class{workload.LWS, workload.SWS, workload.CI} {
			fmt.Printf("  %-4s %.2f\n", c, res.SharedUtil[c])
		}
		return nil

	case "fig1a":
		return fig1a(opt)

	case "fig1b":
		res, err := harness.RunFig1b(opt)
		if err != nil {
			return err
		}
		fmt.Println("Figure 1b — Backprop under Best-SWL vs CCWS")
		t := &metrics.Table{Header: []string{"metric", "Best-SWL", "CCWS"}}
		t.AddRow("IPC", fmt.Sprintf("%.3f", res.IPC["Best-SWL"]), fmt.Sprintf("%.3f", res.IPC["CCWS"]))
		t.AddRow("L1D hit rate", fmt.Sprintf("%.3f", res.HitRate["Best-SWL"]), fmt.Sprintf("%.3f", res.HitRate["CCWS"]))
		t.AddRow("active warps", fmt.Sprintf("%.1f", res.ActiveWarps["Best-SWL"]), fmt.Sprintf("%.1f", res.ActiveWarps["CCWS"]))
		fmt.Print(t.String())
		return nil

	case "fig4":
		res, err := harness.RunFig4(opt)
		if err != nil {
			return err
		}
		fmt.Printf("Figure 4a — interference suffered by the most-interfered warp of %s\n", res.Bench)
		fmt.Printf("focus warp W%d; non-zero interferers:\n", res.FocusWarp)
		for j, c := range res.PerInterferer {
			if c > 0 {
				fmt.Printf("  W%-3d %d\n", j, c)
			}
		}
		fmt.Println("\nFigure 4b — min/max single-pair interference per workload")
		names := make([]string, 0, len(res.WorkloadMinMax))
		for n := range res.WorkloadMinMax {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			mm := res.WorkloadMinMax[n]
			fmt.Printf("  %-9s min %-6d max %d\n", n, mm[0], mm[1])
		}
		return nil

	case "fig9":
		return timeSeries(opt, []string{"ATAX", "Backprop"}, []string{"Best-SWL", "CCWS", "CIAO-T"})

	case "fig10":
		return timeSeries(opt, []string{"SYRK", "KMN"}, []string{"CIAO-T", "CIAO-P", "CIAO-C"})

	case "fig11a":
		res, err := harness.RunEpochSensitivity([]uint64{1000, 5000, 10000, 50000}, opt)
		if err != nil {
			return err
		}
		printSensitivity("Figure 11a — IPC vs high-cutoff epoch (normalized to 5000)", res)
		return nil

	case "fig11b":
		res, err := harness.RunCutoffSensitivity([]float64{0.04, 0.02, 0.01, 0.005}, opt)
		if err != nil {
			return err
		}
		printSensitivity("Figure 11b — IPC vs high-cutoff threshold (normalized to 1%)", res)
		return nil

	case "fig12a":
		res, err := harness.RunFig12a(opt)
		if err != nil {
			return err
		}
		printFig12("Figure 12a — L1D configuration study (normalized to GTO)", res)
		return nil

	case "fig12b":
		res, err := harness.RunFig12b(opt)
		if err != nil {
			return err
		}
		printFig12("Figure 12b — DRAM bandwidth study (normalized to GTO)", res)
		return nil

	case "table1":
		return table1()

	case "table2":
		return table2()

	case "overhead":
		return overheadReport()

	case "chip":
		return chipStudy(bench, opt)

	case "run":
		return runOne(bench, sched, opt)
	}
	return fmt.Errorf("unknown experiment %q", experiment)
}

// chipStudy runs a 4-SM cluster sharing one L2/DRAM under GTO and
// CIAO-C, checking that the single-SM conclusions survive chip-level
// sharing.
func chipStudy(bench string, opt harness.Options) error {
	spec, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	if opt.InstrPerWarp > 0 {
		spec.InstrPerWarp = opt.InstrPerWarp
	} else {
		spec.InstrPerWarp = 2500
	}
	const smCount = 4
	fmt.Printf("chip-level study: %d SMs sharing L2/DRAM, benchmark %s\n", smCount, bench)
	for _, variant := range []struct {
		name   string
		shared bool
		mk     func() sm.Controller
	}{
		{"GTO", false, func() sm.Controller { return sched.NewGTO() }},
		{"CIAO-C", true, func() sm.Controller { return core.NewC() }},
	} {
		cfg := sm.DefaultConfig()
		cfg.EnableSharedCache = variant.shared
		cluster, err := sm.NewCluster(smCount, cfg, spec, variant.mk)
		if err != nil {
			return err
		}
		perSM, chipIPC := cluster.Run()
		var hits, accs uint64
		for _, r := range perSM {
			hits += r.L1.Hits
			accs += r.L1.Accesses
		}
		hr := 0.0
		if accs > 0 {
			hr = float64(hits) / float64(accs)
		}
		fmt.Printf("  %-8s chip IPC %.4f  mean L1D hit rate %.3f  shared-L2 hit rate %.3f\n",
			variant.name, chipIPC, hr, cluster.L2().Stats().HitRate())
	}
	return nil
}

func fig1a(opt harness.Options) error {
	spec, err := workload.ByName("Backprop")
	if err != nil {
		return err
	}
	gto, err := harness.SchedulerByName("GTO")
	if err != nil {
		return err
	}
	_, g, err := harness.RunOne(spec, gto, opt)
	if err != nil {
		return err
	}
	im := g.Interference()
	top := im.TopInterferedWarps(12)
	norm := im.Normalized()
	fmt.Println("Figure 1a — Backprop inter-warp interference (normalized to max, top 12 interfered warps)")
	fmt.Print("         ")
	for _, j := range top {
		fmt.Printf("W%-5d", j)
	}
	fmt.Println()
	for _, i := range top {
		fmt.Printf("W%-4d | ", i)
		for _, j := range top {
			fmt.Printf("%5.2f ", norm[i][j])
		}
		fmt.Println()
	}
	return nil
}

func timeSeries(opt harness.Options, benches, scheds []string) error {
	if opt.SampleInterval == 0 {
		opt.SampleInterval = 2000
	}
	fmt.Println("series,cycle,instructions,ipc,active,interference,l1hit")
	for _, b := range benches {
		res, err := harness.RunTimeSeries(b, scheds, opt)
		if err != nil {
			return err
		}
		for _, s := range scheds {
			fmt.Print(res.Series[s].CSV(b + "/" + s))
		}
	}
	return nil
}

func printSensitivity(title string, res *harness.SensitivityResult) {
	fmt.Println(title)
	header := []string{"value"}
	var benches []string
	for _, row := range res.Normalized {
		for b := range row {
			benches = append(benches, b)
		}
		break
	}
	sort.Strings(benches)
	header = append(header, benches...)
	t := &metrics.Table{Header: header}
	for _, v := range res.Values {
		row := []string{fmt.Sprintf("%g", v)}
		for _, b := range benches {
			row = append(row, fmt.Sprintf("%.2f", res.Normalized[v][b]))
		}
		t.AddRow(row...)
	}
	fmt.Print(t.String())
}

func printFig12(title string, res *harness.Fig12Result) {
	fmt.Println(title)
	t := &metrics.Table{Header: []string{"config", "geomean"}}
	for _, c := range res.Configs {
		t.AddRow(c, fmt.Sprintf("%.2f", res.GeoMean[c]))
	}
	fmt.Print(t.String())
}

func table1() error {
	cfg := sm.DefaultConfig()
	fmt.Println("Table I — simulated configuration")
	fmt.Printf("  L1D cache        %dKB, %d ways, %d sets, 128B lines, XOR hashing=%v\n",
		cfg.L1.SizeBytes>>10, cfg.L1.Ways, cfg.L1.Sets(), cfg.L1.UseXORHash)
	fmt.Printf("  Shared memory    %dKB, 32 banks, %d-cycle latency\n",
		cfg.SharedMemBytes>>10, cfg.SharedHitLatency)
	fmt.Printf("  L2 cache         %dKB, %d ways, %d partitions, %d-cycle latency\n",
		cfg.L2Config.TotalBytes>>10, cfg.L2Config.Ways, cfg.L2Config.Partitions, cfg.L2Config.Latency)
	d := cfg.L2Config.DRAM
	fmt.Printf("  DRAM (GDDR5)     %d banks, tCL=%d tRCD=%d tRAS=%d, %d-cycle/line (per-SM share)\n",
		d.Banks, d.TCL, d.TRCD, d.TRAS, d.TransferCycles)
	fmt.Printf("  VTA              %d tags per warp set, FIFO\n", cfg.VTAEntriesPerWarp)
	fmt.Printf("  Warps            %d per SM, MSHR %d×%d\n",
		workload.DefaultWarps, cfg.MSHREntries, cfg.MSHRMergeMax)
	return nil
}

func table2() error {
	fmt.Println("Table II — benchmark characteristics")
	t := &metrics.Table{Header: []string{"benchmark", "APKI", "input", "Nwrp", "Fsmem", "barriers", "class"}}
	for _, s := range workload.Suite() {
		t.AddRow(s.Name,
			fmt.Sprintf("%d", s.APKI),
			byteSize(s.InputBytes),
			fmt.Sprintf("%d", s.NwrpBest),
			fmt.Sprintf("%.0f%%", s.FsMem*100),
			map[bool]string{true: "Y", false: "N"}[s.Barriers],
			s.Class.String())
	}
	fmt.Print(t.String())
	return nil
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func overheadReport() error {
	r := overhead.Compute()
	fmt.Println("Section V-F — hardware overhead")
	fmt.Printf("  interference list   %4d bits/SM\n", r.InterferenceListBitsPerSM)
	fmt.Printf("  pair list           %4d bits/SM\n", r.PairListBitsPerSM)
	fmt.Printf("  VTA-hit counters    %4d bits/SM\n", r.VTAHitCounterBitsPerSM)
	fmt.Printf("  detector lists      %.0f µm² (15 SMs)\n", r.DetectorListsAreaUM2)
	fmt.Printf("  VTA area            %.2f mm² = %.2f%% of die\n", r.VTAAreaMM2, 100*r.VTAAreaFraction)
	fmt.Printf("  logic               %d gates/SM\n", r.TotalGatesPerSM)
	fmt.Printf("  total area          %.2f%% of die (< 2%% claim: %v)\n",
		100*r.TotalAreaFraction, r.TotalAreaFraction < 0.02)
	fmt.Printf("  power               %.2f%% of TDP\n", 100*r.PowerFraction)
	return nil
}

func runOne(bench, sched string, opt harness.Options) error {
	spec, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	f, err := harness.SchedulerByName(sched)
	if err != nil {
		return err
	}
	r, g, err := harness.RunOne(spec, f, opt)
	if err != nil {
		return err
	}
	fmt.Printf("%s under %s:\n", bench, sched)
	fmt.Printf("  IPC            %.4f\n", r.IPC)
	fmt.Printf("  cycles         %d\n", r.Cycles)
	fmt.Printf("  instructions   %d\n", r.Instructions)
	fmt.Printf("  L1D hit rate   %.3f (%d accesses)\n", r.L1.HitRate(), r.L1.Accesses)
	fmt.Printf("  VTA hits       %d\n", r.VTAHits)
	fmt.Printf("  interference   %d events\n", g.Interference().Total())
	if r.SharedStats.Accesses > 0 {
		fmt.Printf("  shared cache   %.3f hit rate (%d accesses, %.0f%% utilized)\n",
			r.SharedStats.HitRate(), r.SharedStats.Accesses, 100*r.SharedUtil)
	}
	return nil
}
