// Command ciaosweep runs a declarative parameter sweep to completion
// from a JSON spec file (see examples/sweep-l1-capacity.json): axes
// over schedulers × benchmarks/classes × machine-configuration
// overrides expand into cells, cells execute through the same cached
// worker-pool engine as ciaoserve, and every outcome appends to an
// on-disk NDJSON store.
//
// A spec with a "search" clause (see
// examples/sweep-synthetic-halving.json) runs a successive-halving
// refinement instead of a fixed grid: numeric parameters declare
// ranges, each round samples a coarse grid, keeps the top-k scoring
// points and halves the region around each. Rounds execute through the
// same store, so a killed search resumes exactly where it stopped; the
// final summary ranks the winning configurations.
//
// The store is what makes sweeps durable: kill the process at any
// point and re-run with -resume to execute only the remaining cells.
// Shards split one sweep across processes: -shard 0/2 and -shard 1/2
// against the same spec (but different -dir) each run half the cells,
// and -merge collapses the shard stores back into one. For sweeps
// coordinated by a ciaoserve (spec field "distributed": true), run
// workers instead: -worker leases shards from the server, executes
// them, and uploads the records — no local store, no manual sharding.
// -tags and -maxcells advertise what the host can run, so shards whose
// spec carries "requires" constraints route only to matching workers.
// -worker accepts a comma-separated URL list for a federated server
// pair: the worker rotates to the next URL when one stops answering
// and follows "redirect" responses, so a coordinator dying mid-shard
// hands the worker to the peer that adopts the sweep.
//
//	ciaosweep -spec examples/sweep-l1-capacity.json -dir sweeps/l1
//	^C ...
//	ciaosweep -spec examples/sweep-l1-capacity.json -dir sweeps/l1 -resume
//	ciaosweep -spec spec.json -dir sweeps/merged -merge sweeps/a,sweeps/b
//	ciaosweep -worker http://coordinator:8080 -tags bigmem,gpu
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/service"
	"repro/internal/sweep"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "sweep spec JSON file (required unless -worker)")
		dir       = flag.String("dir", "", "results directory (default sweeps/<name>)")
		resume    = flag.Bool("resume", false, "resume an existing results directory, skipping completed cells")
		workers   = flag.Int("workers", 0, "max concurrently executing cells (0 = GOMAXPROCS)")
		entries   = flag.Int("cache", 256, "engine result-cache capacity in entries")
		shard     = flag.String("shard", "", "run only shard i of n, as i/n (e.g. 0/2)")
		merge     = flag.String("merge", "", "comma-separated shard store directories to merge into -dir, then exit")
		every     = flag.Duration("progress", 2*time.Second, "progress print interval (0 disables)")
		workerURL = flag.String("worker", "", "run as a distributed sweep worker against this coordinator URL (comma-separate a federated pair)")
		name      = flag.String("name", "", "worker name (default hostname-pid)")
		tags      = flag.String("tags", "", "worker: comma-separated capability tags to advertise (e.g. bigmem,gpu)")
		maxCells  = flag.Int("maxcells", 0, "worker: largest shard (in cells) to accept per lease (0 = unlimited)")
		idleExit  = flag.Duration("idle-exit", 0, "worker: exit after the coordinator has been idle this long (0 = poll forever)")
		poll      = flag.Duration("poll", 500*time.Millisecond, "worker: lease poll interval when no shard is available (±25% jitter)")
		compact   = flag.Bool("compact", false, "compact the store's settled records into an immutable segment after a run or merge finishes")
		gzipSegs  = flag.Bool("gzip-segments", false, "gzip-compress segments written by -compact")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("ciaosweep: ")

	var err error
	switch {
	case *workerURL != "":
		err = runWorker(*workerURL, *name, *tags, *workers, *entries, *maxCells, *idleExit, *poll)
	case *merge != "":
		err = runMerge(*specPath, *dir, *merge, *compact, *gzipSegs)
	default:
		err = run(*specPath, *dir, *resume, *workers, *entries, *shard, *every, *compact, *gzipSegs)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runWorker loops leasing shards from a coordinator until interrupted
// (or, with -idle-exit, until the coordinator stays idle that long).
func runWorker(url, name, tags string, workers, entries, maxCells int, idleExit, poll time.Duration) error {
	engine := service.NewEngine(service.Config{Workers: workers, CacheEntries: entries})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := coord.RunWorker(ctx, coord.WorkerConfig{
		URL:      url,
		Name:     name,
		Tags:     splitTags(tags),
		MaxCells: maxCells,
		Engine:   engine,
		Poll:     poll,
		IdleExit: idleExit,
		Logf:     log.Printf,
	})
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// splitTags turns the comma-separated -tags flag into a list
// (normalization and validation happen in RunWorker).
func splitTags(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// compactStore freezes a store's settled records into a segment (the
// -compact flag's shared tail for runs and merges).
func compactStore(store *sweep.Store, gzipSegs bool) error {
	store.SetOptions(sweep.StoreOptions{GzipSegments: gzipSegs})
	seg, compacted, err := store.Compact()
	if err != nil {
		return err
	}
	if compacted {
		log.Printf("compacted %d record(s) (%d bytes) into %s", seg.Records, seg.Bytes, seg.Name)
	}
	return nil
}

// runMerge collapses hand-sharded stores into one canonical store.
// Segmented sources merge like flat ones — ReadRecords walks their
// segments and tail as one stream.
func runMerge(specPath, dir, srcs string, compact, gzipSegs bool) error {
	if specPath == "" {
		return errors.New("-spec is required")
	}
	if dir == "" {
		return errors.New("-merge needs an explicit -dir for the merged store")
	}
	spec, err := readSpec(specPath)
	if err != nil {
		return err
	}
	cells, err := spec.Expand()
	if err != nil {
		return err
	}
	store, err := openStore(dir, spec, len(cells), true)
	if err != nil {
		return err
	}
	defer store.Close()
	for _, src := range strings.Split(srcs, ",") {
		src = strings.TrimSpace(src)
		if src == "" {
			continue
		}
		merged, skipped, err := sweep.MergeStore(store, src)
		if err != nil {
			return err
		}
		log.Printf("merged %s: %d record(s) appended, %d duplicate(s) skipped", src, merged, skipped)
	}
	log.Printf("%s now holds %d/%d completed cells", dir, len(store.Completed()), len(cells))
	if compact {
		return compactStore(store, gzipSegs)
	}
	return nil
}

func run(specPath, dir string, resume bool, workers, entries int, shard string, every time.Duration, compact, gzipSegs bool) error {
	if specPath == "" {
		return errors.New("-spec is required")
	}
	spec, err := readSpec(specPath)
	if err != nil {
		return err
	}
	cells, err := spec.Expand()
	if err != nil {
		return err
	}
	shardIdx, shardN, err := parseShard(shard)
	if err != nil {
		return err
	}
	if spec.Search != nil && shardN > 1 {
		// Hand-sharding cuts against one fixed expansion; a search grows
		// its cell set round by round. Use distributed workers instead.
		return errors.New("-shard does not apply to search sweeps (use \"distributed\": true with -worker processes)")
	}
	if dir == "" {
		dir = filepath.Join("sweeps", spec.Name)
	}

	store, err := openStore(dir, spec, len(cells), resume)
	if err != nil {
		return err
	}
	defer store.Close()

	engine := service.NewEngine(service.Config{Workers: workers, CacheEntries: entries})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var lastPrint time.Time
	progress := func(p sweep.Progress) {
		if every <= 0 || time.Since(lastPrint) < every {
			return
		}
		lastPrint = time.Now()
		if p.Rounds > 0 {
			log.Printf("round %d/%d: %d/%d done (%d skipped, %d failed) geomean-ipc=%.4f",
				p.Round, p.Rounds, p.Done, p.Total, p.Skipped, p.Failed, p.GeoMeanIPC)
			return
		}
		log.Printf("%d/%d done (%d skipped, %d failed) geomean-ipc=%.4f",
			p.Done, p.Total, p.Skipped, p.Failed, p.GeoMeanIPC)
	}
	start := time.Now()
	var final sweep.Progress
	if spec.Search != nil {
		final, err = sweep.RunSearch(ctx, spec, store, func(ctx context.Context, plan *sweep.SearchPlan) (sweep.Progress, error) {
			log.Printf("search round %d/%d: %d point(s), %d new cell(s)",
				plan.Round+1, plan.Rounds, plan.Points, len(plan.NewCells))
			runner := &sweep.Runner{
				Engine:     engine,
				Store:      store,
				OnProgress: plan.Decorate(progress),
			}
			return runner.Run(ctx, plan.NewCells)
		})
	} else {
		runner := &sweep.Runner{
			Engine:     engine,
			Store:      store,
			Indexes:    sweep.ShardIndexes(len(cells), shardIdx, shardN),
			OnProgress: progress,
		}
		final, err = runner.Run(ctx, cells)
	}
	if err != nil {
		return err
	}

	summary := struct {
		Sweep   string      `json:"sweep"`
		Dir     string      `json:"dir"`
		Shard   string      `json:"shard,omitempty"`
		Elapsed string      `json:"elapsed"`
		Engine  engineStats `json:"engine"`
		sweep.Progress
	}{
		Sweep:    spec.Name,
		Dir:      dir,
		Elapsed:  time.Since(start).Round(time.Millisecond).String(),
		Engine:   engineStats{Simulations: engine.Simulations(), Cache: engine.Cache().Stats()},
		Progress: final,
	}
	if shardN > 1 {
		summary.Shard = fmt.Sprintf("%d/%d", shardIdx, shardN)
	}
	out, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))

	switch final.State {
	case sweep.StateCancelled:
		return fmt.Errorf("interrupted after %d/%d cells; re-run with -resume to finish", final.Done, final.Total)
	case sweep.StateDone:
		if final.Failed > 0 {
			return fmt.Errorf("%d of %d cells failed (see %s)", final.Failed, final.Total, store.ResultsPath())
		}
		if compact {
			return compactStore(store, gzipSegs)
		}
		return nil
	default:
		return fmt.Errorf("sweep ended in state %q", final.State)
	}
}

type engineStats struct {
	Simulations uint64 `json:"simulations"`
	Cache       any    `json:"cache"`
}

func readSpec(path string) (sweep.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return sweep.Spec{}, err
	}
	defer f.Close()
	var spec sweep.Spec
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return sweep.Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return sweep.Spec{}, fmt.Errorf("%s: trailing data after spec", path)
	}
	return spec, nil
}

func openStore(dir string, spec sweep.Spec, totalCells int, resume bool) (*sweep.Store, error) {
	if resume {
		store, err := sweep.Open(dir, spec)
		if err == nil {
			log.Printf("resuming %s: %d/%d cells already complete", dir, len(store.Completed()), totalCells)
			return store, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		// Nothing to resume yet: fall through and create.
	}
	store, err := sweep.Create(dir, spec.Name, spec, totalCells)
	if err != nil {
		return nil, fmt.Errorf("%w (pass -resume to continue it)", err)
	}
	return store, nil
}

func parseShard(s string) (idx, n int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/n)", s)
	}
	idx, errI := strconv.Atoi(parts[0])
	n, errN := strconv.Atoi(parts[1])
	if errI != nil || errN != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/n)", s)
	}
	if n <= 0 || idx < 0 || idx >= n {
		return 0, 0, fmt.Errorf("bad -shard %q: index must lie in 0..n-1", s)
	}
	return idx, n, nil
}
