// Interference analysis: reproduces the Figure 1a / Figure 4 study.
// It runs Backprop under GTO, extracts the inter-warp interference
// matrix from the victim-tag-array events, renders an ASCII heatmap of
// the most-interfered warps, and shows how skewed the interference is
// (one warp typically dominates the misses inflicted on another —
// CIAO's justification for tracking only the top interferer per warp).
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	spec, err := workload.ByName("Backprop")
	if err != nil {
		log.Fatal(err)
	}
	gto, err := harness.SchedulerByName("GTO")
	if err != nil {
		log.Fatal(err)
	}
	_, gpu, err := harness.RunOne(spec, gto, harness.Options{})
	if err != nil {
		log.Fatal(err)
	}

	im := gpu.Interference()
	fmt.Printf("Backprop under GTO: %d interference events recorded\n\n", im.Total())

	// Figure 1a: heatmap over the most-interfered warps.
	top := im.TopInterferedWarps(10)
	norm := im.Normalized()
	shades := []rune(" .:-=+*#%@")
	fmt.Println("interference heatmap (rows: interfered, cols: interferer)")
	fmt.Print("        ")
	for _, j := range top {
		fmt.Printf("W%-3d", j)
	}
	fmt.Println()
	for _, i := range top {
		fmt.Printf("  W%-3d  ", i)
		for _, j := range top {
			idx := int(norm[i][j] * float64(len(shades)-1))
			fmt.Printf(" %c  ", shades[idx])
		}
		fmt.Println()
	}

	// Figure 4a: the dominant interferer of the most-interfered warp.
	focus := top[0]
	maxW, maxC := im.MaxInterferer(focus)
	fmt.Printf("\nwarp W%d suffered %d total events; W%d alone caused %d (%.0f%%)\n",
		focus, im.RowTotal(focus), maxW, maxC,
		100*float64(maxC)/float64(im.RowTotal(focus)))

	// Figure 4b: min/max single-pair frequency across warps.
	min, max := im.MinMaxPerWarp()
	var hi uint64
	lo := ^uint64(0)
	for w := 0; w < im.N(); w++ {
		if max[w] == 0 {
			continue
		}
		if max[w] > hi {
			hi = max[w]
		}
		if min[w] < lo {
			lo = min[w]
		}
	}
	fmt.Printf("across warps, single-pair interference spans %d .. %d — the\n", lo, hi)
	fmt.Println("skew that lets CIAO track only the most frequent interferer per warp.")
}
