// Quickstart: build one simulated SM, run the same kernel under the
// baseline GTO scheduler and under CIAO-C, and compare IPC and cache
// behaviour — the library's minimal end-to-end path.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sm"
	"repro/internal/workload"
)

func main() {
	// Pick a benchmark from the paper's Table II suite. SYRK is a
	// small-working-set kernel where CIAO's shared-memory redirection
	// shines.
	spec, err := workload.ByName("SYRK")
	if err != nil {
		log.Fatal(err)
	}
	spec.InstrPerWarp = 3000 // shorten for a quick demo

	// Baseline: greedy-then-oldest scheduling, Table I hardware.
	baseline := sm.MustGPU(sm.DefaultConfig(), workload.MustKernel(spec), sched.NewGTO(), nil)
	base := baseline.Run()

	// CIAO-C: the interference detector plus shared-memory redirection
	// plus selective throttling. EnableSharedCache reserves the unused
	// shared memory for the CIAO on-chip cache.
	cfg := sm.DefaultConfig()
	cfg.EnableSharedCache = true
	ciao := core.NewC()
	gpu := sm.MustGPU(cfg, workload.MustKernel(spec), ciao, nil)
	res := gpu.Run()

	fmt.Printf("benchmark %s (%s, APKI %d, %d warps)\n\n",
		spec.Name, spec.Class, spec.APKI, spec.NumWarps)
	fmt.Printf("%-22s %10s %10s\n", "", "GTO", "CIAO-C")
	fmt.Printf("%-22s %10.4f %10.4f\n", "IPC", base.IPC, res.IPC)
	fmt.Printf("%-22s %10.3f %10.3f\n", "L1D hit rate", base.L1.HitRate(), res.L1.HitRate())
	fmt.Printf("%-22s %10d %10d\n", "VTA (lost-locality)", base.VTAHits, res.VTAHits)
	fmt.Printf("%-22s %10s %10.3f\n", "shared-cache hit rate", "-", res.SharedStats.HitRate())
	fmt.Printf("%-22s %10s %10d\n", "warps redirected", "-", ciao.Redirections)
	fmt.Printf("%-22s %10s %10d\n", "warps stalled", "-", ciao.Stalls)
	fmt.Printf("\nspeedup over GTO: %.2fx\n", res.IPC/base.IPC)
}
