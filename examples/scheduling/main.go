// Scheduling dynamics: reproduces the Figure 9 study. ATAX runs a
// memory-intensive phase followed by a compute-intensive phase inside
// one kernel; a static scheduler (Best-SWL) keeps its profiled warp
// limit through both phases, while CCWS and CIAO-T adapt. The program
// prints per-interval IPC and active-warp traces for the three
// schedulers so the phase change is visible.
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
)

func main() {
	scheds := []string{"Best-SWL", "CCWS", "CIAO-T"}
	res, err := harness.RunTimeSeries("ATAX", scheds, harness.Options{SampleInterval: 5000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ATAX over time (per-interval IPC / active warps)")
	fmt.Printf("%-10s", "cycle")
	for _, s := range scheds {
		fmt.Printf(" | %-16s", s)
	}
	fmt.Println()

	// Align samples across schedulers by index; runs differ in length,
	// so print until the shortest ends.
	n := res.Series[scheds[0]].Len()
	for _, s := range scheds[1:] {
		if l := res.Series[s].Len(); l < n {
			n = l
		}
	}
	step := n / 24
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i += step {
		s0 := res.Series[scheds[0]].Samples[i]
		fmt.Printf("%-10d", s0.Cycle)
		for _, s := range scheds {
			sam := res.Series[s].Samples[i]
			fmt.Printf(" | ipc %.2f aw %4d", sam.IPC, sam.ActiveWarps)
		}
		fmt.Println()
	}

	fmt.Println("\nmean IPC:")
	for _, s := range scheds {
		fmt.Printf("  %-9s %.3f\n", s, res.Series[s].MeanIPC())
	}
	fmt.Println("\nNote the second (compute) phase: adaptive schedulers re-activate")
	fmt.Println("warps and recover full TLP; Best-SWL stays at its static limit.")
}
