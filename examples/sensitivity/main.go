// Sensitivity study: reproduces Figure 11. Sweeps the CIAO high-cutoff
// epoch (1K..50K instructions) and the high-cutoff threshold
// (4%..0.5%, low-cutoff fixed at half) over the paper's sensitivity
// benchmark set, reporting IPC normalized to the published defaults
// (5000 instructions, 1%). The paper finds both knobs flat within
// ~15% / ~5%; this program lets you verify that stability claim.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/harness"
)

func main() {
	opt := harness.Options{InstrPerWarp: 3000}

	epochs := []uint64{1000, 5000, 10000, 50000}
	epochRes, err := harness.RunEpochSensitivity(epochs, opt)
	if err != nil {
		log.Fatal(err)
	}
	printSweep("high-cutoff epoch (instructions), IPC normalized to 5000", epochRes)

	cutoffs := []float64{0.04, 0.02, 0.01, 0.005}
	cutRes, err := harness.RunCutoffSensitivity(cutoffs, opt)
	if err != nil {
		log.Fatal(err)
	}
	printSweep("high-cutoff threshold, IPC normalized to 1%", cutRes)
}

func printSweep(title string, res *harness.SensitivityResult) {
	fmt.Println(title)
	var benches []string
	for _, row := range res.Normalized {
		for b := range row {
			benches = append(benches, b)
		}
		break
	}
	sort.Strings(benches)
	fmt.Printf("  %-10s", "value")
	for _, b := range benches {
		fmt.Printf(" %8s", b[:min(8, len(b))])
	}
	fmt.Println()
	for _, v := range res.Values {
		fmt.Printf("  %-10g", v)
		for _, b := range benches {
			fmt.Printf(" %8.2f", res.Normalized[v][b])
		}
		fmt.Println()
	}
	fmt.Println()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
