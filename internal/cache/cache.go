// Package cache models the set-associative caches of the simulated
// GPU: the 16KB 4-way L1D and the 768KB 8-way L2 of Table I, with LRU
// replacement, XOR-based set-index hashing, per-line warp-ID ownership
// tags (needed by the interference machinery) and the Victim Tag Array
// of CCWS/CIAO.
package cache

import (
	"fmt"

	"repro/internal/memory"
)

// WritePolicy selects the allocation/propagation behaviour on writes.
type WritePolicy uint8

// Write policies from Table I.
const (
	// WriteThroughNoAllocate: global writes at L1D go straight through
	// without allocating a line.
	WriteThroughNoAllocate WritePolicy = iota
	// WriteBackAllocate: L2 behaviour — allocate on write miss, write
	// dirty lines back on eviction.
	WriteBackAllocate
)

// Config shapes a cache.
type Config struct {
	// Name is used in diagnostics and stats.
	Name string
	// SizeBytes is the total data capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// Write selects the write policy.
	Write WritePolicy
	// UseXORHash selects XOR set-index hashing (the paper's baseline
	// enhancement) instead of modulo indexing.
	UseXORHash bool
	// HitLatency is the access latency in cycles (Table I: 1 for L1D).
	HitLatency int
}

// Sets returns the number of sets implied by the config.
func (c Config) Sets() int {
	return c.SizeBytes / (memory.LineSize * c.Ways)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	sets := c.Sets()
	if sets == 0 || sets*c.Ways*memory.LineSize != c.SizeBytes {
		return fmt.Errorf("cache %q: size %dB not divisible into %d-way 128B sets", c.Name, c.SizeBytes, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: %d sets is not a power of two", c.Name, sets)
	}
	return nil
}

// line is one cache line's tag state.
type line struct {
	valid   bool
	dirty   bool
	addr    memory.Addr // line address
	ownerW  int         // WID of the warp that filled the line
	lastUse uint64      // cycle of last touch, for LRU
}

// Eviction records a replaced line: the victim's address and the warp
// that owned it, plus the warp whose fill evicted it. This is exactly
// the (address, evictor WID) pair CIAO feeds into the owner's VTA set.
type Eviction struct {
	Line     memory.Addr
	OwnerWID int
	Evictor  int
	Dirty    bool
}

// Stats aggregates cache activity.
type Stats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	WriteHits   uint64
	WriteMiss   uint64
	Fills       uint64
	Invalidates uint64
}

// HitRate returns Hits/Accesses (0 for no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a set-associative cache with LRU replacement.
// The zero value is not usable; construct with New.
type Cache struct {
	cfg   Config
	index memory.SetIndexer
	sets  [][]line
	stats Stats
}

// New builds a cache from cfg, panicking on invalid geometry (a
// programming error in experiment setup, not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	var idx memory.SetIndexer
	if cfg.UseXORHash {
		idx = memory.NewXORIndexer(uint32(nsets))
	} else {
		idx = memory.ModuloIndexer{Sets: uint32(nsets)}
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{cfg: cfg, index: idx, sets: sets}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Probe checks for a hit without modifying replacement state.
func (c *Cache) Probe(addr memory.Addr) bool {
	la := addr.LineAddr()
	set := c.sets[c.index.SetIndex(la)]
	for i := range set {
		if set[i].valid && set[i].addr == la {
			return true
		}
	}
	return false
}

// Access performs a load or store lookup at cycle now for warp wid.
// On a hit it updates LRU state and returns hit=true. On a miss the
// caller is expected to allocate an MSHR entry and later call Fill.
// Store behaviour follows the configured write policy: under
// write-through-no-allocate a store miss does not allocate and a store
// hit updates the line in place (and is propagated by the caller).
func (c *Cache) Access(addr memory.Addr, wid int, now uint64, isWrite bool) (hit bool) {
	la := addr.LineAddr()
	set := c.sets[c.index.SetIndex(la)]
	c.stats.Accesses++
	for i := range set {
		if set[i].valid && set[i].addr == la {
			set[i].lastUse = now
			if isWrite {
				c.stats.WriteHits++
				if c.cfg.Write == WriteBackAllocate {
					set[i].dirty = true
				}
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	if isWrite {
		c.stats.WriteMiss++
	}
	return false
}

// Fill installs the line for warp wid at cycle now, returning the
// eviction record when a valid line was displaced. Fill of an
// already-present line refreshes its owner and LRU state (this happens
// when two warps' misses to the same line were merged in the MSHR).
func (c *Cache) Fill(addr memory.Addr, wid int, now uint64) (ev Eviction, evicted bool) {
	la := addr.LineAddr()
	si := c.index.SetIndex(la)
	set := c.sets[si]
	c.stats.Fills++

	// Already present: refresh.
	for i := range set {
		if set[i].valid && set[i].addr == la {
			set[i].lastUse = now
			return Eviction{}, false
		}
	}
	// Free way.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	// LRU victim.
	if victim == -1 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[victim].lastUse {
				victim = i
			}
		}
		ev = Eviction{
			Line:     set[victim].addr,
			OwnerWID: set[victim].ownerW,
			Evictor:  wid,
			Dirty:    set[victim].dirty,
		}
		evicted = true
		c.stats.Evictions++
	}
	set[victim] = line{valid: true, addr: la, ownerW: wid, lastUse: now}
	return ev, evicted
}

// Invalidate removes the line if present, returning whether it was
// present and dirty. CIAO uses this when migrating a line from L1D to
// the shared-memory cache (the single-copy coherence rule of §III-B).
func (c *Cache) Invalidate(addr memory.Addr) (present, dirty bool) {
	la := addr.LineAddr()
	set := c.sets[c.index.SetIndex(la)]
	for i := range set {
		if set[i].valid && set[i].addr == la {
			present, dirty = true, set[i].dirty
			set[i] = line{}
			c.stats.Invalidates++
			return present, dirty
		}
	}
	return false, false
}

// Owner returns the WID that filled the line, if present.
func (c *Cache) Owner(addr memory.Addr) (wid int, ok bool) {
	la := addr.LineAddr()
	set := c.sets[c.index.SetIndex(la)]
	for i := range set {
		if set[i].valid && set[i].addr == la {
			return set[i].ownerW, true
		}
	}
	return 0, false
}

// Stats returns a snapshot of the cache statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics without disturbing contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates every line and returns how many were dirty.
func (c *Cache) Flush() (dirtyLines int) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].valid && c.sets[si][wi].dirty {
				dirtyLines++
			}
			c.sets[si][wi] = line{}
		}
	}
	return dirtyLines
}

// OccupiedLines reports how many lines are currently valid.
func (c *Cache) OccupiedLines() int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].valid {
				n++
			}
		}
	}
	return n
}
