package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

// l1Config returns the Table I L1D configuration: 16KB, 4-way, 128B
// lines → 32 sets.
func l1Config() Config {
	return Config{Name: "L1D", SizeBytes: 16 << 10, Ways: 4, Write: WriteThroughNoAllocate, HitLatency: 1}
}

func TestConfigSets(t *testing.T) {
	if got := l1Config().Sets(); got != 32 {
		t.Fatalf("L1D sets = %d, want 32", got)
	}
	l2 := Config{Name: "L2", SizeBytes: 768 << 10, Ways: 8}
	if got := l2.Sets(); got != 768 {
		t.Fatalf("L2 sets = %d, want 768", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := l1Config()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := Config{Name: "bad", SizeBytes: 1000, Ways: 3}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid geometry accepted")
	}
	// 768KB 8-way yields 768 sets — not a power of two, must be caught.
	l2 := Config{Name: "L2", SizeBytes: 768 << 10, Ways: 8}
	if err := l2.Validate(); err == nil {
		t.Fatal("non-power-of-two set count accepted")
	}
}

func TestMissThenFillThenHit(t *testing.T) {
	c := New(l1Config())
	const wid = 3
	if c.Access(0x1000, wid, 1, false) {
		t.Fatal("cold access hit")
	}
	if _, ev := c.Fill(0x1000, wid, 2); ev {
		t.Fatal("fill into empty set evicted")
	}
	if !c.Access(0x1000, wid, 3, false) {
		t.Fatal("access after fill missed")
	}
	if !c.Access(0x107f, wid, 4, false) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1080, wid, 5, false) {
		t.Fatal("adjacent line hit spuriously")
	}
}

func TestLRUEvictionRecordsOwnerAndEvictor(t *testing.T) {
	cfg := l1Config()
	c := New(cfg)
	sets := uint64(cfg.Sets())
	// Fill all 4 ways of set 0 by warp 0..3 (modulo indexing).
	for w := 0; w < 4; w++ {
		a := memory.Addr(uint64(w) * sets * memory.LineSize)
		c.Fill(a, w, uint64(w+1))
	}
	// Touch way 0 so way for warp 1 becomes LRU.
	c.Access(0, 0, 10, false)
	// Fifth line in the same set must evict warp 1's line.
	a5 := memory.Addr(4 * sets * memory.LineSize)
	ev, evicted := c.Fill(a5, 9, 11)
	if !evicted {
		t.Fatal("full set fill did not evict")
	}
	if ev.OwnerWID != 1 {
		t.Errorf("evicted owner = %d, want 1 (LRU)", ev.OwnerWID)
	}
	if ev.Evictor != 9 {
		t.Errorf("evictor = %d, want 9", ev.Evictor)
	}
	if ev.Line != memory.Addr(1*sets*memory.LineSize) {
		t.Errorf("evicted line = %s", ev.Line)
	}
}

func TestFillExistingLineRefreshes(t *testing.T) {
	c := New(l1Config())
	c.Fill(0x40, 1, 1)
	if _, ev := c.Fill(0x40, 2, 2); ev {
		t.Fatal("refill of present line evicted")
	}
	if c.OccupiedLines() != 1 {
		t.Fatalf("occupied = %d, want 1", c.OccupiedLines())
	}
}

func TestWritePolicies(t *testing.T) {
	wt := New(l1Config())
	wt.Fill(0x80, 0, 1)
	wt.Access(0x80, 0, 2, true) // write hit under write-through
	_, dirty := wt.Invalidate(0x80)
	if dirty {
		t.Error("write-through line marked dirty")
	}

	wb := New(Config{Name: "wb", SizeBytes: 16 << 10, Ways: 4, Write: WriteBackAllocate})
	wb.Fill(0x80, 0, 1)
	wb.Access(0x80, 0, 2, true)
	_, dirty = wb.Invalidate(0x80)
	if !dirty {
		t.Error("write-back write hit did not mark dirty")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(l1Config())
	c.Fill(0x3000, 5, 1)
	present, _ := c.Invalidate(0x3000)
	if !present {
		t.Fatal("invalidate missed present line")
	}
	if c.Probe(0x3000) {
		t.Fatal("line still present after invalidate")
	}
	if present, _ := c.Invalidate(0x3000); present {
		t.Fatal("double invalidate reported present")
	}
}

func TestOwner(t *testing.T) {
	c := New(l1Config())
	c.Fill(0x5000, 7, 1)
	wid, ok := c.Owner(0x5040)
	if !ok || wid != 7 {
		t.Fatalf("Owner = (%d,%v), want (7,true)", wid, ok)
	}
	if _, ok := c.Owner(0x9000); ok {
		t.Fatal("Owner reported for absent line")
	}
}

func TestStatsAndHitRate(t *testing.T) {
	c := New(l1Config())
	c.Access(0x0, 0, 1, false) // miss
	c.Fill(0x0, 0, 2)
	c.Access(0x0, 0, 3, false) // hit
	c.Access(0x0, 0, 4, false) // hit
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if hr := s.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %f, want 2/3", hr)
	}
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestFlush(t *testing.T) {
	c := New(Config{Name: "wb", SizeBytes: 16 << 10, Ways: 4, Write: WriteBackAllocate})
	c.Fill(0x0, 0, 1)
	c.Fill(0x80, 0, 1)
	c.Access(0x0, 0, 2, true) // dirty one line
	if d := c.Flush(); d != 1 {
		t.Fatalf("flush dirty count = %d, want 1", d)
	}
	if c.OccupiedLines() != 0 {
		t.Fatal("flush left lines valid")
	}
}

// Property: occupancy never exceeds capacity and a filled line is
// always observable until evicted or invalidated.
func TestCacheOccupancyInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(l1Config())
		capacity := l1Config().Sets() * l1Config().Ways
		for i, a := range addrs {
			addr := memory.Addr(a) * memory.LineSize
			if !c.Access(addr, i%48, uint64(i), false) {
				c.Fill(addr, i%48, uint64(i))
			}
			if !c.Probe(addr) {
				return false // just-filled or hit line must be present
			}
			if c.OccupiedLines() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestXORHashConfigChangesMapping(t *testing.T) {
	plain := New(l1Config())
	xcfg := l1Config()
	xcfg.UseXORHash = true
	xor := New(xcfg)

	// Power-of-two stride of Sets*LineSize thrashes a single set under
	// modulo but spreads under XOR: fill 8 such lines with 4 ways and
	// count how many remain resident.
	stride := uint64(l1Config().Sets()) * memory.LineSize
	for i := uint64(0); i < 8; i++ {
		a := memory.Addr(i * stride)
		plain.Fill(a, 0, i)
		xor.Fill(a, 0, i)
	}
	if plain.OccupiedLines() != 4 {
		t.Errorf("modulo-indexed resident lines = %d, want 4 (one set)", plain.OccupiedLines())
	}
	if xor.OccupiedLines() <= 4 {
		t.Errorf("XOR-indexed resident lines = %d, want > 4", xor.OccupiedLines())
	}
}
