package cache

import "repro/internal/memory"

// VTA is the Victim Tag Array of CCWS as adapted by CIAO (§II-C,
// Table I: 8 tags per set, 48 sets — one set per hardware warp slot —
// FIFO replacement). Each entry stores the evicted line's address and
// the WID of the warp whose fill performed the eviction, so that a
// subsequent VTA hit both signals lost locality for the owner warp and
// names the interfering warp.
type VTA struct {
	tagsPerSet int
	sets       [][]vtaEntry
	// next is the FIFO insertion cursor per set.
	next                  []int
	hits, probes, inserts uint64
}

type vtaEntry struct {
	valid   bool
	line    memory.Addr
	evictor int
}

// NewVTA builds a VTA with one set per warp slot.
func NewVTA(numWarps, tagsPerSet int) *VTA {
	if numWarps <= 0 || tagsPerSet <= 0 {
		panic("cache: VTA geometry must be positive")
	}
	sets := make([][]vtaEntry, numWarps)
	backing := make([]vtaEntry, numWarps*tagsPerSet)
	for i := range sets {
		sets[i], backing = backing[:tagsPerSet], backing[tagsPerSet:]
	}
	return &VTA{tagsPerSet: tagsPerSet, sets: sets, next: make([]int, numWarps)}
}

// Insert records that ownerWID's line was evicted by evictorWID,
// displacing the oldest entry of the owner's set (FIFO) if full.
func (v *VTA) Insert(ownerWID int, line memory.Addr, evictorWID int) {
	if ownerWID < 0 || ownerWID >= len(v.sets) {
		return
	}
	set := v.sets[ownerWID]
	cur := v.next[ownerWID]
	set[cur] = vtaEntry{valid: true, line: line.LineAddr(), evictor: evictorWID}
	v.next[ownerWID] = (cur + 1) % v.tagsPerSet
	v.inserts++
}

// Probe checks whether a miss by warp wid on line was previously
// evicted (a VTA hit — lost locality). On a hit the entry is consumed
// and the evicting warp's WID is returned.
func (v *VTA) Probe(wid int, line memory.Addr) (hit bool, evictorWID int) {
	if wid < 0 || wid >= len(v.sets) {
		return false, 0
	}
	v.probes++
	la := line.LineAddr()
	set := v.sets[wid]
	for i := range set {
		if set[i].valid && set[i].line == la {
			v.hits++
			ev := set[i].evictor
			set[i] = vtaEntry{}
			return true, ev
		}
	}
	return false, 0
}

// Stats reports cumulative probes, hits and inserts.
func (v *VTA) Stats() (probes, hits, inserts uint64) {
	return v.probes, v.hits, v.inserts
}

// Reset clears the array and statistics.
func (v *VTA) Reset() {
	for i := range v.sets {
		for j := range v.sets[i] {
			v.sets[i][j] = vtaEntry{}
		}
		v.next[i] = 0
	}
	v.hits, v.probes, v.inserts = 0, 0, 0
}

// NumSets reports the number of warp slots tracked.
func (v *VTA) NumSets() int { return len(v.sets) }

// TagsPerSet reports the per-warp FIFO depth.
func (v *VTA) TagsPerSet() int { return v.tagsPerSet }
