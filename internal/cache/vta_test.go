package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

func newTestVTA() *VTA { return NewVTA(48, 8) } // Table I geometry

func TestVTAInsertProbe(t *testing.T) {
	v := newTestVTA()
	v.Insert(3, 0x1000, 7)

	hit, evictor := v.Probe(3, 0x1040) // same line
	if !hit || evictor != 7 {
		t.Fatalf("probe = (%v,%d), want (true,7)", hit, evictor)
	}
	// Entry consumed on hit.
	if hit, _ := v.Probe(3, 0x1000); hit {
		t.Fatal("probe hit a consumed entry")
	}
}

func TestVTAPerWarpIsolation(t *testing.T) {
	v := newTestVTA()
	v.Insert(3, 0x1000, 7)
	if hit, _ := v.Probe(4, 0x1000); hit {
		t.Fatal("warp 4 hit warp 3's VTA set")
	}
}

func TestVTAFIFOReplacement(t *testing.T) {
	v := NewVTA(2, 2)
	v.Insert(0, 0x000, 1)
	v.Insert(0, 0x080, 2)
	v.Insert(0, 0x100, 3) // displaces 0x000 (oldest)

	if hit, _ := v.Probe(0, 0x000); hit {
		t.Fatal("oldest entry not displaced by FIFO")
	}
	if hit, _ := v.Probe(0, 0x080); !hit {
		t.Fatal("second entry should survive")
	}
	if hit, _ := v.Probe(0, 0x100); !hit {
		t.Fatal("newest entry should survive")
	}
}

func TestVTAOutOfRangeWarpIsIgnored(t *testing.T) {
	v := newTestVTA()
	v.Insert(-1, 0x0, 0)
	v.Insert(48, 0x0, 0)
	if hit, _ := v.Probe(-1, 0x0); hit {
		t.Fatal("out-of-range probe hit")
	}
	if hit, _ := v.Probe(48, 0x0); hit {
		t.Fatal("out-of-range probe hit")
	}
}

func TestVTAStatsAndReset(t *testing.T) {
	v := newTestVTA()
	v.Insert(0, 0x0, 1)
	v.Probe(0, 0x0)
	v.Probe(0, 0x80)
	probes, hits, inserts := v.Stats()
	if probes != 2 || hits != 1 || inserts != 1 {
		t.Fatalf("stats = (%d,%d,%d), want (2,1,1)", probes, hits, inserts)
	}
	v.Reset()
	probes, hits, inserts = v.Stats()
	if probes != 0 || hits != 0 || inserts != 0 {
		t.Fatal("reset did not clear stats")
	}
	if hit, _ := v.Probe(0, 0x0); hit {
		t.Fatal("reset did not clear entries")
	}
}

func TestVTAGeometryAccessors(t *testing.T) {
	v := newTestVTA()
	if v.NumSets() != 48 || v.TagsPerSet() != 8 {
		t.Fatalf("geometry = (%d,%d), want (48,8)", v.NumSets(), v.TagsPerSet())
	}
}

// Property: an insert for warp w is observable by w (until displaced by
// tagsPerSet further inserts) and never observable by any other warp.
func TestVTAIsolationInvariant(t *testing.T) {
	f := func(owner uint8, line uint16, evictor uint8) bool {
		v := newTestVTA()
		w := int(owner) % 48
		v.Insert(w, memory.Addr(line)*memory.LineSize, int(evictor))
		hit, got := v.Probe(w, memory.Addr(line)*memory.LineSize)
		if !hit || got != int(evictor) {
			return false
		}
		// No cross-warp visibility.
		other := (w + 1) % 48
		hit, _ = v.Probe(other, memory.Addr(line)*memory.LineSize)
		return !hit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
