package coord

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/sweep"
)

// postAdmin hits one admin endpoint over HTTP and returns the status
// code.
func postAdmin(t *testing.T, srv *httptest.Server, path, sweepID string, shard int) int {
	t.Helper()
	body, _ := json.Marshal(adminRequest{Sweep: sweepID, Shard: &shard})
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// TestAdminForceExpireReassignsWithinOnePoll is the acceptance
// criterion: a lease force-expired through POST /coord/admin/expire is
// granted to the very next lease poll — no TTL wait — and the old
// holder's heartbeat answers stale.
func TestAdminForceExpireReassignsWithinOnePoll(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	// TTL a minute: organic expiry cannot be what re-assigns the shard.
	hub := NewHub(Config{ShardSize: 4, TTL: time.Minute})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Cancel()
	c := d.(*Coordinator)

	l, ok := c.Lease(wid("wedged"))
	if !ok {
		t.Fatal("no lease")
	}
	// Expiring a pending shard is a 409; the wedged one expires fine.
	other := 1 - l.Shard
	if code := postAdmin(t, srv, "/coord/admin/expire", "run-1", other); code != http.StatusConflict {
		t.Fatalf("expire of a pending shard = %d, want 409", code)
	}
	if code := postAdmin(t, srv, "/coord/admin/expire", "run-1", l.Shard); code != http.StatusOK {
		t.Fatalf("admin expire = %d, want 200", code)
	}
	if c.Heartbeat(wid("wedged"), l.Shard) {
		t.Fatal("force-expired lease still answers heartbeats")
	}
	// The very next poll re-assigns the shard, same cells.
	l2, ok := c.Lease(wid("fresh"))
	if !ok {
		t.Fatal("force-expired shard not re-leased on the next poll")
	}
	if l2.Shard != l.Shard {
		t.Fatalf("next poll got shard %d, want the force-expired %d", l2.Shard, l.Shard)
	}
	snap := hub.counters.Snapshot()
	if snap.AdminExpired != 1 || snap.LeasesGranted != 2 {
		t.Fatalf("counters = %+v, want 1 admin_expired and 2 grants", snap)
	}
	// Unknown sweeps 404; a request missing the shard field is a 400,
	// never an action against shard 0.
	if code := postAdmin(t, srv, "/coord/admin/expire", "no-such", 0); code != http.StatusNotFound {
		t.Fatalf("expire on unknown sweep = %d, want 404", code)
	}
	resp, err := http.Post(srv.URL+"/coord/admin/expire", "application/json", bytes.NewReader([]byte(`{"sweep":"run-1"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("shard-less admin request = %d, want 400", resp.StatusCode)
	}
}

// TestAdminReleaseResetsLeaseBudget: the lease cap fails *silent*
// livelock; an explicit operator release is informed consent to
// retry. A shard force-expired (or unquarantined) at the cap must
// re-lease instead of terminally failing the sweep on the next poll —
// and the reset must survive a crash, since admin actions persist as
// a journal snapshot.
func TestAdminReleaseResetsLeaseBudget(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, dir := newStore(t, spec, cells)

	hub := NewHub(Config{ShardSize: 4, TTL: time.Minute, MaxLeases: 1})
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)
	l, ok := c.Lease(wid("wedged"))
	if !ok {
		t.Fatal("no lease")
	}
	// The shard is at MaxLeases=1. Force-expire, then crash before
	// anyone re-leases: the budget reset must be in the journal.
	if err := c.AdminExpire(l.Shard); err != nil {
		t.Fatal(err)
	}
	store.Close() // crash

	st2, err := sweep.Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	hub2 := NewHub(Config{ShardSize: 4, TTL: time.Minute, MaxLeases: 1})
	d2, _, err := hub2.Recover(spec, cells, st2, nil)
	if err != nil || d2 == nil {
		t.Fatalf("Recover = (%v, %v)", d2, err)
	}
	c2 := d2.(*Coordinator)
	l2, ok := c2.Lease(wid("fresh"))
	if !ok {
		t.Fatalf("released shard refused after recovery; progress %+v", d2.Progress())
	}
	if d2.Progress().State != sweep.StateRunning {
		t.Fatalf("sweep state = %+v, want still running (not failed at the cap)", d2.Progress())
	}
	for _, lease := range []Lease{l2} {
		if _, _, err := c2.Complete("fresh", lease.Shard, runLeasedShard(t, lease, cells)); err != nil {
			t.Fatal(err)
		}
	}
	if lrest, ok := c2.Lease(wid("fresh")); ok {
		if _, _, err := c2.Complete("fresh", lrest.Shard, runLeasedShard(t, lrest, cells)); err != nil {
			t.Fatal(err)
		}
	}
	waitDone(t, d2)
	if final := d2.Progress(); final.State != sweep.StateDone || final.Done != 8 {
		t.Fatalf("final = %+v", final)
	}
}

// TestQuarantineParksShardUntilDoneWithQuarantined: a quarantined
// shard is never leased again, its holder goes stale, and once every
// other shard retires the sweep finishes "done-with-quarantined" with
// the parked cells absent from the store.
func TestQuarantineParksShardUntilDoneWithQuarantined(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, dir := newStore(t, spec, cells)
	defer store.Close()

	hub := NewHub(Config{ShardSize: 4, TTL: time.Minute})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)

	// The poisonous shard is leased when the operator parks it.
	l, ok := c.Lease(wid("victim"))
	if !ok {
		t.Fatal("no lease")
	}
	if code := postAdmin(t, srv, "/coord/admin/quarantine", "run-1", l.Shard); code != http.StatusOK {
		t.Fatalf("quarantine = %d, want 200", code)
	}
	if c.Heartbeat(wid("victim"), l.Shard) {
		t.Fatal("quarantined shard still answers its old holder's heartbeats")
	}
	// Quarantine is idempotent; no worker can lease the parked shard.
	if code := postAdmin(t, srv, "/coord/admin/quarantine", "run-1", l.Shard); code != http.StatusOK {
		t.Fatal("re-quarantine should be a no-op 200")
	}
	l2, ok := c.Lease(wid("w2"))
	if !ok {
		t.Fatal("healthy shard not leased")
	}
	if l2.Shard == l.Shard {
		t.Fatal("quarantined shard was leased")
	}
	if snap := c.Snapshot(); snap.QuarantinedShards != 1 {
		t.Fatalf("snapshot = %+v, want 1 quarantined shard", snap)
	}

	// Finishing the healthy shard ends the sweep done-with-quarantined.
	if _, _, err := c.Complete("w2", l2.Shard, runLeasedShard(t, l2, cells)); err != nil {
		t.Fatal(err)
	}
	waitDone(t, d)
	final := d.Progress()
	if final.State != sweep.StateDoneQuarantined || final.Done != 4 {
		t.Fatalf("final = %+v, want done-with-quarantined with 4 done", final)
	}
	perKey := okRecordsPerKey(t, dir)
	if len(perKey) != 4 {
		t.Fatalf("store holds %d cells, want only the healthy shard's 4", len(perKey))
	}
	// Admin actions against the finished sweep 404 (it unregistered).
	if code := postAdmin(t, srv, "/coord/admin/unquarantine", "run-1", l.Shard); code != http.StatusNotFound {
		t.Fatalf("unquarantine after finish = %d, want 404", code)
	}
	if got := hub.counters.Snapshot().ShardsQuarantined; got != 1 {
		t.Errorf("shards_quarantined = %d, want 1", got)
	}
}

// TestUnquarantineReleasesShard: releasing a parked shard returns it
// to the pending pool and the sweep finishes clean.
func TestUnquarantineReleasesShard(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	// Two shards: quarantining one must leave the sweep running (a
	// quarantine of the *last* open shard finishes it immediately).
	hub := NewHub(Config{ShardSize: 4, TTL: time.Minute})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)

	if code := postAdmin(t, srv, "/coord/admin/quarantine", "run-1", 0); code != http.StatusOK {
		t.Fatalf("quarantine = %d", code)
	}
	// The only leasable shard is the healthy one (held, not completed,
	// so the sweep cannot finish under the admin checks below).
	healthy, ok := c.Lease(wid("w1"))
	if !ok {
		t.Fatal("healthy shard not leased")
	}
	if healthy.Shard == 0 {
		t.Fatal("quarantined shard leased")
	}
	// Force-expiring a quarantined (not leased) shard is a 409.
	if code := postAdmin(t, srv, "/coord/admin/expire", "run-1", 0); code != http.StatusConflict {
		t.Fatal("expire of a quarantined shard should 409")
	}
	if code := postAdmin(t, srv, "/coord/admin/unquarantine", "run-1", 0); code != http.StatusOK {
		t.Fatalf("unquarantine = %d", code)
	}
	l, ok := c.Lease(wid("w1"))
	if !ok || l.Shard != 0 {
		t.Fatalf("released shard not leased (ok=%v shard=%d)", ok, l.Shard)
	}
	for _, lease := range []Lease{healthy, l} {
		if _, _, err := c.Complete("w1", lease.Shard, runLeasedShard(t, lease, cells)); err != nil {
			t.Fatal(err)
		}
	}
	waitDone(t, d)
	if final := d.Progress(); final.State != sweep.StateDone || final.Done != 8 {
		t.Fatalf("final = %+v", final)
	}
	if got := hub.counters.Snapshot().ShardsUnquarantined; got != 1 {
		t.Errorf("shards_unquarantined = %d, want 1", got)
	}
}

// TestQuarantineSurvivesRestart is the persistence acceptance
// criterion: a quarantine journals, so a coordinator rebuilt from the
// journal after a crash still refuses to lease the parked shard — and
// still finishes done-with-quarantined.
func TestQuarantineSurvivesRestart(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, dir := newStore(t, spec, cells)

	hub := NewHub(Config{ShardSize: 4, TTL: time.Minute})
	d, err := hub.Distribute("run-7", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)
	if err := c.Quarantine(1); err != nil {
		t.Fatal(err)
	}
	store.Close() // crash: no finish line journaled

	st2, err := sweep.Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	hub2 := NewHub(Config{ShardSize: 4, TTL: time.Minute})
	d2, id, err := hub2.Recover(spec, cells, st2, nil)
	if err != nil || d2 == nil {
		t.Fatalf("Recover = (%v, %q, %v)", d2, id, err)
	}
	c2 := d2.(*Coordinator)
	snap := c2.Snapshot()
	if snap.QuarantinedShards != 1 || snap.PendingShards != 1 {
		t.Fatalf("recovered table = %+v, want the quarantine preserved", snap)
	}
	// Only the healthy shard leases; completing it finishes the sweep
	// done-with-quarantined across the restart.
	l, ok := c2.Lease(wid("w1"))
	if !ok {
		t.Fatal("healthy shard not leased after recovery")
	}
	if l.Shard == 1 {
		t.Fatal("recovered coordinator leased the quarantined shard")
	}
	if _, _, err := c2.Complete("w1", l.Shard, runLeasedShard(t, l, cells)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Lease(wid("w1")); ok {
		t.Fatal("a second shard leased; quarantine lost")
	}
	waitDone(t, d2)
	if final := d2.Progress(); final.State != sweep.StateDoneQuarantined {
		t.Fatalf("final = %+v, want done-with-quarantined", final)
	}
	// The finished journal opts out of any further recovery.
	if need, err := hub2.NeedsRecovery(dir); need || err != nil {
		t.Fatalf("NeedsRecovery after finish = (%v, %v), want false", need, err)
	}
}

// TestAdminLeaseTable: GET /coord/admin/leases reports live leases
// with ages, worker tags, renew counts and per-shard requirements.
func TestAdminLeaseTable(t *testing.T) {
	spec, cells := mixedSpec(t)
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	hub := NewHub(Config{ShardSize: 4, TTL: time.Minute})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Cancel()
	c := d.(*Coordinator)

	l, ok := c.Lease(wid("holder", "bigmem"))
	if !ok {
		t.Fatal("no lease")
	}
	for i := 0; i < 3; i++ {
		if !c.Heartbeat(wid("holder", "bigmem"), l.Shard) {
			t.Fatal("heartbeat refused")
		}
	}

	resp, err := http.Get(srv.URL + "/coord/admin/leases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Sweeps []LeaseTable `json:"sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Sweeps) != 1 {
		t.Fatalf("lease table lists %d sweeps, want 1", len(out.Sweeps))
	}
	tbl := out.Sweeps[0]
	if tbl.Sweep != "run-1" || len(tbl.Shards) != 2 {
		t.Fatalf("table = %+v, want run-1 with 2 shards", tbl)
	}
	var leased *ShardLease
	sawRequires := false
	for i := range tbl.Shards {
		row := &tbl.Shards[i]
		if row.State == shardStateLeased {
			leased = row
		}
		if len(row.Requires) == 1 && row.Requires[0] == "bigmem" {
			sawRequires = true
		}
	}
	if leased == nil {
		t.Fatalf("no leased row in %+v", tbl.Shards)
	}
	if leased.Worker != "holder" || leased.Renews != 3 || leased.Leases != 1 {
		t.Fatalf("leased row = %+v, want holder with 3 renews", leased)
	}
	if leased.ExpiresInMS <= 0 {
		t.Errorf("leased row expires_in_ms = %d, want positive (fresh heartbeat)", leased.ExpiresInMS)
	}
	if len(leased.WorkerTags) != 1 || leased.WorkerTags[0] != "bigmem" {
		t.Errorf("leased row worker_tags = %v, want [bigmem]", leased.WorkerTags)
	}
	if !sawRequires {
		t.Error("no row carries the bigmem requirement")
	}
	if len(tbl.Workers) != 1 || tbl.Workers[0].Name != "holder" {
		t.Fatalf("workers = %+v, want the one seen worker", tbl.Workers)
	}
}
