package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/sweep"
)

// mixedSpec expands to 8 cells across two configs: 4 unconstrained
// baseline cells and 4 "bigmem" cells (a larger L1, so the two configs
// content-address apart and both survive dedup).
func mixedSpec(t *testing.T) (sweep.Spec, []sweep.Cell) {
	t.Helper()
	spec := sweep.Spec{
		Name:        "mixed",
		Distributed: true,
		Axes: sweep.Axes{
			Schedulers: []string{"GTO", "CCWS"},
			Benchmarks: []string{"SYRK", "ATAX"},
			Configs: []sweep.Config{
				{Name: "base"},
				{Name: "big", Requires: []string{"bigmem"}, Override: harness.Override{L1SizeKB: 32}},
			},
		},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	return spec, cells
}

// completeLease runs a lease's cells through a fake engine and acks it.
func completeLease(t *testing.T, c *Coordinator, worker string, l Lease, cells []sweep.Cell) {
	t.Helper()
	if _, _, err := c.Complete(worker, l.Shard, runLeasedShard(t, l, cells)); err != nil {
		t.Fatal(err)
	}
}

// TestConstrainedShardsRouteToMatchingWorkers is the routing
// acceptance criterion: shards whose cells require "bigmem" are never
// granted to an untagged worker, lease denials on constrained work
// count toward the starvation metrics, and a tagged worker drains
// exactly the constrained shards.
func TestConstrainedShardsRouteToMatchingWorkers(t *testing.T) {
	spec, cells := mixedSpec(t)
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	hub := NewHub(Config{ShardSize: 2, TTL: 5 * time.Second})
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)

	// The untagged worker can drain only the two unconstrained shards.
	small := wid("small")
	for i := 0; i < 2; i++ {
		l, ok := c.Lease(small)
		if !ok {
			t.Fatalf("untagged worker refused lease %d", i)
		}
		for _, idx := range l.Indexes {
			if req := cells[idx].Requires; len(req) != 0 {
				t.Fatalf("untagged worker leased constrained cell %d (requires %v)", idx, req)
			}
		}
		completeLease(t, c, small.Name, l, cells)
	}
	// Everything left requires bigmem: the untagged worker is starved
	// out, visibly.
	if _, ok := c.Lease(small); ok {
		t.Fatal("untagged worker leased a bigmem shard")
	}
	if got := hub.counters.Snapshot().LeasesStarved; got == 0 {
		t.Error("constrained lease denial not counted in LeasesStarved")
	}
	if p := c.Progress(); p.Starved != 4 {
		t.Errorf("Progress.Starved = %d, want 4 (the bigmem cells)", p.Starved)
	}
	if snap := c.Snapshot(); snap.Starved != 4 {
		t.Errorf("Snapshot starved = %d, want 4", snap.Starved)
	}

	// A tagged worker joining unblocks the rest; extra tags are fine
	// (superset match).
	big := wid("big", "bigmem", "gpu")
	for i := 0; i < 2; i++ {
		l, ok := c.Lease(big)
		if !ok {
			t.Fatalf("tagged worker refused lease %d; %+v", i, c.Snapshot())
		}
		for _, idx := range l.Indexes {
			if req := cells[idx].Requires; len(req) != 1 || req[0] != "bigmem" {
				t.Fatalf("tagged worker's lease carries cell %d with requires %v, want [bigmem]", idx, req)
			}
		}
		completeLease(t, c, big.Name, l, cells)
	}
	waitDone(t, d)
	final := d.Progress()
	if final.State != sweep.StateDone || final.Done != 8 || final.Starved != 0 {
		t.Fatalf("final = %+v", final)
	}
}

// TestMaxCellsHintRespected: a worker advertising a max-cells ceiling
// below the shard size never receives that shard; an unlimited worker
// does.
func TestMaxCellsHintRespected(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	hub := NewHub(Config{ShardSize: 4, TTL: 5 * time.Second})
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Cancel()
	c := d.(*Coordinator)

	tiny := WorkerID{Name: "tiny", MaxCells: 2}
	if _, ok := c.Lease(tiny); ok {
		t.Fatal("worker with maxcells=2 leased a 4-cell shard")
	}
	if got := hub.counters.Snapshot().LeasesStarved; got == 0 {
		t.Error("size-constrained denial not counted in LeasesStarved")
	}
	if _, ok := c.Lease(WorkerID{Name: "roomy", MaxCells: 4}); !ok {
		t.Fatal("worker with maxcells=4 refused a 4-cell shard")
	}
	if _, ok := c.Lease(wid("unlimited")); !ok {
		t.Fatal("unlimited worker refused a shard")
	}
}

// TestStarvedSweepCompletesWhenMatchingWorkerJoins is the satellite
// acceptance test: a sweep whose requires no live worker satisfies
// must surface "starved" in /sweeps status instead of hanging
// silently, and must finish once a matching worker joins — driven
// end-to-end through the manager, the hub's HTTP API and RunWorker.
func TestStarvedSweepCompletesWhenMatchingWorkerJoins(t *testing.T) {
	spec := sweep.Spec{
		Name:        "starved",
		Distributed: true,
		Requires:    []string{"bigmem"},
		Axes: sweep.Axes{
			Schedulers: []string{"GTO"},
			Benchmarks: []string{"SYRK", "ATAX"},
		},
	}
	if _, err := spec.Expand(); err != nil {
		t.Fatal(err)
	}

	hub := NewHub(Config{ShardSize: 1, TTL: 5 * time.Second})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	m := sweep.NewManager(fakeEngine(), t.TempDir(), 0)
	m.SetDistributor(hub)
	run, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}

	// An untagged worker polls away; the sweep must report starved.
	defer startWorker(t, srv.URL, "plain", fakeEngine(), 10*time.Millisecond)()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if p := run.Progress(); p.Starved == 2 && p.State == sweep.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("starvation never surfaced in status: %+v", run.Progress())
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-run.Done():
		t.Fatalf("constrained sweep finished with no matching worker: %+v", run.Progress())
	default:
	}

	// The matching worker joins; the sweep completes.
	stop := func() {}
	defer func() { stop() }()
	ctxStop := startTaggedWorker(t, srv.URL, "big", []string{"bigmem"}, fakeEngine())
	stop = ctxStop
	select {
	case <-run.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("sweep did not finish after a matching worker joined: %+v", run.Progress())
	}
	final := run.Progress()
	if final.State != sweep.StateDone || final.Done != 2 || final.Starved != 0 {
		t.Fatalf("final = %+v", final)
	}
}

// startTaggedWorker mirrors startWorker with capability tags.
func startTaggedWorker(t *testing.T, url, name string, tags []string, engine *service.Engine) func() {
	t.Helper()
	return startWorkerCfg(t, WorkerConfig{
		URL:    url,
		Name:   name,
		Tags:   tags,
		Engine: engine,
		Poll:   10 * time.Millisecond,
		Logf:   t.Logf,
	})
}

// TestBusyWorkerElsewhereIsNotStarvation: a worker that leased from
// sweep A and is only heartbeating must stay a live capability for
// sweep B on the same hub — B's constrained shards are waiting, not
// starved, because the capable worker will be back on its next poll.
func TestBusyWorkerElsewhereIsNotStarvation(t *testing.T) {
	specA, cellsA := eightCellSpec(t)
	storeA, _ := newStore(t, specA, cellsA)
	defer storeA.Close()
	specB := sweep.Spec{
		Name:        "constrained",
		Distributed: true,
		Requires:    []string{"bigmem"},
		Axes:        sweep.Axes{Schedulers: []string{"GTO"}, Benchmarks: []string{"SYRK", "ATAX"}},
	}
	cellsB, err := specB.Expand()
	if err != nil {
		t.Fatal(err)
	}
	storeB, _ := newStore(t, specB, cellsB)
	defer storeB.Close()

	hub := NewHub(Config{ShardSize: 8, TTL: 5 * time.Second})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	dA, err := hub.Distribute("run-a", specA, cellsA, storeA, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dA.Cancel()
	dB, err := hub.Distribute("run-b", specB, cellsB, storeB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dB.Cancel()
	cB := dB.(*Coordinator)

	// Nobody has ever been seen: the constrained sweep is starved.
	if p := cB.Progress(); p.Starved != 2 {
		t.Fatalf("pre-fleet Starved = %d, want 2", p.Starved)
	}

	// The capable worker leases through the hub and gets sweep A's
	// shard (registered first) — the hub-wide scan must still record
	// its capabilities with sweep B.
	big := WorkerID{Name: "big", Tags: []string{"bigmem"}}
	l, ok, _, _ := hub.lease(big)
	if !ok || l.Sweep != "run-a" {
		t.Fatalf("hub.lease = (%+v, %v), want sweep A's shard", l, ok)
	}
	if p := cB.Progress(); p.Starved != 0 {
		t.Fatalf("Starved = %d after the capable worker's poll, want 0", p.Starved)
	}

	// Heartbeats over HTTP (busy on A, never polling) keep it visible
	// to B too.
	body, _ := json.Marshal(heartbeatRequest{Worker: "big", Sweep: "run-a", Shard: l.Shard, Tags: big.Tags})
	resp, err := http.Post(srv.URL+"/coord/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if p := cB.Progress(); p.Starved != 0 {
		t.Fatalf("Starved = %d while the capable worker heartbeats elsewhere, want 0", p.Starved)
	}

	// A denied hub-wide poll by an untagged worker counts one starved
	// lease, not one per constrained sweep — and only when nothing in
	// the whole scan was granted.
	before := hub.counters.Snapshot().LeasesStarved
	_, ok, _, starved := hub.lease(wid("plain"))
	if ok {
		t.Fatal("untagged worker got a lease with A leased out and B constrained")
	}
	if starved {
		t.Error("poll flagged starved while sweep A is merely leased out (retry is meaningful)")
	}
	if got := hub.counters.Snapshot().LeasesStarved; got != before+1 {
		t.Fatalf("leases_starved went %d -> %d, want +1 per denied poll", before, got)
	}
}

// TestStarvedWorkerHonorsIdleExit: a worker that can serve none of
// the remaining shards receives the "starved" lease status and counts
// it toward -idle-exit, instead of polling forever on work it can
// never run.
func TestStarvedWorkerHonorsIdleExit(t *testing.T) {
	spec := sweep.Spec{
		Name:        "starved-exit",
		Distributed: true,
		Requires:    []string{"bigmem"},
		Axes:        sweep.Axes{Schedulers: []string{"GTO"}, Benchmarks: []string{"SYRK"}},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	hub := NewHub(Config{ShardSize: 1, TTL: 5 * time.Second})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Cancel()

	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(), WorkerConfig{
			URL:      srv.URL,
			Name:     "plain",
			Engine:   fakeEngine(),
			Poll:     20 * time.Millisecond,
			IdleExit: 200 * time.Millisecond,
			Logf:     t.Logf,
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunWorker = %v, want clean idle-exit", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("capability-starved worker never idle-exited")
	}
	// The sweep itself is untouched — still waiting for a capable
	// worker.
	if p := d.Progress(); p.State != sweep.StateRunning {
		t.Fatalf("sweep state = %+v, want still running", p)
	}
}

// TestMalformedWorkerTagsRejected: tags the spec side would refuse
// are a 400 at the lease and heartbeat endpoints, not silently
// recorded as unmatchable capability strings.
func TestMalformedWorkerTagsRejected(t *testing.T) {
	hub := NewHub(Config{})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	for _, path := range []string{"/coord/lease", "/coord/heartbeat"} {
		body := []byte(`{"worker":"w1","tags":["big mem"]}`)
		if path == "/coord/heartbeat" {
			body = []byte(`{"worker":"w1","sweep":"s","shard":0,"tags":["a,b"]}`)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with malformed tags = %d, want 400", path, resp.StatusCode)
		}
	}
}
