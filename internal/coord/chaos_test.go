package coord

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/sweep"
)

// TestChaosMixedFleet is the fault-injection end-to-end: a
// capability-constrained sweep served to three workers with mixed tags
// — one stable, one untagged, one repeatedly "killed" mid-shard — plus
// a wedged worker that heartbeats forever until an operator
// force-expires it through the admin endpoint. The sweep must still
// finish with every cell exactly once and records byte-identical to a
// single-process run of the same spec. Runs under -race in CI.
func TestChaosMixedFleet(t *testing.T) {
	spec, cells := mixedSpec(t)

	// Single-process reference run (the engines are deterministic
	// fakes, so bytes must match exactly).
	localSpec := spec
	localSpec.Distributed = false
	localStore, localDir := newStore(t, localSpec, cells)
	if _, err := (&sweep.Runner{Engine: fakeEngine(), Store: localStore}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	localStore.Close()

	distStore, distDir := newStore(t, spec, cells)
	defer distStore.Close()
	// MaxLeases is generous: the flaky worker's repeated deaths burn
	// leases by design, and lease exhaustion is not what this test
	// probes.
	hub := NewHub(Config{ShardSize: 1, TTL: 250 * time.Millisecond, MaxLeases: 100})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	d, err := hub.Distribute("chaos-1", spec, cells, distStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)

	// The wedged worker: grabs one shard and heartbeats it forever
	// without ever completing — only the admin force-expire can free
	// the shard before MaxLeases sees it as poisonous.
	wedge := wid("wedge", "bigmem")
	wl, ok := c.Lease(wedge)
	if !ok {
		t.Fatal("wedge got no lease")
	}
	wedgeDone := make(chan struct{})
	wedgeStop := make(chan struct{})
	go func() {
		defer close(wedgeDone)
		for {
			select {
			case <-wedgeStop:
				return
			case <-time.After(50 * time.Millisecond):
			}
			if !c.Heartbeat(wedge, wl.Shard) {
				return // force-expired: the lease is gone, stop wedging
			}
		}
	}()
	defer func() {
		close(wedgeStop)
		<-wedgeDone
	}()

	// The fleet: a stable bigmem worker, an untagged worker (can only
	// run the unconstrained half), and a flaky bigmem worker that is
	// started and killed over and over mid-run.
	defer startTaggedWorker(t, srv.URL, "stable", []string{"bigmem"}, fakeEngine())()
	defer startWorker(t, srv.URL, "small", fakeEngine(), 15*time.Millisecond)()
	flakyDone := make(chan struct{})
	go func() {
		defer close(flakyDone)
		for i := 0; ; i++ {
			select {
			case <-d.Done():
				return
			default:
			}
			stop := startTaggedWorker(t, srv.URL, "flaky", []string{"bigmem"}, fakeEngine())
			select {
			case <-d.Done():
				stop()
				return
			case <-time.After(time.Duration(20+10*(i%5)) * time.Millisecond):
			}
			stop() // kill mid-whatever-it-was-doing
		}
	}()
	defer func() { <-flakyDone }()

	// The operator: wait until the wedged lease has renewed a few
	// times (provably alive and stuck), then force-expire it.
	deadline := time.Now().Add(20 * time.Second)
	for {
		tbl := c.LeaseTable()
		if len(tbl.Shards) > wl.Shard && tbl.Shards[wl.Shard].Renews >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("wedged lease never renewed: %+v", c.LeaseTable())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code := postAdmin(t, srv, "/coord/admin/expire", "chaos-1", wl.Shard); code != 200 {
		t.Fatalf("admin expire = %d", code)
	}

	waitDone(t, d)
	final := d.Progress()
	if final.State != sweep.StateDone || final.Done != len(cells) || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}
	snap := hub.counters.Snapshot()
	if snap.AdminExpired != 1 {
		t.Errorf("admin_expired = %d, want 1", snap.AdminExpired)
	}

	// No duplicate cell keys, and byte-identical records vs the local
	// run.
	perKey := okRecordsPerKey(t, distDir)
	if len(perKey) != len(cells) {
		t.Fatalf("distributed store has ok records for %d cells, want %d", len(perKey), len(cells))
	}
	for k, n := range perKey {
		if n != 1 {
			t.Errorf("cell %s has %d ok records, want exactly 1", k, n)
		}
	}
	results := func(dir string) map[string][]byte {
		recs, corrupt, err := sweep.ReadRecords(dir)
		if err != nil || corrupt != 0 {
			t.Fatalf("ReadRecords(%s) = (%d corrupt, %v)", dir, corrupt, err)
		}
		out := map[string][]byte{}
		for _, r := range recs {
			if r.Status == sweep.StatusOK {
				out[r.Key] = r.Result
			}
		}
		return out
	}
	local, dist := results(localDir), results(distDir)
	if len(local) != len(cells) {
		t.Fatalf("local reference run has %d ok cells, want %d", len(local), len(cells))
	}
	for k, want := range local {
		got, ok := dist[k]
		if !ok {
			t.Errorf("cell %s missing from the chaos store", k)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("cell %s: chaos-run record differs from the local run", k)
		}
	}
}
