// Package coord distributes one sweep across worker processes: a
// Coordinator owns the sweep's canonical store, partitions its
// incomplete cells into shards, and leases shards (explicit cell-index
// sets) to workers over HTTP with a TTL. Workers heartbeat to keep a
// lease alive and upload their NDJSON records on completion; the
// coordinator merges uploads into the store (dedup by cell key,
// last-ok-wins), expires stale leases, and re-assigns their shards —
// a killed worker costs only its in-flight shard, never the sweep.
//
// The Hub aggregates the live coordinators of a server, serves the
// /coord API, and plugs into sweep.Manager as its Distributor.
package coord

import (
	"errors"
	"fmt"
	"io/fs"
	"log"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/sweep"
)

// ErrStale reports that a worker acted on a lease it no longer holds —
// the shard expired, was re-assigned, or the sweep is over. Workers
// abandon the shard on seeing it; it is never a server fault.
var ErrStale = errors.New("coord: stale lease")

// Defaults for Config zero values.
const (
	DefaultShardSize = 8
	DefaultTTL       = 30 * time.Second
	DefaultMaxLeases = 5
)

// Config shapes shard partitioning and lease lifetimes for every
// coordinator a hub creates.
type Config struct {
	// ShardSize is the number of cells per leasable shard (0 =
	// DefaultShardSize). Smaller shards re-assign less work when a
	// worker dies but cost more round-trips.
	ShardSize int
	// TTL is how long a lease lives without a heartbeat (0 =
	// DefaultTTL).
	TTL time.Duration
	// MaxLeases bounds how often one shard may be handed out (0 =
	// DefaultMaxLeases). A shard that exhausts it fails the sweep
	// terminally: something is systematically wrong (oversized uploads,
	// version-skewed workers, a poisonous cell), and failing loudly
	// beats re-leasing the same shard forever while the sweep reads
	// "running".
	MaxLeases int
}

func (c Config) shardSize() int {
	if c.ShardSize <= 0 {
		return DefaultShardSize
	}
	return c.ShardSize
}

func (c Config) ttl() time.Duration {
	if c.TTL <= 0 {
		return DefaultTTL
	}
	return c.TTL
}

func (c Config) maxLeases() int {
	if c.MaxLeases <= 0 {
		return DefaultMaxLeases
	}
	return c.MaxLeases
}

// shardState is a shard's position in the lease lifecycle.
type shardState int

const (
	shardPending shardState = iota // waiting for a worker
	shardLeased                    // held by a worker, TTL running
	shardDone                      // records merged
)

// Shard state names on the wire (journal snapshots).
const (
	shardStatePending = "pending"
	shardStateLeased  = "leased"
	shardStateDone    = "done"
)

func (s shardState) name() string {
	switch s {
	case shardLeased:
		return shardStateLeased
	case shardDone:
		return shardStateDone
	default:
		return shardStatePending
	}
}

func shardStateFromName(name string) (shardState, bool) {
	switch name {
	case shardStatePending:
		return shardPending, true
	case shardStateLeased:
		return shardLeased, true
	case shardStateDone:
		return shardDone, true
	}
	return 0, false
}

// shard is one leasable unit of work: an explicit set of cell indexes.
type shard struct {
	id      int
	indexes []int
	state   shardState
	worker  string
	expires time.Time
	leases  int // times handed out (re-assignment shows as >1)
}

// cellOutcome tracks per-cell merge state so progress counts each cell
// once across duplicate uploads and failed-then-ok sequences.
type cellOutcome int

const (
	cellPendingOutcome cellOutcome = iota
	cellFailed
	cellOK
)

// Coordinator owns one distributed sweep: the spec, the canonical
// store, and the shard lease table. It implements sweep.DistributedRun.
type Coordinator struct {
	id        string
	spec      sweep.Spec
	store     *sweep.Store
	ttl       time.Duration
	maxLeases int
	counters  *metrics.CoordCounters
	onProg    func(sweep.Progress)
	jr        *journal

	mu         sync.Mutex
	shards     []*shard
	cells      map[string]cellOutcome // cell key → merge outcome
	keyByIndex map[int]string         // cell index → cell key
	prog       sweep.Progress
	gm         sweep.Geo
	closed     bool
	done       chan struct{}
}

// NewCoordinator partitions the sweep's incomplete cells into shards
// of cfg.ShardSize and returns a coordinator ready to lease them.
// Cells already complete in the store are skipped (and seed the
// geomean), so resuming a killed distributed sweep re-runs only the
// missing cells. A sweep with nothing left finishes immediately.
func NewCoordinator(id string, spec sweep.Spec, cells []sweep.Cell, store *sweep.Store, cfg Config, counters *metrics.CoordCounters, onProgress func(sweep.Progress)) *Coordinator {
	if counters == nil {
		counters = &metrics.CoordCounters{}
	}
	c := &Coordinator{
		id:         id,
		spec:       spec,
		store:      store,
		ttl:        cfg.ttl(),
		maxLeases:  cfg.maxLeases(),
		counters:   counters,
		onProg:     onProgress,
		cells:      make(map[string]cellOutcome, len(cells)),
		keyByIndex: make(map[int]string, len(cells)),
		prog:       sweep.Progress{State: sweep.StateRunning, Total: len(cells)},
		done:       make(chan struct{}),
	}
	completed := store.Completed()
	var todo []int
	for _, cell := range cells {
		key := cell.Key()
		c.keyByIndex[cell.Index] = key
		if ipc, ok := completed[key]; ok {
			c.cells[key] = cellOK
			c.prog.Done++
			c.prog.Skipped++
			c.gm.Add(ipc)
			continue
		}
		c.cells[key] = cellPendingOutcome
		todo = append(todo, cell.Index)
	}
	size := cfg.shardSize()
	for start := 0; start < len(todo); start += size {
		end := start + size
		if end > len(todo) {
			end = len(todo)
		}
		c.shards = append(c.shards, &shard{id: len(c.shards), indexes: todo[start:end]})
	}
	jr, err := openJournal(store.CoordJournalPath(), counters)
	if err != nil {
		log.Printf("coord: %v (sweep %s runs without crash recovery)", err, id)
	}
	c.jr = jr
	c.mu.Lock()
	// The initial snapshot atomically discards whatever journal a
	// previous process left for this directory: a fresh coordinator
	// owns the lease table outright, stale leases are obsolete by
	// construction (its partition excludes settled cells). If the
	// reset does not land, appending deltas onto the old journal would
	// replay against a different partition — journal-less beats wrong.
	if !c.jr.rewrite(c.snapshotEntryLocked()) {
		c.jr.close()
	}
	if len(c.shards) == 0 {
		c.finishLocked(sweep.StateDone, "")
	}
	c.notifyLocked()
	c.mu.Unlock()
	return c
}

// recoverCoordinator rebuilds an in-flight coordinator from the
// journal co-located with the store. It returns (nil, nil) when there
// is nothing to recover: no journal, a snapshot-less journal, or a
// journaled sweep that already reached a terminal state. Cell
// outcomes are seeded from the store — a cell with a stored success
// is never re-issued, and cells the crashed coordinator had counted
// failed stay counted (recovery reconstructs the in-flight
// coordinator, not a fresh resume; failed cells in open shards still
// re-lease, because Lease filters on "has no stored success"). The
// shard partition, lease holders and lease counts come from the
// journal, so surviving workers keep their lease ids. Leases whose
// TTL lapsed during the outage stay on the table as-is: the
// reclaim-on-demand rule in Lease makes them immediately re-leasable,
// while a holder that heartbeats first revives.
func recoverCoordinator(spec sweep.Spec, cells []sweep.Cell, store *sweep.Store, cfg Config, counters *metrics.CoordCounters, onProgress func(sweep.Progress)) (*Coordinator, error) {
	if counters == nil {
		counters = &metrics.CoordCounters{}
	}
	path := store.CoordJournalPath()
	st, err := replayJournal(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("coord: replay %s: %w", path, err)
	}
	if st.corrupt > 0 {
		log.Printf("coord: %s: ignored %d corrupt journal line(s)", path, st.corrupt)
	}
	if st.sweepID == "" || st.finished {
		return nil, nil
	}
	counters.JournalReplayed.Add(uint64(st.entries))

	c := &Coordinator{
		id:         st.sweepID,
		spec:       spec,
		store:      store,
		ttl:        cfg.ttl(),
		maxLeases:  cfg.maxLeases(),
		counters:   counters,
		onProg:     onProgress,
		cells:      make(map[string]cellOutcome, len(cells)),
		keyByIndex: make(map[int]string, len(cells)),
		prog:       sweep.Progress{State: sweep.StateRunning, Total: len(cells)},
		done:       make(chan struct{}),
	}
	completed := store.Completed()
	for _, cell := range cells {
		key := cell.Key()
		c.keyByIndex[cell.Index] = key
		if ipc, ok := completed[key]; ok {
			c.cells[key] = cellOK
			c.prog.Done++
			c.prog.Skipped++
			c.gm.Add(ipc)
			continue
		}
		c.cells[key] = cellPendingOutcome
	}
	for key := range store.FailedCells() {
		if state, known := c.cells[key]; known && state == cellPendingOutcome {
			c.cells[key] = cellFailed
			c.prog.Failed++
		}
	}

	now := time.Now()
	covered := map[int]bool{} // cell indexes the journaled shards carry
	for _, snap := range st.shards {
		state, ok := shardStateFromName(snap.State)
		if !ok {
			state = shardPending // unknown state: safe to re-lease
		}
		sh := &shard{id: len(c.shards), state: state, worker: snap.Worker, leases: snap.Leases}
		for _, idx := range snap.Indexes {
			if _, known := c.keyByIndex[idx]; known {
				sh.indexes = append(sh.indexes, idx)
				covered[idx] = true
			}
		}
		if sh.state == shardDone && !c.shardSettledLocked(sh) {
			// The journal's retire outlived some of the shard's result
			// lines (a power failure can persist one unsynced file and
			// not the other). Trusting "done" would strand the lost
			// cells forever; demote the shard so they re-lease.
			log.Printf("coord: %s: journaled-done shard %d has unsettled cells; re-opening it", c.id, sh.id)
			sh.state = shardPending
			sh.worker = ""
		}
		if snap.Expires != nil {
			sh.expires = *snap.Expires
		}
		if sh.state == shardLeased && sh.expires.After(now) {
			counters.LeasesRecovered.Inc()
		}
		c.shards = append(c.shards, sh)
	}
	// Safety net: incomplete cells no journaled shard covers (the
	// manifest pins the spec, so this should be impossible) get fresh
	// shards instead of being silently lost.
	var orphans []int
	for _, cell := range cells {
		if !covered[cell.Index] && c.cells[c.keyByIndex[cell.Index]] != cellOK {
			orphans = append(orphans, cell.Index)
		}
	}
	if len(orphans) > 0 {
		log.Printf("coord: %s: %d cell(s) missing from the journaled partition; re-sharding them", c.id, len(orphans))
		size := cfg.shardSize()
		for start := 0; start < len(orphans); start += size {
			end := start + size
			if end > len(orphans) {
				end = len(orphans)
			}
			c.shards = append(c.shards, &shard{id: len(c.shards), indexes: orphans[start:end]})
		}
	}

	counters.SweepsRecovered.Inc()
	jr, jerr := openJournal(path, counters)
	if jerr != nil {
		log.Printf("coord: %v (recovered sweep %s runs without crash recovery)", jerr, c.id)
	}
	c.jr = jr
	c.mu.Lock()
	// Recovery is itself a compaction: the replayed history collapses
	// into one snapshot of the reconstructed table.
	c.compactJournalLocked()
	if c.allDoneLocked() {
		// The crash lost only the terminal line (every shard had
		// already retired).
		c.finishLocked(sweep.StateDone, "")
	}
	c.notifyLocked()
	c.mu.Unlock()
	return c, nil
}

// ID returns the sweep run identifier the coordinator serves.
func (c *Coordinator) ID() string { return c.id }

// Done is closed when the sweep reaches a terminal state.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Progress snapshots the sweep.
func (c *Coordinator) Progress() sweep.Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.prog
	p.GeoMeanIPC = c.gm.Mean()
	return p
}

// Cancel terminates the sweep: pending shards are dropped and every
// subsequent lease, heartbeat or complete answers stale. Records
// merged so far stay in the store, so re-posting the spec resumes.
func (c *Coordinator) Cancel() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.finishLocked(sweep.StateCancelled, "")
		c.notifyLocked()
	}
}

// Lease hands the worker a pending shard, reclaiming expired leases
// first — expiry happens only here (on demand, when someone actually
// wants the work), so a lease past its TTL whose worker is merely slow
// survives until another worker asks. The granted index set is
// filtered to cells without a stored success, so a re-lease after a
// partial stale upload re-runs only what is missing. ok is false when
// nothing is pending right now — either the sweep is finished, or
// every remaining shard is leased out and the worker should retry
// after a poll interval.
func (c *Coordinator) Lease(worker string) (l Lease, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Lease{}, false
	}
	c.expireLocked(time.Now())
	for _, sh := range c.shards {
		if sh.state != shardPending {
			continue
		}
		indexes := []int{}
		for _, idx := range sh.indexes {
			if c.cells[c.keyByIndex[idx]] != cellOK {
				indexes = append(indexes, idx)
			}
		}
		if len(indexes) == 0 {
			// Stale uploads filled the shard in while it sat pending.
			c.retireShardLocked(sh)
			if c.allDoneLocked() {
				c.finishLocked(sweep.StateDone, "")
				c.notifyLocked()
				return Lease{}, false
			}
			continue
		}
		if sh.leases >= c.maxLeases {
			// Every holder of this shard vanished or failed to upload.
			// Re-leasing it forever would livelock the sweep as
			// "running"; fail terminally instead so the manager, the
			// workers (idle-exit) and CI all see a verdict.
			c.finishLocked(sweep.StateFailed, fmt.Sprintf(
				"coord: shard %d not completed after %d leases; giving up", sh.id, sh.leases))
			c.notifyLocked()
			return Lease{}, false
		}
		sh.state = shardLeased
		sh.worker = worker
		sh.expires = time.Now().Add(c.ttl)
		sh.leases++
		c.counters.LeasesGranted.Inc()
		if sh.leases > 1 {
			c.counters.ShardsReassigned.Inc()
		}
		exp := sh.expires
		c.journalLocked(journalEntry{T: entryLease, Shard: sh.id, Worker: worker, Expires: &exp, Leases: sh.leases})
		return Lease{
			Sweep:   c.id,
			Shard:   sh.id,
			Indexes: indexes,
			Spec:    c.spec,
			TTL:     c.ttl,
		}, true
	}
	return Lease{}, false
}

// Heartbeat renews the worker's lease on a shard. A false return means
// the lease is stale — the shard was reclaimed, re-assigned, or the
// sweep is over — and the worker should abandon the shard.
// Deliberately no expiry sweep here: a heartbeat that was merely
// delayed (slow network, or queued behind a long merge on the
// coordinator mutex) revives a past-TTL lease as long as nothing has
// reclaimed the shard yet, instead of killing a healthy worker.
func (c *Coordinator) Heartbeat(worker string, shardID int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || shardID < 0 || shardID >= len(c.shards) {
		c.counters.StaleAcks.Inc()
		return false
	}
	sh := c.shards[shardID]
	if sh.state != shardLeased || sh.worker != worker {
		c.counters.StaleAcks.Inc()
		return false
	}
	sh.expires = time.Now().Add(c.ttl)
	exp := sh.expires
	c.journalLocked(journalEntry{T: entryRenew, Shard: sh.id, Expires: &exp})
	return true
}

// Complete merges a worker's shard records into the canonical store
// and — when the worker still holds the shard's lease — marks the
// shard done. Records for cells that already have a stored success are
// dropped (dedup, last-ok-wins), so a stale complete — the shard
// expired and was re-run elsewhere — cannot duplicate cells; its
// records still merge, but only the current lessee's ack (or every
// cell of the shard reaching a stored success) may retire the shard,
// so a mis-addressed or stale upload can never finish a shard whose
// cells were not run. When the last shard retires, Done closes.
func (c *Coordinator) Complete(worker string, shardID int, recs []sweep.CellRecord) (merged, skipped int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || shardID < 0 || shardID >= len(c.shards) {
		c.counters.StaleAcks.Inc()
		return 0, len(recs), ErrStale
	}
	// No expiry sweep here (mirroring Heartbeat): a holder past its TTL
	// whose shard nothing reclaimed yet still gets to retire it.
	sh := c.shards[shardID]
	holder := sh.state == shardLeased && sh.worker == worker
	if !holder {
		// The lease moved on (expired, re-assigned, or already acked).
		// The work is real, though: merge it, count the staleness.
		c.counters.StaleAcks.Inc()
	}
	merged, skipped, err = c.mergeLocked(recs)
	if err != nil {
		c.finishLocked(sweep.StateFailed, err.Error())
		c.notifyLocked()
		return merged, skipped, err
	}
	if holder && c.shardSettledLocked(sh) {
		// Retire only when every cell of the shard has an outcome: an
		// ack that skipped cells (a buggy worker) must not lose them —
		// the shard stays leased, expires, and the missing cells
		// re-assign.
		c.retireShardLocked(sh)
	}
	c.promoteShardsLocked()
	if c.allDoneLocked() {
		c.finishLocked(sweep.StateDone, "")
	}
	c.notifyLocked()
	return merged, skipped, nil
}

// shardSettledLocked reports whether every cell of the shard has a
// recorded outcome (ok or failed).
func (c *Coordinator) shardSettledLocked(sh *shard) bool {
	for _, idx := range sh.indexes {
		if c.cells[c.keyByIndex[idx]] == cellPendingOutcome {
			return false
		}
	}
	return true
}

// retireShardLocked marks one shard done.
func (c *Coordinator) retireShardLocked(sh *shard) {
	if sh.state != shardDone {
		sh.state = shardDone
		sh.worker = ""
		c.counters.ShardsCompleted.Inc()
		c.journalLocked(journalEntry{T: entryRetire, Shard: sh.id})
	}
}

// promoteShardsLocked retires any shard whose every cell already has a
// stored success — a stale upload can land the last missing cells of a
// shard that meanwhile expired or was re-leased, and re-running such a
// shard would be pure waste (its records would all dedup away).
func (c *Coordinator) promoteShardsLocked() {
	for _, sh := range c.shards {
		if sh.state == shardDone {
			continue
		}
		allOK := true
		for _, idx := range sh.indexes {
			if c.cells[c.keyByIndex[idx]] != cellOK {
				allOK = false
				break
			}
		}
		if allOK {
			c.retireShardLocked(sh)
		}
	}
}

// mergeLocked appends records into the store and folds each cell's
// transition into the progress counts: first failure counts the cell
// failed, the first success counts it done (and un-counts a prior
// failure — last ok wins). Records that cannot change a cell's state —
// duplicate successes, and repeat failures for an already-failed cell
// (a retried upload whose first attempt's response was lost) — are
// dropped before touching the store, so completes are idempotent and
// the NDJSON log gains no duplicate lines. Unknown keys merge into the
// store but not the counts, so a foreign record cannot inflate Done
// past Total.
func (c *Coordinator) mergeLocked(recs []sweep.CellRecord) (merged, skipped int, err error) {
	fresh := recs[:0:0]
	for _, rec := range recs {
		state, known := c.cells[rec.Key]
		if known && (state == cellOK || (state == cellFailed && rec.Status == sweep.StatusFailed)) {
			skipped++
			continue
		}
		fresh = append(fresh, rec)
	}
	merged, dup, err := c.store.Merge(fresh)
	skipped += dup
	c.counters.RecordsMerged.Add(uint64(merged))
	c.counters.RecordsDeduped.Add(uint64(skipped))
	if err != nil {
		return merged, skipped, err
	}
	for _, rec := range fresh {
		state, known := c.cells[rec.Key]
		if !known || state == cellOK {
			continue
		}
		switch rec.Status {
		case sweep.StatusOK:
			if state == cellFailed {
				c.prog.Failed--
			}
			c.cells[rec.Key] = cellOK
			c.prog.Done++
			c.prog.Executed++
			c.gm.Add(rec.IPC)
		case sweep.StatusFailed:
			if state == cellPendingOutcome {
				c.cells[rec.Key] = cellFailed
				c.prog.Failed++
				c.prog.Executed++
			}
		}
	}
	return merged, skipped, nil
}

// Snapshot is the JSON view of a coordinator for /coord/status. The
// shard-table fields carry a "shards_" prefix so they cannot shadow
// the embedded Progress's cell-level done/total in the JSON.
type Snapshot struct {
	Sweep         string `json:"sweep"`
	Name          string `json:"name"`
	Shards        int    `json:"shards"`
	PendingShards int    `json:"shards_pending"`
	LeasedShards  int    `json:"shards_leased"`
	DoneShards    int    `json:"shards_done"`
	sweep.Progress
}

// Snapshot summarises the shard table and progress. It is a pure
// read: a past-TTL lease still shows as leased until a Lease call
// reclaims it.
func (c *Coordinator) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{Sweep: c.id, Name: c.spec.Name, Shards: len(c.shards)}
	for _, sh := range c.shards {
		switch sh.state {
		case shardPending:
			s.PendingShards++
		case shardLeased:
			s.LeasedShards++
		case shardDone:
			s.DoneShards++
		}
	}
	s.Progress = c.prog
	s.Progress.GeoMeanIPC = c.gm.Mean()
	return s
}

// expireLocked returns shards whose lease TTL lapsed to the pending
// pool. It runs only from Lease — reclaim on demand — so a slow but
// alive holder keeps its lease (and can heartbeat it back to life, or
// retire it) until a competing worker actually needs the work.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, sh := range c.shards {
		if sh.state == shardLeased && now.After(sh.expires) {
			sh.state = shardPending
			sh.worker = ""
			c.counters.LeasesExpired.Inc()
			c.journalLocked(journalEntry{T: entryExpire, Shard: sh.id})
		}
	}
}

func (c *Coordinator) allDoneLocked() bool {
	for _, sh := range c.shards {
		if sh.state != shardDone {
			return false
		}
	}
	return true
}

// finishLocked moves the sweep to a terminal state exactly once. The
// journal is rewritten to its terminal form — one snapshot plus the
// finish line — and closed: restarts skip finished sweeps, and the
// file stays as a compact record of how the sweep ended.
func (c *Coordinator) finishLocked(state sweep.State, errMsg string) {
	if c.closed {
		return
	}
	c.closed = true
	c.prog.State = state
	if errMsg != "" {
		c.prog.Error = errMsg
	}
	c.jr.rewrite(c.snapshotEntryLocked(), journalEntry{T: entryFinish, State: string(state), Error: errMsg})
	c.jr.close()
	close(c.done)
}

// journalCompactMin floors the delta entries accumulated before a
// compaction rewrite (a var so tests can trigger compaction cheaply).
var journalCompactMin = 256

// journalLocked appends one delta entry and, when the delta history
// dwarfs the table it describes (long sweeps accumulate a renew line
// per heartbeat), compacts the journal back to a single snapshot.
func (c *Coordinator) journalLocked(e journalEntry) {
	c.jr.append(e)
	if !c.jr.disabled() && c.jr.pending >= journalCompactMin && c.jr.pending >= 8*len(c.shards) {
		c.compactJournalLocked()
	}
}

// compactJournalLocked rewrites the journal as one snapshot of the
// current table, dropping the settled churn that led here — the file
// stays proportional to the shard count, not the sweep's lifetime.
func (c *Coordinator) compactJournalLocked() {
	if c.jr.disabled() {
		return
	}
	c.jr.rewrite(c.snapshotEntryLocked())
	c.counters.JournalCompactions.Inc()
}

// snapshotEntryLocked captures the full shard table as one journal
// entry — the fixed point a replay starts from.
func (c *Coordinator) snapshotEntryLocked() journalEntry {
	e := journalEntry{T: entrySnapshot, Sweep: c.id, Shards: make([]shardSnap, len(c.shards))}
	for i, sh := range c.shards {
		snap := shardSnap{ID: sh.id, Indexes: sh.indexes, State: sh.state.name(), Worker: sh.worker, Leases: sh.leases}
		if sh.state == shardLeased {
			exp := sh.expires
			snap.Expires = &exp
		}
		e.Shards[i] = snap
	}
	return e
}

// notifyLocked delivers the current progress to the observer while
// holding the lock, so deliveries are ordered (the manager differences
// successive snapshots).
func (c *Coordinator) notifyLocked() {
	if c.onProg == nil {
		return
	}
	p := c.prog
	p.GeoMeanIPC = c.gm.Mean()
	c.onProg(p)
}

// Lease is one granted shard: the sweep it belongs to, the explicit
// cell-index set to run, the spec to expand them from, and how long
// the worker has before it must heartbeat.
type Lease struct {
	Sweep   string        `json:"sweep"`
	Shard   int           `json:"shard"`
	Indexes []int         `json:"indexes"`
	Spec    sweep.Spec    `json:"spec"`
	TTL     time.Duration `json:"-"`
}
