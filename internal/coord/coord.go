// Package coord distributes one sweep across worker processes: a
// Coordinator owns the sweep's canonical store, partitions its
// incomplete cells into shards, and leases shards (explicit cell-index
// sets) to workers over HTTP with a TTL. Workers heartbeat to keep a
// lease alive and upload their NDJSON records on completion; the
// coordinator merges uploads into the store (dedup by cell key,
// last-ok-wins), expires stale leases, and re-assigns their shards —
// a killed worker costs only its in-flight shard, never the sweep.
//
// The Hub aggregates the live coordinators of a server, serves the
// /coord API, and plugs into sweep.Manager as its Distributor.
package coord

import (
	"errors"
	"fmt"
	"io/fs"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/sweep"
)

// ErrStale reports that a worker acted on a lease it no longer holds —
// the shard expired, was re-assigned, or the sweep is over. Workers
// abandon the shard on seeing it; it is never a server fault.
var ErrStale = errors.New("coord: stale lease")

// Defaults for Config zero values.
const (
	DefaultShardSize = 8
	DefaultTTL       = 30 * time.Second
	DefaultMaxLeases = 5
)

// Config shapes shard partitioning and lease lifetimes for every
// coordinator a hub creates.
type Config struct {
	// ShardSize is the number of cells per leasable shard (0 =
	// DefaultShardSize). Smaller shards re-assign less work when a
	// worker dies but cost more round-trips.
	ShardSize int
	// TTL is how long a lease lives without a heartbeat (0 =
	// DefaultTTL).
	TTL time.Duration
	// MaxLeases bounds how often one shard may be handed out (0 =
	// DefaultMaxLeases). A shard that exhausts it fails the sweep
	// terminally: something is systematically wrong (oversized uploads,
	// version-skewed workers, a poisonous cell), and failing loudly
	// beats re-leasing the same shard forever while the sweep reads
	// "running".
	MaxLeases int
	// Advertise is the URL this server answers /coord on, stamped into
	// every journal snapshot as the sweep's owner. Peers sharing the
	// -sweepdir use it two ways: at boot, a journal owned by someone
	// else is left alone (and its workers redirected there); after a
	// peer dies, its URL in the journal is what adopters hand surviving
	// workers. Empty disables federation for journals this server
	// writes — anyone may recover them, as before.
	Advertise string
	// Peer is a sibling server operating the same -sweepdir. It rides
	// along on lease responses as a hint, so workers pointed at only
	// this server learn a fallback URL before they ever need it.
	Peer string
}

func (c Config) shardSize() int {
	if c.ShardSize <= 0 {
		return DefaultShardSize
	}
	return c.ShardSize
}

func (c Config) ttl() time.Duration {
	if c.TTL <= 0 {
		return DefaultTTL
	}
	return c.TTL
}

func (c Config) maxLeases() int {
	if c.MaxLeases <= 0 {
		return DefaultMaxLeases
	}
	return c.MaxLeases
}

// shardState is a shard's position in the lease lifecycle.
type shardState int

const (
	shardPending     shardState = iota // waiting for a worker
	shardLeased                        // held by a worker, TTL running
	shardDone                          // records merged
	shardQuarantined                   // parked by an operator; never leased
)

// Shard state names on the wire (journal snapshots).
const (
	shardStatePending     = "pending"
	shardStateLeased      = "leased"
	shardStateDone        = "done"
	shardStateQuarantined = "quarantined"
)

func (s shardState) name() string {
	switch s {
	case shardLeased:
		return shardStateLeased
	case shardDone:
		return shardStateDone
	case shardQuarantined:
		return shardStateQuarantined
	default:
		return shardStatePending
	}
}

func shardStateFromName(name string) (shardState, bool) {
	switch name {
	case shardStatePending:
		return shardPending, true
	case shardStateLeased:
		return shardLeased, true
	case shardStateDone:
		return shardDone, true
	case shardStateQuarantined:
		return shardQuarantined, true
	}
	return 0, false
}

// shard is one leasable unit of work: an explicit set of cell indexes
// plus the capability tags a worker must advertise to lease it (the
// partition groups cells by requirement, so every shard is
// homogeneous — one constraint per lease).
type shard struct {
	id       int
	indexes  []int
	requires []string
	state    shardState
	worker   string
	expires  time.Time
	granted  time.Time // when the current lease was handed out
	leases   int       // times handed out (re-assignment shows as >1)
	renews   int       // heartbeats received for the current lease
}

// WorkerID identifies a leasing worker plus the capabilities it
// advertises: tags a shard's requires must be a subset of, and an
// optional ceiling on how many cells it will accept per lease.
type WorkerID struct {
	Name     string
	Tags     []string
	MaxCells int
}

// cellOutcome tracks per-cell merge state so progress counts each cell
// once across duplicate uploads and failed-then-ok sequences.
type cellOutcome int

const (
	cellPendingOutcome cellOutcome = iota
	cellFailed
	cellOK
)

// Coordinator owns one distributed sweep: the spec, the canonical
// store, and the shard lease table. It implements sweep.DistributedRun.
type Coordinator struct {
	id        string
	spec      sweep.Spec
	store     *sweep.Store
	ttl       time.Duration
	maxLeases int
	advertise string // journal owner identity (Config.Advertise)
	counters  *metrics.CoordCounters
	onProg    func(sweep.Progress)
	jr        *journal
	// reg is the hub-level fleet registry (self-locking; the lock
	// order is c.mu before reg.mu, never the reverse). A coordinator
	// built outside a hub gets a private one.
	reg *workerRegistry

	mu         sync.Mutex
	shards     []*shard
	cells      map[string]cellOutcome // cell key → merge outcome
	keyByIndex map[int]string         // cell index → cell key
	reqByIndex map[int][]string       // cell index → required tags
	prog       sweep.Progress
	gm         sweep.Geo
	closed     bool
	done       chan struct{}
}

// appendShards groups todo cell indexes by their capability
// requirements and splits each group into shards of at most size
// cells, appending to dst with consecutive ids. Grouping keeps every
// shard homogeneous, so a lease either fits a worker or it does not —
// no shard is half-runnable.
func appendShards(dst []*shard, todo []int, reqByIndex map[int][]string, size int) []*shard {
	type group struct {
		requires []string
		idxs     []int
	}
	var order []string
	groups := map[string]*group{}
	for _, idx := range todo {
		req := reqByIndex[idx]
		sig := strings.Join(req, ",")
		g, ok := groups[sig]
		if !ok {
			g = &group{requires: req}
			groups[sig] = g
			order = append(order, sig)
		}
		g.idxs = append(g.idxs, idx)
	}
	for _, sig := range order {
		g := groups[sig]
		for start := 0; start < len(g.idxs); start += size {
			end := min(start+size, len(g.idxs))
			dst = append(dst, &shard{id: len(dst), indexes: g.idxs[start:end], requires: g.requires})
		}
	}
	return dst
}

// NewCoordinator partitions the sweep's incomplete cells into shards
// of cfg.ShardSize and returns a coordinator ready to lease them.
// Cells already complete in the store are skipped (and seed the
// geomean), so resuming a killed distributed sweep re-runs only the
// missing cells. A sweep with nothing left finishes immediately.
func NewCoordinator(id string, spec sweep.Spec, cells []sweep.Cell, store *sweep.Store, cfg Config, reg *workerRegistry, counters *metrics.CoordCounters, onProgress func(sweep.Progress)) *Coordinator {
	if counters == nil {
		counters = &metrics.CoordCounters{}
	}
	if reg == nil {
		reg = newWorkerRegistry(cfg.ttl())
	}
	c := &Coordinator{
		id:         id,
		spec:       spec,
		store:      store,
		ttl:        cfg.ttl(),
		maxLeases:  cfg.maxLeases(),
		advertise:  cfg.Advertise,
		counters:   counters,
		onProg:     onProgress,
		reg:        reg,
		cells:      make(map[string]cellOutcome, len(cells)),
		keyByIndex: make(map[int]string, len(cells)),
		reqByIndex: make(map[int][]string, len(cells)),
		prog:       sweep.Progress{State: sweep.StateRunning, Total: len(cells)},
		done:       make(chan struct{}),
	}
	completed := store.Completed()
	var todo []int
	for _, cell := range cells {
		key := cell.Key()
		c.keyByIndex[cell.Index] = key
		c.reqByIndex[cell.Index] = cell.Requires
		if ipc, ok := completed[key]; ok {
			c.cells[key] = cellOK
			c.prog.Done++
			c.prog.Skipped++
			c.gm.Add(ipc)
			continue
		}
		c.cells[key] = cellPendingOutcome
		todo = append(todo, cell.Index)
	}
	c.shards = appendShards(nil, todo, c.reqByIndex, cfg.shardSize())
	jr, err := openJournal(store.CoordJournalPath(), counters)
	if err != nil {
		log.Printf("coord: %v (sweep %s runs without crash recovery)", err, id)
	}
	c.jr = jr
	c.mu.Lock()
	// The initial snapshot atomically discards whatever journal a
	// previous process left for this directory: a fresh coordinator
	// owns the lease table outright, stale leases are obsolete by
	// construction (its partition excludes settled cells). If the
	// reset does not land, appending deltas onto the old journal would
	// replay against a different partition — journal-less beats wrong.
	if !c.jr.rewrite(c.snapshotEntryLocked()) {
		c.jr.close()
	}
	if len(c.shards) == 0 {
		c.finishLocked(sweep.StateDone, "")
	}
	c.notifyLocked()
	c.mu.Unlock()
	return c
}

// recoverCoordinator rebuilds an in-flight coordinator from the
// journal co-located with the store. It returns (nil, nil) when there
// is nothing to recover: no journal, a snapshot-less journal, or a
// journaled sweep that already reached a terminal state. Cell
// outcomes are seeded from the store — a cell with a stored success
// is never re-issued, and cells the crashed coordinator had counted
// failed stay counted (recovery reconstructs the in-flight
// coordinator, not a fresh resume; failed cells in open shards still
// re-lease, because Lease filters on "has no stored success"). The
// shard partition, lease holders and lease counts come from the
// journal, so surviving workers keep their lease ids. Leases whose
// TTL lapsed during the outage stay on the table as-is: the
// reclaim-on-demand rule in Lease makes them immediately re-leasable,
// while a holder that heartbeats first revives.
func recoverCoordinator(spec sweep.Spec, cells []sweep.Cell, store *sweep.Store, cfg Config, reg *workerRegistry, counters *metrics.CoordCounters, onProgress func(sweep.Progress)) (*Coordinator, error) {
	if counters == nil {
		counters = &metrics.CoordCounters{}
	}
	if reg == nil {
		reg = newWorkerRegistry(cfg.ttl())
	}
	path := store.CoordJournalPath()
	st, err := replayJournal(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("coord: replay %s: %w", path, err)
	}
	if st.corrupt > 0 {
		log.Printf("coord: %s: ignored %d corrupt journal line(s)", path, st.corrupt)
	}
	if st.sweepID == "" || st.finished {
		return nil, nil
	}
	counters.JournalReplayed.Add(uint64(st.entries))

	c := &Coordinator{
		id:         st.sweepID,
		spec:       spec,
		store:      store,
		ttl:        cfg.ttl(),
		maxLeases:  cfg.maxLeases(),
		advertise:  cfg.Advertise,
		counters:   counters,
		onProg:     onProgress,
		reg:        reg,
		cells:      make(map[string]cellOutcome, len(cells)),
		keyByIndex: make(map[int]string, len(cells)),
		reqByIndex: make(map[int][]string, len(cells)),
		prog:       sweep.Progress{State: sweep.StateRunning, Total: len(cells)},
		done:       make(chan struct{}),
	}
	completed := store.Completed()
	for _, cell := range cells {
		key := cell.Key()
		c.keyByIndex[cell.Index] = key
		c.reqByIndex[cell.Index] = cell.Requires
		if ipc, ok := completed[key]; ok {
			c.cells[key] = cellOK
			c.prog.Done++
			c.prog.Skipped++
			c.gm.Add(ipc)
			continue
		}
		c.cells[key] = cellPendingOutcome
	}
	for key := range store.FailedCells() {
		if state, known := c.cells[key]; known && state == cellPendingOutcome {
			c.cells[key] = cellFailed
			c.prog.Failed++
		}
	}

	now := time.Now()
	covered := map[int]bool{} // cell indexes the journaled shards carry
	for _, snap := range st.shards {
		state, ok := shardStateFromName(snap.State)
		if !ok {
			state = shardPending // unknown state: safe to re-lease
		}
		sh := &shard{id: len(c.shards), state: state, worker: snap.Worker, leases: snap.Leases, renews: snap.Renews}
		for _, idx := range snap.Indexes {
			if _, known := c.keyByIndex[idx]; known {
				sh.indexes = append(sh.indexes, idx)
				covered[idx] = true
			}
		}
		// Requires come from the re-expanded cells, not the journal (the
		// manifest pins the spec, so the cells are authoritative; the
		// journaled copy is for operators reading the file). Union over
		// the shard in case a corrupt journal mixed groups.
		sh.requires = unionRequires(c.reqByIndex, sh.indexes)
		if sh.state == shardDone && !c.shardSettledLocked(sh) {
			// The journal's retire outlived some of the shard's result
			// lines (a power failure can persist one unsynced file and
			// not the other). Trusting "done" would strand the lost
			// cells forever; demote the shard so they re-lease.
			log.Printf("coord: %s: journaled-done shard %d has unsettled cells; re-opening it", c.id, sh.id)
			sh.state = shardPending
			sh.worker = ""
		}
		if snap.Expires != nil {
			sh.expires = *snap.Expires
		}
		if sh.state == shardLeased && sh.expires.After(now) {
			counters.LeasesRecovered.Inc()
		}
		if sh.state == shardLeased && sh.worker != "" {
			// Seed the fleet registry from the journal: the holder was
			// alive moments before the crash, keeps its lease row, and
			// its affinity memory survives the hand-off.
			reg.noteLease(sh.worker, c.id, sh.id, requireSig(sh.requires), now)
		}
		c.shards = append(c.shards, sh)
	}
	// Safety net: incomplete cells no journaled shard covers (the
	// manifest pins the spec, so this should be impossible) get fresh
	// shards instead of being silently lost.
	var orphans []int
	for _, cell := range cells {
		if !covered[cell.Index] && c.cells[c.keyByIndex[cell.Index]] != cellOK {
			orphans = append(orphans, cell.Index)
		}
	}
	if len(orphans) > 0 {
		log.Printf("coord: %s: %d cell(s) missing from the journaled partition; re-sharding them", c.id, len(orphans))
		c.shards = appendShards(c.shards, orphans, c.reqByIndex, cfg.shardSize())
	}

	counters.SweepsRecovered.Inc()
	jr, jerr := openJournal(path, counters)
	if jerr != nil {
		log.Printf("coord: %v (recovered sweep %s runs without crash recovery)", jerr, c.id)
	}
	c.jr = jr
	c.mu.Lock()
	// Recovery is itself a compaction: the replayed history collapses
	// into one snapshot of the reconstructed table.
	c.compactJournalLocked()
	// The crash may have lost only the terminal line (every shard had
	// already retired, or only quarantined ones remained).
	c.maybeFinishLocked()
	c.notifyLocked()
	c.mu.Unlock()
	return c, nil
}

// unionRequires merges the required tags of the given cell indexes
// into one sorted, deduplicated set.
func unionRequires(reqByIndex map[int][]string, indexes []int) []string {
	var out []string
	seen := map[string]bool{}
	for _, idx := range indexes {
		for _, tag := range reqByIndex[idx] {
			if !seen[tag] {
				seen[tag] = true
				out = append(out, tag)
			}
		}
	}
	sort.Strings(out)
	return out
}

// ID returns the sweep run identifier the coordinator serves.
func (c *Coordinator) ID() string { return c.id }

// Done is closed when the sweep reaches a terminal state.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Progress snapshots the sweep. Starved is computed fresh against the
// workers seen recently, so it decays as mismatched workers leave.
func (c *Coordinator) Progress() sweep.Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.prog
	p.GeoMeanIPC = c.gm.Mean()
	if !c.closed {
		p.Starved = c.starvedCellsLocked(time.Now())
	}
	return p
}

// Cancel terminates the sweep: pending shards are dropped and every
// subsequent lease, heartbeat or complete answers stale. Records
// merged so far stay in the store, so re-posting the spec resumes.
func (c *Coordinator) Cancel() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.finishLocked(sweep.StateCancelled, "")
		c.notifyLocked()
	}
}

// workerLiveFactor: a worker counts as live for starvation accounting
// while its last lease poll or heartbeat is within this many TTLs.
const workerLiveFactor = 2

// starvedCellsLocked counts unsettled cells of pending shards that no
// live worker can serve — the shard's required tags (or its size, for
// workers with a max-cells hint) rule everyone out. An unconstrained
// shard with no workers around at all is merely idle, not starved; a
// constrained shard with nobody matching is starved even then, because
// only a new, differently-equipped worker can ever unblock it.
//
// The common cases — an idle fleet, or a live worker whose size
// ceiling covers the whole shard (len(indexes) bounds what remains) —
// are decided without touching the shard's cells, so this costs
// O(shards × live workers) per call; only shards that might actually
// be starved pay a per-cell scan.
func (c *Coordinator) starvedCellsLocked(now time.Time) int {
	live := c.reg.liveCaps(now, time.Duration(workerLiveFactor)*c.ttl)
	starved := 0
	for _, sh := range c.shards {
		if sh.state != shardPending {
			continue
		}
		if len(sh.requires) == 0 && len(live) == 0 {
			continue // no fleet yet ≠ starved
		}
		fit := false
		for _, w := range live {
			if (w.maxCells == 0 || w.maxCells >= len(sh.indexes)) && w.fitsTags(sh.requires) {
				fit = true
				break
			}
		}
		if fit {
			continue
		}
		n := 0
		for _, idx := range sh.indexes {
			if c.cells[c.keyByIndex[idx]] != cellOK {
				n++
			}
		}
		if n == 0 {
			continue
		}
		satisfiable := false
		for _, w := range live {
			if w.fits(sh.requires, n) {
				satisfiable = true
				break
			}
		}
		if !satisfiable {
			starved += n
		}
	}
	return starved
}

// Lease hands the worker a pending shard it is capable of running,
// reclaiming expired leases first — expiry happens only here (on
// demand, when someone actually wants the work), so a lease past its
// TTL whose worker is merely slow survives until another worker asks.
// Shards whose required tags the worker does not advertise (or whose
// remaining cells exceed its max-cells hint) are skipped; they wait
// for a matching worker, counting toward the starvation metrics. The
// granted index set is filtered to cells without a stored success, so
// a re-lease after a partial stale upload re-runs only what is
// missing. ok is false when nothing this worker can serve is pending
// right now — the sweep is finished, every remaining shard is leased
// out, or the rest needs capabilities this worker lacks (in which
// case the denial counts toward the starvation metrics).
func (c *Coordinator) Lease(w WorkerID) (l Lease, ok bool) {
	l, ok, constrained := c.leaseScan(w)
	if !ok && constrained {
		c.noteStarved()
	}
	return l, ok
}

// requireSig is the canonical signature of a shard's requirement
// group — the same form appendShards groups by, reused as the
// affinity key for "same configs, different cells".
func requireSig(requires []string) string { return strings.Join(requires, ",") }

// leaseScan is Lease minus the starvation accounting: constrained
// reports that pending work exists which this worker cannot serve.
// The hub folds that flag across its coordinators, so a worker that
// this sweep starved but another sweep served in the same poll is not
// miscounted.
//
// Among the shards the worker could take, placement prefers the one
// its engine cache is warmest for: a shard this worker held before
// beats a shard from a requirement group it has served, which beats a
// stranger. With no history every score is zero and the scan degrades
// to first-fit, so a fresh fleet behaves exactly as before.
func (c *Coordinator) leaseScan(w WorkerID) (l Lease, ok, constrained bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Lease{}, false, false
	}
	now := time.Now()
	cap := c.reg.observe(w, now)
	c.expireLocked(now)
	var (
		best        *shard
		bestIndexes []int
		bestScore   int
	)
	for _, sh := range c.shards {
		if sh.state != shardPending {
			continue
		}
		indexes := []int{}
		for _, idx := range sh.indexes {
			if c.cells[c.keyByIndex[idx]] != cellOK {
				indexes = append(indexes, idx)
			}
		}
		if len(indexes) == 0 {
			// Stale uploads filled the shard in while it sat pending.
			c.retireShardLocked(sh)
			if c.maybeFinishLocked() {
				c.notifyLocked()
				return Lease{}, false, false
			}
			continue
		}
		if !cap.fits(sh.requires, len(indexes)) {
			constrained = true
			continue
		}
		if sh.leases >= c.maxLeases {
			if best != nil {
				// First-fit would have granted the earlier shard without
				// ever reaching this one; leave it for a poll that must
				// face it head-on.
				continue
			}
			// Every holder of this shard vanished or failed to upload.
			// Re-leasing it forever would livelock the sweep as
			// "running"; fail terminally instead so the manager, the
			// workers (idle-exit) and CI all see a verdict. (Operators
			// can quarantine a known-poisonous shard before it gets
			// here, letting the rest of the sweep finish.)
			c.finishLocked(sweep.StateFailed, fmt.Sprintf(
				"coord: shard %d not completed after %d leases; giving up", sh.id, sh.leases))
			c.notifyLocked()
			return Lease{}, false, false
		}
		score := c.reg.affinityScore(w.Name, c.id, sh.id, requireSig(sh.requires))
		if best == nil || score > bestScore {
			best, bestIndexes, bestScore = sh, indexes, score
			if bestScore >= affinityExact {
				break // nothing scores higher; stop scanning
			}
		}
	}
	if best == nil {
		return Lease{}, false, constrained
	}
	sh := best
	sh.state = shardLeased
	sh.worker = w.Name
	sh.expires = now.Add(c.ttl)
	sh.granted = now
	sh.leases++
	sh.renews = 0
	c.counters.LeasesGranted.Inc()
	if sh.leases > 1 {
		c.counters.ShardsReassigned.Inc()
	}
	if bestScore > affinityNone {
		c.counters.LeasesAffine.Inc()
	}
	c.reg.noteLease(w.Name, c.id, sh.id, requireSig(sh.requires), now)
	exp := sh.expires
	c.journalLocked(journalEntry{T: entryLease, Shard: sh.id, Worker: w.Name, Expires: &exp, Leases: sh.leases})
	return Lease{
		Sweep:   c.id,
		Shard:   sh.id,
		Indexes: bestIndexes,
		Spec:    c.spec,
		TTL:     c.ttl,
	}, true, false
}

// noteStarved counts one lease poll denied purely by capability
// constraints and pushes the refreshed starvation figure to the
// observer, so /sweeps shows "starved" instead of silently hanging.
func (c *Coordinator) noteStarved() {
	c.counters.LeasesStarved.Inc()
	c.refreshStarved()
}

// refreshStarved re-delivers progress (with a fresh starved count) to
// the observer without touching any counter.
func (c *Coordinator) refreshStarved() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.notifyLocked()
	}
}

// Heartbeat renews the worker's lease on a shard. A false return means
// the lease is stale — the shard was reclaimed, re-assigned,
// quarantined, or the sweep is over — and the worker should abandon
// the shard. Deliberately no expiry sweep here: a heartbeat that was
// merely delayed (slow network, or queued behind a long merge on the
// coordinator mutex) revives a past-TTL lease as long as nothing has
// reclaimed the shard yet, instead of killing a healthy worker.
func (c *Coordinator) Heartbeat(w WorkerID, shardID int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || shardID < 0 || shardID >= len(c.shards) {
		c.counters.StaleAcks.Inc()
		return false
	}
	now := time.Now()
	c.reg.observe(w, now)
	sh := c.shards[shardID]
	if sh.state != shardLeased || sh.worker != w.Name {
		c.counters.StaleAcks.Inc()
		return false
	}
	sh.expires = now.Add(c.ttl)
	sh.renews++
	exp := sh.expires
	c.journalLocked(journalEntry{T: entryRenew, Shard: sh.id, Expires: &exp})
	return true
}

// Complete merges a worker's shard records into the canonical store
// and — when the worker still holds the shard's lease — marks the
// shard done. Records for cells that already have a stored success are
// dropped (dedup, last-ok-wins), so a stale complete — the shard
// expired and was re-run elsewhere — cannot duplicate cells; its
// records still merge, but only the current lessee's ack (or every
// cell of the shard reaching a stored success) may retire the shard,
// so a mis-addressed or stale upload can never finish a shard whose
// cells were not run. When the last shard retires, Done closes.
func (c *Coordinator) Complete(worker string, shardID int, recs []sweep.CellRecord) (merged, skipped int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || shardID < 0 || shardID >= len(c.shards) {
		c.counters.StaleAcks.Inc()
		return 0, len(recs), ErrStale
	}
	// No expiry sweep here (mirroring Heartbeat): a holder past its TTL
	// whose shard nothing reclaimed yet still gets to retire it.
	sh := c.shards[shardID]
	holder := sh.state == shardLeased && sh.worker == worker
	if !holder {
		// The lease moved on (expired, re-assigned, or already acked).
		// The work is real, though: merge it, count the staleness.
		c.counters.StaleAcks.Inc()
	}
	merged, skipped, err = c.mergeLocked(recs)
	if err != nil {
		c.finishLocked(sweep.StateFailed, err.Error())
		c.notifyLocked()
		return merged, skipped, err
	}
	if holder && c.shardSettledLocked(sh) {
		// Retire only when every cell of the shard has an outcome: an
		// ack that skipped cells (a buggy worker) must not lose them —
		// the shard stays leased, expires, and the missing cells
		// re-assign.
		c.retireShardLocked(sh)
	}
	c.promoteShardsLocked()
	c.maybeFinishLocked()
	c.notifyLocked()
	return merged, skipped, nil
}

// shardSettledLocked reports whether every cell of the shard has a
// recorded outcome (ok or failed).
func (c *Coordinator) shardSettledLocked(sh *shard) bool {
	for _, idx := range sh.indexes {
		if c.cells[c.keyByIndex[idx]] == cellPendingOutcome {
			return false
		}
	}
	return true
}

// retireShardLocked marks one shard done.
func (c *Coordinator) retireShardLocked(sh *shard) {
	if sh.state != shardDone {
		c.reg.dropLease(sh.worker, c.id, sh.id)
		sh.state = shardDone
		sh.worker = ""
		c.counters.ShardsCompleted.Inc()
		c.journalLocked(journalEntry{T: entryRetire, Shard: sh.id})
	}
}

// promoteShardsLocked retires any shard whose every cell already has a
// stored success — a stale upload can land the last missing cells of a
// shard that meanwhile expired or was re-leased, and re-running such a
// shard would be pure waste (its records would all dedup away).
// Quarantined shards promote too: a quarantine parks *unrun* work, and
// a shard whose cells all carry stored successes has nothing left to
// protect anyone from.
func (c *Coordinator) promoteShardsLocked() {
	for _, sh := range c.shards {
		if sh.state == shardDone {
			continue
		}
		allOK := true
		for _, idx := range sh.indexes {
			if c.cells[c.keyByIndex[idx]] != cellOK {
				allOK = false
				break
			}
		}
		if allOK {
			c.retireShardLocked(sh)
		}
	}
}

// mergeLocked appends records into the store and folds each cell's
// transition into the progress counts: first failure counts the cell
// failed, the first success counts it done (and un-counts a prior
// failure — last ok wins). Records that cannot change a cell's state —
// duplicate successes, and repeat failures for an already-failed cell
// (a retried upload whose first attempt's response was lost) — are
// dropped before touching the store, so completes are idempotent and
// the NDJSON log gains no duplicate lines. Unknown keys merge into the
// store but not the counts, so a foreign record cannot inflate Done
// past Total.
func (c *Coordinator) mergeLocked(recs []sweep.CellRecord) (merged, skipped int, err error) {
	fresh := recs[:0:0]
	for _, rec := range recs {
		state, known := c.cells[rec.Key]
		if known && (state == cellOK || (state == cellFailed && rec.Status == sweep.StatusFailed)) {
			skipped++
			continue
		}
		fresh = append(fresh, rec)
	}
	merged, dup, err := c.store.Merge(fresh)
	skipped += dup
	c.counters.RecordsMerged.Add(uint64(merged))
	c.counters.RecordsDeduped.Add(uint64(skipped))
	if err != nil {
		return merged, skipped, err
	}
	for _, rec := range fresh {
		state, known := c.cells[rec.Key]
		if !known || state == cellOK {
			continue
		}
		switch rec.Status {
		case sweep.StatusOK:
			if state == cellFailed {
				c.prog.Failed--
			}
			c.cells[rec.Key] = cellOK
			c.prog.Done++
			c.prog.Executed++
			c.gm.Add(rec.IPC)
		case sweep.StatusFailed:
			if state == cellPendingOutcome {
				c.cells[rec.Key] = cellFailed
				c.prog.Failed++
				c.prog.Executed++
			}
		}
	}
	return merged, skipped, nil
}

// Snapshot is the JSON view of a coordinator for /coord/status. The
// shard-table fields carry a "shards_" prefix so they cannot shadow
// the embedded Progress's cell-level done/total in the JSON.
type Snapshot struct {
	Sweep             string `json:"sweep"`
	Name              string `json:"name"`
	Shards            int    `json:"shards"`
	PendingShards     int    `json:"shards_pending"`
	LeasedShards      int    `json:"shards_leased"`
	DoneShards        int    `json:"shards_done"`
	QuarantinedShards int    `json:"shards_quarantined,omitempty"`
	sweep.Progress
}

// Snapshot summarises the shard table and progress. It is a pure
// read: a past-TTL lease still shows as leased until a Lease call
// reclaims it.
func (c *Coordinator) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{Sweep: c.id, Name: c.spec.Name, Shards: len(c.shards)}
	for _, sh := range c.shards {
		switch sh.state {
		case shardPending:
			s.PendingShards++
		case shardLeased:
			s.LeasedShards++
		case shardDone:
			s.DoneShards++
		case shardQuarantined:
			s.QuarantinedShards++
		}
	}
	s.Progress = c.prog
	s.Progress.GeoMeanIPC = c.gm.Mean()
	if !c.closed {
		s.Progress.Starved = c.starvedCellsLocked(time.Now())
	}
	return s
}

// ShardLease is one row of the admin lease table: where a shard is in
// its lifecycle, who holds it, for how long, and what it demands.
type ShardLease struct {
	Shard      int      `json:"shard"`
	State      string   `json:"state"`
	Cells      int      `json:"cells"`
	CellsLeft  int      `json:"cells_left"`
	Requires   []string `json:"requires,omitempty"`
	Worker     string   `json:"worker,omitempty"`
	WorkerTags []string `json:"worker_tags,omitempty"`
	Leases     int      `json:"leases"`
	Renews     int      `json:"renews,omitempty"`
	// AgeMS is how long the current lease has been held.
	AgeMS int64 `json:"lease_age_ms,omitempty"`
	// ExpiresInMS counts down to the lease's TTL; negative means it
	// lapsed and awaits reclaim-on-demand.
	ExpiresInMS int64 `json:"expires_in_ms,omitempty"`
}

// WorkerSeen is one worker the fleet registry has heard from: its
// advertised capabilities, how long ago it last polled or heartbeat,
// and the shard leases it holds right now across every live sweep.
type WorkerSeen struct {
	Name       string           `json:"name"`
	Tags       []string         `json:"tags,omitempty"`
	MaxCells   int              `json:"max_cells,omitempty"`
	LastSeenMS int64            `json:"last_seen_ms"`
	Leases     []WorkerLeaseRef `json:"leases,omitempty"`
}

// LeaseTable is one sweep's full admin view: every shard row plus the
// workers recently seen, for GET /coord/admin/leases.
type LeaseTable struct {
	Sweep   string       `json:"sweep"`
	Name    string       `json:"name"`
	Starved int          `json:"starved,omitempty"`
	Shards  []ShardLease `json:"shards"`
	Workers []WorkerSeen `json:"workers,omitempty"`
}

// LeaseTable snapshots the live lease table for operators.
func (c *Coordinator) LeaseTable() LeaseTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	t := LeaseTable{Sweep: c.id, Name: c.spec.Name, Starved: c.starvedCellsLocked(now)}
	for _, sh := range c.shards {
		row := ShardLease{
			Shard:    sh.id,
			State:    sh.state.name(),
			Cells:    len(sh.indexes),
			Requires: sh.requires,
			Leases:   sh.leases,
			Renews:   sh.renews,
		}
		for _, idx := range sh.indexes {
			if c.cells[c.keyByIndex[idx]] != cellOK {
				row.CellsLeft++
			}
		}
		if sh.state == shardLeased {
			row.Worker = sh.worker
			if !sh.granted.IsZero() {
				row.AgeMS = now.Sub(sh.granted).Milliseconds()
			}
			row.ExpiresInMS = sh.expires.Sub(now).Milliseconds()
			if cap, ok := c.reg.capOf(sh.worker); ok {
				row.WorkerTags = cap.tagList
			}
		}
		t.Shards = append(t.Shards, row)
	}
	// Workers come from the fleet registry the hub shares across
	// sweeps — the table shows the whole fleet an operator could
	// route to, idle workers included.
	t.Workers = c.reg.snapshot(now)
	return t
}

// expireLocked returns shards whose lease TTL lapsed to the pending
// pool. It runs only from Lease — reclaim on demand — so a slow but
// alive holder keeps its lease (and can heartbeat it back to life, or
// retire it) until a competing worker actually needs the work.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, sh := range c.shards {
		if sh.state == shardLeased && now.After(sh.expires) {
			c.reg.dropLease(sh.worker, c.id, sh.id)
			sh.state = shardPending
			sh.worker = ""
			c.counters.LeasesExpired.Inc()
			c.journalLocked(journalEntry{T: entryExpire, Shard: sh.id})
		}
	}
}

// maybeFinishLocked moves the sweep to its terminal state once no
// shard is pending or leased: all-done finishes "done"; done plus at
// least one quarantined shard finishes "done-with-quarantined" — the
// operator parked those cells deliberately, and re-POSTing the spec
// later starts a fresh run over exactly them. Reports whether the
// sweep is now (or already was) finished.
func (c *Coordinator) maybeFinishLocked() bool {
	if c.closed {
		return true
	}
	quarantined := 0
	for _, sh := range c.shards {
		switch sh.state {
		case shardPending, shardLeased:
			return false
		case shardQuarantined:
			quarantined++
		}
	}
	if quarantined > 0 {
		c.finishLocked(sweep.StateDoneQuarantined, "")
	} else {
		c.finishLocked(sweep.StateDone, "")
	}
	return true
}

// shardForAdminLocked resolves one shard for an admin action against a
// live sweep.
func (c *Coordinator) shardForAdminLocked(shardID int) (*shard, error) {
	if c.closed {
		return nil, fmt.Errorf("coord: sweep %s already finished", c.id)
	}
	if shardID < 0 || shardID >= len(c.shards) {
		return nil, fmt.Errorf("coord: sweep %s has no shard %d", c.id, shardID)
	}
	return c.shards[shardID], nil
}

// AdminExpire force-expires a shard's lease: the holder's next
// heartbeat answers stale and the shard re-assigns on the next lease
// poll — the operator's lever against a wedged worker that keeps
// heartbeating without progressing. The lease budget resets: the cap
// exists to fail *silent* livelock loudly, and an explicit operator
// release is informed consent to retry — without the reset, expiring
// a shard already at the cap would terminally fail the sweep on the
// very next poll. The whole mutation persists as a journal snapshot
// (admin actions are rare; the synced rewrite also carries the reset,
// which a delta entry could not).
func (c *Coordinator) AdminExpire(shardID int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh, err := c.shardForAdminLocked(shardID)
	if err != nil {
		return err
	}
	if sh.state != shardLeased {
		return fmt.Errorf("coord: shard %d is %s, not leased", shardID, sh.state.name())
	}
	log.Printf("coord: %s: admin force-expired shard %d (held by %s, %d renew(s))", c.id, sh.id, sh.worker, sh.renews)
	c.reg.dropLease(sh.worker, c.id, sh.id)
	sh.state = shardPending
	sh.worker = ""
	sh.leases = 0
	c.counters.LeasesExpired.Inc()
	c.counters.AdminExpired.Inc()
	c.compactJournalLocked()
	c.notifyLocked()
	return nil
}

// Quarantine parks a shard: it is never leased again, its holder (if
// any) goes stale, and once every other shard retires the sweep
// finishes "done-with-quarantined" instead of hanging or burning
// leases on a poisonous shard. Quarantining an already-quarantined
// shard is a no-op; a done shard cannot be quarantined. The transition
// is journaled, so a quarantine survives a server restart.
func (c *Coordinator) Quarantine(shardID int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh, err := c.shardForAdminLocked(shardID)
	if err != nil {
		return err
	}
	switch sh.state {
	case shardDone:
		return fmt.Errorf("coord: shard %d is already done", shardID)
	case shardQuarantined:
		return nil
	}
	log.Printf("coord: %s: admin quarantined shard %d (%d cell(s))", c.id, sh.id, len(sh.indexes))
	c.reg.dropLease(sh.worker, c.id, sh.id)
	sh.state = shardQuarantined
	sh.worker = ""
	c.counters.ShardsQuarantined.Inc()
	// A snapshot rewrite, not a delta: admin actions are rare and the
	// synced rewrite makes the quarantine durable even against a power
	// cut, not just a kill -9.
	c.compactJournalLocked()
	c.maybeFinishLocked()
	c.notifyLocked()
	return nil
}

// Unquarantine returns a quarantined shard to the pending pool, where
// the next capable worker leases it. Only live sweeps can release a
// shard — once the sweep finished done-with-quarantined, the parked
// cells re-run by re-POSTing the spec.
func (c *Coordinator) Unquarantine(shardID int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh, err := c.shardForAdminLocked(shardID)
	if err != nil {
		return err
	}
	if sh.state != shardQuarantined {
		return fmt.Errorf("coord: shard %d is %s, not quarantined", shardID, sh.state.name())
	}
	log.Printf("coord: %s: admin released shard %d from quarantine", c.id, sh.id)
	sh.state = shardPending
	// Fresh lease budget, same reasoning as AdminExpire: a shard was
	// often parked precisely because it burned leases, and releasing
	// it is an explicit request to try again.
	sh.leases = 0
	c.counters.ShardsUnquarantined.Inc()
	c.compactJournalLocked()
	c.notifyLocked()
	return nil
}

// finishLocked moves the sweep to a terminal state exactly once. The
// journal is rewritten to its terminal form — one snapshot plus the
// finish line — and closed: restarts skip finished sweeps, and the
// file stays as a compact record of how the sweep ended.
func (c *Coordinator) finishLocked(state sweep.State, errMsg string) {
	if c.closed {
		return
	}
	c.closed = true
	c.prog.State = state
	if errMsg != "" {
		c.prog.Error = errMsg
	}
	c.reg.dropSweep(c.id)
	c.jr.rewrite(c.snapshotEntryLocked(), journalEntry{T: entryFinish, State: string(state), Error: errMsg})
	c.jr.close()
	close(c.done)
}

// journalAdopt appends the federation hand-off line after an adoption:
// the sweep's owner is now this server. The recovery compaction has
// already rewritten the snapshot under the new identity; the delta
// exists so the journal reads as a history of who served the sweep.
func (c *Coordinator) journalAdopt() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.journalLocked(journalEntry{T: entryAdopt, Sweep: c.id, Owner: c.advertise})
}

// journalCompactMin floors the delta entries accumulated before a
// compaction rewrite (a var so tests can trigger compaction cheaply).
var journalCompactMin = 256

// journalLocked appends one delta entry and, when the delta history
// dwarfs the table it describes (long sweeps accumulate a renew line
// per heartbeat), compacts the journal back to a single snapshot.
func (c *Coordinator) journalLocked(e journalEntry) {
	c.jr.append(e)
	if !c.jr.disabled() && c.jr.pending >= journalCompactMin && c.jr.pending >= 8*len(c.shards) {
		c.compactJournalLocked()
	}
}

// compactJournalLocked rewrites the journal as one snapshot of the
// current table, dropping the settled churn that led here — the file
// stays proportional to the shard count, not the sweep's lifetime.
func (c *Coordinator) compactJournalLocked() {
	if c.jr.disabled() {
		return
	}
	c.jr.rewrite(c.snapshotEntryLocked())
	c.counters.JournalCompactions.Inc()
}

// snapshotEntryLocked captures the full shard table as one journal
// entry — the fixed point a replay starts from.
func (c *Coordinator) snapshotEntryLocked() journalEntry {
	e := journalEntry{T: entrySnapshot, Sweep: c.id, Owner: c.advertise, Shards: make([]shardSnap, len(c.shards))}
	for i, sh := range c.shards {
		snap := shardSnap{ID: sh.id, Indexes: sh.indexes, Requires: sh.requires, State: sh.state.name(), Worker: sh.worker, Leases: sh.leases, Renews: sh.renews}
		if sh.state == shardLeased {
			exp := sh.expires
			snap.Expires = &exp
		}
		e.Shards[i] = snap
	}
	return e
}

// notifyLocked delivers the current progress to the observer while
// holding the lock, so deliveries are ordered (the manager differences
// successive snapshots).
func (c *Coordinator) notifyLocked() {
	if c.onProg == nil {
		return
	}
	p := c.prog
	p.GeoMeanIPC = c.gm.Mean()
	if !c.closed {
		p.Starved = c.starvedCellsLocked(time.Now())
	}
	c.onProg(p)
}

// Lease is one granted shard: the sweep it belongs to, the explicit
// cell-index set to run, the spec to expand them from, and how long
// the worker has before it must heartbeat.
type Lease struct {
	Sweep   string        `json:"sweep"`
	Shard   int           `json:"shard"`
	Indexes []int         `json:"indexes"`
	Spec    sweep.Spec    `json:"spec"`
	TTL     time.Duration `json:"-"`
}
