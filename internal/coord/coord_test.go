package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/sweep"
)

// fakeEngine fabricates CellResults instead of simulating, so
// coordinator tests are instant. IPC 2 everywhere keeps geomean
// assertions trivial.
func fakeEngine() *service.Engine {
	return service.NewEngine(service.Config{
		Workers: 4,
		Run: func(spec service.Spec) ([]byte, error) {
			return json.Marshal(harness.CellResult{Bench: spec.Bench, Sched: spec.Sched, IPC: 2})
		},
	})
}

// wid builds a WorkerID for tests.
func wid(name string, tags ...string) WorkerID { return WorkerID{Name: name, Tags: tags} }

func eightCellSpec(t *testing.T) (sweep.Spec, []sweep.Cell) {
	t.Helper()
	spec := sweep.Spec{
		Name:        "dist",
		Distributed: true,
		Axes: sweep.Axes{
			Schedulers: []string{"GTO", "CCWS"},
			Benchmarks: []string{"SYRK", "ATAX", "BICG", "KMN"},
		},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("got %d cells", len(cells))
	}
	return spec, cells
}

func newStore(t *testing.T, spec sweep.Spec, cells []sweep.Cell) (*sweep.Store, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "s")
	st, err := sweep.Create(dir, "id", spec, len(cells))
	if err != nil {
		t.Fatal(err)
	}
	return st, dir
}

// startWorker runs a RunWorker loop against url until the returned
// stop function is called (which joins the goroutine, so no worker
// outlives its test).
func startWorker(t *testing.T, url, name string, engine *service.Engine, poll time.Duration) context.CancelFunc {
	t.Helper()
	return startWorkerCfg(t, WorkerConfig{
		URL:    url,
		Name:   name,
		Engine: engine,
		Poll:   poll,
		Logf:   t.Logf,
	})
}

// startWorkerCfg is startWorker with full control over the config.
func startWorkerCfg(t *testing.T, cfg WorkerConfig) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunWorker(ctx, cfg)
	}()
	return func() {
		cancel()
		<-done
	}
}

func waitDone(t *testing.T, d sweep.DistributedRun) {
	t.Helper()
	select {
	case <-d.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("distributed sweep did not finish: %+v", d.Progress())
	}
}

// okRecordsPerKey reads a store's NDJSON and counts "ok" records per
// cell key — the no-lost-no-duplicated-cells check.
func okRecordsPerKey(t *testing.T, dir string) map[string]int {
	t.Helper()
	recs, corrupt, err := sweep.ReadRecords(dir)
	if err != nil || corrupt != 0 {
		t.Fatalf("ReadRecords = (%d recs, %d corrupt, %v)", len(recs), corrupt, err)
	}
	out := map[string]int{}
	for _, r := range recs {
		if r.Status == sweep.StatusOK {
			out[r.Key]++
		}
	}
	return out
}

func TestDistributedSweepTwoWorkers(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, dir := newStore(t, spec, cells)

	hub := NewHub(Config{ShardSize: 2, TTL: 5 * time.Second})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"w1", "w2"} {
		defer startWorker(t, srv.URL, name, fakeEngine(), 10*time.Millisecond)()
	}
	waitDone(t, d)

	final := d.Progress()
	if final.State != sweep.StateDone || final.Done != 8 || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}
	if final.GeoMeanIPC < 1.99 || final.GeoMeanIPC > 2.01 {
		t.Errorf("geomean = %f, want 2", final.GeoMeanIPC)
	}
	if done := store.Completed(); len(done) != 8 {
		t.Fatalf("store holds %d completed cells, want 8", len(done))
	}
	perKey := okRecordsPerKey(t, dir)
	if len(perKey) != 8 {
		t.Fatalf("store holds ok records for %d cells, want 8", len(perKey))
	}
	for k, n := range perKey {
		if n != 1 {
			t.Errorf("cell %s has %d ok records, want exactly 1", k, n)
		}
	}
	store.Close()

	// Resuming the merged store locally skips everything and seeds the
	// geomean from the merged records.
	st2, err := sweep.Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng := fakeEngine()
	resumed, err := (&sweep.Runner{Engine: eng, Store: st2}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Skipped != 8 || resumed.Executed != 0 {
		t.Errorf("resume after merge = %+v, want all cells skipped", resumed)
	}
	if resumed.GeoMeanIPC < 1.99 || resumed.GeoMeanIPC > 2.01 {
		t.Errorf("resumed geomean = %f, want 2 (merged IPCs must seed it)", resumed.GeoMeanIPC)
	}
	if eng.Simulations() != 0 {
		t.Errorf("resume re-simulated %d cells", eng.Simulations())
	}
}

// TestKilledWorkerShardReassigned: a worker leases a shard and dies
// (never heartbeats, never completes). The lease expires and a live
// worker finishes the sweep — the dead worker costs only its shard.
func TestKilledWorkerShardReassigned(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, dir := newStore(t, spec, cells)
	defer store.Close()

	hub := NewHub(Config{ShardSize: 4, TTL: 150 * time.Millisecond})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)
	// The "killed" worker: grabs a shard and is never heard from again.
	if _, ok := c.Lease(wid("dead-worker")); !ok {
		t.Fatal("dead worker got no lease")
	}
	defer startWorker(t, srv.URL, "live", fakeEngine(), 20*time.Millisecond)()
	waitDone(t, d)

	if final := d.Progress(); final.State != sweep.StateDone || final.Done != 8 {
		t.Fatalf("final = %+v", final)
	}
	perKey := okRecordsPerKey(t, dir)
	if len(perKey) != 8 {
		t.Fatalf("ok records for %d cells, want 8 (no lost cells)", len(perKey))
	}
	for k, n := range perKey {
		if n != 1 {
			t.Errorf("cell %s has %d ok records (duplicated)", k, n)
		}
	}
	snap := hub.counters.Snapshot()
	if snap.LeasesExpired == 0 {
		t.Error("no lease expiry recorded for the dead worker")
	}
	if snap.ShardsReassigned == 0 {
		t.Error("no shard re-assignment recorded")
	}
}

// TestStaleCompleteIsDedupedNotDuplicated: a worker whose lease
// expired uploads anyway, after the re-assigned worker already acked
// the shard. The upload merges (dedup drops everything already ok) and
// counts as a stale ack; no cell gains a second ok record.
func TestStaleCompleteIsDedupedNotDuplicated(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, dir := newStore(t, spec, cells)
	defer store.Close()

	hub := NewHub(Config{ShardSize: 4, TTL: 50 * time.Millisecond})
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)

	l1, ok := c.Lease(wid("w1"))
	if !ok {
		t.Fatal("no lease for w1")
	}
	runShard := func(l Lease) []sweep.CellRecord {
		mem := &sweep.MemStore{}
		if _, err := (&sweep.Runner{Engine: fakeEngine(), Store: mem, Indexes: l.Indexes}).Run(context.Background(), cells); err != nil {
			t.Fatal(err)
		}
		return mem.Records()
	}
	recs1 := runShard(l1)

	// w1's lease expires; the shard re-assigns to w2, which completes.
	time.Sleep(120 * time.Millisecond)
	l2, ok := c.Lease(wid("w2"))
	if !ok {
		t.Fatal("expired shard was not re-leased")
	}
	if l2.Shard != l1.Shard {
		t.Fatalf("w2 leased shard %d, want re-assigned shard %d", l2.Shard, l1.Shard)
	}
	if merged, _, err := c.Complete("w2", l2.Shard, runShard(l2)); err != nil || merged != len(recs1) {
		t.Fatalf("w2 complete = (%d, %v), want %d merged", merged, err, len(recs1))
	}

	// w1's late upload: every record is a duplicate.
	merged, skipped, err := c.Complete("w1", l1.Shard, recs1)
	if err != nil || merged != 0 || skipped != len(recs1) {
		t.Fatalf("stale complete = (%d, %d, %v), want all skipped", merged, skipped, err)
	}
	if hub.counters.Snapshot().StaleAcks == 0 {
		t.Error("stale ack not counted")
	}
	for k, n := range okRecordsPerKey(t, dir) {
		if n != 1 {
			t.Errorf("cell %s has %d ok records after stale complete", k, n)
		}
	}
	d.Cancel()
}

// TestFailedCellsReRunOnResume: cell failures are recorded, not fatal,
// and a second distributed run of the same spec (fixed engine) re-runs
// only the failed cells — failed-then-ok merging across runs.
func TestFailedCellsReRunOnResume(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, dir := newStore(t, spec, cells)

	flaky := service.NewEngine(service.Config{
		Workers: 4,
		Run: func(s service.Spec) ([]byte, error) {
			if s.Bench == "KMN" {
				return nil, context.DeadlineExceeded
			}
			return json.Marshal(harness.CellResult{Bench: s.Bench, Sched: s.Sched, IPC: 2})
		},
	})
	hub := NewHub(Config{ShardSize: 8, TTL: 5 * time.Second})
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)
	l, ok := c.Lease(wid("w1"))
	if !ok {
		t.Fatal("no lease")
	}
	mem := &sweep.MemStore{}
	if _, err := (&sweep.Runner{Engine: flaky, Store: mem, Indexes: l.Indexes}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Complete("w1", l.Shard, mem.Records()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, d)
	if final := d.Progress(); final.State != sweep.StateDone || final.Done != 6 || final.Failed != 2 {
		t.Fatalf("flaky final = %+v, want 6 done / 2 failed", final)
	}
	store.Close()

	// Second run, healthy engine: only the two failed cells re-run.
	st2, err := sweep.Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cells2, _ := spec.Expand()
	d2, err := hub.Distribute("run-2", spec, cells2, st2, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2 := d2.(*Coordinator)
	l2, ok := c2.Lease(wid("w1"))
	if !ok {
		t.Fatal("no lease for the retry run")
	}
	if len(l2.Indexes) != 2 {
		t.Fatalf("retry shard has %d cells, want 2 (only the failures)", len(l2.Indexes))
	}
	mem2 := &sweep.MemStore{}
	if _, err := (&sweep.Runner{Engine: fakeEngine(), Store: mem2, Indexes: l2.Indexes}).Run(context.Background(), cells2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.Complete("w1", l2.Shard, mem2.Records()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, d2)
	final := d2.Progress()
	if final.State != sweep.StateDone || final.Done != 8 || final.Failed != 0 || final.Skipped != 6 {
		t.Fatalf("retry final = %+v, want 8 done / 6 skipped", final)
	}
	for k, n := range okRecordsPerKey(t, dir) {
		if n != 1 {
			t.Errorf("cell %s has %d ok records after failed-then-ok", k, n)
		}
	}
}

// TestMisaddressedCompleteCannotRetireShard: a complete naming a shard
// the caller does not hold must not mark that shard done — otherwise a
// buggy or malicious client could finish a sweep with cells that never
// ran. The records still merge (dedup protects), and only a shard
// whose every cell is actually stored ok may retire without its
// holder's ack.
func TestMisaddressedCompleteCannotRetireShard(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	hub := NewHub(Config{ShardSize: 4, TTL: 5 * time.Second})
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)
	l, ok := c.Lease(wid("w1"))
	if !ok {
		t.Fatal("no lease")
	}
	otherShard := 1 - l.Shard

	// A client acks the shard it does NOT hold, with empty records:
	// nothing may retire.
	if _, _, err := c.Complete("w1", otherShard, nil); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.DoneShards != 0 {
		t.Fatalf("mis-addressed empty complete retired a shard: %+v", snap)
	}
	select {
	case <-d.Done():
		t.Fatal("sweep finished with no cells run")
	default:
	}

	// Same mis-addressed ack but carrying w1's real records: the cells
	// merge, so w1's own shard promotes (its cells are all stored ok),
	// but the named shard — whose cells never ran — must stay open.
	mem := &sweep.MemStore{}
	if _, err := (&sweep.Runner{Engine: fakeEngine(), Store: mem, Indexes: l.Indexes}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Complete("nobody", otherShard, mem.Records()); err != nil {
		t.Fatal(err)
	}
	snap = c.Snapshot()
	if snap.DoneShards != 1 || snap.Done != 4 {
		t.Fatalf("after mis-addressed upload: %+v, want w1's shard promoted and the named shard open", snap)
	}
	select {
	case <-d.Done():
		t.Fatalf("sweep finished with %d/%d cells stored", snap.Done, snap.Total)
	default:
	}
	if hub.counters.Snapshot().StaleAcks < 2 {
		t.Error("mis-addressed completes not counted as stale")
	}

	// The legitimate remainder finishes the sweep.
	l2, ok := c.Lease(wid("w2"))
	if !ok {
		t.Fatal("no lease for the open shard")
	}
	if l2.Shard != otherShard {
		t.Fatalf("leased shard %d, want %d", l2.Shard, otherShard)
	}
	mem2 := &sweep.MemStore{}
	if _, err := (&sweep.Runner{Engine: fakeEngine(), Store: mem2, Indexes: l2.Indexes}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Complete("w2", l2.Shard, mem2.Records()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, d)
	if final := d.Progress(); final.State != sweep.StateDone || final.Done != 8 {
		t.Fatalf("final = %+v", final)
	}
}

// TestShardExhaustingLeasesFailsSweep: a shard whose every holder
// vanishes (or cannot upload) must fail the sweep terminally after
// MaxLeases attempts, not re-lease forever while reading "running".
func TestShardExhaustingLeasesFailsSweep(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	hub := NewHub(Config{ShardSize: 8, TTL: 30 * time.Millisecond, MaxLeases: 2})
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)
	for i := 0; i < 2; i++ {
		if _, ok := c.Lease(wid("doomed")); !ok {
			t.Fatalf("lease %d refused; progress %+v", i, d.Progress())
		}
		time.Sleep(80 * time.Millisecond) // let the lease expire
	}
	if _, ok := c.Lease(wid("doomed")); ok {
		t.Fatal("third lease granted, want terminal failure at MaxLeases=2")
	}
	waitDone(t, d)
	final := d.Progress()
	if final.State != sweep.StateFailed || final.Error == "" {
		t.Fatalf("final = %+v, want a failed state with an error", final)
	}
}

// TestPartialAckAndFilteredRelease: a holder ack missing outcomes for
// some of its cells must not retire the shard (the unrun cells would
// be lost); once the lease is reclaimed, the next lessee receives only
// the cells still without a stored success.
func TestPartialAckAndFilteredRelease(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	hub := NewHub(Config{ShardSize: 8, TTL: 50 * time.Millisecond})
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)
	l1, ok := c.Lease(wid("w1"))
	if !ok {
		t.Fatal("no lease")
	}
	// w1 acks having run only half its cells.
	mem := &sweep.MemStore{}
	if _, err := (&sweep.Runner{Engine: fakeEngine(), Store: mem, Indexes: l1.Indexes[:4]}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Complete("w1", l1.Shard, mem.Records()); err != nil {
		t.Fatal(err)
	}
	if snap := c.Snapshot(); snap.DoneShards != 0 || snap.Done != 4 {
		t.Fatalf("partial ack: %+v, want the shard still open with 4 cells done", snap)
	}
	select {
	case <-d.Done():
		t.Fatal("sweep finished with half its cells unrun")
	default:
	}

	// After the TTL the shard re-leases — with only the missing cells.
	time.Sleep(80 * time.Millisecond)
	l2, ok := c.Lease(wid("w2"))
	if !ok {
		t.Fatal("reclaim lease refused")
	}
	if len(l2.Indexes) != 4 {
		t.Fatalf("re-lease carries %d cells, want only the 4 missing", len(l2.Indexes))
	}
	mem2 := &sweep.MemStore{}
	if _, err := (&sweep.Runner{Engine: fakeEngine(), Store: mem2, Indexes: l2.Indexes}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Complete("w2", l2.Shard, mem2.Records()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, d)
	if final := d.Progress(); final.State != sweep.StateDone || final.Done != 8 {
		t.Fatalf("final = %+v", final)
	}
}

// TestCompleteRetryIsIdempotent: a worker whose complete response was
// lost re-uploads the identical records; the retry must not append a
// second copy of anything — including failed records, which the store
// alone would not dedup.
func TestCompleteRetryIsIdempotent(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, dir := newStore(t, spec, cells)
	defer store.Close()

	flaky := service.NewEngine(service.Config{
		Workers: 4,
		Run: func(s service.Spec) ([]byte, error) {
			if s.Bench == "KMN" {
				return nil, context.DeadlineExceeded
			}
			return json.Marshal(harness.CellResult{Bench: s.Bench, Sched: s.Sched, IPC: 2})
		},
	})
	// Two shards, so the sweep is still live when the retry lands and
	// the coordinator's record filter (not the closed guard) must do
	// the dedup.
	hub := NewHub(Config{ShardSize: 4, TTL: 5 * time.Second})
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Cancel()
	c := d.(*Coordinator)
	l, ok := c.Lease(wid("w1"))
	if !ok {
		t.Fatal("no lease")
	}
	mem := &sweep.MemStore{}
	if _, err := (&sweep.Runner{Engine: flaky, Store: mem, Indexes: l.Indexes}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	recs := mem.Records()
	if merged, _, err := c.Complete("w1", l.Shard, recs); err != nil || merged != len(recs) {
		t.Fatalf("first complete = (%d, %v)", merged, err)
	}
	// The retry (same worker, same shard, same records).
	merged, skipped, err := c.Complete("w1", l.Shard, recs)
	if err != nil || merged != 0 || skipped != len(recs) {
		t.Fatalf("retried complete = (%d, %d, %v), want everything skipped", merged, skipped, err)
	}
	allRecs, corrupt, err := sweep.ReadRecords(dir)
	if err != nil || corrupt != 0 {
		t.Fatal(err)
	}
	perKey := map[string]int{}
	for _, r := range allRecs {
		perKey[r.Key]++
	}
	for k, n := range perKey {
		if n != 1 {
			t.Errorf("cell %s has %d records after retry, want 1 (ok and failed alike)", k, n)
		}
	}
	if len(perKey) != len(recs) {
		t.Errorf("store holds %d cells, want the shard's %d", len(perKey), len(recs))
	}
}

// TestManagerDistributedEndToEnd drives the full stack the way
// ciaoserve wires it: a manager with the hub as Distributor, a spec
// with "distributed": true, and workers over HTTP.
func TestManagerDistributedEndToEnd(t *testing.T) {
	spec, _ := eightCellSpec(t)
	hub := NewHub(Config{ShardSize: 2, TTL: 5 * time.Second})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	m := sweep.NewManager(fakeEngine(), t.TempDir(), 0)
	m.SetDistributor(hub)
	run, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Status().Distributed {
		t.Error("status should report the sweep as distributed")
	}
	for _, name := range []string{"w1", "w2"} {
		defer startWorker(t, srv.URL, name, fakeEngine(), 10*time.Millisecond)()
	}
	select {
	case <-run.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("managed distributed sweep did not finish: %+v", run.Progress())
	}
	final := run.Progress()
	if final.State != sweep.StateDone || final.Done != 8 || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}
	snap := m.MetricsSnapshot()
	if snap["cells_done"].(uint64) != 8 {
		t.Errorf("manager counters = %v, want 8 cells_done", snap)
	}
}

// TestDistributedMatchesLocalBytes is the acceptance criterion: the
// same spec run single-process and run through the coordinator with
// two workers (real simulations, distinct engines) must produce
// byte-identical CellResult JSON per cell.
func TestDistributedMatchesLocalBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	spec := sweep.Spec{
		Name: "bytes",
		Axes: sweep.Axes{
			Schedulers: []string{"GTO", "CIAO-C"},
			Benchmarks: []string{"SYRK", "ATAX"},
		},
		Options: service.OptionSpec{InstrPerWarp: 400, Seed: 7},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}

	// Single-process reference run.
	localStore, localDir := newStore(t, spec, cells)
	if _, err := (&sweep.Runner{Engine: service.NewEngine(service.Config{Workers: 2}), Store: localStore}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	localStore.Close()

	// Distributed run: one shard per cell, two workers with their own
	// real engines.
	distSpec := spec
	distSpec.Distributed = true
	distStore, distDir := newStore(t, distSpec, cells)
	hub := NewHub(Config{ShardSize: 1, TTL: 30 * time.Second})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	d, err := hub.Distribute("run-1", distSpec, cells, distStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"w1", "w2"} {
		defer startWorker(t, srv.URL, name, service.NewEngine(service.Config{Workers: 2}), 10*time.Millisecond)()
	}
	waitDone(t, d)
	defer distStore.Close()

	results := func(dir string) map[string][]byte {
		recs, corrupt, err := sweep.ReadRecords(dir)
		if err != nil || corrupt != 0 {
			t.Fatalf("ReadRecords(%s) = (%d, %v)", dir, corrupt, err)
		}
		out := map[string][]byte{}
		for _, r := range recs {
			if r.Status == sweep.StatusOK {
				out[r.Key] = r.Result
			}
		}
		return out
	}
	local, dist := results(localDir), results(distDir)
	if len(local) != len(cells) || len(dist) != len(cells) {
		t.Fatalf("local %d / distributed %d ok cells, want %d", len(local), len(dist), len(cells))
	}
	for k, want := range local {
		if got, ok := dist[k]; !ok {
			t.Errorf("cell %s missing from the distributed store", k)
		} else if !bytes.Equal(got, want) {
			t.Errorf("cell %s: distributed CellResult differs from single-process run", k)
		}
	}
}
