package coord

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/sweep"
)

// mirrorStack is one federated server in the no-shared-filesystem
// topology: its own sweep directory, a hub, a manager wired to it, and
// an httptest server routing /coord/* to the hub and everything else
// (the sweep API the mirror protocol rides on) to the manager.
type mirrorStack struct {
	dir string
	hub *Hub
	mgr *sweep.Manager
	srv *httptest.Server
}

func newMirrorStack(t *testing.T, cfg Config) *mirrorStack {
	t.Helper()
	s := &mirrorStack{dir: t.TempDir()}
	var mu sync.Mutex
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hub, mgr := s.hub, s.mgr
		mu.Unlock()
		if strings.HasPrefix(r.URL.Path, "/coord/") {
			hub.Handler().ServeHTTP(w, r)
			return
		}
		mgr.Handler().ServeHTTP(w, r)
	}))
	cfg.Advertise = s.srv.URL
	mu.Lock()
	s.hub = NewHub(cfg)
	s.mgr = sweep.NewManager(fakeEngine(), s.dir, 0)
	s.mgr.SetDistributor(s.hub)
	mu.Unlock()
	return s
}

// TestFederationSeparateDirsMirrorAndAdopt is the failover e2e for the
// topology ROADMAP item 5 asked for: two servers with *separate*
// -sweepdirs, no shared filesystem. B mirrors A's running sweep —
// manifest, compacted segment, tail, and journal all travel over the
// HTTP blob backend — then A is killed with a shard in flight, B
// adopts its own mirrored copy, and the surviving workers carry the
// sweep to completion on B without re-running a settled cell.
func TestFederationSeparateDirsMirrorAndAdopt(t *testing.T) {
	spec, cells := eightCellSpec(t)
	cfg := Config{ShardSize: 1, TTL: 400 * time.Millisecond, MaxLeases: 100}
	a := newMirrorStack(t, cfg)
	b := newMirrorStack(t, cfg)
	defer b.srv.Close()

	runA, err := a.mgr.Start(spec)
	if err != nil {
		t.Fatal(err)
	}

	// One cell blocks until released, pinning its shard in flight across
	// the kill; both workers share the gate.
	gate := make(chan struct{})
	gatedEngine := func() *service.Engine {
		return service.NewEngine(service.Config{
			Workers: 2,
			Run: func(s service.Spec) ([]byte, error) {
				if s.Bench == "KMN" && s.Sched == "GTO" {
					<-gate
				}
				return json.Marshal(harness.CellResult{Bench: s.Bench, Sched: s.Sched, IPC: 2})
			},
		})
	}
	urls := a.srv.URL + "," + b.srv.URL
	defer startWorkerCfg(t, WorkerConfig{URL: urls, Name: "w1", Engine: gatedEngine(), Poll: 15 * time.Millisecond, Logf: t.Logf})()
	defer startWorkerCfg(t, WorkerConfig{URL: urls, Name: "w2", Engine: gatedEngine(), Poll: 15 * time.Millisecond, Logf: t.Logf})()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if p := runA.Progress(); p.Done == len(cells)-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never drained the unblocked cells: %+v", runA.Progress())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Freeze the settled records into a segment on A, so the mirror
	// exercises the blob path, not just the tail copy.
	resp, err := http.Post(a.srv.URL+"/sweeps/"+runA.ID()+"/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cr struct {
		Compacted bool               `json:"compacted"`
		Segment   *sweep.SegmentInfo `json:"segment"`
	}
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil || !cr.Compacted || cr.Segment == nil || cr.Segment.Records != len(cells)-1 {
		t.Fatalf("POST /compact = (%+v, %v), want the %d settled records frozen", cr, err, len(cells)-1)
	}

	// Warm standby: B pulls the running sweep into its own directory.
	if synced, err := b.mgr.MirrorFrom(a.srv.URL); synced != 1 || err != nil {
		t.Fatalf("MirrorFrom = (%d, %v), want the one running sweep", synced, err)
	}
	mirrorDir := filepath.Join(b.dir, "sweep-"+spec.Key()[:16])
	if _, err := os.Stat(filepath.Join(mirrorDir, sweep.SegmentsDir, cr.Segment.Name)); err != nil {
		t.Fatalf("segment blob did not reach B's backend: %v", err)
	}
	if _, err := os.Stat(filepath.Join(mirrorDir, sweep.CoordJournalFile)); err != nil {
		t.Fatalf("journal did not reach B: %v", err)
	}

	// Kill A: socket torn down, coordinator never cancelled — like
	// kill -9, but B holds a mirror instead of a shared directory.
	a.srv.Close()

	if n, err := b.mgr.AdoptOrphans(); n != 1 || err != nil {
		t.Fatalf("AdoptOrphans = (%d, %v), want B to adopt its mirrored copy", n, err)
	}
	run, ok := b.mgr.Get(runA.ID())
	if !ok {
		t.Fatal("adopted sweep not served under its original id on B")
	}

	close(gate)
	select {
	case <-run.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("adopted sweep did not finish on B: %+v", run.Progress())
	}
	final := run.Progress()
	if final.State != sweep.StateDone || final.Done != len(cells) || final.Failed != 0 {
		t.Fatalf("final = %+v, want all %d cells done", final, len(cells))
	}
	if final.Skipped != len(cells)-1 {
		t.Errorf("skipped = %d, want the %d mirrored settled cells skipped, not re-run", final.Skipped, len(cells)-1)
	}
	if got := b.hub.counters.Snapshot().SweepsAdopted; got != 1 {
		t.Errorf("sweeps_adopted = %d, want 1", got)
	}

	// Exactly one ok record per cell in B's store: the segment held the
	// settled seven, the in-flight cell landed once.
	perKey := okRecordsPerKey(t, mirrorDir)
	if len(perKey) != len(cells) {
		t.Fatalf("B's store has ok records for %d cells, want %d", len(perKey), len(cells))
	}
	for k, n := range perKey {
		if n != 1 {
			t.Errorf("cell %s has %d ok records, want exactly 1", k, n)
		}
	}
}

// TestNeedsRecoveryDefersToLivePeer pins the split-brain guard for
// separate-dir federation: a journal this server stamped itself is
// normally its to recover, but if a configured peer is live and
// serving that sweep right now (it adopted our mirror while we were
// down), recovering here would run the sweep twice. Only an explicit
// "running" on the peer defers — a finished sweep there, or a dead
// peer, must not block recovery.
func TestNeedsRecoveryDefersToLivePeer(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, dir := newStore(t, spec, cells)
	c := NewCoordinator("run-peer", spec, cells, store, Config{ShardSize: 4, TTL: time.Minute, Advertise: "http://self:1"}, nil, nil, nil)
	_ = c // the unfinished self-owned journal on disk is the fixture
	store.Close()

	var (
		pmu       sync.Mutex
		peerState = string(sweep.StateRunning)
	)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/sweeps/run-peer" {
			http.NotFound(w, r)
			return
		}
		pmu.Lock()
		st := peerState
		pmu.Unlock()
		writeJSON(w, http.StatusOK, map[string]string{"state": st})
	}))
	defer peer.Close()

	// Peer live and serving the sweep: defer, and remember where to
	// send its workers.
	hub := NewHub(Config{Advertise: "http://self:1", Peer: peer.URL})
	if need, err := hub.NeedsRecovery(dir); err != nil || need {
		t.Fatalf("NeedsRecovery with the peer serving = (%v, %v), want a deferral", need, err)
	}
	if url, ok := hub.redirectFor("run-peer"); !ok || url != peer.URL {
		t.Fatalf("redirect = (%q, %v), want the live peer recorded", url, ok)
	}

	// The peer finished the sweep (or never had it): our journal is
	// stale bookkeeping, recover as usual.
	pmu.Lock()
	peerState = string(sweep.StateDone)
	pmu.Unlock()
	hub = NewHub(Config{Advertise: "http://self:1", Peer: peer.URL})
	if need, err := hub.NeedsRecovery(dir); err != nil || !need {
		t.Fatalf("NeedsRecovery with the sweep done on the peer = (%v, %v), want true", need, err)
	}

	// A dead peer must not wedge boot-time recovery.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	hub = NewHub(Config{Advertise: "http://self:1", Peer: dead.URL})
	if need, err := hub.NeedsRecovery(dir); err != nil || !need {
		t.Fatalf("NeedsRecovery with the peer dead = (%v, %v), want true", need, err)
	}
}
