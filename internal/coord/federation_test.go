package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/sweep"
)

// TestJournalOwnershipRoundTrip: a coordinator configured with an
// advertise URL stamps it into every journal snapshot, and an adopt
// line moves ownership on replay without touching any shard.
func TestJournalOwnershipRoundTrip(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	c := NewCoordinator("run-1", spec, cells, store, Config{ShardSize: 4, TTL: time.Minute, Advertise: "http://a:1"}, nil, nil, nil)
	defer c.Cancel()
	st, err := replayJournal(store.CoordJournalPath())
	if err != nil {
		t.Fatal(err)
	}
	if st.owner != "http://a:1" {
		t.Fatalf("journal owner = %q, want the advertised URL", st.owner)
	}

	// A hand-written adopt line re-attributes the journal on replay.
	path := filepath.Join(t.TempDir(), "j.ndjson")
	lines := strings.Join([]string{
		`{"t":"snapshot","sweep":"run-9","owner":"http://a:1","shards":[{"id":0,"indexes":[0,1],"state":"pending"}]}`,
		`{"t":"lease","shard":0,"worker":"w1","expires":"2026-08-08T00:00:00Z","leases":1}`,
		`{"t":"adopt","sweep":"run-9","owner":"http://b:2"}`,
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.owner != "http://b:2" || st.corrupt != 0 || st.entries != 3 {
		t.Fatalf("replay = owner %q corrupt %d entries %d, want adopted by b with all lines applied", st.owner, st.corrupt, st.entries)
	}
	if st.shards[0].State != shardStateLeased || st.shards[0].Worker != "w1" {
		t.Fatalf("adopt disturbed the lease table: %+v", st.shards[0])
	}
}

// TestNeedsRecoveryOwnershipGate: at boot a server resumes its own
// journals and ownerless (pre-federation) ones, but leaves a live
// sibling's alone — remembering where to redirect that sweep's
// workers instead.
func TestNeedsRecoveryOwnershipGate(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, dir := newStore(t, spec, cells)
	c := NewCoordinator("run-owned", spec, cells, store, Config{ShardSize: 4, TTL: time.Minute, Advertise: "http://a:1"}, nil, nil, nil)
	_ = c // the unfinished journal on disk is the fixture; the coordinator itself stays passive
	store.Close()

	for _, tc := range []struct {
		advertise string
		want      bool
	}{
		{"http://a:1", true}, // own journal: recover as before
		{"http://b:2", false},
		{"", false}, // an unfederated server must not steal a federated sweep
	} {
		hub := NewHub(Config{Advertise: tc.advertise})
		need, err := hub.NeedsRecovery(dir)
		if err != nil {
			t.Fatal(err)
		}
		if need != tc.want {
			t.Errorf("NeedsRecovery as %q = %v, want %v", tc.advertise, need, tc.want)
		}
		if !tc.want {
			if url, ok := hub.redirectFor("run-owned"); !ok || url != "http://a:1" {
				t.Errorf("as %q: redirect = (%q, %v), want the owner recorded", tc.advertise, url, ok)
			}
		}
	}

	// An ownerless journal (a pre-federation build wrote it) stays
	// recoverable by anyone.
	store2, dir2 := newStore(t, spec, cells)
	c2 := NewCoordinator("run-legacy", spec, cells, store2, Config{ShardSize: 4, TTL: time.Minute}, nil, nil, nil)
	_ = c2
	store2.Close()
	hub := NewHub(Config{Advertise: "http://b:2"})
	if need, err := hub.NeedsRecovery(dir2); err != nil || !need {
		t.Fatalf("NeedsRecovery(ownerless journal) = (%v, %v), want true", need, err)
	}
}

// redirectStub is half of a scripted federated pair: it optionally
// grants one lease, then answers every heartbeat and complete with a
// redirect to its sibling — the wire behaviour of a server that
// declined to recover a sweep the sibling now owns.
type redirectStub struct {
	t *testing.T
	// target is where heartbeats/completes are redirected; empty means
	// this stub accepts them itself.
	mu        sync.Mutex
	target    string
	lease     *Lease
	leased    bool
	hbSeen    int
	completes int
	got       []sweep.CellRecord
}

func (s *redirectStub) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /coord/lease", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.lease == nil || s.leased {
			writeJSON(w, http.StatusOK, leaseResponse{Status: statusIdle, RetryMS: 10})
			return
		}
		s.leased = true
		writeJSON(w, http.StatusOK, leaseResponse{
			Status: statusShard, Sweep: s.lease.Sweep, Shard: s.lease.Shard,
			Indexes: s.lease.Indexes, Spec: &s.lease.Spec, TTLMS: s.lease.TTL.Milliseconds(),
		})
	})
	mux.HandleFunc("POST /coord/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.hbSeen++
		if s.target != "" {
			writeJSON(w, http.StatusOK, heartbeatResponse{Status: statusRedirect, URL: s.target})
			return
		}
		writeJSON(w, http.StatusOK, heartbeatResponse{Status: statusOK, TTLMS: 30})
	})
	mux.HandleFunc("POST /coord/complete", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.completes++
		if s.target != "" {
			writeJSON(w, http.StatusOK, completeResponse{Status: statusRedirect, URL: s.target})
			return
		}
		var req completeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.t.Errorf("complete body: %v", err)
		}
		s.got = append(s.got, req.Records...)
		writeJSON(w, http.StatusOK, completeResponse{Status: statusOK, Merged: len(req.Records)})
	})
	return mux
}

// TestWorkerFollowsRedirectMidShard: the sweep is adopted by a peer
// while the worker is mid-shard. The old server answers heartbeats
// with a redirect instead of "stale"; the worker must switch servers,
// keep the shard alive there, and upload every record to the adopter —
// nothing abandoned, nothing dropped, nothing sent to the old server.
func TestWorkerFollowsRedirectMidShard(t *testing.T) {
	spec := sweep.Spec{
		Name: "redirect",
		Axes: sweep.Axes{Schedulers: []string{"GTO"}, Benchmarks: []string{"SYRK", "ATAX"}},
	}
	if _, err := spec.Expand(); err != nil {
		t.Fatal(err)
	}

	adopter := &redirectStub{t: t}
	srvB := httptest.NewServer(adopter.handler())
	defer srvB.Close()
	old := &redirectStub{
		t:      t,
		target: srvB.URL,
		lease:  &Lease{Sweep: "run-1", Shard: 0, Indexes: []int{0, 1}, Spec: spec, TTL: 30 * time.Millisecond},
	}
	srvA := httptest.NewServer(old.handler())
	defer srvA.Close()

	// SYRK returns instantly; ATAX holds the shard in flight long
	// enough for a heartbeat (every TTL/3 = 10ms) to hit the redirect.
	gate := make(chan struct{})
	var gateOnce sync.Once
	engine := service.NewEngine(service.Config{
		Workers: 2,
		Run: func(s service.Spec) ([]byte, error) {
			if s.Bench == "ATAX" {
				gateOnce.Do(func() {
					go func() {
						time.Sleep(150 * time.Millisecond)
						close(gate)
					}()
				})
				<-gate
			}
			return json.Marshal(harness.CellResult{Bench: s.Bench, Sched: s.Sched, IPC: 2})
		},
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := RunWorker(ctx, WorkerConfig{
		URL:      srvA.URL, // the worker knows only the old server; the redirect teaches it the adopter
		Name:     "w1",
		Engine:   engine,
		Poll:     10 * time.Millisecond,
		IdleExit: 200 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("RunWorker = %v", err)
	}

	old.mu.Lock()
	adopter.mu.Lock()
	defer old.mu.Unlock()
	defer adopter.mu.Unlock()
	if old.hbSeen == 0 {
		t.Fatal("the old server never saw a heartbeat; the redirect path was not exercised")
	}
	// The worker may well post its first complete to the old server —
	// that answer is a redirect, so nothing merges there.
	if len(old.got) != 0 {
		t.Fatalf("old server merged %d records; they belong to the adopter", len(old.got))
	}
	keys := map[string]bool{}
	for _, rec := range adopter.got {
		keys[rec.Key] = true
	}
	if len(keys) != 2 {
		t.Fatalf("adopter received %d distinct cells, want both (%d records; heartbeats seen: %d)",
			len(keys), len(adopter.got), adopter.hbSeen)
	}
}

// TestManagerAdoptOrphans drives the operator path end-to-end at the
// manager layer: a dead sibling's unfinished sweep under the shared
// base directory is skipped by the boot scan (foreign owner), adopted
// by AdoptOrphans, re-stamped in the journal, served under its
// original id, and finished by a worker.
func TestManagerAdoptOrphans(t *testing.T) {
	spec, cells := eightCellSpec(t)
	base := t.TempDir()
	dir := filepath.Join(base, "sweep-orphan")
	store, err := sweep.Create(dir, "sweep-3-cafecafe", spec, len(cells))
	if err != nil {
		t.Fatal(err)
	}
	hubA := NewHub(Config{ShardSize: 2, TTL: time.Minute, Advertise: "http://dead-owner:1"})
	dA, err := hubA.Distribute("sweep-3-cafecafe", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	cA := dA.(*Coordinator)
	l, ok := cA.Lease(wid("w1"))
	if !ok {
		t.Fatal("no lease")
	}
	if _, _, err := cA.Complete("w1", l.Shard, runLeasedShard(t, l, cells)); err != nil {
		t.Fatal(err)
	}
	store.Close() // the owner dies here

	hubB := NewHub(Config{ShardSize: 2, TTL: 400 * time.Millisecond, Advertise: "http://b:2"})
	m := sweep.NewManager(fakeEngine(), base, 0)
	m.SetDistributor(hubB)
	if n, err := m.Recover(); n != 0 || err != nil {
		t.Fatalf("Recover = (%d, %v), want the foreign journal left alone", n, err)
	}
	if url, ok := hubB.redirectFor("sweep-3-cafecafe"); !ok || url != "http://dead-owner:1" {
		t.Fatalf("redirect after boot = (%q, %v), want the dead owner recorded", url, ok)
	}

	n, err := m.AdoptOrphans()
	if n != 1 || err != nil {
		t.Fatalf("AdoptOrphans = (%d, %v), want 1 adopted sweep", n, err)
	}
	if _, ok := hubB.redirectFor("sweep-3-cafecafe"); ok {
		t.Fatal("redirect survived adoption; workers would be bounced off their new home")
	}
	if got := hubB.counters.Snapshot().SweepsAdopted; got != 1 {
		t.Errorf("sweeps_adopted = %d, want 1", got)
	}
	st, err := replayJournal(filepath.Join(dir, sweep.CoordJournalFile))
	if err != nil {
		t.Fatal(err)
	}
	if st.owner != "http://b:2" {
		t.Fatalf("journal owner after adoption = %q, want the adopter", st.owner)
	}
	run, ok := m.Get("sweep-3-cafecafe")
	if !ok {
		t.Fatal("adopted run not served under its original id")
	}

	// While the sweep runs here, a second sweep of AdoptOrphans finds
	// nothing new (the spec key is busy).
	if n, err := m.AdoptOrphans(); n != 0 || err != nil {
		t.Fatalf("second AdoptOrphans = (%d, %v), want a no-op", n, err)
	}

	srv := httptest.NewServer(hubB.Handler())
	defer srv.Close()
	defer startWorker(t, srv.URL, "w9", fakeEngine(), 20*time.Millisecond)()
	select {
	case <-run.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("adopted sweep did not finish: %+v", run.Progress())
	}
	final := run.Progress()
	if final.State != sweep.StateDone || final.Done != 8 || final.Skipped != 2 || final.Failed != 0 {
		t.Fatalf("final = %+v, want 8 done with the 2 pre-adoption cells skipped", final)
	}
}

// newFedServer stands up a hub whose Advertise is its own server URL —
// the chicken-and-egg a real ciaoserve resolves with the -advertise
// flag, resolved here by building the handler behind an indirection.
func newFedServer(t *testing.T, cfg Config) (*Hub, *httptest.Server) {
	t.Helper()
	var (
		mu  sync.Mutex
		hub *Hub
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		h := hub
		mu.Unlock()
		h.Handler().ServeHTTP(w, r)
	}))
	cfg.Advertise = srv.URL
	mu.Lock()
	hub = NewHub(cfg)
	mu.Unlock()
	return hub, srv
}

// TestFederationPeerAdoptsOrphanedSweep is the chaos-grade failover
// end-to-end, run under -race in CI: two servers share one sweep
// directory, workers know both URLs, and the owning server is killed
// (socket torn down, coordinator never cancelled — the journal stays
// unfinished on disk, exactly like kill -9) while a worker holds a
// shard in flight. The peer adopts the sweep by replaying the journal;
// the surviving workers must carry their leases across the hand-off —
// no settled cell re-runs, the in-flight shard's records land on the
// adopter — and the merged store must be byte-identical to a
// single-process run of the same spec.
func TestFederationPeerAdoptsOrphanedSweep(t *testing.T) {
	spec, cells := eightCellSpec(t)

	// Single-process reference run (deterministic fake engines, so
	// bytes must match exactly).
	localSpec := spec
	localSpec.Distributed = false
	localStore, localDir := newStore(t, localSpec, cells)
	if _, err := (&sweep.Runner{Engine: fakeEngine(), Store: localStore}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	localStore.Close()

	cfg := Config{ShardSize: 1, TTL: 400 * time.Millisecond, MaxLeases: 100}
	hubA, srvA := newFedServer(t, cfg)
	hubB, srvB := newFedServer(t, cfg)
	defer srvB.Close()

	storeA, dir := newStore(t, spec, cells)
	defer storeA.Close()
	dA, err := hubA.Distribute("run-fed", spec, cells, storeA, nil)
	if err != nil {
		t.Fatal(err)
	}

	// B boots while A is alive and owns the sweep: the ownership gate
	// must decline and remember where the sweep lives.
	if need, err := hubB.NeedsRecovery(dir); err != nil || need {
		t.Fatalf("NeedsRecovery on the live owner's journal = (%v, %v), want false", need, err)
	}
	if url, ok := hubB.redirectFor("run-fed"); !ok || url != srvA.URL {
		t.Fatalf("redirect = (%q, %v), want A recorded as owner", url, ok)
	}

	// One cell blocks until released, pinning its shard in flight
	// across the kill; both workers share the gate so whoever leases it
	// wedges there.
	gate := make(chan struct{})
	gatedEngine := func() *service.Engine {
		return service.NewEngine(service.Config{
			Workers: 2,
			Run: func(s service.Spec) ([]byte, error) {
				if s.Bench == "KMN" && s.Sched == "GTO" {
					<-gate
				}
				return json.Marshal(harness.CellResult{Bench: s.Bench, Sched: s.Sched, IPC: 2})
			},
		})
	}
	urls := srvA.URL + "," + srvB.URL
	defer startWorkerCfg(t, WorkerConfig{URL: urls, Name: "w1", Engine: gatedEngine(), Poll: 15 * time.Millisecond, Logf: t.Logf})()
	defer startWorkerCfg(t, WorkerConfig{URL: urls, Name: "w2", Engine: gatedEngine(), Poll: 15 * time.Millisecond, Logf: t.Logf})()

	// Wait until every unblocked cell is settled and only the gated
	// shard remains in flight, heartbeat-renewed by its holder.
	deadline := time.Now().Add(30 * time.Second)
	for {
		p := dA.Progress()
		if p.Done == len(cells)-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never drained the unblocked cells: %+v", p)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill A: the socket dies, the coordinator is never cancelled, the
	// journal on disk still reads "running, one shard leased".
	srvA.Close()

	// B adopts from the shared directory, exactly as its peer watcher
	// (or POST /coord/adopt) would.
	storeB, err := sweep.Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer storeB.Close()
	dB, id, err := hubB.Adopt(spec, cells, storeB, nil)
	if err != nil || dB == nil {
		t.Fatalf("Adopt = (%v, %v)", dB, err)
	}
	if id != "run-fed" {
		t.Fatalf("adopted id = %q, want the original sweep id", id)
	}

	// Release the gated cell: its holder finishes the shard against B —
	// the heartbeats and the upload followed the hand-off.
	close(gate)
	waitDone(t, dB)
	final := dB.Progress()
	if final.State != sweep.StateDone || final.Done != len(cells) || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}
	snap := hubB.counters.Snapshot()
	if snap.SweepsAdopted != 1 {
		t.Errorf("sweeps_adopted = %d, want 1", snap.SweepsAdopted)
	}

	// Exactly one ok record per cell: the adopter re-ran nothing that
	// was settled, and the in-flight shard was not lost or duplicated.
	perKey := okRecordsPerKey(t, dir)
	if len(perKey) != len(cells) {
		t.Fatalf("store has ok records for %d cells, want %d", len(perKey), len(cells))
	}
	for k, n := range perKey {
		if n != 1 {
			t.Errorf("cell %s has %d ok records, want exactly 1", k, n)
		}
	}

	// Byte-identical result payloads vs the single-process run.
	results := func(dir string) map[string][]byte {
		recs, corrupt, err := sweep.ReadRecords(dir)
		if err != nil || corrupt != 0 {
			t.Fatalf("ReadRecords(%s) = (%d corrupt, %v)", dir, corrupt, err)
		}
		out := map[string][]byte{}
		for _, r := range recs {
			if r.Status == sweep.StatusOK {
				out[r.Key] = r.Result
			}
		}
		return out
	}
	local, fed := results(localDir), results(dir)
	for k, want := range local {
		got, ok := fed[k]
		if !ok {
			t.Errorf("cell %s missing from the federated store", k)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("cell %s: federated record differs from the local run", k)
		}
	}
}
