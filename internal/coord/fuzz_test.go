package coord

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// FuzzJournalReplay feeds arbitrary bytes — corrupted, truncated,
// interleaved, bit-flipped journals — into replayJournal and asserts
// the two properties recovery stands on: replay never panics, and a
// shard retired (or snapshotted done) since the last valid snapshot is
// never resurrected into a leasable state. The second property is what
// keeps a flipped bit in a crashed server's journal from re-running —
// and double-counting — cells whose results are already in the store.
//
// Run the seed corpus with `go test -run FuzzJournalReplay`; fuzz with
// `go test -fuzz FuzzJournalReplay ./internal/coord`.
func FuzzJournalReplay(f *testing.F) {
	snapshot := `{"t":"snapshot","sweep":"fuzz-sweep","shards":[` +
		`{"id":0,"indexes":[0,1],"state":"pending"},` +
		`{"id":1,"indexes":[2,3],"state":"pending","requires":["bigmem"]},` +
		`{"id":2,"indexes":[4,5],"state":"done"}]}`
	seeds := []string{
		// The happy path: grant, renew, retire, finish.
		snapshot + "\n" +
			`{"t":"lease","shard":0,"worker":"w1","expires":"2026-07-29T00:00:00Z","leases":1}` + "\n" +
			`{"t":"renew","shard":0,"expires":"2026-07-29T00:01:00Z"}` + "\n" +
			`{"t":"retire","shard":0}` + "\n" +
			`{"t":"finish","state":"done"}` + "\n",
		// Admin lifecycle: quarantine, unquarantine, force-expire.
		snapshot + "\n" +
			`{"t":"quarantine","shard":1}` + "\n" +
			`{"t":"unquarantine","shard":1}` + "\n" +
			`{"t":"lease","shard":1,"worker":"w2","expires":"2026-07-29T00:00:00Z","leases":1}` + "\n" +
			`{"t":"expire","shard":1}` + "\n",
		// Resurrection attempts a real coordinator never journals: every
		// line after the retire must be rejected, not applied.
		snapshot + "\n" +
			`{"t":"retire","shard":0}` + "\n" +
			`{"t":"lease","shard":0,"worker":"evil","expires":"2026-07-29T00:00:00Z","leases":9}` + "\n" +
			`{"t":"expire","shard":0}` + "\n" +
			`{"t":"quarantine","shard":2}` + "\n",
		// Torn tail, interleaved garbage, out-of-range shard ids.
		snapshot + "\n" +
			"not json at all\n" +
			`{"t":"lease","shard":99,"worker":"w"}` + "\n" +
			`{"t":"retire","shard":1}` + "\n" +
			`{"t":"renew","shard":0,"expi`,
		// Federation: an owned snapshot handed off by an adopt line —
		// ownership moves, the shard table must not.
		`{"t":"snapshot","sweep":"fuzz-sweep","owner":"http://a:1","shards":[` +
			`{"id":0,"indexes":[0,1],"state":"pending"},` +
			`{"id":1,"indexes":[2,3],"state":"done"}]}` + "\n" +
			`{"t":"lease","shard":0,"worker":"w1","expires":"2026-07-29T00:00:00Z","leases":1}` + "\n" +
			`{"t":"adopt","sweep":"fuzz-sweep","owner":"http://b:2"}` + "\n" +
			`{"t":"lease","shard":1,"worker":"evil","expires":"2026-07-29T00:00:00Z","leases":9}` + "\n",
		// No snapshot at all; deltas against an empty table.
		`{"t":"retire","shard":0}` + "\n" + `{"t":"finish"}` + "\n",
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "coord.journal.ndjson")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := replayJournal(path)
		if err != nil {
			t.Fatalf("replayJournal on an existing file: %v", err)
		}
		if st == nil {
			t.Fatal("nil replay state without error")
		}

		// Independent model of the resurrection rule: walk the same
		// lines, tracking which shards are done as of the last valid
		// snapshot plus subsequent retires. Nothing else may undo them.
		done := map[int]bool{}
		tableLen := 0
		_, serr := sweep.ScanNDJSON(path, maxJournalLineBytes, func(line []byte, torn bool) bool {
			var e journalEntry
			if json.Unmarshal(line, &e) != nil {
				return false
			}
			switch e.T {
			case entrySnapshot:
				for i, snap := range e.Shards {
					if snap.ID != i {
						return false // apply rejects unordered snapshots
					}
				}
				tableLen = len(e.Shards)
				done = map[int]bool{}
				for i, snap := range e.Shards {
					if snap.State == shardStateDone {
						done[i] = true
					}
				}
			case entryRetire:
				if e.Shard >= 0 && e.Shard < tableLen {
					done[e.Shard] = true
				}
			}
			return true
		})
		if serr != nil {
			t.Fatalf("model scan: %v", serr)
		}
		if len(st.shards) != tableLen {
			t.Fatalf("replay holds %d shards, want the last snapshot's %d", len(st.shards), tableLen)
		}
		for id := range done {
			if got := st.shards[id].State; got != shardStateDone {
				t.Fatalf("retired shard %d resurrected as %q\njournal:\n%s", id, got, data)
			}
		}
		// Replayed states must be names a snapshot could round-trip.
		for _, sh := range st.shards {
			if _, ok := shardStateFromName(sh.State); !ok {
				t.Fatalf("shard %d replayed into unknown state %q", sh.ID, sh.State)
			}
		}
	})
}

// TestReplayRejectsResurrection pins the hardening the fuzz target
// searches around: every post-retire transition a corrupted journal
// could contain counts as corrupt and leaves the shard done.
func TestReplayRejectsResurrection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	lines := strings.Join([]string{
		`{"t":"snapshot","sweep":"run-x","shards":[{"id":0,"indexes":[0,1],"state":"pending"}]}`,
		`{"t":"retire","shard":0}`,
		`{"t":"lease","shard":0,"worker":"evil","expires":"2026-07-29T00:00:00Z","leases":1}`,
		`{"t":"renew","shard":0,"expires":"2026-07-29T00:00:00Z"}`,
		`{"t":"expire","shard":0}`,
		`{"t":"quarantine","shard":0}`,
		`{"t":"unquarantine","shard":0}`,
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.shards[0].State != shardStateDone {
		t.Fatalf("shard 0 = %q, want done despite 5 resurrection lines", st.shards[0].State)
	}
	if st.corrupt != 5 {
		t.Errorf("corrupt = %d, want the 5 impossible transitions counted", st.corrupt)
	}
	if st.entries != 2 {
		t.Errorf("entries = %d, want only snapshot+retire applied", st.entries)
	}
}
