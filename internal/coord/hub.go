package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/httpx"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// Body limits: control messages are tiny; a complete carries a whole
// shard's records (payloads included).
const (
	maxControlBytes  = 1 << 16
	maxCompleteBytes = 64 << 20
)

// Hub aggregates the live coordinators of one server, serves the
// /coord HTTP API to workers, and acts as the sweep manager's
// Distributor: a spec with "distributed": true is handed here instead
// of the in-process runner.
type Hub struct {
	cfg      Config
	counters metrics.CoordCounters
	// reg is the fleet registry every coordinator of this hub shares:
	// one entry per worker, covering its capabilities, liveness and
	// current leases across sweeps. A lease poll or heartbeat updates
	// it once instead of fanning out to every coordinator.
	reg *workerRegistry

	mu     sync.Mutex
	coords map[string]*Coordinator
	order  []string
	// redirects maps sweep ids this server declined to recover — their
	// journals name another live owner — to that owner's URL. Surviving
	// workers that poll or heartbeat here for such a sweep are sent
	// there instead of being told "stale" (which would make them drop
	// partial records and abandon leases the owner still honours).
	redirects map[string]string
	// adoptFunc, when set, serves POST /coord/adopt — the operator's
	// (or peer watcher's) lever to take over orphaned sweeps. It lives
	// on the manager, which owns directory scanning; the hub only wires
	// it to HTTP.
	adoptFunc func() (int, error)
}

// NewHub builds a hub; cfg applies to every coordinator it creates.
func NewHub(cfg Config) *Hub {
	return &Hub{
		cfg:       cfg,
		reg:       newWorkerRegistry(cfg.ttl()),
		coords:    map[string]*Coordinator{},
		redirects: map[string]string{},
	}
}

// SetAdoptFunc installs the callback POST /coord/adopt runs — usually
// the sweep manager's AdoptOrphans. Call before serving requests.
func (h *Hub) SetAdoptFunc(f func() (int, error)) {
	h.mu.Lock()
	h.adoptFunc = f
	h.mu.Unlock()
}

// Distribute implements sweep.Distributor: it stands up a coordinator
// for the sweep, registers it for leasing, and unregisters it when it
// finishes.
func (h *Hub) Distribute(id string, spec sweep.Spec, cells []sweep.Cell, store *sweep.Store, onProgress func(sweep.Progress)) (sweep.DistributedRun, error) {
	c := NewCoordinator(id, spec, cells, store, h.cfg, h.reg, &h.counters, onProgress)
	h.register(c)
	return c, nil
}

// NeedsRecovery implements the cheap probe of sweep.Recoverer: it
// replays only the journal (a finished sweep's is two lines) to
// report whether dir holds an interrupted coordinator, so startup
// never opens the stores of finished sweeps. A missing journal is a
// clean "no"; an unreadable one is an error — silently skipping it
// would drop a live sweep without a trace.
//
// On a shared -sweepdir the journal's owner gates recovery: a journal
// another server stamped (and this one did not adopt) is not ours to
// resume — booting it here would split the sweep's brain, two lease
// tables granting the same shards. The sweep id is remembered as a
// redirect instead, so this server's answer to that sweep's surviving
// workers is "go there", not "stale". A journal with no owner predates
// federation and stays recoverable by anyone.
//
// A self-owned journal gets one more check when a -peer is configured:
// with *separate* sweep directories (mirror-based federation), a peer
// that adopted this sweep while we were down re-stamped only its own
// copy of the journal — ours still says we own it. Recovering it here
// anyway would run the sweep twice, so if the peer is live and serving
// the sweep right now, this server defers and redirects instead.
func (h *Hub) NeedsRecovery(dir string) (bool, error) {
	st, err := replayJournal(filepath.Join(dir, sweep.CoordJournalFile))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if st.sweepID == "" || st.finished {
		return false, nil
	}
	if st.owner != "" && st.owner != h.cfg.Advertise {
		h.mu.Lock()
		h.redirects[st.sweepID] = st.owner
		h.mu.Unlock()
		return false, nil
	}
	if h.cfg.Peer != "" && h.peerServes(st.sweepID) {
		h.mu.Lock()
		h.redirects[st.sweepID] = h.cfg.Peer
		h.mu.Unlock()
		return false, nil
	}
	return true, nil
}

// peerServes probes whether the configured peer is live and currently
// serving the sweep. A dead or unreachable peer answers false fast
// (boot-time recovery must not hang on it); only an explicit "running"
// counts — a finished or unknown sweep on the peer is no reason to
// withhold recovery here.
func (h *Hub) peerServes(sweepID string) bool {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(strings.TrimRight(h.cfg.Peer, "/") + "/sweeps/" + sweepID)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var st struct {
		State string `json:"state"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, maxControlBytes)).Decode(&st) != nil {
		return false
	}
	return st.State == string(sweep.StateRunning)
}

// Orphaned implements the probe half of sweep.Adopter: it reports the
// journaled owner of dir's sweep and whether the sweep is unfinished —
// adoptable by this server once the owner is known dead. Ownership is
// reported, not judged: the caller (an operator hitting /coord/adopt,
// or the peer watcher after repeated failed health probes) supplies
// the "it is dead" half of the decision.
func (h *Hub) Orphaned(dir string) (owner string, orphaned bool, err error) {
	st, err := replayJournal(filepath.Join(dir, sweep.CoordJournalFile))
	if errors.Is(err, fs.ErrNotExist) {
		return "", false, nil
	}
	if err != nil {
		return "", false, err
	}
	return st.owner, st.sweepID != "" && !st.finished, nil
}

// Adopt implements sweep.Adopter: it rebuilds the coordinator of an
// orphaned sweep exactly as Recover would — journal replay, store-
// seeded outcomes, surviving leases intact — but regardless of which
// server's URL the journal carries. The recovery compaction rewrites
// the snapshot under this server's identity (renaming the journal away
// from any file handle the dead owner still holds), an adopt line
// documents the hand-off, and the sweep id stops redirecting here: the
// workers it sent away are now welcome.
func (h *Hub) Adopt(spec sweep.Spec, cells []sweep.Cell, store *sweep.Store, onProgress func(sweep.Progress)) (sweep.DistributedRun, string, error) {
	c, err := recoverCoordinator(spec, cells, store, h.cfg, h.reg, &h.counters, onProgress)
	if err != nil || c == nil {
		return nil, "", err
	}
	c.journalAdopt()
	h.counters.SweepsAdopted.Inc()
	h.mu.Lock()
	delete(h.redirects, c.ID())
	h.mu.Unlock()
	h.register(c)
	return c, c.ID(), nil
}

// redirectFor reports where a sweep this server declined to recover
// lives now.
func (h *Hub) redirectFor(sweepID string) (string, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	url, ok := h.redirects[sweepID]
	return url, ok
}

// anyRedirect returns one known foreign owner, for idle lease polls:
// a worker with nothing to do here may find the sweep it used to
// serve over there.
func (h *Hub) anyRedirect() (string, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, url := range h.redirects {
		return url, true
	}
	return "", false
}

// Recover implements sweep.Recoverer: it rebuilds the coordinator for
// one crashed sweep directory from the journal co-located with the
// store and resumes serving its leases under the original sweep id,
// so workers that survived the outage keep heartbeating the lease ids
// they hold. (nil, "", nil) means the directory needs no recovery —
// no journal, or the journaled sweep already reached a terminal
// state.
func (h *Hub) Recover(spec sweep.Spec, cells []sweep.Cell, store *sweep.Store, onProgress func(sweep.Progress)) (sweep.DistributedRun, string, error) {
	c, err := recoverCoordinator(spec, cells, store, h.cfg, h.reg, &h.counters, onProgress)
	if err != nil || c == nil {
		return nil, "", err
	}
	h.register(c)
	return c, c.ID(), nil
}

// register serves a coordinator's leases until it finishes.
func (h *Hub) register(c *Coordinator) {
	id := c.ID()
	h.mu.Lock()
	h.coords[id] = c
	h.order = append(h.order, id)
	h.mu.Unlock()
	go func() {
		<-c.Done()
		h.mu.Lock()
		delete(h.coords, id)
		for i, cid := range h.order {
			if cid == id {
				h.order = append(h.order[:i], h.order[i+1:]...)
				break
			}
		}
		h.mu.Unlock()
	}()
}

// get returns the live coordinator for a sweep id.
func (h *Hub) get(id string) (*Coordinator, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.coords[id]
	return c, ok
}

// list snapshots the live coordinators in registration order.
func (h *Hub) list() []*Coordinator {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Coordinator, 0, len(h.order))
	for _, id := range h.order {
		if c, ok := h.coords[id]; ok {
			out = append(out, c)
		}
	}
	return out
}

// lease scans the live coordinators in order for a pending shard the
// worker is capable of running. active reports whether any coordinator
// exists at all, and starved that every denial was a capability
// mismatch — workers use the distinctions to tell "retry soon"
// (shards merely leased out) from "nothing I can ever serve right
// now" (counts toward -idle-exit) from "nothing to do". The poll
// lands in the fleet registry once — every sweep's starvation
// accounting reads the same entry, so a worker granted a shard here
// is still a live capability everywhere else (busy is not gone). A
// poll counts as starved only when the whole scan ends empty with at
// least one constraint denial and no merely-busy sweep — a worker
// served by sweep B is not starved just because sweep A's shards need
// more than it has.
func (h *Hub) lease(w WorkerID) (l Lease, ok, active, starved bool) {
	h.reg.observe(w, time.Now())
	coords := h.list()
	var starvedOf []*Coordinator
	busy := false
	for _, c := range coords {
		g, granted, constrained := c.leaseScan(w)
		if granted {
			l, ok = g, true
			break
		}
		if constrained {
			starvedOf = append(starvedOf, c)
		} else {
			// Denied without a constraint: the sweep's remaining shards
			// are leased out (or parked) and may come back — retrying
			// is meaningful, so the worker is not starved.
			busy = true
		}
	}
	if !ok && len(starvedOf) > 0 {
		// One denied poll is one starved lease, however many sweeps
		// were constrained; each of them still refreshes its status.
		h.counters.LeasesStarved.Inc()
		for _, c := range starvedOf {
			c.refreshStarved()
		}
	}
	return l, ok, len(coords) > 0, !ok && !busy && len(starvedOf) > 0
}

// HubMetrics is the hub's /metrics payload: the shared coordinator
// counters (field names come from CoordSnapshot's JSON tags) plus the
// number of live distributed sweeps.
type HubMetrics struct {
	Active int `json:"active"`
	metrics.CoordSnapshot
}

// MetricsSnapshot reports the coordinator counters plus the number of
// live distributed sweeps (for /metrics and /healthz).
func (h *Hub) MetricsSnapshot() HubMetrics {
	h.mu.Lock()
	active := len(h.coords)
	h.mu.Unlock()
	return HubMetrics{Active: active, CoordSnapshot: h.counters.Snapshot()}
}

// WriteProm emits the coordinator counters in Prometheus text format.
// Metric names are coord_<field> with the CoordSnapshot JSON tags as
// field names, matching the JSON /metrics payload one-for-one.
func (h *Hub) WriteProm(p *metrics.PromWriter) {
	m := h.MetricsSnapshot()
	p.Gauge("coord_active", "Live distributed sweeps on this server.", float64(m.Active))
	p.Counter("coord_leases_granted", "Shard leases granted to workers.", m.LeasesGranted)
	p.Counter("coord_leases_affine", "Leases steered to a worker that already held the shard's bench.", m.LeasesAffine)
	p.Counter("coord_leases_expired", "Leases expired after missed heartbeats.", m.LeasesExpired)
	p.Counter("coord_shards_reassigned", "Shards re-queued after lease expiry.", m.ShardsReassigned)
	p.Counter("coord_shards_completed", "Shards acked complete.", m.ShardsCompleted)
	p.Counter("coord_records_merged", "Worker records merged into canonical stores.", m.RecordsMerged)
	p.Counter("coord_records_deduped", "Worker records dropped as duplicates.", m.RecordsDeduped)
	p.Counter("coord_stale_acks", "Completes or heartbeats from expired leases.", m.StaleAcks)
	p.Counter("coord_leases_starved", "Lease polls denied for lack of matching shards.", m.LeasesStarved)
	p.Counter("coord_admin_expired", "Leases force-expired by an operator.", m.AdminExpired)
	p.Counter("coord_shards_quarantined", "Shards quarantined by an operator.", m.ShardsQuarantined)
	p.Counter("coord_shards_unquarantined", "Shards released from quarantine.", m.ShardsUnquarantined)
	p.Counter("coord_journal_entries", "Journal entries appended.", m.JournalEntries)
	p.Counter("coord_journal_replayed", "Journal entries replayed on recovery.", m.JournalReplayed)
	p.Counter("coord_journal_compactions", "Journal compaction rewrites.", m.JournalCompactions)
	p.Counter("coord_sweeps_recovered", "Sweeps reconstructed after a restart.", m.SweepsRecovered)
	p.Counter("coord_leases_recovered", "Leases restored still live after a restart.", m.LeasesRecovered)
	p.Counter("coord_sweeps_adopted", "Orphaned sweeps adopted from dead peers.", m.SweepsAdopted)
	p.Counter("coord_redirects_served", "Worker requests redirected to a sweep's owner.", m.RedirectsServed)
}

// Lease statuses on the wire.
const (
	statusShard = "shard" // a lease was granted
	statusRetry = "retry" // work exists but every shard is leased out
	// statusStarved: pending work exists but none of it matches this
	// worker's tags/size hints. Workers treat it like idle for
	// -idle-exit purposes — only a differently-equipped worker can
	// unblock the remaining shards — while still polling, in case
	// unconstrained work frees up.
	statusStarved = "starved"
	statusIdle    = "idle" // no distributed sweep is live
	statusOK      = "ok"
	statusStale   = "stale" // lease no longer held; abandon the shard
	// statusRedirect: the sweep lives on a peer server now (this one
	// declined to recover a journal the peer owns, or the peer adopted
	// it). The response's url names the new coordinator; workers switch
	// their base URL and retry the same request there — a heartbeat or
	// complete mid-shard carries on against the adopter without
	// dropping a single record.
	statusRedirect = "redirect"
)

type leaseRequest struct {
	Worker string `json:"worker"`
	// Tags advertises the worker's capabilities; shards whose spec
	// requires tags outside this set are never granted to it.
	Tags []string `json:"tags,omitempty"`
	// MaxCells caps how many cells the worker accepts per lease
	// (0 = unlimited) — the resource hint of a small host.
	MaxCells int `json:"max_cells,omitempty"`
}

type leaseResponse struct {
	Status  string      `json:"status"`
	RetryMS int64       `json:"retry_ms,omitempty"`
	Sweep   string      `json:"sweep,omitempty"`
	Shard   int         `json:"shard,omitempty"`
	Indexes []int       `json:"indexes,omitempty"`
	Spec    *sweep.Spec `json:"spec,omitempty"`
	TTLMS   int64       `json:"ttl_ms,omitempty"`
	// URL is where the worker should go instead (status "redirect").
	URL string `json:"url,omitempty"`
	// Peer advertises a sibling server operating the same sweep
	// directory; workers fold it into their base-URL rotation so they
	// already know the fallback when this server dies.
	Peer string `json:"peer,omitempty"`
}

type heartbeatRequest struct {
	Worker string `json:"worker"`
	Sweep  string `json:"sweep"`
	Shard  int    `json:"shard"`
	// Tags/MaxCells ride along so a busy worker (heartbeating, not
	// polling) still counts as a live capability for starvation
	// accounting.
	Tags     []string `json:"tags,omitempty"`
	MaxCells int      `json:"max_cells,omitempty"`
}

type heartbeatResponse struct {
	Status string `json:"status"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
	// URL is the adopter to re-heartbeat (status "redirect").
	URL string `json:"url,omitempty"`
}

type completeRequest struct {
	Worker  string             `json:"worker"`
	Sweep   string             `json:"sweep"`
	Shard   int                `json:"shard"`
	Records []sweep.CellRecord `json:"records"`
}

type completeResponse struct {
	Status  string `json:"status"`
	Merged  int    `json:"merged"`
	Skipped int    `json:"skipped"`
	// URL is the adopter to re-upload to (status "redirect") — the
	// records belong there, not in the bin.
	URL string `json:"url,omitempty"`
}

// Handler serves the coordinator API:
//
//	POST /coord/lease              — acquire a shard lease ({"worker": id,
//	                                 "tags": [...], "max_cells": n})
//	POST /coord/heartbeat          — renew a lease; "stale" means abandon
//	POST /coord/complete           — upload a shard's records and ack it
//	POST /coord/adopt              — adopt orphaned sweeps from a dead peer
//	GET  /coord/status             — shard tables of every live sweep
//	POST /coord/admin/expire       — force-expire a lease ({"sweep", "shard"})
//	POST /coord/admin/quarantine   — park a poisonous shard
//	POST /coord/admin/unquarantine — release a parked shard
//	GET  /coord/admin/leases       — live lease tables (ages, tags, renews)
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /coord/lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if err := decodeBody(r, maxControlBytes, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if req.Worker == "" {
			httpError(w, http.StatusBadRequest, errors.New("coord: lease needs a worker name"))
			return
		}
		tags, err := sweep.NormalizeTags(req.Tags)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("coord: %w", err))
			return
		}
		l, ok, active, starved := h.lease(WorkerID{Name: req.Worker, Tags: tags, MaxCells: req.MaxCells})
		var resp leaseResponse
		switch {
		case ok:
			resp = leaseResponse{
				Status:  statusShard,
				Sweep:   l.Sweep,
				Shard:   l.Shard,
				Indexes: l.Indexes,
				Spec:    &l.Spec,
				TTLMS:   l.TTL.Milliseconds(),
			}
		case starved:
			resp = leaseResponse{Status: statusStarved, RetryMS: 1000}
		case active:
			resp = leaseResponse{Status: statusRetry, RetryMS: 500}
		default:
			resp = leaseResponse{Status: statusIdle, RetryMS: 1000}
			// Nothing live here, but a sweep this server declined to
			// recover is live on its owner: point the idle worker there
			// instead of letting it poll an empty hub forever.
			if url, found := h.anyRedirect(); found {
				resp = leaseResponse{Status: statusRedirect, URL: url, RetryMS: 250}
				h.counters.RedirectsServed.Inc()
			}
		}
		// Every answer carries the configured sibling, so a fleet pointed
		// at one server alone learns its failover target for free.
		resp.Peer = h.cfg.Peer
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /coord/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if err := decodeBody(r, maxControlBytes, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		tags, terr := sweep.NormalizeTags(req.Tags)
		if terr != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("coord: %w", terr))
			return
		}
		wid := WorkerID{Name: req.Worker, Tags: tags, MaxCells: req.MaxCells}
		// A heartbeating worker is alive for every sweep's starvation
		// accounting, not just the one it is busy on — one registry
		// write covers them all (and keeps the worker visible even
		// when the sweep is already gone).
		h.reg.observe(wid, time.Now())
		c, ok := h.get(req.Sweep)
		if !ok {
			// Not live here — but if the sweep's journal named another
			// owner, "stale" would be a lie that costs the worker its
			// shard. Send it to the server that still honours the lease.
			if url, found := h.redirectFor(req.Sweep); found {
				h.counters.RedirectsServed.Inc()
				writeJSON(w, http.StatusOK, heartbeatResponse{Status: statusRedirect, URL: url})
				return
			}
			writeJSON(w, http.StatusOK, heartbeatResponse{Status: statusStale})
			return
		}
		if !c.Heartbeat(wid, req.Shard) {
			writeJSON(w, http.StatusOK, heartbeatResponse{Status: statusStale})
			return
		}
		writeJSON(w, http.StatusOK, heartbeatResponse{Status: statusOK, TTLMS: h.cfg.ttl().Milliseconds()})
	})

	mux.HandleFunc("POST /coord/complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if err := decodeBody(r, maxCompleteBytes, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		c, ok := h.get(req.Sweep)
		if !ok {
			// A sweep living on a peer gets its upload redirected — the
			// records are real work the adopter's store wants.
			if url, found := h.redirectFor(req.Sweep); found {
				h.counters.RedirectsServed.Inc()
				writeJSON(w, http.StatusOK, completeResponse{Status: statusRedirect, URL: url, Skipped: len(req.Records)})
				return
			}
			// The sweep finished or was cancelled; the records have
			// nowhere to go, which is fine — their cells are either
			// already stored or intentionally dropped.
			writeJSON(w, http.StatusOK, completeResponse{Status: statusStale, Skipped: len(req.Records)})
			return
		}
		merged, skipped, err := c.Complete(req.Worker, req.Shard, req.Records)
		if errors.Is(err, ErrStale) {
			writeJSON(w, http.StatusOK, completeResponse{Status: statusStale, Skipped: len(req.Records)})
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, completeResponse{Status: statusOK, Merged: merged, Skipped: skipped})
	})

	mux.HandleFunc("GET /coord/status", func(w http.ResponseWriter, r *http.Request) {
		coords := h.list()
		out := make([]Snapshot, 0, len(coords))
		for _, c := range coords {
			out = append(out, c.Snapshot())
		}
		writeJSON(w, http.StatusOK, struct {
			Sweeps   []Snapshot `json:"sweeps"`
			Counters HubMetrics `json:"counters"`
		}{out, h.MetricsSnapshot()})
	})

	// Admin actions share one shape: resolve the sweep, apply, answer
	// ok or surface the refusal as a 409 (the shard exists but is in
	// the wrong state) so scripted operators can tell "retry won't
	// help" from a typo'd sweep id (404).
	adminAction := func(act func(*Coordinator, int) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var req adminRequest
			if err := decodeBody(r, maxControlBytes, &req); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			// Shard is a pointer so an absent field is a 400, not a
			// silent action against shard 0 — strict decoding rejects
			// unknown fields but cannot catch missing ones.
			if req.Sweep == "" || req.Shard == nil {
				httpError(w, http.StatusBadRequest, errors.New("coord: admin request needs sweep and shard"))
				return
			}
			c, ok := h.get(req.Sweep)
			if !ok {
				httpError(w, http.StatusNotFound, fmt.Errorf("coord: no live sweep %q", req.Sweep))
				return
			}
			if err := act(c, *req.Shard); err != nil {
				httpError(w, http.StatusConflict, err)
				return
			}
			writeJSON(w, http.StatusOK, adminResponse{Status: statusOK, Sweep: c.ID(), Shard: *req.Shard})
		}
	}
	mux.HandleFunc("POST /coord/adopt", func(w http.ResponseWriter, r *http.Request) {
		h.mu.Lock()
		adopt := h.adoptFunc
		h.mu.Unlock()
		if adopt == nil {
			httpError(w, http.StatusNotImplemented, errors.New("coord: this server has no sweep manager to adopt with"))
			return
		}
		n, err := adopt()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Status  string `json:"status"`
			Adopted int    `json:"adopted"`
		}{statusOK, n})
	})
	mux.HandleFunc("POST /coord/admin/expire", adminAction((*Coordinator).AdminExpire))
	mux.HandleFunc("POST /coord/admin/quarantine", adminAction((*Coordinator).Quarantine))
	mux.HandleFunc("POST /coord/admin/unquarantine", adminAction((*Coordinator).Unquarantine))
	mux.HandleFunc("GET /coord/admin/leases", func(w http.ResponseWriter, r *http.Request) {
		coords := h.list()
		out := make([]LeaseTable, 0, len(coords))
		for _, c := range coords {
			out = append(out, c.LeaseTable())
		}
		// The fleet rides along at the top level so workers that are
		// registered but hold no lease — idle tagged workers between
		// polls, or a fleet polling a hub with no live sweep — stay
		// visible to operators.
		writeJSON(w, http.StatusOK, struct {
			Sweeps  []LeaseTable `json:"sweeps"`
			Workers []WorkerSeen `json:"workers,omitempty"`
		}{out, h.reg.snapshot(time.Now())})
	})
	return mux
}

type adminRequest struct {
	Sweep string `json:"sweep"`
	Shard *int   `json:"shard"`
}

type adminResponse struct {
	Status string `json:"status"`
	Sweep  string `json:"sweep"`
	Shard  int    `json:"shard"`
}

func decodeBody(r *http.Request, limit int64, v any) error {
	if err := httpx.DecodeStrict(r, limit, v); err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) { httpx.WriteJSON(w, code, v) }

func httpError(w http.ResponseWriter, code int, err error) { httpx.Error(w, code, err) }

// leaseFromResponse converts a wire lease back to the internal form.
func leaseFromResponse(resp leaseResponse) (Lease, error) {
	if resp.Spec == nil {
		return Lease{}, errors.New("coord: lease response missing spec")
	}
	return Lease{
		Sweep:   resp.Sweep,
		Shard:   resp.Shard,
		Indexes: resp.Indexes,
		Spec:    *resp.Spec,
		TTL:     time.Duration(resp.TTLMS) * time.Millisecond,
	}, nil
}
