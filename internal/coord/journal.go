package coord

// The write-ahead journal makes a coordinator restartable: every
// change to the shard lease table appends one NDJSON line to
// sweep.CoordJournalFile next to the sweep's results, and replaying
// those lines on server startup reconstructs the in-flight
// coordinator — same sweep id, same shard partition, same lease
// holders and lease counts — so workers that survived the outage keep
// heartbeating the lease ids they already hold.
//
// Durability model: cell *outcomes* live in the results store (the
// cell-level log of record); the journal persists only control-plane
// state. Deltas are appended without fsync — a kill -9 loses nothing
// already written (the page cache outlives the process), and losing
// the tail to a power failure merely re-leases some shards, because
// the store's dedup keeps settled cells settled regardless of what
// the lease table believes. Snapshots (creation, compaction, the
// terminal rewrite) go through a synced temp file + rename, so the
// journal is never half a table.

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/sweep"
)

// Journal entry kinds.
const (
	entrySnapshot = "snapshot" // full shard table: creation, compaction
	entryLease    = "lease"    // shard granted to a worker
	entryRenew    = "renew"    // heartbeat pushed the expiry forward
	entryExpire   = "expire"   // lease reclaimed, shard pending again
	entryRetire   = "retire"   // shard done
	// Admin transitions. The coordinator persists admin actions as a
	// full snapshot rewrite (rare, and the synced rewrite also carries
	// the lease-budget reset), so these delta kinds are written by no
	// current code path — replay keeps accepting them for journals from
	// older builds and for the corruption-hardening property tests.
	entryQuarantine   = "quarantine"   // operator parked the shard
	entryUnquarantine = "unquarantine" // operator released the shard
	entryFinish       = "finish"       // sweep reached a terminal state
	// entryAdopt records a federation hand-off: a peer server took over
	// the orphaned sweep and is its owner from this line on. The adopter
	// compacts immediately after (the fresh snapshot carries the new
	// owner too), so the delta mostly documents the hand-off for
	// operators reading the file.
	entryAdopt = "adopt"
)

// shardSnap is one shard's full state inside a snapshot entry.
// Requires is written for operators reading the file; recovery
// recomputes it from the re-expanded cells.
type shardSnap struct {
	ID       int        `json:"id"`
	Indexes  []int      `json:"indexes"`
	Requires []string   `json:"requires,omitempty"`
	State    string     `json:"state"`
	Worker   string     `json:"worker,omitempty"`
	Expires  *time.Time `json:"expires,omitempty"`
	Leases   int        `json:"leases,omitempty"`
	Renews   int        `json:"renews,omitempty"`
}

// journalEntry is one NDJSON line of the journal: a snapshot carries
// the whole table, a delta names one shard, finish carries the
// terminal state (for forensics — replay only needs the kind).
type journalEntry struct {
	T      string      `json:"t"`
	Sweep  string      `json:"sweep,omitempty"`
	Shards []shardSnap `json:"shards,omitempty"`
	// Owner is the advertised URL of the server that wrote the entry
	// (snapshots and adopt lines). A peer scanning a shared -sweepdir
	// uses it to tell its own journals from a crashed sibling's; empty
	// means a build from before federation, which any server may
	// recover.
	Owner   string     `json:"owner,omitempty"`
	Shard   int        `json:"shard,omitempty"`
	Worker  string     `json:"worker,omitempty"`
	Expires *time.Time `json:"expires,omitempty"`
	Leases  int        `json:"leases,omitempty"`
	State   string     `json:"state,omitempty"`
	Error   string     `json:"error,omitempty"`
}

// journal appends entries to one coordinator's journal file. All
// methods tolerate a nil receiver or a disabled file, so journaling
// failures degrade durability, never liveness: the sweep keeps running
// unjournaled and the failure is logged once. Calls are serialised by
// the owning coordinator's mutex.
type journal struct {
	path     string
	f        *os.File
	pending  int // delta entries since the last snapshot rewrite
	counters *metrics.CoordCounters
}

// openJournal opens (or creates) the journal for appending. Callers
// rewrite() a snapshot immediately after, which atomically discards
// whatever a previous process left behind.
func openJournal(path string, counters *metrics.CoordCounters) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("coord: open journal: %w", err)
	}
	return &journal{path: path, f: f, counters: counters}, nil
}

func (j *journal) disabled() bool { return j == nil || j.f == nil }

// append writes one delta entry as a single line.
func (j *journal) append(e journalEntry) {
	if j.disabled() {
		return
	}
	line, err := json.Marshal(e)
	if err == nil {
		_, err = j.f.Write(append(line, '\n'))
	}
	if err != nil {
		log.Printf("coord: journal %s: %v (disabling journal; the sweep continues without crash recovery)", j.path, err)
		j.f.Close()
		j.f = nil
		return
	}
	j.pending++
	j.counters.JournalEntries.Inc()
}

// rewrite atomically replaces the journal with the given entries — a
// snapshot, optionally followed by a terminal entry — via a synced
// temp file and rename, reporting whether the replacement landed. On
// failure the old journal stays in place: safe for a compaction (a
// long journal of the same table replays fine), but a caller whose
// snapshot describes a *different* table — a fresh coordinator
// resetting a previous process's journal — must disable the journal
// on false rather than append deltas onto foreign history.
func (j *journal) rewrite(entries ...journalEntry) bool {
	if j.disabled() {
		return false
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err == nil {
		for _, e := range entries {
			var line []byte
			if line, err = json.Marshal(e); err != nil {
				break
			}
			if _, err = f.Write(append(line, '\n')); err != nil {
				break
			}
		}
		if serr := f.Sync(); err == nil {
			err = serr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp, j.path)
		}
	}
	if err != nil {
		os.Remove(tmp)
		log.Printf("coord: journal %s: snapshot rewrite failed: %v (keeping the long journal)", j.path, err)
		return false
	}
	old := j.f
	j.f, err = os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	old.Close()
	if err != nil {
		log.Printf("coord: journal %s: reopen after rewrite: %v (disabling journal)", j.path, err)
		j.f = nil
		return false
	}
	j.pending = 0
	j.counters.JournalEntries.Add(uint64(len(entries)))
	return true
}

func (j *journal) close() {
	if j.disabled() {
		return
	}
	j.f.Close()
	j.f = nil
}

// maxJournalLineBytes caps one journal line on replay. A snapshot of
// the largest permissible sweep (sweep.MaxCellsCeiling cells) fits
// comfortably; longer runs of newline-less bytes are corruption.
const maxJournalLineBytes = 4 << 20

// replayState is a journal folded to its end: the shard table as the
// crashed process last recorded it.
type replayState struct {
	sweepID  string
	owner    string // advertised URL of the last writer ("" = pre-federation)
	shards   []shardSnap
	finished bool
	entries  int // well-formed entries applied
	corrupt  int // complete-but-unusable lines (torn tail excluded)
}

// replayJournal reads the journal at path and applies every entry
// through the shared torn-tail-tolerant NDJSON scanner: a torn final
// line (a kill mid-append) is dropped silently; any other unusable
// line counts as corrupt and is skipped — the lease table degrades to
// "some shards look pending", which the store-level dedup makes safe.
// A missing file returns fs.ErrNotExist for callers to treat as
// "nothing to recover".
func replayJournal(path string) (*replayState, error) {
	st := &replayState{}
	corrupt, err := sweep.ScanNDJSON(path, maxJournalLineBytes, func(line []byte, torn bool) bool {
		var e journalEntry
		if json.Unmarshal(line, &e) != nil {
			return false
		}
		return st.apply(e)
	})
	if err != nil {
		return nil, err
	}
	st.corrupt = corrupt
	return st, nil
}

// apply folds one entry into the state, reporting whether it was
// usable — well-formed, naming a shard that exists, and describing a
// transition the coordinator could actually have journaled. The last
// point is load-bearing for corrupted journals: a retired shard can
// never be resurrected by a later lease/renew/expire/quarantine line
// (the coordinator journals none of those after a retire), so a
// flipped bit cannot un-finish settled work.
func (st *replayState) apply(e journalEntry) bool {
	switch e.T {
	case entrySnapshot:
		for i, snap := range e.Shards {
			if snap.ID != i {
				return false // snapshots list shards in id order
			}
		}
		st.sweepID = e.Sweep
		st.owner = e.Owner
		st.shards = append([]shardSnap(nil), e.Shards...)
	case entryLease:
		sh := st.shard(e.Shard)
		if sh == nil || sh.State == shardStateDone || sh.State == shardStateQuarantined {
			return false
		}
		sh.State = shardStateLeased
		sh.Worker = e.Worker
		sh.Expires = e.Expires
		sh.Renews = 0
		if e.Leases > 0 {
			sh.Leases = e.Leases
		} else {
			sh.Leases++
		}
	case entryRenew:
		sh := st.shard(e.Shard)
		if sh == nil || sh.State != shardStateLeased {
			return false
		}
		sh.Expires = e.Expires
		sh.Renews++
	case entryExpire:
		sh := st.shard(e.Shard)
		if sh == nil || sh.State != shardStateLeased {
			return false
		}
		sh.State = shardStatePending
		sh.Worker = ""
		sh.Expires = nil
	case entryRetire:
		sh := st.shard(e.Shard)
		if sh == nil {
			return false
		}
		sh.State = shardStateDone
		sh.Worker = ""
		sh.Expires = nil
	case entryQuarantine:
		sh := st.shard(e.Shard)
		if sh == nil || sh.State == shardStateDone {
			return false
		}
		sh.State = shardStateQuarantined
		sh.Worker = ""
		sh.Expires = nil
	case entryUnquarantine:
		sh := st.shard(e.Shard)
		if sh == nil || sh.State != shardStateQuarantined {
			return false
		}
		sh.State = shardStatePending
	case entryFinish:
		st.finished = true
	case entryAdopt:
		// Ownership hand-off: a peer took the sweep over. The entry
		// touches no shard, so a corrupted adopt line can at worst
		// misattribute the journal, never resurrect settled work.
		st.owner = e.Owner
	default:
		return false
	}
	st.entries++
	return true
}

func (st *replayState) shard(id int) *shardSnap {
	if id < 0 || id >= len(st.shards) {
		return nil
	}
	return &st.shards[id]
}
