package coord

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
)

// runLeasedShard executes a lease's cells through a fresh fake engine
// and returns the collected records.
func runLeasedShard(t *testing.T, l Lease, cells []sweep.Cell) []sweep.CellRecord {
	t.Helper()
	mem := &sweep.MemStore{}
	if _, err := (&sweep.Runner{Engine: fakeEngine(), Store: mem, Indexes: l.Indexes}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	return mem.Records()
}

// TestJournalRoundTrip drives a coordinator through the full lease
// lifecycle — grant, renew, expiry, re-assignment, retire — and checks
// that replaying the journal reconstructs exactly the table the
// coordinator holds.
func TestJournalRoundTrip(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	c := NewCoordinator("run-1", spec, cells, store, Config{ShardSize: 2, TTL: 50 * time.Millisecond}, nil, nil, nil)
	l1, ok := c.Lease(wid("w1"))
	if !ok {
		t.Fatal("no lease")
	}
	if !c.Heartbeat(wid("w1"), l1.Shard) {
		t.Fatal("heartbeat refused")
	}
	// w1 vanishes; after the TTL its shard re-assigns to w2 (the Lease
	// call journals the expiry and the re-grant), and w2 completes it.
	time.Sleep(80 * time.Millisecond)
	l2, ok := c.Lease(wid("w2"))
	if !ok {
		t.Fatal("no re-lease")
	}
	if l2.Shard != l1.Shard {
		t.Fatalf("w2 got shard %d, want the expired shard %d", l2.Shard, l1.Shard)
	}
	if _, _, err := c.Complete("w2", l2.Shard, runLeasedShard(t, l2, cells)); err != nil {
		t.Fatal(err)
	}

	st, err := replayJournal(store.CoordJournalPath())
	if err != nil {
		t.Fatal(err)
	}
	if st.sweepID != "run-1" || st.finished || st.corrupt != 0 {
		t.Fatalf("replay = id %q finished %v corrupt %d", st.sweepID, st.finished, st.corrupt)
	}
	if len(st.shards) != 4 {
		t.Fatalf("replayed %d shards, want 4", len(st.shards))
	}
	var done, pending int
	for _, sh := range st.shards {
		switch sh.State {
		case shardStateDone:
			done++
		case shardStatePending:
			pending++
		}
	}
	if done != 1 || pending != 3 {
		t.Fatalf("replayed table: %d done / %d pending, want 1 / 3", done, pending)
	}
	if got := st.shards[l1.Shard]; got.State != shardStateDone || got.Leases != 2 {
		t.Fatalf("re-assigned shard replayed as %+v, want done with 2 leases", got)
	}
	c.Cancel()
}

// TestJournalTornTailAndCorruptLines: a torn final line (kill
// mid-append) is dropped silently; complete-but-unparseable mid-file
// lines are counted and skipped without poisoning the entries around
// them.
func TestJournalTornTailAndCorruptLines(t *testing.T) {
	path := t.TempDir() + "/j.ndjson"
	lines := strings.Join([]string{
		`{"t":"snapshot","sweep":"run-9","shards":[{"id":0,"indexes":[0,1],"state":"pending"},{"id":1,"indexes":[2,3],"state":"pending"}]}`,
		`{"t":"lease","shard":1,"worker":"w1","expires":"2026-01-02T03:04:05Z","leases":1}`,
		`this line is garbage`,
		`{"t":"lease","shard":99,"worker":"w1"}`, // names no shard
		`{"t":"retire","shard":0}`,
		`{"t":"renew","shard":1,"expi`, // torn tail, no newline
	}, "\n")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := replayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.sweepID != "run-9" || st.finished {
		t.Fatalf("replay = id %q finished %v", st.sweepID, st.finished)
	}
	if st.corrupt != 2 {
		t.Errorf("corrupt = %d, want 2 (garbage + unknown shard; the torn tail is free)", st.corrupt)
	}
	if st.entries != 3 {
		t.Errorf("entries applied = %d, want 3", st.entries)
	}
	if st.shards[0].State != shardStateDone {
		t.Errorf("shard 0 = %q, want done", st.shards[0].State)
	}
	if st.shards[1].State != shardStateLeased || st.shards[1].Worker != "w1" {
		t.Errorf("shard 1 = %+v, want leased by w1", st.shards[1])
	}
}

// TestJournalCompaction: the delta history (one renew per heartbeat)
// compacts back to a single snapshot once it dwarfs the table, and the
// snapshot replays to the same state. Finishing rewrites the journal
// to its terminal form.
func TestJournalCompaction(t *testing.T) {
	old := journalCompactMin
	journalCompactMin = 4
	defer func() { journalCompactMin = old }()

	spec, cells := eightCellSpec(t)
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	c := NewCoordinator("run-1", spec, cells, store, Config{ShardSize: 8, TTL: time.Minute}, nil, nil, nil)
	l, ok := c.Lease(wid("w1"))
	if !ok {
		t.Fatal("no lease")
	}
	for i := 0; i < 20; i++ {
		if !c.Heartbeat(wid("w1"), l.Shard) {
			t.Fatal("heartbeat refused")
		}
	}
	if got := c.counters.Snapshot().JournalCompactions; got == 0 {
		t.Fatal("no compaction after 20 renew entries with journalCompactMin=4")
	}
	st, err := replayJournal(store.CoordJournalPath())
	if err != nil {
		t.Fatal(err)
	}
	// The effective threshold is max(journalCompactMin, 8×shards) = 8
	// here, so the file can never hold more than a snapshot plus one
	// threshold's worth of deltas.
	if st.entries > 9 {
		t.Errorf("journal holds %d entries after compaction, want at most 9", st.entries)
	}
	if st.shards[l.Shard].State != shardStateLeased || st.shards[l.Shard].Worker != "w1" {
		t.Errorf("compacted journal lost the lease: %+v", st.shards[l.Shard])
	}

	// Finishing leaves the terminal two-line form behind.
	if _, _, err := c.Complete("w1", l.Shard, runLeasedShard(t, l, cells)); err != nil {
		t.Fatal(err)
	}
	waitDone(t, c)
	st, err = replayJournal(store.CoordJournalPath())
	if err != nil {
		t.Fatal(err)
	}
	if !st.finished || st.entries != 2 {
		t.Errorf("terminal journal = finished %v with %d entries, want snapshot+finish", st.finished, st.entries)
	}
}
