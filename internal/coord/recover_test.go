package coord

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sweep"
)

// TestCoordinatorCrashRecovery is the acceptance criterion: a
// coordinator "killed" mid-sweep (dropped without finishing, store
// handle closed) and rebuilt from its journal finishes the sweep under
// the original id, honours the lease a surviving worker still holds,
// re-runs no cell that had a settled success before the crash, and
// leaves the pre-crash bytes of the results file untouched (settled
// per-cell results are byte-identical across the restart).
func TestCoordinatorCrashRecovery(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, dir := newStore(t, spec, cells)

	// Long TTL before the crash, so the in-flight lease is
	// unambiguously alive when the restarted coordinator replays it.
	hub := NewHub(Config{ShardSize: 2, TTL: time.Minute})
	d, err := hub.Distribute("run-42", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)

	// w1 settles one shard (2 cells) before the crash.
	l1, ok := c.Lease(wid("w1"))
	if !ok {
		t.Fatal("no lease for w1")
	}
	if _, _, err := c.Complete("w1", l1.Shard, runLeasedShard(t, l1, cells)); err != nil {
		t.Fatal(err)
	}
	// w2 holds a lease it never finishes — in flight at the crash.
	l2, ok := c.Lease(wid("w2"))
	if !ok {
		t.Fatal("no lease for w2")
	}

	// "Crash": nothing completes, nothing cancels; the process is gone.
	store.Close()
	preBytes, err := os.ReadFile(filepath.Join(dir, sweep.ResultsFile))
	if err != nil {
		t.Fatal(err)
	}

	// Restart: fresh hub (short TTL so the dead w2's lease re-assigns
	// quickly once it stops heartbeating), reopened store, replay.
	st2, err := sweep.Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	hub2 := NewHub(Config{ShardSize: 2, TTL: 300 * time.Millisecond})
	d2, id, err := hub2.Recover(spec, cells, st2, nil)
	if err != nil || d2 == nil {
		t.Fatalf("Recover = (%v, %q, %v)", d2, id, err)
	}
	if id != "run-42" {
		t.Fatalf("recovered id %q, want the original run-42", id)
	}
	c2 := d2.(*Coordinator)
	snap := c2.Snapshot()
	if snap.DoneShards != 1 || snap.LeasedShards != 1 || snap.PendingShards != 2 {
		t.Fatalf("recovered table = %+v, want 1 done / 1 leased / 2 pending", snap)
	}
	if snap.Done != 2 || snap.Skipped != 2 || snap.Failed != 0 {
		t.Fatalf("recovered progress = %+v, want 2 done (skipped)", snap.Progress)
	}

	// The surviving worker's lease id still answers heartbeats.
	if !c2.Heartbeat(wid("w2"), l2.Shard) {
		t.Fatal("surviving worker's lease did not survive the restart")
	}
	cs := hub2.counters.Snapshot()
	if cs.SweepsRecovered != 1 || cs.JournalReplayed == 0 {
		t.Fatalf("recovery counters = %+v, want 1 sweep recovered from replayed entries", cs)
	}
	if cs.LeasesRecovered == 0 {
		t.Error("w2's live lease not counted as recovered")
	}

	// A fresh worker finishes everything w2 abandons (its heartbeats
	// stop now, so its lease expires and the shard re-assigns).
	srv := httptest.NewServer(hub2.Handler())
	defer srv.Close()
	eng := fakeEngine()
	defer startWorker(t, srv.URL, "w3", eng, 20*time.Millisecond)()
	waitDone(t, d2)
	final := d2.Progress()
	if final.State != sweep.StateDone || final.Done != 8 || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}

	// No settled cell re-ran: the post-restart engine simulated exactly
	// the 6 cells that had no stored success at the crash.
	if n := eng.Simulations(); n != 6 {
		t.Errorf("post-restart engine ran %d cells, want 6 (settled successes must not re-run)", n)
	}
	// Byte-identical: the pre-crash records survive as an untouched
	// prefix of the results file.
	post, err := os.ReadFile(filepath.Join(dir, sweep.ResultsFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(post, preBytes) {
		t.Error("recovery rewrote pre-crash results (prefix mismatch)")
	}
	perKey := okRecordsPerKey(t, dir)
	if len(perKey) != 8 {
		t.Fatalf("ok records for %d cells, want 8", len(perKey))
	}
	for k, n := range perKey {
		if n != 1 {
			t.Errorf("cell %s has %d ok records after recovery, want exactly 1", k, n)
		}
	}
}

// TestRecoverNothingToDo: directories without a journal, and journals
// of finished sweeps, recover to nothing.
func TestRecoverNothingToDo(t *testing.T) {
	spec, cells := eightCellSpec(t)

	// No journal at all.
	store, _ := newStore(t, spec, cells)
	hub := NewHub(Config{})
	if d, id, err := hub.Recover(spec, cells, store, nil); d != nil || id != "" || err != nil {
		t.Fatalf("Recover without a journal = (%v, %q, %v), want nothing", d, id, err)
	}
	store.Close()

	// A finished sweep's journal.
	store2, dir2 := newStore(t, spec, cells)
	d, err := hub.Distribute("run-1", spec, cells, store2, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Cancel() // terminal: the journal records finish
	waitDone(t, d)
	store2.Close()
	st, err := sweep.Open(dir2, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if d2, id, err := hub.Recover(spec, cells, st, nil); d2 != nil || err != nil {
		t.Fatalf("Recover of a finished sweep = (%v, %q, %v), want nothing", d2, id, err)
	}
}

// TestRecoveryReopensDoneShardWithLostResults: a power failure can
// persist the journal's retire line while losing the shard's unsynced
// result lines. Recovery must not trust the journaled "done" — a
// retired shard with unsettled cells re-opens so the lost cells
// re-lease, instead of the sweep finishing without them.
func TestRecoveryReopensDoneShardWithLostResults(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, dir := newStore(t, spec, cells)
	hub := NewHub(Config{ShardSize: 4, TTL: time.Minute})
	d, err := hub.Distribute("run-1", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.(*Coordinator)
	l, ok := c.Lease(wid("w1"))
	if !ok {
		t.Fatal("no lease")
	}
	if _, _, err := c.Complete("w1", l.Shard, runLeasedShard(t, l, cells)); err != nil {
		t.Fatal(err)
	}
	store.Close()
	// The power failure: the journal survived, the results did not.
	if err := os.Truncate(filepath.Join(dir, sweep.ResultsFile), 0); err != nil {
		t.Fatal(err)
	}

	st2, err := sweep.Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	hub2 := NewHub(Config{ShardSize: 4, TTL: time.Minute})
	d2, _, err := hub2.Recover(spec, cells, st2, nil)
	if err != nil || d2 == nil {
		t.Fatalf("Recover = (%v, %v)", d2, err)
	}
	defer d2.Cancel()
	snap := d2.(*Coordinator).Snapshot()
	if snap.DoneShards != 0 || snap.PendingShards != 2 || snap.Done != 0 {
		t.Fatalf("recovered table = %+v, want the lost shard re-opened (0 done / 2 pending)", snap)
	}
}

// TestManagerRecoverServesRecoveredSweep drives the ciaoserve boot
// path: a base directory holding a crashed distributed sweep, a fresh
// manager + hub, Manager.Recover, and a worker finishing the run —
// still served under its original id.
func TestManagerRecoverServesRecoveredSweep(t *testing.T) {
	spec, cells := eightCellSpec(t)
	base := t.TempDir()
	dir := filepath.Join(base, "sweep-crashed")
	store, err := sweep.Create(dir, "sweep-7-feedface", spec, len(cells))
	if err != nil {
		t.Fatal(err)
	}
	hub1 := NewHub(Config{ShardSize: 2, TTL: time.Minute})
	d1, err := hub1.Distribute("sweep-7-feedface", spec, cells, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1 := d1.(*Coordinator)
	l, ok := c1.Lease(wid("w1"))
	if !ok {
		t.Fatal("no lease")
	}
	if _, _, err := c1.Complete("w1", l.Shard, runLeasedShard(t, l, cells)); err != nil {
		t.Fatal(err)
	}
	store.Close() // crash

	hub2 := NewHub(Config{ShardSize: 2, TTL: 400 * time.Millisecond})
	m := sweep.NewManager(fakeEngine(), base, 0)
	m.SetDistributor(hub2)
	n, err := m.Recover()
	if n != 1 || err != nil {
		t.Fatalf("Recover = (%d, %v), want 1 recovered sweep", n, err)
	}
	run, ok := m.Get("sweep-7-feedface")
	if !ok {
		t.Fatal("recovered run not served under its original id")
	}
	status := run.Status()
	if !status.Distributed || status.State != sweep.StateRunning {
		t.Fatalf("recovered status = %+v, want a running distributed sweep", status)
	}

	srv := httptest.NewServer(hub2.Handler())
	defer srv.Close()
	defer startWorker(t, srv.URL, "w9", fakeEngine(), 20*time.Millisecond)()
	select {
	case <-run.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("recovered sweep did not finish: %+v", run.Progress())
	}
	final := run.Progress()
	if final.State != sweep.StateDone || final.Done != 8 || final.Skipped != 2 || final.Failed != 0 {
		t.Fatalf("final = %+v, want 8 done with the 2 pre-crash cells skipped", final)
	}

	// A second scan finds nothing left: the finished journal opts out.
	if n, err := m.Recover(); n != 0 || err != nil {
		t.Fatalf("second Recover = (%d, %v), want nothing to do", n, err)
	}
}

// TestWorkerPollJitter: poll() spreads a fleet's lease retries across
// ±25% of the configured interval instead of a lockstep thundering
// herd.
func TestWorkerPollJitter(t *testing.T) {
	cfg := WorkerConfig{Poll: 400 * time.Millisecond}
	lo, hi := cfg.Poll, cfg.Poll
	for i := 0; i < 500; i++ {
		d := cfg.poll()
		if d < 300*time.Millisecond || d > 500*time.Millisecond {
			t.Fatalf("poll() = %v, want within ±25%% of 400ms", d)
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi-lo < 50*time.Millisecond {
		t.Errorf("poll() spread = %v over 500 draws, want meaningful jitter", hi-lo)
	}
}
