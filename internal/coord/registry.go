package coord

import (
	"log"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/sweep"
)

// workerCap is one worker's advertised capabilities as last heard:
// tags a shard's requires must be a subset of, an optional per-lease
// cell ceiling, and when the worker last polled or heartbeat. Values
// are handed out by copy; the tags map is built fresh on every observe
// and never mutated afterwards, so holding a copy outside the registry
// lock is safe.
type workerCap struct {
	name     string
	tags     map[string]bool
	tagList  []string
	maxCells int
	seen     time.Time
}

// fits reports whether this worker can serve a shard needing the given
// tags with that many cells left.
func (w workerCap) fits(requires []string, cells int) bool {
	if w.maxCells > 0 && cells > w.maxCells {
		return false
	}
	return w.fitsTags(requires)
}

// fitsTags is the tag half of fits — separable because it does not
// depend on how many cells remain in the shard.
func (w workerCap) fitsTags(requires []string) bool {
	for _, tag := range requires {
		if !w.tags[tag] {
			return false
		}
	}
	return true
}

// WorkerLeaseRef names one shard lease a worker currently holds.
type WorkerLeaseRef struct {
	Sweep string `json:"sweep"`
	Shard int    `json:"shard"`
}

// regWorker is the registry's full record of one worker: its latest
// capability snapshot, the leases it holds right now across every live
// sweep, and the shards it has served before (the affinity memory —
// a worker that ran a config recently still holds its results in the
// engine cache, so re-leasing related work to it is cheaper).
type regWorker struct {
	cap    workerCap
	leases map[string]WorkerLeaseRef
	served map[string]bool
}

// Affinity scores, best first: the worker held this exact shard
// before (its cache holds these very cells), it served the same
// requirement group of the same sweep (same configs, different
// cells), or it is a stranger to the work.
const (
	affinityExact = 2
	affinityGroup = 1
	affinityNone  = 0
)

// registryEvictFactor: an idle worker is forgotten once its last
// poll or heartbeat is this many TTLs old. Workers holding a live
// lease are never evicted, however stale — the lease table still
// names them.
const registryEvictFactor = 10

// registryPruneAbove bounds how large the worker map may grow before
// every observe also sweeps for evictable entries, so a churning fleet
// of short-lived worker names cannot grow the registry without bound.
const registryPruneAbove = 128

// workerRegistry is the hub-level fleet view: one entry per worker
// name, shared by every coordinator the hub serves. It replaces the
// per-coordinator worker maps — a heartbeat or lease poll lands here
// once instead of fanning out to O(sweeps) coordinator locks, and
// starvation accounting for any sweep reads the same single map.
//
// Lock order: Coordinator.mu may be held when registry methods are
// called, never the reverse — the registry calls nothing back.
type workerRegistry struct {
	mu         sync.Mutex
	evictAfter time.Duration
	workers    map[string]*regWorker
}

// newWorkerRegistry builds a registry whose idle-eviction window is
// derived from the lease TTL the coordinators use.
func newWorkerRegistry(ttl time.Duration) *workerRegistry {
	return &workerRegistry{
		evictAfter: registryEvictFactor * ttl,
		workers:    map[string]*regWorker{},
	}
}

// observe records a worker's advertised capabilities and refreshes its
// last-seen time — the liveness signal starvation accounting runs
// against. Tags canonicalise through the same sweep.NormalizeTags the
// spec side uses, so a worker tag and a shard requirement can never
// disagree on form; malformed tags (which the HTTP handlers already
// reject with a 400) are dropped wholesale rather than recorded as
// unmatchable strings. The returned snapshot is a copy the caller may
// use without any lock.
func (r *workerRegistry) observe(w WorkerID, now time.Time) workerCap {
	list, err := sweep.NormalizeTags(w.Tags)
	if err != nil {
		log.Printf("coord: worker %q advertises malformed tags, ignoring them all: %v", w.Name, err)
		list = nil
	}
	tags := make(map[string]bool, len(list))
	for _, tag := range list {
		tags[tag] = true
	}
	cap := workerCap{name: w.Name, tags: tags, tagList: list, maxCells: w.MaxCells, seen: now}
	if w.Name == "" {
		return cap // not tracked; name-less callers cannot heartbeat anyway
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rw, ok := r.workers[w.Name]
	if !ok {
		if len(r.workers) > registryPruneAbove {
			r.evictLocked(now)
		}
		rw = newRegWorker()
		r.workers[w.Name] = rw
	}
	rw.cap = cap
	return cap
}

func newRegWorker() *regWorker {
	return &regWorker{leases: map[string]WorkerLeaseRef{}, served: map[string]bool{}}
}

// evictStale forgets workers that are both lease-less and silent for
// longer than the eviction window, reporting how many were dropped.
func (r *workerRegistry) evictStale(now time.Time) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictLocked(now)
}

func (r *workerRegistry) evictLocked(now time.Time) int {
	n := 0
	for name, rw := range r.workers {
		if len(rw.leases) == 0 && now.Sub(rw.cap.seen) > r.evictAfter {
			delete(r.workers, name)
			n++
		}
	}
	return n
}

// liveCaps returns capability snapshots of every worker seen within
// the window — the denominator of starvation accounting.
func (r *workerRegistry) liveCaps(now time.Time, window time.Duration) []workerCap {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []workerCap
	for _, rw := range r.workers {
		if now.Sub(rw.cap.seen) <= window {
			out = append(out, rw.cap)
		}
	}
	return out
}

// capOf returns the capability snapshot of one worker, if registered.
func (r *workerRegistry) capOf(name string) (workerCap, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rw, ok := r.workers[name]
	if !ok {
		return workerCap{}, false
	}
	return rw.cap, true
}

// servedShardKey / servedGroupKey index the affinity memory. Sweep ids
// and normalized tags never contain '|', so the forms cannot collide.
func servedShardKey(sweepID string, shard int) string {
	return "shard|" + sweepID + "|" + strconv.Itoa(shard)
}

func servedGroupKey(sweepID, sig string) string {
	return "group|" + sweepID + "|" + sig
}

// noteLease records a grant: the worker now holds sweep/shard, and is
// remembered as having served that shard and its requirement group
// even after the lease ends. A worker recovered from a journal may be
// noted before it is ever observed; it is created live (it held a
// lease moments before the crash) and its capabilities fill in on its
// next poll or heartbeat.
func (r *workerRegistry) noteLease(worker, sweepID string, shard int, sig string, now time.Time) {
	if worker == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rw, ok := r.workers[worker]
	if !ok {
		rw = newRegWorker()
		rw.cap = workerCap{name: worker, tags: map[string]bool{}, seen: now}
		r.workers[worker] = rw
	}
	rw.leases[servedShardKey(sweepID, shard)] = WorkerLeaseRef{Sweep: sweepID, Shard: shard}
	rw.served[servedShardKey(sweepID, shard)] = true
	rw.served[servedGroupKey(sweepID, sig)] = true
}

// dropLease forgets a current lease — the shard expired, retired, was
// quarantined, or an operator released it. The affinity memory stays:
// the worker's cache does not cool because its lease ended.
func (r *workerRegistry) dropLease(worker, sweepID string, shard int) {
	if worker == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rw, ok := r.workers[worker]; ok {
		delete(rw.leases, servedShardKey(sweepID, shard))
	}
}

// dropSweep forgets every current lease and affinity memory of a
// finished sweep, so the registry stays proportional to the live
// fleet and its live work.
func (r *workerRegistry) dropSweep(sweepID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	shardPrefix := "shard|" + sweepID + "|"
	groupPrefix := "group|" + sweepID + "|"
	for _, rw := range r.workers {
		for k := range rw.leases {
			if strings.HasPrefix(k, shardPrefix) {
				delete(rw.leases, k)
			}
		}
		for k := range rw.served {
			if strings.HasPrefix(k, shardPrefix) || strings.HasPrefix(k, groupPrefix) {
				delete(rw.served, k)
			}
		}
	}
}

// affinityScore reports how warm the worker's engine cache likely is
// for a shard: it held this exact shard before, it served the shard's
// requirement group within the same sweep, or neither.
func (r *workerRegistry) affinityScore(worker, sweepID string, shard int, sig string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	rw, ok := r.workers[worker]
	if !ok {
		return affinityNone
	}
	if rw.served[servedShardKey(sweepID, shard)] {
		return affinityExact
	}
	if rw.served[servedGroupKey(sweepID, sig)] {
		return affinityGroup
	}
	return affinityNone
}

// snapshot returns the admin view of every registered worker — idle
// ones included, which is the point: an operator listing the fleet
// must see a tagged worker that is merely between polls, or polling a
// hub with no live sweep at all.
func (r *workerRegistry) snapshot(now time.Time) []WorkerSeen {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.workers))
	for name := range r.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]WorkerSeen, 0, len(names))
	for _, name := range names {
		rw := r.workers[name]
		ws := WorkerSeen{
			Name:       name,
			Tags:       rw.cap.tagList,
			MaxCells:   rw.cap.maxCells,
			LastSeenMS: now.Sub(rw.cap.seen).Milliseconds(),
		}
		for _, ref := range rw.leases {
			ws.Leases = append(ws.Leases, ref)
		}
		sort.Slice(ws.Leases, func(i, j int) bool {
			if ws.Leases[i].Sweep != ws.Leases[j].Sweep {
				return ws.Leases[i].Sweep < ws.Leases[j].Sweep
			}
			return ws.Leases[i].Shard < ws.Leases[j].Shard
		})
		out = append(out, ws)
	}
	return out
}
