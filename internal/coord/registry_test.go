package coord

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRegistryTTLEviction: an idle worker is forgotten once silent for
// longer than the eviction window, but never while it still holds a
// lease — the lease table names it, so the registry must too.
func TestRegistryTTLEviction(t *testing.T) {
	r := newWorkerRegistry(time.Second) // evictAfter = 10s
	t0 := time.Now()
	r.observe(wid("idler", "bigmem"), t0)
	r.observe(wid("holder"), t0)
	r.noteLease("holder", "run-1", 0, "", t0)

	if n := r.evictStale(t0.Add(5 * time.Second)); n != 0 {
		t.Fatalf("evicted %d workers inside the window, want 0", n)
	}
	if _, ok := r.capOf("idler"); !ok {
		t.Fatal("idler gone before its eviction window lapsed")
	}
	if n := r.evictStale(t0.Add(11 * time.Second)); n != 1 {
		t.Fatalf("evicted %d workers past the window, want 1 (the idler)", n)
	}
	if _, ok := r.capOf("idler"); ok {
		t.Fatal("idler survived eviction")
	}
	if _, ok := r.capOf("holder"); !ok {
		t.Fatal("lease holder evicted while its lease is live")
	}
	// Once the lease is dropped, the stale holder goes too.
	r.dropLease("holder", "run-1", 0)
	if n := r.evictStale(t0.Add(11 * time.Second)); n != 1 {
		t.Fatalf("evicted %d workers after the lease dropped, want 1", n)
	}
}

// TestRegistryAffinityPrefersPreviousHolder: after both workers lose
// their leases to expiry, each re-poll routes the worker back to the
// shard it already ran — its engine cache still holds those cells —
// instead of first-fit handing both the lowest pending id.
func TestRegistryAffinityPrefersPreviousHolder(t *testing.T) {
	spec, cells := eightCellSpec(t)
	store, _ := newStore(t, spec, cells)
	defer store.Close()

	c := NewCoordinator("run-1", spec, cells, store, Config{ShardSize: 2, TTL: 30 * time.Millisecond}, nil, nil, nil)
	defer c.Cancel()
	l1, ok1 := c.Lease(wid("w1"))
	l2, ok2 := c.Lease(wid("w2"))
	if !ok1 || !ok2 {
		t.Fatal("initial leases not granted")
	}
	if l1.Shard == l2.Shard {
		t.Fatalf("both workers granted shard %d", l1.Shard)
	}
	time.Sleep(60 * time.Millisecond) // both leases lapse

	// w2 polls first: first-fit would reclaim and grant w1's old shard
	// (the lowest pending id); affinity must send w2 back to its own.
	r2, ok := c.Lease(wid("w2"))
	if !ok {
		t.Fatal("w2 re-poll got no lease")
	}
	if r2.Shard != l2.Shard {
		t.Fatalf("w2 re-leased shard %d, want its previous shard %d", r2.Shard, l2.Shard)
	}
	r1, ok := c.Lease(wid("w1"))
	if !ok {
		t.Fatal("w1 re-poll got no lease")
	}
	if r1.Shard != l1.Shard {
		t.Fatalf("w1 re-leased shard %d, want its previous shard %d", r1.Shard, l1.Shard)
	}
	if got := c.counters.Snapshot().LeasesAffine; got != 2 {
		t.Errorf("leases_affine = %d, want 2", got)
	}
}

// TestIdleRegisteredWorkerVisibleToAdmin: a tagged worker polling a
// hub with no live sweep still appears in GET /coord/admin/leases —
// before the fleet registry, an idle worker was invisible to
// operators between polls.
func TestIdleRegisteredWorkerVisibleToAdmin(t *testing.T) {
	hub := NewHub(Config{TTL: time.Second})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	body, _ := json.Marshal(leaseRequest{Worker: "spare", Tags: []string{"bigmem"}, MaxCells: 4})
	resp, err := http.Post(srv.URL+"/coord/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var lr leaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lr.Status != statusIdle {
		t.Fatalf("lease status = %q, want idle (no sweep is live)", lr.Status)
	}

	resp, err = http.Get(srv.URL + "/coord/admin/leases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var table struct {
		Sweeps  []LeaseTable `json:"sweeps"`
		Workers []WorkerSeen `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		t.Fatal(err)
	}
	if len(table.Sweeps) != 0 {
		t.Fatalf("expected no live sweeps, got %d", len(table.Sweeps))
	}
	if len(table.Workers) != 1 || table.Workers[0].Name != "spare" {
		t.Fatalf("workers = %+v, want exactly the idle worker \"spare\"", table.Workers)
	}
	w := table.Workers[0]
	if len(w.Tags) != 1 || w.Tags[0] != "bigmem" || w.MaxCells != 4 || len(w.Leases) != 0 {
		t.Fatalf("idle worker row = %+v, want tags [bigmem], max_cells 4, no leases", w)
	}
}
