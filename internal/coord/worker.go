package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/sweep"
)

// WorkerConfig shapes one worker loop.
type WorkerConfig struct {
	// URL is the coordinator base URL (http://host:port), or a
	// comma-separated list of them for a federated pair sharing one
	// sweep directory. The worker talks to one at a time, rotating to
	// the next on transport errors and following "redirect" answers,
	// so a coordinator dying mid-shard hands the worker to the peer
	// that adopts the sweep.
	URL string
	// Name identifies the worker in leases (default hostname-pid).
	Name string
	// Tags advertises this worker's capabilities ("bigmem", "gpu");
	// the coordinator routes shards whose spec requires tags only to
	// workers advertising all of them.
	Tags []string
	// MaxCells caps how many cells this worker accepts per lease
	// (0 = unlimited) — the resource hint of a small host.
	MaxCells int
	// Engine executes the leased cells (required).
	Engine *service.Engine
	// Parallelism bounds concurrently submitted cells per shard
	// (0 = the runner default).
	Parallelism int
	// Poll is the sleep between lease attempts when no shard is
	// available (0 = 500ms).
	Poll time.Duration
	// IdleExit, when positive, makes the worker exit cleanly after the
	// coordinator has reported — for this long — no live sweeps,
	// nothing this worker's capabilities can serve ("starved"), or
	// been unreachable. Zero polls forever — the daemon mode.
	IdleExit time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Logf receives progress lines (default log-less).
	Logf func(format string, args ...any)
}

func (c WorkerConfig) name() string {
	if c.Name != "" {
		return c.Name
	}
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// poll returns the lease poll interval with ±25% jitter. Without it a
// fleet of workers released by the same event — an idle coordinator
// receiving a sweep, a server restart — knocks on /coord/lease in
// lockstep forever; the jitter spreads each retry wave out.
func (c WorkerConfig) poll() time.Duration {
	d := c.Poll
	if d <= 0 {
		d = 500 * time.Millisecond
	}
	return d - d/4 + time.Duration(rand.Int64N(int64(d)/2+1))
}

func (c WorkerConfig) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c WorkerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// RunWorker loops leasing shards from the coordinator and executing
// them through the engine until ctx is cancelled or — with IdleExit
// set — the coordinator stays idle long enough. Each leased shard runs
// through the ordinary sweep.Runner against an in-memory sink, with a
// background heartbeat keeping the lease alive; the collected records
// upload via /coord/complete. A shard whose heartbeat goes stale is
// abandoned mid-run: the coordinator has already re-assigned it.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Engine == nil {
		return errors.New("coord: worker needs an engine")
	}
	tags, err := sweep.NormalizeTags(cfg.Tags)
	if err != nil {
		return err
	}
	bases := splitBases(cfg.URL)
	if len(bases) == 0 {
		return errors.New("coord: worker needs a coordinator URL")
	}
	w := &worker{
		cfg:   cfg,
		name:  cfg.name(),
		tags:  tags,
		bases: bases,
	}
	var idleSince time.Time
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.lease(ctx)
		if err == nil {
			// Fold any advertised sibling into the rotation now, while
			// this server is still alive to tell us about it.
			w.addPeer(resp.Peer)
		}
		idle := false
		sleep := cfg.poll()
		// The coordinator hints how soon polling again is useful
		// (longer when idle than when shards are merely all leased out);
		// honor it when it is the more patient of the two.
		if hint := time.Duration(resp.RetryMS) * time.Millisecond; hint > sleep {
			sleep = hint
		}
		switch {
		case err != nil:
			// Coordinator unreachable: with IdleExit this eventually
			// stops the worker, without it we keep knocking (post has
			// already rotated to the next base, if there is one).
			w.cfg.logf("lease: %v", err)
			idle = true
		case resp.Status == statusRedirect:
			// This server handed the fleet to a peer (it declined to
			// recover a sweep the peer owns). Not idleness — the peer
			// has the work; poll it promptly.
			w.cfg.logf("lease: redirected to %s", resp.URL)
			w.setBase(resp.URL)
		case resp.Status == statusShard:
			l, lerr := leaseFromResponse(resp)
			if lerr != nil {
				w.cfg.logf("lease: %v", lerr)
				idle = true
				break
			}
			idleSince = time.Time{}
			if w.runShard(ctx, l) {
				continue // immediately ask for the next shard
			}
			// The shard was abandoned (stale lease, bad spec, failed
			// upload). Fall through to the poll sleep: leasing again at
			// HTTP speed would just park every pending shard for a TTL.
		case resp.Status == statusIdle || resp.Status == statusStarved:
			// Starved means pending work exists that this worker can
			// never serve with its tags/size hints: for -idle-exit
			// purposes that is idleness — only a differently-equipped
			// worker can unblock it — though polling continues in case
			// unconstrained work appears.
			idle = true
		}
		if idle && cfg.IdleExit > 0 {
			if idleSince.IsZero() {
				idleSince = time.Now()
			} else if time.Since(idleSince) >= cfg.IdleExit {
				w.cfg.logf("idle for %s, exiting", cfg.IdleExit)
				return nil
			}
		}
		if !idle {
			idleSince = time.Time{}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(sleep):
		}
	}
}

type worker struct {
	cfg  WorkerConfig
	name string
	tags []string

	// mu guards the base-URL rotation: the heartbeat goroutine and the
	// shard runner's upload may switch servers concurrently when the
	// sweep is adopted mid-shard.
	mu    sync.Mutex
	bases []string
	cur   int
}

// splitBases parses the comma-separated -worker URL list.
func splitBases(urls string) []string {
	var out []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// base returns the coordinator currently being talked to.
func (w *worker) base() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bases[w.cur]
}

// rotate advances to the next known coordinator after a transport
// error — the fast failover path when the current server is simply
// gone and cannot answer a redirect.
func (w *worker) rotate() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.bases) > 1 {
		w.cur = (w.cur + 1) % len(w.bases)
	}
}

// setBase switches to url, adding it to the rotation first if it is
// new — the redirect path.
func (w *worker) setBase(url string) {
	url = strings.TrimRight(url, "/")
	if url == "" {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, b := range w.bases {
		if b == url {
			w.cur = i
			return
		}
	}
	w.bases = append(w.bases, url)
	w.cur = len(w.bases) - 1
}

// addPeer folds a hinted sibling into the rotation without switching
// to it — known-but-unused until the current server stops answering.
func (w *worker) addPeer(url string) {
	url = strings.TrimRight(url, "/")
	if url == "" {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, b := range w.bases {
		if b == url {
			return
		}
	}
	w.bases = append(w.bases, url)
}

// runShard executes one leased shard and uploads its records,
// reporting whether the shard was acked (false = abandoned: the lease
// expires and the shard re-assigns).
func (w *worker) runShard(ctx context.Context, l Lease) bool {
	cells, err := l.Spec.Expand()
	if err != nil {
		// Version skew: this worker cannot expand the coordinator's
		// spec. Abandon the lease (it expires and re-assigns) rather
		// than acking an empty shard and losing its cells.
		w.cfg.logf("shard %s/%d: cannot expand spec: %v", l.Sweep, l.Shard, err)
		return false
	}
	w.cfg.logf("leased shard %s/%d (%d cells)", l.Sweep, l.Shard, len(l.Indexes))

	// Heartbeat until the shard finishes; a stale answer cancels the
	// shard's context so the runner stops submitting cells.
	shardCtx, cancel := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	stale := false
	go func() {
		defer close(hbDone)
		interval := l.TTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-time.After(interval):
			}
			// Follow up to a few redirects immediately rather than
			// waiting out another interval: the lease TTL is already
			// ticking on the adopter's table, and a mid-shard hand-off
			// must not look like staleness — the adopter recovered this
			// very lease from the journal and is waiting to renew it.
			st, err := w.heartbeat(shardCtx, l)
			for hops := 0; err == nil && st == hbRedirect && hops < 3; hops++ {
				w.cfg.logf("heartbeat %s/%d: sweep moved, re-heartbeating %s", l.Sweep, l.Shard, w.base())
				st, err = w.heartbeat(shardCtx, l)
			}
			if err != nil || st == hbRedirect {
				// Transport trouble (post rotated the base) or a redirect
				// chase that never settled: both are transient — retry on
				// the next tick against whatever base we hold now.
				if err != nil {
					w.cfg.logf("heartbeat %s/%d: %v", l.Sweep, l.Shard, err)
				}
				continue
			}
			if st == hbStale {
				stale = true
				cancel()
				return
			}
		}
	}()

	mem := &sweep.MemStore{}
	runner := &sweep.Runner{
		Engine:      w.cfg.Engine,
		Store:       mem,
		Parallelism: w.cfg.Parallelism,
		Indexes:     l.Indexes,
	}
	final, runErr := runner.Run(shardCtx, cells)
	cancel()
	<-hbDone
	if runErr != nil {
		w.cfg.logf("shard %s/%d: %v", l.Sweep, l.Shard, runErr)
		return false
	}
	if ctx.Err() != nil {
		// Shutting down; the records die with the process.
		w.cfg.logf("shard %s/%d abandoned (shutdown)", l.Sweep, l.Shard)
		return false
	}
	if stale || final.State == sweep.StateCancelled {
		// The lease moved on before the shard finished, but the cells
		// that did finish are real work: upload them — the coordinator's
		// stale-merge path accepts and dedups them, and the re-assignee's
		// lease then excludes those cells. Unlike a routine complete
		// failure (which only costs a lease TTL — the shard re-assigns),
		// records dropped here have no second chance, so the retry
		// budget is deeper before giving up.
		if recs := mem.Records(); len(recs) > 0 {
			if err := w.complete(ctx, l, recs, abandonAttempts); err != nil {
				w.cfg.logf("shard %s/%d abandoned (stale lease); %d partial record(s) DROPPED after %d upload attempts: %v",
					l.Sweep, l.Shard, len(recs), abandonAttempts, err)
			} else {
				w.cfg.logf("shard %s/%d abandoned (stale lease), %d partial record(s) uploaded", l.Sweep, l.Shard, len(recs))
			}
		} else {
			w.cfg.logf("shard %s/%d abandoned (stale lease), nothing to upload", l.Sweep, l.Shard)
		}
		return false
	}
	if err := w.complete(ctx, l, mem.Records(), completeAttempts); err != nil {
		w.cfg.logf("complete %s/%d: %v (lease will expire and re-assign)", l.Sweep, l.Shard, err)
		return false
	}
	w.cfg.logf("completed shard %s/%d: %d done, %d failed", l.Sweep, l.Shard, final.Done, final.Failed)
	return true
}

func (w *worker) lease(ctx context.Context) (leaseResponse, error) {
	var resp leaseResponse
	err := w.post(ctx, "/coord/lease", leaseRequest{Worker: w.name, Tags: w.tags, MaxCells: w.cfg.MaxCells}, &resp)
	return resp, err
}

// hbStatus is a heartbeat's verdict: the lease is alive, the lease is
// gone, or the sweep now lives on a peer (the base URL has already
// been switched there — heartbeat again).
type hbStatus int

const (
	hbOK hbStatus = iota
	hbStale
	hbRedirect
)

func (w *worker) heartbeat(ctx context.Context, l Lease) (hbStatus, error) {
	var resp heartbeatResponse
	if err := w.post(ctx, "/coord/heartbeat", heartbeatRequest{Worker: w.name, Sweep: l.Sweep, Shard: l.Shard, Tags: w.tags, MaxCells: w.cfg.MaxCells}, &resp); err != nil {
		return hbStale, err
	}
	switch resp.Status {
	case statusOK:
		return hbOK, nil
	case statusRedirect:
		w.setBase(resp.URL)
		return hbRedirect, nil
	default:
		return hbStale, nil
	}
}

// Upload retry budgets. A routine complete failure only costs a lease
// TTL (the shard re-assigns and re-runs elsewhere), so its budget is
// modest; records on an abandoned stale shard have no re-run covering
// the cells that *did* finish cheaply, so that path retries deeper
// before letting them die.
const (
	completeAttempts = 3
	abandonAttempts  = 6
)

// complete uploads the shard's records, retrying transient transport
// errors with exponential backoff — retrying is much cheaper than
// re-simulating the shard elsewhere, and a server mid-restart is back
// within a few seconds.
func (w *worker) complete(ctx context.Context, l Lease, recs []sweep.CellRecord, attempts int) error {
	req := completeRequest{Worker: w.name, Sweep: l.Sweep, Shard: l.Shard, Records: recs}
	backoff := 250 * time.Millisecond
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			w.cfg.logf("complete %s/%d attempt %d/%d: %v (retrying in %s)", l.Sweep, l.Shard, attempt, attempts, err, backoff)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < 4*time.Second {
				backoff *= 2
			}
		}
		var resp completeResponse
		err = w.post(ctx, "/coord/complete", req, &resp)
		// A redirect is not a failure and costs none of the budget: the
		// sweep was adopted by a peer and the very same upload belongs
		// there. Chase it a bounded number of hops so two confused
		// servers pointing at each other cannot trap the worker.
		for hops := 0; err == nil && resp.Status == statusRedirect && hops < 3; hops++ {
			w.cfg.logf("complete %s/%d: sweep moved, re-uploading to %s", l.Sweep, l.Shard, resp.URL)
			w.setBase(resp.URL)
			resp = completeResponse{}
			err = w.post(ctx, "/coord/complete", req, &resp)
		}
		if err == nil && resp.Status == statusRedirect {
			err = errors.New("coord: complete kept being redirected; retrying")
		}
		if err == nil {
			return nil
		}
	}
	return err
}

func (w *worker) post(ctx context.Context, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base()+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.client().Do(req)
	if err != nil {
		// The server may simply be gone (a kill -9 answers no redirect):
		// rotate so the caller's retry — the next poll, heartbeat tick,
		// or upload attempt — knocks on the next known coordinator.
		w.rotate()
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("coord: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
