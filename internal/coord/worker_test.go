package coord

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/sweep"
)

// flakyCoordStub is a scripted coordinator: it grants one lease,
// answers every heartbeat stale (forcing the worker to abandon the
// shard), and fails the first failCompletes uploads with a 503 before
// accepting. It is the regression harness for the stale-abandonment
// upload path: a healthy-but-briefly-unavailable server must still
// receive the partial records.
type flakyCoordStub struct {
	t             *testing.T
	lease         Lease
	failCompletes int

	mu        sync.Mutex
	leased    bool
	completes int
	got       []sweep.CellRecord
}

func (s *flakyCoordStub) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /coord/lease", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.leased {
			writeJSON(w, http.StatusOK, leaseResponse{Status: statusIdle, RetryMS: 10})
			return
		}
		s.leased = true
		writeJSON(w, http.StatusOK, leaseResponse{
			Status:  statusShard,
			Sweep:   s.lease.Sweep,
			Shard:   s.lease.Shard,
			Indexes: s.lease.Indexes,
			Spec:    &s.lease.Spec,
			TTLMS:   s.lease.TTL.Milliseconds(),
		})
	})
	mux.HandleFunc("POST /coord/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, heartbeatResponse{Status: statusStale})
	})
	mux.HandleFunc("POST /coord/complete", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.completes++
		if s.completes <= s.failCompletes {
			httpError(w, http.StatusServiceUnavailable, context.DeadlineExceeded)
			return
		}
		var req completeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.t.Errorf("complete body: %v", err)
		}
		s.got = append(s.got, req.Records...)
		writeJSON(w, http.StatusOK, completeResponse{Status: statusOK, Merged: len(req.Records)})
	})
	return mux
}

// TestAbandonedShardUploadRetriesUntilServerRecovers is the
// regression test for the stale-lease abandonment path: RunWorker used
// to log and drop the partial upload after quick retries even when the
// server was healthy again moments later. The worker's shard goes
// stale mid-run (every heartbeat answers stale), the first two uploads
// 503, and the records must still land on the third attempt.
func TestAbandonedShardUploadRetriesUntilServerRecovers(t *testing.T) {
	spec := sweep.Spec{
		Name: "retry",
		Axes: sweep.Axes{Schedulers: []string{"GTO"}, Benchmarks: []string{"SYRK", "ATAX"}},
	}
	if _, err := spec.Expand(); err != nil {
		t.Fatal(err)
	}

	// SYRK returns instantly; ATAX holds the shard in flight long
	// enough for a heartbeat (every TTL/3 = 10ms) to come back stale
	// and mark the shard abandoned, then releases — so the upload
	// always travels the abandonment path, with both cells finished.
	gate := make(chan struct{})
	var gateOnce sync.Once
	engine := service.NewEngine(service.Config{
		Workers: 2,
		Run: func(s service.Spec) ([]byte, error) {
			if s.Bench == "ATAX" {
				gateOnce.Do(func() {
					go func() {
						time.Sleep(150 * time.Millisecond)
						close(gate)
					}()
				})
				<-gate
			}
			return json.Marshal(harness.CellResult{Bench: s.Bench, Sched: s.Sched, IPC: 2})
		},
	})

	// failCompletes exceeds the routine completeAttempts budget on
	// purpose: only the deeper abandonAttempts budget of the stale
	// path can get the records through, so a regression to the old
	// quick-drop behaviour fails loudly here.
	stub := &flakyCoordStub{
		t:             t,
		lease:         Lease{Sweep: "run-1", Shard: 0, Indexes: []int{0, 1}, Spec: spec, TTL: 30 * time.Millisecond},
		failCompletes: completeAttempts + 1,
	}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := RunWorker(ctx, WorkerConfig{
		URL:      srv.URL,
		Name:     "w1",
		Engine:   engine,
		Poll:     10 * time.Millisecond,
		IdleExit: 200 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("RunWorker = %v", err)
	}

	stub.mu.Lock()
	defer stub.mu.Unlock()
	if stub.completes < completeAttempts+2 {
		t.Fatalf("server saw %d complete attempts, want >= %d (more 503s than the routine budget, then success)",
			stub.completes, completeAttempts+2)
	}
	keys := map[string]bool{}
	for _, rec := range stub.got {
		keys[rec.Key] = true
	}
	if len(keys) != 2 {
		t.Fatalf("server received %d distinct cells, want both despite the abandonment (%d records)", len(keys), len(stub.got))
	}
}

// TestCompleteRetryBackoffGivesUpEventually: the retry budget is a
// budget — a server that never recovers ends in the original error,
// after exactly the configured number of attempts.
func TestCompleteRetryBackoffGivesUpEventually(t *testing.T) {
	var calls int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, context.DeadlineExceeded)
	}))
	defer srv.Close()

	w := &worker{cfg: WorkerConfig{Logf: t.Logf}, name: "w1", bases: []string{srv.URL}}
	err := w.complete(context.Background(), Lease{Sweep: "s", Shard: 0}, nil, 3)
	if err == nil {
		t.Fatal("complete against a dead server returned nil")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 3 {
		t.Fatalf("server saw %d attempts, want exactly 3", calls)
	}
}

// TestCompleteRetryHonorsContext: cancellation mid-backoff returns
// promptly instead of sleeping out the remaining budget.
func TestCompleteRetryHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusServiceUnavailable, context.DeadlineExceeded)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	w := &worker{cfg: WorkerConfig{}, name: "w1", bases: []string{srv.URL}}
	start := time.Now()
	err := w.complete(ctx, Lease{Sweep: "s", Shard: 0}, nil, abandonAttempts)
	if err == nil {
		t.Fatal("cancelled complete returned nil")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled complete took %s, want prompt return", elapsed)
	}
}
