package core

import "repro/internal/sm"

// AdaptiveCIAO implements the extension the paper defers to future
// work (§V-E: "An adaptive scheme can be future work"): instead of a
// fixed high-cutoff epoch, the epoch length adapts to how fast the
// interference picture changes. When consecutive high epochs disagree
// strongly on which warps are severely interfered, the epoch shrinks
// (faster response); when the picture is stable, it grows (more
// accurate attribution, less overhead) — the exact trade-off §V-E
// describes for short vs long epochs.
type AdaptiveCIAO struct {
	*CIAO

	// MinEpoch and MaxEpoch bound the adaptation range.
	MinEpoch, MaxEpoch uint64
	// prevHot is the previous epoch's severely-interfered warp set.
	prevHot []bool
	curHot  []bool
	// Adaptations counts epoch-length changes, for tests.
	Adaptations uint64
}

// NewAdaptive wraps a CIAO controller of the given mode with epoch
// adaptation in [1000, 50000] instructions — the Figure 11a sweep
// range.
func NewAdaptive(mode Mode) *AdaptiveCIAO {
	return &AdaptiveCIAO{
		CIAO:     New(mode, DefaultParams()),
		MinEpoch: 1000,
		MaxEpoch: 50000,
	}
}

// Name implements sm.Controller.
func (a *AdaptiveCIAO) Name() string { return a.CIAO.Name() + "-adaptive" }

// Attach implements sm.Controller.
func (a *AdaptiveCIAO) Attach(g *sm.GPU) {
	a.CIAO.Attach(g)
	a.prevHot = make([]bool, g.NumWarps())
	a.curHot = make([]bool, g.NumWarps())
}

// OnCycle runs the base epoch machinery and, at each high epoch
// boundary, compares the hot set against the previous epoch's to
// resize the epoch.
func (a *AdaptiveCIAO) OnCycle(g *sm.GPU, now uint64) {
	before := a.lastHigh
	a.CIAO.OnCycle(g, now)
	if a.lastHigh == before {
		return // no high-epoch boundary crossed
	}
	// A high epoch just ran: rebuild the hot set from its IRS vector.
	changed, hot := 0, 0
	for i := range a.curHot {
		h := a.highIRS[i] > a.params.HighCutoff
		a.curHot[i] = h
		if h {
			hot++
		}
		if h != a.prevHot[i] {
			changed++
		}
	}
	copy(a.prevHot, a.curHot)

	// Volatile picture → halve the epoch; stable → double it.
	switch {
	case changed > hot/2 && changed > 2:
		if e := a.params.HighEpoch / 2; e >= a.MinEpoch {
			a.params.HighEpoch = e
			a.Adaptations++
		}
	case changed == 0:
		if e := a.params.HighEpoch * 2; e <= a.MaxEpoch {
			a.params.HighEpoch = e
			a.Adaptations++
		}
	}
}

// HighEpoch exposes the current adapted epoch, for tests.
func (a *AdaptiveCIAO) HighEpoch() uint64 { return a.params.HighEpoch }
