package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sm"
	"repro/internal/workload"
)

func TestAdaptiveName(t *testing.T) {
	a := core.NewAdaptive(core.ModeC)
	if a.Name() != "CIAO-C-adaptive" {
		t.Fatalf("name = %s", a.Name())
	}
}

func TestAdaptiveEpochStaysInBounds(t *testing.T) {
	a := core.NewAdaptive(core.ModeC)
	cfg := sm.DefaultConfig()
	cfg.EnableSharedCache = true
	g := sm.MustGPU(cfg, workload.MustKernel(thrashSpec()), a, nil)
	g.Run()
	if e := a.HighEpoch(); e < a.MinEpoch || e > a.MaxEpoch {
		t.Fatalf("adapted epoch %d outside [%d,%d]", e, a.MinEpoch, a.MaxEpoch)
	}
}

func TestAdaptiveAdaptsUnderPhaseChange(t *testing.T) {
	// ATAX-style phase change flips the hot set; the adaptive variant
	// should register at least one epoch adjustment.
	spec := thrashSpec()
	spec.Phases = []workload.Phase{
		{Frac: 0.5, APKI: 150, WindowLines: 12, Reuse: 4, WindowPct: 50, IrregularPct: 20, Fanout: 4, HeavyScale: 8},
		{Frac: 0.5, APKI: 5, WindowLines: 4, Reuse: 8, WindowPct: 60, IrregularPct: 2, Fanout: 1, HeavyScale: 2},
	}
	a := core.NewAdaptive(core.ModeC)
	cfg := sm.DefaultConfig()
	cfg.EnableSharedCache = true
	g := sm.MustGPU(cfg, workload.MustKernel(spec), a, nil)
	r := g.Run()
	if r.FinishedWarps != spec.NumWarps {
		t.Fatal("adaptive run did not finish")
	}
	if a.Adaptations == 0 {
		t.Fatal("no epoch adaptations under a phase-changing workload")
	}
}

func TestAdaptiveCompletesAndIntervenes(t *testing.T) {
	a := core.NewAdaptive(core.ModeC)
	cfg := sm.DefaultConfig()
	cfg.EnableSharedCache = true
	g := sm.MustGPU(cfg, workload.MustKernel(thrashSpec()), a, nil)
	r := g.Run()
	if r.FinishedWarps != 24 {
		t.Fatal("did not finish")
	}
	if a.Redirections == 0 {
		t.Fatal("adaptive variant never intervened")
	}
}
