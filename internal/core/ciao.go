package core

import (
	"repro/internal/sm"
)

// Mode selects which CIAO mechanisms are enabled (§V-A).
type Mode uint8

// CIAO variants.
const (
	// ModeP: on-chip memory architecture only — interfering warps'
	// requests are redirected to unused shared memory; nobody stalls.
	ModeP Mode = iota
	// ModeT: selective throttling only — interfering warps are
	// stalled; no redirection.
	ModeT
	// ModeC: the full Algorithm 1 — redirect first, stall when the
	// redirected warp still interferes (at shared memory).
	ModeC
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeP:
		return "CIAO-P"
	case ModeT:
		return "CIAO-T"
	default:
		return "CIAO-C"
	}
}

// Params carries the CIAO tuning knobs with the paper's chosen values
// as defaults (§IV-A).
type Params struct {
	// HighCutoff is the IRS threshold above which a warp is considered
	// severely interfered (paper: 0.01, i.e. 1%).
	HighCutoff float64
	// LowCutoff is the IRS threshold below which stalled/isolated
	// warps are released (paper: 0.005 — half of HighCutoff).
	LowCutoff float64
	// HighEpoch is the high-cutoff check period in instructions
	// (paper: 5000).
	HighEpoch uint64
	// LowEpoch is the low-cutoff check period in instructions
	// (paper: 100).
	LowEpoch uint64
	// MinActive floors the number of active warps so throttling can
	// never wedge the SM.
	MinActive int
	// SharedStallFactor scales HighCutoff for the CIAO-C stall
	// decision: an already-isolated interferer is stalled only when
	// the interfered warp's IRS exceeds SharedStallFactor×HighCutoff —
	// the "intensity of interference at the shared memory exceeds a
	// threshold" test of §III-C. CIAO-T ignores it (its stalls are the
	// first-line response).
	SharedStallFactor float64
}

// DefaultParams returns the published tuning.
func DefaultParams() Params {
	return Params{
		HighCutoff:        0.01,
		LowCutoff:         0.005,
		HighEpoch:         5000,
		LowEpoch:          100,
		MinActive:         2,
		SharedStallFactor: 4,
	}
}

// CIAO is the cache interference-aware controller. One instance drives
// one GPU for one run.
type CIAO struct {
	sm.Base
	sm.GreedyThenOldest

	mode   Mode
	params Params

	ilist *InterferenceList
	pairs *PairList
	// stalled is the LIFO of stalled warps: reactivation happens in
	// reverse stall order (§III-C).
	stalled []int

	lastHigh uint64 // instruction count at last high-cutoff check
	lastLow  uint64

	// Windowed IRS state: per-warp VTA-hit snapshots taken at the two
	// epoch boundaries, so each epoch's decision reflects the *latest*
	// interference intensity rather than the whole-kernel average
	// ("CIAO should track the latest IRSi", §IV-A). The release-side
	// score is an EWMA: single 100-instruction windows are too sparse
	// to witness a hit, and releasing on one empty window would undo
	// every intervention immediately.
	highSnapHits []uint64
	highSnapInst uint64
	highIRS      []float64
	lowSnapHits  []uint64
	lowSnapInst  uint64
	lowIRS       []float64

	// Event counters for tests and reports.
	Redirections   uint64
	Stalls         uint64
	Reactivations  uint64
	Unredirections uint64
}

// New builds a CIAO controller in the given mode with params.
func New(mode Mode, params Params) *CIAO {
	return &CIAO{mode: mode, params: params}
}

// NewP returns CIAO-P with default parameters.
func NewP() *CIAO { return New(ModeP, DefaultParams()) }

// NewT returns CIAO-T with default parameters.
func NewT() *CIAO { return New(ModeT, DefaultParams()) }

// NewC returns CIAO-C with default parameters.
func NewC() *CIAO { return New(ModeC, DefaultParams()) }

// Name implements sm.Controller.
func (c *CIAO) Name() string { return c.mode.String() }

// Mode returns the variant.
func (c *CIAO) Mode() Mode { return c.mode }

// Params returns the tuning.
func (c *CIAO) Params() Params { return c.params }

// Attach implements sm.Controller.
func (c *CIAO) Attach(g *sm.GPU) {
	n := g.NumWarps()
	c.ilist = NewInterferenceList(n)
	c.pairs = NewPairList(n)
	c.stalled = c.stalled[:0]
	c.lastHigh, c.lastLow = 0, 0
	c.highSnapHits = make([]uint64, n)
	c.highIRS = make([]float64, n)
	c.lowSnapHits = make([]uint64, n)
	c.lowIRS = make([]float64, n)
	c.highSnapInst, c.lowSnapInst = 0, 0
}

// ewmaAlpha blends the newest window into the release-side IRS.
const ewmaAlpha = 0.25

// updateIRS recomputes the windowed IRS vector from the delta of VTA
// hits and instructions since the previous snapshot (Eq. 1 applied to
// the epoch window). With ewma=true the new window is blended into the
// existing score instead of replacing it.
func updateIRS(g *sm.GPU, snapHits []uint64, snapInst *uint64, irs []float64, ewma bool) {
	dInst := g.InstTotal() - *snapInst
	if dInst == 0 {
		dInst = 1
	}
	active := g.ActiveWarps()
	if active == 0 {
		active = 1
	}
	for i := range irs {
		hits := g.Warp(i).VTAHits
		d := hits - snapHits[i]
		window := float64(d) * float64(active) / float64(dInst)
		if ewma {
			irs[i] = (1-ewmaAlpha)*irs[i] + ewmaAlpha*window
		} else {
			irs[i] = window
		}
		snapHits[i] = hits
	}
	*snapInst = g.InstTotal()
}

// InterferenceListRef exposes the detector state for inspection.
func (c *CIAO) InterferenceListRef() *InterferenceList { return c.ilist }

// PairListRef exposes the pair list for inspection.
func (c *CIAO) PairListRef() *PairList { return c.pairs }

// OnVTAHit feeds the interference list: the VTA names the evictor
// (interferer) whose fill displaced data the interfered warp
// re-referenced. L1D and shared-memory interference share one
// detector (§III-C).
func (c *CIAO) OnVTAHit(g *sm.GPU, now uint64, interfered, interferer int, atShared bool) {
	c.ilist.Observe(interfered, interferer)
}

// MemPath redirects isolated warps to the shared-memory cache.
func (c *CIAO) MemPath(g *sm.GPU, wid int) sm.MemPath {
	if g.Warp(wid).I {
		return sm.PathSharedCache
	}
	return sm.PathL1
}

// Pick implements sm.Controller.
func (c *CIAO) Pick(g *sm.GPU, now uint64) int {
	return c.PickGTO(g, now, sm.EligibleOrBarrierBoosted(g))
}

// OnCycle runs the epoch machinery. Epochs are measured in executed
// instructions (§IV-A): every LowEpoch instructions stalled/isolated
// warps are re-examined for release; every HighEpoch instructions
// active warps are examined for intervention.
func (c *CIAO) OnCycle(g *sm.GPU, now uint64) {
	inst := g.InstTotal()
	if inst >= c.lastLow+c.params.LowEpoch {
		c.lastLow = inst
		updateIRS(g, c.lowSnapHits, &c.lowSnapInst, c.lowIRS, true)
		c.lowEpoch(g)
	}
	if inst >= c.lastHigh+c.params.HighEpoch {
		c.lastHigh = inst
		updateIRS(g, c.highSnapHits, &c.highSnapInst, c.highIRS, false)
		c.highEpoch(g)
	}
}

// lowEpoch implements Algorithm 1 lines 4–19: release decisions.
// Stalled warps are reactivated in reverse stall order once the warp
// that triggered the stall calms down (IRS ≤ low-cutoff) or finishes;
// isolated warps are routed back to L1D under the same condition.
func (c *CIAO) lowEpoch(g *sm.GPU) {
	// Reactivation: examine the most recently stalled warp only
	// (reverse order, one per epoch — §III-C).
	if n := len(c.stalled); n > 0 {
		wid := c.stalled[n-1]
		w := g.Warp(wid)
		if w.Finished {
			c.stalled = c.stalled[:n-1]
			c.pairs.ClearStaller(wid)
		} else {
			k := c.pairs.Staller(wid)
			if k < 0 || g.Warp(k).Finished || c.lowIRS[k] <= c.params.LowCutoff {
				w.V = true
				c.pairs.ClearStaller(wid)
				c.stalled = c.stalled[:n-1]
				c.Reactivations++
			}
		}
	}
	// Un-redirection: return isolated warps to L1D when their trigger
	// warp calmed down or finished.
	for wid := 0; wid < g.NumWarps(); wid++ {
		w := g.Warp(wid)
		if !w.I || w.Finished {
			continue
		}
		k := c.pairs.Redirector(wid)
		if k < 0 || g.Warp(k).Finished || c.lowIRS[k] <= c.params.LowCutoff {
			w.I = false
			c.pairs.ClearRedirector(wid)
			c.Unredirections++
		}
	}
}

// highEpoch implements Algorithm 1 lines 20–29: intervention. For each
// active warp i whose IRS exceeds high-cutoff, the dominant interferer
// j is either redirected to shared memory (first offence, modes P/C),
// or stalled (mode T, or modes C when j is already redirected and
// still interferes).
func (c *CIAO) highEpoch(g *sm.GPU) {
	for i := 0; i < g.NumWarps(); i++ {
		wi := g.Warp(i)
		if wi.Finished || !wi.V {
			continue
		}
		if c.highIRS[i] <= c.params.HighCutoff {
			continue
		}
		j := c.ilist.Top(i)
		if j < 0 || j == i || g.Warp(j).Finished {
			continue
		}
		c.intervene(g, i, j)
	}
}

// intervene applies the mode-specific action against interferer j on
// behalf of interfered warp i.
func (c *CIAO) intervene(g *sm.GPU, i, j int) {
	// Seed the release-side score with the interference level that
	// triggered the intervention, so the release test has hysteresis.
	if c.highIRS[i] > c.lowIRS[i] {
		c.lowIRS[i] = c.highIRS[i]
	}
	wj := g.Warp(j)
	switch c.mode {
	case ModeP:
		if !wj.I && g.SharedCache() != nil {
			wj.I = true
			c.pairs.SetRedirector(j, i)
			c.Redirections++
		}
	case ModeT:
		c.stall(g, i, j)
	case ModeC:
		if !wj.I && g.SharedCache() != nil {
			wj.I = true
			c.pairs.SetRedirector(j, i)
			c.Redirections++
		} else if wj.V {
			// Stall an already-isolated interferer only when the
			// interference pressure is well above the redirect
			// threshold (§III-C: shared memory itself is thrashing).
			factor := c.params.SharedStallFactor
			if factor < 1 {
				factor = 1
			}
			if c.highIRS[i] > factor*c.params.HighCutoff {
				c.stall(g, i, j)
			}
		}
	}
}

// stall clears j's V flag on behalf of i, respecting the MinActive
// floor.
func (c *CIAO) stall(g *sm.GPU, i, j int) {
	wj := g.Warp(j)
	if !wj.V {
		return
	}
	if g.ActiveWarps() <= c.params.MinActive {
		return
	}
	wj.V = false
	c.pairs.SetStaller(j, i)
	c.stalled = append(c.stalled, j)
	c.Stalls++
}

// StalledCount reports how many warps are currently on the stall
// stack, for tests.
func (c *CIAO) StalledCount() int { return len(c.stalled) }
