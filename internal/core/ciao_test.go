package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sm"
	"repro/internal/workload"
)

// thrashSpec produces sustained L1D interference quickly.
func thrashSpec() workload.Spec {
	return workload.Spec{
		Name:          "thrash",
		Class:         workload.SWS,
		APKI:          110,
		InputBytes:    4 << 20,
		NwrpBest:      4,
		NumWarps:      24,
		WarpsPerCTA:   8,
		InstrPerWarp:  3500,
		RegionSharing: 1,
		HeavyEvery:    5,
		StorePct:      5,
		Seed:          1234,
	}
}

func buildGPU(t *testing.T, ctrl sm.Controller, shared bool) *sm.GPU {
	t.Helper()
	cfg := sm.DefaultConfig()
	cfg.EnableSharedCache = shared
	return sm.MustGPU(cfg, workload.MustKernel(thrashSpec()), ctrl, nil)
}

func TestModeStrings(t *testing.T) {
	if core.ModeP.String() != "CIAO-P" || core.ModeT.String() != "CIAO-T" || core.ModeC.String() != "CIAO-C" {
		t.Fatal("mode strings wrong")
	}
	if core.NewP().Name() != "CIAO-P" || core.NewT().Name() != "CIAO-T" || core.NewC().Name() != "CIAO-C" {
		t.Fatal("constructor names wrong")
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := core.DefaultParams()
	if p.HighCutoff != 0.01 || p.LowCutoff != 0.005 {
		t.Errorf("cutoffs = %f/%f, want 0.01/0.005 (§IV-A)", p.HighCutoff, p.LowCutoff)
	}
	if p.HighEpoch != 5000 || p.LowEpoch != 100 {
		t.Errorf("epochs = %d/%d, want 5000/100 (§IV-A)", p.HighEpoch, p.LowEpoch)
	}
}

func TestCIAOPOnlyRedirects(t *testing.T) {
	ctrl := core.NewP()
	g := buildGPU(t, ctrl, true)
	r := g.Run()
	if r.FinishedWarps != 24 {
		t.Fatal("CIAO-P did not finish")
	}
	if ctrl.Redirections == 0 {
		t.Fatal("CIAO-P never redirected")
	}
	if ctrl.Stalls != 0 {
		t.Fatalf("CIAO-P stalled %d warps; mode P must never stall", ctrl.Stalls)
	}
}

func TestCIAOTOnlyStalls(t *testing.T) {
	ctrl := core.NewT()
	g := buildGPU(t, ctrl, false)
	r := g.Run()
	if r.FinishedWarps != 24 {
		t.Fatal("CIAO-T did not finish")
	}
	if ctrl.Stalls == 0 {
		t.Fatal("CIAO-T never stalled")
	}
	if ctrl.Redirections != 0 {
		t.Fatalf("CIAO-T redirected %d warps; mode T must never redirect", ctrl.Redirections)
	}
}

func TestCIAOCRedirectsBeforeStalling(t *testing.T) {
	ctrl := core.NewC()
	g := buildGPU(t, ctrl, true)
	r := g.Run()
	if r.FinishedWarps != 24 {
		t.Fatal("CIAO-C did not finish")
	}
	if ctrl.Redirections == 0 {
		t.Fatal("CIAO-C never redirected")
	}
	// Algorithm 1: redirection is the first-line response; stalls only
	// apply to already-redirected warps, so they cannot outnumber
	// redirections in mode C.
	if ctrl.Stalls > ctrl.Redirections {
		t.Fatalf("stalls (%d) exceed redirections (%d) in mode C", ctrl.Stalls, ctrl.Redirections)
	}
}

func TestMemPathFollowsIsolationFlag(t *testing.T) {
	ctrl := core.NewC()
	g := buildGPU(t, ctrl, true)
	if ctrl.MemPath(g, 0) != sm.PathL1 {
		t.Fatal("fresh warp should use L1")
	}
	g.Warp(0).I = true
	if ctrl.MemPath(g, 0) != sm.PathSharedCache {
		t.Fatal("isolated warp should use the shared cache")
	}
}

func TestPairListRecordsTriggers(t *testing.T) {
	ctrl := core.NewC()
	g := buildGPU(t, ctrl, true)
	for i := 0; i < 200000 && !g.Done() && ctrl.Redirections == 0; i++ {
		g.Step()
	}
	if ctrl.Redirections == 0 {
		t.Skip("no redirection occurred in window")
	}
	// Some isolated warp must have its redirector recorded.
	found := false
	for w := 0; w < g.NumWarps(); w++ {
		if g.Warp(w).I && ctrl.PairListRef().Redirector(w) >= 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no isolated warp has a pair-list redirector")
	}
}

func TestReactivationReverseOrder(t *testing.T) {
	ctrl := core.NewT()
	g := buildGPU(t, ctrl, false)
	g.Run()
	// Total stalls equal reactivations plus warps still stalled or
	// finished while stalled — conservation of the stall stack.
	if ctrl.Reactivations > ctrl.Stalls {
		t.Fatalf("reactivations (%d) exceed stalls (%d)", ctrl.Reactivations, ctrl.Stalls)
	}
}

func TestMinActiveFloor(t *testing.T) {
	p := core.DefaultParams()
	p.MinActive = 6
	// Extremely aggressive thresholds so CIAO-T tries to stall hard.
	p.HighCutoff = 0.000001
	p.LowCutoff = 0.0000005
	ctrl := core.New(core.ModeT, p)
	g := buildGPU(t, ctrl, false)
	for i := 0; i < 100000 && !g.Done(); i++ {
		g.Step()
		if g.ActiveWarps() < p.MinActive && g.LiveWarps() >= p.MinActive {
			t.Fatalf("active warps %d fell below floor %d", g.ActiveWarps(), p.MinActive)
		}
	}
}

func TestCIAOWithoutSharedCacheNeverIsolates(t *testing.T) {
	ctrl := core.NewP()
	g := buildGPU(t, ctrl, false) // no shared cache
	g.Run()
	if ctrl.Redirections != 0 {
		t.Fatal("redirections recorded without a shared cache")
	}
	for w := 0; w < g.NumWarps(); w++ {
		if g.Warp(w).I {
			t.Fatal("isolation flag set without a shared cache")
		}
	}
}

func TestSharedStallFactorGatesModeC(t *testing.T) {
	strict := core.DefaultParams()
	strict.SharedStallFactor = 1000 // effectively never stall
	ctrl := core.New(core.ModeC, strict)
	g := buildGPU(t, ctrl, true)
	g.Run()
	if ctrl.Stalls != 0 {
		t.Fatalf("stalls = %d despite prohibitive SharedStallFactor", ctrl.Stalls)
	}
}

func TestCIAOImprovesOverUncontrolledBaseline(t *testing.T) {
	// Sanity: on a thrashing workload, CIAO-C must not be slower than
	// a controller that never intervenes (GTO order is shared, so any
	// difference comes from CIAO's mechanisms).
	base := buildGPU(t, &passthrough{}, false).Run()
	ciao := buildGPU(t, core.NewC(), true).Run()
	if ciao.IPC < 0.9*base.IPC {
		t.Fatalf("CIAO-C IPC %f well below baseline %f", ciao.IPC, base.IPC)
	}
}

// passthrough is a minimal GTO-ordered controller without any CIAO
// machinery, used as the neutral baseline.
type passthrough struct {
	sm.Base
	sm.GreedyThenOldest
}

func (p *passthrough) Name() string { return "passthrough" }

func (p *passthrough) Pick(g *sm.GPU, now uint64) int {
	return p.PickGTO(g, now, func(*sm.Warp) bool { return true })
}
