// Package core implements the CIAO contribution: the cache
// interference detector (§III-A, §IV-A) and the three CIAO scheduling
// controllers — CIAO-P (redirect interfering warps' memory requests to
// unused shared memory), CIAO-T (selectively throttle interfering
// warps) and CIAO-C (the synergistic combination, Algorithm 1).
package core

// InterferenceEntry is one interference-list record: the most recently
// and frequently interfering warp for the indexed warp, guarded by a
// 2-bit saturating counter (§III-A, Figure 4c).
type InterferenceEntry struct {
	// WID is the tracked interfering warp; -1 when empty.
	WID int
	// Counter is the 2-bit saturating confidence (0..3).
	Counter uint8
}

// InterferenceList tracks, per warp, its dominant interferer. The
// paper's observation (Figure 4a/4b): interference is highly skewed,
// so tracking only the top interferer with a small confidence counter
// captures most of it at O(n) cost instead of O(n²).
type InterferenceList struct {
	entries []InterferenceEntry
}

// NewInterferenceList builds a list for n warps.
func NewInterferenceList(n int) *InterferenceList {
	l := &InterferenceList{entries: make([]InterferenceEntry, n)}
	for i := range l.entries {
		l.entries[i].WID = -1
	}
	return l
}

// Observe records that interferer evicted data re-referenced by
// interfered (one VTA hit), following the Figure 4c protocol:
// same warp → increment (saturating at 3); different warp → decrement,
// replacing the tracked WID only when the counter reaches 0.
func (l *InterferenceList) Observe(interfered, interferer int) {
	if interfered < 0 || interfered >= len(l.entries) || interfered == interferer {
		return
	}
	e := &l.entries[interfered]
	switch {
	case e.WID == -1:
		e.WID, e.Counter = interferer, 0
	case e.WID == interferer:
		if e.Counter < 3 {
			e.Counter++
		}
	default:
		if e.Counter == 0 {
			e.WID = interferer
		} else {
			e.Counter--
		}
	}
}

// Top returns the dominant interferer for the warp, or -1.
func (l *InterferenceList) Top(interfered int) int {
	if interfered < 0 || interfered >= len(l.entries) {
		return -1
	}
	return l.entries[interfered].WID
}

// Entry returns the raw record, for inspection.
func (l *InterferenceList) Entry(i int) InterferenceEntry { return l.entries[i] }

// Len returns the tracked warp count.
func (l *InterferenceList) Len() int { return len(l.entries) }

// Reset clears all entries.
func (l *InterferenceList) Reset() {
	for i := range l.entries {
		l.entries[i] = InterferenceEntry{WID: -1}
	}
}

// PairList records, per warp, which interfered warp triggered the
// warp's redirection (field 0) and which triggered its stall
// (field 1) — the two-field pair list of §IV-A. -1 means empty.
type PairList struct {
	pairs [][2]int
}

// NewPairList builds a pair list for n warps.
func NewPairList(n int) *PairList {
	p := &PairList{pairs: make([][2]int, n)}
	for i := range p.pairs {
		p.pairs[i] = [2]int{-1, -1}
	}
	return p
}

// Redirector returns the warp whose interference triggered wid's
// redirection, or -1.
func (p *PairList) Redirector(wid int) int { return p.pairs[wid][0] }

// Staller returns the warp whose interference triggered wid's stall,
// or -1.
func (p *PairList) Staller(wid int) int { return p.pairs[wid][1] }

// SetRedirector records the redirect trigger.
func (p *PairList) SetRedirector(wid, trigger int) { p.pairs[wid][0] = trigger }

// SetStaller records the stall trigger.
func (p *PairList) SetStaller(wid, trigger int) { p.pairs[wid][1] = trigger }

// ClearRedirector empties field 0.
func (p *PairList) ClearRedirector(wid int) { p.pairs[wid][0] = -1 }

// ClearStaller empties field 1.
func (p *PairList) ClearStaller(wid int) { p.pairs[wid][1] = -1 }

// Len returns the tracked warp count.
func (p *PairList) Len() int { return len(p.pairs) }
