package core

import (
	"testing"
	"testing/quick"
)

func TestInterferenceListFirstObservation(t *testing.T) {
	l := NewInterferenceList(8)
	if l.Top(3) != -1 {
		t.Fatal("empty entry should report -1")
	}
	l.Observe(3, 5)
	if l.Top(3) != 5 {
		t.Fatalf("top = %d, want 5", l.Top(3))
	}
	if e := l.Entry(3); e.Counter != 0 {
		t.Fatalf("fresh counter = %d, want 0", e.Counter)
	}
}

func TestInterferenceListSaturation(t *testing.T) {
	l := NewInterferenceList(8)
	for i := 0; i < 10; i++ {
		l.Observe(3, 5)
	}
	if e := l.Entry(3); e.Counter != 3 {
		t.Fatalf("counter = %d, want saturation at 3", e.Counter)
	}
}

// TestInterferenceListReplacementProtocol walks the exact Figure 4c
// scenario: W32 saturates W34's counter; W42 interferes, decrementing;
// W32 returns, incrementing; the tracked WID is replaced only when the
// counter has been decremented to zero.
func TestInterferenceListReplacementProtocol(t *testing.T) {
	l := NewInterferenceList(64)
	// W32 interferes with W34 until saturation (step 1).
	for i := 0; i < 4; i++ {
		l.Observe(34, 32)
	}
	// Step 2: W42 interferes — counter decrements, WID kept.
	l.Observe(34, 42)
	if l.Top(34) != 32 {
		t.Fatal("single foreign observation must not replace a confident entry")
	}
	if e := l.Entry(34); e.Counter != 2 {
		t.Fatalf("counter = %d, want 2 after one decrement", e.Counter)
	}
	// Step 3: W32 again — increments back.
	l.Observe(34, 32)
	if e := l.Entry(34); e.Counter != 3 {
		t.Fatalf("counter = %d, want 3", e.Counter)
	}
	// Now W42 interferes four times: 3→2→1→0, then replacement.
	for i := 0; i < 4; i++ {
		l.Observe(34, 42)
	}
	if l.Top(34) != 42 {
		t.Fatalf("top = %d, want replacement by 42", l.Top(34))
	}
}

func TestInterferenceListIgnoresSelfAndOutOfRange(t *testing.T) {
	l := NewInterferenceList(4)
	l.Observe(2, 2) // self-interference is not tracked
	if l.Top(2) != -1 {
		t.Fatal("self-observation recorded")
	}
	l.Observe(-1, 0)
	l.Observe(7, 0)
	if l.Top(-1) != -1 || l.Top(7) != -1 {
		t.Fatal("out-of-range handling wrong")
	}
}

func TestInterferenceListReset(t *testing.T) {
	l := NewInterferenceList(4)
	l.Observe(1, 2)
	l.Reset()
	if l.Top(1) != -1 {
		t.Fatal("reset did not clear")
	}
}

// Property: counter stays in [0,3] and WID only changes on a zero
// counter (or first fill).
func TestInterferenceListCounterInvariant(t *testing.T) {
	f := func(events []uint8) bool {
		l := NewInterferenceList(8)
		prev := l.Entry(0)
		for _, e := range events {
			l.Observe(0, int(e%7)+1)
			cur := l.Entry(0)
			if cur.Counter > 3 {
				return false
			}
			if prev.WID != -1 && cur.WID != prev.WID && prev.Counter != 0 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairList(t *testing.T) {
	p := NewPairList(4)
	if p.Redirector(2) != -1 || p.Staller(2) != -1 {
		t.Fatal("fresh pair list not empty")
	}
	p.SetRedirector(2, 0)
	p.SetStaller(2, 3)
	if p.Redirector(2) != 0 || p.Staller(2) != 3 {
		t.Fatal("set/get mismatch")
	}
	p.ClearRedirector(2)
	if p.Redirector(2) != -1 || p.Staller(2) != 3 {
		t.Fatal("clear redirector touched staller")
	}
	p.ClearStaller(2)
	if p.Staller(2) != -1 {
		t.Fatal("clear staller failed")
	}
	if p.Len() != 4 {
		t.Fatal("len wrong")
	}
}
