// Package dram models the GDDR5 main memory of Table I: 16 banks with
// tCL=12, tRCD=12, tRAS=28, open-row policy and a shared data bus whose
// throughput can be doubled for the Figure 12b experiments
// (statPCAL-2X / CIAO-C-2X, 177 GB/s → 340 GB/s).
//
// The model is a latency oracle: Service(now, addr) returns the cycle
// at which the 128-byte line transfer completes, advancing per-bank
// row-buffer state and the bus cursor. This keeps the SM pipeline
// simple while preserving the contention behaviour that matters to the
// paper's experiments (DRAM latency ≫ L1D latency, bounded bandwidth).
package dram

import (
	"fmt"

	"repro/internal/memory"
)

// Config carries the Table I GDDR5 timing parameters.
type Config struct {
	// Banks is the number of DRAM banks.
	Banks int
	// TCL is the CAS latency in memory cycles.
	TCL int
	// TRCD is the RAS-to-CAS delay.
	TRCD int
	// TRAS is the row-active time (min cycles between ACT and PRE).
	TRAS int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// TransferCycles is the bus occupancy of one 128-byte line at 1×
	// bandwidth. The default models one SM's share of the GPU's
	// aggregate GDDR5 bandwidth: 177 GB/s at ~700 MHz core clock is
	// about two 128B lines per cycle for the whole chip, so each of
	// the 15 SMs sustains roughly one line every 8 cycles.
	TransferCycles int
	// BandwidthMultiplier scales the bus throughput (2 for the -2X
	// configurations of Figure 12b). Values < 1 are treated as 1.
	BandwidthMultiplier int
}

// DefaultConfig returns the Table I GDDR5 configuration.
func DefaultConfig() Config {
	return Config{
		Banks:               16,
		TCL:                 12,
		TRCD:                12,
		TRAS:                28,
		RowBytes:            2 << 10,
		TransferCycles:      6,
		BandwidthMultiplier: 1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.TCL < 0 || c.TRCD < 0 || c.TRAS < 0 {
		return fmt.Errorf("dram: invalid timing %+v", c)
	}
	if c.RowBytes <= 0 || c.TransferCycles <= 0 {
		return fmt.Errorf("dram: invalid geometry %+v", c)
	}
	return nil
}

// Stats aggregates DRAM activity.
type Stats struct {
	Reads      uint64
	Writes     uint64
	RowHits    uint64
	RowMisses  uint64
	BusBusy    uint64 // total bus cycles consumed
	LastFinish uint64 // completion cycle of the latest transfer
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

type bank struct {
	openRow   int64 // -1 = closed
	readyAt   uint64
	activated uint64 // cycle of last ACT, for tRAS accounting
}

// DRAM is the memory device. Not safe for concurrent use; each
// simulated GPU owns one.
type DRAM struct {
	cfg   Config
	banks []bank
	// busFree is the first cycle at which the data bus is idle.
	busFree uint64
	stats   Stats
}

// New builds a DRAM from cfg.
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.BandwidthMultiplier < 1 {
		cfg.BandwidthMultiplier = 1
	}
	banks := make([]bank, cfg.Banks)
	for i := range banks {
		banks[i].openRow = -1
	}
	return &DRAM{cfg: cfg, banks: banks}
}

// Config returns the device configuration.
func (d *DRAM) Config() Config { return d.cfg }

// bankAndRow decomposes a line address.
func (d *DRAM) bankAndRow(addr memory.Addr) (bankIdx int, row int64) {
	line := addr.LineIndex()
	bankIdx = int(line % uint64(d.cfg.Banks))
	row = int64(line / uint64(d.cfg.Banks) / uint64(d.cfg.RowBytes/memory.LineSize))
	return bankIdx, row
}

// Service performs a line read or write beginning no earlier than now
// and returns the completion cycle. Row-buffer hits cost tCL; misses
// cost precharge-constrained tRCD+tCL; the transfer then occupies the
// shared bus for TransferCycles / BandwidthMultiplier cycles.
func (d *DRAM) Service(now uint64, addr memory.Addr, isWrite bool) (done uint64) {
	bi, row := d.bankAndRow(addr)
	b := &d.banks[bi]

	start := now
	if b.readyAt > start {
		start = b.readyAt
	}

	var colReady uint64
	if b.openRow == row {
		d.stats.RowHits++
		colReady = start + uint64(d.cfg.TCL)
	} else {
		d.stats.RowMisses++
		// Respect tRAS before precharging the previously open row.
		actEarliest := start
		if b.openRow >= 0 {
			if min := b.activated + uint64(d.cfg.TRAS); min > actEarliest {
				actEarliest = min
			}
		}
		b.activated = actEarliest
		b.openRow = row
		colReady = actEarliest + uint64(d.cfg.TRCD) + uint64(d.cfg.TCL)
	}

	// Bus arbitration: the transfer starts when both the column data is
	// ready and the bus is free.
	xfer := uint64(d.cfg.TransferCycles) / uint64(d.cfg.BandwidthMultiplier)
	if xfer == 0 {
		xfer = 1
	}
	busStart := colReady
	if d.busFree > busStart {
		busStart = d.busFree
	}
	done = busStart + xfer
	d.busFree = done
	b.readyAt = colReady

	d.stats.BusBusy += xfer
	d.stats.LastFinish = done
	if isWrite {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	return done
}

// Stats returns a snapshot of the statistics.
func (d *DRAM) Stats() Stats { return d.stats }

// ResetStats zeroes statistics without closing rows.
func (d *DRAM) ResetStats() { d.stats = Stats{} }

// BusUtilization returns BusBusy / horizon, the achieved fraction of
// peak bandwidth over the given number of cycles. statPCAL uses this
// to decide whether bypassing warps may proceed.
func (d *DRAM) BusUtilization(horizonCycles uint64) float64 {
	if horizonCycles == 0 {
		return 0
	}
	u := float64(d.stats.BusBusy) / float64(horizonCycles)
	if u > 1 {
		u = 1
	}
	return u
}
