package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

func TestRowHitVsMissLatency(t *testing.T) {
	d := New(DefaultConfig())
	cfg := d.Config()

	// Cold access: row miss → tRCD + tCL + transfer.
	done1 := d.Service(0, 0x0, false)
	wantMiss := uint64(cfg.TRCD + cfg.TCL + cfg.TransferCycles)
	if done1 != wantMiss {
		t.Fatalf("cold access done = %d, want %d", done1, wantMiss)
	}

	// Same bank and row (line 16 → bank 0, row 0), bank now ready:
	// row hit → tCL + transfer from request time.
	start := done1 + 100
	done2 := d.Service(start, 16*memory.LineSize, false)
	wantHit := start + uint64(cfg.TCL+cfg.TransferCycles)
	if done2 != wantHit {
		t.Fatalf("row-hit done = %d, want %d", done2, wantHit)
	}
	if d.Stats().RowHits != 1 || d.Stats().RowMisses != 1 {
		t.Fatalf("row stats = %+v", d.Stats())
	}
}

func TestBankDecomposition(t *testing.T) {
	d := New(DefaultConfig())
	// Lines 0..15 should map to banks 0..15.
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		bi, _ := d.bankAndRow(memory.Addr(i) * memory.LineSize)
		seen[bi] = true
	}
	if len(seen) != 16 {
		t.Fatalf("16 consecutive lines hit %d banks, want 16", len(seen))
	}
}

func TestBusSerialization(t *testing.T) {
	d := New(DefaultConfig())
	// Two same-cycle requests to different banks still share the bus:
	// completions must be at least TransferCycles apart.
	d1 := d.Service(0, 0x0, false)
	d2 := d.Service(0, 0x80, false) // next line → different bank
	if d2 < d1+uint64(d.Config().TransferCycles) {
		t.Fatalf("bus not serialized: %d then %d", d1, d2)
	}
}

func TestBandwidthMultiplierSpeedsTransfers(t *testing.T) {
	base := DefaultConfig()
	fast := DefaultConfig()
	fast.BandwidthMultiplier = 2

	d1, d2 := New(base), New(fast)
	// Saturate the bus with many requests at cycle 0.
	var last1, last2 uint64
	for i := 0; i < 64; i++ {
		a := memory.Addr(i) * memory.LineSize
		last1 = d1.Service(0, a, false)
		last2 = d2.Service(0, a, false)
	}
	if last2 >= last1 {
		t.Fatalf("2X bandwidth no faster under saturation: %d vs %d", last2, last1)
	}
}

func TestTRASRespected(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	// Open row 0 of bank 0, then immediately conflict with another row
	// in the same bank: the second activation must wait out tRAS.
	d.Service(0, 0x0, false)
	rowStride := uint64(cfg.RowBytes * cfg.Banks) // next row, same bank
	done := d.Service(1, memory.Addr(rowStride), false)
	minDone := uint64(cfg.TRAS + cfg.TRCD + cfg.TCL) // activation waited for tRAS
	if done < minDone {
		t.Fatalf("row conflict done = %d, violates tRAS floor %d", done, minDone)
	}
}

func TestWriteCounted(t *testing.T) {
	d := New(DefaultConfig())
	d.Service(0, 0x0, true)
	d.Service(0, 0x80, false)
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBusUtilization(t *testing.T) {
	d := New(DefaultConfig())
	if d.BusUtilization(100) != 0 {
		t.Fatal("idle DRAM should report 0 utilization")
	}
	for i := 0; i < 10; i++ {
		d.Service(0, memory.Addr(i)*memory.LineSize, false)
	}
	u := d.BusUtilization(d.Stats().LastFinish)
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %f out of range", u)
	}
	if d.BusUtilization(0) != 0 {
		t.Fatal("zero horizon must not divide by zero")
	}
}

func TestValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Banks = 0
	if bad.Validate() == nil {
		t.Fatal("zero banks accepted")
	}
	bad = DefaultConfig()
	bad.TransferCycles = 0
	if bad.Validate() == nil {
		t.Fatal("zero transfer cycles accepted")
	}
}

// Property: completions are monotone in request time for a fixed
// address (a later request never completes earlier), and every
// completion strictly exceeds its request time.
func TestServiceMonotoneInvariant(t *testing.T) {
	f := func(deltas []uint8) bool {
		d := New(DefaultConfig())
		now, prevDone := uint64(0), uint64(0)
		for i, dt := range deltas {
			now += uint64(dt)
			done := d.Service(now, memory.Addr(i%64)*memory.LineSize, false)
			if done <= now || done < prevDone {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestResetStats(t *testing.T) {
	d := New(DefaultConfig())
	d.Service(0, 0x0, false)
	d.ResetStats()
	if d.Stats().Reads != 0 || d.Stats().RowMisses != 0 {
		t.Fatal("reset did not clear stats")
	}
}
