package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sm"
	"repro/internal/workload"
)

// Fig8Result carries the Figure 8a data: per-benchmark IPCs normalised
// to GTO, plus per-class and overall geometric means, and the Figure
// 8b shared-memory utilisation by class.
type Fig8Result struct {
	Benchmarks []string
	Schedulers []string
	// Normalized[bench][sched] is IPC normalised to GTO.
	Normalized map[string]map[string]float64
	// ClassGeoMean[class][sched] aggregates per class.
	ClassGeoMean map[workload.Class]map[string]float64
	// OverallGeoMean[sched] aggregates every benchmark.
	OverallGeoMean map[string]float64
	// SharedUtil[class] is the mean CIAO-C shared-cache utilisation
	// (Figure 8b).
	SharedUtil map[workload.Class]float64
	Matrix     *Matrix
}

// RunFig8 reproduces Figure 8: the seven schedulers over the full
// 21-benchmark suite.
func RunFig8(opt Options) (*Fig8Result, error) {
	specs := workload.Suite()
	factories := Schedulers()
	m, err := RunMatrix(specs, factories, opt)
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{
		Schedulers:     nil,
		Normalized:     map[string]map[string]float64{},
		ClassGeoMean:   map[workload.Class]map[string]float64{},
		OverallGeoMean: map[string]float64{},
		SharedUtil:     map[workload.Class]float64{},
		Matrix:         m,
	}
	for _, f := range factories {
		out.Schedulers = append(out.Schedulers, f.Name)
	}
	perClass := map[workload.Class]map[string][]float64{}
	overall := map[string][]float64{}
	utilSum := map[workload.Class]float64{}
	utilN := map[workload.Class]int{}
	for _, spec := range specs {
		out.Benchmarks = append(out.Benchmarks, spec.Name)
		row := map[string]float64{}
		for _, f := range factories {
			n := m.NormalizedIPC(spec.Name, f.Name, "GTO")
			row[f.Name] = n
			if perClass[spec.Class] == nil {
				perClass[spec.Class] = map[string][]float64{}
			}
			perClass[spec.Class][f.Name] = append(perClass[spec.Class][f.Name], n)
			overall[f.Name] = append(overall[f.Name], n)
		}
		out.Normalized[spec.Name] = row
		if r, ok := m.Get(spec.Name, "CIAO-C"); ok {
			utilSum[spec.Class] += r.SharedUtil
			utilN[spec.Class]++
		}
	}
	for cls, per := range perClass {
		out.ClassGeoMean[cls] = map[string]float64{}
		for s, vals := range per {
			out.ClassGeoMean[cls][s] = metrics.GeoMean(vals)
		}
	}
	for s, vals := range overall {
		out.OverallGeoMean[s] = metrics.GeoMean(vals)
	}
	for cls, n := range utilN {
		if n > 0 {
			out.SharedUtil[cls] = utilSum[cls] / float64(n)
		}
	}
	return out, nil
}

// Table renders the Figure 8a rows.
func (r *Fig8Result) Table() *metrics.Table {
	t := &metrics.Table{Header: append([]string{"benchmark"}, r.Schedulers...)}
	for _, b := range r.Benchmarks {
		row := []string{b}
		for _, s := range r.Schedulers {
			row = append(row, fmt.Sprintf("%.2f", r.Normalized[b][s]))
		}
		t.AddRow(row...)
	}
	for _, cls := range []workload.Class{workload.LWS, workload.SWS, workload.CI} {
		row := []string{"geomean-" + cls.String()}
		for _, s := range r.Schedulers {
			row = append(row, fmt.Sprintf("%.2f", r.ClassGeoMean[cls][s]))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean-all"}
	for _, s := range r.Schedulers {
		row = append(row, fmt.Sprintf("%.2f", r.OverallGeoMean[s]))
	}
	t.AddRow(row...)
	return t
}

// Fig1bResult carries Figure 1b: Backprop IPC, hit rate and active
// warps under Best-SWL and CCWS, normalised to Best-SWL.
type Fig1bResult struct {
	// Per scheduler: IPC, L1 hit rate, mean active warps (each
	// normalised to the maximum across the two schedulers, as the
	// figure plots 0..1 bars).
	IPC, HitRate, ActiveWarps map[string]float64
}

// RunFig1b reproduces Figure 1b on Backprop.
func RunFig1b(opt Options) (*Fig1bResult, error) {
	spec, err := workload.ByName("Backprop")
	if err != nil {
		return nil, err
	}
	out := &Fig1bResult{
		IPC:         map[string]float64{},
		HitRate:     map[string]float64{},
		ActiveWarps: map[string]float64{},
	}
	for _, name := range []string{"Best-SWL", "CCWS"} {
		f, err := SchedulerByName(name)
		if err != nil {
			return nil, err
		}
		r, g, err := RunOne(spec, f, opt)
		if err != nil {
			return nil, err
		}
		out.IPC[name] = r.IPC
		out.HitRate[name] = r.L1.HitRate()
		mean := 0.0
		for _, s := range g.TimeSeries().Samples {
			mean += float64(s.ActiveWarps)
		}
		if n := g.TimeSeries().Len(); n > 0 {
			mean /= float64(n)
		}
		out.ActiveWarps[name] = mean
	}
	return out, nil
}

// Fig4Result carries Figure 4: per-warp interference frequency on one
// benchmark plus min/max frequencies across workloads.
type Fig4Result struct {
	// Bench is the focus benchmark (KMN in the paper).
	Bench string
	// FocusWarp is the interfered warp examined in Figure 4a.
	FocusWarp int
	// PerInterferer[w] is how often warp w interfered with FocusWarp.
	PerInterferer []uint64
	// WorkloadMinMax[name] = {min, max} single-pair interference
	// frequency over warps (Figure 4b).
	WorkloadMinMax map[string][2]uint64
}

// RunFig4 reproduces Figure 4 on the memory-intensive suite.
func RunFig4(opt Options) (*Fig4Result, error) {
	gto, err := SchedulerByName("GTO")
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{Bench: "KMN", WorkloadMinMax: map[string][2]uint64{}}
	for _, spec := range workload.MemoryIntensive() {
		_, g, err := RunOne(spec, gto, opt)
		if err != nil {
			return nil, err
		}
		im := g.Interference()
		minPer, maxPer := im.MinMaxPerWarp()
		var lo, hi uint64
		lo = ^uint64(0)
		for w := 0; w < im.N(); w++ {
			if maxPer[w] == 0 {
				continue
			}
			if minPer[w] < lo {
				lo = minPer[w]
			}
			if maxPer[w] > hi {
				hi = maxPer[w]
			}
		}
		if hi == 0 {
			lo = 0
		}
		out.WorkloadMinMax[spec.Name] = [2]uint64{lo, hi}
		if spec.Name == out.Bench {
			top := im.TopInterferedWarps(1)
			if len(top) > 0 {
				out.FocusWarp = top[0]
				out.PerInterferer = make([]uint64, im.N())
				for j := 0; j < im.N(); j++ {
					out.PerInterferer[j] = im.At(out.FocusWarp, j)
				}
			}
		}
	}
	return out, nil
}

// TimeSeriesSet maps scheduler name → sampled trace for one benchmark
// (Figures 9 and 10).
type TimeSeriesSet struct {
	Bench  string
	Series map[string]*metrics.TimeSeries
}

// RunTimeSeries reproduces the Figure 9/10 dynamic traces: the named
// benchmark under each named scheduler.
func RunTimeSeries(bench string, schedNames []string, opt Options) (*TimeSeriesSet, error) {
	spec, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	out := &TimeSeriesSet{Bench: bench, Series: map[string]*metrics.TimeSeries{}}
	for _, name := range schedNames {
		f, err := SchedulerByName(name)
		if err != nil {
			return nil, err
		}
		_, g, err := RunOne(spec, f, opt)
		if err != nil {
			return nil, err
		}
		ts := *g.TimeSeries()
		out.Series[name] = &ts
	}
	return out, nil
}

// SensitivityResult maps parameter value → benchmark → IPC normalised
// to the paper's default value of that parameter (Figure 11).
type SensitivityResult struct {
	// Values are the swept parameter values in order.
	Values []float64
	// Normalized[value][bench] is IPC / IPC(default).
	Normalized map[float64]map[string]float64
}

// RunEpochSensitivity reproduces Figure 11a: CIAO-C IPC across
// high-cutoff epoch values on the sensitivity benchmark set,
// normalised to the 5000-instruction default.
func RunEpochSensitivity(epochs []uint64, opt Options) (*SensitivityResult, error) {
	return runCIAOSensitivity(opt, floats(epochs), func(c *core.CIAO, v float64) {
		p := c.Params()
		p.HighEpoch = uint64(v)
		*c = *core.New(c.Mode(), p)
	}, 5000)
}

// RunCutoffSensitivity reproduces Figure 11b: CIAO-C IPC across
// high-cutoff thresholds (low-cutoff fixed at half), normalised to the
// 1% default.
func RunCutoffSensitivity(cutoffs []float64, opt Options) (*SensitivityResult, error) {
	return runCIAOSensitivity(opt, cutoffs, func(c *core.CIAO, v float64) {
		p := c.Params()
		p.HighCutoff = v
		p.LowCutoff = v / 2
		*c = *core.New(c.Mode(), p)
	}, 0.01)
}

func floats(vs []uint64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(v)
	}
	return out
}

func runCIAOSensitivity(opt Options, values []float64, tune func(*core.CIAO, float64), def float64) (*SensitivityResult, error) {
	specs := workload.SensitivitySet()
	out := &SensitivityResult{Values: values, Normalized: map[float64]map[string]float64{}}

	runAt := func(v float64) (map[string]float64, error) {
		o := opt
		o.ControllerHook = func(ctrl sm.Controller) {
			if c, ok := ctrl.(*core.CIAO); ok {
				tune(c, v)
			}
		}
		f := SchedulerFactory{
			Name:             "CIAO-C",
			New:              func() sm.Controller { return core.NewC() },
			NeedsSharedCache: true,
		}
		m, err := RunMatrix(specs, []SchedulerFactory{f}, o)
		if err != nil {
			return nil, err
		}
		ipcs := map[string]float64{}
		for _, s := range specs {
			ipcs[s.Name] = m.IPC(s.Name, "CIAO-C")
		}
		return ipcs, nil
	}

	base, err := runAt(def)
	if err != nil {
		return nil, err
	}
	for _, v := range values {
		ipcs, err := runAt(v)
		if err != nil {
			return nil, err
		}
		row := map[string]float64{}
		for name, ipc := range ipcs {
			if base[name] > 0 {
				row[name] = ipc / base[name]
			}
		}
		out.Normalized[v] = row
	}
	return out, nil
}

// Fig12Result carries the Figure 12 configuration studies.
type Fig12Result struct {
	// Normalized[config][bench] is IPC normalised to baseline GTO.
	Normalized map[string]map[string]float64
	// GeoMean[config] aggregates across benchmarks.
	GeoMean map[string]float64
	Configs []string
}

// RunFig12a compares GTO, GTO-cap (48KB L1D / 16KB shared), GTO-8way
// and CIAO-C on the memory-intensive suite.
func RunFig12a(opt Options) (*Fig12Result, error) {
	specs := workload.MemoryIntensive()
	gto := SchedulerFactory{Name: "GTO", New: func() sm.Controller { return sched.NewGTO() }}
	ciao := SchedulerFactory{Name: "CIAO-C", New: func() sm.Controller { return core.NewC() }, NeedsSharedCache: true}
	variants := []configVariant{
		{Name: "GTO", F: gto},
		{Name: "GTO-cap", F: gto, Hook: func(c *sm.Config) {
			// Trade shared memory for L1D (Fermi's 48KB L1 mode is
			// 6-way: 64 power-of-two sets).
			c.L1.SizeBytes = 48 << 10
			c.L1.Ways = 6
			c.SharedMemBytes = 16 << 10
		}},
		{Name: "GTO-8way", F: gto, Hook: func(c *sm.Config) { c.L1.Ways = 8 }},
		{Name: "CIAO-C", F: ciao},
	}
	return runConfigStudy(specs, variants, opt)
}

// RunFig12b compares statPCAL-2X and CIAO-C-2X (doubled DRAM
// bandwidth), normalised to baseline GTO.
func RunFig12b(opt Options) (*Fig12Result, error) {
	specs := workload.MemoryIntensive()
	double := func(c *sm.Config) { c.L2Config.DRAM.BandwidthMultiplier = 2 }
	statp := SchedulerFactory{Name: "statPCAL", New: func() sm.Controller { return sched.NewStatPCAL() }}
	ciao := SchedulerFactory{Name: "CIAO-C", New: func() sm.Controller { return core.NewC() }, NeedsSharedCache: true}
	gto := SchedulerFactory{Name: "GTO", New: func() sm.Controller { return sched.NewGTO() }}
	variants := []configVariant{
		{Name: "GTO", F: gto},
		{Name: "statPCAL-2X", F: statp, Hook: double},
		{Name: "CIAO-C-2X", F: ciao, Hook: double},
	}
	return runConfigStudy(specs, variants, opt)
}

type configVariant struct {
	Name string
	F    SchedulerFactory
	Hook func(*sm.Config)
}

func runConfigStudy(specs []workload.Spec, variants []configVariant, opt Options) (*Fig12Result, error) {
	out := &Fig12Result{
		Normalized: map[string]map[string]float64{},
		GeoMean:    map[string]float64{},
	}
	base := map[string]float64{}
	for _, v := range variants {
		out.Configs = append(out.Configs, v.Name)
		o := opt
		if v.Hook != nil {
			prev := opt.ConfigHook
			o.ConfigHook = func(c *sm.Config) {
				if prev != nil {
					prev(c)
				}
				v.Hook(c)
			}
		}
		m, err := RunMatrix(specs, []SchedulerFactory{v.F}, o)
		if err != nil {
			return nil, err
		}
		row := map[string]float64{}
		var vals []float64
		for _, s := range specs {
			ipc := m.IPC(s.Name, v.F.Name)
			if v.Name == "GTO" {
				base[s.Name] = ipc
			}
			n := 0.0
			if base[s.Name] > 0 {
				n = ipc / base[s.Name]
			}
			row[s.Name] = n
			vals = append(vals, n)
		}
		out.Normalized[v.Name] = row
		out.GeoMean[v.Name] = geoMeanOf(vals)
	}
	return out, nil
}

func geoMeanOf(vals []float64) float64 { return metrics.GeoMean(vals) }

// ProfileBestSWL sweeps static warp limits for a benchmark and returns
// the limit with the highest IPC — the procedure behind Table II's
// Nwrp column.
func ProfileBestSWL(spec workload.Spec, limits []int, opt Options) (best int, bestIPC float64, err error) {
	for _, lim := range limits {
		lim := lim
		f := SchedulerFactory{
			Name: "Best-SWL",
			New:  func() sm.Controller { return sched.NewBestSWL(lim) },
		}
		r, _, e := RunOne(spec, f, opt)
		if e != nil {
			return 0, 0, e
		}
		if r.IPC > bestIPC {
			best, bestIPC = lim, r.IPC
		}
	}
	return best, bestIPC, nil
}
