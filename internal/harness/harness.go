// Package harness drives the paper's experiments: it instantiates
// benchmark × scheduler × configuration cells, runs them in parallel
// across goroutines (each cell is an independent single-goroutine
// simulation), and aggregates the rows/series each table and figure of
// the evaluation reports.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sm"
	"repro/internal/workload"
)

// SchedulerFactory names a scheduler and builds fresh controller
// instances (controllers are stateful and single-use).
type SchedulerFactory struct {
	// Name is the display name used in tables.
	Name string
	// New builds a fresh controller.
	New func() sm.Controller
	// NeedsSharedCache enables the CIAO shared-memory cache in the SM
	// configuration.
	NeedsSharedCache bool
}

// Schedulers returns the seven controllers of Figure 8 in paper order:
// GTO, CCWS, Best-SWL, statPCAL, CIAO-T, CIAO-P, CIAO-C.
func Schedulers() []SchedulerFactory {
	return []SchedulerFactory{
		{Name: "GTO", New: func() sm.Controller { return sched.NewGTO() }},
		{Name: "CCWS", New: func() sm.Controller { return sched.NewCCWS() }},
		{Name: "Best-SWL", New: func() sm.Controller { return sched.NewBestSWL(0) }},
		{Name: "statPCAL", New: func() sm.Controller { return sched.NewStatPCAL() }},
		{Name: "CIAO-T", New: func() sm.Controller { return core.NewT() }},
		{Name: "CIAO-P", New: func() sm.Controller { return core.NewP() }, NeedsSharedCache: true},
		{Name: "CIAO-C", New: func() sm.Controller { return core.NewC() }, NeedsSharedCache: true},
	}
}

// SchedulerByName returns the factory with the given name.
func SchedulerByName(name string) (SchedulerFactory, error) {
	for _, f := range Schedulers() {
		if f.Name == name {
			return f, nil
		}
	}
	return SchedulerFactory{}, fmt.Errorf("harness: unknown scheduler %q", name)
}

// Options control a run.
type Options struct {
	// InstrPerWarp overrides the spec's budget when non-zero.
	InstrPerWarp uint64
	// Seed overrides the spec's seed when non-zero.
	Seed uint64
	// NumWarps overrides the resident warp count when non-zero; it
	// must stay divisible into the spec's CTAs (workload validation
	// rejects it otherwise).
	NumWarps int
	// ConfigHook mutates the SM config before construction (used by
	// the Figure 11/12 sweeps).
	ConfigHook func(*sm.Config)
	// ControllerHook mutates the freshly built controller (used by
	// the sensitivity sweeps to change CIAO parameters).
	ControllerHook func(sm.Controller)
	// SampleInterval overrides time-series sampling (0 keeps default).
	SampleInterval uint64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
}

func (o Options) applySpec(spec workload.Spec) workload.Spec {
	if o.InstrPerWarp > 0 {
		spec.InstrPerWarp = o.InstrPerWarp
	}
	if o.Seed != 0 {
		spec.Seed = o.Seed
	}
	if o.NumWarps > 0 {
		spec.NumWarps = o.NumWarps
	}
	return spec
}

func (o Options) buildConfig(f SchedulerFactory) sm.Config {
	cfg := sm.DefaultConfig()
	cfg.EnableSharedCache = f.NeedsSharedCache
	if o.SampleInterval > 0 {
		cfg.SampleInterval = o.SampleInterval
	}
	if o.ConfigHook != nil {
		o.ConfigHook(&cfg)
	}
	return cfg
}

// RunOne simulates one benchmark under one scheduler and returns the
// result plus the GPU for post-hoc inspection.
func RunOne(spec workload.Spec, f SchedulerFactory, opt Options) (sm.Result, *sm.GPU, error) {
	spec = opt.applySpec(spec)
	kernel, err := workload.NewKernel(spec)
	if err != nil {
		return sm.Result{}, nil, err
	}
	ctrl := f.New()
	if opt.ControllerHook != nil {
		opt.ControllerHook(ctrl)
	}
	g, err := sm.NewGPU(opt.buildConfig(f), kernel, ctrl, nil)
	if err != nil {
		return sm.Result{}, nil, err
	}
	r := g.Run()
	r.Scheduler = f.Name
	return r, g, nil
}

// Cell identifies one benchmark × scheduler simulation.
type Cell struct {
	Bench string
	Sched string
}

// Matrix holds the results of a benchmark × scheduler sweep.
type Matrix struct {
	Results map[Cell]sm.Result
}

// Get returns the result for (bench, sched).
func (m *Matrix) Get(bench, sched string) (sm.Result, bool) {
	r, ok := m.Results[Cell{bench, sched}]
	return r, ok
}

// IPC returns the IPC for (bench, sched), or 0.
func (m *Matrix) IPC(bench, sched string) float64 {
	r, ok := m.Get(bench, sched)
	if !ok {
		return 0
	}
	return r.IPC
}

// NormalizedIPC returns IPC(bench, sched) / IPC(bench, base).
func (m *Matrix) NormalizedIPC(bench, sched, base string) float64 {
	b := m.IPC(bench, base)
	if b == 0 {
		return 0
	}
	return m.IPC(bench, sched) / b
}

// RunMatrix sweeps specs × factories in parallel.
func RunMatrix(specs []workload.Spec, factories []SchedulerFactory, opt Options) (*Matrix, error) {
	type job struct {
		spec workload.Spec
		f    SchedulerFactory
	}
	jobs := make([]job, 0, len(specs)*len(factories))
	for _, s := range specs {
		for _, f := range factories {
			jobs = append(jobs, job{s, f})
		}
	}

	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(jobs) {
		par = len(jobs)
	}

	results := make([]sm.Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, _, err := RunOne(j.spec, j.f, opt)
			results[i], errs[i] = r, err
		}(i, j)
	}
	wg.Wait()

	m := &Matrix{Results: make(map[Cell]sm.Result, len(jobs))}
	for i, j := range jobs {
		if errs[i] != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", j.spec.Name, j.f.Name, errs[i])
		}
		m.Results[Cell{j.spec.Name, j.f.Name}] = results[i]
	}
	return m, nil
}
