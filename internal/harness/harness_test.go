package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sm"
	"repro/internal/workload"
)

// testOpt keeps integration runs short.
func testOpt() Options {
	return Options{InstrPerWarp: 800, Parallelism: 4}
}

func TestSchedulersComplete(t *testing.T) {
	fs := Schedulers()
	if len(fs) != 7 {
		t.Fatalf("scheduler count = %d, want 7 (Figure 8)", len(fs))
	}
	want := []string{"GTO", "CCWS", "Best-SWL", "statPCAL", "CIAO-T", "CIAO-P", "CIAO-C"}
	for i, f := range fs {
		if f.Name != want[i] {
			t.Errorf("scheduler %d = %s, want %s", i, f.Name, want[i])
		}
		c := f.New()
		if c.Name() != f.Name {
			t.Errorf("factory %s builds controller named %s", f.Name, c.Name())
		}
	}
	// CIAO-P/C require the shared cache; CIAO-T must not.
	for _, f := range fs {
		wantShared := f.Name == "CIAO-P" || f.Name == "CIAO-C"
		if f.NeedsSharedCache != wantShared {
			t.Errorf("%s NeedsSharedCache = %v", f.Name, f.NeedsSharedCache)
		}
	}
}

func TestSchedulerByName(t *testing.T) {
	if _, err := SchedulerByName("CIAO-C"); err != nil {
		t.Fatal(err)
	}
	if _, err := SchedulerByName("nope"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestRunOne(t *testing.T) {
	spec, err := workload.ByName("SYRK")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := SchedulerByName("GTO")
	r, g, err := RunOne(spec, f, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.TimedOut {
		t.Fatal("run timed out")
	}
	if r.Instructions != 800*uint64(spec.NumWarps) {
		t.Fatalf("instructions = %d", r.Instructions)
	}
	if r.Scheduler != "GTO" || g == nil {
		t.Fatal("result metadata wrong")
	}
}

func TestRunMatrixParallelDeterminism(t *testing.T) {
	specs := []workload.Spec{}
	for _, n := range []string{"SYRK", "Backprop"} {
		s, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	fs := Schedulers()[:3]
	m1, err := RunMatrix(specs, fs, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunMatrix(specs, fs, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	for cell, r1 := range m1.Results {
		r2 := m2.Results[cell]
		if r1.IPC != r2.IPC || r1.Cycles != r2.Cycles {
			t.Fatalf("%v not deterministic across parallel runs", cell)
		}
	}
}

func TestMatrixAccessors(t *testing.T) {
	spec, _ := workload.ByName("SYRK")
	m, err := RunMatrix([]workload.Spec{spec}, Schedulers()[:1], testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if m.IPC("SYRK", "GTO") <= 0 {
		t.Fatal("IPC accessor broken")
	}
	if m.IPC("SYRK", "missing") != 0 {
		t.Fatal("missing cell should yield 0")
	}
	if n := m.NormalizedIPC("SYRK", "GTO", "GTO"); n != 1 {
		t.Fatalf("self-normalized IPC = %f", n)
	}
	if m.NormalizedIPC("SYRK", "GTO", "missing") != 0 {
		t.Fatal("normalizing to a missing base should yield 0")
	}
}

func TestRunFig1b(t *testing.T) {
	res, err := RunFig1b(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"Best-SWL", "CCWS"} {
		if res.IPC[s] <= 0 {
			t.Errorf("%s IPC = %f", s, res.IPC[s])
		}
		if res.HitRate[s] <= 0 || res.HitRate[s] > 1 {
			t.Errorf("%s hit rate = %f", s, res.HitRate[s])
		}
		if res.ActiveWarps[s] <= 0 {
			t.Errorf("%s active warps = %f", s, res.ActiveWarps[s])
		}
	}
	// The paper's Figure 1b point: similar hit rates but Best-SWL
	// preserves far more TLP than CCWS on Backprop.
	if res.ActiveWarps["Best-SWL"] <= res.ActiveWarps["CCWS"] {
		t.Errorf("Best-SWL active warps (%f) not above CCWS (%f)",
			res.ActiveWarps["Best-SWL"], res.ActiveWarps["CCWS"])
	}
}

func TestRunFig4SkewExists(t *testing.T) {
	res, err := RunFig4(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WorkloadMinMax) != len(workload.MemoryIntensive()) {
		t.Fatalf("covered %d workloads", len(res.WorkloadMinMax))
	}
	// Figure 4b: max single-pair interference well above min for at
	// least one workload (skew).
	skewed := false
	for _, mm := range res.WorkloadMinMax {
		if mm[1] >= 4*max64(mm[0], 1) {
			skewed = true
		}
	}
	if !skewed {
		t.Error("no interference skew observed in any workload")
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestRunTimeSeries(t *testing.T) {
	opt := testOpt()
	opt.SampleInterval = 500
	res, err := RunTimeSeries("ATAX", []string{"GTO", "CIAO-T"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"GTO", "CIAO-T"} {
		if res.Series[s].Len() == 0 {
			t.Errorf("%s produced no samples", s)
		}
	}
	if _, err := RunTimeSeries("nope", []string{"GTO"}, opt); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunFig8SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in -short mode")
	}
	opt := Options{InstrPerWarp: 500}
	res, err := RunFig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benchmarks) != 21 {
		t.Fatalf("benchmarks = %d", len(res.Benchmarks))
	}
	for _, b := range res.Benchmarks {
		if res.Normalized[b]["GTO"] != 1.0 {
			t.Errorf("%s GTO normalization = %f, want 1", b, res.Normalized[b]["GTO"])
		}
	}
	for _, s := range res.Schedulers {
		if res.OverallGeoMean[s] <= 0 {
			t.Errorf("%s geomean = %f", s, res.OverallGeoMean[s])
		}
	}
	tbl := res.Table().String()
	if !strings.Contains(tbl, "geomean-all") || !strings.Contains(tbl, "CIAO-C") {
		t.Error("table rendering incomplete")
	}
}

func TestEpochSensitivityNormalizesToDefault(t *testing.T) {
	opt := testOpt()
	res, err := RunEpochSensitivity([]uint64{5000}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for b, v := range res.Normalized[5000] {
		if v != 1.0 {
			t.Errorf("%s at default epoch = %f, want exactly 1 (same run)", b, v)
		}
	}
}

func TestCutoffSensitivityAppliesParams(t *testing.T) {
	// Verify the controller hook actually rewrites CIAO parameters.
	var got core.Params
	opt := testOpt()
	opt.ControllerHook = func(ctrl sm.Controller) {
		if c, ok := ctrl.(*core.CIAO); ok {
			p := c.Params()
			p.HighCutoff = 0.04
			p.LowCutoff = 0.02
			*c = *core.New(c.Mode(), p)
			got = c.Params()
		}
	}
	spec, _ := workload.ByName("SYRK")
	f := SchedulerFactory{Name: "CIAO-C", New: func() sm.Controller { return core.NewC() }, NeedsSharedCache: true}
	if _, _, err := RunOne(spec, f, opt); err != nil {
		t.Fatal(err)
	}
	if got.HighCutoff != 0.04 || got.LowCutoff != 0.02 {
		t.Fatalf("hook did not apply: %+v", got)
	}
}

func TestRunFig12aConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("config study in -short mode")
	}
	opt := Options{InstrPerWarp: 400}
	res, err := RunFig12a(opt)
	if err != nil {
		t.Fatal(err)
	}
	wantConfigs := []string{"GTO", "GTO-cap", "GTO-8way", "CIAO-C"}
	for i, c := range res.Configs {
		if c != wantConfigs[i] {
			t.Fatalf("configs = %v", res.Configs)
		}
		if res.GeoMean[c] <= 0 {
			t.Errorf("%s geomean = %f", c, res.GeoMean[c])
		}
	}
	if res.GeoMean["GTO"] != 1.0 {
		t.Errorf("GTO baseline = %f", res.GeoMean["GTO"])
	}
}

func TestRunFig12bDoublesBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("config study in -short mode")
	}
	opt := Options{InstrPerWarp: 400}
	res, err := RunFig12b(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.GeoMean["CIAO-C-2X"] <= 0 || res.GeoMean["statPCAL-2X"] <= 0 {
		t.Fatalf("2X geomeans = %+v", res.GeoMean)
	}
}

func TestProfileBestSWL(t *testing.T) {
	spec, _ := workload.ByName("SYRK")
	best, ipc, err := ProfileBestSWL(spec, []int{2, 6, 48}, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if best != 2 && best != 6 && best != 48 {
		t.Fatalf("profiled limit = %d not among candidates", best)
	}
	if ipc <= 0 {
		t.Fatalf("best IPC = %f", ipc)
	}
}
