package harness

import (
	"encoding/json"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/sm"
	"repro/internal/workload"
)

// This file gives every figure/table result a stable JSON encoding so
// results can be cached byte-for-byte, served over HTTP, and diffed
// across runs. Map keys are strings (encoding/json emits them sorted),
// class keys use the paper's class names, and swept parameter values
// are formatted with strconv 'g' so 0.005 round-trips exactly.

func classKeys[V any](in map[workload.Class]V) map[string]V {
	out := make(map[string]V, len(in))
	for c, v := range in {
		out[c.String()] = v
	}
	return out
}

// FormatValue renders a swept parameter value as its JSON map key.
func FormatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// MarshalJSON implements json.Marshaler. The raw Matrix is omitted:
// its struct-keyed map has no JSON form and every figure quantity is
// already aggregated into the other fields.
func (r *Fig8Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Benchmarks     []string                      `json:"benchmarks"`
		Schedulers     []string                      `json:"schedulers"`
		Normalized     map[string]map[string]float64 `json:"normalized_ipc"`
		ClassGeoMean   map[string]map[string]float64 `json:"class_geomean"`
		OverallGeoMean map[string]float64            `json:"overall_geomean"`
		SharedUtil     map[string]float64            `json:"shared_util"`
	}{
		Benchmarks:     r.Benchmarks,
		Schedulers:     r.Schedulers,
		Normalized:     r.Normalized,
		ClassGeoMean:   classKeys(r.ClassGeoMean),
		OverallGeoMean: r.OverallGeoMean,
		SharedUtil:     classKeys(r.SharedUtil),
	})
}

// MarshalJSON implements json.Marshaler.
func (r *Fig1bResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		IPC         map[string]float64 `json:"ipc"`
		HitRate     map[string]float64 `json:"l1_hit_rate"`
		ActiveWarps map[string]float64 `json:"active_warps"`
	}{r.IPC, r.HitRate, r.ActiveWarps})
}

// MarshalJSON implements json.Marshaler.
func (r *Fig4Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Bench          string               `json:"bench"`
		FocusWarp      int                  `json:"focus_warp"`
		PerInterferer  []uint64             `json:"per_interferer"`
		WorkloadMinMax map[string][2]uint64 `json:"workload_min_max"`
	}{r.Bench, r.FocusWarp, r.PerInterferer, r.WorkloadMinMax})
}

// MarshalJSON implements json.Marshaler.
func (s *TimeSeriesSet) MarshalJSON() ([]byte, error) {
	series := make(map[string][]metrics.Sample, len(s.Series))
	for name, ts := range s.Series {
		if ts != nil {
			series[name] = ts.Samples
		}
	}
	return json.Marshal(struct {
		Bench  string                      `json:"bench"`
		Series map[string][]metrics.Sample `json:"series"`
	}{s.Bench, series})
}

// MarshalJSON implements json.Marshaler. Values keeps the sweep order;
// Normalized is keyed by FormatValue(value).
func (r *SensitivityResult) MarshalJSON() ([]byte, error) {
	norm := make(map[string]map[string]float64, len(r.Normalized))
	for v, row := range r.Normalized {
		norm[FormatValue(v)] = row
	}
	return json.Marshal(struct {
		Values     []float64                     `json:"values"`
		Normalized map[string]map[string]float64 `json:"normalized_ipc"`
	}{r.Values, norm})
}

// MarshalJSON implements json.Marshaler.
func (r *Fig12Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Configs    []string                      `json:"configs"`
		Normalized map[string]map[string]float64 `json:"normalized_ipc"`
		GeoMean    map[string]float64            `json:"geomean"`
	}{r.Configs, r.Normalized, r.GeoMean})
}

// CellResult is the JSON form of a single benchmark × scheduler run.
type CellResult struct {
	Bench          string  `json:"bench"`
	Sched          string  `json:"sched"`
	IPC            float64 `json:"ipc"`
	Cycles         uint64  `json:"cycles"`
	Instructions   uint64  `json:"instructions"`
	L1HitRate      float64 `json:"l1_hit_rate"`
	L1Accesses     uint64  `json:"l1_accesses"`
	VTAHits        uint64  `json:"vta_hits"`
	SharedHitRate  float64 `json:"shared_hit_rate"`
	SharedAccesses uint64  `json:"shared_accesses"`
	SharedUtil     float64 `json:"shared_util"`
	Interference   uint64  `json:"interference_events"`
	FinishedWarps  int     `json:"finished_warps"`
	TimedOut       bool    `json:"timed_out"`
}

// NewCellResult flattens an sm.Result (plus the GPU's interference
// total) into its JSON form.
func NewCellResult(bench string, r sm.Result, interference uint64) CellResult {
	return CellResult{
		Bench:          bench,
		Sched:          r.Scheduler,
		IPC:            r.IPC,
		Cycles:         r.Cycles,
		Instructions:   r.Instructions,
		L1HitRate:      r.L1.HitRate(),
		L1Accesses:     r.L1.Accesses,
		VTAHits:        r.VTAHits,
		SharedHitRate:  r.SharedStats.HitRate(),
		SharedAccesses: r.SharedStats.Accesses,
		SharedUtil:     r.SharedUtil,
		Interference:   interference,
		FinishedWarps:  r.FinishedWarps,
		TimedOut:       r.TimedOut,
	}
}
