package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sm"
	"repro/internal/workload"
)

// TestOptionsApplySpec pins the override contract the service layer's
// cache keys depend on: zero values leave the spec untouched, non-zero
// values replace the spec's own budget/seed.
func TestOptionsApplySpec(t *testing.T) {
	spec, err := workload.ByName("SYRK")
	if err != nil {
		t.Fatal(err)
	}
	wantInstr, wantSeed := spec.InstrPerWarp, spec.Seed
	if wantInstr == 0 {
		t.Fatal("suite spec has no default instruction budget")
	}

	got := Options{}.applySpec(spec)
	if got.InstrPerWarp != wantInstr || got.Seed != wantSeed {
		t.Errorf("zero Options mutated spec: instr %d→%d seed %d→%d",
			wantInstr, got.InstrPerWarp, wantSeed, got.Seed)
	}

	got = Options{InstrPerWarp: 123, Seed: 99}.applySpec(spec)
	if got.InstrPerWarp != 123 {
		t.Errorf("InstrPerWarp override = %d, want 123", got.InstrPerWarp)
	}
	if got.Seed != 99 {
		t.Errorf("Seed override = %d, want 99", got.Seed)
	}

	// Only the overridden field changes.
	got = Options{InstrPerWarp: 123}.applySpec(spec)
	if got.Seed != wantSeed {
		t.Errorf("InstrPerWarp override changed seed %d→%d", wantSeed, got.Seed)
	}
	got = Options{Seed: 7}.applySpec(spec)
	if got.InstrPerWarp != wantInstr {
		t.Errorf("Seed override changed instr %d→%d", wantInstr, got.InstrPerWarp)
	}
}

func TestOptionsBuildConfig(t *testing.T) {
	f, err := SchedulerByName("CIAO-C")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Options{}.buildConfig(f)
	if !cfg.EnableSharedCache {
		t.Error("CIAO-C config lost the shared cache")
	}
	def := cfg.SampleInterval

	cfg = Options{SampleInterval: 777}.buildConfig(f)
	if cfg.SampleInterval != 777 {
		t.Errorf("SampleInterval = %d, want 777", cfg.SampleInterval)
	}
	cfg = Options{ConfigHook: func(c *sm.Config) { c.SampleInterval = def + 1 }}.buildConfig(f)
	if cfg.SampleInterval != def+1 {
		t.Error("ConfigHook did not run last")
	}
}

// TestOptionsSeedChangesRun checks a seed override actually reaches the
// workload generator: two seeds, two different executions.
func TestOptionsSeedChangesRun(t *testing.T) {
	spec, err := workload.ByName("SYRK")
	if err != nil {
		t.Fatal(err)
	}
	gto, err := SchedulerByName("GTO")
	if err != nil {
		t.Fatal(err)
	}
	opt := testOpt()
	r1, _, err := RunOne(spec, gto, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Seed = 0xD00D
	r2, _, err := RunOne(spec, gto, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles == r2.Cycles && r1.L1.Accesses == r2.L1.Accesses && r1.VTAHits == r2.VTAHits {
		t.Error("seed override produced an identical execution")
	}
}

func TestFig8ResultJSONStable(t *testing.T) {
	r := &Fig8Result{
		Benchmarks: []string{"SYRK"},
		Schedulers: []string{"GTO", "CIAO-C"},
		Normalized: map[string]map[string]float64{"SYRK": {"GTO": 1, "CIAO-C": 1.4}},
		ClassGeoMean: map[workload.Class]map[string]float64{
			workload.LWS: {"GTO": 1},
		},
		OverallGeoMean: map[string]float64{"GTO": 1},
		SharedUtil:     map[workload.Class]float64{workload.SWS: 0.5},
		Matrix:         &Matrix{}, // must be omitted, not crash Marshal
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"normalized_ipc"`, `"class_geomean":{"LWS"`, `"shared_util":{"SWS"`} {
		if !strings.Contains(s, want) {
			t.Errorf("encoding missing %s: %s", want, s)
		}
	}
	if strings.Contains(s, "Matrix") {
		t.Errorf("raw matrix leaked into JSON: %s", s)
	}
	b2, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if s != string(b2) {
		t.Error("encoding is not deterministic")
	}
}

func TestSensitivityResultJSONFloatKeys(t *testing.T) {
	r := &SensitivityResult{
		Values: []float64{0.04, 0.005},
		Normalized: map[float64]map[string]float64{
			0.04:  {"SYRK": 1},
			0.005: {"SYRK": 0.97},
		},
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err) // plain encoding/json rejects float64 map keys
	}
	var decoded struct {
		Values     []float64                     `json:"values"`
		Normalized map[string]map[string]float64 `json:"normalized_ipc"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Normalized["0.005"]["SYRK"] != 0.97 {
		t.Errorf("0.005 row lost: %s", b)
	}
}

func TestTimeSeriesSetJSON(t *testing.T) {
	ts := &metrics.TimeSeries{}
	ts.Add(metrics.Sample{Cycle: 100, IPC: 1.5, ActiveWarps: 3})
	set := &TimeSeriesSet{Bench: "SYRK", Series: map[string]*metrics.TimeSeries{"GTO": ts}}
	b, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"bench":"SYRK"`, `"cycle":100`, `"active_warps":3`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("encoding missing %s: %s", want, b)
		}
	}
}
