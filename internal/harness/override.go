package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sm"
	"repro/internal/workload"
)

// Override is the declarative, JSON-addressable form of a cell's
// machine and controller configuration. The paper's figure functions
// mutate configs with ad-hoc Go hooks; Override exposes the same knobs
// as plain data so arbitrary cells — not just the paper's fixed ones —
// can be requested over the wire, content-addressed, and swept.
//
// Zero fields keep the Table I defaults, so the zero Override is the
// baseline machine.
type Override struct {
	// L1SizeKB resizes the L1D data capacity (Table I: 16).
	L1SizeKB int `json:"l1_size_kb,omitempty"`
	// L1Ways changes the L1D associativity (Table I: 4). The implied
	// set count must stay a power of two.
	L1Ways int `json:"l1_ways,omitempty"`
	// SharedMemKB resizes shared memory (Table I: 48).
	SharedMemKB int `json:"shared_mem_kb,omitempty"`
	// WarpsPerSM caps resident warps (Table I: 48); it must divide
	// into the benchmark's CTAs (multiples of 8 for the whole suite).
	WarpsPerSM int `json:"warps_per_sm,omitempty"`
	// VTAEntriesPerWarp changes the victim-tag-array depth (Table I: 8).
	VTAEntriesPerWarp int `json:"vta_entries,omitempty"`
	// MSHREntries changes the L1 MSHR capacity (Table I: 32).
	MSHREntries int `json:"mshr_entries,omitempty"`
	// DRAMBandwidthX scales DRAM bandwidth (Figure 12b uses 2).
	DRAMBandwidthX int `json:"dram_bandwidth_x,omitempty"`
	// CIAOHighEpoch overrides the CIAO high-cutoff check period
	// (paper: 5000). Ignored for non-CIAO schedulers.
	CIAOHighEpoch uint64 `json:"ciao_high_epoch,omitempty"`
	// CIAOHighCutoff overrides the CIAO severe-interference IRS
	// threshold (paper: 0.01). Ignored for non-CIAO schedulers.
	CIAOHighCutoff float64 `json:"ciao_high_cutoff,omitempty"`
	// CIAOLowCutoff overrides the CIAO release threshold (paper:
	// 0.005). Ignored for non-CIAO schedulers.
	CIAOLowCutoff float64 `json:"ciao_low_cutoff,omitempty"`
}

// IsZero reports whether the override leaves everything at defaults.
func (o Override) IsZero() bool { return o == Override{} }

// Validate rejects overrides that cannot build a machine, so bad cells
// fail before a worker slot is taken rather than deep inside NewGPU.
func (o Override) Validate() error {
	if o.L1SizeKB < 0 || o.L1Ways < 0 || o.SharedMemKB < 0 || o.WarpsPerSM < 0 ||
		o.VTAEntriesPerWarp < 0 || o.MSHREntries < 0 || o.DRAMBandwidthX < 0 {
		return fmt.Errorf("harness: negative override field")
	}
	if o.WarpsPerSM > 0 && o.WarpsPerSM%workload.DefaultWarpsPerCTA != 0 {
		return fmt.Errorf("harness: warps_per_sm %d not a multiple of the CTA size %d",
			o.WarpsPerSM, workload.DefaultWarpsPerCTA)
	}
	if o.CIAOHighCutoff < 0 || o.CIAOHighCutoff >= 1 || o.CIAOLowCutoff < 0 || o.CIAOLowCutoff >= 1 {
		return fmt.Errorf("harness: CIAO cutoffs must lie in [0,1)")
	}
	// Compare the cutoffs as they will take effect: an unset side keeps
	// its default, so overriding just one can still invert them.
	if o.CIAOHighCutoff > 0 || o.CIAOLowCutoff > 0 {
		def := core.DefaultParams()
		high, low := o.CIAOHighCutoff, o.CIAOLowCutoff
		if high == 0 {
			high = def.HighCutoff
		}
		if low == 0 {
			low = def.LowCutoff
		}
		if low > high {
			return fmt.Errorf("harness: effective ciao_low_cutoff %g above ciao_high_cutoff %g", low, high)
		}
	}
	// Dry-run the config mutation against the defaults to catch
	// geometry errors (non-power-of-two set counts, undersized MSHRs).
	cfg := sm.DefaultConfig()
	cfg.EnableSharedCache = true
	o.applyConfig(&cfg)
	return cfg.Validate()
}

func (o Override) applyConfig(c *sm.Config) {
	if o.L1SizeKB > 0 {
		c.L1.SizeBytes = o.L1SizeKB << 10
	}
	if o.L1Ways > 0 {
		c.L1.Ways = o.L1Ways
	}
	if o.SharedMemKB > 0 {
		c.SharedMemBytes = o.SharedMemKB << 10
	}
	if o.VTAEntriesPerWarp > 0 {
		c.VTAEntriesPerWarp = o.VTAEntriesPerWarp
	}
	if o.MSHREntries > 0 {
		c.MSHREntries = o.MSHREntries
	}
	if o.DRAMBandwidthX > 0 {
		c.L2Config.DRAM.BandwidthMultiplier = o.DRAMBandwidthX
	}
}

// Apply folds the override into opt, chaining after (and therefore on
// top of) any hooks already present.
func (o Override) Apply(opt Options) Options {
	if o.IsZero() {
		return opt
	}
	if o.WarpsPerSM > 0 {
		opt.NumWarps = o.WarpsPerSM
	}
	prevCfg := opt.ConfigHook
	opt.ConfigHook = func(c *sm.Config) {
		if prevCfg != nil {
			prevCfg(c)
		}
		o.applyConfig(c)
	}
	if o.CIAOHighEpoch > 0 || o.CIAOHighCutoff > 0 || o.CIAOLowCutoff > 0 {
		prevCtrl := opt.ControllerHook
		opt.ControllerHook = func(ctrl sm.Controller) {
			if prevCtrl != nil {
				prevCtrl(ctrl)
			}
			c, ok := ctrl.(*core.CIAO)
			if !ok {
				return
			}
			p := c.Params()
			if o.CIAOHighEpoch > 0 {
				p.HighEpoch = o.CIAOHighEpoch
			}
			if o.CIAOHighCutoff > 0 {
				p.HighCutoff = o.CIAOHighCutoff
			}
			if o.CIAOLowCutoff > 0 {
				p.LowCutoff = o.CIAOLowCutoff
			}
			*c = *core.New(c.Mode(), p)
		}
	}
	return opt
}
