package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sm"
	"repro/internal/workload"
)

func TestOverrideValidate(t *testing.T) {
	cases := []struct {
		name string
		o    Override
		want string // "" = valid
	}{
		{"zero", Override{}, ""},
		{"bigger L1", Override{L1SizeKB: 64, L1Ways: 8}, ""},
		{"fermi 48KB mode", Override{L1SizeKB: 48, L1Ways: 6, SharedMemKB: 16}, ""},
		{"warps", Override{WarpsPerSM: 24}, ""},
		{"ciao", Override{CIAOHighEpoch: 1000, CIAOHighCutoff: 0.02, CIAOLowCutoff: 0.01}, ""},
		{"negative", Override{L1SizeKB: -1}, "negative"},
		{"warp granularity", Override{WarpsPerSM: 30}, "warps_per_sm"},
		{"bad sets", Override{L1SizeKB: 17}, "power of two"},
		{"cutoff range", Override{CIAOHighCutoff: 1.5}, "cutoffs"},
		{"inverted cutoffs", Override{CIAOHighCutoff: 0.01, CIAOLowCutoff: 0.02}, "ciao_low_cutoff"},
		// One-sided overrides compare against the defaults they keep
		// (high 0.01, low 0.005).
		{"low above default high", Override{CIAOLowCutoff: 0.02}, "ciao_low_cutoff"},
		{"high below default low", Override{CIAOHighCutoff: 0.003}, "ciao_low_cutoff"},
		{"low below default high", Override{CIAOLowCutoff: 0.008}, ""},
	}
	for _, tc := range cases {
		err := tc.o.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestOverrideApplyConfig(t *testing.T) {
	// An existing hook must run first and stay effective for fields
	// the override leaves alone.
	base := Options{ConfigHook: func(c *sm.Config) { c.MSHRMergeMax = 99 }}
	o := Override{L1SizeKB: 32, L1Ways: 8, SharedMemKB: 32, DRAMBandwidthX: 2, WarpsPerSM: 16}
	opt := o.Apply(base)
	if opt.NumWarps != 16 {
		t.Errorf("NumWarps = %d", opt.NumWarps)
	}
	f, err := SchedulerByName("GTO")
	if err != nil {
		t.Fatal(err)
	}
	cfg := opt.buildConfig(f)
	if cfg.L1.SizeBytes != 32<<10 || cfg.L1.Ways != 8 {
		t.Errorf("L1 = %d bytes %d ways", cfg.L1.SizeBytes, cfg.L1.Ways)
	}
	if cfg.SharedMemBytes != 32<<10 {
		t.Errorf("shared = %d", cfg.SharedMemBytes)
	}
	if cfg.L2Config.DRAM.BandwidthMultiplier != 2 {
		t.Errorf("bandwidth = %d", cfg.L2Config.DRAM.BandwidthMultiplier)
	}
	if cfg.MSHRMergeMax != 99 {
		t.Error("pre-existing ConfigHook was dropped")
	}
}

func TestOverrideApplyCIAO(t *testing.T) {
	o := Override{CIAOHighEpoch: 1234, CIAOHighCutoff: 0.04, CIAOLowCutoff: 0.02}
	opt := o.Apply(Options{})
	if opt.ControllerHook == nil {
		t.Fatal("no controller hook")
	}
	c := core.NewC()
	opt.ControllerHook(c)
	p := c.Params()
	if p.HighEpoch != 1234 || p.HighCutoff != 0.04 || p.LowCutoff != 0.02 {
		t.Errorf("params = %+v", p)
	}
	// Non-CIAO controllers are left alone.
	gto, _ := SchedulerByName("GTO")
	opt.ControllerHook(gto.New()) // must not panic
}

func TestOverrideWarpsReachSimulation(t *testing.T) {
	spec, err := workload.ByName("SYRK")
	if err != nil {
		t.Fatal(err)
	}
	f, err := SchedulerByName("GTO")
	if err != nil {
		t.Fatal(err)
	}
	opt := Override{WarpsPerSM: 16}.Apply(Options{InstrPerWarp: 300})
	r, _, err := RunOne(spec, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.FinishedWarps != 16 {
		t.Errorf("finished warps = %d, want 16", r.FinishedWarps)
	}
}
