package httpx

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
)

// AdmissionConfig tunes overload backpressure for one heavy endpoint.
// The zero value admits everything.
type AdmissionConfig struct {
	// MaxQueue bounds accepted-but-unfinished requests on the wrapped
	// endpoint (the accept queue), and doubles as the ceiling on the
	// Depth signal. 0 disables queue-bound shedding.
	MaxQueue int
	// ShedLatency sheds when the observed recent p95 latency (from P95)
	// exceeds it. 0 disables latency shedding.
	ShedLatency time.Duration
	// Depth, when non-nil, reports a deeper congestion signal — the
	// engine's count of requests waiting for an execution slot, which
	// also covers pressure arriving through other endpoints.
	Depth func() int
	// P95 reports the recent 95th-percentile latency (a metrics.Window
	// over the endpoint's RED series).
	P95 func() time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
}

// Admission applies bounded-accept-queue and latency-degradation
// shedding to one endpoint: requests past the bound answer 429 with
// Retry-After immediately instead of queueing unboundedly, so the
// server keeps answering its control plane at overload. Every shed is
// counted in the endpoint's RED series.
type Admission struct {
	cfg AdmissionConfig
	sem chan struct{}
}

// NewAdmission builds an admission controller; each controller owns
// its own accept queue (wrap /run and /sweeps separately so one cannot
// starve the other).
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	a := &Admission{cfg: cfg}
	if cfg.MaxQueue > 0 {
		a.sem = make(chan struct{}, cfg.MaxQueue)
	}
	return a
}

// Wrap guards next with the admission checks, counting rejections into
// series as shed requests.
func (a *Admission) Wrap(series *metrics.Series, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if a.sem != nil {
			select {
			case a.sem <- struct{}{}:
				defer func() { <-a.sem }()
			default:
				a.shed(w, series, fmt.Sprintf("accept queue full (%d deep)", a.cfg.MaxQueue))
				return
			}
		}
		if a.cfg.Depth != nil && a.cfg.MaxQueue > 0 {
			if d := a.cfg.Depth(); d >= a.cfg.MaxQueue {
				a.shed(w, series, fmt.Sprintf("engine queue depth %d at limit %d", d, a.cfg.MaxQueue))
				return
			}
		}
		if a.cfg.ShedLatency > 0 && a.cfg.P95 != nil {
			if p := a.cfg.P95(); p > a.cfg.ShedLatency {
				a.shed(w, series, fmt.Sprintf("p95 latency %s over shed threshold %s", p.Round(time.Millisecond), a.cfg.ShedLatency))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// shed answers 429 + Retry-After and counts the decision. Failing fast
// is the point: the client learns to back off in microseconds instead
// of occupying a connection for seconds.
func (a *Admission) shed(w http.ResponseWriter, series *metrics.Series, reason string) {
	if series != nil {
		series.CountShed()
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(a.cfg.RetryAfter)))
	Error(w, http.StatusTooManyRequests, fmt.Errorf("server overloaded: %s", reason))
}

// retryAfterSeconds renders a duration as the whole-second Retry-After
// value, rounding up so "500ms" does not become "0".
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
