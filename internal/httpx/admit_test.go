package httpx

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestAdmissionBoundsAcceptQueue(t *testing.T) {
	red := metrics.NewRED()
	series := red.Series("/run")
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	a := NewAdmission(AdmissionConfig{MaxQueue: 2, RetryAfter: 3 * time.Second})
	h := a.Wrap(series, slow)

	var wg sync.WaitGroup
	codes := make(chan int, 8)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("POST", "/run", nil))
			codes <- rr.Code
		}()
	}
	// Wait until both occupy the queue, then the third must shed fast.
	<-entered
	<-entered
	start := time.Now()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/run", nil))
	if el := time.Since(start); el > time.Second {
		t.Fatalf("shed took %s, want fail-fast", el)
	}
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("third request code = %d, want 429", rr.Code)
	}
	ra, err := strconv.Atoi(rr.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", rr.Header().Get("Retry-After"))
	}
	if ra != 3 {
		t.Fatalf("Retry-After = %d, want 3", ra)
	}
	close(release)
	wg.Wait()
	close(codes)
	for c := range codes {
		if c != http.StatusOK {
			t.Fatalf("queued request code = %d, want 200", c)
		}
	}
	if snap := series.Snapshot(); snap.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", snap.Shed)
	}
	// The queue drained: a fresh request is admitted again.
	release2 := func() {} // handler no longer blocks (channel closed)
	_ = release2
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/run", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("post-drain request code = %d, want 200", rr.Code)
	}
}

func TestAdmissionShedsOnDepth(t *testing.T) {
	depth := 10
	a := NewAdmission(AdmissionConfig{MaxQueue: 4, Depth: func() int { return depth }})
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	h := a.Wrap(nil, ok)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/run", nil))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("code with depth 10 >= limit 4 = %d, want 429", rr.Code)
	}
	depth = 0
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/run", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("code with depth 0 = %d, want 200", rr.Code)
	}
}

func TestAdmissionShedsOnLatency(t *testing.T) {
	p95 := 50 * time.Millisecond
	a := NewAdmission(AdmissionConfig{ShedLatency: 100 * time.Millisecond, P95: func() time.Duration { return p95 }})
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	red := metrics.NewRED()
	series := red.Series("/run")
	h := a.Wrap(series, ok)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/run", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("code under threshold = %d, want 200", rr.Code)
	}
	p95 = 250 * time.Millisecond
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/run", nil))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("code over threshold = %d, want 429", rr.Code)
	}
	if snap := series.Snapshot(); snap.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", snap.Shed)
	}
}

func TestAdmissionZeroConfigAdmitsEverything(t *testing.T) {
	a := NewAdmission(AdmissionConfig{})
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	h := a.Wrap(nil, ok)
	for i := 0; i < 50; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("POST", "/run", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("code = %d, want 200", rr.Code)
		}
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1}, {time.Millisecond, 1}, {time.Second, 1}, {1500 * time.Millisecond, 2}, {3 * time.Second, 3},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%s) = %d, want %d", tc.d, got, tc.want)
		}
	}
}
