// Package httpx holds the tiny HTTP helpers shared by every JSON
// surface of the server (service, sweep, coord), so strict-decode and
// error-shape semantics cannot drift between endpoints.
package httpx

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// DecodeStrict reads one JSON value from the request body (bounded by
// limit bytes), rejecting unknown fields and trailing data.
func DecodeStrict(r *http.Request, limit int64, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return errors.New("trailing data after request body")
	}
	return nil
}

// WriteJSON writes v as a JSON response with the given status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// An encode failure past this point cannot be reported: the status
	// line is already on the wire.
	json.NewEncoder(w).Encode(v)
}

// Error writes the canonical {"error": "..."} JSON error body.
func Error(w http.ResponseWriter, code int, err error) {
	WriteJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}
