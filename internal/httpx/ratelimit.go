package httpx

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
)

// ClientIDHeader lets a client name itself for rate-limiting purposes
// (useful behind a shared NAT or proxy); without it the remote address
// host identifies the client.
const ClientIDHeader = "X-Client-ID"

// ClientKey extracts the rate-limit identity of a request.
func ClientKey(r *http.Request) string {
	if id := r.Header.Get(ClientIDHeader); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// RateLimiter is a per-client token bucket: each client accrues rate
// tokens per second up to burst, and a request spends one. A nil
// *RateLimiter admits everything, so a disabled limiter needs no
// branching at the call sites.
type RateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	clients map[string]*tokenBucket
	// maxClients bounds the tracked-client map; reaching it evicts
	// every bucket idle long enough to have fully refilled (forgetting
	// those clients loses nothing — a full bucket is a fresh bucket).
	maxClients int
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter granting rate requests/second with
// the given burst ceiling per client. rate <= 0 returns nil (limiting
// disabled). burst < 1 defaults to max(2×rate, 1).
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = math.Max(2*rate, 1)
	}
	return &RateLimiter{rate: rate, burst: b, clients: map[string]*tokenBucket{}, maxClients: 8192}
}

// Allow reports whether the client may proceed at time now, spending a
// token if so, and the wait until its next token when not.
func (l *RateLimiter) Allow(key string, now time.Time) (ok bool, wait time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	tb, found := l.clients[key]
	if !found {
		if len(l.clients) >= l.maxClients {
			l.evictIdleLocked(now)
		}
		tb = &tokenBucket{tokens: l.burst, last: now}
		l.clients[key] = tb
	} else {
		dt := now.Sub(tb.last).Seconds()
		if dt > 0 {
			tb.tokens = math.Min(l.burst, tb.tokens+dt*l.rate)
			tb.last = now
		}
	}
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	need := (1 - tb.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// evictIdleLocked drops buckets idle long enough to be full again.
// Callers hold l.mu.
func (l *RateLimiter) evictIdleLocked(now time.Time) {
	fullAfter := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, tb := range l.clients {
		if now.Sub(tb.last) >= fullAfter {
			delete(l.clients, k)
		}
	}
}

// Wrap guards next with the limiter, counting rejections into series.
// A nil limiter returns next unchanged.
func (l *RateLimiter) Wrap(series *metrics.Series, next http.Handler) http.Handler {
	if l == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ok, wait := l.Allow(ClientKey(r), time.Now())
		if !ok {
			if series != nil {
				series.CountRateLimited()
			}
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
			Error(w, http.StatusTooManyRequests, fmt.Errorf("rate limit exceeded for client %q", ClientKey(r)))
			return
		}
		next.ServeHTTP(w, r)
	})
}
