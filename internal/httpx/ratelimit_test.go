package httpx

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestRateLimiterTokenBucket(t *testing.T) {
	l := NewRateLimiter(1, 2) // 1 rps, burst 2
	now := time.Now()
	if ok, _ := l.Allow("c", now); !ok {
		t.Fatal("first request denied")
	}
	if ok, _ := l.Allow("c", now); !ok {
		t.Fatal("burst request denied")
	}
	ok, wait := l.Allow("c", now)
	if ok {
		t.Fatal("third instant request admitted past burst")
	}
	if wait <= 0 || wait > 1100*time.Millisecond {
		t.Fatalf("wait = %s, want ~1s", wait)
	}
	// Other clients are independent.
	if ok, _ := l.Allow("other", now); !ok {
		t.Fatal("independent client denied")
	}
	// A second later one token is back.
	if ok, _ := l.Allow("c", now.Add(time.Second)); !ok {
		t.Fatal("refilled token denied")
	}
	// Refill caps at burst.
	later := now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("c", later); !ok {
			t.Fatalf("post-idle request %d denied", i)
		}
	}
	if ok, _ := l.Allow("c", later); ok {
		t.Fatal("burst cap not enforced after idle refill")
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	if l := NewRateLimiter(0, 10); l != nil {
		t.Fatal("rate 0 should disable the limiter")
	}
	var l *RateLimiter
	if ok, _ := l.Allow("c", time.Now()); !ok {
		t.Fatal("nil limiter must admit")
	}
	h := l.Wrap(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) }))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/run", nil))
	if rr.Code != 200 {
		t.Fatalf("nil limiter code = %d", rr.Code)
	}
}

func TestRateLimiterEviction(t *testing.T) {
	l := NewRateLimiter(100, 1)
	l.maxClients = 8
	now := time.Now()
	for i := 0; i < 8; i++ {
		l.Allow(fmt.Sprintf("c%d", i), now)
	}
	// All 8 buckets refill within 10ms (burst 1 / 100 rps); a new
	// client far in the future evicts them rather than growing the map.
	l.Allow("fresh", now.Add(time.Minute))
	l.mu.Lock()
	n := len(l.clients)
	l.mu.Unlock()
	if n != 1 {
		t.Fatalf("tracked clients after eviction = %d, want 1", n)
	}
}

func TestClientKey(t *testing.T) {
	r := httptest.NewRequest("POST", "/run", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if k := ClientKey(r); k != "10.1.2.3" {
		t.Fatalf("key = %q, want host", k)
	}
	r.Header.Set(ClientIDHeader, "tenant-42")
	if k := ClientKey(r); k != "tenant-42" {
		t.Fatalf("key = %q, want header id", k)
	}
}

func TestRateLimiterWrap(t *testing.T) {
	red := metrics.NewRED()
	series := red.Series("/run")
	l := NewRateLimiter(1, 1)
	h := l.Wrap(series, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) }))

	mk := func() *http.Request {
		r := httptest.NewRequest("POST", "/run", nil)
		r.RemoteAddr = "10.0.0.1:1234"
		return r
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, mk())
	if rr.Code != 200 {
		t.Fatalf("first request code = %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, mk())
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("second instant request code = %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	// A different client is unaffected.
	other := mk()
	other.Header.Set(ClientIDHeader, "someone-else")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, other)
	if rr.Code != 200 {
		t.Fatalf("other client code = %d, want 200", rr.Code)
	}
	if snap := series.Snapshot(); snap.RateLimited != 1 {
		t.Fatalf("rate_limited counter = %d, want 1", snap.RateLimited)
	}
}
