package httpx

import (
	"net/http"
	"strings"
	"time"

	"repro/internal/metrics"
)

// RouteClasses is the closed set of labels the RED middleware tags
// requests with. A bounded label set keeps metric cardinality fixed no
// matter what paths clients probe.
var RouteClasses = []string{
	"/run",
	"/experiment",
	"/jobs",
	"/sweeps",
	"/coord/lease",
	"/coord/heartbeat",
	"/coord/complete",
	"admin",
	"probe",
	"other",
}

// RouteClass buckets a request path into one of RouteClasses.
func RouteClass(path string) string {
	switch {
	case path == "/run":
		return "/run"
	case path == "/experiment":
		return "/experiment"
	case path == "/jobs" || strings.HasPrefix(path, "/jobs/"):
		return "/jobs"
	case path == "/sweeps" || strings.HasPrefix(path, "/sweeps/"):
		return "/sweeps"
	case path == "/coord/lease":
		return "/coord/lease"
	case path == "/coord/heartbeat":
		return "/coord/heartbeat"
	case path == "/coord/complete":
		return "/coord/complete"
	case path == "/coord/status" || path == "/coord/adopt" || strings.HasPrefix(path, "/coord/admin"):
		return "admin"
	case path == "/metrics" || path == "/healthz":
		return "probe"
	default:
		return "other"
	}
}

// WantsProm reports whether a /metrics request asked for Prometheus
// text exposition instead of the default JSON: ?format=prom (explicit)
// or an Accept header naming text/plain (how Prometheus scrapes).
// ?format=json forces JSON regardless of Accept.
func WantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "text/plain")
}

// Recorder wraps a ResponseWriter to capture the status code and the
// bytes written, forwarding streaming flushes (the sweep results
// endpoint tails a file through it).
type Recorder struct {
	http.ResponseWriter
	Code  int
	Bytes int64
}

// NewRecorder wraps w; the status defaults to 200 like net/http.
func NewRecorder(w http.ResponseWriter) *Recorder {
	return &Recorder{ResponseWriter: w, Code: http.StatusOK}
}

// WriteHeader records the status code.
func (r *Recorder) WriteHeader(code int) {
	r.Code = code
	r.ResponseWriter.WriteHeader(code)
}

// Write counts response bytes.
func (r *Recorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.Bytes += int64(n)
	return n, err
}

// Flush forwards streaming flushes.
func (r *Recorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Instrument wraps next so every request is timed, classified into a
// route class, and observed into the RED registry (status >= 500
// counts as an error; response bytes accumulate per route). logf, when
// non-nil, sees every request after it completes — the access log.
// Series for every route class are resolved up front, so the request
// path does one read from an immutable map plus the atomic adds of
// Series.Observe.
func Instrument(red *metrics.RED, logf func(r *http.Request, code int, bytes int64, d time.Duration), next http.Handler) http.Handler {
	series := make(map[string]*metrics.Series, len(RouteClasses))
	for _, c := range RouteClasses {
		series[c] = red.Series(c)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := NewRecorder(w)
		next.ServeHTTP(rec, r)
		d := time.Since(start)
		s := series[RouteClass(r.URL.Path)]
		s.Observe(d, rec.Code >= 500)
		s.AddBytes(rec.Bytes)
		if logf != nil {
			logf(r, rec.Code, rec.Bytes, d)
		}
	})
}
