package httpx

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestRouteClass(t *testing.T) {
	cases := map[string]string{
		"/run":                      "/run",
		"/experiment":               "/experiment",
		"/jobs/job-1-abc":           "/jobs",
		"/sweeps":                   "/sweeps",
		"/sweeps/sweep-1-x/results": "/sweeps",
		"/coord/lease":              "/coord/lease",
		"/coord/heartbeat":          "/coord/heartbeat",
		"/coord/complete":           "/coord/complete",
		"/coord/status":             "admin",
		"/coord/adopt":              "admin",
		"/coord/admin/leases":       "admin",
		"/coord/admin/expire":       "admin",
		"/metrics":                  "probe",
		"/healthz":                  "probe",
		"/favicon.ico":              "other",
	}
	known := map[string]bool{}
	for _, c := range RouteClasses {
		known[c] = true
	}
	for path, want := range cases {
		got := RouteClass(path)
		if got != want {
			t.Errorf("RouteClass(%q) = %q, want %q", path, got, want)
		}
		if !known[got] {
			t.Errorf("RouteClass(%q) = %q, not in RouteClasses", path, got)
		}
	}
}

func TestInstrumentObservesAndLogs(t *testing.T) {
	red := metrics.NewRED()
	var logged int
	h := Instrument(red, func(r *http.Request, code int, bytes int64, d time.Duration) {
		logged++
		if code != http.StatusTeapot {
			t.Errorf("logged code = %d, want 418", code)
		}
		if bytes != 4 {
			t.Errorf("logged bytes = %d, want 4", bytes)
		}
	}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("body"))
	}))

	req := httptest.NewRequest("POST", "/run", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if logged != 1 {
		t.Fatalf("logf ran %d times, want 1", logged)
	}
	snap := red.Series("/run").Snapshot()
	if snap.Requests != 1 {
		t.Fatalf("requests = %d, want 1", snap.Requests)
	}
	if snap.Errors != 0 {
		t.Fatalf("418 counted as error")
	}
	if snap.Bytes != 4 {
		t.Fatalf("bytes = %d, want 4", snap.Bytes)
	}
}

func TestInstrumentCountsServerErrors(t *testing.T) {
	red := metrics.NewRED()
	h := Instrument(red, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/sweeps", nil))
	snap := red.Series("/sweeps").Snapshot()
	if snap.Requests != 1 || snap.Errors != 1 {
		t.Fatalf("requests/errors = %d/%d, want 1/1", snap.Requests, snap.Errors)
	}
}

func TestWantsProm(t *testing.T) {
	mk := func(url, accept string) *http.Request {
		r := httptest.NewRequest("GET", url, nil)
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		return r
	}
	if WantsProm(mk("/metrics", "")) {
		t.Fatal("bare request should default to JSON")
	}
	if !WantsProm(mk("/metrics?format=prom", "")) {
		t.Fatal("?format=prom should pick exposition format")
	}
	if !WantsProm(mk("/metrics", "text/plain;version=0.0.4")) {
		t.Fatal("Accept: text/plain should pick exposition format")
	}
	if WantsProm(mk("/metrics?format=json", "text/plain")) {
		t.Fatal("?format=json must override Accept")
	}
	if WantsProm(mk("/metrics", "application/json")) {
		t.Fatal("Accept: application/json should stay JSON")
	}
}

func TestRecorderCapturesStreaming(t *testing.T) {
	rr := httptest.NewRecorder()
	rec := NewRecorder(rr)
	if rec.Code != http.StatusOK {
		t.Fatalf("default code = %d", rec.Code)
	}
	rec.Write([]byte("abc"))
	rec.Flush() // must not panic; httptest.ResponseRecorder implements Flusher
	rec.Write([]byte("de"))
	if rec.Bytes != 5 {
		t.Fatalf("bytes = %d, want 5", rec.Bytes)
	}
	if got := rr.Body.String(); !strings.HasPrefix(got, "abcde") {
		t.Fatalf("body = %q", got)
	}
}
