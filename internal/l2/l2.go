// Package l2 models the 768KB shared L2 cache of Table I (8-way,
// write-allocate, write-back, LRU, 128B lines) backed by the GDDR5
// model. Like the real GTX480, the L2 is split into partitions — six
// 128KB slices, one per memory channel — so that each partition has a
// power-of-two set count; lines interleave across partitions.
//
// The package exposes a latency-oracle interface: Access(now, addr)
// returns the completion cycle, advancing partition pipeline and DRAM
// state. This is the contract the SM model builds its fill events on.
package l2

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/memory"
)

// Config shapes the L2 and its backing DRAM.
type Config struct {
	// TotalBytes is the aggregate capacity (Table I: 768KB).
	TotalBytes int
	// Partitions is the number of slices (GTX480: 6 channels).
	Partitions int
	// Ways is the associativity (Table I: 8).
	Ways int
	// Latency is the interconnect + pipeline latency from L1 miss to
	// L2 lookup, in cycles.
	Latency int
	// ServiceCycles is how long one access occupies its slice — the
	// per-SM share of L2 slice throughput. Accesses to a busy slice
	// queue behind it.
	ServiceCycles int
	// UseXORHash enables XOR set hashing within each partition.
	UseXORHash bool
	// DRAM configures the backing memory.
	DRAM dram.Config
}

// DefaultConfig returns the Table I L2 configuration.
func DefaultConfig() Config {
	return Config{
		TotalBytes:    768 << 10,
		Partitions:    6,
		Ways:          8,
		Latency:       180,
		ServiceCycles: 6,
		UseXORHash:    true,
		DRAM:          dram.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Partitions <= 0 {
		return fmt.Errorf("l2: non-positive partition count")
	}
	if c.TotalBytes%c.Partitions != 0 {
		return fmt.Errorf("l2: %dB not divisible into %d partitions", c.TotalBytes, c.Partitions)
	}
	per := cache.Config{
		Name:      "L2-slice",
		SizeBytes: c.TotalBytes / c.Partitions,
		Ways:      c.Ways,
		Write:     cache.WriteBackAllocate,
	}
	if err := per.Validate(); err != nil {
		return err
	}
	return c.DRAM.Validate()
}

// Stats aggregates L2 activity across partitions.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// HitRate returns Hits/Accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// L2 is the partitioned second-level cache plus DRAM.
type L2 struct {
	cfg      Config
	slices   []*cache.Cache
	busyTill []uint64 // per-slice service cursor
	mem      *dram.DRAM
	stats    Stats
}

// New builds the L2 from cfg.
func New(cfg Config) *L2 {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	slices := make([]*cache.Cache, cfg.Partitions)
	for i := range slices {
		slices[i] = cache.New(cache.Config{
			Name:       fmt.Sprintf("L2[%d]", i),
			SizeBytes:  cfg.TotalBytes / cfg.Partitions,
			Ways:       cfg.Ways,
			Write:      cache.WriteBackAllocate,
			UseXORHash: cfg.UseXORHash,
		})
	}
	return &L2{
		cfg:      cfg,
		slices:   slices,
		busyTill: make([]uint64, cfg.Partitions),
		mem:      dram.New(cfg.DRAM),
	}
}

// Config returns the configuration.
func (l *L2) Config() Config { return l.cfg }

// DRAM exposes the backing memory (for bandwidth probes by statPCAL).
func (l *L2) DRAM() *dram.DRAM { return l.mem }

func (l *L2) sliceIndex(addr memory.Addr) int {
	return int(addr.LineIndex()) % l.cfg.Partitions
}

func (l *L2) slice(addr memory.Addr) *cache.Cache {
	return l.slices[l.sliceIndex(addr)]
}

// occupySlice models the slice's service throughput: the access starts
// when both the request has arrived and the slice is free.
func (l *L2) occupySlice(si int, arrive uint64) (serviceDone uint64) {
	start := arrive
	if l.busyTill[si] > start {
		start = l.busyTill[si]
	}
	sc := uint64(l.cfg.ServiceCycles)
	if sc == 0 {
		sc = 1
	}
	l.busyTill[si] = start + sc
	return start + sc
}

// Access serves a read or write arriving from an SM at cycle now and
// returns the completion cycle and where the data was found. An L2
// miss fetches the line from DRAM (write-allocate) and installs it; a
// dirty eviction performs a write-back.
func (l *L2) Access(now uint64, addr memory.Addr, wid int, isWrite bool) (done uint64, level memory.HitLevel) {
	arrive := now + uint64(l.cfg.Latency)
	si := l.sliceIndex(addr)
	s := l.slices[si]
	served := l.occupySlice(si, arrive)
	l.stats.Accesses++
	if s.Access(addr, wid, served, isWrite) {
		l.stats.Hits++
		return served, memory.HitL2
	}
	l.stats.Misses++
	if isWrite {
		// Fetch-on-write is skipped: a coalesced 128B store overwrites
		// the whole line, so the slice installs it directly and marks
		// it dirty. Only the eventual write-back consumes DRAM.
		ev, evicted := s.Fill(addr, wid, served)
		if evicted && ev.Dirty {
			l.mem.Service(served, ev.Line, true)
		}
		s.Access(addr, wid, served, true)
		l.stats.Accesses-- // internal touch, not an SM access
		l.stats.Hits--
		return served + 1, memory.HitL2
	}
	fillDone := l.mem.Service(served, addr, false)
	ev, evicted := s.Fill(addr, wid, fillDone)
	if evicted && ev.Dirty {
		// Write-back consumes DRAM bandwidth but is off the critical
		// path of the fill.
		l.mem.Service(fillDone, ev.Line, true)
	}
	return fillDone + 1, memory.HitDRAM
}

// Bypass services a request directly from DRAM without touching the L2
// tags — the statPCAL bypass path (L1D and L2 are skipped; the warp
// pays the full DRAM latency but avoids polluting the caches).
func (l *L2) Bypass(now uint64, addr memory.Addr, isWrite bool) (done uint64) {
	arrive := now + uint64(l.cfg.Latency)
	return l.mem.Service(arrive, addr, isWrite)
}

// Stats returns a snapshot of the L2 statistics.
func (l *L2) Stats() Stats { return l.stats }

// ResetStats clears counters on the L2 and DRAM.
func (l *L2) ResetStats() {
	l.stats = Stats{}
	l.mem.ResetStats()
	for _, s := range l.slices {
		s.ResetStats()
	}
}
