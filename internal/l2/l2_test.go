package l2

import (
	"testing"

	"repro/internal/memory"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// 768KB / 6 partitions / 8 ways / 128B = 128 sets per slice.
	cfg := DefaultConfig()
	per := cfg.TotalBytes / cfg.Partitions / cfg.Ways / memory.LineSize
	if per != 128 {
		t.Fatalf("sets per slice = %d, want 128", per)
	}
}

func TestMissThenHit(t *testing.T) {
	l := New(DefaultConfig())
	done1, level1 := l.Access(0, 0x10000, 0, false)
	if level1 != memory.HitDRAM {
		t.Fatalf("cold access level = %v, want DRAM", level1)
	}
	if done1 <= uint64(l.Config().Latency) {
		t.Fatalf("miss done = %d, too fast", done1)
	}
	done2, level2 := l.Access(done1, 0x10000, 0, false)
	if level2 != memory.HitL2 {
		t.Fatalf("second access level = %v, want L2", level2)
	}
	wantDone := done1 + uint64(l.Config().Latency) + uint64(l.Config().ServiceCycles)
	if done2 != wantDone {
		t.Fatalf("hit done = %d, want %d", done2, wantDone)
	}
}

func TestPartitionInterleaving(t *testing.T) {
	l := New(DefaultConfig())
	seen := map[int]bool{}
	for i := 0; i < l.cfg.Partitions; i++ {
		a := memory.Addr(i) * memory.LineSize
		for j, s := range l.slices {
			if s == l.slice(a) {
				seen[j] = true
			}
		}
	}
	if len(seen) != l.cfg.Partitions {
		t.Fatalf("%d consecutive lines hit %d partitions, want %d",
			l.cfg.Partitions, len(seen), l.cfg.Partitions)
	}
}

func TestWriteAllocateNoFetch(t *testing.T) {
	l := New(DefaultConfig())
	// A cold coalesced store installs the full line directly without a
	// DRAM fetch (fetch-on-write elision), completing at L2 speed.
	done, level := l.Access(0, 0x4000, 1, true)
	if level != memory.HitL2 {
		t.Fatalf("cold write level = %v, want L2 (no fetch)", level)
	}
	if reads := l.DRAM().Stats().Reads; reads != 0 {
		t.Fatalf("cold write fetched %d lines from DRAM", reads)
	}
	// Line must now be resident (write-allocate).
	_, level = l.Access(done, 0x4000, 1, false)
	if level != memory.HitL2 {
		t.Fatalf("read after write-allocate = %v, want L2 hit", level)
	}
	// The dirty line's eventual eviction performs the write-back.
	if dirty := l.slice(0x4000).Flush(); dirty != 1 {
		t.Fatalf("dirty lines after store = %d, want 1", dirty)
	}
}

func TestBypassSkipsL2Tags(t *testing.T) {
	l := New(DefaultConfig())
	done := l.Bypass(0, 0x8000, false)
	if done == 0 {
		t.Fatal("bypass returned zero completion")
	}
	if l.Stats().Accesses != 0 {
		t.Fatal("bypass touched L2 stats")
	}
	// The line must NOT be resident after a bypass.
	_, level := l.Access(done, 0x8000, 0, false)
	if level != memory.HitDRAM {
		t.Fatalf("bypassed line resident in L2: %v", level)
	}
}

func TestStatsAndReset(t *testing.T) {
	l := New(DefaultConfig())
	l.Access(0, 0x0, 0, false)
	d, _ := l.Access(1000, 0x0, 0, false)
	_ = d
	s := l.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if hr := s.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %f, want 0.5", hr)
	}
	l.ResetStats()
	if l.Stats().Accesses != 0 || l.DRAM().Stats().Reads != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestValidateRejectsBadPartitioning(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Partitions = 7 // 768KB/7 is not an integer
	if cfg.Validate() == nil {
		t.Fatal("indivisible partitioning accepted")
	}
	cfg = DefaultConfig()
	cfg.Partitions = 0
	if cfg.Validate() == nil {
		t.Fatal("zero partitions accepted")
	}
}

func TestL2MissLatencyExceedsHitLatency(t *testing.T) {
	l := New(DefaultConfig())
	missDone, _ := l.Access(0, 0x100000, 0, false)
	hitDone, _ := l.Access(0, 0x100000, 0, false) // now resident
	missLat := missDone
	hitLat := hitDone
	if hitLat >= missLat {
		t.Fatalf("hit latency %d not below miss latency %d", hitLat, missLat)
	}
}
