// Package memory provides the fundamental memory-system types shared by
// every level of the simulated GPU memory hierarchy: global addresses,
// cache-line arithmetic, set-index hashing, memory requests, MSHRs and
// the queues that connect L1D, shared memory, L2 and DRAM.
//
// The models follow the GTX480-like configuration the CIAO paper uses
// (Table I): 128-byte cache lines, XOR-based set-index hashing at L1D
// and L2 (after Nugteren et al., "A detailed GPU cache model based on
// reuse distance theory", HPCA 2014).
package memory

import "fmt"

// Addr is a global memory byte address.
type Addr uint64

// LineSize is the cache line size in bytes used throughout the
// hierarchy (Table I: 128B lines at both L1D and L2).
const LineSize = 128

// LineShift is log2(LineSize).
const LineShift = 7

// LineAddr returns the address truncated to its cache line.
func (a Addr) LineAddr() Addr { return a &^ (LineSize - 1) }

// LineIndex returns the global line number of the address.
func (a Addr) LineIndex() uint64 { return uint64(a) >> LineShift }

// Offset returns the byte offset of the address within its line.
func (a Addr) Offset() uint32 { return uint32(a) & (LineSize - 1) }

// String renders the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// SetIndexer maps a line address to a cache set. Implementations must
// be pure functions of the address.
type SetIndexer interface {
	// SetIndex returns the set for the given address; the result must
	// be in [0, NumSets()).
	SetIndex(a Addr) uint32
	// NumSets reports how many sets the indexer distributes over.
	NumSets() uint32
}

// ModuloIndexer is the conventional power-of-two modulo set indexing:
// set = (addr >> lineShift) mod numSets.
type ModuloIndexer struct {
	Sets uint32
}

// SetIndex implements SetIndexer.
func (m ModuloIndexer) SetIndex(a Addr) uint32 {
	return uint32(a.LineIndex()) & (m.Sets - 1)
}

// NumSets implements SetIndexer.
func (m ModuloIndexer) NumSets() uint32 { return m.Sets }

// XORIndexer implements the XOR-based set-index hashing the paper adds
// to both L1D and L2 ("we enhance the baseline L1D and L2 caches with a
// XOR-based set index hashing technique [26], making it close to the
// real GPU device's configuration"). The set index is the XOR of
// consecutive index-width bit groups of the line number, which spreads
// power-of-two strides across sets.
type XORIndexer struct {
	Sets uint32 // must be a power of two
	bits uint32 // log2(Sets), computed lazily
}

// NewXORIndexer returns an XORIndexer over sets, which must be a
// power of two.
func NewXORIndexer(sets uint32) *XORIndexer {
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("memory: XORIndexer sets %d is not a power of two", sets))
	}
	return &XORIndexer{Sets: sets, bits: log2u32(sets)}
}

// SetIndex implements SetIndexer.
func (x *XORIndexer) SetIndex(a Addr) uint32 {
	if x.bits == 0 {
		x.bits = log2u32(x.Sets)
	}
	line := a.LineIndex()
	mask := uint64(x.Sets - 1)
	idx := uint64(0)
	// Fold the line number into the index width, XORing each group.
	for line != 0 {
		idx ^= line & mask
		line >>= x.bits
	}
	return uint32(idx)
}

// NumSets implements SetIndexer.
func (x *XORIndexer) NumSets() uint32 { return x.Sets }

func log2u32(v uint32) uint32 {
	var n uint32
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
