package memory

import (
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	cases := []struct {
		in, want Addr
	}{
		{0, 0},
		{1, 0},
		{127, 0},
		{128, 128},
		{129, 128},
		{255, 128},
		{0xdeadbeef, 0xdeadbe80},
	}
	for _, c := range cases {
		if got := c.in.LineAddr(); got != c.want {
			t.Errorf("LineAddr(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestLineIndexOffsetRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		recon := Addr(addr.LineIndex()<<LineShift) + Addr(addr.Offset())
		return recon == addr && addr.Offset() < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModuloIndexerRange(t *testing.T) {
	m := ModuloIndexer{Sets: 32}
	for a := Addr(0); a < 64*LineSize; a += LineSize {
		if s := m.SetIndex(a); s >= 32 {
			t.Fatalf("SetIndex(%s) = %d out of range", a, s)
		}
	}
	// Consecutive lines map to consecutive sets.
	if m.SetIndex(0) != 0 || m.SetIndex(LineSize) != 1 {
		t.Errorf("modulo indexing wrong: set(0)=%d set(128)=%d", m.SetIndex(0), m.SetIndex(LineSize))
	}
	// Wraps at Sets lines.
	if m.SetIndex(32*LineSize) != 0 {
		t.Errorf("expected wrap to set 0, got %d", m.SetIndex(32*LineSize))
	}
}

func TestXORIndexerRange(t *testing.T) {
	x := NewXORIndexer(32)
	f := func(a uint64) bool { return x.SetIndex(Addr(a)) < 32 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORIndexerPureFunction(t *testing.T) {
	x := NewXORIndexer(64)
	f := func(a uint64) bool {
		return x.SetIndex(Addr(a)) == x.SetIndex(Addr(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestXORIndexerSpreadsPowerOfTwoStrides is the raison d'être of XOR
// hashing: a stride equal to Sets*LineSize maps every access to the
// same set under modulo indexing but should spread under XOR hashing.
func TestXORIndexerSpreadsPowerOfTwoStrides(t *testing.T) {
	const sets = 32
	mod := ModuloIndexer{Sets: sets}
	xor := NewXORIndexer(sets)

	stride := Addr(sets * LineSize)
	modSets := map[uint32]bool{}
	xorSets := map[uint32]bool{}
	for i := 0; i < 64; i++ {
		a := Addr(i) * stride
		modSets[mod.SetIndex(a)] = true
		xorSets[xor.SetIndex(a)] = true
	}
	if len(modSets) != 1 {
		t.Fatalf("modulo should conflict on power-of-two stride, got %d sets", len(modSets))
	}
	if len(xorSets) < sets/2 {
		t.Errorf("XOR hashing spread only %d/%d sets for power-of-two stride", len(xorSets), sets)
	}
}

func TestNewXORIndexerRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two set count")
		}
	}()
	NewXORIndexer(48)
}

func TestAccessKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Errorf("unexpected kind strings: %v %v", Load, Store)
	}
	if !Store.IsWrite() || Load.IsWrite() {
		t.Error("IsWrite misclassifies")
	}
	if !SharedLoad.IsShared() || Load.IsShared() {
		t.Error("IsShared misclassifies")
	}
}

func TestResponseLatency(t *testing.T) {
	r := Response{Req: Request{IssueCycle: 10}, DoneCycle: 110}
	if r.Latency() != 100 {
		t.Errorf("latency = %d, want 100", r.Latency())
	}
	r = Response{Req: Request{IssueCycle: 10}, DoneCycle: 5}
	if r.Latency() != 0 {
		t.Errorf("clamped latency = %d, want 0", r.Latency())
	}
}
