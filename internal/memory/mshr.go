package memory

import "fmt"

// MSHREntry tracks one outstanding line miss and the requests merged
// into it. CIAO augments each entry with the translated shared-memory
// address so that a fill returning from L2 can be steered directly
// into the shared-memory cache (Section IV-B, "Datapath connection").
type MSHREntry struct {
	// Line is the missing global line address.
	Line Addr
	// Merged are the requests waiting on this line, in arrival order.
	Merged []Request
	// SharedAddr, when SharedValid, is the translated shared-memory
	// address the fill should be written to instead of L1D.
	SharedAddr uint32
	// SharedValid reports whether SharedAddr is meaningful.
	SharedValid bool
	// ResponsePtr, when ResponseValid, points at a response-queue slot
	// holding the single data copy migrated out of L1D (the paper's
	// L1D→shared-memory migration path).
	ResponsePtr int
	// ResponseValid reports whether ResponsePtr is meaningful.
	ResponseValid bool
}

// MSHR is a miss status holding register file: a bounded table of
// outstanding line misses with request merging.
//
// Entries are pooled: Fill recycles the retired entry's storage into a
// free list that the next Allocate reuses (including the Merged slice's
// backing array), so the steady-state miss path performs no heap
// allocation. Consequently an entry returned by Fill (or Lookup) is
// only valid until the next Allocate call — callers must finish
// walking Merged before issuing new misses, which the single-threaded
// cycle loop does naturally.
type MSHR struct {
	capacity      int
	maxMergedPer  int
	entries       map[Addr]*MSHREntry
	free          []*MSHREntry // recycled entries, LIFO
	stalls        uint64
	mergeCount    uint64
	allocations   uint64
	mergeRejected uint64
}

// NewMSHR returns an MSHR with the given number of entries and maximum
// merged requests per entry. Both must be positive. The entry pool and
// per-entry merge slices are preallocated up front.
func NewMSHR(entries, maxMergedPerEntry int) *MSHR {
	if entries <= 0 || maxMergedPerEntry <= 0 {
		panic(fmt.Sprintf("memory: invalid MSHR shape %d×%d", entries, maxMergedPerEntry))
	}
	m := &MSHR{
		capacity:     entries,
		maxMergedPer: maxMergedPerEntry,
		entries:      make(map[Addr]*MSHREntry, entries),
		free:         make([]*MSHREntry, 0, entries),
	}
	backing := make([]MSHREntry, entries)
	for i := range backing {
		backing[i].Merged = make([]Request, 0, maxMergedPerEntry)
		m.free = append(m.free, &backing[i])
	}
	return m
}

// Lookup returns the entry for the line, or nil.
func (m *MSHR) Lookup(line Addr) *MSHREntry {
	return m.entries[line.LineAddr()]
}

// CanAllocate reports whether a new miss for line could be accepted,
// either by merging or by allocating a fresh entry.
func (m *MSHR) CanAllocate(line Addr) bool {
	line = line.LineAddr()
	if e, ok := m.entries[line]; ok {
		return len(e.Merged) < m.maxMergedPer
	}
	return len(m.entries) < m.capacity
}

// Allocate records a miss for req's line. It returns the entry and
// whether the request was merged into an existing miss (true) or
// allocated a new one (false). Callers must check CanAllocate first;
// Allocate panics on structural overflow to surface modelling bugs.
func (m *MSHR) Allocate(req Request) (entry *MSHREntry, merged bool) {
	line := req.Addr.LineAddr()
	if e, ok := m.entries[line]; ok {
		if len(e.Merged) >= m.maxMergedPer {
			panic("memory: MSHR merge overflow; call CanAllocate first")
		}
		e.Merged = append(e.Merged, req)
		m.mergeCount++
		return e, true
	}
	if len(m.entries) >= m.capacity {
		panic("memory: MSHR entry overflow; call CanAllocate first")
	}
	var e *MSHREntry
	if n := len(m.free); n > 0 {
		e = m.free[n-1]
		m.free = m.free[:n-1]
		*e = MSHREntry{Line: line, Merged: append(e.Merged[:0], req)}
	} else {
		e = &MSHREntry{Line: line, Merged: []Request{req}}
	}
	m.entries[line] = e
	m.allocations++
	return e, false
}

// NoteStall records that a request could not be accepted this cycle
// (structural hazard), for statistics.
func (m *MSHR) NoteStall() { m.stalls++ }

// Fill completes the miss for line, removes its entry and returns it.
// Fill returns nil if the line has no outstanding entry. The returned
// entry's storage is recycled: its contents (notably Merged) are valid
// only until the next Allocate call.
func (m *MSHR) Fill(line Addr) *MSHREntry {
	line = line.LineAddr()
	e, ok := m.entries[line]
	if !ok {
		return nil
	}
	delete(m.entries, line)
	m.free = append(m.free, e)
	return e
}

// Outstanding reports the number of live entries.
func (m *MSHR) Outstanding() int { return len(m.entries) }

// Capacity reports the maximum number of entries.
func (m *MSHR) Capacity() int { return m.capacity }

// Stats reports cumulative allocation, merge and structural-stall
// counts.
func (m *MSHR) Stats() (allocations, merges, stalls uint64) {
	return m.allocations, m.mergeCount, m.stalls
}

// Reset clears all entries and statistics, recycling live entries into
// the pool.
func (m *MSHR) Reset() {
	for line, e := range m.entries {
		delete(m.entries, line)
		m.free = append(m.free, e)
	}
	m.stalls, m.mergeCount, m.allocations, m.mergeRejected = 0, 0, 0, 0
}
