package memory

import (
	"fmt"
	"math/bits"
)

// MSHREntry tracks one outstanding line miss and the requests merged
// into it. CIAO augments each entry with the translated shared-memory
// address so that a fill returning from L2 can be steered directly
// into the shared-memory cache (Section IV-B, "Datapath connection").
type MSHREntry struct {
	// Line is the missing global line address.
	Line Addr
	// Merged are the requests waiting on this line, in arrival order.
	Merged []Request
	// SharedAddr, when SharedValid, is the translated shared-memory
	// address the fill should be written to instead of L1D.
	SharedAddr uint32
	// SharedValid reports whether SharedAddr is meaningful.
	SharedValid bool
	// ResponsePtr, when ResponseValid, points at a response-queue slot
	// holding the single data copy migrated out of L1D (the paper's
	// L1D→shared-memory migration path).
	ResponsePtr int
	// ResponseValid reports whether ResponsePtr is meaningful.
	ResponseValid bool
}

// MSHR is a miss status holding register file: a bounded table of
// outstanding line misses with request merging.
//
// Lookups go through a small open-addressed hash table (linear
// probing, backward-shift deletion) instead of a Go map: the table has
// at most a few dozen live entries but sits on the per-access hot path
// of every cache level, where the map's generic hashing and bucket
// walk were ~9% of simulation CPU. Sized at ≥2× capacity the table
// always has empty slots, so probes terminate without tombstones.
//
// Entries are pooled: Fill recycles the retired entry's storage into a
// free list that the next Allocate reuses (including the Merged slice's
// backing array), so the steady-state miss path performs no heap
// allocation. Consequently an entry returned by Fill (or Lookup) is
// only valid until the next Allocate call — callers must finish
// walking Merged before issuing new misses, which the single-threaded
// cycle loop does naturally.
type MSHR struct {
	capacity      int
	maxMergedPer  int
	slots         []*MSHREntry // open-addressed by line address
	mask          int          // len(slots)-1; len is a power of two
	shift         uint         // 64 - log2(len(slots)), for the hash
	live          int
	free          []*MSHREntry // recycled entries, LIFO
	stalls        uint64
	mergeCount    uint64
	allocations   uint64
	mergeRejected uint64
}

// NewMSHR returns an MSHR with the given number of entries and maximum
// merged requests per entry. Both must be positive. The entry pool,
// per-entry merge slices and the probe table are preallocated up front.
func NewMSHR(entries, maxMergedPerEntry int) *MSHR {
	if entries <= 0 || maxMergedPerEntry <= 0 {
		panic(fmt.Sprintf("memory: invalid MSHR shape %d×%d", entries, maxMergedPerEntry))
	}
	size := 1 << bits.Len(uint(2*entries-1)) // next power of two ≥ 2×entries
	if size < 8 {
		size = 8
	}
	m := &MSHR{
		capacity:     entries,
		maxMergedPer: maxMergedPerEntry,
		slots:        make([]*MSHREntry, size),
		mask:         size - 1,
		shift:        uint(64 - bits.TrailingZeros(uint(size))),
		free:         make([]*MSHREntry, 0, entries),
	}
	backing := make([]MSHREntry, entries)
	for i := range backing {
		backing[i].Merged = make([]Request, 0, maxMergedPerEntry)
		m.free = append(m.free, &backing[i])
	}
	return m
}

// home is the preferred slot of a line: a Fibonacci multiplicative
// hash taking the top bits, which spreads the zeroed low line-offset
// bits well.
func (m *MSHR) home(line Addr) int {
	return int((uint64(line) * 0x9E3779B97F4A7C15) >> m.shift)
}

// findSlot linearly probes from the line's home slot, returning the
// slot holding the line's entry, or the first empty slot (entry nil)
// where it would be inserted. The table is never full, so the probe
// always terminates.
func (m *MSHR) findSlot(line Addr) (int, *MSHREntry) {
	i := m.home(line)
	for {
		e := m.slots[i]
		if e == nil || e.Line == line {
			return i, e
		}
		i = (i + 1) & m.mask
	}
}

// removeSlot vacates slot i and backward-shifts the probe chain so no
// entry is stranded behind an empty slot (tombstone-free deletion).
func (m *MSHR) removeSlot(i int) {
	m.slots[i] = nil
	j := i
	for {
		j = (j + 1) & m.mask
		e := m.slots[j]
		if e == nil {
			return
		}
		// Shift e into the hole iff the hole lies on its probe path,
		// i.e. its home precedes the hole cyclically.
		h := m.home(e.Line)
		if (j-h)&m.mask >= (j-i)&m.mask {
			m.slots[i] = e
			m.slots[j] = nil
			i = j
		}
	}
}

// Lookup returns the entry for the line, or nil.
func (m *MSHR) Lookup(line Addr) *MSHREntry {
	_, e := m.findSlot(line.LineAddr())
	return e
}

// CanAllocate reports whether a new miss for line could be accepted,
// either by merging or by allocating a fresh entry.
func (m *MSHR) CanAllocate(line Addr) bool {
	if _, e := m.findSlot(line.LineAddr()); e != nil {
		return len(e.Merged) < m.maxMergedPer
	}
	return m.live < m.capacity
}

// Allocate records a miss for req's line. It returns the entry and
// whether the request was merged into an existing miss (true) or
// allocated a new one (false). Callers must check CanAllocate first;
// Allocate panics on structural overflow to surface modelling bugs.
func (m *MSHR) Allocate(req Request) (entry *MSHREntry, merged bool) {
	line := req.Addr.LineAddr()
	i, e := m.findSlot(line)
	if e != nil {
		if len(e.Merged) >= m.maxMergedPer {
			panic("memory: MSHR merge overflow; call CanAllocate first")
		}
		e.Merged = append(e.Merged, req)
		m.mergeCount++
		return e, true
	}
	if m.live >= m.capacity {
		panic("memory: MSHR entry overflow; call CanAllocate first")
	}
	if n := len(m.free); n > 0 {
		e = m.free[n-1]
		m.free = m.free[:n-1]
		*e = MSHREntry{Line: line, Merged: append(e.Merged[:0], req)}
	} else {
		e = &MSHREntry{Line: line, Merged: []Request{req}}
	}
	m.slots[i] = e
	m.live++
	m.allocations++
	return e, false
}

// NoteStall records that a request could not be accepted this cycle
// (structural hazard), for statistics.
func (m *MSHR) NoteStall() { m.stalls++ }

// Fill completes the miss for line, removes its entry and returns it.
// Fill returns nil if the line has no outstanding entry. The returned
// entry's storage is recycled: its contents (notably Merged) are valid
// only until the next Allocate call.
func (m *MSHR) Fill(line Addr) *MSHREntry {
	line = line.LineAddr()
	i, e := m.findSlot(line)
	if e == nil {
		return nil
	}
	m.removeSlot(i)
	m.live--
	m.free = append(m.free, e)
	return e
}

// Outstanding reports the number of live entries.
func (m *MSHR) Outstanding() int { return m.live }

// Capacity reports the maximum number of entries.
func (m *MSHR) Capacity() int { return m.capacity }

// Stats reports cumulative allocation, merge and structural-stall
// counts.
func (m *MSHR) Stats() (allocations, merges, stalls uint64) {
	return m.allocations, m.mergeCount, m.stalls
}

// Reset clears all entries and statistics, recycling live entries into
// the pool.
func (m *MSHR) Reset() {
	for i, e := range m.slots {
		if e != nil {
			m.slots[i] = nil
			m.free = append(m.free, e)
		}
	}
	m.live = 0
	m.stalls, m.mergeCount, m.allocations, m.mergeRejected = 0, 0, 0, 0
}
