package memory

import (
	"testing"
	"testing/quick"
)

func TestMSHRAllocateAndMerge(t *testing.T) {
	m := NewMSHR(4, 2)
	r1 := Request{Addr: 0x1000, WarpID: 1}
	r2 := Request{Addr: 0x1040, WarpID: 2} // same 128B line
	r3 := Request{Addr: 0x2000, WarpID: 3} // different line

	e1, merged := m.Allocate(r1)
	if merged {
		t.Fatal("first allocation reported as merge")
	}
	if e1.Line != 0x1000 {
		t.Fatalf("entry line = %s, want 0x1000", e1.Line)
	}
	e2, merged := m.Allocate(r2)
	if !merged || e2 != e1 {
		t.Fatal("same-line request should merge into the existing entry")
	}
	if len(e1.Merged) != 2 {
		t.Fatalf("merged count = %d, want 2", len(e1.Merged))
	}
	if _, merged := m.Allocate(r3); merged {
		t.Fatal("distinct line should not merge")
	}
	if m.Outstanding() != 2 {
		t.Fatalf("outstanding = %d, want 2", m.Outstanding())
	}
}

func TestMSHRCanAllocateLimits(t *testing.T) {
	m := NewMSHR(1, 2)
	m.Allocate(Request{Addr: 0x1000})
	if m.CanAllocate(0x3000) {
		t.Error("full MSHR should reject new lines")
	}
	if !m.CanAllocate(0x1010) {
		t.Error("same-line merge should be allowed below merge cap")
	}
	m.Allocate(Request{Addr: 0x1010})
	if m.CanAllocate(0x1020) {
		t.Error("merge cap reached; should reject")
	}
}

func TestMSHRFill(t *testing.T) {
	m := NewMSHR(4, 8)
	m.Allocate(Request{Addr: 0x1000, WarpID: 7})
	m.Allocate(Request{Addr: 0x1040, WarpID: 9})

	e := m.Fill(0x1008) // any address within the line
	if e == nil {
		t.Fatal("fill returned nil for outstanding line")
	}
	if len(e.Merged) != 2 {
		t.Fatalf("fill returned %d merged requests, want 2", len(e.Merged))
	}
	if m.Outstanding() != 0 {
		t.Fatalf("outstanding after fill = %d, want 0", m.Outstanding())
	}
	if m.Fill(0x1000) != nil {
		t.Error("double fill should return nil")
	}
}

func TestMSHRSharedAddrExtension(t *testing.T) {
	m := NewMSHR(2, 2)
	e, _ := m.Allocate(Request{Addr: 0x8000})
	e.SharedAddr = 0x1234
	e.SharedValid = true
	got := m.Fill(0x8000)
	if !got.SharedValid || got.SharedAddr != 0x1234 {
		t.Error("CIAO shared-address extension not preserved across fill")
	}
}

func TestMSHRStats(t *testing.T) {
	m := NewMSHR(2, 2)
	m.Allocate(Request{Addr: 0x0})
	m.Allocate(Request{Addr: 0x10})
	m.NoteStall()
	alloc, merges, stalls := m.Stats()
	if alloc != 1 || merges != 1 || stalls != 1 {
		t.Errorf("stats = (%d,%d,%d), want (1,1,1)", alloc, merges, stalls)
	}
	m.Reset()
	alloc, merges, stalls = m.Stats()
	if alloc != 0 || merges != 0 || stalls != 0 || m.Outstanding() != 0 {
		t.Error("reset did not clear state")
	}
}

// Property: after any sequence of allocations within capacity, every
// line either has exactly one entry containing all its requests in
// order, and Outstanding never exceeds capacity.
func TestMSHRInvariant(t *testing.T) {
	f := func(lines []uint8) bool {
		m := NewMSHR(64, 64)
		perLine := map[Addr]int{}
		for i, l := range lines {
			a := Addr(l) * LineSize
			if !m.CanAllocate(a) {
				continue
			}
			m.Allocate(Request{Addr: a, WarpID: i})
			perLine[a]++
		}
		if m.Outstanding() != len(perLine) {
			return false
		}
		for a, n := range perLine {
			e := m.Lookup(a)
			if e == nil || len(e.Merged) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interleaved allocates and fills keep the open-addressed
// probe table consistent — backward-shift deletion must never strand a
// colliding entry behind a vacated slot.
func TestMSHRChurnInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMSHR(16, 4)
		want := map[Addr][]int{}
		for i, op := range ops {
			// Squeeze lines into 32 values so collisions and probe
			// chains are common in the 32-slot table.
			a := Addr(op%32) * LineSize
			if op&0x8000 != 0 {
				e := m.Fill(a)
				if _, live := want[a]; live {
					if e == nil || e.Line != a || len(e.Merged) != len(want[a]) {
						return false
					}
					delete(want, a)
				} else if e != nil {
					return false
				}
				continue
			}
			if !m.CanAllocate(a) {
				continue
			}
			m.Allocate(Request{Addr: a, WarpID: i})
			want[a] = append(want[a], i)
		}
		if m.Outstanding() != len(want) {
			return false
		}
		for a, ids := range want {
			e := m.Lookup(a)
			if e == nil || len(e.Merged) != len(ids) {
				return false
			}
			for j, id := range ids {
				if e.Merged[j].WarpID != id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMSHRResetRecyclesTable(t *testing.T) {
	m := NewMSHR(8, 2)
	for i := 0; i < 8; i++ {
		m.Allocate(Request{Addr: Addr(i) * LineSize, WarpID: i})
	}
	m.Reset()
	if m.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after Reset", m.Outstanding())
	}
	if a, _, _ := m.Stats(); a != 0 {
		t.Fatal("Reset did not clear stats")
	}
	// The full pool is available again and lookups find nothing stale.
	for i := 0; i < 8; i++ {
		a := Addr(i) * LineSize
		if m.Lookup(a) != nil {
			t.Fatalf("stale entry for %#x after Reset", a)
		}
		if !m.CanAllocate(a) {
			t.Fatalf("cannot allocate %#x after Reset", a)
		}
		m.Allocate(Request{Addr: a, WarpID: i})
	}
	if m.Outstanding() != 8 {
		t.Fatalf("Outstanding = %d, want 8", m.Outstanding())
	}
}
