package memory

// Event is a timestamped item flowing through a latency queue: a
// request or fill that becomes visible at ReadyCycle.
type Event struct {
	Req Request
	// Line is the affected line address (fills are line-granular).
	Line Addr
	// ReadyCycle is the first cycle at which the event may be consumed.
	ReadyCycle uint64
	// HitLevel records where the data was found, for fills.
	HitLevel HitLevel
	// Payload carries model-specific data (e.g. an MSHR pointer).
	Payload int
}

// LatencyQueue is a bounded FIFO whose entries become visible only
// after their ReadyCycle, modelling a fixed-latency pipe such as the
// L1↔L2 interconnect or the response queue in Figure 7a.
type LatencyQueue struct {
	name     string
	capacity int
	items    []Event
	pushes   uint64
	fullHits uint64
}

// NewLatencyQueue returns a queue with the given capacity; capacity <= 0
// means unbounded.
func NewLatencyQueue(name string, capacity int) *LatencyQueue {
	return &LatencyQueue{name: name, capacity: capacity}
}

// Name returns the queue's diagnostic name.
func (q *LatencyQueue) Name() string { return q.name }

// Len reports the number of queued events.
func (q *LatencyQueue) Len() int { return len(q.items) }

// Full reports whether the queue cannot accept another event.
func (q *LatencyQueue) Full() bool {
	return q.capacity > 0 && len(q.items) >= q.capacity
}

// Push enqueues ev; it reports false (and counts a structural stall)
// when the queue is full.
func (q *LatencyQueue) Push(ev Event) bool {
	if q.Full() {
		q.fullHits++
		return false
	}
	q.items = append(q.items, ev)
	q.pushes++
	return true
}

// PopReady dequeues and returns the oldest event whose ReadyCycle has
// arrived, or ok=false when none is ready. FIFO order is preserved
// among ready events.
func (q *LatencyQueue) PopReady(now uint64) (ev Event, ok bool) {
	for i, it := range q.items {
		if it.ReadyCycle <= now {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return it, true
		}
	}
	return Event{}, false
}

// PeekReady returns (without removing) the oldest ready event.
func (q *LatencyQueue) PeekReady(now uint64) (ev Event, ok bool) {
	for _, it := range q.items {
		if it.ReadyCycle <= now {
			return it, true
		}
	}
	return Event{}, false
}

// Remove deletes the i-th event (in internal order). It is used by the
// CIAO migration path, which plucks a specific response-queue slot.
func (q *LatencyQueue) Remove(i int) Event {
	ev := q.items[i]
	q.items = append(q.items[:i], q.items[i+1:]...)
	return ev
}

// FindLine returns the index of the first queued event whose Line
// matches, or -1.
func (q *LatencyQueue) FindLine(line Addr) int {
	line = line.LineAddr()
	for i, it := range q.items {
		if it.Line == line {
			return i
		}
	}
	return -1
}

// Stats reports cumulative pushes and full-queue rejections.
func (q *LatencyQueue) Stats() (pushes, fullRejections uint64) {
	return q.pushes, q.fullHits
}

// Reset empties the queue and clears statistics.
func (q *LatencyQueue) Reset() {
	q.items = q.items[:0]
	q.pushes, q.fullHits = 0, 0
}
