package memory

// Event is a timestamped item flowing through a latency queue: a
// request or fill that becomes visible at ReadyCycle.
type Event struct {
	Req Request
	// Line is the affected line address (fills are line-granular).
	Line Addr
	// ReadyCycle is the first cycle at which the event may be consumed.
	ReadyCycle uint64
	// HitLevel records where the data was found, for fills.
	HitLevel HitLevel
	// Payload carries model-specific data (e.g. an MSHR pointer).
	Payload int
}

// LatencyQueue is a bounded FIFO whose entries become visible only
// after their ReadyCycle, modelling a fixed-latency pipe such as the
// L1↔L2 interconnect or the response queue in Figure 7a.
//
// Ordering guarantee: among events that are ready at a given cycle,
// PopReady/PeekReady/Drain serve them strictly in insertion (FIFO)
// order; an unready event never blocks a ready one behind it. This is
// the property the SM fill path relies on for deterministic replay —
// two fills ready on the same cycle always retire in issue order.
//
// The queue is a ring buffer with a cached ReadyCycle lower bound, so
// the common quiescent case ("is anything ready yet?") is answered in
// O(1) via NextReady without scanning: an idle queue costs the cycle
// loop one comparison per cycle. The bound is maintained lazily:
// removals never rescan (a removal cannot lower the true minimum, so
// the bound stays valid, merely stale-low), and the first unsuccessful
// ready-scan repairs it exactly for free.
type LatencyQueue struct {
	name     string
	capacity int
	buf      []Event // ring storage
	head     int     // index of the oldest event
	n        int     // live event count
	minReady uint64  // lower bound on min ReadyCycle; valid when n > 0
	pushes   uint64
	fullHits uint64
}

// NewLatencyQueue returns a queue with the given capacity; capacity <= 0
// means unbounded. Bounded queues preallocate their ring so the steady
// state never allocates.
func NewLatencyQueue(name string, capacity int) *LatencyQueue {
	q := &LatencyQueue{name: name, capacity: capacity}
	if capacity > 0 {
		q.buf = make([]Event, capacity)
	}
	return q
}

// Name returns the queue's diagnostic name.
func (q *LatencyQueue) Name() string { return q.name }

// Len reports the number of queued events.
func (q *LatencyQueue) Len() int { return q.n }

// Full reports whether the queue cannot accept another event.
func (q *LatencyQueue) Full() bool {
	return q.capacity > 0 && q.n >= q.capacity
}

// idx maps a logical position (0 = oldest) to a ring index.
func (q *LatencyQueue) idx(pos int) int {
	i := q.head + pos
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	return i
}

// grow doubles the ring of an unbounded queue, unwrapping it.
func (q *LatencyQueue) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]Event, size)
	for pos := 0; pos < q.n; pos++ {
		buf[pos] = q.buf[q.idx(pos)]
	}
	q.buf, q.head = buf, 0
}

// Push enqueues ev; it reports false (and counts a structural stall)
// when the queue is full.
func (q *LatencyQueue) Push(ev Event) bool {
	if q.Full() {
		q.fullHits++
		return false
	}
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[q.idx(q.n)] = ev
	if q.n == 0 || ev.ReadyCycle < q.minReady {
		q.minReady = ev.ReadyCycle
	}
	q.n++
	q.pushes++
	return true
}

// NextReady returns a lower bound on the earliest ReadyCycle among
// queued events in O(1), letting the cycle loop skip a quiescent queue
// entirely: no event is consumable before the returned cycle. The
// bound may be stale-low after removals; consumers that pop until
// failure (the SM fill path) pay at most one extra scan, which itself
// restores exactness. ok is false when the queue is empty.
func (q *LatencyQueue) NextReady() (cycle uint64, ok bool) {
	return q.minReady, q.n > 0
}

// removeAt deletes the event at logical position pos, preserving FIFO
// order by shifting the head side forward (ready events cluster near
// the head, so the shift distance is typically short). The cached
// bound is deliberately not recomputed: removing an event can only
// raise the true minimum, so the bound stays a valid lower bound, and
// the next unsuccessful ready-scan repairs it at no extra cost. This
// makes retiring k fills O(k + n) amortised instead of the O(k·n) the
// old eager recompute paid.
func (q *LatencyQueue) removeAt(pos int) Event {
	i := q.idx(pos)
	ev := q.buf[i]
	for p := pos; p > 0; p-- {
		q.buf[q.idx(p)] = q.buf[q.idx(p-1)]
	}
	q.buf[q.head] = Event{}
	q.head = q.idx(1)
	q.n--
	return ev
}

// PopReady dequeues and returns the oldest event whose ReadyCycle has
// arrived, or ok=false when none is ready. FIFO order is preserved
// among ready events. The nothing-ready case is O(1) via the cached
// bound once it is exact; an unsuccessful scan has seen every live
// event, so it re-establishes the exact minimum as a side effect.
func (q *LatencyQueue) PopReady(now uint64) (ev Event, ok bool) {
	if q.n == 0 || q.minReady > now {
		return Event{}, false
	}
	min := ^uint64(0)
	for pos := 0; pos < q.n; pos++ {
		rc := q.buf[q.idx(pos)].ReadyCycle
		if rc <= now {
			return q.removeAt(pos), true
		}
		if rc < min {
			min = rc
		}
	}
	q.minReady = min
	return Event{}, false
}

// PeekReady returns (without removing) the oldest ready event. Like
// PopReady, a miss repairs the cached bound exactly.
func (q *LatencyQueue) PeekReady(now uint64) (ev Event, ok bool) {
	if q.n == 0 || q.minReady > now {
		return Event{}, false
	}
	min := ^uint64(0)
	for pos := 0; pos < q.n; pos++ {
		e := q.buf[q.idx(pos)]
		if e.ReadyCycle <= now {
			return e, true
		}
		if e.ReadyCycle < min {
			min = e.ReadyCycle
		}
	}
	q.minReady = min
	return Event{}, false
}

// Drain pops every event ready at cycle now, in FIFO-among-ready
// order, invoking fn on each. It returns the number drained. Events
// fn's side effects push onto the queue during the drain are served in
// the same pass when already ready (matching a pop loop's semantics).
func (q *LatencyQueue) Drain(now uint64, fn func(Event)) int {
	drained := 0
	for {
		ev, ok := q.PopReady(now)
		if !ok {
			return drained
		}
		drained++
		fn(ev)
	}
}

// Remove deletes the event at logical position i (0 = oldest). It is
// used by the CIAO migration path, which plucks a specific
// response-queue slot.
func (q *LatencyQueue) Remove(i int) Event {
	return q.removeAt(i)
}

// FindLine returns the logical position of the first queued event
// whose Line matches, or -1.
func (q *LatencyQueue) FindLine(line Addr) int {
	line = line.LineAddr()
	for pos := 0; pos < q.n; pos++ {
		if q.buf[q.idx(pos)].Line == line {
			return pos
		}
	}
	return -1
}

// Stats reports cumulative pushes and full-queue rejections.
func (q *LatencyQueue) Stats() (pushes, fullRejections uint64) {
	return q.pushes, q.fullHits
}

// Reset empties the queue and clears statistics.
func (q *LatencyQueue) Reset() {
	for i := range q.buf {
		q.buf[i] = Event{}
	}
	q.head, q.n, q.minReady = 0, 0, 0
	q.pushes, q.fullHits = 0, 0
}
