package memory

import "testing"

func TestLatencyQueueVisibility(t *testing.T) {
	q := NewLatencyQueue("test", 4)
	q.Push(Event{Line: 0x100, ReadyCycle: 10})

	if _, ok := q.PopReady(9); ok {
		t.Fatal("event visible before ReadyCycle")
	}
	ev, ok := q.PopReady(10)
	if !ok || ev.Line != 0x100 {
		t.Fatal("event not visible at ReadyCycle")
	}
	if q.Len() != 0 {
		t.Fatal("pop did not remove event")
	}
}

func TestLatencyQueueFIFOAmongReady(t *testing.T) {
	q := NewLatencyQueue("test", 0)
	q.Push(Event{Line: 1, ReadyCycle: 5})
	q.Push(Event{Line: 2, ReadyCycle: 3})
	q.Push(Event{Line: 3, ReadyCycle: 5})

	// At cycle 5 all are ready; pops must preserve insertion order.
	want := []Addr{1, 2, 3}
	for _, w := range want {
		ev, ok := q.PopReady(5)
		if !ok || ev.Line != w {
			t.Fatalf("pop = (%v,%v), want line %d", ev.Line, ok, w)
		}
	}
}

func TestLatencyQueueSkipsNotReady(t *testing.T) {
	q := NewLatencyQueue("test", 0)
	q.Push(Event{Line: 1, ReadyCycle: 100})
	q.Push(Event{Line: 2, ReadyCycle: 3})

	ev, ok := q.PopReady(10)
	if !ok || ev.Line != 2 {
		t.Fatalf("expected ready line 2 to bypass unready head, got (%v,%v)", ev.Line, ok)
	}
	if q.Len() != 1 {
		t.Fatal("unready event should remain queued")
	}
}

func TestLatencyQueueCapacity(t *testing.T) {
	q := NewLatencyQueue("test", 2)
	if !q.Push(Event{Line: 1}) || !q.Push(Event{Line: 2}) {
		t.Fatal("pushes below capacity should succeed")
	}
	if q.Push(Event{Line: 3}) {
		t.Fatal("push above capacity should fail")
	}
	_, rejections := q.Stats()
	if rejections != 1 {
		t.Fatalf("rejections = %d, want 1", rejections)
	}
}

func TestLatencyQueueFindAndRemove(t *testing.T) {
	q := NewLatencyQueue("test", 0)
	q.Push(Event{Line: 0x100, ReadyCycle: 1})
	q.Push(Event{Line: 0x200, ReadyCycle: 2})

	i := q.FindLine(0x240) // same line as 0x200
	if i < 0 {
		t.Fatal("FindLine failed to locate line")
	}
	ev := q.Remove(i)
	if ev.Line != 0x200 {
		t.Fatalf("removed line %s, want 0x200", ev.Line)
	}
	if q.FindLine(0x200) != -1 {
		t.Fatal("line still present after Remove")
	}
}

func TestLatencyQueuePeekDoesNotRemove(t *testing.T) {
	q := NewLatencyQueue("test", 0)
	q.Push(Event{Line: 7, ReadyCycle: 0})
	if _, ok := q.PeekReady(0); !ok {
		t.Fatal("peek missed ready event")
	}
	if q.Len() != 1 {
		t.Fatal("peek removed the event")
	}
}

func TestLatencyQueueReset(t *testing.T) {
	q := NewLatencyQueue("test", 1)
	q.Push(Event{Line: 7})
	q.Push(Event{Line: 8}) // rejected
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("reset did not empty queue")
	}
	pushes, rejections := q.Stats()
	if pushes != 0 || rejections != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestLatencyQueueNextReady(t *testing.T) {
	q := NewLatencyQueue("t", 0)
	if _, ok := q.NextReady(); ok {
		t.Fatal("empty queue reported a ready cycle")
	}
	q.Push(Event{Line: 0x100, ReadyCycle: 30})
	q.Push(Event{Line: 0x200, ReadyCycle: 10})
	q.Push(Event{Line: 0x300, ReadyCycle: 20})
	if rc, ok := q.NextReady(); !ok || rc != 10 {
		t.Fatalf("NextReady = %d,%v, want 10,true", rc, ok)
	}
	// Popping the minimum event leaves the cached bound stale-low: it
	// must stay a valid lower bound (nothing consumable before it), but
	// it is not recomputed eagerly.
	if ev, ok := q.PopReady(15); !ok || ev.Line != 0x200 {
		t.Fatalf("PopReady(15) = %+v,%v, want line 0x200", ev, ok)
	}
	if rc, ok := q.NextReady(); !ok || rc > 20 {
		t.Fatalf("after pop, NextReady = %d,%v, want a lower bound <= 20", rc, ok)
	}
	// Nothing is consumable before the true minimum, and the failed
	// scan repairs the bound exactly.
	if _, ok := q.PopReady(19); ok {
		t.Fatal("PopReady before the true minimum succeeded")
	}
	if rc, ok := q.NextReady(); !ok || rc != 20 {
		t.Fatalf("after failed pop, NextReady = %d,%v, want exact 20,true", rc, ok)
	}
}

func TestLatencyQueueLazyMinRepair(t *testing.T) {
	q := NewLatencyQueue("t", 0)
	q.Push(Event{Line: 0x100, ReadyCycle: 5})
	q.Push(Event{Line: 0x200, ReadyCycle: 40})
	q.Push(Event{Line: 0x300, ReadyCycle: 30})

	// Remove (the CIAO migration path) also leaves the bound lazy.
	if ev := q.Remove(0); ev.Line != 0x100 {
		t.Fatalf("Remove(0) = %+v, want line 0x100", ev)
	}
	if rc, ok := q.NextReady(); !ok || rc > 30 {
		t.Fatalf("after remove, NextReady = %d,%v, want bound <= 30", rc, ok)
	}
	// A missed peek sees every event and restores exactness too.
	if _, ok := q.PeekReady(29); ok {
		t.Fatal("PeekReady(29) found an event before the true minimum")
	}
	if rc, ok := q.NextReady(); !ok || rc != 30 {
		t.Fatalf("after failed peek, NextReady = %d,%v, want exact 30,true", rc, ok)
	}
	// The repaired bound serves pops correctly.
	if ev, ok := q.PopReady(30); !ok || ev.Line != 0x300 {
		t.Fatalf("PopReady(30) = %+v,%v, want line 0x300", ev, ok)
	}
	if ev, ok := q.PopReady(40); !ok || ev.Line != 0x200 {
		t.Fatalf("PopReady(40) = %+v,%v, want line 0x200", ev, ok)
	}
	if _, ok := q.NextReady(); ok {
		t.Fatal("empty queue reported a ready cycle")
	}
}

func TestLatencyQueueDrain(t *testing.T) {
	q := NewLatencyQueue("t", 0)
	q.Push(Event{Line: 0x100, ReadyCycle: 5})
	q.Push(Event{Line: 0x200, ReadyCycle: 50})
	q.Push(Event{Line: 0x300, ReadyCycle: 5})
	q.Push(Event{Line: 0x400, ReadyCycle: 7})
	var got []Addr
	n := q.Drain(10, func(ev Event) { got = append(got, ev.Line) })
	if n != 3 || len(got) != 3 {
		t.Fatalf("Drain = %d events, want 3", n)
	}
	// FIFO among ready: 0x100 and 0x300 (cycle 5) retire in push order,
	// then 0x400; the unready 0x200 never blocks them.
	want := []Addr{0x100, 0x300, 0x400}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
	if q.Len() != 1 {
		t.Fatalf("after drain Len = %d, want 1", q.Len())
	}
}

// TestLatencyQueueWraparound pushes and pops past the ring's physical
// end so the head wraps, checking FIFO order and the cached minimum
// survive the seam.
func TestLatencyQueueWraparound(t *testing.T) {
	q := NewLatencyQueue("t", 4)
	next := Addr(0)
	push := func(rc uint64) {
		if !q.Push(Event{Line: next, ReadyCycle: rc}) {
			t.Fatalf("push %d rejected", next)
		}
		next += 0x40
	}
	var want Addr
	pop := func(now uint64) {
		ev, ok := q.PopReady(now)
		if !ok || ev.Line != want {
			t.Fatalf("pop = %v,%v, want line %v", ev.Line, ok, want)
		}
		want += 0x40
	}
	for round := 0; round < 5; round++ {
		push(uint64(round))
		push(uint64(round))
		pop(uint64(round))
		pop(uint64(round))
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after wraparound rounds: %d", q.Len())
	}
	// Refill a wrapped queue to capacity and check unready skipping.
	push(100)
	push(5)
	push(100)
	push(5)
	if rc, _ := q.NextReady(); rc != 5 {
		t.Fatalf("NextReady = %d, want 5", rc)
	}
	if ev, ok := q.PopReady(10); !ok || ev.ReadyCycle != 5 {
		t.Fatalf("PopReady skipped wrong event: %+v %v", ev, ok)
	}
	if ev, ok := q.PopReady(10); !ok || ev.ReadyCycle != 5 {
		t.Fatalf("second ready event missing: %+v %v", ev, ok)
	}
	if _, ok := q.PopReady(10); ok {
		t.Fatal("unready event popped")
	}
}
