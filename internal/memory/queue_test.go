package memory

import "testing"

func TestLatencyQueueVisibility(t *testing.T) {
	q := NewLatencyQueue("test", 4)
	q.Push(Event{Line: 0x100, ReadyCycle: 10})

	if _, ok := q.PopReady(9); ok {
		t.Fatal("event visible before ReadyCycle")
	}
	ev, ok := q.PopReady(10)
	if !ok || ev.Line != 0x100 {
		t.Fatal("event not visible at ReadyCycle")
	}
	if q.Len() != 0 {
		t.Fatal("pop did not remove event")
	}
}

func TestLatencyQueueFIFOAmongReady(t *testing.T) {
	q := NewLatencyQueue("test", 0)
	q.Push(Event{Line: 1, ReadyCycle: 5})
	q.Push(Event{Line: 2, ReadyCycle: 3})
	q.Push(Event{Line: 3, ReadyCycle: 5})

	// At cycle 5 all are ready; pops must preserve insertion order.
	want := []Addr{1, 2, 3}
	for _, w := range want {
		ev, ok := q.PopReady(5)
		if !ok || ev.Line != w {
			t.Fatalf("pop = (%v,%v), want line %d", ev.Line, ok, w)
		}
	}
}

func TestLatencyQueueSkipsNotReady(t *testing.T) {
	q := NewLatencyQueue("test", 0)
	q.Push(Event{Line: 1, ReadyCycle: 100})
	q.Push(Event{Line: 2, ReadyCycle: 3})

	ev, ok := q.PopReady(10)
	if !ok || ev.Line != 2 {
		t.Fatalf("expected ready line 2 to bypass unready head, got (%v,%v)", ev.Line, ok)
	}
	if q.Len() != 1 {
		t.Fatal("unready event should remain queued")
	}
}

func TestLatencyQueueCapacity(t *testing.T) {
	q := NewLatencyQueue("test", 2)
	if !q.Push(Event{Line: 1}) || !q.Push(Event{Line: 2}) {
		t.Fatal("pushes below capacity should succeed")
	}
	if q.Push(Event{Line: 3}) {
		t.Fatal("push above capacity should fail")
	}
	_, rejections := q.Stats()
	if rejections != 1 {
		t.Fatalf("rejections = %d, want 1", rejections)
	}
}

func TestLatencyQueueFindAndRemove(t *testing.T) {
	q := NewLatencyQueue("test", 0)
	q.Push(Event{Line: 0x100, ReadyCycle: 1})
	q.Push(Event{Line: 0x200, ReadyCycle: 2})

	i := q.FindLine(0x240) // same line as 0x200
	if i < 0 {
		t.Fatal("FindLine failed to locate line")
	}
	ev := q.Remove(i)
	if ev.Line != 0x200 {
		t.Fatalf("removed line %s, want 0x200", ev.Line)
	}
	if q.FindLine(0x200) != -1 {
		t.Fatal("line still present after Remove")
	}
}

func TestLatencyQueuePeekDoesNotRemove(t *testing.T) {
	q := NewLatencyQueue("test", 0)
	q.Push(Event{Line: 7, ReadyCycle: 0})
	if _, ok := q.PeekReady(0); !ok {
		t.Fatal("peek missed ready event")
	}
	if q.Len() != 1 {
		t.Fatal("peek removed the event")
	}
}

func TestLatencyQueueReset(t *testing.T) {
	q := NewLatencyQueue("test", 1)
	q.Push(Event{Line: 7})
	q.Push(Event{Line: 8}) // rejected
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("reset did not empty queue")
	}
	pushes, rejections := q.Stats()
	if pushes != 0 || rejections != 0 {
		t.Fatal("reset did not clear stats")
	}
}
