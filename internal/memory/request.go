package memory

import "fmt"

// AccessKind discriminates the operations that traverse the hierarchy.
type AccessKind uint8

// Access kinds.
const (
	// Load is a global-memory read.
	Load AccessKind = iota
	// Store is a global-memory write.
	Store
	// SharedLoad is an explicit (programmer-managed) shared-memory read.
	SharedLoad
	// SharedStore is an explicit shared-memory write.
	SharedStore
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case SharedLoad:
		return "shared-load"
	case SharedStore:
		return "shared-store"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// IsWrite reports whether the kind modifies memory.
func (k AccessKind) IsWrite() bool { return k == Store || k == SharedStore }

// IsShared reports whether the kind targets the explicit shared-memory
// address space rather than global memory.
func (k AccessKind) IsShared() bool { return k == SharedLoad || k == SharedStore }

// Request is a single coalesced memory request issued by a warp. In a
// real GPU one warp instruction may coalesce into several line
// requests; the workload generator models that by emitting multiple
// Requests for one instruction where appropriate.
type Request struct {
	// Addr is the (global or shared) byte address.
	Addr Addr
	// Kind is the operation.
	Kind AccessKind
	// WarpID identifies the issuing warp within its SM.
	WarpID int
	// SMID identifies the issuing SM.
	SMID int
	// IssueCycle is the cycle at which the request left the LD/ST unit.
	IssueCycle uint64
}

// String implements fmt.Stringer.
func (r Request) String() string {
	return fmt.Sprintf("%s %s w%d@sm%d", r.Kind, r.Addr, r.WarpID, r.SMID)
}

// Response is the completion record for a Request.
type Response struct {
	Req Request
	// DoneCycle is the cycle at which data became available to the warp.
	DoneCycle uint64
	// HitLevel records where the request was satisfied.
	HitLevel HitLevel
}

// Latency returns the request's end-to-end latency in cycles.
func (r Response) Latency() uint64 {
	if r.DoneCycle < r.Req.IssueCycle {
		return 0
	}
	return r.DoneCycle - r.Req.IssueCycle
}

// HitLevel identifies the hierarchy level that satisfied a request.
type HitLevel uint8

// Hit levels, ordered by distance from the SM.
const (
	HitL1 HitLevel = iota
	HitSharedCache
	HitL2
	HitDRAM
)

// String implements fmt.Stringer.
func (h HitLevel) String() string {
	switch h {
	case HitL1:
		return "L1"
	case HitSharedCache:
		return "SharedCache"
	case HitL2:
		return "L2"
	case HitDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("HitLevel(%d)", uint8(h))
	}
}
