package metrics

import "sync/atomic"

// Counter is a goroutine-safe monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a goroutine-safe level that moves both ways — subscriber
// counts, queue depths. Counters are for events; gauges are for
// occupancy.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// CacheCounters tracks result-cache effectiveness for long-lived
// services: hits serve stored bytes, misses trigger a simulation, and
// evictions measure pressure on the configured capacity.
type CacheCounters struct {
	Hits      Counter
	Misses    Counter
	Evictions Counter
}

// SweepCounters track the sweep subsystem: sweeps started, cells
// completed and cells failed across every sweep of the process.
type SweepCounters struct {
	Started     Counter
	CellsDone   Counter
	CellsFailed Counter
}

// SweepSnapshot is a point-in-time, JSON-serializable view of
// SweepCounters.
type SweepSnapshot struct {
	Started     uint64 `json:"started"`
	CellsDone   uint64 `json:"cells_done"`
	CellsFailed uint64 `json:"cells_failed"`
}

// Snapshot captures the current values.
func (c *SweepCounters) Snapshot() SweepSnapshot {
	return SweepSnapshot{
		Started:     c.Started.Value(),
		CellsDone:   c.CellsDone.Value(),
		CellsFailed: c.CellsFailed.Value(),
	}
}

// StoreCounters track the tiered result store across every sweep of
// the process: compaction rewrites, immutable segments written (and
// the result bytes moved into them), live tail followers currently
// subscribed, and followers that fell behind the broadcast and had to
// resync from disk.
type StoreCounters struct {
	Compactions     Counter
	SegmentsWritten Counter
	SegmentBytes    Counter
	TailLagged      Counter
	TailSubscribers Gauge
}

// StoreSnapshot is a point-in-time, JSON-serializable view of
// StoreCounters.
type StoreSnapshot struct {
	Compactions     uint64 `json:"compactions"`
	SegmentsWritten uint64 `json:"segments_written"`
	SegmentBytes    uint64 `json:"segment_bytes"`
	TailLagged      uint64 `json:"tail_lagged"`
	TailSubscribers int64  `json:"tail_subscribers"`
}

// Snapshot captures the current values.
func (c *StoreCounters) Snapshot() StoreSnapshot {
	return StoreSnapshot{
		Compactions:     c.Compactions.Value(),
		SegmentsWritten: c.SegmentsWritten.Value(),
		SegmentBytes:    c.SegmentBytes.Value(),
		TailLagged:      c.TailLagged.Value(),
		TailSubscribers: c.TailSubscribers.Value(),
	}
}

// CoordCounters track the distributed sweep coordinator: shard leases
// granted, leases expired (worker presumed dead), shards re-assigned
// after expiry, shards acked complete, the record merge outcomes
// (merged into the canonical store vs dropped as duplicates), stale
// acks (a complete or heartbeat from a worker whose lease was already
// expired or re-assigned), capability routing (lease polls denied only
// because no pending shard matched the worker's tags/size hints) and
// admin interventions (operator force-expires, shards quarantined and
// released), and the crash-recovery journal: entries appended, entries
// replayed on recovery, compaction rewrites, sweeps reconstructed
// after a restart and leases restored still live.
type CoordCounters struct {
	LeasesGranted    Counter
	LeasesAffine     Counter
	LeasesExpired    Counter
	ShardsReassigned Counter
	ShardsCompleted  Counter
	RecordsMerged    Counter
	RecordsDeduped   Counter
	StaleAcks        Counter

	LeasesStarved       Counter
	AdminExpired        Counter
	ShardsQuarantined   Counter
	ShardsUnquarantined Counter

	JournalEntries     Counter
	JournalReplayed    Counter
	JournalCompactions Counter
	SweepsRecovered    Counter
	LeasesRecovered    Counter

	// Federation: orphaned sweeps this server adopted from a dead
	// peer's journal, and worker requests answered with a redirect to
	// the sweep's current owner.
	SweepsAdopted   Counter
	RedirectsServed Counter
}

// CoordSnapshot is a point-in-time, JSON-serializable view of
// CoordCounters.
type CoordSnapshot struct {
	LeasesGranted    uint64 `json:"leases_granted"`
	LeasesAffine     uint64 `json:"leases_affine"`
	LeasesExpired    uint64 `json:"leases_expired"`
	ShardsReassigned uint64 `json:"shards_reassigned"`
	ShardsCompleted  uint64 `json:"shards_completed"`
	RecordsMerged    uint64 `json:"records_merged"`
	RecordsDeduped   uint64 `json:"records_deduped"`
	StaleAcks        uint64 `json:"stale_acks"`

	LeasesStarved       uint64 `json:"leases_starved"`
	AdminExpired        uint64 `json:"admin_expired"`
	ShardsQuarantined   uint64 `json:"shards_quarantined"`
	ShardsUnquarantined uint64 `json:"shards_unquarantined"`

	JournalEntries     uint64 `json:"journal_entries"`
	JournalReplayed    uint64 `json:"journal_replayed"`
	JournalCompactions uint64 `json:"journal_compactions"`
	SweepsRecovered    uint64 `json:"sweeps_recovered"`
	LeasesRecovered    uint64 `json:"leases_recovered"`

	SweepsAdopted   uint64 `json:"sweeps_adopted"`
	RedirectsServed uint64 `json:"redirects_served"`
}

// Snapshot captures the current values.
func (c *CoordCounters) Snapshot() CoordSnapshot {
	return CoordSnapshot{
		LeasesGranted:    c.LeasesGranted.Value(),
		LeasesAffine:     c.LeasesAffine.Value(),
		LeasesExpired:    c.LeasesExpired.Value(),
		ShardsReassigned: c.ShardsReassigned.Value(),
		ShardsCompleted:  c.ShardsCompleted.Value(),
		RecordsMerged:    c.RecordsMerged.Value(),
		RecordsDeduped:   c.RecordsDeduped.Value(),
		StaleAcks:        c.StaleAcks.Value(),

		LeasesStarved:       c.LeasesStarved.Value(),
		AdminExpired:        c.AdminExpired.Value(),
		ShardsQuarantined:   c.ShardsQuarantined.Value(),
		ShardsUnquarantined: c.ShardsUnquarantined.Value(),

		JournalEntries:     c.JournalEntries.Value(),
		JournalReplayed:    c.JournalReplayed.Value(),
		JournalCompactions: c.JournalCompactions.Value(),
		SweepsRecovered:    c.SweepsRecovered.Value(),
		LeasesRecovered:    c.LeasesRecovered.Value(),

		SweepsAdopted:   c.SweepsAdopted.Value(),
		RedirectsServed: c.RedirectsServed.Value(),
	}
}

// CacheSnapshot is a point-in-time, JSON-serializable view of
// CacheCounters.
type CacheSnapshot struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// Snapshot captures the current values.
func (c *CacheCounters) Snapshot() CacheSnapshot {
	s := CacheSnapshot{
		Hits:      c.Hits.Value(),
		Misses:    c.Misses.Value(),
		Evictions: c.Evictions.Value(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
