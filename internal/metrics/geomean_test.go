package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestGeoMeanEdgeCases pins the aggregation contract the harness and
// service layer rely on: empty input and all-non-positive input both
// yield 0, and non-positive entries are skipped rather than poisoning
// the mean (matching how the paper aggregates normalised IPCs).
func TestGeoMeanEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"empty slice", []float64{}, 0},
		{"all zero", []float64{0, 0, 0}, 0},
		{"all negative", []float64{-1, -2}, 0},
		{"mixed non-positive", []float64{0, -3, 0}, 0},
		{"single", []float64{2}, 2},
		{"pair", []float64{2, 8}, 4},
		{"skips non-positive", []float64{2, 0, 8, -5}, 4},
	}
	for _, c := range cases {
		got := GeoMean(c.in)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: GeoMean(%v) = %g, want %g", c.name, c.in, got, c.want)
		}
	}
}

func TestGeoMeanIdentity(t *testing.T) {
	// GeoMean of identical positive values is that value.
	for _, v := range []float64{0.1, 1, 3.7} {
		if got := GeoMean([]float64{v, v, v}); math.Abs(got-v) > 1e-12 {
			t.Errorf("GeoMean(%g×3) = %g", v, got)
		}
	}
}

func TestCacheCounters(t *testing.T) {
	var c CacheCounters
	if s := c.Snapshot(); s.HitRate != 0 {
		t.Errorf("zero counters hit rate = %g, want 0", s.HitRate)
	}
	c.Hits.Add(3)
	c.Misses.Inc()
	c.Evictions.Inc()
	s := c.Snapshot()
	if s.Hits != 3 || s.Misses != 1 || s.Evictions != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	if math.Abs(s.HitRate-0.75) > 1e-12 {
		t.Errorf("hit rate = %g, want 0.75", s.HitRate)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
}
