// Package metrics collects and summarises simulation statistics: IPC,
// per-interval time series (the Figure 9/10 curves), the inter-warp
// interference matrix (Figure 1a/4a), and the aggregate helpers
// (geometric mean, normalisation) used by the evaluation harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is one point of a time-series trace, captured at the end of a
// sampling interval.
type Sample struct {
	// Cycle is the simulation cycle at capture time.
	Cycle uint64 `json:"cycle"`
	// Instructions is the cumulative instruction count at capture time.
	Instructions uint64 `json:"instructions"`
	// IPC is the interval IPC (instructions issued during the interval
	// divided by interval cycles).
	IPC float64 `json:"ipc"`
	// ActiveWarps is the number of non-stalled, non-finished warps.
	ActiveWarps int `json:"active_warps"`
	// Interference is the number of VTA hits during the interval.
	Interference uint64 `json:"interference"`
	// L1HitRate is the interval L1D hit rate.
	L1HitRate float64 `json:"l1_hit_rate"`
}

// TimeSeries accumulates interval samples.
type TimeSeries struct {
	Samples []Sample
}

// Add appends a sample.
func (ts *TimeSeries) Add(s Sample) { ts.Samples = append(ts.Samples, s) }

// Len reports the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.Samples) }

// MeanIPC returns the unweighted mean of interval IPCs.
func (ts *TimeSeries) MeanIPC() float64 {
	if len(ts.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range ts.Samples {
		sum += s.IPC
	}
	return sum / float64(len(ts.Samples))
}

// CSV renders the series with the given series name, one line per
// sample: name,cycle,instructions,ipc,active,interference,l1hit.
func (ts *TimeSeries) CSV(name string) string {
	var b strings.Builder
	for _, s := range ts.Samples {
		fmt.Fprintf(&b, "%s,%d,%d,%.3f,%d,%d,%.4f\n",
			name, s.Cycle, s.Instructions, s.IPC, s.ActiveWarps, s.Interference, s.L1HitRate)
	}
	return b.String()
}

// InterferenceMatrix counts, for each (interfered, interferer) warp
// pair, how many VTA hits named that interferer — the data behind
// Figure 1a's heatmap and Figure 4a's per-warp frequency bars.
type InterferenceMatrix struct {
	n      int
	counts []uint64
}

// NewInterferenceMatrix sizes the matrix for n warps.
func NewInterferenceMatrix(n int) *InterferenceMatrix {
	return &InterferenceMatrix{n: n, counts: make([]uint64, n*n)}
}

// Record notes one interference event: interferer evicted data that
// interfered re-referenced.
func (m *InterferenceMatrix) Record(interfered, interferer int) {
	if interfered < 0 || interfered >= m.n || interferer < 0 || interferer >= m.n {
		return
	}
	m.counts[interfered*m.n+interferer]++
}

// At returns the count for the pair.
func (m *InterferenceMatrix) At(interfered, interferer int) uint64 {
	return m.counts[interfered*m.n+interferer]
}

// N returns the matrix dimension.
func (m *InterferenceMatrix) N() int { return m.n }

// Total returns the sum of all entries.
func (m *InterferenceMatrix) Total() uint64 {
	var t uint64
	for _, c := range m.counts {
		t += c
	}
	return t
}

// RowTotal returns the total interference suffered by a warp.
func (m *InterferenceMatrix) RowTotal(interfered int) uint64 {
	var t uint64
	for j := 0; j < m.n; j++ {
		t += m.At(interfered, j)
	}
	return t
}

// MaxInterferer returns, for the interfered warp, the interferer with
// the highest count and that count.
func (m *InterferenceMatrix) MaxInterferer(interfered int) (warp int, count uint64) {
	warp = -1
	for j := 0; j < m.n; j++ {
		if c := m.At(interfered, j); c > count {
			warp, count = j, c
		}
	}
	return warp, count
}

// MinMaxPerWarp returns, over warps with any interference, the minimum
// and maximum single-pair interference frequency experienced by each
// warp — the Figure 4b summary.
func (m *InterferenceMatrix) MinMaxPerWarp() (min, max []uint64) {
	min = make([]uint64, m.n)
	max = make([]uint64, m.n)
	for i := 0; i < m.n; i++ {
		lo, hi := uint64(math.MaxUint64), uint64(0)
		for j := 0; j < m.n; j++ {
			c := m.At(i, j)
			if c == 0 {
				continue
			}
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi == 0 {
			lo = 0
		}
		min[i], max[i] = lo, hi
	}
	return min, max
}

// Normalized returns the matrix scaled to its maximum entry (the
// Figure 1a colour scale). A zero matrix yields all zeros.
func (m *InterferenceMatrix) Normalized() [][]float64 {
	var peak uint64
	for _, c := range m.counts {
		if c > peak {
			peak = c
		}
	}
	out := make([][]float64, m.n)
	for i := range out {
		out[i] = make([]float64, m.n)
		if peak == 0 {
			continue
		}
		for j := 0; j < m.n; j++ {
			out[i][j] = float64(m.At(i, j)) / float64(peak)
		}
	}
	return out
}

// TopInterferedWarps returns the k warps with the highest suffered
// interference, most-interfered first.
func (m *InterferenceMatrix) TopInterferedWarps(k int) []int {
	idx := make([]int, m.n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return m.RowTotal(idx[a]) > m.RowTotal(idx[b])
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// GeoMean returns the geometric mean of positive values; zero and
// negative entries are skipped (matching how the paper aggregates
// normalised IPCs).
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Normalize divides each value by base, guarding zero.
func Normalize(vals []float64, base float64) []float64 {
	out := make([]float64, len(vals))
	if base == 0 {
		return out
	}
	for i, v := range vals {
		out[i] = v / base
	}
	return out
}

// Table is a minimal fixed-width text table used by the CLI and the
// benchmark harness to print paper-style rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
