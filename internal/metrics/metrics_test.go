package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Add(Sample{Cycle: 100, IPC: 1.0})
	ts.Add(Sample{Cycle: 200, IPC: 3.0})
	if ts.Len() != 2 {
		t.Fatalf("len = %d", ts.Len())
	}
	if m := ts.MeanIPC(); m != 2.0 {
		t.Fatalf("mean IPC = %f, want 2", m)
	}
	csv := ts.CSV("gto")
	if !strings.HasPrefix(csv, "gto,100,") || strings.Count(csv, "\n") != 2 {
		t.Fatalf("csv = %q", csv)
	}
	var empty TimeSeries
	if empty.MeanIPC() != 0 {
		t.Fatal("empty series should have 0 mean")
	}
}

func TestInterferenceMatrixBasics(t *testing.T) {
	m := NewInterferenceMatrix(4)
	m.Record(1, 2)
	m.Record(1, 2)
	m.Record(1, 3)
	m.Record(0, 1)

	if m.At(1, 2) != 2 || m.At(1, 3) != 1 || m.At(0, 1) != 1 {
		t.Fatal("counts wrong")
	}
	if m.Total() != 4 {
		t.Fatalf("total = %d", m.Total())
	}
	if m.RowTotal(1) != 3 {
		t.Fatalf("row total = %d", m.RowTotal(1))
	}
	w, c := m.MaxInterferer(1)
	if w != 2 || c != 2 {
		t.Fatalf("max interferer = (%d,%d)", w, c)
	}
	w, _ = m.MaxInterferer(3)
	if w != -1 {
		t.Fatal("uninterfered warp should report -1")
	}
}

func TestInterferenceMatrixIgnoresOutOfRange(t *testing.T) {
	m := NewInterferenceMatrix(2)
	m.Record(-1, 0)
	m.Record(0, 5)
	if m.Total() != 0 {
		t.Fatal("out-of-range records counted")
	}
}

func TestMinMaxPerWarp(t *testing.T) {
	m := NewInterferenceMatrix(3)
	m.Record(0, 1) // count 1
	m.Record(0, 2)
	m.Record(0, 2) // count 2
	min, max := m.MinMaxPerWarp()
	if min[0] != 1 || max[0] != 2 {
		t.Fatalf("warp0 min/max = %d/%d, want 1/2", min[0], max[0])
	}
	if min[1] != 0 || max[1] != 0 {
		t.Fatal("uninterfered warp should report 0/0")
	}
}

func TestNormalized(t *testing.T) {
	m := NewInterferenceMatrix(2)
	m.Record(0, 1)
	m.Record(0, 1)
	m.Record(1, 0)
	n := m.Normalized()
	if n[0][1] != 1.0 || n[1][0] != 0.5 {
		t.Fatalf("normalized = %v", n)
	}
	empty := NewInterferenceMatrix(2).Normalized()
	if empty[0][0] != 0 {
		t.Fatal("zero matrix should normalize to zeros")
	}
}

func TestTopInterferedWarps(t *testing.T) {
	m := NewInterferenceMatrix(3)
	m.Record(2, 0)
	m.Record(2, 1)
	m.Record(1, 0)
	top := m.TopInterferedWarps(2)
	if len(top) != 2 || top[0] != 2 || top[1] != 1 {
		t.Fatalf("top = %v", top)
	}
	if got := m.TopInterferedWarps(10); len(got) != 3 {
		t.Fatalf("k beyond n should clamp: %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %f, want 4", g)
	}
	if g := GeoMean([]float64{1, 0, 4}); math.Abs(g-2) > 1e-9 {
		t.Fatalf("geomean should skip zeros: %f", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
}

// Property: geomean of positive values lies between min and max.
func TestGeoMeanBoundsInvariant(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]float64, 0, len(raw))
		for _, r := range raw {
			vals = append(vals, float64(r)+1)
		}
		if len(vals) == 0 {
			return true
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		g := GeoMean(vals)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4}, 2)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("normalize = %v", got)
	}
	zero := Normalize([]float64{2}, 0)
	if zero[0] != 0 {
		t.Fatal("zero base should yield zeros")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"bench", "ipc"}}
	tb.AddRow("atax", "1.50")
	tb.AddRow("backprop", "0.97")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "bench") || !strings.Contains(lines[3], "backprop") {
		t.Fatalf("table content wrong:\n%s", s)
	}
	// Columns aligned: the "ipc" header starts at the same offset as values.
	off := strings.Index(lines[0], "ipc")
	if lines[2][off:off+4] != "1.50" {
		t.Fatalf("columns misaligned:\n%s", s)
	}
}
