package metrics

import (
	"io"
	"strconv"
	"strings"
	"time"
)

// PromWriter emits Prometheus text exposition format (version 0.0.4)
// without any dependency: counters, gauges and histograms, with HELP
// and TYPE headers deduplicated per metric name so several label sets
// of one metric share a single header block.
type PromWriter struct {
	w     io.Writer
	err   error
	typed map[string]bool
}

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// NewPromWriter wraps w. Write errors are sticky and surfaced by Err.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, typed: map[string]bool{}}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) print(s string) {
	if p.err != nil {
		return
	}
	_, p.err = io.WriteString(p.w, s)
}

// head emits the HELP/TYPE block for a metric name once.
func (p *PromWriter) head(name, help, typ string) {
	if p.typed[name] {
		return
	}
	p.typed[name] = true
	p.print("# HELP " + name + " " + escapeHelp(help) + "\n")
	p.print("# TYPE " + name + " " + typ + "\n")
}

// sample emits one sample line: name{labels} value.
func (p *PromWriter) sample(name string, labels []string, value string) {
	p.print(name + formatLabels(labels) + " " + value + "\n")
}

// Counter emits a monotonic counter sample. labels are alternating
// key/value pairs.
func (p *PromWriter) Counter(name, help string, value uint64, labels ...string) {
	p.head(name, help, "counter")
	p.sample(name, labels, strconv.FormatUint(value, 10))
}

// Gauge emits a gauge sample.
func (p *PromWriter) Gauge(name, help string, value float64, labels ...string) {
	p.head(name, help, "gauge")
	p.sample(name, labels, formatFloat(value))
}

// Histogram emits a full histogram: one _bucket line per bound (in
// ascending order, cumulative counts) plus the implicit +Inf bucket,
// then _sum (seconds) and _count. counts holds per-bucket (not
// cumulative) observation counts, one per bound plus the overflow.
func (p *PromWriter) Histogram(name, help string, boundsSeconds []float64, counts []uint64, sumSeconds float64, labels ...string) {
	p.head(name, help, "histogram")
	var cum uint64
	for i, b := range boundsSeconds {
		if i < len(counts) {
			cum += counts[i]
		}
		p.sample(name+"_bucket", append(labels, "le", formatFloat(b)), strconv.FormatUint(cum, 10))
	}
	for i := len(boundsSeconds); i < len(counts); i++ {
		cum += counts[i]
	}
	p.sample(name+"_bucket", append(labels, "le", "+Inf"), strconv.FormatUint(cum, 10))
	p.sample(name+"_sum", labels, formatFloat(sumSeconds))
	p.sample(name+"_count", labels, strconv.FormatUint(cum, 10))
}

// formatLabels renders {k="v",...} from alternating pairs ("" for none).
func formatLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// EscapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm exports every series of the registry, metric-major (every
// route's request counter, then every route's error counter, …) so
// each metric family appears exactly once. prefix is the metric
// namespace ("ciao_http" → ciao_http_requests_total, …) and label the
// series label name ("route", "sweep"). Names are sorted for stable
// output.
func (r *RED) WriteProm(p *PromWriter, prefix, label string) {
	names := r.Names()
	type row struct {
		name   string
		series *Series
	}
	rows := make([]row, 0, len(names))
	for _, n := range names {
		if v, ok := r.series.Load(n); ok {
			rows = append(rows, row{n, v.(*Series)})
		}
	}
	bounds := RedBoundsSeconds()
	for _, rw := range rows {
		req, _, _, _, _, _ := rw.series.Totals()
		p.Counter(prefix+"_requests_total", "Requests handled, by "+label+".", req, label, rw.name)
	}
	for _, rw := range rows {
		_, errs, _, _, _, _ := rw.series.Totals()
		p.Counter(prefix+"_request_errors_total", "Requests that failed (5xx / failed cells), by "+label+".", errs, label, rw.name)
	}
	for _, rw := range rows {
		_, _, shed, _, _, _ := rw.series.Totals()
		p.Counter(prefix+"_requests_shed_total", "Requests rejected by overload admission control (429), by "+label+".", shed, label, rw.name)
	}
	for _, rw := range rows {
		_, _, _, rl, _, _ := rw.series.Totals()
		p.Counter(prefix+"_rate_limited_total", "Requests rejected by the per-client rate limiter (429), by "+label+".", rl, label, rw.name)
	}
	for _, rw := range rows {
		_, _, _, _, bytes, _ := rw.series.Totals()
		p.Counter(prefix+"_response_bytes_total", "Response payload bytes written, by "+label+".", bytes, label, rw.name)
	}
	for _, rw := range rows {
		counts := rw.series.BucketCounts()
		_, _, _, _, _, dur := rw.series.Totals()
		p.Histogram(prefix+"_request_seconds", "Request duration, by "+label+".",
			bounds, counts[:], float64(dur)/float64(time.Second), label, rw.name)
	}
}
