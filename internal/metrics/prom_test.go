package metrics

import (
	"strings"
	"testing"
	"time"
)

// TestPromGolden pins the exposition output of a small, fully
// deterministic registry: header dedup, label rendering, cumulative
// histogram buckets, sum and count.
func TestPromGolden(t *testing.T) {
	red := NewRED()
	a := red.Series("/run")
	// Bucket bounds are inclusive: 1ms lands in the (500µs, 1ms]
	// bucket, 2s in (1s, 2.5s].
	a.Observe(1*time.Millisecond, false)
	a.Observe(1*time.Millisecond, false)
	a.Observe(2*time.Second, true)
	a.AddBytes(64)
	a.CountShed()
	b := red.Series("admin")
	b.Observe(100*time.Microsecond, false)

	var sb strings.Builder
	pw := NewPromWriter(&sb)
	red.WriteProm(pw, "ciao_http", "route")
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	for _, want := range []string{
		"# TYPE ciao_http_requests_total counter\n",
		`ciao_http_requests_total{route="/run"} 3` + "\n",
		`ciao_http_requests_total{route="admin"} 1` + "\n",
		`ciao_http_request_errors_total{route="/run"} 1` + "\n",
		`ciao_http_requests_shed_total{route="/run"} 1` + "\n",
		`ciao_http_response_bytes_total{route="/run"} 64` + "\n",
		"# TYPE ciao_http_request_seconds histogram\n",
		`ciao_http_request_seconds_bucket{route="/run",le="0.001"} 2` + "\n",
		`ciao_http_request_seconds_bucket{route="/run",le="2.5"} 3` + "\n",
		`ciao_http_request_seconds_bucket{route="/run",le="+Inf"} 3` + "\n",
		`ciao_http_request_seconds_sum{route="/run"} 2.002` + "\n",
		`ciao_http_request_seconds_count{route="/run"} 3` + "\n",
		`ciao_http_request_seconds_bucket{route="admin",le="0.0001"} 1` + "\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("exposition missing %q\n--- got ---\n%s", want, got)
		}
	}
	// One HELP/TYPE block per metric family, not per label set.
	if n := strings.Count(got, "# TYPE ciao_http_requests_total"); n != 1 {
		t.Fatalf("requests_total TYPE header appears %d times, want 1", n)
	}
	if n := strings.Count(got, "# TYPE ciao_http_request_seconds"); n != 1 {
		t.Fatalf("request_seconds TYPE header appears %d times, want 1", n)
	}
	// Cumulative buckets never decrease: spot-check ordering of the
	// /run histogram lines as they appear.
	runLines := []string{}
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, `ciao_http_request_seconds_bucket{route="/run"`) {
			runLines = append(runLines, line)
		}
	}
	if len(runLines) != RedBuckets {
		t.Fatalf("bucket lines = %d, want %d", len(runLines), RedBuckets)
	}
}

func TestPromCounterAndGauge(t *testing.T) {
	var sb strings.Builder
	pw := NewPromWriter(&sb)
	pw.Counter("coord_leases_granted", "Leases granted.", 7)
	pw.Gauge("coord_active", "Live distributed sweeps.", 2)
	got := sb.String()
	want := "# HELP coord_leases_granted Leases granted.\n" +
		"# TYPE coord_leases_granted counter\n" +
		"coord_leases_granted 7\n" +
		"# HELP coord_active Live distributed sweeps.\n" +
		"# TYPE coord_active gauge\n" +
		"coord_active 2\n"
	if got != want {
		t.Fatalf("exposition:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPromLabelEscaping covers sweep ids (or other label values) with
// characters the text format must escape.
func TestPromLabelEscaping(t *testing.T) {
	var sb strings.Builder
	pw := NewPromWriter(&sb)
	pw.Counter("x_total", "h", 1, "sweep", "a\"b\\c\nd")
	got := sb.String()
	if !strings.Contains(got, `x_total{sweep="a\"b\\c\nd"} 1`+"\n") {
		t.Fatalf("escaped label wrong:\n%s", got)
	}

	if e := EscapeLabel(`plain-id-123`); e != "plain-id-123" {
		t.Fatalf("plain value changed: %q", e)
	}
	if e := EscapeLabel("q\"\\\n"); e != `q\"\\\n` {
		t.Fatalf("escape = %q", e)
	}
}

func TestPromHelpEscaping(t *testing.T) {
	var sb strings.Builder
	pw := NewPromWriter(&sb)
	pw.Counter("y_total", "line1\nline2 \\ done", 0)
	got := sb.String()
	if !strings.Contains(got, `# HELP y_total line1\nline2 \\ done`+"\n") {
		t.Fatalf("help escaping wrong:\n%s", got)
	}
}
