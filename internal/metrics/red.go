package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the RED (requests / errors / duration) layer: the
// request path pays a handful of atomic adds and nothing else — no
// locks, no allocation, no aggregation — while the *reading* caller
// (/metrics, the admission controller) pays the whole cost of turning
// raw bucket counts into rates and quantiles. Duration lands in fixed
// latency-bound buckets, so a percentile estimate is a read-time walk
// over at most redBuckets counters.

// redBoundsNS are the upper bounds (inclusive, in nanoseconds) of the
// duration histogram buckets, spanning sub-millisecond control-plane
// calls (/coord/heartbeat) through multi-second simulation cells. A
// final implicit +Inf bucket catches everything beyond the last bound.
var redBoundsNS = [...]int64{
	100_000,        // 100µs
	250_000,        // 250µs
	500_000,        // 500µs
	1_000_000,      // 1ms
	2_500_000,      // 2.5ms
	5_000_000,      // 5ms
	10_000_000,     // 10ms
	25_000_000,     // 25ms
	50_000_000,     // 50ms
	100_000_000,    // 100ms
	250_000_000,    // 250ms
	500_000_000,    // 500ms
	1_000_000_000,  // 1s
	2_500_000_000,  // 2.5s
	5_000_000_000,  // 5s
	10_000_000_000, // 10s
}

// RedBuckets is the bucket count including the +Inf overflow bucket.
const RedBuckets = len(redBoundsNS) + 1

// RedBoundsSeconds returns the histogram bounds in seconds (for
// exposition formats that label buckets by bound).
func RedBoundsSeconds() []float64 {
	out := make([]float64, len(redBoundsNS))
	for i, b := range redBoundsNS {
		out[i] = float64(b) / 1e9
	}
	return out
}

// redStripes spreads hot writes across several copies of the counters
// so concurrent requests on different cores do not all bounce the same
// cache line. The stripe is picked from low duration bits — free
// timing jitter — and the reader sums all stripes.
const (
	redStripes    = 4
	redStripeMask = redStripes - 1
)

// redStripe is one copy of a series' counters. The trailing pad keeps
// adjacent stripes from sharing a cache line.
type redStripe struct {
	requests    atomic.Uint64
	errors      atomic.Uint64
	shed        atomic.Uint64
	rateLimited atomic.Uint64
	bytes       atomic.Uint64
	durationNS  atomic.Uint64
	buckets     [RedBuckets]atomic.Uint64
	_           [64]byte
}

// Series is one labeled RED stream (an HTTP route class, a sweep id).
// The zero value is ready to use. All methods are safe for concurrent
// use; Observe is lock-free and allocation-free.
type Series struct {
	stripes [redStripes]redStripe
}

// bucketIndex maps a duration to its histogram bucket. Linear scan: the
// bounds array is tiny, in cache, and fast requests exit early.
func bucketIndex(ns int64) int {
	for i, b := range redBoundsNS {
		if ns <= b {
			return i
		}
	}
	return len(redBoundsNS) // +Inf
}

// Observe records one completed request: its duration and whether it
// failed. This is the hot path — a few atomic adds, nothing else.
func (s *Series) Observe(d time.Duration, isErr bool) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	st := &s.stripes[(uint64(ns)>>6)&redStripeMask]
	st.requests.Add(1)
	st.durationNS.Add(uint64(ns))
	st.buckets[bucketIndex(ns)].Add(1)
	if isErr {
		st.errors.Add(1)
	}
}

// AddBytes accumulates response payload bytes for the series.
func (s *Series) AddBytes(n int64) {
	if n > 0 {
		s.stripes[0].bytes.Add(uint64(n))
	}
}

// CountShed records an admission-control rejection (429: queue full or
// latency degraded). The rejection response itself still flows through
// Observe, so shed requests appear in both the request count and here.
func (s *Series) CountShed() { s.stripes[0].shed.Add(1) }

// CountRateLimited records a per-client token-bucket rejection (429).
func (s *Series) CountRateLimited() { s.stripes[0].rateLimited.Add(1) }

// Totals returns the raw monotonic counters, summed across stripes.
// Each counter is individually consistent (atomic); the set is a
// near-point-in-time view, not a transaction.
func (s *Series) Totals() (requests, errors, shed, rateLimited, bytes, durationNS uint64) {
	for i := range s.stripes {
		st := &s.stripes[i]
		requests += st.requests.Load()
		errors += st.errors.Load()
		shed += st.shed.Load()
		rateLimited += st.rateLimited.Load()
		bytes += st.bytes.Load()
		durationNS += st.durationNS.Load()
	}
	return
}

// BucketCounts returns the per-bucket observation counts summed across
// stripes (not cumulative; the caller accumulates for exposition).
func (s *Series) BucketCounts() [RedBuckets]uint64 {
	var out [RedBuckets]uint64
	for i := range s.stripes {
		for j := range out {
			out[j] += s.stripes[i].buckets[j].Load()
		}
	}
	return out
}

// SeriesSnapshot is a read-time aggregation of one series: totals plus
// latency quantiles estimated from the bucket histogram.
type SeriesSnapshot struct {
	Requests    uint64  `json:"requests"`
	Errors      uint64  `json:"errors"`
	Shed        uint64  `json:"shed,omitempty"`
	RateLimited uint64  `json:"rate_limited,omitempty"`
	Bytes       uint64  `json:"bytes,omitempty"`
	MeanMS      float64 `json:"mean_ms"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
}

// Snapshot aggregates the series: this is where all the math the hot
// path skipped actually happens.
func (s *Series) Snapshot() SeriesSnapshot {
	req, errs, shed, rl, bytes, dur := s.Totals()
	counts := s.BucketCounts()
	snap := SeriesSnapshot{
		Requests:    req,
		Errors:      errs,
		Shed:        shed,
		RateLimited: rl,
		Bytes:       bytes,
	}
	if req > 0 {
		snap.MeanMS = float64(dur) / float64(req) / 1e6
	}
	snap.P50MS = float64(QuantileFromBuckets(counts[:], 0.50)) / float64(time.Millisecond)
	snap.P95MS = float64(QuantileFromBuckets(counts[:], 0.95)) / float64(time.Millisecond)
	snap.P99MS = float64(QuantileFromBuckets(counts[:], 0.99)) / float64(time.Millisecond)
	return snap
}

// QuantileFromBuckets estimates the q-th quantile (0 < q < 1) of the
// duration distribution held in per-bucket counts (RedBuckets long,
// matching redBoundsNS + the +Inf bucket), interpolating linearly
// within a bucket. Observations in the +Inf bucket clamp to the last
// finite bound. Zero observations estimate zero.
func QuantileFromBuckets(counts []uint64, q float64) time.Duration {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	lo := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		hi := int64(0)
		if i < len(redBoundsNS) {
			hi = redBoundsNS[i]
		} else {
			// +Inf bucket: no upper bound to interpolate toward.
			return time.Duration(redBoundsNS[len(redBoundsNS)-1])
		}
		if i > 0 {
			lo = redBoundsNS[i-1]
		}
		next := cum + float64(c)
		if next >= rank {
			frac := (rank - cum) / float64(c)
			return time.Duration(float64(lo) + float64(hi-lo)*frac)
		}
		cum = next
	}
	return time.Duration(redBoundsNS[len(redBoundsNS)-1])
}

// RED is a registry of named series — per-endpoint for the HTTP layer,
// per-sweep for the cell layer. Lookup of an existing series is a
// single lock-free map load; creation (rare) takes a mutex. Distinct
// names are capped so an unbounded label (a client-supplied id) cannot
// grow memory forever: past the cap, new names share one overflow
// series.
type RED struct {
	series sync.Map // string → *Series
	mu     sync.Mutex
	count  int
	max    int
}

// RedOverflow is the series name absorbing observations past the
// registry's distinct-name cap.
const RedOverflow = "_overflow"

// defaultMaxSeries bounds distinct series per registry.
const defaultMaxSeries = 512

// NewRED builds a registry.
func NewRED() *RED { return &RED{max: defaultMaxSeries} }

// Series returns the named series, creating it on first use.
func (r *RED) Series(name string) *Series {
	if v, ok := r.series.Load(name); ok {
		return v.(*Series)
	}
	r.mu.Lock()
	if v, ok := r.series.Load(name); ok {
		r.mu.Unlock()
		return v.(*Series)
	}
	if r.count >= r.max && name != RedOverflow {
		r.mu.Unlock()
		return r.Series(RedOverflow)
	}
	s := &Series{}
	r.series.Store(name, s)
	r.count++
	r.mu.Unlock()
	return s
}

// Names returns every registered series name, sorted, for stable
// exposition output.
func (r *RED) Names() []string {
	var names []string
	r.series.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// Snapshot aggregates every series, keyed by name.
func (r *RED) Snapshot() map[string]SeriesSnapshot {
	out := map[string]SeriesSnapshot{}
	r.series.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Series).Snapshot()
		return true
	})
	return out
}

// Window tracks a series' recent p95 latency by differencing bucket
// counts at most once per interval — the admission controller's view
// of "latency right now", as opposed to the since-boot distribution.
// Between refreshes callers get the last computed value, so the cost
// of a windowed quantile is amortised across all the requests that
// consult it.
type Window struct {
	s        *Series
	interval time.Duration

	mu   sync.Mutex
	last time.Time
	prev [RedBuckets]uint64
	p95  time.Duration
}

// NewWindow observes s with the given refresh interval (minimum 100ms;
// 0 means 1s).
func NewWindow(s *Series, interval time.Duration) *Window {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	return &Window{s: s, interval: interval, last: time.Now(), prev: s.BucketCounts()}
}

// P95 returns the 95th-percentile latency of the most recent complete
// window (0 until a window with traffic has elapsed).
func (w *Window) P95() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := time.Now()
	if now.Sub(w.last) < w.interval {
		return w.p95
	}
	cur := w.s.BucketCounts()
	var delta [RedBuckets]uint64
	for i := range cur {
		delta[i] = cur[i] - w.prev[i]
	}
	w.p95 = QuantileFromBuckets(delta[:], 0.95)
	w.prev, w.last = cur, now
	return w.p95
}
