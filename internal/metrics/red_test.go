package metrics

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSeriesObserveAndSnapshot(t *testing.T) {
	var s Series
	for i := 0; i < 90; i++ {
		s.Observe(1*time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		s.Observe(2*time.Second, true)
	}
	s.AddBytes(1234)
	s.CountShed()
	s.CountRateLimited()

	snap := s.Snapshot()
	if snap.Requests != 100 {
		t.Fatalf("requests = %d, want 100", snap.Requests)
	}
	if snap.Errors != 10 {
		t.Fatalf("errors = %d, want 10", snap.Errors)
	}
	if snap.Shed != 1 || snap.RateLimited != 1 {
		t.Fatalf("shed/rate_limited = %d/%d, want 1/1", snap.Shed, snap.RateLimited)
	}
	if snap.Bytes != 1234 {
		t.Fatalf("bytes = %d, want 1234", snap.Bytes)
	}
	// 90% of observations are ~1ms, 10% are 2s: p50 must sit in the
	// low-millisecond buckets, p95 and p99 in the seconds range.
	if snap.P50MS <= 0 || snap.P50MS > 5 {
		t.Fatalf("p50 = %vms, want ~1ms", snap.P50MS)
	}
	if snap.P95MS < 500 {
		t.Fatalf("p95 = %vms, want in the seconds range", snap.P95MS)
	}
	if snap.P99MS < snap.P95MS {
		t.Fatalf("p99 (%v) < p95 (%v)", snap.P99MS, snap.P95MS)
	}
	if snap.MeanMS <= 0 {
		t.Fatalf("mean = %v, want > 0", snap.MeanMS)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	empty := make([]uint64, RedBuckets)
	if q := QuantileFromBuckets(empty, 0.95); q != 0 {
		t.Fatalf("quantile of empty histogram = %v, want 0", q)
	}
	// Everything in the +Inf bucket clamps to the last finite bound.
	inf := make([]uint64, RedBuckets)
	inf[RedBuckets-1] = 10
	if q := QuantileFromBuckets(inf, 0.5); q != 10*time.Second {
		t.Fatalf("quantile of +Inf-only histogram = %v, want 10s", q)
	}
	// A single bucket interpolates within its bounds.
	one := make([]uint64, RedBuckets)
	one[3] = 100 // (500µs, 1ms]
	q := QuantileFromBuckets(one, 0.5)
	if q <= 500*time.Microsecond || q > time.Millisecond {
		t.Fatalf("interpolated quantile = %v, want in (500µs, 1ms]", q)
	}
}

// TestREDConcurrentReaders drives parallel writers against a reader
// under -race and asserts every successive snapshot is monotone and
// internally consistent.
func TestREDConcurrentReaders(t *testing.T) {
	red := NewRED()
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	var readerErr error
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var lastReq, lastErrs uint64
		for {
			s := red.Series("hot")
			// Read buckets before the totals: each Observe increments
			// requests before its bucket, so any observation visible in
			// the bucket sum must be visible in a *later* requests read.
			counts := s.BucketCounts()
			var sum uint64
			for _, c := range counts {
				sum += c
			}
			req, errs, _, _, _, _ := s.Totals()
			if req < lastReq || errs < lastErrs {
				readerErr = fmt.Errorf("snapshot went backwards: requests %d→%d errors %d→%d", lastReq, req, lastErrs, errs)
				return
			}
			if sum > req {
				readerErr = fmt.Errorf("bucket sum %d > later requests read %d", sum, req)
				return
			}
			lastReq, lastErrs = req, errs
			_ = s.Snapshot()
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := red.Series("hot")
			for i := 0; i < perWriter; i++ {
				s.Observe(time.Duration(i%2000)*time.Microsecond, i%17 == 0)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}

	req, _, _, _, _, _ := red.Series("hot").Totals()
	if want := uint64(writers * perWriter); req != want {
		t.Fatalf("final requests = %d, want %d", req, want)
	}
}

func TestREDSeriesCap(t *testing.T) {
	red := NewRED()
	red.max = 4
	for i := 0; i < 10; i++ {
		red.Series(fmt.Sprintf("s%d", i)).Observe(time.Millisecond, false)
	}
	names := red.Names()
	// 4 real series plus the shared overflow bucket.
	if len(names) != 5 {
		t.Fatalf("series count = %d (%v), want 5", len(names), names)
	}
	over, _, _, _, _, _ := red.Series(RedOverflow).Totals()
	if over != 6 {
		t.Fatalf("overflow requests = %d, want 6", over)
	}
}

func TestWindowP95Refreshes(t *testing.T) {
	var s Series
	w := NewWindow(&s, 100*time.Millisecond)
	if p := w.P95(); p != 0 {
		t.Fatalf("fresh window p95 = %v, want 0", p)
	}
	for i := 0; i < 100; i++ {
		s.Observe(2*time.Second, false)
	}
	time.Sleep(120 * time.Millisecond)
	if p := w.P95(); p < time.Second {
		t.Fatalf("window p95 after slow burst = %v, want >= 1s", p)
	}
	// A quiet window decays back to zero rather than pinning the old
	// p95 forever.
	time.Sleep(120 * time.Millisecond)
	if p := w.P95(); p != 0 {
		t.Fatalf("window p95 after quiet window = %v, want 0", p)
	}
}

// BenchmarkREDObserve is the hot-path proof: one observation must cost
// a handful of nanoseconds and zero allocations.
func BenchmarkREDObserve(b *testing.B) {
	var s Series
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := 750 * time.Microsecond
		for pb.Next() {
			s.Observe(d, false)
		}
	})
}

// TestObserveDoesNotAllocate pins the 0 allocs/op claim in a plain
// test so CI fails on regression without parsing bench output.
func TestObserveDoesNotAllocate(t *testing.T) {
	var s Series
	allocs := testing.AllocsPerRun(1000, func() {
		s.Observe(3*time.Millisecond, false)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per op, want 0", allocs)
	}
	red := NewRED()
	red.Series("warm") // create outside the measured loop
	allocs = testing.AllocsPerRun(1000, func() {
		red.Series("warm").Observe(3*time.Millisecond, true)
	})
	if allocs != 0 {
		t.Fatalf("Series lookup + Observe allocates %v per op, want 0", allocs)
	}
}
