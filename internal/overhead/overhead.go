// Package overhead reproduces the Section V-F hardware cost analysis
// of the CIAO paper: the storage, area, gate and power arithmetic for
// the interference detector and the shared-memory adaptations. The
// paper derives these numbers analytically from structure sizes (with
// CACTI 6.0 for SRAM area); this package reproduces the same
// arithmetic so the claimed totals can be checked.
package overhead

// Parameters of the GTX480-like configuration used in §V-F.
const (
	// NumSMs is the SM count.
	NumSMs = 15
	// WarpsPerSM is the resident warp slots per SM.
	WarpsPerSM = 48
	// ListEntries is the interference/pair-list entry count (64: the
	// max CTA warp budget, §IV-A).
	ListEntries = 64
	// VTAEntriesPerWarp is CIAO's per-warp victim tag count (half of
	// CCWS's 16).
	VTAEntriesPerWarp = 8
	// WIDBits is the warp-ID width (48 warps → 6 bits).
	WIDBits = 6
	// SatCounterBits is the interference-list confidence counter.
	SatCounterBits = 2
	// VTAHitCounterBits is the per-warp VTA-hit counter width; it
	// resets each kernel, so 32 bits cannot overflow (§V-F).
	VTAHitCounterBits = 32
	// ChipAreaMM2 is the GTX480 die area [30].
	ChipAreaMM2 = 529.0
	// ChipPowerW is the GTX480 TDP for the power-fraction claim.
	ChipPowerW = 250.0
)

// Paper-reported component figures (§V-F).
const (
	// VTAAreaMM2 is the CACTI estimate for all 15 SMs' VTA structures.
	VTAAreaMM2 = 0.65
	// ListsAreaUM2PerSM is the combined VTA-hit counters +
	// interference list + pair list area per SM, in µm².
	ListsAreaUM2PerSM = 549.0
	// IRSGates is the Eq. 1 evaluation logic (adders, shifter,
	// comparator).
	IRSGates = 2112
	// SharedMemGates is the translation unit + multiplexer + MSHR
	// extension logic per SM.
	SharedMemGates = 4500
	// SharedMemExtraStorageBytes is the added MSHR field storage per SM.
	SharedMemExtraStorageBytes = 64
	// PowerMW is the GPUWattch average power of all new components.
	PowerMW = 79.0
)

// Report is the assembled overhead summary.
type Report struct {
	// InterferenceListBitsPerSM is the interference-list SRAM size.
	InterferenceListBitsPerSM int
	// PairListBitsPerSM is the pair-list SRAM size.
	PairListBitsPerSM int
	// VTAHitCounterBitsPerSM is the per-SM hit-counter storage.
	VTAHitCounterBitsPerSM int
	// DetectorListsAreaUM2 is the lists' area for all SMs, in µm².
	DetectorListsAreaUM2 float64
	// VTAAreaMM2 is the VTA area for all SMs.
	VTAAreaMM2 float64
	// VTAAreaFraction is VTA area / chip area.
	VTAAreaFraction float64
	// TotalAreaFraction is the paper's headline "< 2% of chip area".
	TotalAreaFraction float64
	// TotalGatesPerSM sums the IRS and shared-memory logic.
	TotalGatesPerSM int
	// PowerFraction is detector+datapath power / chip power.
	PowerFraction float64
}

// Compute assembles the Section V-F report from the structure sizes.
func Compute() Report {
	r := Report{
		// Each interference-list entry: 6-bit WID + 2-bit counter.
		InterferenceListBitsPerSM: ListEntries * (WIDBits + SatCounterBits),
		// Each pair-list entry: two 6-bit WIDs.
		PairListBitsPerSM:      ListEntries * (2 * WIDBits),
		VTAHitCounterBitsPerSM: WarpsPerSM * VTAHitCounterBits,
		DetectorListsAreaUM2:   ListsAreaUM2PerSM * NumSMs,
		VTAAreaMM2:             VTAAreaMM2,
		TotalGatesPerSM:        IRSGates + SharedMemGates,
	}
	r.VTAAreaFraction = r.VTAAreaMM2 / ChipAreaMM2
	// Total area: VTA + lists (µm²→mm²) + logic. Logic gates are
	// negligible in area; the paper bounds everything by 2%.
	r.TotalAreaFraction = (r.VTAAreaMM2 + r.DetectorListsAreaUM2/1e6) / ChipAreaMM2
	r.PowerFraction = (PowerMW / 1000.0) / ChipPowerW
	return r
}

// PaperClaims groups the §V-F assertions that the report must satisfy;
// used by tests and the CLI.
type PaperClaims struct {
	// VTAFractionMax: VTA ≈ 0.12% of chip area.
	VTAFractionMax float64
	// TotalFractionMax: all additions < 2% of chip area.
	TotalFractionMax float64
	// PowerFractionMax: ≈ 0.3% of chip power.
	PowerFractionMax float64
}

// Claims returns the paper's §V-F bounds.
func Claims() PaperClaims {
	return PaperClaims{
		VTAFractionMax:   0.0013, // "only 0.12%"
		TotalFractionMax: 0.02,   // "less than 2%"
		PowerFractionMax: 0.004,  // "only 0.3%"
	}
}

// Satisfies reports whether the computed report meets the claims.
func (r Report) Satisfies(c PaperClaims) bool {
	return r.VTAAreaFraction <= c.VTAFractionMax &&
		r.TotalAreaFraction <= c.TotalFractionMax &&
		r.PowerFraction <= c.PowerFractionMax
}
