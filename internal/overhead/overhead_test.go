package overhead

import "testing"

func TestStorageArithmetic(t *testing.T) {
	r := Compute()
	// §IV-A: each interference-list entry is 8 bits (6+2), each
	// pair-list entry 12 bits (6+6), 64 entries each.
	if r.InterferenceListBitsPerSM != 64*8 {
		t.Errorf("interference list bits = %d, want 512", r.InterferenceListBitsPerSM)
	}
	if r.PairListBitsPerSM != 64*12 {
		t.Errorf("pair list bits = %d, want 768", r.PairListBitsPerSM)
	}
	// §V-F: 48 32-bit VTA-hit counters per SM.
	if r.VTAHitCounterBitsPerSM != 48*32 {
		t.Errorf("hit counter bits = %d, want 1536", r.VTAHitCounterBitsPerSM)
	}
}

func TestListsAreaMatchesPaper(t *testing.T) {
	r := Compute()
	// "the combined area ... is 549 um2 per SM (8235 um2 for 15 SMs)".
	if r.DetectorListsAreaUM2 != 549.0*15 {
		t.Errorf("lists area = %f µm², want 8235", r.DetectorListsAreaUM2)
	}
}

func TestGateCounts(t *testing.T) {
	r := Compute()
	// Eq.(1) logic 2112 gates + shared-memory adaptation 4500 gates.
	if r.TotalGatesPerSM != 2112+4500 {
		t.Errorf("gates = %d, want 6612", r.TotalGatesPerSM)
	}
}

func TestPaperClaimsSatisfied(t *testing.T) {
	r := Compute()
	c := Claims()
	if !r.Satisfies(c) {
		t.Fatalf("overhead report violates §V-F claims: %+v", r)
	}
	// VTA ≈ 0.12% of the 529 mm² die.
	if r.VTAAreaFraction < 0.001 || r.VTAAreaFraction > 0.0013 {
		t.Errorf("VTA fraction = %f, want ≈ 0.0012", r.VTAAreaFraction)
	}
	// Power ≈ 0.3%: 79 mW of 250 W.
	if r.PowerFraction < 0.0003 || r.PowerFraction > 0.0004 {
		t.Errorf("power fraction = %f, want ≈ 0.0003", r.PowerFraction)
	}
}

func TestSatisfiesRejectsViolations(t *testing.T) {
	r := Compute()
	r.TotalAreaFraction = 0.05
	if r.Satisfies(Claims()) {
		t.Fatal("5% area accepted against a 2% bound")
	}
}
