package sched

import "repro/internal/sm"

// BestSWL is the best static wavefront limiting scheduler [12]: only a
// fixed number of warps — profiled offline per benchmark (the Nwrp
// column of Table II) — are active for the whole run. It cannot adapt
// to phase changes (§V-C: ATAX), but its static limit avoids CCWS's
// over-throttling.
type BestSWL struct {
	sm.Base
	sm.GreedyThenOldest
	// Limit is the active warp count; 0 means use the benchmark's
	// published Nwrp.
	Limit int
}

// NewBestSWL returns a Best-SWL controller with the given limit
// (0 = take the kernel's profiled Nwrp at Attach).
func NewBestSWL(limit int) *BestSWL { return &BestSWL{Limit: limit} }

// Name implements sm.Controller.
func (s *BestSWL) Name() string { return "Best-SWL" }

// Attach stalls every warp beyond the limit.
func (s *BestSWL) Attach(g *sm.GPU) {
	limit := s.Limit
	if limit <= 0 {
		limit = g.Kernel().Spec().NwrpBest
	}
	if limit <= 0 {
		limit = 1
	}
	if limit > g.NumWarps() {
		limit = g.NumWarps()
	}
	s.Limit = limit
	for i := 0; i < g.NumWarps(); i++ {
		g.Warp(i).V = i < limit
	}
}

// Pick implements sm.Controller.
func (s *BestSWL) Pick(g *sm.GPU, now uint64) int {
	return s.PickGTO(g, now, sm.EligibleOrBarrierBoosted(g))
}

// OnWarpFinished activates the next stalled warp when an active one
// retires, keeping the concurrent warp count at the limit.
func (s *BestSWL) OnWarpFinished(g *sm.GPU, wid int) {
	for i := 0; i < g.NumWarps(); i++ {
		w := g.Warp(i)
		if !w.Finished && !w.V {
			w.V = true
			return
		}
	}
}
