package sched

import (
	"sort"

	"repro/internal/sm"
)

// CCWS is Cache-Conscious Wavefront Scheduling (Rogers et al., MICRO
// 2012), the paper's main point of comparison, modelled after its
// lost-locality scoring system: each warp carries a score that jumps
// on every one of its VTA hits (it re-referenced data it lost to
// interference — locality worth protecting) and decays back toward the
// base otherwise. The scores compete for a fixed point budget of
// NumWarps × Base: warps are ranked by score and only the prefix whose
// cumulative score fits the budget may issue. A few warps with strong
// locality therefore crowd out many others — the very over-throttling
// on compute-intensive workloads that the CIAO paper criticises.
type CCWS struct {
	sm.Base
	sm.GreedyThenOldest

	// BaseScore is each warp's resting score (one budget share).
	BaseScore float64
	// ScoreBump is added to a warp's score on each of its VTA hits.
	ScoreBump float64
	// ScoreCap bounds an individual score.
	ScoreCap float64
	// Decay multiplies the above-base part of scores each epoch.
	Decay float64
	// UpdateEpoch is the throttle-set refresh period in cycles.
	UpdateEpoch uint64

	scores    []float64
	lastCheck uint64
}

// NewCCWS returns a CCWS controller with the default tuning.
func NewCCWS() *CCWS {
	return &CCWS{
		BaseScore:   1,
		ScoreBump:   2,
		ScoreCap:    16,
		Decay:       0.93,
		UpdateEpoch: 1000,
	}
}

// Name implements sm.Controller.
func (s *CCWS) Name() string { return "CCWS" }

// Attach implements sm.Controller.
func (s *CCWS) Attach(g *sm.GPU) {
	s.scores = make([]float64, g.NumWarps())
	for i := range s.scores {
		s.scores[i] = s.BaseScore
	}
	s.lastCheck = 0
}

// OnVTAHit raises the interfered warp's lost-locality score.
func (s *CCWS) OnVTAHit(g *sm.GPU, now uint64, interfered, interferer int, atShared bool) {
	s.scores[interfered] += s.ScoreBump
	if s.scores[interfered] > s.ScoreCap {
		s.scores[interfered] = s.ScoreCap
	}
}

// OnCycle refreshes the throttle set each epoch: warps ranked by score
// descending claim budget greedily; warps that do not fit are stalled.
func (s *CCWS) OnCycle(g *sm.GPU, now uint64) {
	if now < s.lastCheck+s.UpdateEpoch {
		return
	}
	s.lastCheck = now

	for i := range s.scores {
		s.scores[i] = s.BaseScore + (s.scores[i]-s.BaseScore)*s.Decay
	}

	order := make([]int, 0, g.NumWarps())
	for i := 0; i < g.NumWarps(); i++ {
		if !g.Warp(i).Finished {
			order = append(order, i)
		}
	}
	// Highest locality first; older warps win ties.
	sort.Slice(order, func(a, b int) bool {
		if s.scores[order[a]] != s.scores[order[b]] {
			return s.scores[order[a]] > s.scores[order[b]]
		}
		return order[a] < order[b]
	})

	budget := float64(len(order)) * s.BaseScore
	cum := 0.0
	activated := 0
	for _, wid := range order {
		sc := s.scores[wid]
		if sc < s.BaseScore {
			sc = s.BaseScore
		}
		cum += sc
		active := cum <= budget || activated == 0 // always keep one
		g.Warp(wid).V = active
		if active {
			activated++
		}
	}
}

// Pick implements sm.Controller.
func (s *CCWS) Pick(g *sm.GPU, now uint64) int {
	return s.PickGTO(g, now, sm.EligibleOrBarrierBoosted(g))
}

// Score exposes a warp's current lost-locality score, for tests.
func (s *CCWS) Score(wid int) float64 { return s.scores[wid] }

// ThrottledWarps reports the current stalled count, for tests.
func (s *CCWS) ThrottledWarps(g *sm.GPU) int {
	n := 0
	for i := 0; i < g.NumWarps(); i++ {
		w := g.Warp(i)
		if !w.Finished && !w.V {
			n++
		}
	}
	return n
}
