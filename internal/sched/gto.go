// Package sched implements the baseline warp schedulers the CIAO paper
// compares against (§V-A): GTO (greedy-then-oldest with XOR set
// hashing), CCWS (cache-conscious wavefront scheduling), Best-SWL
// (best static wavefront limiting) and statPCAL (priority-based cache
// allocation with L1D bypassing). The CIAO schedulers themselves live
// in internal/core.
package sched

import "repro/internal/sm"

// GTO is the baseline greedy-then-oldest scheduler: maximum TLP, no
// cache awareness.
type GTO struct {
	sm.Base
	sm.GreedyThenOldest
}

// NewGTO returns a GTO controller.
func NewGTO() *GTO { return &GTO{} }

// Name implements sm.Controller.
func (s *GTO) Name() string { return "GTO" }

// Pick implements sm.Controller.
func (s *GTO) Pick(g *sm.GPU, now uint64) int {
	return s.PickGTO(g, now, func(*sm.Warp) bool { return true })
}

// LRR is a loose round-robin scheduler, provided as an extra baseline
// for ablations: warps issue in rotating order with no greediness.
type LRR struct {
	sm.Base
	next int
}

// NewLRR returns an LRR controller.
func NewLRR() *LRR { return &LRR{} }

// Name implements sm.Controller.
func (s *LRR) Name() string { return "LRR" }

// Pick implements sm.Controller.
func (s *LRR) Pick(g *sm.GPU, now uint64) int {
	n := g.NumWarps()
	for off := 0; off < n; off++ {
		i := (s.next + off) % n
		if g.Warp(i).Ready(now) {
			s.next = (i + 1) % n
			return i
		}
	}
	return -1
}
