package sched_test

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/sm"
	"repro/internal/workload"
)

func testSpec() workload.Spec {
	return workload.Spec{
		Name:          "sched-test",
		Class:         workload.SWS,
		APKI:          90,
		InputBytes:    2 << 20,
		NwrpBest:      4,
		NumWarps:      16,
		WarpsPerCTA:   4,
		InstrPerWarp:  2500,
		RegionSharing: 1,
		HeavyEvery:    5,
		StorePct:      5,
		Seed:          99,
	}
}

func newGPU(t *testing.T, ctrl sm.Controller) *sm.GPU {
	t.Helper()
	cfg := sm.DefaultConfig()
	cfg.SampleInterval = 500
	return sm.MustGPU(cfg, workload.MustKernel(testSpec()), ctrl, nil)
}

func TestGTORunsAllWarps(t *testing.T) {
	g := newGPU(t, sched.NewGTO())
	r := g.Run()
	if r.FinishedWarps != 16 || r.TimedOut {
		t.Fatalf("result: %+v", r)
	}
	// GTO never throttles.
	if r.DeadlockFrees != 0 {
		t.Fatal("GTO triggered the deadlock valve")
	}
}

func TestGTOGreedyThenOldest(t *testing.T) {
	gto := sched.NewGTO()
	g := newGPU(t, gto)

	// First pick with everyone ready: the oldest (lowest ID) warp.
	if got := gto.Pick(g, 0); got != 0 {
		t.Fatalf("first pick = %d, want oldest warp 0", got)
	}
	// Make warp 3 the current warp, keep it ready: greedy keeps it.
	g.Warp(0).NextReady = 100 // oldest not ready
	if got := gto.Pick(g, 0); got != 1 {
		t.Fatalf("pick = %d, want next-oldest 1", got)
	}
	// Warp 1 is now current; while it stays ready it is re-picked even
	// though older warp 0 becomes ready again.
	g.Warp(0).NextReady = 0
	if got := gto.Pick(g, 0); got != 1 {
		t.Fatalf("greedy pick = %d, want current warp 1", got)
	}
	// Current blocks: fall back to the oldest ready warp.
	g.Warp(1).NextReady = 100
	if got := gto.Pick(g, 0); got != 0 {
		t.Fatalf("fallback pick = %d, want oldest 0", got)
	}
}

func TestLRRRotates(t *testing.T) {
	g := newGPU(t, sched.NewLRR())
	r := g.Run()
	if r.FinishedWarps != 16 {
		t.Fatal("LRR did not finish")
	}
}

func TestBestSWLDefaultsFromSpec(t *testing.T) {
	s := sched.NewBestSWL(0)
	g := newGPU(t, s)
	if s.Limit != 4 {
		t.Fatalf("limit = %d, want spec Nwrp 4", s.Limit)
	}
	if g.ActiveWarps() != 4 {
		t.Fatalf("active = %d", g.ActiveWarps())
	}
}

func TestBestSWLClampsLimit(t *testing.T) {
	s := sched.NewBestSWL(100)
	newGPU(t, s)
	if s.Limit != 16 {
		t.Fatalf("limit = %d, want clamp to 16", s.Limit)
	}
}

func TestBestSWLHandsOffOnFinish(t *testing.T) {
	s := sched.NewBestSWL(2)
	g := newGPU(t, s)
	r := g.Run()
	if r.FinishedWarps != 16 {
		t.Fatalf("finished = %d; warp hand-off broken", r.FinishedWarps)
	}
}

func TestCCWSScoresRiseOnVTAHits(t *testing.T) {
	ccws := sched.NewCCWS()
	g := newGPU(t, ccws)
	ccws.OnVTAHit(g, 0, 3, 7, false)
	ccws.OnVTAHit(g, 0, 3, 7, false)
	if ccws.Score(3) <= ccws.Score(4) {
		t.Fatal("VTA hits did not raise the interfered warp's score")
	}
}

func TestCCWSScoreCap(t *testing.T) {
	ccws := sched.NewCCWS()
	g := newGPU(t, ccws)
	for i := 0; i < 100; i++ {
		ccws.OnVTAHit(g, 0, 3, 7, false)
	}
	if ccws.Score(3) > ccws.ScoreCap {
		t.Fatalf("score %f exceeds cap %f", ccws.Score(3), ccws.ScoreCap)
	}
}

func TestCCWSBudgetThrottling(t *testing.T) {
	ccws := sched.NewCCWS()
	g := newGPU(t, ccws)
	// Give a handful of warps saturated scores: they should consume
	// the budget and stall the rest at the next update epoch.
	for _, w := range []int{0, 1, 2} {
		for i := 0; i < 20; i++ {
			ccws.OnVTAHit(g, 0, w, 9, false)
		}
	}
	ccws.OnCycle(g, ccws.UpdateEpoch+1)
	throttled := ccws.ThrottledWarps(g)
	if throttled == 0 {
		t.Fatal("budget mechanism throttled nobody")
	}
	// The highest-locality warp must stay active (CCWS protects
	// locality), and saturated scorers consume the budget so deeply
	// that most of the pool stalls — the over-throttling the paper
	// criticises.
	if !g.Warp(0).V {
		t.Fatal("top-locality warp stalled")
	}
	if throttled < g.NumWarps()/2 {
		t.Fatalf("only %d warps throttled despite saturated scores", throttled)
	}
	// No base-score warp may run while a higher scorer is stalled.
	for w := 3; w < g.NumWarps(); w++ {
		if g.Warp(w).V && !g.Warp(1).V && ccws.Score(w) < ccws.Score(1) {
			t.Fatalf("low-score warp %d active while high-score warp 1 stalled", w)
		}
	}
}

func TestCCWSDecayReleases(t *testing.T) {
	ccws := sched.NewCCWS()
	g := newGPU(t, ccws)
	for i := 0; i < 30; i++ {
		ccws.OnVTAHit(g, 0, 0, 9, false)
	}
	ccws.OnCycle(g, ccws.UpdateEpoch+1)
	initial := ccws.ThrottledWarps(g)
	// With no further hits, decay must eventually reactivate everyone.
	for e := uint64(2); e < 200; e++ {
		ccws.OnCycle(g, (ccws.UpdateEpoch+1)*e)
	}
	if got := ccws.ThrottledWarps(g); got >= initial && initial > 0 {
		t.Fatalf("decay did not release warps: %d -> %d", initial, got)
	}
}

func TestCCWSCompletes(t *testing.T) {
	g := newGPU(t, sched.NewCCWS())
	r := g.Run()
	if r.FinishedWarps != 16 {
		t.Fatal("CCWS did not finish")
	}
}

func TestStatPCALTokenRotation(t *testing.T) {
	s := sched.NewStatPCAL()
	g := newGPU(t, s)
	if s.MemPath(g, 0) != sm.PathL1 {
		t.Fatal("warp 0 should hold a token")
	}
	r := g.Run()
	if r.FinishedWarps != 16 {
		t.Fatal("statPCAL did not finish")
	}
}

func TestStatPCALValveRespondsToBandwidth(t *testing.T) {
	s := sched.NewStatPCAL()
	g := newGPU(t, s)
	// Idle bus: grants should open fully at the first epoch.
	s.OnCycle(g, s.UpdateEpoch+1)
	if got := s.BypassGrants(); got != g.NumWarps()-s.Tokens {
		t.Fatalf("idle-bus grants = %d, want all %d", got, g.NumWarps()-s.Tokens)
	}
	// Saturate the DRAM bus, then re-probe: grants must drop to zero.
	for i := 0; i < 3000; i++ {
		g.L2().DRAM().Service(uint64(i), memory.Addr(0x1000_0000+0x80*(i%512)), false)
	}
	s.OnCycle(g, 2*(s.UpdateEpoch+1))
	if got := s.BypassGrants(); got != 0 {
		t.Fatalf("saturated-bus grants = %d, want 0", got)
	}
	if s.BypassOpen() {
		t.Fatal("valve open under saturation")
	}
}

func TestStatPCALBypassSkipsL1(t *testing.T) {
	s := sched.NewStatPCAL()
	g := newGPU(t, s)
	for wid := 0; wid < g.NumWarps(); wid++ {
		want := sm.PathL1
		if wid >= s.Tokens {
			want = sm.PathBypass
		}
		if got := s.MemPath(g, wid); got != want {
			t.Fatalf("warp %d path = %v, want %v", wid, got, want)
		}
	}
}
