package sched

import "repro/internal/sm"

// StatPCAL models the bypass scheme of Li et al. (HPCA 2015,
// "Priority-based cache allocation in throughput processors") as the
// paper uses it: a token set of warps (sized like Best-SWL's profiled
// limit) gets normal L1D allocation; the remaining warps stay active
// but *bypass* L1D straight to L2/DRAM whenever the DRAM bus has
// headroom, and are throttled when it does not. This preserves TLP
// without polluting L1D, but bypassed requests eat the long DRAM
// latency — the weakness CIAO exploits (§V-B).
type StatPCAL struct {
	sm.Base
	sm.GreedyThenOldest

	// Tokens is the number of L1-allocating warps (0 = kernel's Nwrp).
	Tokens int
	// CloseThreshold is the window DRAM-bus utilisation above which
	// the bypass valve closes (non-token warps throttle).
	CloseThreshold float64
	// OpenThreshold is the utilisation below which it reopens; the
	// gap provides hysteresis so the valve does not oscillate.
	OpenThreshold float64
	// UpdateEpoch is the bandwidth-probe period in cycles.
	UpdateEpoch uint64

	bypassOK  bool
	nBypass   int // how many non-token warps may run this epoch
	tokens    map[int]bool
	lastCheck uint64
	lastBusy  uint64
}

// NewStatPCAL returns a statPCAL controller with default tuning.
func NewStatPCAL() *StatPCAL {
	return &StatPCAL{CloseThreshold: 0.85, OpenThreshold: 0.55, UpdateEpoch: 1000}
}

// Name implements sm.Controller.
func (s *StatPCAL) Name() string { return "statPCAL" }

// Attach sizes the token set.
func (s *StatPCAL) Attach(g *sm.GPU) {
	if s.Tokens <= 0 {
		s.Tokens = g.Kernel().Spec().NwrpBest
	}
	if s.Tokens <= 0 {
		s.Tokens = 1
	}
	if s.Tokens > g.NumWarps() {
		s.Tokens = g.NumWarps()
	}
	s.tokens = make(map[int]bool, s.Tokens)
	s.refillTokens(g)
	s.bypassOK = true
	s.nBypass = 0
	s.lastCheck = 0
}

// refillTokens keeps the token set at Tokens live warps (lowest IDs
// first), handing a finished warp's token to the next live warp.
func (s *StatPCAL) refillTokens(g *sm.GPU) {
	for wid := range s.tokens {
		if g.Warp(wid).Finished {
			delete(s.tokens, wid)
		}
	}
	for wid := 0; wid < g.NumWarps() && len(s.tokens) < s.Tokens; wid++ {
		if !g.Warp(wid).Finished && !s.tokens[wid] {
			s.tokens[wid] = true
		}
	}
}

// isToken reports whether the warp holds an L1-allocation token.
func (s *StatPCAL) isToken(wid int) bool { return s.tokens[wid] }

// OnWarpFinished reassigns a freed token.
func (s *StatPCAL) OnWarpFinished(g *sm.GPU, wid int) { s.refillTokens(g) }

// OnCycle probes DRAM bandwidth over the last epoch window and sizes
// the bypass set to the available headroom (with hysteresis at the
// extremes): full utilisation → no bypassers; idle bus → all of them.
func (s *StatPCAL) OnCycle(g *sm.GPU, now uint64) {
	if now < s.lastCheck+s.UpdateEpoch {
		return
	}
	window := now - s.lastCheck
	s.lastCheck = now
	busy := g.L2().DRAM().Stats().BusBusy
	util := float64(busy-s.lastBusy) / float64(window)
	s.lastBusy = busy

	nonTokens := g.NumWarps() - s.Tokens
	switch {
	case util >= s.CloseThreshold:
		s.nBypass = 0
	case util <= s.OpenThreshold:
		s.nBypass = nonTokens
	default:
		frac := (s.CloseThreshold - util) / (s.CloseThreshold - s.OpenThreshold)
		s.nBypass = int(frac * float64(nonTokens))
	}
	s.bypassOK = s.nBypass > 0

	// Reflect the throttle state in V flags so active-warp accounting
	// (and the paper's Figure 9b-style plots) see it.
	granted := 0
	for i := 0; i < g.NumWarps(); i++ {
		w := g.Warp(i)
		if w.Finished {
			continue
		}
		if s.isToken(i) {
			w.V = true
			continue
		}
		w.V = granted < s.nBypass
		granted++
	}
}

// Pick schedules token warps always; non-token warps only while they
// hold a bypass grant (or their CTA is stuck at a barrier).
func (s *StatPCAL) Pick(g *sm.GPU, now uint64) int {
	return s.PickGTO(g, now, sm.EligibleOrBarrierBoosted(g))
}

// MemPath sends non-token warps around L1D.
func (s *StatPCAL) MemPath(g *sm.GPU, wid int) sm.MemPath {
	if s.isToken(wid) {
		return sm.PathL1
	}
	return sm.PathBypass
}

// BypassOpen reports the valve state, for tests.
func (s *StatPCAL) BypassOpen() bool { return s.bypassOK }

// BypassGrants reports how many non-token warps may currently run,
// for tests.
func (s *StatPCAL) BypassGrants() int { return s.nBypass }
