package service

import (
	"container/list"
	"sync"

	"repro/internal/metrics"
)

// ResultCache is a bounded, goroutine-safe LRU of encoded experiment
// results, content-addressed by Spec.Key(). Entries are immutable
// byte slices, so a hit can be served to any number of readers without
// copying; callers must not mutate returned payloads.
type ResultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
	counters metrics.CacheCounters
}

type cacheEntry struct {
	key     string
	payload []byte
}

// NewResultCache builds a cache holding at most capacity entries.
// capacity <= 0 disables storage (every lookup misses).
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the payload for key, marking it most recently used.
func (c *ResultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.counters.Misses.Inc()
		return nil, false
	}
	c.counters.Hits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).payload, true
}

// Put stores the payload under key, evicting the least recently used
// entry when over capacity.
func (c *ResultCache) Put(key string, payload []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).payload = payload
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, payload: payload})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.counters.Evictions.Inc()
	}
}

// Len reports the number of stored entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the hit/miss/eviction counters.
func (c *ResultCache) Stats() metrics.CacheSnapshot {
	return c.counters.Snapshot()
}
