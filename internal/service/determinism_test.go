package service

import (
	"bytes"
	"testing"

	"repro/internal/harness"
	"repro/internal/workload"
)

// TestDeterministicMemoryStream guards the content-addressed cache's
// core assumption: the same benchmark + seed generates an identical
// instruction and memory-reference stream every time.
func TestDeterministicMemoryStream(t *testing.T) {
	spec, err := workload.ByName("KMN")
	if err != nil {
		t.Fatal(err)
	}
	spec.InstrPerWarp = 1000
	spec.Seed = 12345
	for _, warp := range []int{0, 5, 47} {
		a := workload.NewWarpStream(spec, warp)
		b := workload.NewWarpStream(spec, warp)
		for i := 0; ; i++ {
			ia, oka := a.Next()
			ib, okb := b.Next()
			if oka != okb {
				t.Fatalf("warp %d: streams diverge in length at %d", warp, i)
			}
			if !oka {
				break
			}
			if ia != ib {
				t.Fatalf("warp %d instr %d: %+v != %+v", warp, i, ia, ib)
			}
		}
	}
}

// TestDeterministicCellResult runs the same cell twice through the
// pure executor and demands byte-identical JSON — the property that
// makes cached payloads interchangeable with fresh simulations.
func TestDeterministicCellResult(t *testing.T) {
	specs := []Spec{
		{Experiment: ExpRun, Bench: "SYRK", Sched: "CIAO-C",
			Options: OptionSpec{InstrPerWarp: 800, Seed: 7}},
		{Experiment: ExpRun, Bench: "ATAX", Sched: "GTO",
			Options: OptionSpec{InstrPerWarp: 800, Seed: 7},
			Config:  &harness.Override{L1SizeKB: 32, L1Ways: 8}},
	}
	for _, spec := range specs {
		first, err := Execute(spec)
		if err != nil {
			t.Fatal(err)
		}
		second, err := Execute(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s/%s: runs differ:\n%s\n%s", spec.Bench, spec.Sched, first, second)
		}
	}
}

// TestSyntheticCellDeterminism: a synthetic descriptor is as
// cacheable as a Table II kernel — same descriptor ⇒ byte-identical
// CellResult JSON, and descriptor spellings share one content address
// while materially different descriptors do not.
func TestSyntheticCellDeterminism(t *testing.T) {
	spec := Spec{Experiment: ExpRun,
		Bench: "synthetic:class=SWS,apki=90,window=24,reuse=6,div_pct=20,seed=11",
		Sched: "CIAO-C", Options: OptionSpec{InstrPerWarp: 800}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	first, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("synthetic cell runs differ:\n%s\n%s", first, second)
	}

	respelled := spec
	respelled.Bench = "synthetic:seed=11,div_pct=20,reuse=6,window=24,apki=90,class=SWS"
	if spec.Key() != respelled.Key() {
		t.Error("descriptor spellings of the same workload got different keys")
	}
	other := spec
	other.Bench = "synthetic:class=SWS,apki=90,window=24,reuse=6,div_pct=20,seed=12"
	if spec.Key() == other.Key() {
		t.Error("different synthetic seeds share a key")
	}
	bad := spec
	bad.Bench = "synthetic:apki=0"
	if err := bad.Validate(); err == nil {
		t.Error("invalid descriptor accepted by Validate")
	}
}

// TestConfigOverrideAddressing: overrides are part of the cell's
// content address (different machine, different key), while a
// present-but-empty override is the baseline machine (same key).
func TestConfigOverrideAddressing(t *testing.T) {
	base := Spec{Experiment: ExpRun, Bench: "SYRK", Sched: "GTO"}
	withCfg := base
	withCfg.Config = &harness.Override{L1SizeKB: 32}
	if base.Key() == withCfg.Key() {
		t.Error("config override did not change the spec key")
	}
	empty := base
	empty.Config = &harness.Override{}
	if base.Key() != empty.Key() {
		t.Error("empty override changed the spec key")
	}
	if err := withCfg.Validate(); err != nil {
		t.Errorf("valid override rejected: %v", err)
	}
	bad := base
	bad.Config = &harness.Override{L1SizeKB: 17}
	if err := bad.Validate(); err == nil {
		t.Error("impossible L1 geometry accepted")
	}
	fig := Spec{Experiment: ExpFig8, Config: &harness.Override{L1SizeKB: 32}}
	if err := fig.Validate(); err == nil {
		t.Error("config override on a figure experiment accepted")
	}
}

// TestConfigOverrideChangesResult: the override must actually reach
// the machine — a 4× larger L1 cannot leave the hit rate untouched on
// a cache-sensitive benchmark.
func TestConfigOverrideChangesResult(t *testing.T) {
	opts := OptionSpec{InstrPerWarp: 1200, Seed: 3}
	small, err := Execute(Spec{Experiment: ExpRun, Bench: "SYRK", Sched: "GTO", Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Execute(Spec{Experiment: ExpRun, Bench: "SYRK", Sched: "GTO", Options: opts,
		Config: &harness.Override{L1SizeKB: 64, L1Ways: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(small, big) {
		t.Error("64KB L1 produced byte-identical results to 16KB L1")
	}
}
