package service

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Source reports how a result was obtained.
type Source string

// Result sources.
const (
	// SourceComputed means this request ran the simulation.
	SourceComputed Source = "computed"
	// SourceCache means the result was served from the LRU cache.
	SourceCache Source = "cache"
	// SourceCoalesced means an identical request was already in
	// flight and this one waited for it instead of re-simulating.
	SourceCoalesced Source = "coalesced"
)

// RunFunc executes a spec and returns its encoded result.
type RunFunc func(Spec) ([]byte, error)

// Engine executes experiment specs with three layers of work
// avoidance: a content-addressed LRU result cache, single-flight
// coalescing of identical in-flight specs, and a bounded worker pool
// so a burst of distinct requests cannot oversubscribe the host (each
// simulation already fans out internally via harness.RunMatrix).
type Engine struct {
	run   RunFunc
	cache *ResultCache
	slots chan struct{}

	maxJobs   int
	mu        sync.Mutex
	inflight  map[string]*flight
	jobs      map[string]*Job
	jobOrder  []string // submission order, for bounded retention
	seq       uint64
	runs      metrics.Counter
	submitted metrics.Counter
	waiting   atomic.Int64
}

type flight struct {
	done    chan struct{}
	payload []byte
	err     error
}

// Config sizes an Engine.
type Config struct {
	// Workers bounds concurrently executing specs (0 = GOMAXPROCS).
	Workers int
	// CacheEntries bounds the result cache (0 = default 256,
	// negative = caching disabled).
	CacheEntries int
	// MaxJobs bounds retained job records, results included; the
	// oldest finished jobs are evicted first (0 = default 1024).
	MaxJobs int
	// Run overrides the executor; nil means Execute. Tests inject
	// counting fakes here.
	Run RunFunc
}

// NewEngine builds an engine.
func NewEngine(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.Run == nil {
		cfg.Run = Execute
	}
	return &Engine{
		run:      cfg.Run,
		cache:    NewResultCache(cfg.CacheEntries),
		slots:    make(chan struct{}, cfg.Workers),
		maxJobs:  cfg.MaxJobs,
		inflight: make(map[string]*flight),
		jobs:     make(map[string]*Job),
	}
}

// Cache exposes the result cache (for stats endpoints).
func (e *Engine) Cache() *ResultCache { return e.cache }

// Simulations returns how many times the executor actually ran —
// cache hits and coalesced waits do not count.
func (e *Engine) Simulations() uint64 { return e.runs.Value() }

// JobsSubmitted returns how many async jobs Submit accepted.
func (e *Engine) JobsSubmitted() uint64 { return e.submitted.Value() }

// QueueDepth reports how many requests are blocked waiting for a
// worker slot right now. The admission controller sheds new work when
// this grows past its bound.
func (e *Engine) QueueDepth() int {
	if n := e.waiting.Load(); n > 0 {
		return int(n)
	}
	return 0
}

// Running reports how many worker slots are currently occupied.
func (e *Engine) Running() int { return len(e.slots) }

// WriteProm emits the engine's counters in Prometheus text format.
func (e *Engine) WriteProm(p *metrics.PromWriter) {
	cache := e.cache.Stats()
	p.Counter("ciao_cache_hits_total", "Result cache hits.", cache.Hits)
	p.Counter("ciao_cache_misses_total", "Result cache misses.", cache.Misses)
	p.Counter("ciao_cache_evictions_total", "Result cache evictions.", cache.Evictions)
	p.Gauge("ciao_cache_entries", "Live result cache entries.", float64(e.cache.Len()))
	p.Counter("ciao_simulations_total", "Simulations actually executed (cache hits excluded).", e.Simulations())
	p.Counter("ciao_jobs_submitted_total", "Async experiment jobs accepted.", e.JobsSubmitted())
	p.Gauge("ciao_engine_queue_depth", "Requests waiting for a worker slot.", float64(e.QueueDepth()))
	p.Gauge("ciao_engine_running", "Worker slots currently occupied.", float64(e.Running()))
}

// Run executes the spec synchronously, deduplicating against the
// cache and any identical in-flight request. The returned payload is
// shared and must not be mutated.
func (e *Engine) Run(spec Spec) ([]byte, Source, error) {
	if err := spec.Validate(); err != nil {
		return nil, "", err
	}
	key := spec.Key()
	if payload, ok := e.cache.Get(key); ok {
		return payload, SourceCache, nil
	}

	e.mu.Lock()
	if f, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, "", f.err
		}
		return f.payload, SourceCoalesced, nil
	}
	f := &flight{done: make(chan struct{})}
	e.inflight[key] = f
	e.mu.Unlock()

	e.waiting.Add(1)
	e.slots <- struct{}{}
	e.waiting.Add(-1)
	e.runs.Inc()
	payload, err := e.run(spec)
	<-e.slots

	if err == nil {
		e.cache.Put(key, payload)
	}
	f.payload, f.err = payload, err
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
	close(f.done)

	if err != nil {
		return nil, "", err
	}
	return payload, SourceComputed, nil
}

// JobState is a job's lifecycle phase.
type JobState string

// Job states.
const (
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job tracks one asynchronous experiment submission.
type Job struct {
	id      string
	spec    Spec
	created time.Time

	mu       sync.Mutex
	state    JobState
	source   Source
	payload  []byte
	err      error
	finished time.Time
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// JobStatus is the JSON view of a job.
type JobStatus struct {
	ID       string          `json:"id"`
	Spec     Spec            `json:"spec"`
	State    JobState        `json:"state"`
	Source   Source          `json:"source,omitempty"`
	Error    string          `json:"error,omitempty"`
	Created  time.Time       `json:"created"`
	Finished *time.Time      `json:"finished,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID:      j.id,
		Spec:    j.spec,
		State:   j.state,
		Source:  j.source,
		Created: j.created,
	}
	if j.state != JobRunning {
		t := j.finished
		s.Finished = &t
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if j.state == JobDone {
		s.Result = j.payload
	}
	return s
}

// Submit validates the spec and starts it asynchronously, returning a
// job whose ID can be polled via Job lookup. Submitted jobs share the
// same cache and coalescing as synchronous Run calls. At most MaxJobs
// records are retained: once over the limit the oldest finished jobs
// are dropped, after which their IDs look up as unknown.
func (e *Engine) Submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.seq++
	j := &Job{
		id:      fmt.Sprintf("job-%d-%s", e.seq, spec.Key()[:12]),
		spec:    spec,
		created: time.Now().UTC(),
		state:   JobRunning,
	}
	e.jobs[j.id] = j
	e.jobOrder = append(e.jobOrder, j.id)
	e.pruneJobsLocked()
	e.mu.Unlock()
	e.submitted.Inc()

	go func() {
		payload, source, err := e.Run(spec)
		j.mu.Lock()
		defer j.mu.Unlock()
		j.finished = time.Now().UTC()
		if err != nil {
			j.state, j.err = JobFailed, err
			return
		}
		j.state, j.source, j.payload = JobDone, source, payload
	}()
	return j, nil
}

// pruneJobsLocked evicts the oldest finished jobs while over the
// retention limit. Running jobs are never dropped, so the map can
// transiently exceed maxJobs under a burst of in-flight submissions.
// Callers must hold e.mu.
func (e *Engine) pruneJobsLocked() {
	for len(e.jobs) > e.maxJobs {
		evicted := false
		for i, id := range e.jobOrder {
			j := e.jobs[id]
			j.mu.Lock()
			finished := j.state != JobRunning
			j.mu.Unlock()
			if finished {
				delete(e.jobs, id)
				e.jobOrder = append(e.jobOrder[:i], e.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// Job looks up a submitted job by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}
