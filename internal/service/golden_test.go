package service

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestGoldenCellResults pins the exact CellResult JSON of five cells
// spanning every major simulator path (GTO baseline, CIAO shared-memory
// isolation, CCWS, statPCAL, CIAO-P) to SHA-256 hashes captured from
// the simulator before the hot-path rewrite (ring-buffer LatencyQueue,
// pooled MSHR entries, batched warp streams, live-warp scheduling).
//
// A hash mismatch means the rewrite changed simulated behaviour, not
// just its speed — every optimisation to the cycle loop must be
// bit-exact. If a deliberate model change lands, regenerate the hashes
// and say so in the commit message.
func TestGoldenCellResults(t *testing.T) {
	golden := []struct {
		bench, sched string
		sha          string
	}{
		{"SYRK", "GTO", "b09b4687b29aa9dfb417a04b54ec8238df085da2a6cc4ae3c8fd89c150c100d4"},
		{"SYRK", "CIAO-C", "76f3d09fec97a6df2decd76470ef09cafca2b93b14eed585d8d5677903691751"},
		{"ATAX", "CCWS", "e98e31d0ba84075a47eb02bc416478283f59cdba11e135c5575266b465e6e745"},
		{"Backprop", "statPCAL", "e6df73ffac843fea01156a6b62810dd57b74bc136a6b8a181f280398f38d2800"},
		{"KMN", "CIAO-P", "be0937d776f63f534fa37430702f59debe5bd1c5d198aeb5e1c0a9d7e5b794d2"},
	}
	for _, g := range golden {
		spec := Spec{Experiment: ExpRun, Bench: g.bench, Sched: g.sched,
			Options: OptionSpec{InstrPerWarp: 1500, Seed: 7}}
		payload, err := Execute(spec)
		if err != nil {
			t.Fatalf("%s/%s: %v", g.bench, g.sched, err)
		}
		sum := sha256.Sum256(payload)
		if got := hex.EncodeToString(sum[:]); got != g.sha {
			t.Errorf("%s/%s: CellResult JSON diverged from pre-rewrite golden\n got %s\nwant %s",
				g.bench, g.sched, got, g.sha)
		}
	}
}
