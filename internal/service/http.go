package service

import (
	"fmt"
	"net/http"

	"repro/internal/httpx"
	"repro/internal/metrics"
)

// maxBodyBytes bounds request bodies; specs are tiny.
const maxBodyBytes = 1 << 20

// MetricsSnapshot is the /metrics payload.
type MetricsSnapshot struct {
	// Cache is the result cache's hit/miss/eviction counters.
	Cache any `json:"cache"`
	// CacheEntries is the live entry count.
	CacheEntries int `json:"cache_entries"`
	// Simulations counts actual executor runs (cache hits excluded).
	Simulations uint64 `json:"simulations"`
	// JobsSubmitted counts accepted async jobs.
	JobsSubmitted uint64 `json:"jobs_submitted"`
	// Extra carries additional subsystems keyed by name (e.g.
	// "sweeps": cells completed, failures).
	Extra map[string]any `json:"extra,omitempty"`
	// HTTP carries per-route RED snapshots (requests, errors, shed,
	// latency quantiles) when the server installed the RED middleware.
	HTTP map[string]metrics.SeriesSnapshot `json:"http,omitempty"`
}

// handlerConfig collects the observability hooks a HandlerOption can
// install: they are owned by layers the service package cannot import
// (sweep and coord sit above it) plus the RED registry the server's
// middleware feeds.
type handlerConfig struct {
	extra   func() map[string]any
	httpRED *metrics.RED
	prom    []func(*metrics.PromWriter)
}

// HandlerOption customises NewHandler.
type HandlerOption func(*handlerConfig)

// WithExtraMetrics folds fn's result into the JSON /metrics and
// /healthz payloads under "extra", keyed by subsystem.
func WithExtraMetrics(fn func() map[string]any) HandlerOption {
	return func(c *handlerConfig) { c.extra = fn }
}

// WithHTTPRED adds per-route RED snapshots to the JSON /metrics
// payload and ciao_http_* families to the Prometheus exposition.
func WithHTTPRED(red *metrics.RED) HandlerOption {
	return func(c *handlerConfig) { c.httpRED = red }
}

// WithProm appends subsystem hooks (sweep manager, coordinator hub) to
// the Prometheus exposition.
func WithProm(hooks ...func(*metrics.PromWriter)) HandlerOption {
	return func(c *handlerConfig) { c.prom = append(c.prom, hooks...) }
}

// NewHandler wires the engine into an http.Handler:
//
//	POST /run          — one bench × sched cell, synchronous
//	POST /experiment   — any experiment by name, asynchronous (202 + job id)
//	GET  /jobs/{id}    — job status; result inlined once done
//	GET  /metrics      — engine/cache counters (plus extra subsystems)
//	GET  /healthz      — liveness plus the same counters
//
// Responses are JSON; /run and finished jobs carry an X-Cache header
// (computed, cache, or coalesced) so clients and tests can observe
// cache effectiveness. GET /metrics answers JSON by default and
// Prometheus text exposition when the request asks for it
// (?format=prom or Accept: text/plain). Observability hooks are
// installed via With* options.
func NewHandler(e *Engine, options ...HandlerOption) http.Handler {
	var opts handlerConfig
	for _, o := range options {
		o(&opts)
	}
	snapshot := func() MetricsSnapshot {
		s := MetricsSnapshot{
			Cache:         e.Cache().Stats(),
			CacheEntries:  e.Cache().Len(),
			Simulations:   e.Simulations(),
			JobsSubmitted: e.JobsSubmitted(),
		}
		if opts.extra != nil {
			s.Extra = opts.extra()
		}
		if opts.httpRED != nil {
			s.HTTP = opts.httpRED.Snapshot()
		}
		return s
	}
	writeProm := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", metrics.PromContentType)
		p := metrics.NewPromWriter(w)
		e.WriteProm(p)
		if opts.httpRED != nil {
			opts.httpRED.WriteProm(p, "ciao_http", "route")
		}
		for _, hook := range opts.prom {
			hook(p)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		spec, ok := decodeSpec(w, r)
		if !ok {
			return
		}
		if spec.Experiment == "" {
			spec.Experiment = ExpRun
		}
		if spec.Experiment != ExpRun {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("service: /run only accepts single cells; POST /experiment for %q", spec.Experiment))
			return
		}
		payload, source, err := e.Run(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", string(source))
		w.Write(payload)
	})

	mux.HandleFunc("POST /experiment", func(w http.ResponseWriter, r *http.Request) {
		spec, ok := decodeSpec(w, r)
		if !ok {
			return
		}
		job, err := e.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Status())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := e.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", r.PathValue("id")))
			return
		}
		status := job.Status()
		if status.Source != "" {
			w.Header().Set("X-Cache", string(status.Source))
		}
		writeJSON(w, http.StatusOK, status)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if httpx.WantsProm(r) {
			writeProm(w)
			return
		}
		writeJSON(w, http.StatusOK, snapshot())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Status      string          `json:"status"`
			Metrics     MetricsSnapshot `json:"metrics"`
			Experiments []string        `json:"experiments"`
		}{
			Status:      "ok",
			Metrics:     snapshot(),
			Experiments: Experiments(),
		})
	})
	return mux
}

func decodeSpec(w http.ResponseWriter, r *http.Request) (Spec, bool) {
	var spec Spec
	if err := httpx.DecodeStrict(r, maxBodyBytes, &spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("service: %w", err))
		return Spec{}, false
	}
	return spec, true
}

func writeJSON(w http.ResponseWriter, code int, v any) { httpx.WriteJSON(w, code, v) }

func httpError(w http.ResponseWriter, code int, err error) { httpx.Error(w, code, err) }
