package service

import (
	"fmt"
	"net/http"

	"repro/internal/httpx"
	"repro/internal/metrics"
)

// maxBodyBytes bounds request bodies; specs are tiny.
const maxBodyBytes = 1 << 20

// NewHandler wires the engine into an http.Handler:
//
//	POST /run          — one bench × sched cell, synchronous
//	POST /experiment   — any experiment by name, asynchronous (202 + job id)
//	GET  /jobs/{id}    — job status; result inlined once done
//	GET  /metrics      — engine/cache counters (plus extra subsystems)
//	GET  /healthz      — liveness plus the same counters
//
// Responses are JSON; /run and finished jobs carry an X-Cache header
// (computed, cache, or coalesced) so clients and tests can observe
// cache effectiveness.
func NewHandler(e *Engine) http.Handler { return NewHandlerWith(e, nil) }

// MetricsSnapshot is the /metrics payload.
type MetricsSnapshot struct {
	// Cache is the result cache's hit/miss/eviction counters.
	Cache any `json:"cache"`
	// CacheEntries is the live entry count.
	CacheEntries int `json:"cache_entries"`
	// Simulations counts actual executor runs (cache hits excluded).
	Simulations uint64 `json:"simulations"`
	// JobsSubmitted counts accepted async jobs.
	JobsSubmitted uint64 `json:"jobs_submitted"`
	// Extra carries additional subsystems keyed by name (e.g.
	// "sweeps": cells completed, failures).
	Extra map[string]any `json:"extra,omitempty"`
	// HTTP carries per-route RED snapshots (requests, errors, shed,
	// latency quantiles) when the server installed the RED middleware.
	HTTP map[string]metrics.SeriesSnapshot `json:"http,omitempty"`
}

// HandlerOptions extends NewHandler with hooks owned by layers the
// service package cannot import (sweep, coord sit above it) plus the
// RED registry the server's middleware feeds.
type HandlerOptions struct {
	// Extra is folded into the JSON /metrics and /healthz payloads
	// under "extra", keyed by subsystem.
	Extra func() map[string]any
	// HTTPRED, when set, adds per-route RED snapshots to the JSON
	// payload and ciao_http_* families to the Prometheus exposition.
	HTTPRED *metrics.RED
	// Prom hooks let other subsystems append their own families to the
	// Prometheus exposition (sweep manager, coordinator hub).
	Prom []func(*metrics.PromWriter)
}

// NewHandlerWith is NewHandler plus an extra-metrics hook; see
// NewHandlerOpts for the full option set.
func NewHandlerWith(e *Engine, extra func() map[string]any) http.Handler {
	return NewHandlerOpts(e, HandlerOptions{Extra: extra})
}

// NewHandlerOpts builds the service handler with observability hooks.
// GET /metrics answers JSON by default and Prometheus text exposition
// when the request asks for it (?format=prom or Accept: text/plain).
func NewHandlerOpts(e *Engine, opts HandlerOptions) http.Handler {
	snapshot := func() MetricsSnapshot {
		s := MetricsSnapshot{
			Cache:         e.Cache().Stats(),
			CacheEntries:  e.Cache().Len(),
			Simulations:   e.Simulations(),
			JobsSubmitted: e.JobsSubmitted(),
		}
		if opts.Extra != nil {
			s.Extra = opts.Extra()
		}
		if opts.HTTPRED != nil {
			s.HTTP = opts.HTTPRED.Snapshot()
		}
		return s
	}
	writeProm := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", metrics.PromContentType)
		p := metrics.NewPromWriter(w)
		e.WriteProm(p)
		if opts.HTTPRED != nil {
			opts.HTTPRED.WriteProm(p, "ciao_http", "route")
		}
		for _, hook := range opts.Prom {
			hook(p)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		spec, ok := decodeSpec(w, r)
		if !ok {
			return
		}
		if spec.Experiment == "" {
			spec.Experiment = ExpRun
		}
		if spec.Experiment != ExpRun {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("service: /run only accepts single cells; POST /experiment for %q", spec.Experiment))
			return
		}
		payload, source, err := e.Run(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", string(source))
		w.Write(payload)
	})

	mux.HandleFunc("POST /experiment", func(w http.ResponseWriter, r *http.Request) {
		spec, ok := decodeSpec(w, r)
		if !ok {
			return
		}
		job, err := e.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.Status())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := e.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", r.PathValue("id")))
			return
		}
		status := job.Status()
		if status.Source != "" {
			w.Header().Set("X-Cache", string(status.Source))
		}
		writeJSON(w, http.StatusOK, status)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if httpx.WantsProm(r) {
			writeProm(w)
			return
		}
		writeJSON(w, http.StatusOK, snapshot())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Status      string          `json:"status"`
			Metrics     MetricsSnapshot `json:"metrics"`
			Experiments []string        `json:"experiments"`
		}{
			Status:      "ok",
			Metrics:     snapshot(),
			Experiments: Experiments(),
		})
	})
	return mux
}

func decodeSpec(w http.ResponseWriter, r *http.Request) (Spec, bool) {
	var spec Spec
	if err := httpx.DecodeStrict(r, maxBodyBytes, &spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("service: %w", err))
		return Spec{}, false
	}
	return spec, true
}

func writeJSON(w http.ResponseWriter, code int, v any) { httpx.WriteJSON(w, code, v) }

func httpError(w http.ResponseWriter, code int, err error) { httpx.Error(w, code, err) }
