package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(NewEngine(cfg)))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPRunCacheHit(t *testing.T) {
	var calls atomic.Int64
	srv := testServer(t, Config{Workers: 2, Run: countingRunner(&calls)})
	body := `{"bench":"SYRK","sched":"CIAO-C","options":{"instr_per_warp":400}}`

	resp1, payload1 := postJSON(t, srv.URL+"/run", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST /run: %d %s", resp1.StatusCode, payload1)
	}
	if got := resp1.Header.Get("X-Cache"); got != string(SourceComputed) {
		t.Errorf("first X-Cache = %q, want computed", got)
	}

	resp2, payload2 := postJSON(t, srv.URL+"/run", body)
	if got := resp2.Header.Get("X-Cache"); got != string(SourceCache) {
		t.Errorf("second X-Cache = %q, want cache", got)
	}
	if !bytes.Equal(payload1, payload2) {
		t.Error("cache hit served different bytes")
	}
	if calls.Load() != 1 {
		t.Errorf("simulations = %d, want 1", calls.Load())
	}
}

func TestHTTPConcurrentRunsSimulateOnce(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	srv := testServer(t, Config{Workers: 8, Run: func(s Spec) ([]byte, error) {
		calls.Add(1)
		<-release
		return []byte(`{"ok":true}`), nil
	}})
	body := `{"bench":"KMN","sched":"GTO"}`

	const clients = 8
	payloads := make([][]byte, clients)
	var started, done sync.WaitGroup
	for i := 0; i < clients; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			started.Done()
			resp, payload := postJSON(t, srv.URL+"/run", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
			}
			payloads[i] = payload
		}(i)
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let requests reach the engine
	close(release)
	done.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("simulations = %d, want 1 for %d identical concurrent requests", n, clients)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(payloads[0], payloads[i]) {
			t.Fatalf("client %d received different bytes", i)
		}
	}
}

func TestHTTPExperimentJobLifecycle(t *testing.T) {
	var calls atomic.Int64
	srv := testServer(t, Config{Workers: 2, Run: countingRunner(&calls)})

	resp, body := postJSON(t, srv.URL+"/experiment", `{"experiment":"fig8"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /experiment: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("no job id")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body = getJSON(t, srv.URL+"/jobs/"+st.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs: %d %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != JobDone || len(st.Result) == 0 {
		t.Fatalf("job state %q, result %q", st.State, st.Result)
	}

	// Resubmitting the same experiment must be served from cache.
	resp, body = postJSON(t, srv.URL+"/experiment", `{"experiment":"fig8"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
	}
	var st2 JobStatus
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatal(err)
	}
	for st2.State == JobRunning {
		_, body = getJSON(t, srv.URL+"/jobs/"+st2.ID)
		if err := json.Unmarshal(body, &st2); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if st2.Source != SourceCache {
		t.Errorf("resubmit source = %q, want cache", st2.Source)
	}
	if calls.Load() != 1 {
		t.Errorf("simulations = %d, want 1", calls.Load())
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv := testServer(t, Config{Run: func(Spec) ([]byte, error) { return []byte(`{}`), nil }})
	cases := []struct {
		path, body string
	}{
		{"/run", `{"bench":"NOPE","sched":"GTO"}`},
		{"/run", `{"experiment":"fig8"}`}, // figures go to /experiment
		{"/run", `not json`},
		{"/run", `{"unknown_field":1}`},
		{"/experiment", `{"experiment":"fig99"}`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, srv.URL+c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q: status %d %s, want 400", c.path, c.body, resp.StatusCode, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("POST %s %q: body %q is not an error object", c.path, c.body, body)
		}
	}

	resp, _ := getJSON(t, srv.URL+"/jobs/job-nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

func TestHTTPHealthz(t *testing.T) {
	var calls atomic.Int64
	srv := testServer(t, Config{Run: countingRunner(&calls)})
	postJSON(t, srv.URL+"/run", `{"bench":"SYRK","sched":"GTO"}`)
	postJSON(t, srv.URL+"/run", `{"bench":"SYRK","sched":"GTO"}`)

	resp, body := getJSON(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h struct {
		Status  string `json:"status"`
		Metrics struct {
			Cache struct {
				Hits   uint64 `json:"hits"`
				Misses uint64 `json:"misses"`
			} `json:"cache"`
			CacheEntries  int    `json:"cache_entries"`
			Simulations   uint64 `json:"simulations"`
			JobsSubmitted uint64 `json:"jobs_submitted"`
		} `json:"metrics"`
		Experiments []string `json:"experiments"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	m := h.Metrics
	if h.Status != "ok" || m.Simulations != 1 || m.Cache.Hits != 1 || m.CacheEntries != 1 {
		t.Errorf("healthz = %s", body)
	}
	if len(h.Experiments) == 0 {
		t.Error("healthz lists no experiments")
	}

	// /metrics serves the same snapshot standalone.
	mresp, mbody := getJSON(t, srv.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", mresp.StatusCode)
	}
	var ms MetricsSnapshot
	if err := json.Unmarshal(mbody, &ms); err != nil {
		t.Fatal(err)
	}
	if ms.Simulations != 1 || ms.CacheEntries != 1 {
		t.Errorf("metrics = %s", mbody)
	}
}

// TestHTTPRealRunEndToEnd drives one short real simulation through the
// full HTTP stack and checks the cached replay is byte-identical.
func TestHTTPRealRunEndToEnd(t *testing.T) {
	srv := testServer(t, Config{Workers: 2, CacheEntries: 8})
	body := `{"bench":"SYRK","sched":"GTO","options":{"instr_per_warp":300}}`

	resp, first := postJSON(t, srv.URL+"/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("real run failed: %d %s", resp.StatusCode, first)
	}
	var cell map[string]any
	if err := json.Unmarshal(first, &cell); err != nil {
		t.Fatalf("payload is not JSON: %v", err)
	}
	if cell["bench"] != "SYRK" {
		t.Errorf("bench = %v", cell["bench"])
	}
	resp, second := postJSON(t, srv.URL+"/run", body)
	if got := resp.Header.Get("X-Cache"); got != string(SourceCache) {
		t.Errorf("X-Cache = %q, want cache", got)
	}
	if !bytes.Equal(first, second) {
		t.Error("cached replay differs from computed result")
	}
}
