package service

import (
	"encoding/json"
	"fmt"

	"repro/internal/harness"
	"repro/internal/overhead"
	"repro/internal/workload"
)

// Execute runs the experiment named by spec to completion and returns
// its stable JSON encoding. It is a pure function of the spec — no
// caching, no concurrency limits — and is shared by the engine, the
// ciaoserve handlers and ciaosim -json.
func Execute(spec Spec) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opt := spec.Options.Options()
	v, err := execute(spec, opt)
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

func execute(spec Spec, opt harness.Options) (any, error) {
	if spec.Config != nil {
		// Validate() restricts Config to the experiments whose runs it
		// actually reaches (run, timeseries).
		opt = spec.Config.Apply(opt)
	}
	switch spec.Experiment {
	case ExpRun:
		f, err := harness.SchedulerByName(spec.Sched)
		if err != nil {
			return nil, err
		}
		w, err := workload.ByName(spec.Bench)
		if err != nil {
			return nil, err
		}
		r, g, err := harness.RunOne(w, f, opt)
		if err != nil {
			return nil, err
		}
		return harness.NewCellResult(spec.Bench, r, g.Interference().Total()), nil
	case ExpFig8:
		return harness.RunFig8(opt)
	case ExpFig1b:
		return harness.RunFig1b(opt)
	case ExpFig4:
		return harness.RunFig4(opt)
	case ExpFig9:
		return runSeries(opt, []string{"ATAX", "Backprop"}, []string{"Best-SWL", "CCWS", "CIAO-T"})
	case ExpFig10:
		return runSeries(opt, []string{"SYRK", "KMN"}, []string{"CIAO-T", "CIAO-P", "CIAO-C"})
	case ExpFig11a:
		return harness.RunEpochSensitivity([]uint64{1000, 5000, 10000, 50000}, opt)
	case ExpFig11b:
		return harness.RunCutoffSensitivity([]float64{0.04, 0.02, 0.01, 0.005}, opt)
	case ExpFig12a:
		return harness.RunFig12a(opt)
	case ExpFig12b:
		return harness.RunFig12b(opt)
	case ExpTimeSeries:
		return harness.RunTimeSeries(spec.Bench, spec.Schedulers, opt)
	case ExpOverhead:
		return overhead.Compute(), nil
	}
	return nil, fmt.Errorf("service: unknown experiment %q", spec.Experiment)
}

// runSeries gathers the fixed figure-9/10 trace sets, one
// TimeSeriesSet per benchmark.
func runSeries(opt harness.Options, benches, scheds []string) (any, error) {
	if opt.SampleInterval == 0 {
		opt.SampleInterval = 2000
	}
	out := make(map[string]*harness.TimeSeriesSet, len(benches))
	for _, b := range benches {
		set, err := harness.RunTimeSeries(b, scheds, opt)
		if err != nil {
			return nil, err
		}
		out[b] = set
	}
	return out, nil
}
