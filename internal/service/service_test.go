package service

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpecKeyCanonicalization(t *testing.T) {
	// Fields irrelevant to the experiment must not split cache entries.
	a := Spec{Experiment: ExpFig8, Bench: "SYRK", Sched: "GTO"}
	b := Spec{Experiment: ExpFig8}
	if a.Key() != b.Key() {
		t.Errorf("fig8 keys differ despite irrelevant cell fields")
	}
	// Scheduler order is irrelevant for a time-series trace.
	ts1 := Spec{Experiment: ExpTimeSeries, Bench: "SYRK", Schedulers: []string{"GTO", "CCWS"}}
	ts2 := Spec{Experiment: ExpTimeSeries, Bench: "SYRK", Schedulers: []string{"CCWS", "GTO"}}
	if ts1.Key() != ts2.Key() {
		t.Errorf("timeseries keys differ despite same scheduler set")
	}
	// Distinct cells must address distinct results.
	c1 := Spec{Experiment: ExpRun, Bench: "SYRK", Sched: "GTO"}
	c2 := Spec{Experiment: ExpRun, Bench: "SYRK", Sched: "CCWS"}
	if c1.Key() == c2.Key() {
		t.Errorf("different schedulers share a key")
	}
	c3 := c1
	c3.Options.InstrPerWarp = 500
	if c1.Key() == c3.Key() {
		t.Errorf("different options share a key")
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Experiment: ExpRun, Bench: "SYRK", Sched: "CIAO-C"}, true},
		{Spec{Experiment: ExpRun, Bench: "NOPE", Sched: "CIAO-C"}, false},
		{Spec{Experiment: ExpRun, Bench: "SYRK", Sched: "NOPE"}, false},
		{Spec{Experiment: ExpFig8}, true},
		{Spec{Experiment: "fig99"}, false},
		{Spec{Experiment: ExpTimeSeries, Bench: "SYRK"}, false},
		{Spec{Experiment: ExpTimeSeries, Bench: "SYRK", Schedulers: []string{"GTO"}}, true},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := NewResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if got, ok := c.Get("a"); !ok || string(got) != "A" {
		t.Errorf("a = %q, %v", got, ok)
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", s.Hits, s.Misses)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := NewResultCache(0)
	c.Put("a", []byte("A"))
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache stored an entry")
	}
}

// countingRunner fabricates deterministic payloads and counts real
// executions.
func countingRunner(calls *atomic.Int64) RunFunc {
	return func(s Spec) ([]byte, error) {
		calls.Add(1)
		return []byte(fmt.Sprintf(`{"key":%q}`, s.Key())), nil
	}
}

func TestEngineCacheHitReturnsIdenticalBytes(t *testing.T) {
	var calls atomic.Int64
	e := NewEngine(Config{Workers: 2, Run: countingRunner(&calls)})
	spec := Spec{Experiment: ExpRun, Bench: "SYRK", Sched: "CIAO-C"}

	first, src, err := e.Run(spec)
	if err != nil || src != SourceComputed {
		t.Fatalf("first run: src=%q err=%v", src, err)
	}
	second, src, err := e.Run(spec)
	if err != nil || src != SourceCache {
		t.Fatalf("second run: src=%q err=%v, want cache hit", src, err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cache hit returned different bytes")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("simulations = %d, want 1 (second request must not re-run)", n)
	}
	if e.Simulations() != 1 {
		t.Errorf("engine counter = %d, want 1", e.Simulations())
	}
}

func TestEngineCoalescesConcurrentIdenticalSpecs(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	e := NewEngine(Config{Workers: 4, Run: func(s Spec) ([]byte, error) {
		calls.Add(1)
		<-release // hold every racer in the in-flight window
		return []byte(`{"ok":true}`), nil
	}})
	spec := Spec{Experiment: ExpRun, Bench: "SYRK", Sched: "GTO"}

	const racers = 16
	results := make([][]byte, racers)
	var started, done sync.WaitGroup
	for i := 0; i < racers; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			started.Done()
			payload, _, err := e.Run(spec)
			if err != nil {
				t.Errorf("racer %d: %v", i, err)
			}
			results[i] = payload
		}(i)
	}
	started.Wait()
	close(release)
	done.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("simulations = %d, want 1 (identical in-flight specs must coalesce)", n)
	}
	for i := 1; i < racers; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("racer %d got different bytes", i)
		}
	}
}

func TestEngineDistinctSpecsRunSeparately(t *testing.T) {
	var calls atomic.Int64
	e := NewEngine(Config{Workers: 2, Run: countingRunner(&calls)})
	if _, _, err := e.Run(Spec{Experiment: ExpRun, Bench: "SYRK", Sched: "GTO"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(Spec{Experiment: ExpRun, Bench: "SYRK", Sched: "CCWS"}); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("simulations = %d, want 2", n)
	}
}

func TestEngineRunRejectsBadSpec(t *testing.T) {
	var calls atomic.Int64
	e := NewEngine(Config{Run: countingRunner(&calls)})
	if _, _, err := e.Run(Spec{Experiment: "nope"}); err == nil {
		t.Error("bad spec accepted")
	}
	if _, err := e.Submit(Spec{Experiment: "nope"}); err == nil {
		t.Error("bad spec submitted")
	}
	if calls.Load() != 0 {
		t.Error("runner invoked for invalid spec")
	}
}

func TestEngineErrorsAreNotCached(t *testing.T) {
	var calls atomic.Int64
	fail := true
	e := NewEngine(Config{Workers: 1, Run: func(s Spec) ([]byte, error) {
		calls.Add(1)
		if fail {
			return nil, fmt.Errorf("transient")
		}
		return []byte(`{}`), nil
	}})
	spec := Spec{Experiment: ExpFig8}
	if _, _, err := e.Run(spec); err == nil {
		t.Fatal("want error")
	}
	fail = false
	if _, src, err := e.Run(spec); err != nil || src != SourceComputed {
		t.Fatalf("retry: src=%q err=%v, want fresh computation", src, err)
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want 2", calls.Load())
	}
}

// TestEngineJobRetention pins the bounded-jobs contract: finished
// jobs beyond MaxJobs are evicted oldest-first, so a long-lived
// server cannot leak job records.
func TestEngineJobRetention(t *testing.T) {
	var calls atomic.Int64
	e := NewEngine(Config{Workers: 2, MaxJobs: 3, Run: countingRunner(&calls)})

	var ids []string
	for _, bench := range []string{"SYRK", "KMN", "ATAX", "BICG", "MVT"} {
		j, err := e.Submit(Spec{Experiment: ExpRun, Bench: bench, Sched: "GTO"})
		if err != nil {
			t.Fatal(err)
		}
		// Wait for completion so the next Submit may prune it.
		deadline := time.Now().Add(5 * time.Second)
		for j.Status().State == JobRunning {
			if time.Now().After(deadline) {
				t.Fatal("job never finished")
			}
			time.Sleep(time.Millisecond)
		}
		ids = append(ids, j.ID())
	}

	for i, id := range ids {
		_, ok := e.Job(id)
		if wantKept := i >= len(ids)-3; ok != wantKept {
			t.Errorf("job %d (%s): retained=%v, want %v", i, id, ok, wantKept)
		}
	}
}

// TestExecuteRealCellOnce pins the integration path: a real (short)
// simulation flows through Execute and produces valid, cacheable JSON.
func TestExecuteRealCellOnce(t *testing.T) {
	spec := Spec{
		Experiment: ExpRun, Bench: "SYRK", Sched: "GTO",
		Options: OptionSpec{InstrPerWarp: 300},
	}
	payload, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(payload, []byte(`"bench":"SYRK"`)) ||
		!bytes.Contains(payload, []byte(`"ipc":`)) {
		t.Errorf("unexpected payload: %s", payload)
	}
	again, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, again) {
		t.Error("Execute is not deterministic for a fixed spec")
	}
}
