// Package service turns the one-shot experiment harness into a
// long-lived concurrent service: job specs name an experiment cell or
// figure, a bounded worker-pool engine executes them, and a
// content-addressed LRU cache makes repeated cells free. cmd/ciaoserve
// exposes the engine over HTTP; cmd/ciaosim reuses the same runner for
// its -json output so both frontends emit identical bytes.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/harness"
	"repro/internal/workload"
)

// OptionSpec is the JSON-addressable subset of harness.Options.
// Execution-only knobs (Parallelism, hooks) are deliberately excluded:
// they do not change the simulated result, so they must not change the
// cache key.
type OptionSpec struct {
	// InstrPerWarp overrides the suite's per-warp budget when non-zero.
	InstrPerWarp uint64 `json:"instr_per_warp,omitempty"`
	// Seed overrides the workload seed when non-zero.
	Seed uint64 `json:"seed,omitempty"`
	// SampleInterval overrides time-series sampling when non-zero.
	SampleInterval uint64 `json:"sample_interval,omitempty"`
}

// Options converts to harness.Options.
func (o OptionSpec) Options() harness.Options {
	return harness.Options{
		InstrPerWarp:   o.InstrPerWarp,
		Seed:           o.Seed,
		SampleInterval: o.SampleInterval,
	}
}

// Experiment names accepted by Spec.Experiment.
const (
	ExpRun        = "run"        // single bench × sched cell
	ExpFig8       = "fig8"       // 7 schedulers × 21 benchmarks
	ExpFig1b      = "fig1b"      // Backprop: Best-SWL vs CCWS
	ExpFig4       = "fig4"       // interference skew
	ExpFig9       = "fig9"       // ATAX/Backprop time series
	ExpFig10      = "fig10"      // SYRK/KMN time series
	ExpFig11a     = "fig11a"     // epoch sensitivity
	ExpFig11b     = "fig11b"     // cutoff sensitivity
	ExpFig12a     = "fig12a"     // L1D configuration study
	ExpFig12b     = "fig12b"     // DRAM bandwidth study
	ExpTimeSeries = "timeseries" // arbitrary bench × schedulers trace
	ExpOverhead   = "overhead"   // §V-F hardware cost model
)

// Experiments lists the accepted experiment names in display order.
func Experiments() []string {
	return []string{
		ExpRun, ExpFig8, ExpFig1b, ExpFig4, ExpFig9, ExpFig10,
		ExpFig11a, ExpFig11b, ExpFig12a, ExpFig12b, ExpTimeSeries, ExpOverhead,
	}
}

// Spec identifies one experiment request. Equal specs address equal
// results, so Key() doubles as the result-cache key.
type Spec struct {
	// Experiment is one of the Exp* names.
	Experiment string `json:"experiment"`
	// Bench names the benchmark for "run" and "timeseries".
	Bench string `json:"bench,omitempty"`
	// Sched names the scheduler for "run".
	Sched string `json:"sched,omitempty"`
	// Schedulers names the traced schedulers for "timeseries".
	Schedulers []string `json:"schedulers,omitempty"`
	// Options tune the simulation.
	Options OptionSpec `json:"options,omitempty"`
	// Config reshapes the machine/controller for "run" cells (sweep
	// cells use this to explore non-default configurations).
	Config *harness.Override `json:"config,omitempty"`
}

// Validate checks the spec against the known experiments, benchmarks
// and schedulers so bad requests fail before a worker slot is taken.
func (s Spec) Validate() error {
	switch s.Experiment {
	case ExpRun:
		if _, err := workload.ByName(s.Bench); err != nil {
			return err
		}
		if _, err := harness.SchedulerByName(s.Sched); err != nil {
			return err
		}
		if s.Config != nil {
			if err := s.Config.Validate(); err != nil {
				return err
			}
		}
	case ExpTimeSeries:
		if _, err := workload.ByName(s.Bench); err != nil {
			return err
		}
		if len(s.Schedulers) == 0 {
			return fmt.Errorf("service: timeseries needs at least one scheduler")
		}
		for _, name := range s.Schedulers {
			if _, err := harness.SchedulerByName(name); err != nil {
				return err
			}
		}
		if s.Config != nil {
			if err := s.Config.Validate(); err != nil {
				return err
			}
		}
	case ExpFig8, ExpFig1b, ExpFig4, ExpFig9, ExpFig10,
		ExpFig11a, ExpFig11b, ExpFig12a, ExpFig12b, ExpOverhead:
		// No per-cell fields. Figures fix their own configurations, so
		// an override would silently not apply — reject it instead.
		if s.Config != nil && !s.Config.IsZero() {
			return fmt.Errorf("service: config overrides only apply to %q cells", ExpRun)
		}
	default:
		return fmt.Errorf("service: unknown experiment %q (want one of %s)",
			s.Experiment, strings.Join(Experiments(), ", "))
	}
	return nil
}

// Key returns the content address of the spec: a SHA-256 over its
// canonical JSON. Fields irrelevant to the named experiment are zeroed
// first so e.g. {"experiment":"fig8","bench":"SYRK"} and plain fig8
// share a cache entry.
func (s Spec) Key() string {
	c := s.canonical()
	b, err := json.Marshal(c)
	if err != nil {
		// Spec is plain data; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func (s Spec) canonical() Spec {
	// Synthetic benchmarks canonicalise their descriptor (full key set,
	// fixed order), so every spelling of the same generated workload
	// shares one content address. Unparseable names pass through: they
	// fail Validate anyway, and Key must stay total.
	if workload.IsSynthetic(s.Bench) {
		if cn, err := workload.CanonicalSynthetic(s.Bench); err == nil {
			s.Bench = cn
		}
	}
	switch s.Experiment {
	case ExpRun:
		s.Schedulers = nil
	case ExpTimeSeries:
		s.Sched = ""
		sorted := append([]string(nil), s.Schedulers...)
		sort.Strings(sorted)
		s.Schedulers = sorted
	case ExpOverhead:
		// The cost model takes no options at all.
		s = Spec{Experiment: ExpOverhead}
	default:
		s.Bench, s.Sched, s.Schedulers, s.Config = "", "", nil, nil
	}
	// A present-but-empty override is the baseline machine; give both
	// forms the same content address.
	if s.Config != nil && s.Config.IsZero() {
		s.Config = nil
	}
	return s
}
