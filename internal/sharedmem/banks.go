package sharedmem

// BankConflicts computes the serialisation degree of one warp-wide
// explicit shared-memory access: the maximum number of distinct
// addresses that land in the same bank. All 32 banks can serve one
// access each in parallel (§II-A), so a conflict-free access takes one
// bank cycle and a degree-k conflict takes k.
func BankConflicts(byteAddrs []uint32) int {
	if len(byteAddrs) == 0 {
		return 0
	}
	var perBank [NumBanks]int
	// Word-interleaved banking: consecutive 8-byte words map to
	// consecutive banks.
	seen := make(map[uint32]bool, len(byteAddrs))
	for _, a := range byteAddrs {
		word := a / BankRowBytes
		if seen[word] {
			continue // broadcast: same word served once
		}
		seen[word] = true
		perBank[word%NumBanks]++
	}
	max := 1
	for _, n := range perBank {
		if n > max {
			max = n
		}
	}
	return max
}

// ConflictModel is a closed-form stand-in used by the synthetic
// workloads: given a benchmark's characteristic conflict degree, it
// returns the cycles an explicit shared access occupies the banks.
type ConflictModel struct {
	// Degree is the average serialisation (1 = conflict-free).
	Degree int
}

// Cycles returns the bank-occupancy cycles for one access.
func (m ConflictModel) Cycles() int {
	if m.Degree < 1 {
		return 1
	}
	return m.Degree
}
