package sharedmem

import (
	"repro/internal/memory"
)

// CacheStats aggregates shared-memory-cache activity.
type CacheStats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Fills     uint64
}

// HitRate returns Hits/Accesses (0 when idle).
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is the direct-mapped cache CIAO operates in unused shared
// memory (§IV-B). Each block records the 25-bit-equivalent tag and the
// 6-bit WID of the filling warp; a single shared-memory access fetches
// the tag and data block in parallel because they live in opposite
// bank groups.
type Cache struct {
	tr     *Translator
	blocks []sharedBlock
	stats  CacheStats
}

type sharedBlock struct {
	valid bool
	tag   uint64
	line  memory.Addr
	wid   int
}

// NewCache builds the shared-memory cache over a translator.
func NewCache(tr *Translator) *Cache {
	return &Cache{tr: tr, blocks: make([]sharedBlock, tr.Blocks())}
}

// Translator exposes the underlying translation unit.
func (c *Cache) Translator() *Translator { return c.tr }

// Access looks the global address up. Like the L1D model, a miss does
// not allocate: the caller issues a fill request through the (shared)
// MSHR and calls Fill when the data returns from L2 or migrates from
// L1D.
func (c *Cache) Access(addr memory.Addr, wid int) (hit bool) {
	loc := c.tr.Translate(addr)
	c.stats.Accesses++
	b := &c.blocks[loc.BlockIndex]
	if b.valid && b.tag == c.tr.Tag(addr) {
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Fill installs the line, returning the displaced block's owner and
// line when a valid block was evicted. Shared-memory evictions feed
// the same VTA as L1D evictions (§III-C: L1D and shared memory share
// one interference detector).
func (c *Cache) Fill(addr memory.Addr, wid int) (evictedLine memory.Addr, evictedWID int, evicted bool) {
	loc := c.tr.Translate(addr)
	c.stats.Fills++
	b := &c.blocks[loc.BlockIndex]
	if b.valid && b.tag != c.tr.Tag(addr) {
		evictedLine, evictedWID, evicted = b.line, b.wid, true
		c.stats.Evictions++
	}
	*b = sharedBlock{valid: true, tag: c.tr.Tag(addr), line: addr.LineAddr(), wid: wid}
	return evictedLine, evictedWID, evicted
}

// Probe checks residency without touching statistics.
func (c *Cache) Probe(addr memory.Addr) bool {
	loc := c.tr.Translate(addr)
	b := &c.blocks[loc.BlockIndex]
	return b.valid && b.tag == c.tr.Tag(addr)
}

// Invalidate drops the line if resident.
func (c *Cache) Invalidate(addr memory.Addr) bool {
	loc := c.tr.Translate(addr)
	b := &c.blocks[loc.BlockIndex]
	if b.valid && b.tag == c.tr.Tag(addr) {
		*b = sharedBlock{}
		return true
	}
	return false
}

// Occupied reports how many blocks hold valid lines.
func (c *Cache) Occupied() int {
	n := 0
	for i := range c.blocks {
		if c.blocks[i].valid {
			n++
		}
	}
	return n
}

// Utilization returns the fraction of cache blocks in use — the
// shared-memory utilization ratio of Figure 8b.
func (c *Cache) Utilization() float64 {
	if len(c.blocks) == 0 {
		return 0
	}
	return float64(c.Occupied()) / float64(len(c.blocks))
}

// Stats returns a snapshot of the statistics.
func (c *Cache) Stats() CacheStats { return c.stats }

// ResetStats zeroes counters without dropping contents.
func (c *Cache) ResetStats() { c.stats = CacheStats{} }

// Flush invalidates everything.
func (c *Cache) Flush() {
	for i := range c.blocks {
		c.blocks[i] = sharedBlock{}
	}
}
