package sharedmem

import (
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

func TestSMMTReserveRelease(t *testing.T) {
	s := NewSMMT(DefaultSize, 8)
	base, err := s.Reserve(0, 16<<10)
	if err != nil || base != 0 {
		t.Fatalf("reserve = (%d,%v)", base, err)
	}
	base, err = s.Reserve(1, 8<<10)
	if err != nil || base != 16<<10 {
		t.Fatalf("second reserve = (%d,%v), want base 16KB", base, err)
	}
	if s.Used() != 24<<10 || s.Unused() != 24<<10 {
		t.Fatalf("used/unused = %d/%d", s.Used(), s.Unused())
	}
	if !s.Release(0) {
		t.Fatal("release of live entry failed")
	}
	if s.Release(0) {
		t.Fatal("double release succeeded")
	}
	if s.Unused() != 40<<10 {
		t.Fatalf("unused after release = %d", s.Unused())
	}
}

func TestSMMTFirstFitReusesGap(t *testing.T) {
	s := NewSMMT(DefaultSize, 8)
	s.Reserve(0, 8<<10)
	s.Reserve(1, 8<<10)
	s.Reserve(2, 8<<10)
	s.Release(1) // gap at [8K,16K)
	base, err := s.Reserve(3, 4<<10)
	if err != nil || base != 8<<10 {
		t.Fatalf("gap not reused: base=%d err=%v", base, err)
	}
}

func TestSMMTErrors(t *testing.T) {
	s := NewSMMT(DefaultSize, 2)
	if _, err := s.Reserve(0, 0); err == nil {
		t.Error("zero-size reserve accepted")
	}
	s.Reserve(0, 1<<10)
	if _, err := s.Reserve(0, 1<<10); err == nil {
		t.Error("duplicate CTA accepted")
	}
	s.Reserve(1, 1<<10)
	if _, err := s.Reserve(2, 1<<10); err == nil {
		t.Error("reserve beyond entry capacity accepted")
	}
	s2 := NewSMMT(4<<10, 8)
	if _, err := s2.Reserve(0, 8<<10); err == nil {
		t.Error("oversized reserve accepted")
	}
}

func TestSMMTLargestFreeRegion(t *testing.T) {
	s := NewSMMT(48<<10, 8)
	s.Reserve(0, 8<<10)  // [0,8K)
	s.Reserve(1, 16<<10) // [8K,24K)
	base, size := s.LargestFreeRegion()
	if base != 24<<10 || size != 24<<10 {
		t.Fatalf("largest free = (%d,%d), want (24K,24K)", base, size)
	}
	s.Release(0)
	base, size = s.LargestFreeRegion()
	if base != 24<<10 || size != 24<<10 {
		t.Fatalf("after release largest free = (%d,%d)", base, size)
	}
}

func TestPlanCapacityFullSharedMemory(t *testing.T) {
	// 48KB fully unused: 48K / (2*128) = 192 rows per group.
	// d + ceil(d/32) <= 192 → d = 186 (186+6=192).
	blocks, dataRows, tagRows := PlanCapacity(48 << 10)
	if dataRows != 186 || tagRows != 6 || blocks != 372 {
		t.Fatalf("PlanCapacity(48K) = (%d,%d,%d), want (372,186,6)", blocks, dataRows, tagRows)
	}
}

func TestPlanCapacityRespectsRowBound(t *testing.T) {
	// 128KB would exceed the 8-bit R field; must clamp to 256 rows.
	_, dataRows, _ := PlanCapacity(128 << 10)
	if dataRows+((dataRows+TagsPerGroupRow-1)/TagsPerGroupRow) > MaxRowsPerGroup {
		t.Fatalf("row budget exceeded: %d data rows", dataRows)
	}
}

func TestPlanCapacityTiny(t *testing.T) {
	if b, _, _ := PlanCapacity(0); b != 0 {
		t.Error("zero bytes should yield zero blocks")
	}
	if b, _, _ := PlanCapacity(100); b != 0 {
		t.Error("sub-row region should yield zero blocks")
	}
	// One row per group: cannot host data+tag.
	if b, _, _ := PlanCapacity(2 * GroupRowBytes); b != 0 {
		t.Errorf("2 rows should be too small, got %d blocks", b)
	}
	// Two rows per group: 1 data + 1 tag works.
	b, d, tg := PlanCapacity(4 * GroupRowBytes)
	if b != 2 || d != 1 || tg != 1 {
		t.Errorf("PlanCapacity(4 rows) = (%d,%d,%d), want (2,1,1)", b, d, tg)
	}
}

// Property: planned rows always fit the budget and blocks = 2*dataRows.
func TestPlanCapacityInvariant(t *testing.T) {
	f := func(kb uint8) bool {
		unused := int(kb) << 10
		blocks, d, tg := PlanCapacity(unused)
		rows := unused / (BankGroups * GroupRowBytes)
		if rows > MaxRowsPerGroup {
			rows = MaxRowsPerGroup
		}
		if blocks == 0 {
			return d == 0
		}
		return blocks == 2*d && d+tg <= rows && tg == (d+TagsPerGroupRow-1)/TagsPerGroupRow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslatorTagDataOppositeGroups(t *testing.T) {
	tr, err := NewTranslator(0, 48<<10)
	if err != nil {
		t.Fatal(err)
	}
	for a := memory.Addr(0); a < 1024*memory.LineSize; a += memory.LineSize {
		loc := tr.Translate(a)
		if loc.DataGroup == loc.TagGroup {
			t.Fatalf("addr %s: tag and data share group %d (bank conflict)", a, loc.DataGroup)
		}
		if loc.BlockIndex < 0 || loc.BlockIndex >= tr.Blocks() {
			t.Fatalf("addr %s: block %d out of range", a, loc.BlockIndex)
		}
		if loc.TagSlot < 0 || loc.TagSlot >= TagsPerGroupRow {
			t.Fatalf("addr %s: tag slot %d out of range", a, loc.TagSlot)
		}
	}
}

func TestTranslatorDirectMappedDistinctLocations(t *testing.T) {
	tr, err := NewTranslator(0, 48<<10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]int{}
	for b := 0; b < tr.Blocks(); b++ {
		a := memory.Addr(b) * memory.LineSize
		loc := tr.Translate(a)
		key := [2]int{loc.DataGroup, loc.DataRow}
		if prev, dup := seen[key]; dup {
			t.Fatalf("blocks %d and %d share data location %v", prev, b, key)
		}
		seen[key] = b
	}
}

func TestTranslatorSameBlockDifferentTag(t *testing.T) {
	tr, _ := NewTranslator(0, 48<<10)
	a1 := memory.Addr(0)
	a2 := memory.Addr(uint64(tr.Blocks()) * memory.LineSize) // wraps to block 0
	l1, l2 := tr.Translate(a1), tr.Translate(a2)
	if l1.BlockIndex != l2.BlockIndex {
		t.Fatalf("expected same block, got %d vs %d", l1.BlockIndex, l2.BlockIndex)
	}
	if tr.Tag(a1) == tr.Tag(a2) {
		t.Fatal("conflicting lines must have distinct tags")
	}
}

func TestTranslatorOffsetRegisters(t *testing.T) {
	base := 16 << 10 // CIAO region starts after a 16KB CTA allocation
	tr, err := NewTranslator(base, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	baseRow := base / GroupRowBytes / BankGroups
	loc := tr.Translate(0)
	if loc.DataRow < baseRow {
		t.Fatalf("data row %d precedes region base row %d", loc.DataRow, baseRow)
	}
	if loc.TagRow < baseRow+tr.DataRowsPerGroup() {
		t.Fatalf("tag row %d overlaps data rows", loc.TagRow)
	}
}

func TestNewTranslatorTooSmall(t *testing.T) {
	if _, err := NewTranslator(0, 64); err == nil {
		t.Fatal("tiny region accepted")
	}
}

func TestSharedCacheMissFillHit(t *testing.T) {
	tr, _ := NewTranslator(0, 48<<10)
	c := NewCache(tr)
	if c.Access(0x1000, 3) {
		t.Fatal("cold access hit")
	}
	if _, _, ev := c.Fill(0x1000, 3); ev {
		t.Fatal("fill into empty block evicted")
	}
	if !c.Access(0x1000, 3) {
		t.Fatal("access after fill missed")
	}
	if !c.Probe(0x1040) {
		t.Fatal("same-line probe missed")
	}
}

func TestSharedCacheConflictEviction(t *testing.T) {
	tr, _ := NewTranslator(0, 48<<10)
	c := NewCache(tr)
	a1 := memory.Addr(0)
	a2 := memory.Addr(uint64(tr.Blocks()) * memory.LineSize)
	c.Fill(a1, 1)
	line, wid, ev := c.Fill(a2, 2)
	if !ev || wid != 1 || line != a1 {
		t.Fatalf("eviction = (%s,%d,%v), want (0x0,1,true)", line, wid, ev)
	}
	if c.Probe(a1) {
		t.Fatal("evicted line still resident")
	}
}

func TestSharedCacheUtilization(t *testing.T) {
	tr, _ := NewTranslator(0, 48<<10)
	c := NewCache(tr)
	if c.Utilization() != 0 {
		t.Fatal("empty cache should report 0 utilization")
	}
	half := tr.Blocks() / 2
	for i := 0; i < half; i++ {
		c.Fill(memory.Addr(i)*memory.LineSize, 0)
	}
	u := c.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Fatalf("utilization = %f, want ~0.5", u)
	}
	c.Flush()
	if c.Occupied() != 0 {
		t.Fatal("flush left blocks valid")
	}
}

func TestSharedCacheInvalidate(t *testing.T) {
	tr, _ := NewTranslator(0, 48<<10)
	c := NewCache(tr)
	c.Fill(0x2000, 1)
	if !c.Invalidate(0x2000) {
		t.Fatal("invalidate missed resident line")
	}
	if c.Invalidate(0x2000) {
		t.Fatal("double invalidate succeeded")
	}
}

func TestBankConflicts(t *testing.T) {
	// Conflict-free: 32 consecutive 8B words.
	addrs := make([]uint32, 32)
	for i := range addrs {
		addrs[i] = uint32(i * BankRowBytes)
	}
	if got := BankConflicts(addrs); got != 1 {
		t.Errorf("consecutive words conflict degree = %d, want 1", got)
	}
	// Worst case: stride of NumBanks words → all in bank 0.
	for i := range addrs {
		addrs[i] = uint32(i * NumBanks * BankRowBytes)
	}
	if got := BankConflicts(addrs); got != 32 {
		t.Errorf("same-bank stride conflict degree = %d, want 32", got)
	}
	// Broadcast: all threads read the same word — no conflict.
	for i := range addrs {
		addrs[i] = 64
	}
	if got := BankConflicts(addrs); got != 1 {
		t.Errorf("broadcast conflict degree = %d, want 1", got)
	}
	if BankConflicts(nil) != 0 {
		t.Error("empty access should be 0")
	}
}

func TestConflictModel(t *testing.T) {
	if (ConflictModel{Degree: 0}).Cycles() != 1 {
		t.Error("degenerate degree should clamp to 1")
	}
	if (ConflictModel{Degree: 4}).Cycles() != 4 {
		t.Error("degree 4 should cost 4 cycles")
	}
}
