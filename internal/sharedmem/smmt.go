// Package sharedmem models the GPU on-chip shared memory of the CIAO
// paper: 48KB organised as 32 independently addressable banks (two
// groups of 16), managed through a Shared Memory Management Table
// (SMMT), plus the CIAO extensions — an address translation unit that
// maps global addresses into the unused shared-memory space and a
// direct-mapped cache operated in that space with tags and data blocks
// striped across opposite bank groups (§IV-B).
package sharedmem

import (
	"fmt"
	"sort"
)

// Geometry constants of the on-chip memory structure (§II-A, §IV-B).
const (
	// NumBanks is the number of shared-memory banks.
	NumBanks = 32
	// BankGroups is the number of CIAO bank groups.
	BankGroups = 2
	// BanksPerGroup is NumBanks / BankGroups.
	BanksPerGroup = 16
	// BankRowBytes is the width of one bank row (64-bit accesses [14]).
	BankRowBytes = 8
	// GroupRowBytes is the bytes one row spans across a full group —
	// exactly one 128-byte data block.
	GroupRowBytes = BanksPerGroup * BankRowBytes
	// DefaultSize is the Table I shared-memory capacity.
	DefaultSize = 48 << 10
	// MaxRowsPerGroup bounds the R field (8 bits, §IV-B).
	MaxRowsPerGroup = 256
	// TagBytes is the storage for one tag: a 25-bit tag + 6-bit WID =
	// 31 bits, stored in half of an 8-byte bank row (two tags per row).
	TagBytes = 4
	// TagsPerGroupRow is how many tags fit in one row of a bank group:
	// 16 banks × 2 tags per bank row.
	TagsPerGroupRow = BanksPerGroup * 2
)

// SMMTEntry is one Shared Memory Management Table record: the base and
// size of a shared-memory allocation owned by a CTA (or, for CIAO, the
// reserved cache region).
type SMMTEntry struct {
	// CTAID identifies the owner; CIAO's cache reservation uses
	// CIAOReservationID.
	CTAID int
	// Base is the starting byte offset within shared memory.
	Base int
	// Size is the allocation length in bytes.
	Size int
}

// CIAOReservationID is the pseudo-CTA id under which CIAO reserves the
// unused space for its shared-memory cache.
const CIAOReservationID = -1

// SMMT is the Shared Memory Management Table: a small per-SM table in
// which each CTA reserves one entry recording its allocation (§II-A).
type SMMT struct {
	capacity int
	size     int
	entries  []SMMTEntry
}

// NewSMMT builds a table for a shared memory of size bytes with at
// most maxEntries allocations.
func NewSMMT(size, maxEntries int) *SMMT {
	if size <= 0 || maxEntries <= 0 {
		panic("sharedmem: non-positive SMMT geometry")
	}
	return &SMMT{capacity: maxEntries, size: size}
}

// Reserve allocates size bytes for ctaID at the lowest free offset,
// returning the base. It fails when the table is full, the id already
// holds an entry, or no contiguous region fits.
func (t *SMMT) Reserve(ctaID, size int) (base int, err error) {
	if size <= 0 {
		return 0, fmt.Errorf("sharedmem: reserve of %d bytes", size)
	}
	if len(t.entries) >= t.capacity {
		return 0, fmt.Errorf("sharedmem: SMMT full (%d entries)", t.capacity)
	}
	for _, e := range t.entries {
		if e.CTAID == ctaID {
			return 0, fmt.Errorf("sharedmem: CTA %d already has an SMMT entry", ctaID)
		}
	}
	// First-fit over gaps between sorted allocations.
	sorted := append([]SMMTEntry(nil), t.entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	cursor := 0
	for _, e := range sorted {
		if e.Base-cursor >= size {
			break
		}
		cursor = e.Base + e.Size
	}
	if cursor+size > t.size {
		return 0, fmt.Errorf("sharedmem: no room for %dB (used %dB of %dB)", size, t.Used(), t.size)
	}
	t.entries = append(t.entries, SMMTEntry{CTAID: ctaID, Base: cursor, Size: size})
	return cursor, nil
}

// Release frees ctaID's entry, reporting whether one existed.
func (t *SMMT) Release(ctaID int) bool {
	for i, e := range t.entries {
		if e.CTAID == ctaID {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Lookup returns the entry for ctaID.
func (t *SMMT) Lookup(ctaID int) (SMMTEntry, bool) {
	for _, e := range t.entries {
		if e.CTAID == ctaID {
			return e, true
		}
	}
	return SMMTEntry{}, false
}

// Used returns the total allocated bytes.
func (t *SMMT) Used() int {
	n := 0
	for _, e := range t.entries {
		n += e.Size
	}
	return n
}

// Unused returns the free bytes — the space CIAO can claim (§IV-B,
// "Determination of unused shared memory space").
func (t *SMMT) Unused() int { return t.size - t.Used() }

// LargestFreeRegion returns the base and size of the largest
// contiguous free region.
func (t *SMMT) LargestFreeRegion() (base, size int) {
	sorted := append([]SMMTEntry(nil), t.entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	cursor := 0
	for _, e := range sorted {
		if gap := e.Base - cursor; gap > size {
			base, size = cursor, gap
		}
		if end := e.Base + e.Size; end > cursor {
			cursor = end
		}
	}
	if gap := t.size - cursor; gap > size {
		base, size = cursor, gap
	}
	return base, size
}

// Size returns the shared-memory capacity covered by the table.
func (t *SMMT) Size() int { return t.size }

// Entries returns a copy of the live entries.
func (t *SMMT) Entries() []SMMTEntry {
	return append([]SMMTEntry(nil), t.entries...)
}
