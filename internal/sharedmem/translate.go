package sharedmem

import (
	"fmt"

	"repro/internal/memory"
)

// Location is the physical placement of one cached 128-byte data block
// and its tag inside shared memory, as produced by the CIAO address
// translation unit (§IV-B, Figure 7c).
type Location struct {
	// BlockIndex is the direct-mapped cache block index (0..Blocks-1).
	BlockIndex int
	// DataGroup is the bank group (G bit) holding the data block.
	DataGroup int
	// DataRow is the row within each bank of the data group (R field),
	// already offset by the data offset register.
	DataRow int
	// TagGroup is the bank group holding the tag — always the opposite
	// of DataGroup, so tag and data are accessible in parallel.
	TagGroup int
	// TagRow is the row within the tag group's banks, already offset by
	// the tag offset register.
	TagRow int
	// TagSlot is the tag's position within its group row (0..31): the
	// 5 bits formed from the data block's 1 F and 4 B tag-position bits.
	TagSlot int
}

// Translator is the CIAO address translation unit placed in front of
// shared memory: it decomposes a global address into the byte offset
// (F), bank index (B), bank group (G) and row index (R) fields and
// derives the parallel-accessible tag position. The data and tag
// offset registers rebase both regions into the unused shared-memory
// space reserved via the SMMT.
type Translator struct {
	blocks        int // total data blocks (both groups)
	rowsPerGroup  int // data rows used per group
	tagRows       int // tag rows used per group
	dataOffsetRow int // data offset register, in rows
	tagOffsetRow  int // tag offset register, in rows
}

// PlanCapacity computes how many 128-byte data blocks (and supporting
// tag rows) fit into unusedBytes of shared memory, honouring the
// paper's layout: data blocks striped across the 16 banks of one
// group (one block per group row), tags packed 32 per group row in the
// opposite group. Both groups are used symmetrically, so the usable
// rows per group are unusedBytes / (2*GroupRowBytes); each group then
// splits its rows between d data rows and ceil(d/TagsPerGroupRow) tag
// rows for the other group's blocks.
func PlanCapacity(unusedBytes int) (blocks, dataRowsPerGroup, tagRowsPerGroup int) {
	rowsPerGroup := unusedBytes / (BankGroups * GroupRowBytes)
	if rowsPerGroup > MaxRowsPerGroup {
		rowsPerGroup = MaxRowsPerGroup
	}
	if rowsPerGroup <= 0 {
		return 0, 0, 0
	}
	// Largest d with d + ceil(d/32) <= rowsPerGroup.
	d := rowsPerGroup
	for d > 0 {
		tagRows := (d + TagsPerGroupRow - 1) / TagsPerGroupRow
		if d+tagRows <= rowsPerGroup {
			break
		}
		d--
	}
	if d == 0 {
		return 0, 0, 0
	}
	return d * BankGroups, d, (d + TagsPerGroupRow - 1) / TagsPerGroupRow
}

// NewTranslator builds a translation unit for a reserved region of
// unusedBytes starting at baseOffset bytes within shared memory. It
// returns an error when the region is too small to hold even one
// data block plus its tag row.
func NewTranslator(baseOffset, unusedBytes int) (*Translator, error) {
	blocks, dataRows, tagRows := PlanCapacity(unusedBytes)
	if blocks == 0 {
		return nil, fmt.Errorf("sharedmem: %dB unused is too small for a shared-memory cache", unusedBytes)
	}
	baseRow := baseOffset / GroupRowBytes / BankGroups
	return &Translator{
		blocks:        blocks,
		rowsPerGroup:  dataRows,
		tagRows:       tagRows,
		dataOffsetRow: baseRow,
		tagOffsetRow:  baseRow + dataRows,
	}, nil
}

// Blocks returns the number of 128-byte blocks the cache region holds.
func (t *Translator) Blocks() int { return t.blocks }

// DataRowsPerGroup returns the rows per group used for data.
func (t *Translator) DataRowsPerGroup() int { return t.rowsPerGroup }

// TagRowsPerGroup returns the rows per group used for tags.
func (t *Translator) TagRowsPerGroup() int { return t.tagRows }

// CapacityBytes returns the data capacity in bytes.
func (t *Translator) CapacityBytes() int { return t.blocks * memory.LineSize }

// Translate maps a global line address to its direct-mapped location.
// The block index is the line number modulo the block count; the G bit
// is its LSB (alternating groups balances the two groups) and the R
// field the remaining bits, matching the F/B/G/R decomposition of
// Figure 7c with the offset registers applied.
func (t *Translator) Translate(addr memory.Addr) Location {
	lineNo := addr.LineIndex()
	blockIdx := int(lineNo % uint64(t.blocks))
	g := blockIdx & 1
	r := blockIdx >> 1

	// Tag placement (§IV-B): the tag lives in the opposite group. Its
	// slot within a group row comes from the data block's low 5
	// tag-position bits (1 F + 4 B); its row from the remaining R bits.
	tagSlot := r & (TagsPerGroupRow - 1)
	tagRow := r / TagsPerGroupRow

	return Location{
		BlockIndex: blockIdx,
		DataGroup:  g,
		DataRow:    t.dataOffsetRow + r,
		TagGroup:   g ^ 1,
		TagRow:     t.tagOffsetRow + tagRow,
		TagSlot:    tagSlot,
	}
}

// Tag returns the stored tag for a global address: the line bits above
// the block index. Together with the 6-bit WID this is the 31-bit tag
// of §IV-B.
func (t *Translator) Tag(addr memory.Addr) uint64 {
	return addr.LineIndex() / uint64(t.blocks)
}
