package sm_test

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sm"
	"repro/internal/workload"
)

// TestSteadyStateCycleAllocs pins the hot-path guarantee the PR-9
// rewrite bought: once a simulation is warmed up, advancing a cycle
// performs zero heap allocations — the response queue is a
// preallocated ring, MSHR entries are pooled, warps hand out
// instructions from their batch buffers, and the stream generator
// reads precompiled phase constants. A regression here silently
// multiplies GC pressure across every sweep cell, so it fails loudly.
func TestSteadyStateCycleAllocs(t *testing.T) {
	spec := tinySpec()
	spec.InstrPerWarp = 20000
	cfg := sm.DefaultConfig()
	cfg.SampleInterval = 0 // the sampled time series may grow; exclude it
	k := workload.MustKernel(spec)
	g := sm.MustGPU(cfg, k, sched.NewGTO(), nil)
	// Warm up: fill the MSHR pool's working set, wrap the response
	// ring, populate caches.
	for i := 0; i < 5000 && !g.Done(); i++ {
		g.Step()
	}
	if g.Done() {
		t.Fatal("workload too short to measure steady state")
	}
	avg := testing.AllocsPerRun(2000, func() {
		if !g.Done() {
			g.Step()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Step allocates %.3f objects/cycle, want 0", avg)
	}
}
