package sm

import (
	"fmt"

	"repro/internal/l2"
	"repro/internal/workload"
)

// Cluster simulates several SMs sharing one L2/DRAM subsystem — the
// chip-level configuration of Table I (15 SMs). All SMs advance in
// lock-step within a single goroutine so the shared memory-side state
// stays deterministic; each SM runs its own kernel instance and its
// own controller.
//
// The single-SM GPU with a private (per-SM bandwidth share) L2 is the
// unit the paper-shape experiments use; the Cluster exists to check
// that conclusions survive chip-level sharing and to let ablations
// vary the SM count.
type Cluster struct {
	sms   []*GPU
	l2c   *l2.L2
	cycle uint64
}

// NewCluster builds n SMs over one shared L2. Each SM gets its own
// kernel instance (same spec, distinct streams via the SM index mixed
// into the seed) and a fresh controller from mk.
//
// The shared L2 is provisioned at full-chip bandwidth: the per-SM
// share baked into DefaultConfig's DRAM timing is undone by the
// cluster-level BandwidthMultiplier so that n SMs together see
// approximately the chip's aggregate bandwidth.
func NewCluster(n int, cfg Config, spec workload.Spec, mk func() Controller) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sm: cluster needs at least one SM")
	}
	l2cfg := cfg.L2Config
	l2cfg.DRAM.BandwidthMultiplier *= n
	if l2cfg.DRAM.BandwidthMultiplier < 1 {
		l2cfg.DRAM.BandwidthMultiplier = n
	}
	shared := l2.New(l2cfg)

	c := &Cluster{l2c: shared}
	for i := 0; i < n; i++ {
		s := spec
		s.Seed = spec.Seed ^ (uint64(i)+1)*0x9E3779B97F4A7C15
		kernel, err := workload.NewKernel(s)
		if err != nil {
			return nil, err
		}
		g, err := NewGPU(cfg, kernel, mk(), shared)
		if err != nil {
			return nil, err
		}
		c.sms = append(c.sms, g)
	}
	return c, nil
}

// NumSMs returns the SM count.
func (c *Cluster) NumSMs() int { return len(c.sms) }

// SM returns the i-th SM.
func (c *Cluster) SM(i int) *GPU { return c.sms[i] }

// L2 exposes the shared second-level cache.
func (c *Cluster) L2() *l2.L2 { return c.l2c }

// Done reports whether every SM finished.
func (c *Cluster) Done() bool {
	for _, g := range c.sms {
		if !g.Done() {
			return false
		}
	}
	return true
}

// Step advances every unfinished SM by one cycle, in SM order.
func (c *Cluster) Step() {
	for _, g := range c.sms {
		if !g.Done() && g.cycle < g.cfg.MaxCycles {
			g.Step()
		}
	}
	c.cycle++
}

// Run simulates to completion and returns the per-SM results plus the
// aggregate chip IPC (sum of instructions over the longest SM's
// cycles).
func (c *Cluster) Run() (perSM []Result, chipIPC float64) {
	maxCycles := uint64(0)
	for _, g := range c.sms {
		if g.cfg.MaxCycles > maxCycles {
			maxCycles = g.cfg.MaxCycles
		}
	}
	for !c.Done() && c.cycle < maxCycles {
		c.Step()
	}
	var inst, cycles uint64
	for _, g := range c.sms {
		r := g.Result()
		perSM = append(perSM, r)
		inst += r.Instructions
		if r.Cycles > cycles {
			cycles = r.Cycles
		}
	}
	if cycles > 0 {
		chipIPC = float64(inst) / float64(cycles)
	}
	return perSM, chipIPC
}
