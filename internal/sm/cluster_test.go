package sm_test

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sm"
)

func TestClusterRunsAllSMs(t *testing.T) {
	spec := tinySpec()
	spec.InstrPerWarp = 600
	c, err := sm.NewCluster(4, testConfig(), spec, func() sm.Controller { return sched.NewGTO() })
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSMs() != 4 {
		t.Fatalf("SMs = %d", c.NumSMs())
	}
	perSM, chipIPC := c.Run()
	if len(perSM) != 4 {
		t.Fatalf("results = %d", len(perSM))
	}
	for i, r := range perSM {
		if r.FinishedWarps != spec.NumWarps {
			t.Fatalf("SM %d finished %d warps", i, r.FinishedWarps)
		}
		if r.TimedOut {
			t.Fatalf("SM %d timed out", i)
		}
	}
	if chipIPC <= 0 {
		t.Fatalf("chip IPC = %f", chipIPC)
	}
	if !c.Done() {
		t.Fatal("cluster not done after Run")
	}
}

func TestClusterSMsSeeDistinctStreams(t *testing.T) {
	spec := tinySpec()
	spec.InstrPerWarp = 400
	c, err := sm.NewCluster(2, testConfig(), spec, func() sm.Controller { return sched.NewGTO() })
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	// Different seeds → different cache behaviour.
	if c.SM(0).L1().Stats() == c.SM(1).L1().Stats() {
		t.Fatal("SMs produced identical cache statistics; seeds not mixed")
	}
}

func TestClusterSharesL2(t *testing.T) {
	spec := tinySpec()
	spec.InstrPerWarp = 400
	c, err := sm.NewCluster(3, testConfig(), spec, func() sm.Controller { return sched.NewGTO() })
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	// All SMs' misses land in one shared L2.
	shared := c.L2().Stats().Accesses
	var sum uint64
	for i := 0; i < c.NumSMs(); i++ {
		sum += c.SM(i).L1().Stats().Misses
	}
	if shared == 0 || sum == 0 {
		t.Fatal("no shared L2 traffic")
	}
	if c.SM(0).L2() != c.L2() || c.SM(2).L2() != c.L2() {
		t.Fatal("SMs not wired to the shared L2")
	}
}

func TestClusterDeterminism(t *testing.T) {
	spec := tinySpec()
	spec.InstrPerWarp = 400
	run := func() float64 {
		c, err := sm.NewCluster(2, testConfig(), spec, func() sm.Controller { return sched.NewGTO() })
		if err != nil {
			t.Fatal(err)
		}
		_, ipc := c.Run()
		return ipc
	}
	if run() != run() {
		t.Fatal("cluster simulation not deterministic")
	}
}

func TestClusterRejectsZeroSMs(t *testing.T) {
	if _, err := sm.NewCluster(0, testConfig(), tinySpec(), func() sm.Controller { return sched.NewGTO() }); err == nil {
		t.Fatal("zero-SM cluster accepted")
	}
}

func TestClusterBandwidthScalesWithSMs(t *testing.T) {
	// The shared DRAM must be provisioned at n× the per-SM share:
	// a 4-SM cluster should finish the same total work in fewer cycles
	// than 4× a single SM's cycles would suggest under a fixed bus.
	spec := tinySpec()
	spec.InstrPerWarp = 500
	single, err := sm.NewCluster(1, testConfig(), spec, func() sm.Controller { return sched.NewGTO() })
	if err != nil {
		t.Fatal(err)
	}
	_, ipc1 := single.Run()

	quad, err := sm.NewCluster(4, testConfig(), spec, func() sm.Controller { return sched.NewGTO() })
	if err != nil {
		t.Fatal(err)
	}
	_, ipc4 := quad.Run()
	// Aggregate chip IPC should scale well beyond a single SM's.
	if ipc4 < 2*ipc1 {
		t.Fatalf("4-SM chip IPC %f not scaling over single-SM %f", ipc4, ipc1)
	}
}
