// Package sm is the cycle-level Streaming Multiprocessor model: warps,
// CTAs, barriers, the issue pipeline, the L1D + VTA + MSHR front end,
// the CIAO shared-memory cache path, and the fill/response machinery,
// driven by a pluggable warp-scheduling Controller.
//
// One GPU value simulates one SM plus its view of the shared L2/DRAM.
// The paper's results are relative IPCs across warp schedulers, which
// are per-SM dynamics; the harness runs independent SMs in parallel
// goroutines when aggregating.
package sm

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/l2"
	"repro/internal/workload"
)

// Config shapes one simulated SM (Table I defaults via DefaultConfig).
type Config struct {
	// L1 is the L1D geometry.
	L1 cache.Config
	// VTAEntriesPerWarp is the victim-tag-array depth (Table I: 8).
	VTAEntriesPerWarp int
	// SharedMemBytes is the shared-memory capacity (Table I: 48KB).
	SharedMemBytes int
	// SMMTEntries bounds concurrent shared-memory allocations.
	SMMTEntries int
	// MSHREntries and MSHRMergeMax shape the L1 MSHR.
	MSHREntries  int
	MSHRMergeMax int
	// DependLatency is the minimum cycles between two issues of the
	// same warp (register dependency distance); it is what makes TLP
	// matter: with fewer ready warps than DependLatency the SM starves.
	DependLatency int
	// MaxOutstandingLines is the per-warp memory-level parallelism: a
	// warp keeps issuing until it has this many line fills in flight,
	// then blocks (hit-under-miss / scoreboard model).
	MaxOutstandingLines int
	// SharedHitLatency is the shared-memory access latency (Table I: 1).
	SharedHitLatency int
	// MigrationPenalty is the extra cycles for the L1D→shared-memory
	// single-copy migration through the response queue (§IV-B).
	MigrationPenalty int
	// ResponseQueueCap bounds in-flight fills.
	ResponseQueueCap int
	// MaxCycles aborts runaway simulations.
	MaxCycles uint64
	// SampleInterval is the time-series sampling period in cycles
	// (0 disables sampling).
	SampleInterval uint64
	// DeadlockWindow is how many idle cycles (no issue, nothing in
	// flight) are tolerated before stalled warps are force-released;
	// this mirrors the release valves real throttling schedulers need
	// so a stalled warp cannot block its CTA's barrier forever.
	DeadlockWindow uint64
	// EnableSharedCache reserves unused shared memory for the CIAO
	// on-chip memory architecture at construction time.
	EnableSharedCache bool
	// L2Config shapes the shared L2 + DRAM when the GPU builds its own.
	L2Config l2.Config
}

// DefaultConfig returns the Table I GTX480-like configuration.
func DefaultConfig() Config {
	return Config{
		L1: cache.Config{
			Name:       "L1D",
			SizeBytes:  16 << 10,
			Ways:       4,
			Write:      cache.WriteThroughNoAllocate,
			UseXORHash: true,
			HitLatency: 1,
		},
		VTAEntriesPerWarp:   8,
		SharedMemBytes:      48 << 10,
		SMMTEntries:         16,
		MSHREntries:         32,
		MSHRMergeMax:        8,
		DependLatency:       6,
		MaxOutstandingLines: 16,
		SharedHitLatency:    1,
		MigrationPenalty:    3,
		ResponseQueueCap:    64,
		MaxCycles:           0, // derived from the kernel when zero
		SampleInterval:      2000,
		DeadlockWindow:      2000,
		L2Config:            l2.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if c.VTAEntriesPerWarp <= 0 {
		return fmt.Errorf("sm: non-positive VTA depth")
	}
	if c.SharedMemBytes <= 0 || c.SMMTEntries <= 0 {
		return fmt.Errorf("sm: invalid shared memory shape")
	}
	if c.MSHREntries < workload.MaxFanout || c.MSHRMergeMax <= 0 {
		return fmt.Errorf("sm: MSHR needs at least %d entries (max coalescing burst)", workload.MaxFanout)
	}
	if c.DependLatency <= 0 {
		return fmt.Errorf("sm: DependLatency must be positive")
	}
	if c.MaxOutstandingLines < workload.MaxFanout {
		return fmt.Errorf("sm: MaxOutstandingLines must cover one burst (%d)", workload.MaxFanout)
	}
	if c.ResponseQueueCap <= 0 {
		return fmt.Errorf("sm: response queue must be bounded and positive")
	}
	return c.L2Config.Validate()
}
