package sm

import "repro/internal/workload"

// MemPath selects where a warp's global accesses are served.
type MemPath uint8

// Memory paths.
const (
	// PathL1 is the conventional L1D path.
	PathL1 MemPath = iota
	// PathSharedCache redirects through the CIAO shared-memory cache.
	PathSharedCache
	// PathBypass skips L1D and goes straight to L2/DRAM (statPCAL).
	PathBypass
)

// Controller is the warp scheduler plus its policy hooks. One
// controller instance drives one GPU for one run; controllers carry
// state and must not be shared across concurrent GPUs.
type Controller interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Attach is called once before simulation with the GPU, letting
	// the controller size its tables.
	Attach(g *GPU)
	// Pick returns the warp to issue at cycle now, or -1 to idle.
	Pick(g *GPU, now uint64) int
	// MemPath routes warp wid's next global access.
	MemPath(g *GPU, wid int) MemPath
	// OnCycle runs once per cycle before issue (epoch bookkeeping).
	OnCycle(g *GPU, now uint64)
	// OnIssue observes a successful issue.
	OnIssue(g *GPU, now uint64, wid int, kind workload.InstrKind)
	// OnVTAHit observes a lost-locality event: interfered warp's miss
	// matched its victim tags; interferer is the recorded evictor.
	// atShared reports whether the access was on the shared-cache path
	// (shared-memory interference rather than L1D interference).
	OnVTAHit(g *GPU, now uint64, interfered, interferer int, atShared bool)
	// OnWarpFinished observes warp completion.
	OnWarpFinished(g *GPU, wid int)
}

// Base is a no-op Controller core for embedding: concrete schedulers
// override what they need.
type Base struct{}

// Attach implements Controller.
func (Base) Attach(*GPU) {}

// MemPath implements Controller.
func (Base) MemPath(*GPU, int) MemPath { return PathL1 }

// OnCycle implements Controller.
func (Base) OnCycle(*GPU, uint64) {}

// OnIssue implements Controller.
func (Base) OnIssue(*GPU, uint64, int, workload.InstrKind) {}

// OnVTAHit implements Controller.
func (Base) OnVTAHit(*GPU, uint64, int, int, bool) {}

// OnWarpFinished implements Controller.
func (Base) OnWarpFinished(*GPU, int) {}

// GreedyThenOldest is the GTO issue order shared by most controllers:
// keep issuing the last warp while it stays ready, otherwise fall back
// to the oldest (lowest-ID) ready warp. It is embedded by GTO, CCWS,
// Best-SWL, statPCAL and CIAO, which all "leverage GTO to decide the
// order of execution of warps" (§V-A).
type GreedyThenOldest struct {
	current int
}

// PickGTO returns the GTO choice among issueable warps for which
// eligible(w) holds, or -1. The V flag is NOT consulted here — the
// eligibility predicate owns the throttling decision, which lets
// schedulers grant a barrier boost to stalled warps whose CTA is
// blocked (see GPU.CTABarrierPending).
func (g *GreedyThenOldest) PickGTO(gpu *GPU, now uint64, eligible func(*Warp) bool) int {
	if g.current >= 0 && g.current < gpu.NumWarps() {
		w := gpu.Warp(g.current)
		if w.Issueable(now) && eligible(w) {
			return g.current
		}
	}
	// The live list is ascending, so this is the same oldest-first
	// order as scanning 0..NumWarps — minus the finished warps, which
	// are never issueable anyway.
	for _, i := range gpu.LiveWarpIDs() {
		w := gpu.Warp(i)
		if w.Issueable(now) && eligible(w) {
			g.current = i
			return i
		}
	}
	return -1
}

// EligibleOrBarrierBoosted is the standard eligibility for throttling
// schedulers: active warps run; stalled warps run only when their CTA
// has warps waiting at a barrier (which all threads must reach).
func EligibleOrBarrierBoosted(gpu *GPU) func(*Warp) bool {
	return func(w *Warp) bool {
		return w.V || gpu.CTABarrierPending(w.CTA)
	}
}
