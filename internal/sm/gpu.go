package sm

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/l2"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/sharedmem"
	"repro/internal/workload"
)

// Event payload markers for the response queue.
const (
	payloadL1 = iota
	payloadShared
	payloadBypass
)

// GPU simulates one SM and its memory hierarchy for one kernel under
// one scheduling controller.
type GPU struct {
	cfg    Config
	kernel *workload.Kernel
	ctrl   Controller

	l1    *cache.Cache
	vta   *cache.VTA
	l2c   *l2.L2
	mshr  *memory.MSHR
	respQ *memory.LatencyQueue
	smmt  *sharedmem.SMMT
	shc   *sharedmem.Cache // nil when no unused space / disabled

	warps    []Warp
	barriers []int // waiting count per CTA
	// live holds the IDs of unfinished warps in ascending order, so
	// per-cycle scans (scheduler pick, deadlock release) skip finished
	// warps instead of filtering the full warp array every cycle.
	live []int
	// ctaLive tracks unfinished warps per CTA, replacing the all-warp
	// scan the barrier-release check used to do.
	ctaLive     []int
	warpsPerCTA int

	cycle         uint64
	instTotal     uint64
	vtaHitsTotal  uint64
	finished      int
	lastIssue     uint64
	deadlockFrees uint64
	structStalls  uint64
	// nextSample is the cycle of the next time-series sample
	// (maxUint64 when sampling is off), replacing a per-cycle modulo.
	nextSample uint64

	imat *metrics.InterferenceMatrix
	ts   metrics.TimeSeries
	// sampling deltas
	sInst, sVTA uint64
	sL1Acc      uint64
	sL1Hit      uint64
}

// NewGPU wires an SM for the kernel under ctrl. A nil sharedL2 builds
// a private L2 from cfg.L2Config; passing one in lets multi-SM
// harnesses share it.
func NewGPU(cfg Config, kernel *workload.Kernel, ctrl Controller, sharedL2 *l2.L2) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec := kernel.Spec()
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = kernel.TotalInstructions() * 64
	}
	l2c := sharedL2
	if l2c == nil {
		l2c = l2.New(cfg.L2Config)
	}

	g := &GPU{
		cfg:    cfg,
		kernel: kernel,
		ctrl:   ctrl,
		l1:     cache.New(cfg.L1),
		vta:    cache.NewVTA(spec.NumWarps, cfg.VTAEntriesPerWarp),
		l2c:    l2c,
		mshr:   memory.NewMSHR(cfg.MSHREntries, cfg.MSHRMergeMax),
		respQ:  memory.NewLatencyQueue("resp", cfg.ResponseQueueCap),
		smmt:   sharedmem.NewSMMT(cfg.SharedMemBytes, cfg.SMMTEntries),
		imat:   metrics.NewInterferenceMatrix(spec.NumWarps),
	}

	// Kernel shared-memory usage: one SMMT entry per CTA (§II-A).
	if spec.FsMem > 0 {
		total := int(spec.FsMem * float64(cfg.SharedMemBytes))
		per := total / spec.NumCTAs()
		if per > 0 {
			for cta := 0; cta < spec.NumCTAs(); cta++ {
				if _, err := g.smmt.Reserve(cta, per); err != nil {
					return nil, fmt.Errorf("sm: CTA shared memory: %w", err)
				}
			}
		}
	}
	// CIAO reserves the remaining space for its cache (§IV-B).
	if cfg.EnableSharedCache {
		base, size := g.smmt.LargestFreeRegion()
		if tr, err := sharedmem.NewTranslator(base, size); err == nil {
			if _, err := g.smmt.Reserve(sharedmem.CIAOReservationID, size); err != nil {
				return nil, fmt.Errorf("sm: CIAO reservation: %w", err)
			}
			g.shc = sharedmem.NewCache(tr)
		}
	}

	g.warps = make([]Warp, spec.NumWarps)
	g.barriers = make([]int, spec.NumCTAs())
	g.live = make([]int, spec.NumWarps)
	g.ctaLive = make([]int, spec.NumCTAs())
	g.warpsPerCTA = spec.WarpsPerCTA
	for i := range g.warps {
		g.warps[i] = Warp{
			ID:         i,
			CTA:        i / spec.WarpsPerCTA,
			V:          true,
			MaxPending: cfg.MaxOutstandingLines,
			stream:     kernel.Stream(i),
		}
		g.live[i] = i
		g.ctaLive[i/spec.WarpsPerCTA]++
	}
	g.nextSample = ^uint64(0)
	if cfg.SampleInterval > 0 {
		g.nextSample = cfg.SampleInterval
	}
	ctrl.Attach(g)
	return g, nil
}

// MustGPU is NewGPU that panics on error, for tests and examples.
func MustGPU(cfg Config, kernel *workload.Kernel, ctrl Controller, sharedL2 *l2.L2) *GPU {
	g, err := NewGPU(cfg, kernel, ctrl, sharedL2)
	if err != nil {
		panic(err)
	}
	return g
}

// Accessors used by controllers and the harness.

// NumWarps returns the resident warp count.
func (g *GPU) NumWarps() int { return len(g.warps) }

// Warp returns warp i's state (mutable: controllers flip V/I).
func (g *GPU) Warp(i int) *Warp { return &g.warps[i] }

// Cycle returns the current cycle.
func (g *GPU) Cycle() uint64 { return g.cycle }

// InstTotal returns total issued instructions (Inst-total of Fig. 6).
func (g *GPU) InstTotal() uint64 { return g.instTotal }

// ActiveWarps counts warps that are neither finished nor stalled.
func (g *GPU) ActiveWarps() int {
	n := 0
	for _, id := range g.live {
		if g.warps[id].V {
			n++
		}
	}
	return n
}

// LiveWarps counts unfinished warps.
func (g *GPU) LiveWarps() int { return len(g.warps) - g.finished }

// LiveWarpIDs returns the IDs of unfinished warps in ascending order.
// Schedulers iterate this instead of 0..NumWarps so a mostly-drained
// kernel does not pay for warps that already retired. Callers must not
// mutate or retain the slice; it changes as warps finish.
func (g *GPU) LiveWarpIDs() []int { return g.live }

// CTABarrierPending reports whether any warp of the CTA is waiting at
// a barrier, which entitles stalled CTA members to a scheduling boost
// (all threads must reach the barrier for anyone to proceed).
func (g *GPU) CTABarrierPending(cta int) bool {
	return cta >= 0 && cta < len(g.barriers) && g.barriers[cta] > 0
}

// Kernel returns the running kernel.
func (g *GPU) Kernel() *workload.Kernel { return g.kernel }

// Config returns the SM configuration.
func (g *GPU) Config() Config { return g.cfg }

// L1 exposes the L1D cache.
func (g *GPU) L1() *cache.Cache { return g.l1 }

// VTA exposes the victim tag array.
func (g *GPU) VTA() *cache.VTA { return g.vta }

// L2 exposes the L2/DRAM subsystem.
func (g *GPU) L2() *l2.L2 { return g.l2c }

// SharedCache returns the CIAO shared-memory cache, or nil.
func (g *GPU) SharedCache() *sharedmem.Cache { return g.shc }

// SMMT exposes the shared-memory management table.
func (g *GPU) SMMT() *sharedmem.SMMT { return g.smmt }

// Interference exposes the inter-warp interference matrix.
func (g *GPU) Interference() *metrics.InterferenceMatrix { return g.imat }

// TimeSeries returns the sampled trace.
func (g *GPU) TimeSeries() *metrics.TimeSeries { return &g.ts }

// VTAHitsTotal returns the cumulative lost-locality events.
func (g *GPU) VTAHitsTotal() uint64 { return g.vtaHitsTotal }

// IRS computes warp i's Individual Re-reference Score per Eq. (1):
// VTA hits of i divided by instructions-per-active-warp.
func (g *GPU) IRS(i int) float64 {
	if g.instTotal == 0 {
		return 0
	}
	active := g.ActiveWarps()
	if active == 0 {
		active = 1
	}
	return float64(g.warps[i].VTAHits) * float64(active) / float64(g.instTotal)
}

// Done reports whether every warp finished.
func (g *GPU) Done() bool { return g.finished == len(g.warps) }

// Run simulates until completion or the cycle cap, returning the final
// statistics.
func (g *GPU) Run() Result {
	for !g.Done() && g.cycle < g.cfg.MaxCycles {
		g.Step()
	}
	return g.Result()
}

// Step advances one cycle.
func (g *GPU) Step() {
	now := g.cycle

	// 1. Retire ready fills. NextReady answers the common "nothing in
	// flight is due yet" case in O(1), so a quiescent response queue
	// costs one comparison.
	if rc, ok := g.respQ.NextReady(); ok && rc <= now {
		for {
			ev, ok := g.respQ.PopReady(now)
			if !ok {
				break
			}
			g.handleFill(ev, now)
		}
	}

	// 2. Controller epoch work.
	g.ctrl.OnCycle(g, now)

	// 3. Issue.
	wid := g.ctrl.Pick(g, now)
	if wid >= 0 {
		g.issue(wid, now)
		g.lastIssue = now
	} else if g.respQ.Len() == 0 && now-g.lastIssue > g.cfg.DeadlockWindow {
		// Throttle deadlock: every unfinished warp is stalled (or
		// barrier-blocked behind a stalled warp) with nothing in
		// flight. Release the valves.
		g.freeStalledWarps(now)
	}

	// 4. Sampling.
	if now == g.nextSample {
		g.sample(now)
		g.nextSample = now + g.cfg.SampleInterval
	}
	g.cycle++
}

// freeStalledWarps force-activates stalled warps after a deadlock
// window expires.
func (g *GPU) freeStalledWarps(now uint64) {
	freed := false
	for _, id := range g.live {
		if !g.warps[id].V {
			g.warps[id].V = true
			freed = true
		}
	}
	if freed {
		g.deadlockFrees++
		g.lastIssue = now
	}
}

// issue executes warp wid's next instruction at cycle now.
func (g *GPU) issue(wid int, now uint64) {
	w := &g.warps[wid]
	ins, ok := w.next()
	if !ok {
		g.finishWarp(wid)
		return
	}
	issued := true
	switch ins.Kind {
	case workload.Compute:
		w.NextReady = now + uint64(g.cfg.DependLatency)
	case workload.BarrierOp:
		g.arriveBarrier(wid, now)
	case workload.SharedOp:
		// Explicit shared access: bank conflicts serialise the access.
		lat := uint64(ins.Conflict)
		if lat == 0 {
			lat = 1
		}
		w.NextReady = now + lat + uint64(g.cfg.DependLatency) - 1
	case workload.GlobalLoad:
		issued = g.load(w, ins, now)
	case workload.GlobalStore:
		issued = g.store(w, ins, now)
	}
	if issued && (ins.Kind == workload.GlobalLoad || ins.Kind == workload.GlobalStore) {
		// The issue slot and address pipeline are occupied for a full
		// dependency distance even when fills are still in flight.
		if floor := now + uint64(g.cfg.DependLatency); w.NextReady < floor {
			w.NextReady = floor
		}
	}
	if !issued {
		w.retry()
		g.structStalls++
		w.NextReady = now + 1
		return
	}
	w.InstExecuted++
	w.LastIssued = now
	g.instTotal++
	g.ctrl.OnIssue(g, now, wid, ins.Kind)
	if w.drained() {
		g.finishWarp(wid)
	}
}

// probeVTA handles the lost-locality check on a miss.
func (g *GPU) probeVTA(w *Warp, addr memory.Addr, now uint64, atShared bool) {
	hit, evictor := g.vta.Probe(w.ID, addr)
	if !hit {
		return
	}
	w.VTAHits++
	g.vtaHitsTotal++
	g.sVTA++
	g.imat.Record(w.ID, evictor)
	g.ctrl.OnVTAHit(g, now, w.ID, evictor, atShared)
}

// load serves a global load of up to MaxFanout coalesced lines;
// reports false on a structural stall (nothing issued, retried later).
func (g *GPU) load(w *Warp, ins *workload.Instruction, now uint64) bool {
	path := g.ctrl.MemPath(g, w.ID)
	if path == PathSharedCache && g.shc == nil {
		path = PathL1
	}
	addrs := ins.AddrSlice()
	// MLP budget: block until in-flight fills drain enough for the
	// whole burst.
	if w.Outstanding+len(addrs) > g.cfg.MaxOutstandingLines {
		return false
	}
	// Conservative structural pre-check so a burst either issues
	// completely or not at all.
	if g.respQ.Len()+len(addrs) > g.cfg.ResponseQueueCap {
		return false
	}
	switch path {
	case PathSharedCache:
		return g.loadShared(w, addrs, now)
	case PathBypass:
		for _, a := range addrs {
			done := g.l2c.Bypass(now, a, false)
			g.respQ.Push(memory.Event{
				Req:        memory.Request{Addr: a, Kind: memory.Load, WarpID: w.ID, IssueCycle: now},
				Line:       a.LineAddr(),
				ReadyCycle: done,
				Payload:    payloadBypass,
			})
			w.Outstanding++
		}
		return true
	default:
		return g.loadL1(w, addrs, now)
	}
}

func (g *GPU) loadL1(w *Warp, addrs []memory.Addr, now uint64) bool {
	if g.mshr.Outstanding()+len(addrs) > g.mshr.Capacity() {
		g.mshr.NoteStall()
		return false
	}
	misses := 0
	for _, a := range addrs {
		// Secondary access to an in-flight line: merge silently. It is
		// neither a hit nor a fresh miss, and it must not probe the
		// VTA (the line is coming; locality was not lost).
		if e := g.mshr.Lookup(a); e != nil && !e.SharedValid {
			if g.mshr.CanAllocate(a) {
				g.mshr.Allocate(memory.Request{Addr: a, Kind: memory.Load, WarpID: w.ID, IssueCycle: now})
				w.Outstanding++
				misses++
				continue
			}
		}
		if g.l1.Access(a, w.ID, now, false) {
			continue
		}
		misses++
		g.probeVTA(w, a, now, false)
		req := memory.Request{Addr: a, Kind: memory.Load, WarpID: w.ID, IssueCycle: now}
		if !g.mshr.CanAllocate(a) {
			// Merge-limit overflow on a hot line: fetch directly
			// without an MSHR slot (the fill bypasses L1 allocation).
			done := g.l2c.Bypass(now, a, false)
			g.respQ.Push(memory.Event{Req: req, Line: a.LineAddr(), ReadyCycle: done, Payload: payloadBypass})
			w.Outstanding++
			continue
		}
		_, merged := g.mshr.Allocate(req)
		if !merged {
			done, level := g.l2c.Access(now, a, w.ID, false)
			g.respQ.Push(memory.Event{
				Req:        req,
				Line:       a.LineAddr(),
				ReadyCycle: done,
				HitLevel:   level,
				Payload:    payloadL1,
			})
		}
		w.Outstanding++
	}
	if misses == 0 {
		w.NextReady = now + uint64(g.cfg.L1.HitLatency) + uint64(g.cfg.DependLatency) - 1
	}
	return true
}

// loadShared serves an isolated warp's load via the shared-memory
// cache, including the L1D→shared migration for coherence (§IV-B).
func (g *GPU) loadShared(w *Warp, addrs []memory.Addr, now uint64) bool {
	if g.mshr.Outstanding()+len(addrs) > g.mshr.Capacity() {
		g.mshr.NoteStall()
		return false
	}
	misses, migrations := 0, 0
	for _, a := range addrs {
		// Secondary access to an in-flight shared fill: merge silently.
		if e := g.mshr.Lookup(a); e != nil && e.SharedValid {
			if g.mshr.CanAllocate(a) {
				g.mshr.Allocate(memory.Request{Addr: a, Kind: memory.Load, WarpID: w.ID, IssueCycle: now})
				w.Outstanding++
				misses++
				continue
			}
		}
		// Serialized L1D tag check first: a resident copy must migrate
		// so exactly one copy exists.
		if g.l1.Probe(a) {
			g.l1.Invalidate(a)
			g.fillShared(a, w.ID)
			g.shc.Access(a, w.ID) // counts the (now-hit) access
			migrations++
			continue
		}
		if g.shc.Access(a, w.ID) {
			continue
		}
		misses++
		g.probeVTA(w, a, now, true)
		req := memory.Request{Addr: a, Kind: memory.Load, WarpID: w.ID, IssueCycle: now}
		if !g.mshr.CanAllocate(a) {
			done := g.l2c.Bypass(now, a, false)
			g.respQ.Push(memory.Event{Req: req, Line: a.LineAddr(), ReadyCycle: done, Payload: payloadBypass})
			w.Outstanding++
			continue
		}
		entry, merged := g.mshr.Allocate(req)
		entry.SharedValid = true
		if !merged {
			done, level := g.l2c.Access(now, a, w.ID, false)
			g.respQ.Push(memory.Event{
				Req:        req,
				Line:       a.LineAddr(),
				ReadyCycle: done,
				HitLevel:   level,
				Payload:    payloadShared,
			})
		}
		w.Outstanding++
	}
	switch {
	case misses > 0:
		// Blocked on fills; NextReady handled by wake.
	case migrations > 0:
		w.NextReady = now + uint64(g.cfg.MigrationPenalty) + uint64(g.cfg.DependLatency)
	default:
		w.NextReady = now + uint64(g.cfg.SharedHitLatency) + uint64(g.cfg.DependLatency) - 1
	}
	return true
}

// fillShared installs a line into the shared cache, feeding evictions
// into the common VTA.
func (g *GPU) fillShared(addr memory.Addr, wid int) {
	evLine, evWID, evicted := g.shc.Fill(addr, wid)
	if evicted && evWID != wid {
		g.vta.Insert(evWID, evLine, wid)
	}
}

// store serves a global store (write-through, non-blocking).
func (g *GPU) store(w *Warp, ins *workload.Instruction, now uint64) bool {
	path := g.ctrl.MemPath(g, w.ID)
	if path == PathSharedCache && g.shc == nil {
		path = PathL1
	}
	for _, a := range ins.AddrSlice() {
		switch path {
		case PathSharedCache:
			if g.l1.Probe(a) {
				g.l1.Invalidate(a)
			}
			if g.shc.Probe(a) {
				g.fillShared(a, w.ID) // update in place
			}
		case PathBypass:
			// No L1 interaction at all.
		default:
			g.l1.Access(a, w.ID, now, true)
		}
		// Write-through to L2 consumes bandwidth off the critical path.
		g.l2c.Access(now, a, w.ID, true)
	}
	w.NextReady = now + uint64(g.cfg.DependLatency)
	return true
}

// handleFill retires one response-queue event.
func (g *GPU) handleFill(ev memory.Event, now uint64) {
	switch ev.Payload {
	case payloadBypass:
		g.wake(ev.Req.WarpID, now)
		return
	case payloadShared:
		entry := g.mshr.Fill(ev.Line)
		if entry == nil {
			return
		}
		g.fillShared(ev.Line, ev.Req.WarpID)
		for _, r := range entry.Merged {
			g.wake(r.WarpID, now)
		}
	default:
		entry := g.mshr.Fill(ev.Line)
		if entry == nil {
			return
		}
		evc, evicted := g.l1.Fill(ev.Line, ev.Req.WarpID, now)
		if evicted && evc.OwnerWID != ev.Req.WarpID {
			g.vta.Insert(evc.OwnerWID, evc.Line, ev.Req.WarpID)
		}
		for _, r := range entry.Merged {
			g.wake(r.WarpID, now)
		}
	}
}

// wake releases one in-flight line of a warp.
func (g *GPU) wake(wid int, now uint64) {
	w := &g.warps[wid]
	if w.Outstanding > 0 {
		w.Outstanding--
	}
}

// arriveBarrier processes a BarrierOp.
func (g *GPU) arriveBarrier(wid int, now uint64) {
	w := &g.warps[wid]
	cta := w.CTA
	w.AtBarrier = true
	g.barriers[cta]++
	g.maybeReleaseBarrier(cta, now)
}

// maybeReleaseBarrier opens the CTA barrier once all live warps
// arrived. A CTA's warps occupy the contiguous ID range
// [cta*warpsPerCTA, (cta+1)*warpsPerCTA), so the release touches only
// that range; the live count comes from the ctaLive table.
func (g *GPU) maybeReleaseBarrier(cta int, now uint64) {
	if g.barriers[cta] < g.ctaLive[cta] {
		return
	}
	g.barriers[cta] = 0
	lo, hi := cta*g.warpsPerCTA, (cta+1)*g.warpsPerCTA
	if hi > len(g.warps) {
		hi = len(g.warps)
	}
	for i := lo; i < hi; i++ {
		if g.warps[i].AtBarrier {
			g.warps[i].AtBarrier = false
			if g.warps[i].NextReady <= now {
				g.warps[i].NextReady = now + 1
			}
		}
	}
}

// finishWarp retires a warp and unblocks its CTA barrier if needed.
func (g *GPU) finishWarp(wid int) {
	w := &g.warps[wid]
	if w.Finished {
		return
	}
	w.Finished = true
	g.finished++
	g.ctaLive[w.CTA]--
	for i, id := range g.live {
		if id == wid {
			g.live = append(g.live[:i], g.live[i+1:]...)
			break
		}
	}
	g.ctrl.OnWarpFinished(g, wid)
	g.maybeReleaseBarrier(w.CTA, g.cycle)
}

// sample records one time-series point.
func (g *GPU) sample(now uint64) {
	l1 := g.l1.Stats()
	dAcc := l1.Accesses - g.sL1Acc
	dHit := l1.Hits - g.sL1Hit
	hr := 0.0
	if dAcc > 0 {
		hr = float64(dHit) / float64(dAcc)
	}
	g.ts.Add(metrics.Sample{
		Cycle:        now,
		Instructions: g.instTotal,
		IPC:          float64(g.instTotal-g.sInst) / float64(g.cfg.SampleInterval),
		ActiveWarps:  g.ActiveWarps(),
		Interference: g.sVTA,
		L1HitRate:    hr,
	})
	g.sInst = g.instTotal
	g.sVTA = 0
	g.sL1Acc, g.sL1Hit = l1.Accesses, l1.Hits
}

// Result is the final report of one simulation.
type Result struct {
	Scheduler      string
	Benchmark      string
	Cycles         uint64
	Instructions   uint64
	IPC            float64
	L1             cache.Stats
	VTAHits        uint64
	SharedUtil     float64
	SharedStats    sharedmem.CacheStats
	DeadlockFrees  uint64
	StructStalls   uint64
	FinishedWarps  int
	TimedOut       bool
	MaxActiveWarps int
}

// Result snapshots the current statistics.
func (g *GPU) Result() Result {
	r := Result{
		Scheduler:     g.ctrl.Name(),
		Benchmark:     g.kernel.Spec().Name,
		Cycles:        g.cycle,
		Instructions:  g.instTotal,
		L1:            g.l1.Stats(),
		VTAHits:       g.vtaHitsTotal,
		DeadlockFrees: g.deadlockFrees,
		StructStalls:  g.structStalls,
		FinishedWarps: g.finished,
		TimedOut:      !g.Done() && g.cycle >= g.cfg.MaxCycles,
	}
	if g.cycle > 0 {
		r.IPC = float64(g.instTotal) / float64(g.cycle)
	}
	if g.shc != nil {
		r.SharedUtil = g.shc.Utilization()
		r.SharedStats = g.shc.Stats()
	}
	return r
}
