package sm_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sm"
	"repro/internal/workload"
)

// tinySpec is a fast thrashing workload for engine tests.
func tinySpec() workload.Spec {
	return workload.Spec{
		Name:          "tiny",
		Class:         workload.SWS,
		APKI:          150,
		InputBytes:    1 << 20,
		NwrpBest:      2,
		NumWarps:      8,
		WarpsPerCTA:   4,
		InstrPerWarp:  1500,
		RegionSharing: 2,
		StorePct:      10,
		Seed:          7,
	}
}

func testConfig() sm.Config {
	cfg := sm.DefaultConfig()
	cfg.SampleInterval = 500
	return cfg
}

func runGTO(t *testing.T, spec workload.Spec, cfg sm.Config) sm.Result {
	t.Helper()
	k := workload.MustKernel(spec)
	g := sm.MustGPU(cfg, k, sched.NewGTO(), nil)
	r := g.Run()
	if r.TimedOut {
		t.Fatalf("simulation timed out at %d cycles", r.Cycles)
	}
	return r
}

func TestRunToCompletion(t *testing.T) {
	spec := tinySpec()
	r := runGTO(t, spec, testConfig())
	want := uint64(spec.NumWarps) * spec.InstrPerWarp
	if r.Instructions != want {
		t.Fatalf("instructions = %d, want %d", r.Instructions, want)
	}
	if r.FinishedWarps != spec.NumWarps {
		t.Fatalf("finished = %d, want %d", r.FinishedWarps, spec.NumWarps)
	}
	if r.IPC <= 0 || r.IPC > 1 {
		t.Fatalf("IPC = %f out of (0,1]", r.IPC)
	}
	if r.Cycles == 0 {
		t.Fatal("no cycles elapsed")
	}
}

func TestDeterminism(t *testing.T) {
	r1 := runGTO(t, tinySpec(), testConfig())
	r2 := runGTO(t, tinySpec(), testConfig())
	if r1.Cycles != r2.Cycles || r1.Instructions != r2.Instructions ||
		r1.L1.Hits != r2.L1.Hits || r1.VTAHits != r2.VTAHits {
		t.Fatalf("non-deterministic: %+v vs %+v", r1, r2)
	}
}

func TestMemorySystemExercised(t *testing.T) {
	r := runGTO(t, tinySpec(), testConfig())
	if r.L1.Accesses == 0 {
		t.Fatal("no L1 accesses")
	}
	if r.L1.Misses == 0 {
		t.Fatal("thrashing workload produced no misses")
	}
	if r.L1.Hits == 0 {
		t.Fatal("windowed workload produced no hits")
	}
}

func TestVTAHitsUnderThrashing(t *testing.T) {
	// 8 warps × shared windows over a 32-set 4-way L1: evictions and
	// re-references must produce lost-locality (VTA) hits.
	spec := tinySpec()
	spec.NumWarps = 16
	spec.WarpsPerCTA = 4
	spec.InstrPerWarp = 3000
	r := runGTO(t, spec, testConfig())
	if r.VTAHits == 0 {
		t.Fatal("no VTA hits despite contention")
	}
}

func TestBarrierSynchronization(t *testing.T) {
	spec := tinySpec()
	spec.Barriers = true
	spec.BarrierEvery = 300
	r := runGTO(t, spec, testConfig())
	if r.FinishedWarps != spec.NumWarps {
		t.Fatalf("barrier kernel did not finish: %d warps", r.FinishedWarps)
	}
}

func TestBarrierForcesSlowestWarpToCatchUp(t *testing.T) {
	// With barriers every 200 instructions, no warp can be more than
	// ~one barrier interval ahead; verify via per-warp progress under a
	// scheduler that would otherwise run one warp far ahead.
	spec := tinySpec()
	spec.Barriers = true
	spec.BarrierEvery = 200
	k := workload.MustKernel(spec)
	g := sm.MustGPU(testConfig(), k, sched.NewGTO(), nil)
	for i := 0; i < 30000 && !g.Done(); i++ {
		g.Step()
		var lo, hi uint64 = 1 << 62, 0
		for w := 0; w < g.NumWarps(); w++ {
			if g.Warp(w).CTA != 0 || g.Warp(w).Finished {
				continue
			}
			n := g.Warp(w).InstExecuted
			if n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
		}
		if hi > lo && hi-lo > 2*spec.BarrierEvery+50 {
			t.Fatalf("cycle %d: warp progress spread %d exceeds barrier bound", i, hi-lo)
		}
	}
}

func TestStructuralStallsWithTinyMSHR(t *testing.T) {
	cfg := testConfig()
	cfg.MSHREntries = 8 // the minimum: one max-fanout burst
	cfg.MSHRMergeMax = 1
	spec := tinySpec()
	spec.NumWarps = 16
	spec.WarpsPerCTA = 4
	r := runGTO(t, spec, cfg)
	if r.StructStalls == 0 {
		t.Fatal("minimal MSHR produced no structural stalls")
	}
	if r.FinishedWarps != spec.NumWarps {
		t.Fatal("structural stalls prevented completion")
	}
}

func TestConfigRejectsSubFanoutMSHR(t *testing.T) {
	cfg := testConfig()
	cfg.MSHREntries = 4 // below MaxFanout: a burst could never issue
	if cfg.Validate() == nil {
		t.Fatal("sub-fanout MSHR accepted")
	}
}

func TestBestSWLLimitsActiveWarps(t *testing.T) {
	spec := tinySpec()
	k := workload.MustKernel(spec)
	g := sm.MustGPU(testConfig(), k, sched.NewBestSWL(2), nil)
	for i := 0; i < 200; i++ {
		g.Step()
	}
	if a := g.ActiveWarps(); a != 2 {
		t.Fatalf("active warps = %d, want 2", a)
	}
	r := g.Run()
	if r.FinishedWarps != spec.NumWarps {
		t.Fatalf("Best-SWL did not finish: %d", r.FinishedWarps)
	}
}

func TestBestSWLUsesTableNwrp(t *testing.T) {
	spec := tinySpec()
	spec.NwrpBest = 3
	k := workload.MustKernel(spec)
	s := sched.NewBestSWL(0)
	sm.MustGPU(testConfig(), k, s, nil)
	if s.Limit != 3 {
		t.Fatalf("limit = %d, want kernel Nwrp 3", s.Limit)
	}
}

func TestCCWSThrottlesUnderThrashing(t *testing.T) {
	spec := tinySpec()
	spec.NumWarps = 16
	spec.WarpsPerCTA = 4
	spec.InstrPerWarp = 4000
	k := workload.MustKernel(spec)
	ccws := sched.NewCCWS()
	g := sm.MustGPU(testConfig(), k, ccws, nil)
	throttledSeen := false
	for i := 0; i < 60000 && !g.Done(); i++ {
		g.Step()
		if ccws.ThrottledWarps(g) > 0 {
			throttledSeen = true
		}
	}
	if !throttledSeen {
		t.Fatal("CCWS never throttled a thrashing workload")
	}
}

func TestStatPCALBypassesNonTokenWarps(t *testing.T) {
	spec := tinySpec()
	k := workload.MustKernel(spec)
	s := sched.NewStatPCAL()
	g := sm.MustGPU(testConfig(), k, s, nil)
	// Before anything finishes, tokens are the lowest-ID warps.
	if s.MemPath(g, 0) != sm.PathL1 || s.MemPath(g, 5) != sm.PathBypass {
		t.Fatal("statPCAL mem paths wrong")
	}
	r := g.Run()
	if r.FinishedWarps != spec.NumWarps {
		t.Fatal("statPCAL did not finish")
	}
	// Token set is Nwrp=2; bypassed warps must not allocate in L1, so
	// L1 accesses should be well below total memory instructions.
	if r.L1.Accesses == 0 {
		t.Fatal("token warps produced no L1 accesses")
	}
}

func TestCIAOPRedirectsToSharedCache(t *testing.T) {
	spec := tinySpec()
	spec.NumWarps = 16
	spec.WarpsPerCTA = 4
	spec.InstrPerWarp = 4000
	cfg := testConfig()
	cfg.EnableSharedCache = true
	k := workload.MustKernel(spec)
	ctrl := core.NewP()
	g := sm.MustGPU(cfg, k, ctrl, nil)
	r := g.Run()
	if r.FinishedWarps != spec.NumWarps {
		t.Fatal("CIAO-P did not finish")
	}
	if ctrl.Redirections == 0 {
		t.Fatal("CIAO-P never redirected a warp")
	}
	if r.SharedStats.Accesses == 0 {
		t.Fatal("shared-memory cache never accessed after redirection")
	}
}

func TestCIAOTStallsAndReactivates(t *testing.T) {
	spec := tinySpec()
	spec.NumWarps = 16
	spec.WarpsPerCTA = 4
	spec.InstrPerWarp = 4000
	k := workload.MustKernel(spec)
	ctrl := core.NewT()
	g := sm.MustGPU(testConfig(), k, ctrl, nil)
	r := g.Run()
	if r.FinishedWarps != spec.NumWarps {
		t.Fatal("CIAO-T did not finish")
	}
	if ctrl.Stalls == 0 {
		t.Fatal("CIAO-T never stalled a warp")
	}
	if ctrl.Reactivations == 0 && ctrl.StalledCount() == 0 {
		t.Fatal("stalled warps neither reactivated nor pending")
	}
}

func TestCIAOCWithoutSharedCacheFallsBackToL1(t *testing.T) {
	// EnableSharedCache=false: CIAO-C must still run (isolation is a
	// no-op; throttling still works).
	spec := tinySpec()
	k := workload.MustKernel(spec)
	ctrl := core.NewC()
	g := sm.MustGPU(testConfig(), k, ctrl, nil)
	if g.SharedCache() != nil {
		t.Fatal("shared cache built despite disabled config")
	}
	r := g.Run()
	if r.FinishedWarps != spec.NumWarps {
		t.Fatal("CIAO-C without shared cache did not finish")
	}
}

func TestSharedCacheReservationRespectsKernelUsage(t *testing.T) {
	spec := tinySpec()
	spec.FsMem = 0.5 // kernel claims half the shared memory
	cfg := testConfig()
	cfg.EnableSharedCache = true
	k := workload.MustKernel(spec)
	g := sm.MustGPU(cfg, k, sched.NewGTO(), nil)
	if g.SharedCache() == nil {
		t.Fatal("no shared cache despite free space")
	}
	capacity := g.SharedCache().Translator().CapacityBytes()
	if capacity > cfg.SharedMemBytes/2 {
		t.Fatalf("CIAO cache %dB exceeds unused space", capacity)
	}
	if g.SMMT().Unused() != 0 {
		t.Fatalf("CIAO reservation left %dB unclaimed", g.SMMT().Unused())
	}
}

func TestTimeSeriesSampling(t *testing.T) {
	cfg := testConfig()
	cfg.SampleInterval = 200
	spec := tinySpec()
	k := workload.MustKernel(spec)
	g := sm.MustGPU(cfg, k, sched.NewGTO(), nil)
	g.Run()
	ts := g.TimeSeries()
	if ts.Len() == 0 {
		t.Fatal("no samples recorded")
	}
	prev := uint64(0)
	for _, s := range ts.Samples {
		if s.Cycle <= prev && prev != 0 {
			t.Fatal("samples not monotone in cycle")
		}
		prev = s.Cycle
		if s.IPC < 0 || s.IPC > 1 {
			t.Fatalf("interval IPC %f out of range", s.IPC)
		}
	}
}

func TestInterferenceMatrixPopulated(t *testing.T) {
	spec := tinySpec()
	spec.NumWarps = 16
	spec.WarpsPerCTA = 4
	spec.InstrPerWarp = 3000
	k := workload.MustKernel(spec)
	g := sm.MustGPU(testConfig(), k, sched.NewGTO(), nil)
	g.Run()
	if g.Interference().Total() == 0 {
		t.Fatal("interference matrix empty under thrashing")
	}
}

func TestIRSDefinition(t *testing.T) {
	spec := tinySpec()
	k := workload.MustKernel(spec)
	g := sm.MustGPU(testConfig(), k, sched.NewGTO(), nil)
	for i := 0; i < 5000 && !g.Done(); i++ {
		g.Step()
	}
	// IRS_i = VTAHits_i * ActiveWarps / InstTotal (Eq. 1).
	for i := 0; i < g.NumWarps(); i++ {
		want := float64(g.Warp(i).VTAHits) * float64(g.ActiveWarps()) / float64(g.InstTotal())
		if got := g.IRS(i); got != want {
			t.Fatalf("IRS(%d) = %g, want %g", i, got, want)
		}
	}
}

func TestDeadlockValve(t *testing.T) {
	// A pathological controller stalls everyone and never picks: the
	// valve must free the warps so the run completes.
	spec := tinySpec()
	spec.InstrPerWarp = 50
	cfg := testConfig()
	cfg.DeadlockWindow = 100
	k := workload.MustKernel(spec)
	g := sm.MustGPU(cfg, k, &stallEverything{}, nil)
	r := g.Run()
	if r.DeadlockFrees == 0 {
		t.Fatal("valve never fired")
	}
	if r.FinishedWarps != spec.NumWarps {
		t.Fatal("run did not complete after valve release")
	}
}

// stallEverything stalls all warps at attach and picks only active
// warps, exercising the deadlock valve.
type stallEverything struct {
	sm.Base
	sm.GreedyThenOldest
}

func (s *stallEverything) Name() string { return "stall-everything" }

func (s *stallEverything) Attach(g *sm.GPU) {
	for i := 0; i < g.NumWarps(); i++ {
		g.Warp(i).V = false
	}
}

func (s *stallEverything) Pick(g *sm.GPU, now uint64) int {
	return s.PickGTO(g, now, func(w *sm.Warp) bool { return w.V })
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.DependLatency = 0
	if bad.Validate() == nil {
		t.Fatal("zero depend latency accepted")
	}
	bad = testConfig()
	bad.ResponseQueueCap = 0
	if bad.Validate() == nil {
		t.Fatal("unbounded response queue accepted")
	}
	if _, err := sm.NewGPU(bad, workload.MustKernel(tinySpec()), sched.NewGTO(), nil); err == nil {
		t.Fatal("NewGPU accepted invalid config")
	}
}

func TestWarpStateStrings(t *testing.T) {
	w := sm.Warp{V: true}
	if w.State() != "active" {
		t.Fatalf("state = %s", w.State())
	}
	w.I = true
	if w.State() != "isolated" {
		t.Fatalf("state = %s", w.State())
	}
	w.V = false
	if w.State() != "stalled" {
		t.Fatalf("state = %s", w.State())
	}
}
