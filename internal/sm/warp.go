package sm

import "repro/internal/workload"

// Warp is the scheduler-visible state of one resident warp. The V
// (active) and I (isolated) flags are exactly the warp-list bits CIAO
// adds in §IV-A: V=1,I=0 active; V=1,I=1 isolated (memory requests
// redirected to shared memory); V=0 stalled.
type Warp struct {
	// ID is the warp slot (0..NumWarps-1).
	ID int
	// CTA is the warp's cooperative thread array.
	CTA int

	// V is the active flag: cleared when the warp is stalled by a
	// throttling scheduler.
	V bool
	// I is the isolation flag: set when CIAO redirects the warp's
	// global accesses to the shared-memory cache.
	I bool

	// Finished reports stream exhaustion.
	Finished bool
	// AtBarrier reports the warp is waiting at its CTA barrier.
	AtBarrier bool
	// Outstanding is the number of in-flight line fills.
	Outstanding int
	// MaxPending is the warp's memory-level parallelism: it may keep
	// issuing while Outstanding < MaxPending (set from the SM config).
	MaxPending int
	// NextReady is the earliest cycle the warp may issue again.
	NextReady uint64
	// InstExecuted counts issued instructions.
	InstExecuted uint64
	// VTAHits counts this warp's cumulative lost-locality detections
	// (the per-warp VTACount register of Figure 6).
	VTAHits uint64
	// LastIssued is the cycle of the warp's last issue, used by GTO.
	LastIssued uint64

	stream *workload.WarpStream
	// retryPending marks that the last instruction handed out by next
	// failed a structural hazard (MSHR full, response queue full) and
	// must be handed out again; the instruction stays in buf.
	retryPending bool
	stallCount   uint64

	// buf holds instructions pre-generated from the stream in batches,
	// so the per-issue path hands out a pointer into stable storage
	// (no per-instruction copy, no heap escape) and the stream's RNG
	// and phase bookkeeping amortise across warpBatch instructions.
	buf  [warpBatch]workload.Instruction
	bufI uint8 // next instruction to hand out
	bufN uint8 // instructions generated into buf
}

// warpBatch is how many instructions a warp pre-generates per stream
// refill. Pre-generation is safe because streams are pure functions of
// their own state — nothing in the simulation feeds back into them.
const warpBatch = 16

// Ready reports whether the warp can be issued at cycle now. Stalled
// (V=0), finished, barrier-blocked and memory-blocked warps are not
// ready.
func (w *Warp) Ready(now uint64) bool {
	return w.V && w.Issueable(now)
}

// Issueable reports whether the warp could issue at cycle now ignoring
// the throttle flag V. Schedulers that stall warps use this together
// with their own eligibility predicate (e.g. the barrier boost that
// lets a stalled warp run when its CTA is blocked at a barrier).
// A warp with in-flight fills may keep issuing (hit-under-miss) until
// its MLP budget is exhausted.
func (w *Warp) Issueable(now uint64) bool {
	return !w.Finished && !w.AtBarrier && w.Outstanding < w.maxPending() && w.NextReady <= now
}

// Runnable reports whether the warp could ever issue again regardless
// of throttling — used for progress/deadlock accounting.
func (w *Warp) Runnable() bool {
	return !w.Finished && !w.AtBarrier && w.Outstanding < w.maxPending()
}

func (w *Warp) maxPending() int {
	if w.MaxPending <= 0 {
		return 1
	}
	return w.MaxPending
}

// State renders the CIAO three-state for diagnostics: "active",
// "isolated" or "stalled".
func (w *Warp) State() string {
	switch {
	case !w.V:
		return "stalled"
	case w.I:
		return "isolated"
	default:
		return "active"
	}
}

// next returns a pointer to the warp's next instruction, honouring a
// structurally stalled retry first. The pointee lives in the warp's
// batch buffer and is valid until the instruction after it is handed
// out (the issue path consumes it within the same cycle).
func (w *Warp) next() (*workload.Instruction, bool) {
	if w.retryPending {
		w.retryPending = false
		return &w.buf[w.bufI-1], true
	}
	if w.bufI == w.bufN {
		n := w.stream.Fill(w.buf[:])
		if n == 0 {
			return nil, false
		}
		w.bufI, w.bufN = 0, uint8(n)
	}
	ins := &w.buf[w.bufI]
	w.bufI++
	return ins, true
}

// retry re-queues the instruction most recently handed out by next,
// after a structural hazard.
func (w *Warp) retry() {
	w.retryPending = true
	w.stallCount++
}

// drained reports that the warp has no instruction left anywhere:
// stream exhausted, batch buffer consumed, no retry pending.
func (w *Warp) drained() bool {
	return !w.retryPending && w.bufI == w.bufN && w.stream.Done()
}
