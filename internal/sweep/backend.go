package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// SegmentsDir is the sweep-directory subdirectory holding the
// immutable compacted segments and their manifest. Keeping blobs out
// of the sweep root means the manifest, the live tail and the
// coordinator journal stay the only loose files there.
const SegmentsDir = "segments"

// ErrReadOnlyBackend is returned by backends that can only be read
// (the HTTP backend a peer mirrors from).
var ErrReadOnlyBackend = errors.New("sweep: backend is read-only")

// Backend stores the immutable blobs of a tiered result store —
// compacted segments plus their segments.json manifest — under flat
// names. Get must return fs.ErrNotExist (wrapped is fine) for unknown
// names so callers can distinguish "not there" from I/O failure. Put
// must be atomic: a reader never observes a partial blob, and a crash
// mid-Put leaves either the old content or none. Implementations are
// safe for concurrent use.
type Backend interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
	List() ([]string, error)
	Delete(name string) error
}

// validBlobName rejects names that could escape the backend's flat
// namespace — path separators, traversal, hidden temp files. The
// check runs in every implementation (defence in depth: the HTTP
// handler validates too, but a backend must not rely on its caller).
func validBlobName(name string) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("sweep: invalid blob name %q", name)
	}
	if strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("sweep: invalid blob name %q (no path separators)", name)
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("sweep: invalid blob name %q (no dotfiles)", name)
	}
	return nil
}

// DirBackend is the local-filesystem Backend: one file per blob in a
// single directory. Put writes a temp file, fsyncs it, and renames it
// into place — the same commit discipline as the coordinator journal —
// so a kill at any instant leaves every named blob whole.
type DirBackend struct {
	dir string
}

// NewDirBackend returns a backend rooted at dir. The directory is
// created lazily on the first Put, so read-only use of a store that
// was never compacted touches nothing.
func NewDirBackend(dir string) *DirBackend { return &DirBackend{dir: dir} }

// Dir returns the backing directory.
func (b *DirBackend) Dir() string { return b.dir }

// Put atomically writes a blob.
func (b *DirBackend) Put(name string, data []byte) error {
	if err := validBlobName(name); err != nil {
		return err
	}
	if err := os.MkdirAll(b.dir, 0o755); err != nil {
		return fmt.Errorf("sweep: backend put %s: %w", name, err)
	}
	dst := filepath.Join(b.dir, name)
	tmp, err := os.CreateTemp(b.dir, "."+name+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: backend put %s: %w", name, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: backend put %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: backend put %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: backend put %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("sweep: backend put %s: %w", name, err)
	}
	return nil
}

// Get reads a blob whole; a missing blob is fs.ErrNotExist.
func (b *DirBackend) Get(name string) ([]byte, error) {
	if err := validBlobName(name); err != nil {
		return nil, err
	}
	return os.ReadFile(filepath.Join(b.dir, name))
}

// List returns every blob name in lexical order. A backend that was
// never written lists empty.
func (b *DirBackend) List() ([]string, error) {
	ents, err := os.ReadDir(b.dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || validBlobName(e.Name()) != nil {
			continue // skip leftover temp files and anything unnamable
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes a blob; deleting a missing blob is not an error.
func (b *DirBackend) Delete(name string) error {
	if err := validBlobName(name); err != nil {
		return err
	}
	err := os.Remove(filepath.Join(b.dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// HTTPBackend reads another server's segment blobs over its
// GET /sweeps/{id}/segments endpoints — the transport that lets a
// federation peer mirror (and later adopt) a sweep without a shared
// filesystem. It is read-only: segments are immutable, so the only
// writes that exist happen on the owner.
type HTTPBackend struct {
	base   string // .../sweeps/{id}/segments, no trailing slash
	client *http.Client
}

// NewHTTPBackend returns a backend reading from base (the owner's
// /sweeps/{id}/segments URL). client == nil uses a 10s-timeout
// default; segment blobs are small enough that a stuck transfer is a
// dead peer, not a big file.
func NewHTTPBackend(base string, client *http.Client) *HTTPBackend {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &HTTPBackend{base: strings.TrimRight(base, "/"), client: client}
}

// Get fetches one blob; a 404 surfaces as fs.ErrNotExist so segment
// loading treats an uncompacted remote store like an empty local one.
func (b *HTTPBackend) Get(name string) ([]byte, error) {
	if err := validBlobName(name); err != nil {
		return nil, err
	}
	resp, err := b.client.Get(b.base + "/" + name)
	if err != nil {
		return nil, fmt.Errorf("sweep: http backend get %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("sweep: http backend get %s: %w", name, fs.ErrNotExist)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sweep: http backend get %s: unexpected status %s", name, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSegmentBytes+1))
	if err != nil {
		return nil, fmt.Errorf("sweep: http backend get %s: %w", name, err)
	}
	if len(data) > maxSegmentBytes {
		return nil, fmt.Errorf("sweep: http backend get %s: blob exceeds %d bytes", name, maxSegmentBytes)
	}
	return data, nil
}

// List fetches the owner's blob name listing (a JSON string array).
func (b *HTTPBackend) List() ([]string, error) {
	resp, err := b.client.Get(b.base)
	if err != nil {
		return nil, fmt.Errorf("sweep: http backend list: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil // the sweep has no segments endpoint state yet
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sweep: http backend list: unexpected status %s", resp.Status)
	}
	var names []string
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&names); err != nil {
		return nil, fmt.Errorf("sweep: http backend list: %w", err)
	}
	return names, nil
}

// Put is unsupported: segments are written where the sweep runs.
func (b *HTTPBackend) Put(string, []byte) error { return ErrReadOnlyBackend }

// Delete is unsupported.
func (b *HTTPBackend) Delete(string) error { return ErrReadOnlyBackend }
