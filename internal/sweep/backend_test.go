package sweep

import (
	"bytes"
	"errors"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestDirBackendRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "segs")
	b := NewDirBackend(dir)

	// A never-written backend reads as empty, not as an error.
	if names, err := b.List(); err != nil || names != nil {
		t.Fatalf("List on a fresh backend = (%v, %v)", names, err)
	}
	if _, err := b.Get("seg-000001.ndjson"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get missing blob = %v, want fs.ErrNotExist", err)
	}

	if err := b.Put("seg-000002.ndjson", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("seg-000001.ndjson", []byte("one")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("seg-000001.ndjson")
	if err != nil || !bytes.Equal(got, []byte("one")) {
		t.Fatalf("Get = (%q, %v)", got, err)
	}
	// Put replaces atomically.
	if err := b.Put("seg-000001.ndjson", []byte("one'")); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Get("seg-000001.ndjson"); !bytes.Equal(got, []byte("one'")) {
		t.Fatalf("Get after overwrite = %q", got)
	}

	// List is lexically sorted and skips directories and leftover temp
	// files (dot-prefixed, like an interrupted Put's).
	os.Mkdir(filepath.Join(dir, "subdir"), 0o755)
	os.WriteFile(filepath.Join(dir, ".seg-000009.ndjson.tmp123"), []byte("junk"), 0o644)
	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"seg-000001.ndjson", "seg-000002.ndjson"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("List = %v, want %v", names, want)
	}

	if err := b.Delete("seg-000002.ndjson"); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("seg-000002.ndjson"); err != nil {
		t.Fatalf("Delete of a missing blob = %v, want nil", err)
	}
	if names, _ := b.List(); len(names) != 1 {
		t.Fatalf("List after delete = %v", names)
	}
}

func TestBlobNameValidation(t *testing.T) {
	bad := []string{"", ".", "..", "a/b", `a\b`, "../escape", ".hidden", "/abs"}
	dir := t.TempDir()
	b := NewDirBackend(dir)
	for _, name := range bad {
		if err := b.Put(name, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid name", name)
		}
		if _, err := b.Get(name); err == nil {
			t.Errorf("Get(%q) accepted an invalid name", name)
		}
		if err := b.Delete(name); err == nil {
			t.Errorf("Delete(%q) accepted an invalid name", name)
		}
	}
	// Nothing escaped the backend directory.
	if _, err := os.Stat(filepath.Join(dir, "..", "escape")); err == nil {
		t.Error("a traversal name created a file outside the backend")
	}
	if err := b.Put("seg-000001.ndjson.gz", []byte("x")); err != nil {
		t.Errorf("a legitimate segment name was rejected: %v", err)
	}
}

func TestHTTPBackend(t *testing.T) {
	blobs := map[string][]byte{
		"seg-000001.ndjson": []byte(`{"key":"k1"}` + "\n"),
		SegmentsFile:        []byte(`{"segments":[]}`),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /segments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, []string{"seg-000001.ndjson", SegmentsFile})
	})
	mux.HandleFunc("GET /segments/{name}", func(w http.ResponseWriter, r *http.Request) {
		data, ok := blobs[r.PathValue("name")]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(data)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	b := NewHTTPBackend(srv.URL+"/segments/", nil) // trailing slash is trimmed
	got, err := b.Get("seg-000001.ndjson")
	if err != nil || !bytes.Equal(got, blobs["seg-000001.ndjson"]) {
		t.Fatalf("Get = (%q, %v)", got, err)
	}
	if _, err := b.Get("seg-000404.ndjson"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get of a missing blob = %v, want fs.ErrNotExist", err)
	}
	if _, err := b.Get("../manifest.json"); err == nil {
		t.Fatal("Get accepted a traversal name")
	}
	names, err := b.List()
	if err != nil || len(names) != 2 {
		t.Fatalf("List = (%v, %v)", names, err)
	}
	if err := b.Put("x", nil); !errors.Is(err, ErrReadOnlyBackend) {
		t.Errorf("Put = %v, want ErrReadOnlyBackend", err)
	}
	if err := b.Delete("x"); !errors.Is(err, ErrReadOnlyBackend) {
		t.Errorf("Delete = %v, want ErrReadOnlyBackend", err)
	}

	// A store never compacted: the peer's listing 404s, which reads as
	// "no segments", not an error.
	empty := NewHTTPBackend(srv.URL+"/nothing-here", nil)
	if names, err := empty.List(); err != nil || names != nil {
		t.Fatalf("List against a 404 = (%v, %v), want empty", names, err)
	}
	if segs, err := loadSegmentList(empty); err != nil || segs != nil {
		t.Fatalf("loadSegmentList over HTTP 404 = (%v, %v), want empty", segs, err)
	}
}
