package sweep

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
)

// benchRecord builds a CellRecord with a payload shaped like a real
// harness result, so append/read costs reflect production line sizes.
func benchRecord(i int) CellRecord {
	payload, _ := json.Marshal(map[string]any{
		"bench": "SYRK", "sched": "GTO", "ipc": 1.8342,
		"l1_miss": 0.2213, "dram_bw": 0.4871, "cycles": 1828413 + i,
	})
	return CellRecord{
		Key:    fmt.Sprintf("SYRK|GTO|%d", i),
		Status: StatusOK,
		Result: payload,
	}
}

// BenchmarkStoreAppend measures the hot write path: one NDJSON line
// appended, deduped, and broadcast (with no subscribers attached).
func BenchmarkStoreAppend(b *testing.B) {
	st, err := Create(filepath.Join(b.TempDir(), "s"), "bench", testSpec(), b.N)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	rec := benchRecord(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Key = fmt.Sprintf("SYRK|GTO|%d", i)
		if err := st.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentRead measures a full ReadRecords over a compacted
// store — the recovery/merge read path — for plain and gzip segments.
func BenchmarkSegmentRead(b *testing.B) {
	const records = 4096
	for _, gz := range []bool{false, true} {
		name := "plain"
		if gz {
			name = "gzip"
		}
		b.Run(name, func(b *testing.B) {
			dir := filepath.Join(b.TempDir(), "s")
			st, err := Create(dir, "bench", testSpec(), records)
			if err != nil {
				b.Fatal(err)
			}
			st.SetOptions(StoreOptions{GzipSegments: gz})
			for i := 0; i < records; i++ {
				if err := st.Append(benchRecord(i)); err != nil {
					b.Fatal(err)
				}
			}
			if _, ok, err := st.Compact(); err != nil || !ok {
				b.Fatalf("Compact = (%v, %v)", ok, err)
			}
			st.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, corrupt, err := ReadRecords(dir)
				if err != nil || corrupt != 0 || len(recs) != records {
					b.Fatalf("ReadRecords = (%d recs, %d corrupt, %v)", len(recs), corrupt, err)
				}
			}
		})
	}
}
