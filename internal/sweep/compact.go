package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// Compact freezes the live tail's settled prefix into a new immutable
// segment, leaving a short tail behind. It is safe at any moment of a
// running sweep (appends serialise against it) and idempotent — a
// tail with nothing settled at its head compacts to nothing. The
// logical result stream (segments then tail) is byte-identical before
// and after, so concurrent followers and ReadRecords never observe
// the rewrite.
//
// Write protocol, ordered so a kill at any instant is recoverable by
// load:
//
//  1. the prefix bytes are written (optionally gzip'd) as a new
//     segment blob — an orphan blob if we die here, overwritten by the
//     next compaction;
//  2. the remaining tail is staged to results.ndjson.tmp (fsync'd) —
//     deleted by load if we die here;
//  3. segments.json is atomically replaced naming the new segment —
//     THE commit point;
//  4. the staged tail renames over results.ndjson and the append
//     handle reopens — if we die between 3 and 4, load detects the
//     tail still starts with the committed segment's bytes and
//     finishes the swap.
//
// It reports whether a segment was written and, if so, which.
func (s *Store) Compact() (SegmentInfo, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() (SegmentInfo, bool, error) {
	tail, err := os.ReadFile(s.tailPath())
	if errors.Is(err, fs.ErrNotExist) {
		return SegmentInfo{}, false, nil
	}
	if err != nil {
		return SegmentInfo{}, false, fmt.Errorf("sweep: compact: %w", err)
	}
	prefix, nrecs := s.settledPrefixLocked(tail)
	if nrecs == 0 {
		return SegmentInfo{}, false, nil
	}
	seg := SegmentInfo{
		Name:    segmentName(len(s.segs)+1, s.opts.GzipSegments),
		Records: nrecs,
		Bytes:   int64(prefix),
		Gzip:    s.opts.GzipSegments,
	}
	blob, err := encodeSegment(tail[:prefix], seg.Gzip)
	if err != nil {
		return SegmentInfo{}, false, fmt.Errorf("sweep: compact: %w", err)
	}
	if err := s.backend.Put(seg.Name, blob); err != nil {
		return SegmentInfo{}, false, fmt.Errorf("sweep: compact: %w", err)
	}
	rest := tail[prefix:]
	tmp := s.tailPath() + ".tmp"
	if err := stageFileSync(tmp, rest); err != nil {
		return SegmentInfo{}, false, fmt.Errorf("sweep: compact: stage tail: %w", err)
	}
	newSegs := append(append([]SegmentInfo(nil), s.segs...), seg)
	if err := commitSegmentList(s.backend, newSegs); err != nil {
		os.Remove(tmp)
		return SegmentInfo{}, false, err
	}
	// Commit point passed: the segment exists. Finish the tail swap and
	// move the append handle onto the new inode — the old handle points
	// at the replaced file and must not receive another write. A closed
	// store (compacting a finished sweep) has no handle to move.
	if err := os.Rename(tmp, s.tailPath()); err != nil {
		return SegmentInfo{}, false, fmt.Errorf("sweep: compact: swap tail: %w", err)
	}
	if s.f != nil {
		nf, err := os.OpenFile(s.tailPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return SegmentInfo{}, false, fmt.Errorf("sweep: compact: reopen tail: %w", err)
		}
		s.f.Close()
		s.f = nf
	}

	s.segs = newSegs
	s.segBytes += seg.Bytes
	s.tailLen = int64(len(rest))
	s.tailRecs -= nrecs
	if s.tailRecs < 0 {
		s.tailRecs = 0
	}
	if s.counters != nil {
		s.counters.Compactions.Inc()
		s.counters.SegmentsWritten.Inc()
		s.counters.SegmentBytes.Add(uint64(prefix))
	}
	return seg, true, nil
}

// settledPrefixLocked measures the longest tail prefix of complete,
// parseable, settled lines — records whose cell has a stored success.
// That freezes both the "ok" lines themselves and the failed attempts
// of cells that later succeeded (their bytes are final history), while
// a failed-only cell's line halts the prefix: the cell will re-run and
// append again, and rewriting means the line is not final yet. Torn or
// corrupt lines halt it too — segments hold only clean records.
// Callers hold s.mu.
func (s *Store) settledPrefixLocked(tail []byte) (prefix, nrecs int) {
	off := 0
	for off < len(tail) {
		nl := bytes.IndexByte(tail[off:], '\n')
		if nl < 0 {
			break
		}
		line := tail[off : off+nl]
		var rec CellRecord
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" {
			break
		}
		if _, settled := s.done[rec.Key]; !settled {
			break
		}
		off += nl + 1
		nrecs++
	}
	return off, nrecs
}

// stageFileSync writes data to exactly path (no rename — the caller
// renames later; the name is the protocol) and fsyncs it.
func stageFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
