package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// okRec builds a minimal successful record for store tests.
func okRec(key string, ipc float64) CellRecord {
	return CellRecord{Key: key, Bench: "SYRK", Sched: "GTO", Status: StatusOK, IPC: ipc,
		Result: json.RawMessage(fmt.Sprintf(`{"ipc":%g}`, ipc))}
}

// streamBytes snapshots the store's full logical result stream.
func streamBytes(t *testing.T, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.CopyRange(&buf, 0, st.LogicalSize()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCompactByteIdentity is the tentpole invariant: freezing the
// settled prefix into a segment must not change a single byte of the
// logical stream, nor any record ReadRecords returns, gzip'd or not.
func TestCompactByteIdentity(t *testing.T) {
	for _, gz := range []bool{false, true} {
		t.Run(fmt.Sprintf("gzip=%v", gz), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "s")
			st, err := Create(dir, "id", testSpec(), 4)
			if err != nil {
				t.Fatal(err)
			}
			st.SetOptions(StoreOptions{GzipSegments: gz})
			// failed-then-ok for k2: the failure line is settled history
			// once the success lands, so both lines freeze.
			for _, rec := range []CellRecord{
				okRec("k1", 1.5),
				{Key: "k2", Status: StatusFailed, Error: "boom"},
				okRec("k2", 2.5),
				okRec("k3", 3.5),
			} {
				if err := st.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			before := streamBytes(t, st)
			recsBefore, corrupt, err := ReadRecords(dir)
			if err != nil || corrupt != 0 {
				t.Fatalf("ReadRecords before = (%d corrupt, %v)", corrupt, err)
			}

			seg, compacted, err := st.Compact()
			if err != nil || !compacted {
				t.Fatalf("Compact = (%v, %v)", compacted, err)
			}
			if seg.Records != 4 || seg.Bytes != int64(len(before)) || seg.Gzip != gz {
				t.Fatalf("segment = %+v, want all 4 records (%d bytes)", seg, len(before))
			}
			if got := streamBytes(t, st); !bytes.Equal(got, before) {
				t.Error("logical stream changed across compaction")
			}
			if st.LogicalSize() != int64(len(before)) {
				t.Errorf("LogicalSize = %d, want %d", st.LogicalSize(), len(before))
			}
			recsAfter, corrupt, err := ReadRecords(dir)
			if err != nil || corrupt != 0 {
				t.Fatalf("ReadRecords after = (%d corrupt, %v)", corrupt, err)
			}
			if !reflect.DeepEqual(recsAfter, recsBefore) {
				t.Error("ReadRecords changed across compaction")
			}

			// The store stays appendable; a reopened store agrees on
			// everything and sees the segment.
			if err := st.Append(okRec("k4", 4.5)); err != nil {
				t.Fatal(err)
			}
			st.Close()
			re, err := Open(dir, testSpec())
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			done := re.Completed()
			if len(done) != 4 || done["k2"] != 2.5 || done["k4"] != 4.5 {
				t.Errorf("completed after reopen = %v", done)
			}
			if segs := re.Segments(); len(segs) != 1 || segs[0] != seg {
				t.Errorf("reopened segments = %+v, want [%+v]", segs, seg)
			}
		})
	}
}

// TestCompactSettledPrefixStopsAtUnsettledCell: a failed-only cell's
// line is not final (the cell will re-run and append again), so it
// halts the frozen prefix even when settled lines follow it.
func TestCompactSettledPrefixStopsAtUnsettledCell(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	st, err := Create(dir, "id", testSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, rec := range []CellRecord{
		okRec("k1", 1),
		{Key: "k2", Status: StatusFailed, Error: "boom"},
		okRec("k3", 3),
	} {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	seg, compacted, err := st.Compact()
	if err != nil || !compacted {
		t.Fatalf("Compact = (%v, %v)", compacted, err)
	}
	if seg.Records != 1 {
		t.Fatalf("segment froze %d records, want only k1 (k2 is unsettled)", seg.Records)
	}

	// Once k2 succeeds, its old failure line becomes settled history and
	// the whole remaining tail freezes.
	if err := st.Append(okRec("k2", 2)); err != nil {
		t.Fatal(err)
	}
	seg2, compacted, err := st.Compact()
	if err != nil || !compacted {
		t.Fatalf("second Compact = (%v, %v)", compacted, err)
	}
	if seg2.Records != 3 {
		t.Fatalf("second segment froze %d records, want the remaining 3", seg2.Records)
	}
	recs, corrupt, err := ReadRecords(dir)
	if err != nil || corrupt != 0 || len(recs) != 4 {
		t.Fatalf("ReadRecords = (%d recs, %d corrupt, %v), want all 4", len(recs), corrupt, err)
	}
	done := st.Completed()
	if len(done) != 3 || done["k2"] != 2 {
		t.Errorf("completed = %v", done)
	}
}

// TestCompactNoopCases: nothing settled at the tail's head — or no
// tail at all — compacts to nothing, and compaction is idempotent.
func TestCompactNoopCases(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	st, err := Create(dir, "id", testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, compacted, err := st.Compact(); err != nil || compacted {
		t.Fatalf("compacting an empty store = (%v, %v), want a no-op", compacted, err)
	}
	if err := st.Append(CellRecord{Key: "k1", Status: StatusFailed, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	if _, compacted, err := st.Compact(); err != nil || compacted {
		t.Fatalf("compacting a failed-only tail = (%v, %v), want a no-op", compacted, err)
	}
	if err := st.Append(okRec("k1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, compacted, err := st.Compact(); err != nil || !compacted {
		t.Fatalf("Compact = (%v, %v)", compacted, err)
	}
	// Immediately re-compacting an empty tail is a no-op, not segment 2.
	if _, compacted, err := st.Compact(); err != nil || compacted {
		t.Fatalf("re-Compact = (%v, %v), want a no-op", compacted, err)
	}
	if segs := st.Segments(); len(segs) != 1 {
		t.Errorf("segments = %+v, want exactly 1", segs)
	}
}

// TestCompactClosedStore: operators compact finished sweeps (POST
// /sweeps/{id}/compact after the run closed the store), so Compact
// must work without a live append handle.
func TestCompactClosedStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	st, err := Create(dir, "id", testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	st.Append(okRec("k1", 1))
	st.Append(okRec("k2", 2))
	before := streamBytes(t, st)
	st.Close()

	if _, compacted, err := st.Compact(); err != nil || !compacted {
		t.Fatalf("Compact on a closed store = (%v, %v)", compacted, err)
	}
	if got := streamBytes(t, st); !bytes.Equal(got, before) {
		t.Error("closed-store compaction changed the stream")
	}
	recs, corrupt, err := ReadRecords(dir)
	if err != nil || corrupt != 0 || len(recs) != 2 {
		t.Fatalf("ReadRecords = (%d recs, %d corrupt, %v)", len(recs), corrupt, err)
	}
}

// TestAutoCompactThreshold: with CompactAfter set, Append itself
// freezes the tail every time it accumulates that many records.
func TestAutoCompactThreshold(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	st, err := Create(dir, "id", testSpec(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetOptions(StoreOptions{CompactAfter: 4})
	for i := 0; i < 8; i++ {
		if err := st.Append(okRec(fmt.Sprintf("k%d", i), 1)); err != nil {
			t.Fatal(err)
		}
		want := (i + 1) / 4
		if got := len(st.Segments()); got != want {
			t.Fatalf("after %d appends: %d segments, want %d", i+1, got, want)
		}
	}
	for i, seg := range st.Segments() {
		if seg.Records != 4 {
			t.Errorf("segment %d holds %d records, want 4", i, seg.Records)
		}
	}
	recs, corrupt, err := ReadRecords(dir)
	if err != nil || corrupt != 0 || len(recs) != 8 {
		t.Fatalf("ReadRecords = (%d recs, %d corrupt, %v)", len(recs), corrupt, err)
	}
}

// TestOpenRepairsInterruptedCompaction reconstructs the two on-disk
// states a kill mid-compaction leaves behind (see Compact's write
// protocol) and checks that both reopening and the read-only
// ReadRecords see exactly the records of the uninterrupted store — no
// duplicates, no losses.
func TestOpenRepairsInterruptedCompaction(t *testing.T) {
	build := func(t *testing.T) (dir string, want []CellRecord) {
		dir = filepath.Join(t.TempDir(), "s")
		st, err := Create(dir, "id", testSpec(), 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := st.Append(okRec(fmt.Sprintf("k%d", i), float64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if _, compacted, err := st.Compact(); err != nil || !compacted {
			t.Fatalf("Compact = (%v, %v)", compacted, err)
		}
		// Two live-tail records after the compaction.
		st.Append(okRec("k4", 4))
		st.Append(okRec("k5", 5))
		st.Close()
		want, corrupt, err := ReadRecords(dir)
		if err != nil || corrupt != 0 || len(want) != 6 {
			t.Fatalf("fixture ReadRecords = (%d recs, %d corrupt, %v)", len(want), corrupt, err)
		}
		return dir, want
	}
	check := func(t *testing.T, dir string, want []CellRecord) {
		t.Helper()
		recs, corrupt, err := ReadRecords(dir)
		if err != nil || corrupt != 0 {
			t.Fatalf("ReadRecords = (%d corrupt, %v)", corrupt, err)
		}
		if !reflect.DeepEqual(recs, want) {
			t.Errorf("records diverged: got %d, want %d", len(recs), len(want))
		}
		re, err := Open(dir, testSpec())
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if done := re.Completed(); len(done) != 6 {
			t.Errorf("completed after repair = %v, want 6 cells", done)
		}
		// The store must stay appendable and consistent after the repair.
		if err := re.Append(okRec("k9", 9)); err != nil {
			t.Fatal(err)
		}
		recs, corrupt, err = ReadRecords(dir)
		if err != nil || corrupt != 0 || len(recs) != len(want)+1 {
			t.Fatalf("post-repair append: ReadRecords = (%d recs, %d corrupt, %v)", len(recs), corrupt, err)
		}
	}

	t.Run("pre-commit: stale staged tail", func(t *testing.T) {
		dir, want := build(t)
		// The compaction died after staging results.ndjson.tmp but before
		// committing segments.json: the stale temp must be swept, the real
		// tail left alone.
		if err := os.WriteFile(filepath.Join(dir, ResultsFile+".tmp"), []byte("half-staged"), 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, dir, want)
		if _, err := os.Stat(filepath.Join(dir, ResultsFile+".tmp")); !os.IsNotExist(err) {
			t.Error("stale staged tail survived reopening")
		}
	})

	t.Run("post-commit: tail swap unfinished", func(t *testing.T) {
		dir, want := build(t)
		// The compaction committed segments.json but died before renaming
		// the staged tail over results.ndjson: the tail still starts with
		// the frozen segment's bytes. Reconstruct that state by prepending
		// the segment's uncompressed content back onto the tail.
		b := NewDirBackend(filepath.Join(dir, SegmentsDir))
		segs, err := loadSegmentList(b)
		if err != nil || len(segs) != 1 {
			t.Fatalf("segment list = (%v, %v)", segs, err)
		}
		segData, err := readSegment(b, segs[0])
		if err != nil {
			t.Fatal(err)
		}
		tail, err := os.ReadFile(filepath.Join(dir, ResultsFile))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ResultsFile), append(segData, tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, dir, want)
		// Reopening finished the swap: the tail holds only post-segment
		// bytes again (plus the record check appended).
		fixed, err := os.ReadFile(filepath.Join(dir, ResultsFile))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.HasPrefix(fixed, segData) {
			t.Error("reopening left the frozen prefix in the tail")
		}
	})
}

// TestMergeStoreFromSegmentedSource: a compacted shard store merges
// exactly like a flat one — ReadRecords walks segments then tail.
func TestMergeStoreFromSegmentedSource(t *testing.T) {
	base := t.TempDir()
	spec := testSpec()
	src, err := Create(filepath.Join(base, "src"), "src", spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	src.SetOptions(StoreOptions{GzipSegments: true})
	src.Append(okRec("k1", 1))
	src.Append(okRec("k2", 2))
	if _, compacted, err := src.Compact(); err != nil || !compacted {
		t.Fatalf("Compact = (%v, %v)", compacted, err)
	}
	src.Append(okRec("k3", 3))
	src.Close()

	dst, err := Create(filepath.Join(base, "dst"), "dst", spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	merged, skipped, err := MergeStore(dst, filepath.Join(base, "src"))
	if err != nil || merged != 3 || skipped != 0 {
		t.Fatalf("MergeStore = (%d, %d, %v), want all 3 records", merged, skipped, err)
	}
	done := dst.Completed()
	if len(done) != 3 || done["k1"] != 1 || done["k3"] != 3 {
		t.Errorf("merged completed = %v", done)
	}
}
