package sweep

import (
	"encoding/json"
	"os"
	"testing"
)

func TestExampleTaggedSpecExpands(t *testing.T) {
	b, err := os.ReadFile("../../examples/sweep-tagged.json")
	if err != nil {
		t.Fatal(err)
	}
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	cells, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, c := range cells {
		if len(c.Requires) > 0 {
			n++
		}
	}
	t.Logf("%d cells, %d constrained", len(cells), n)
	if len(cells) != 8 || n != 4 {
		t.Fatalf("cells=%d constrained=%d, want 8/4", len(cells), n)
	}
}

func TestExampleSyntheticHalvingSpecExpands(t *testing.T) {
	b, err := os.ReadFile("../../examples/sweep-synthetic-halving.json")
	if err != nil {
		t.Fatal(err)
	}
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	// Expand on a search spec yields its round-0 grid: 3 pow2 MSHR
	// sizes × 3 log-spaced cutoffs × 2 synthetic benches × 1 scheduler.
	cells, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 18 {
		t.Fatalf("round-0 cells = %d, want 18", len(cells))
	}
	for _, c := range cells {
		if c.Spec.Config == nil {
			t.Fatalf("cell %s/%s has no config override", c.Bench, c.Config)
		}
	}
}
