package sweep

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const sweepBody = `{
	"name": "http",
	"axes": {
		"schedulers": ["GTO", "CCWS"],
		"benchmarks": ["SYRK", "ATAX"],
		"configs": [{"name": "base"}, {"name": "l1-32k", "l1_size_kb": 32}]
	},
	"options": {"instr_per_warp": 100}
}`

func postSweep(t *testing.T, url, body string) Status {
	t.Helper()
	resp, err := http.Post(url+"/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweeps: %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, url, id string) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateRunning {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("sweep did not finish")
	return Status{}
}

func TestSweepHTTPLifecycle(t *testing.T) {
	mgr := NewManager(fakeEngine(0), t.TempDir(), 0)
	srv := httptest.NewServer(mgr.Handler())
	defer srv.Close()

	st := postSweep(t, srv.URL, sweepBody)
	if st.ID == "" || st.Total != 8 {
		t.Fatalf("status = %+v", st)
	}
	final := waitDone(t, srv.URL, st.ID)
	if final.State != StateDone || final.Done != 8 || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}
	if final.GeoMeanIPC < 1.99 || final.GeoMeanIPC > 2.01 {
		t.Errorf("geomean = %f", final.GeoMeanIPC)
	}

	// The results endpoint streams one NDJSON record per cell.
	resp, err := http.Get(srv.URL + "/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec CellRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if rec.Status != StatusOK || rec.Key == "" {
			t.Errorf("record = %+v", rec)
		}
		lines++
	}
	if lines != 8 {
		t.Errorf("streamed %d records, want 8", lines)
	}

	// Listing and metrics reflect the run.
	lresp, err := http.Get(srv.URL + "/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	var list []Status
	json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list = %+v", list)
	}
	m := mgr.MetricsSnapshot()
	if m["cells_done"] != uint64(8) || m["started"] != uint64(1) {
		t.Errorf("metrics = %v", m)
	}

	// Unknown IDs 404.
	nresp, err := http.Get(srv.URL + "/sweeps/nope")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep: %d", nresp.StatusCode)
	}
}

func TestSweepHTTPCancel(t *testing.T) {
	// 20ms per cell × 42 cells, parallelism 1: the DELETE lands mid-run.
	mgr := NewManager(fakeEngine(20*time.Millisecond), t.TempDir(), 1)
	srv := httptest.NewServer(mgr.Handler())
	defer srv.Close()

	st := postSweep(t, srv.URL, `{"name":"cancel","axes":{"schedulers":["GTO","CCWS"],"classes":["LWS","SWS","CI"]}}`)
	if st.Total != 42 {
		t.Fatalf("total = %d, want 42", st.Total)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/sweeps/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	if got.State != StateCancelled && got.State != StateDone {
		t.Errorf("state after cancel = %q", got.State)
	}
	if got.State == StateCancelled && got.Done == 42 {
		t.Error("cancelled sweep claims full completion")
	}
}

func TestSweepHTTPRepostResumes(t *testing.T) {
	dir := t.TempDir()
	mgr := NewManager(fakeEngine(10*time.Millisecond), dir, 1)
	srv := httptest.NewServer(mgr.Handler())
	defer srv.Close()

	body := `{"name":"repost","axes":{"schedulers":["GTO","CCWS"],"benchmarks":["SYRK","ATAX","BICG","KMN"]}}`
	st := postSweep(t, srv.URL, body)

	// While running, an identical POST is idempotent.
	again := postSweep(t, srv.URL, body)
	if again.ID != st.ID {
		t.Errorf("concurrent identical POST started %q, want the running %q", again.ID, st.ID)
	}

	// Cancel mid-run, then re-POST: the new run must resume the same
	// store and only execute the remainder.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/sweeps/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	cancelled := waitDone(t, srv.URL, st.ID)

	re := postSweep(t, srv.URL, body)
	if re.ID == st.ID {
		t.Fatal("re-POST after cancel returned the dead run")
	}
	if re.Dir != cancelled.Dir {
		t.Errorf("re-POST dir = %q, want the original store %q", re.Dir, cancelled.Dir)
	}
	final := waitDone(t, srv.URL, re.ID)
	if final.State != StateDone || final.Done != 8 {
		t.Fatalf("resumed run = %+v", final)
	}
	if cancelled.State == StateCancelled && final.Skipped != cancelled.Done {
		t.Errorf("resumed run skipped %d cells, want the %d already done", final.Skipped, cancelled.Done)
	}
}

func TestSweepHTTPBadSpec(t *testing.T) {
	mgr := NewManager(fakeEngine(0), t.TempDir(), 0)
	srv := httptest.NewServer(mgr.Handler())
	defer srv.Close()
	for _, body := range []string{
		`{`,
		`{"name":"x","axes":{"schedulers":["nope"]}}`,
		`{"name":"x","unknown_field":1}`,
	} {
		resp, err := http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}
