package sweep

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/httpx"
	"repro/internal/metrics"
	"repro/internal/service"
)

// Manager owns the sweeps of a long-lived server: it starts them
// against a shared engine, tracks their progress, persists their
// results under a base directory, and serves the /sweeps HTTP API.
type Manager struct {
	engine      *service.Engine
	dir         string
	parallelism int
	dist        Distributor

	mu       sync.Mutex
	runs     map[string]*Run
	order    []string
	active   map[string]*Run     // spec key → currently running sweep
	starting map[string]struct{} // spec keys between reservation and launch
	maxRuns  int
	seq      uint64

	counters      metrics.SweepCounters
	storeCounters metrics.StoreCounters // tiered-store metrics, shared by every store
	storeOpts     StoreOptions          // applied to every store this manager opens
	red           *metrics.RED          // per-sweep cell RED series, nil = disabled
}

// NewManager builds a manager persisting sweeps under dir.
// parallelism bounds concurrently submitted cells per sweep (0 = the
// runner default).
func NewManager(e *service.Engine, dir string, parallelism int) *Manager {
	return &Manager{
		engine:      e,
		dir:         dir,
		parallelism: parallelism,
		runs:        map[string]*Run{},
		active:      map[string]*Run{},
		starting:    map[string]struct{}{},
		maxRuns:     256,
	}
}

// Distributor runs a sweep's cells on remote workers instead of the
// local engine — implemented by the coordinator hub (internal/coord),
// which leases shards to worker processes and merges their uploads
// into the store. The interface lives here so sweep does not import
// coord. onProgress deliveries must be ordered (invoked under the
// distributor's lock), matching Runner.OnProgress semantics.
type Distributor interface {
	Distribute(id string, spec Spec, cells []Cell, store *Store, onProgress func(Progress)) (DistributedRun, error)
}

// DistributedRun is a handle on one distributed sweep execution.
type DistributedRun interface {
	// Done is closed when the run reaches a terminal state.
	Done() <-chan struct{}
	// Progress snapshots the run.
	Progress() Progress
	// Cancel stops the run: pending shards are dropped and in-flight
	// leases answer stale.
	Cancel()
}

// SetDistributor installs the coordinator hub that executes sweeps
// whose spec sets "distributed": true. Call before serving requests.
func (m *Manager) SetDistributor(d Distributor) { m.dist = d }

// SetRED installs a registry for per-sweep cell RED series: every
// record a sweep's store accepts — local runner results and
// coordinator merges alike — is observed into a series labeled by the
// sweep id, with the cell's elapsed time as the duration. Call before
// serving requests.
func (m *Manager) SetRED(r *metrics.RED) { m.red = r }

// SetStoreOptions sets the durability/compaction tuning applied to
// every store the manager opens from now on (started, recovered,
// adopted). Call before serving requests.
func (m *Manager) SetStoreOptions(o StoreOptions) { m.storeOpts = o }

// observeStore hooks a sweep's store into the manager's observability
// and applies the configured store options — the single adoption
// point shared by Start, Recover and Adopt.
func (m *Manager) observeStore(id string, store *Store) {
	store.SetOptions(m.storeOpts)
	store.SetCounters(&m.storeCounters)
	if m.red == nil {
		return
	}
	s := m.red.Series(id)
	store.SetObserver(func(rec CellRecord) {
		s.Observe(time.Duration(rec.Elapsed)*time.Millisecond, rec.Status == StatusFailed)
	})
}

// Recoverer is the optional Distributor extension for crash-safe
// coordinators. NeedsRecovery cheaply reports whether a sweep
// directory holds an unfinished coordinator journal — the gate that
// keeps startup from re-opening (and re-parsing) the store of every
// finished sweep ever run. Recover then rebuilds the in-flight run
// for one such directory (store + co-located journal) and resumes
// serving it under its original id; run == nil with a nil error means
// the directory needed no recovery after all.
type Recoverer interface {
	NeedsRecovery(dir string) (bool, error)
	Recover(spec Spec, cells []Cell, store *Store, onProgress func(Progress)) (run DistributedRun, id string, err error)
}

// Adopter is the Distributor extension for federation: taking over a
// sweep that a *different* server owns, once that server is known
// dead. Orphaned probes one sweep directory — the journaled owner and
// whether the sweep is unfinished — without opening the store; Adopt
// then rebuilds and serves the sweep here regardless of the journaled
// owner, re-stamping the journal so the old owner's restart defers to
// this server. The liveness judgement stays with the caller (operator
// or peer watcher); the manager only supplies the mechanics.
type Adopter interface {
	Orphaned(dir string) (owner string, orphaned bool, err error)
	Adopt(spec Spec, cells []Cell, store *Store, onProgress func(Progress)) (run DistributedRun, id string, err error)
}

// Run is one managed sweep execution.
type Run struct {
	id      string
	spec    Spec
	store   *Store
	created time.Time
	cancel  context.CancelFunc
	done    chan struct{}

	mu   sync.Mutex
	prog Progress
}

// ID returns the sweep identifier.
func (r *Run) ID() string { return r.id }

// Progress snapshots the run.
func (r *Run) Progress() Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.prog
}

// Done is closed when the run finishes (any terminal state).
func (r *Run) Done() <-chan struct{} { return r.done }

// Status is the JSON view of a managed sweep.
type Status struct {
	ID          string    `json:"id"`
	Name        string    `json:"name"`
	Dir         string    `json:"dir"`
	Created     time.Time `json:"created"`
	Distributed bool      `json:"distributed,omitempty"`
	Progress
}

// Status snapshots the run for serving.
func (r *Run) Status() Status {
	return Status{
		ID:          r.id,
		Name:        r.spec.Name,
		Dir:         r.store.Dir(),
		Created:     r.created,
		Distributed: r.spec.Distributed,
		Progress:    r.Progress(),
	}
}

// Start expands the spec, opens (or resumes) its store under the base
// directory, and launches the sweep asynchronously. The store
// directory is keyed by the spec's content address, so re-POSTing a
// spec whose earlier run was killed or cancelled resumes it (only the
// missing cells execute), and POSTing a spec that is already running
// returns the in-flight run instead of double-writing its store.
func (m *Manager) Start(spec Spec) (*Run, error) {
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if spec.Distributed && m.dist == nil {
		return nil, fmt.Errorf("sweep: spec %q requests a distributed run but no coordinator is mounted", spec.Name)
	}
	key := spec.Key()

	// Reserve the spec key before any store I/O, so two concurrent
	// POSTs of the same spec cannot both open the store and run every
	// cell twice: the first wins, the second sees the reservation.
	m.mu.Lock()
	if run, ok := m.active[key]; ok {
		m.mu.Unlock()
		return run, nil
	}
	if _, ok := m.starting[key]; ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("sweep %q is already starting; retry shortly", spec.Name)
	}
	m.starting[key] = struct{}{}
	m.seq++
	id := fmt.Sprintf("sweep-%d-%s", m.seq, key[:12])
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.starting, key)
		m.mu.Unlock()
	}()

	dir := filepath.Join(m.dir, "sweep-"+key[:16])
	store, err := Create(dir, id, spec, len(cells))
	if err != nil {
		// The directory already holds this sweep (an earlier run, or a
		// run from before a server restart): resume it. The manifest
		// pins the spec, so a key collision cannot mix sweeps. If the
		// resume fails too, both causes matter — the Open error is the
		// actionable one, so it is the wrapped error.
		var openErr error
		store, openErr = Open(dir, spec)
		if openErr != nil {
			return nil, fmt.Errorf("sweep: start %q: create failed (%v); resume failed: %w", spec.Name, err, openErr)
		}
	}

	m.observeStore(id, store)
	ctx, cancel := context.WithCancel(context.Background())
	run := &Run{
		id:      id,
		spec:    spec,
		store:   store,
		created: time.Now().UTC(),
		cancel:  cancel,
		done:    make(chan struct{}),
		prog:    Progress{State: StateRunning, Total: len(cells)},
	}
	m.mu.Lock()
	m.runs[id] = run
	m.order = append(m.order, id)
	m.active[key] = run
	m.pruneRunsLocked()
	m.mu.Unlock()
	m.counters.Started.Inc()

	go func() {
		defer close(run.done)
		defer store.Close()
		defer func() {
			m.mu.Lock()
			delete(m.active, key)
			m.mu.Unlock()
		}()
		var final Progress
		var err error
		switch {
		case spec.Search != nil:
			// Searches — local or distributed — run the round loop; the
			// round runner picks the execution path per round.
			final, err = RunSearch(ctx, spec, store, m.searchRoundRunner(run, spec, store))
		case spec.Distributed:
			final, err = m.runDistributed(ctx, run, spec, cells, store)
		default:
			runner := &Runner{
				Engine:      m.engine,
				Store:       store,
				Parallelism: m.parallelism,
				OnProgress:  m.progressSink(run),
			}
			final, err = runner.Run(ctx, cells)
		}
		if err != nil && final.Error == "" {
			final.Error = err.Error()
		}
		run.mu.Lock()
		run.prog = final
		run.mu.Unlock()
	}()
	return run, nil
}

// progressSink builds the ordered progress observer shared by local
// and distributed runs: it differences successive snapshots into the
// manager-wide counters and mirrors the latest snapshot on the run.
// The counters accumulate *events*, not final states: a cell that
// fails, is re-assigned and then succeeds counts once in CellsFailed
// and once in CellsDone (the coordinator's Progress.Failed decrement
// is deliberately not mirrored — monotonic counters cannot go down).
func (m *Manager) progressSink(run *Run) func(Progress) {
	var last Progress
	return func(p Progress) {
		// Deliveries are ordered (see Runner.OnProgress), so the
		// positive deltas below are meaningful; negative ones (a
		// failed-then-ok re-assignment) are skipped by the > 0 guards.
		okCells := (p.Done - p.Skipped) - (last.Done - last.Skipped)
		if okCells > 0 {
			m.counters.CellsDone.Add(uint64(okCells))
		}
		if d := p.Failed - last.Failed; d > 0 {
			m.counters.CellsFailed.Add(uint64(d))
		}
		last = p
		run.mu.Lock()
		run.prog = p
		run.mu.Unlock()
	}
}

// runDistributed hands the sweep to the coordinator hub and waits for
// it to finish (or for the run to be cancelled).
func (m *Manager) runDistributed(ctx context.Context, run *Run, spec Spec, cells []Cell, store *Store) (Progress, error) {
	d, err := m.dist.Distribute(run.id, spec, cells, store, m.progressSink(run))
	if err != nil {
		return Progress{State: StateFailed, Total: len(cells)}, err
	}
	return m.waitDistributed(ctx, d)
}

// searchRoundRunner builds the RoundRunner a managed halving search
// executes its rounds through: the in-process Runner normally, or one
// coordinator round over the round's self-contained plain spec when
// the search spec says distributed. Each distributed round registers
// under its own "<base>.r<round>.<attempt>" id — the hub's
// register/unregister lifecycle is strictly one id per coordinator, so
// rounds must not reuse the base sweep id.
func (m *Manager) searchRoundRunner(run *Run, spec Spec, store *Store) RoundRunner {
	sink := m.progressSink(run)
	attempt := 0
	return func(ctx context.Context, plan *SearchPlan) (Progress, error) {
		if !spec.Distributed {
			runner := &Runner{
				Engine:      m.engine,
				Store:       store,
				Parallelism: m.parallelism,
				OnProgress:  plan.Decorate(sink),
			}
			return runner.Run(ctx, plan.NewCells)
		}
		attempt++
		id := fmt.Sprintf("%s.r%d.%d", baseSearchID(run.ID()), plan.Round, attempt)
		d, err := m.dist.Distribute(id, plan.RoundSpec, plan.NewCells, store, plan.Decorate(sink))
		if err != nil {
			return Progress{State: StateFailed, Total: len(plan.NewCells)}, err
		}
		return m.waitDistributed(ctx, d)
	}
}

// waitDistributed blocks until a distributed run reaches a terminal
// state, cancelling it when ctx ends first.
func (m *Manager) waitDistributed(ctx context.Context, d DistributedRun) (Progress, error) {
	select {
	case <-d.Done():
	case <-ctx.Done():
		d.Cancel()
		<-d.Done()
	}
	final := d.Progress()
	if final.State == StateFailed && final.Error != "" {
		return final, errors.New(final.Error)
	}
	return final, nil
}

// Recover scans the manager's base directory for distributed sweeps a
// crash or restart interrupted — directories holding a coordinator
// journal whose sweep never finished — and resumes serving them under
// their original ids, so workers that survived the outage keep
// heartbeating the leases they hold and /sweeps keeps answering for
// the same run. Call once at startup, after SetDistributor and before
// serving requests. It reports how many sweeps resumed; per-directory
// failures are joined into err but do not stop the scan (one corrupt
// directory must not strand every other sweep).
func (m *Manager) Recover() (recovered int, err error) {
	rec, ok := m.dist.(Recoverer)
	if !ok {
		return 0, nil
	}
	entries, err := os.ReadDir(m.dir)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var errs []error
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(m.dir, ent.Name())
		if _, serr := os.Stat(filepath.Join(dir, CoordJournalFile)); serr != nil {
			continue // a local sweep, or nothing was ever journaled
		}
		ok, rerr := m.recoverDir(rec, dir)
		if rerr != nil {
			errs = append(errs, fmt.Errorf("%s: %w", dir, rerr))
			continue
		}
		if ok {
			recovered++
		}
	}
	return recovered, errors.Join(errs...)
}

// recoverDir resumes one sweep directory, reporting false when its
// journal shows a finished sweep (or its spec is already running).
// Search sweeps get a second chance past the journal gate: a crash
// *between* distributed rounds leaves a finished journal behind while
// the search itself still has rounds to run, which only the manifest
// (and the settled results) can reveal.
func (m *Manager) recoverDir(rec Recoverer, dir string) (bool, error) {
	need, err := rec.NeedsRecovery(dir)
	if err != nil {
		return false, err
	}
	man, merr := readManifest(dir)
	if merr != nil {
		if need {
			return false, merr
		}
		return false, nil
	}
	if man.Spec.Search != nil {
		return m.resumeSearchDir(man, dir, rec.Recover, need)
	}
	if !need {
		return false, nil
	}
	return m.resumeDir(dir, rec.Recover)
}

// AdoptOrphans scans the base directory for unfinished distributed
// sweeps — whoever their journals say owns them — and takes each one
// over through the distributor's Adopt. It is the action behind
// POST /coord/adopt and the peer health watcher: call it only when the
// sweeps' owner is believed dead, because adopting out from under a
// live server splits the lease table. Sweeps already running here
// (this server's own, or previously adopted) are skipped by the
// spec-key reservation inside resumeDir.
func (m *Manager) AdoptOrphans() (adopted int, err error) {
	adp, ok := m.dist.(Adopter)
	if !ok {
		return 0, nil
	}
	entries, err := os.ReadDir(m.dir)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var errs []error
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(m.dir, ent.Name())
		if _, serr := os.Stat(filepath.Join(dir, CoordJournalFile)); serr != nil {
			continue
		}
		owner, orphaned, oerr := adp.Orphaned(dir)
		if oerr != nil {
			errs = append(errs, fmt.Errorf("%s: %w", dir, oerr))
			continue
		}
		if !orphaned {
			continue
		}
		ok, rerr := m.resumeDir(dir, adp.Adopt)
		if rerr != nil {
			errs = append(errs, fmt.Errorf("%s: %w", dir, rerr))
			continue
		}
		if ok {
			if owner == "" {
				owner = "(unowned journal)"
			}
			log.Printf("sweep: adopted %s from %s", dir, owner)
			adopted++
		}
	}
	return adopted, errors.Join(errs...)
}

// resumeDir rebuilds one sweep directory's run through resume (the
// distributor's Recover or Adopt) and registers it under its original
// id — the shared tail of crash recovery and federation adoption.
// It reports false when the directory holds nothing resumable or its
// spec is already running here.
func (m *Manager) resumeDir(dir string, resume func(Spec, []Cell, *Store, func(Progress)) (DistributedRun, string, error)) (bool, error) {
	man, err := readManifest(dir)
	if err != nil {
		return false, err
	}
	if man.Spec.Search != nil {
		// Adoption reaches here directly; a search sweep's journal holds
		// one *round*, not the sweep, so it resumes through the search
		// path.
		return m.resumeSearchDir(man, dir, resume, true)
	}
	spec := man.Spec
	cells, err := spec.Expand()
	if err != nil {
		return false, err
	}
	key := spec.Key()
	m.mu.Lock()
	if _, busy := m.active[key]; busy {
		m.mu.Unlock()
		return false, nil
	}
	m.starting[key] = struct{}{}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.starting, key)
		m.mu.Unlock()
	}()

	store, err := Open(dir, spec)
	if err != nil {
		return false, err
	}
	// Options and counters attach before resume: a recovered
	// coordinator can start merging worker uploads immediately, and
	// those appends must already see the configured durability.
	store.SetOptions(m.storeOpts)
	store.SetCounters(&m.storeCounters)
	ctx, cancel := context.WithCancel(context.Background())
	run := &Run{
		spec:    spec,
		store:   store,
		created: man.Created,
		cancel:  cancel,
		done:    make(chan struct{}),
		prog:    Progress{State: StateRunning, Total: len(cells)},
	}
	d, id, err := resume(spec, cells, store, m.progressSink(run))
	if err != nil || d == nil {
		store.Close()
		cancel()
		return false, err
	}
	run.id = id
	m.observeStore(id, store)

	m.mu.Lock()
	m.runs[id] = run
	m.order = append(m.order, id)
	m.active[key] = run
	m.bumpSeqLocked(id)
	m.pruneRunsLocked()
	m.mu.Unlock()

	go func() {
		defer close(run.done)
		defer store.Close()
		defer func() {
			m.mu.Lock()
			delete(m.active, key)
			m.mu.Unlock()
		}()
		final, werr := m.waitDistributed(ctx, d)
		if werr != nil && final.Error == "" {
			final.Error = werr.Error()
		}
		run.mu.Lock()
		run.prog = final
		run.mu.Unlock()
	}()
	return true, nil
}

// resumeSearchDir rebuilds an interrupted halving-search sweep. The
// manifest pins the search spec, and the next round is a pure function
// of the spec plus the store's settled results, so the resumed run
// re-derives exactly the frontier the crash interrupted. journalLive
// says the directory holds an unfinished coordinator journal: that
// round is resumed through resume (the distributor's Recover or Adopt)
// first — surviving workers keep their leases — and the remaining
// rounds then run through the ordinary search loop.
func (m *Manager) resumeSearchDir(man Manifest, dir string, resume func(Spec, []Cell, *Store, func(Progress)) (DistributedRun, string, error), journalLive bool) (bool, error) {
	spec := man.Spec
	if man.SearchDone && !journalLive {
		return false, nil // finished search; nothing to serve
	}
	key := spec.Key()
	m.mu.Lock()
	if _, busy := m.active[key]; busy {
		m.mu.Unlock()
		return false, nil
	}
	m.starting[key] = struct{}{}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.starting, key)
		m.mu.Unlock()
	}()

	store, err := Open(dir, spec)
	if err != nil {
		return false, err
	}
	store.SetOptions(m.storeOpts)
	store.SetCounters(&m.storeCounters)
	plan, err := spec.DeriveSearch(store.Completed(), store.FailedCells())
	if err != nil {
		store.Close()
		return false, err
	}
	if plan.Finished && !journalLive {
		// The search had settled before the crash; only the manifest
		// stamp was lost. Restore it so the next startup skips the
		// directory without opening the store.
		err := store.MarkSearchDone()
		store.Close()
		return false, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	run := &Run{
		spec:    spec,
		store:   store,
		created: man.Created,
		cancel:  cancel,
		done:    make(chan struct{}),
		prog: Progress{
			State: StateRunning, Total: plan.Issued,
			Done: plan.PriorDone, Failed: plan.PriorFailed,
			Round: plan.Round + 1, Rounds: plan.Rounds,
		},
	}
	var first DistributedRun
	id := ""
	if journalLive {
		first, id, err = resume(plan.RoundSpec, plan.NewCells, store, plan.Decorate(m.progressSink(run)))
		if err != nil {
			store.Close()
			cancel()
			return false, err
		}
	}
	if id != "" {
		// The journal names one *round* (<base>.rN.<attempt>); the
		// run's public handle is the search itself, so a client's
		// pre-crash id keeps resolving after recovery.
		id = baseSearchID(id)
	} else {
		// No live journaled round to inherit an id from (none, or it was
		// already terminal): mint a fresh one.
		m.mu.Lock()
		m.seq++
		id = fmt.Sprintf("sweep-%d-%s", m.seq, key[:12])
		m.mu.Unlock()
	}
	run.id = id
	m.observeStore(id, store)

	m.mu.Lock()
	m.runs[id] = run
	m.order = append(m.order, id)
	m.active[key] = run
	m.bumpSeqLocked(id)
	m.pruneRunsLocked()
	m.mu.Unlock()

	go func() {
		defer close(run.done)
		defer store.Close()
		defer func() {
			m.mu.Lock()
			delete(m.active, key)
			m.mu.Unlock()
		}()
		var final Progress
		var werr error
		if first != nil {
			final, werr = m.waitDistributed(ctx, first)
			final = plan.fold(final)
		}
		if werr == nil && (first == nil || final.State == StateDone) {
			final, werr = RunSearch(ctx, spec, store, m.searchRoundRunner(run, spec, store))
		}
		if werr != nil && final.Error == "" {
			final.Error = werr.Error()
		}
		run.mu.Lock()
		run.prog = final
		run.mu.Unlock()
	}()
	return true, nil
}

// bumpSeqLocked advances the id sequence past a recovered run's, so a
// later Start cannot mint the "sweep-<n>-<key>" id the recovered run
// already answers to. Callers must hold m.mu.
func (m *Manager) bumpSeqLocked(id string) {
	var n uint64
	if _, err := fmt.Sscanf(id, "sweep-%d-", &n); err == nil && n > m.seq {
		m.seq = n
	}
}

// pruneRunsLocked evicts the oldest finished run records while over
// the retention bound (mirroring the engine's job retention). Their
// results stay on disk — only the in-memory handle goes away, after
// which the ID answers 404. Callers must hold m.mu.
func (m *Manager) pruneRunsLocked() {
	for len(m.runs) > m.maxRuns {
		evicted := false
		for i, id := range m.order {
			r := m.runs[id]
			if r.Progress().State != StateRunning {
				delete(m.runs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// Get looks up a run by ID.
func (m *Manager) Get(id string) (*Run, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	return r, ok
}

// Cancel stops a running sweep; completed cells stay on disk, so a
// later identical POST resumes it. It reports whether the ID exists.
func (m *Manager) Cancel(id string) (*Run, bool) {
	r, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	r.cancel()
	return r, true
}

// List snapshots every managed sweep in start order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if r, ok := m.Get(id); ok {
			out = append(out, r.Status())
		}
	}
	return out
}

// MetricsSnapshot reports the sweep counters plus the number of
// currently running sweeps (for /metrics and /healthz).
func (m *Manager) MetricsSnapshot() map[string]any {
	m.mu.Lock()
	active := 0
	for _, r := range m.runs {
		if r.Progress().State == StateRunning {
			active++
		}
	}
	total := len(m.runs)
	m.mu.Unlock()
	snap := m.counters.Snapshot()
	return map[string]any{
		"started":      snap.Started,
		"cells_done":   snap.CellsDone,
		"cells_failed": snap.CellsFailed,
		"active":       active,
		"tracked":      total,
		"store":        m.storeCounters.Snapshot(),
	}
}

// WriteProm emits the sweep counters — and, when SetRED was called,
// the per-sweep cell RED families labeled by sweep id — in Prometheus
// text format.
func (m *Manager) WriteProm(p *metrics.PromWriter) {
	m.mu.Lock()
	active := 0
	for _, r := range m.runs {
		if r.Progress().State == StateRunning {
			active++
		}
	}
	tracked := len(m.runs)
	m.mu.Unlock()
	snap := m.counters.Snapshot()
	p.Counter("ciao_sweeps_started_total", "Sweeps started.", snap.Started)
	p.Counter("ciao_sweep_cells_done_total", "Sweep cells completed successfully.", snap.CellsDone)
	p.Counter("ciao_sweep_cells_failed_total", "Sweep cell failures.", snap.CellsFailed)
	p.Gauge("ciao_sweeps_active", "Sweeps currently running.", float64(active))
	p.Gauge("ciao_sweeps_tracked", "Sweep run records retained in memory.", float64(tracked))
	store := m.storeCounters.Snapshot()
	p.Counter("ciao_store_compactions_total", "Result-store compaction rewrites.", store.Compactions)
	p.Counter("ciao_store_segments_written_total", "Immutable result segments written.", store.SegmentsWritten)
	p.Counter("ciao_store_segment_bytes_total", "Result bytes moved into immutable segments (uncompressed).", store.SegmentBytes)
	p.Counter("ciao_store_tail_lagged_total", "Result followers cut off for lagging the broadcast.", store.TailLagged)
	p.Gauge("ciao_store_tail_subscribers", "Live result-stream followers.", float64(store.TailSubscribers))
	if m.red != nil {
		m.red.WriteProm(p, "ciao_sweep_cell", "sweep")
	}
}

// maxSpecBytes bounds sweep spec bodies.
const maxSpecBytes = 1 << 20

// Handler serves the sweep API:
//
//	POST   /sweeps                       — start a sweep from a JSON spec (202)
//	GET    /sweeps                       — list sweeps
//	GET    /sweeps/{id}                  — progress (done/total, failures, geomean)
//	GET    /sweeps/{id}/results          — NDJSON result stream (segments +
//	                                       live tail spliced); follows the
//	                                       sweep live unless ?follow=0
//	POST   /sweeps/{id}/compact          — freeze the tail's settled prefix
//	                                       into a segment now
//	GET    /sweeps/{id}/segments         — committed segment blob names (JSON)
//	GET    /sweeps/{id}/segments/{name}  — one segment blob (or segments.json),
//	                                       raw — the HTTP Backend a peer
//	                                       mirrors from
//	GET    /sweeps/{id}/store/{file}     — manifest | tail | journal, raw —
//	                                       the rest of a sweep directory, for
//	                                       peers mirroring without a shared
//	                                       filesystem
//	DELETE /sweeps/{id}                  — cancel; completed cells stay on disk
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweeps", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := httpx.DecodeStrict(r, maxSpecBytes, &spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("sweep: %w", err))
			return
		}
		run, err := m.Start(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, run.Status())
	})

	mux.HandleFunc("GET /sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})

	mux.HandleFunc("GET /sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		run, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("sweep: unknown sweep %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, run.Status())
	})

	mux.HandleFunc("GET /sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		run, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("sweep: unknown sweep %q", r.PathValue("id")))
			return
		}
		m.streamResults(w, r, run)
	})

	mux.HandleFunc("POST /sweeps/{id}/compact", func(w http.ResponseWriter, r *http.Request) {
		run, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("sweep: unknown sweep %q", r.PathValue("id")))
			return
		}
		seg, compacted, err := run.store.Compact()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		resp := struct {
			Compacted bool         `json:"compacted"`
			Segment   *SegmentInfo `json:"segment,omitempty"`
		}{Compacted: compacted}
		if compacted {
			resp.Segment = &seg
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /sweeps/{id}/segments", func(w http.ResponseWriter, r *http.Request) {
		run, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("sweep: unknown sweep %q", r.PathValue("id")))
			return
		}
		names, err := run.store.Backend().List()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		if names == nil {
			names = []string{}
		}
		writeJSON(w, http.StatusOK, names)
	})

	mux.HandleFunc("GET /sweeps/{id}/segments/{name}", func(w http.ResponseWriter, r *http.Request) {
		run, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("sweep: unknown sweep %q", r.PathValue("id")))
			return
		}
		// The backend re-validates the name (no separators, no
		// dotfiles); a bad one reads as not-found, not as a file probe.
		data, err := run.store.Backend().Get(r.PathValue("name"))
		if err != nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("sweep: no segment %q", r.PathValue("name")))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})

	mux.HandleFunc("GET /sweeps/{id}/store/{file}", func(w http.ResponseWriter, r *http.Request) {
		run, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("sweep: unknown sweep %q", r.PathValue("id")))
			return
		}
		var (
			data []byte
			err  error
			ctyp = "application/x-ndjson"
		)
		switch r.PathValue("file") {
		case "manifest":
			data, err = os.ReadFile(filepath.Join(run.store.Dir(), ManifestFile))
			ctyp = "application/json"
		case "tail":
			// Read under the store lock so a concurrent compaction cannot
			// swap the file mid-read.
			data, err = run.store.ReadTail()
		case "journal":
			data, err = os.ReadFile(run.store.CoordJournalPath())
		default:
			httpError(w, http.StatusNotFound, fmt.Errorf("sweep: unknown store file %q", r.PathValue("file")))
			return
		}
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		if errors.Is(err, fs.ErrNotExist) {
			httpError(w, http.StatusNotFound, fmt.Errorf("sweep: no %s for sweep %q", r.PathValue("file"), run.id))
			return
		}
		w.Header().Set("Content-Type", ctyp)
		w.Write(data)
	})

	mux.HandleFunc("DELETE /sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		run, ok := m.Cancel(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("sweep: unknown sweep %q", r.PathValue("id")))
			return
		}
		// Wait briefly so the returned status usually reflects the
		// cancellation rather than racing it.
		select {
		case <-run.Done():
		case <-time.After(2 * time.Second):
		}
		writeJSON(w, http.StatusOK, run.Status())
	})
	return mux
}

// streamResults writes the store's logical result stream (committed
// segments spliced with the live tail) to the client and, by default,
// keeps following it until the sweep's store closes (tail -f
// semantics, ending in a clean EOF instead of an idle hang). ?follow=0
// returns the current snapshot.
//
// Followers ride the store's broadcast hub: one subscription per
// client, fed from the single in-memory append path, so N watchers do
// not cost N disk pollers. Disk is read only to catch a subscriber up
// — on first attach, or after it lagged the broadcast and was cut off.
// Byte offsets into the logical stream survive compaction, so a
// resync never re-sends or skips a record. Client disconnects are
// noticed via the request context, not the next append.
func (m *Manager) streamResults(w http.ResponseWriter, r *http.Request, run *Run) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if r.URL.Query().Get("follow") == "0" {
		run.store.CopyRange(w, 0, run.store.LogicalSize())
		return
	}
	ctx := r.Context()
	var sent int64
	for {
		off, ch, cancel := run.store.Subscribe()
		if off > sent {
			if err := run.store.CopyRange(w, sent, off); err != nil {
				cancel()
				return // client went away (or the store is gone)
			}
			sent = off
			flush()
		}
		if ch == nil {
			return // store closed: the stream is complete — clean EOF
		}
	consume:
		for {
			select {
			case line, ok := <-ch:
				if !ok {
					// Lagged or closing: resubscribe and resync from sent.
					break consume
				}
				if _, err := w.Write(line); err != nil {
					cancel()
					return
				}
				sent += int64(len(line))
				flush()
			case <-ctx.Done():
				cancel()
				return
			}
		}
		cancel()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) { httpx.WriteJSON(w, code, v) }

func httpError(w http.ResponseWriter, code int, err error) { httpx.Error(w, code, err) }
