package sweep

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestManagerStartSurfacesBothStoreErrors pins the failure-path fix:
// when the sweep directory can neither be created (a manifest already
// exists) nor resumed (it pins a different spec), the error must carry
// both causes instead of hiding the resume failure behind the create
// one.
func TestManagerStartSurfacesBothStoreErrors(t *testing.T) {
	base := t.TempDir()
	spec, _ := eightCells(t)

	// Occupy the spec's store directory with a different sweep, so
	// Create fails on the existing manifest and Open fails the spec-key
	// check.
	other := spec
	other.Name = "squatter"
	dir := filepath.Join(base, "sweep-"+spec.Key()[:16])
	st, err := Create(dir, "other-id", other, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	m := NewManager(fakeEngine(0), base, 0)
	_, err = m.Start(spec)
	if err == nil {
		t.Fatal("Start over a foreign store should fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "create failed") || !strings.Contains(msg, "not the requested spec") {
		t.Errorf("error hides a cause: %v", err)
	}
}

// TestManagerRejectsDistributedWithoutDistributor: a spec asking for
// the coordinator on a server that has none must fail loudly, not run
// locally by surprise.
func TestManagerRejectsDistributedWithoutDistributor(t *testing.T) {
	spec, _ := eightCells(t)
	spec.Distributed = true
	m := NewManager(fakeEngine(0), t.TempDir(), 0)
	if _, err := m.Start(spec); err == nil || !strings.Contains(err.Error(), "no coordinator") {
		t.Errorf("err = %v, want no-coordinator rejection", err)
	}
}

// TestRecoverIsANoopWithoutRecovererOrSweeps: Recover must tolerate a
// manager with no distributor (or one that cannot recover) and a base
// directory that does not exist yet — the common first-boot cases.
func TestRecoverIsANoopWithoutRecovererOrSweeps(t *testing.T) {
	m := NewManager(fakeEngine(0), filepath.Join(t.TempDir(), "not-created-yet"), 0)
	if n, err := m.Recover(); n != 0 || err != nil {
		t.Fatalf("Recover without a distributor = (%d, %v), want a no-op", n, err)
	}
}

// TestSpecKeyIgnoresDistributed: distributed is an execution knob —
// the same grid run locally or through the coordinator must share one
// store.
func TestSpecKeyIgnoresDistributed(t *testing.T) {
	spec, _ := eightCells(t)
	dist := spec
	dist.Distributed = true
	if spec.Key() != dist.Key() {
		t.Error("Spec.Key must not depend on Distributed")
	}
}
