package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// MirrorMarkerFile marks a sweep directory as a warm-standby copy
// fetched from a federation peer, not a sweep this server ran. The
// marker is the safety interlock of mirroring into a *separate*
// -sweepdir: a directory without it is either this server's own sweep
// or a shared-filesystem deployment, and MirrorFrom refuses to write
// into it.
const MirrorMarkerFile = "mirror.json"

// mirrorMarker is the marker file's contents — enough provenance to
// debug a standby directory by hand.
type mirrorMarker struct {
	Peer    string    `json:"peer"`
	Sweep   string    `json:"sweep"`
	Updated time.Time `json:"updated"`
}

// MirrorFrom pulls a warm-standby copy of every unfinished distributed
// sweep the peer is serving into this manager's own sweep directory,
// over plain HTTP: segment blobs through the peer's Backend endpoints,
// then the manifest, live tail and coordinator journal through
// /sweeps/{id}/store. It is how two servers with *separate* -sweepdirs
// federate — when the peer dies, the ordinary adoption path replays
// the mirrored journal exactly as it would a shared directory, and
// any records appended on the peer after the last mirror round simply
// re-run (coordinator recovery treats missing records as incomplete
// cells, so a stale mirror costs work, never correctness).
//
// Per round and per sweep the fetch order is tail, segments, journal:
// the journal lands last, so it never claims shard completions whose
// records the round missed in a way recovery cannot repair, and a
// compaction racing the round at worst duplicates the frozen prefix —
// which the store's interrupted-compaction repair already removes on
// open. Sweeps running locally (our own, or already adopted) and
// directories we did not create are skipped.
//
// It reports how many sweeps were synced this round; per-sweep
// failures are joined into err but do not stop the round.
func (m *Manager) MirrorFrom(peer string) (synced int, err error) {
	peer = strings.TrimRight(peer, "/")
	client := &http.Client{Timeout: 15 * time.Second}
	body, err := fetchBytes(client, peer+"/sweeps", 1<<22)
	if err != nil {
		return 0, fmt.Errorf("sweep: mirror: list %s: %w", peer, err)
	}
	var sweeps []Status
	if err := json.Unmarshal(body, &sweeps); err != nil {
		return 0, fmt.Errorf("sweep: mirror: list %s: %w", peer, err)
	}
	var errs []error
	for _, st := range sweeps {
		if !st.Distributed || st.State != StateRunning {
			continue
		}
		ok, merr := m.mirrorSweep(client, peer, st.ID)
		if merr != nil {
			errs = append(errs, fmt.Errorf("sweep %s: %w", st.ID, merr))
			continue
		}
		if ok {
			synced++
		}
	}
	return synced, errors.Join(errs...)
}

// mirrorSweep refreshes the local standby copy of one remote sweep.
// It reports false (no error) when the sweep must not be mirrored
// here: its spec is active locally, or its directory exists without
// our marker.
func (m *Manager) mirrorSweep(client *http.Client, peer, id string) (bool, error) {
	base := peer + "/sweeps/" + id
	manB, err := fetchBytes(client, base+"/store/manifest", maxSpecBytes)
	if err != nil {
		return false, fmt.Errorf("manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(manB, &man); err != nil {
		return false, fmt.Errorf("manifest: %w", err)
	}
	if len(man.SpecKey) < 16 {
		return false, fmt.Errorf("manifest: malformed spec key %q", man.SpecKey)
	}

	m.mu.Lock()
	_, active := m.active[man.SpecKey]
	_, starting := m.starting[man.SpecKey]
	m.mu.Unlock()
	if active || starting {
		return false, nil // we are running this sweep — nothing to mirror
	}

	dir := filepath.Join(m.dir, "sweep-"+man.SpecKey[:16])
	marker := filepath.Join(dir, MirrorMarkerFile)
	if _, err := os.Stat(dir); err == nil {
		if _, merr := os.Stat(marker); merr != nil {
			// The directory exists but we never marked it: a shared
			// -sweepdir (the peer's own files are right there) or a local
			// sweep. Either way it is not ours to overwrite.
			return false, nil
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, err
	}
	mk, err := json.Marshal(mirrorMarker{Peer: peer, Sweep: id, Updated: time.Now().UTC()})
	if err != nil {
		return false, err
	}
	if err := writeFileSync(marker, append(mk, '\n')); err != nil {
		return false, err
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestFile)); errors.Is(err, fs.ErrNotExist) {
		if err := writeFileSync(filepath.Join(dir, ManifestFile), manB); err != nil {
			return false, err
		}
	}

	// Tail before segments before journal — see MirrorFrom.
	tailB, err := fetchBytes(client, base+"/store/tail", maxSegmentBytes)
	if err != nil {
		return false, fmt.Errorf("tail: %w", err)
	}
	if err := writeFileSync(filepath.Join(dir, ResultsFile), tailB); err != nil {
		return false, err
	}

	remote := NewHTTPBackend(base+"/segments", client)
	local := NewDirBackend(filepath.Join(dir, SegmentsDir))
	if err := mirrorSegments(remote, local); err != nil {
		return false, fmt.Errorf("segments: %w", err)
	}

	jB, err := fetchBytes(client, base+"/store/journal", maxSegmentBytes)
	if err != nil {
		if errors.Is(err, errNotFound) {
			return true, nil // the coordinator has not journaled yet
		}
		return false, fmt.Errorf("journal: %w", err)
	}
	if err := writeFileSync(filepath.Join(dir, CoordJournalFile), jB); err != nil {
		return false, err
	}
	return true, nil
}

// mirrorSegments copies the remote's committed segment list and every
// blob it names that is missing locally. The local segments.json is
// replaced only after all its blobs are present, so a local open never
// sees a list naming blobs that are not there; committed blobs are
// immutable, so an existing local copy is never re-fetched.
func mirrorSegments(remote, local Backend) error {
	listB, err := remote.Get(SegmentsFile)
	if errors.Is(err, fs.ErrNotExist) {
		return nil // the remote store was never compacted
	}
	if err != nil {
		return err
	}
	var l segmentList
	if err := json.Unmarshal(listB, &l); err != nil {
		return fmt.Errorf("corrupt remote segment list: %w", err)
	}
	for _, seg := range l.Segments {
		if _, err := local.Get(seg.Name); err == nil {
			continue
		}
		blob, err := remote.Get(seg.Name)
		if err != nil {
			return fmt.Errorf("fetch %s: %w", seg.Name, err)
		}
		if err := local.Put(seg.Name, blob); err != nil {
			return err
		}
	}
	return local.Put(SegmentsFile, listB)
}

// errNotFound marks a 404 from fetchBytes so callers can treat
// missing-but-expected files (an unwritten journal) as benign.
var errNotFound = errors.New("not found")

// fetchBytes GETs a URL whole, bounding the body.
func fetchBytes(client *http.Client, url string, limit int64) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%s: %w", url, errNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: unexpected status %s", url, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("%s: body exceeds %d bytes", url, limit)
	}
	return data, nil
}
