package sweep

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// stubDist is a Distributor that never executes cells: it hands the
// test the store so it can script exactly what a coordinator would
// have appended, while the sweep stays "running" until cancelled.
type stubDist struct {
	mu    sync.Mutex
	store *Store
	run   *stubRun
}

func (d *stubDist) Distribute(id string, spec Spec, cells []Cell, store *Store, onProgress func(Progress)) (DistributedRun, error) {
	r := &stubRun{total: len(cells), done: make(chan struct{})}
	d.mu.Lock()
	d.store, d.run = store, r
	d.mu.Unlock()
	return r, nil
}

func (d *stubDist) snapshot() (*Store, *stubRun) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.store, d.run
}

type stubRun struct {
	total int
	once  sync.Once
	done  chan struct{}
}

func (r *stubRun) Done() <-chan struct{} { return r.done }
func (r *stubRun) Progress() Progress    { return Progress{State: StateRunning, Total: r.total} }
func (r *stubRun) Cancel()               { r.once.Do(func() { close(r.done) }) }

// TestMirrorFromCopiesPeerSweep drives warm-standby mirroring between
// two managers with *separate* sweep directories: segments arrive via
// the HTTP backend, the tail and journal via the store endpoints, a
// second round fetches only the blobs it does not already hold, and
// the mirrored directory reads record-for-record identical to the
// original.
func TestMirrorFromCopiesPeerSweep(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	mgrA := NewManager(fakeEngine(0), dirA, 0)
	dist := &stubDist{}
	mgrA.SetDistributor(dist)

	spec, _ := eightCells(t)
	spec.Distributed = true
	runA, err := mgrA.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "distributed run to launch", func() bool { s, _ := dist.snapshot(); return s != nil })
	store, stub := dist.snapshot()
	defer func() {
		stub.Cancel()
		<-runA.Done()
	}()

	// Script the owner's state: two settled records frozen into a
	// segment, a failed-then-ok pair in the live tail, and a journal.
	store.Append(okRec("k1", 1))
	store.Append(okRec("k2", 2))
	if _, ok, err := store.Compact(); err != nil || !ok {
		t.Fatalf("Compact = (%v, %v)", ok, err)
	}
	store.Append(CellRecord{Key: "k3", Status: StatusFailed, Error: "boom"})
	store.Append(okRec("k3", 3))
	journal := []byte(`{"t":"snapshot","sweep":"` + runA.ID() + `","owner":"http://a:1","shards":[]}` + "\n")
	if err := os.WriteFile(store.CoordJournalPath(), journal, 0o644); err != nil {
		t.Fatal(err)
	}

	// Serve A behind a request counter, so round 2 can prove segments
	// are fetched at most once.
	var (
		cmu  sync.Mutex
		gets = map[string]int{}
	)
	h := mgrA.Handler()
	srvA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cmu.Lock()
		gets[r.URL.Path]++
		cmu.Unlock()
		h.ServeHTTP(w, r)
	}))
	defer srvA.Close()

	mgrB := NewManager(fakeEngine(0), dirB, 0)
	synced, err := mgrB.MirrorFrom(srvA.URL)
	if synced != 1 || err != nil {
		t.Fatalf("MirrorFrom = (%d, %v), want 1 synced sweep", synced, err)
	}

	mirrorDir := filepath.Join(dirB, "sweep-"+spec.Key()[:16])
	if _, err := os.Stat(filepath.Join(mirrorDir, MirrorMarkerFile)); err != nil {
		t.Fatalf("mirror marker missing: %v", err)
	}
	wantRecs, wantCorrupt, err := ReadRecords(store.Dir())
	if err != nil || wantCorrupt != 0 {
		t.Fatal(err)
	}
	gotRecs, gotCorrupt, err := ReadRecords(mirrorDir)
	if err != nil || gotCorrupt != 0 {
		t.Fatalf("ReadRecords(mirror) = (%d corrupt, %v)", gotCorrupt, err)
	}
	if !reflect.DeepEqual(gotRecs, wantRecs) {
		t.Fatalf("mirrored records diverge: got %d, want %d", len(gotRecs), len(wantRecs))
	}
	if gotJ, err := os.ReadFile(filepath.Join(mirrorDir, CoordJournalFile)); err != nil || !bytes.Equal(gotJ, journal) {
		t.Fatalf("mirrored journal = (%q, %v)", gotJ, err)
	}
	manA, _ := os.ReadFile(filepath.Join(store.Dir(), ManifestFile))
	manB, err := os.ReadFile(filepath.Join(mirrorDir, ManifestFile))
	if err != nil || !bytes.Equal(manA, manB) {
		t.Fatalf("mirrored manifest diverges (%v)", err)
	}

	// Round 2: more progress on the owner, a second segment. The mirror
	// must catch up without re-fetching the blob it already holds.
	segPath := "/sweeps/" + runA.ID() + "/segments/" + segmentName(1, false)
	cmu.Lock()
	if gets[segPath] != 1 {
		t.Fatalf("round 1 fetched %s %d times, want 1", segPath, gets[segPath])
	}
	cmu.Unlock()
	store.Append(okRec("k4", 4))
	if _, ok, err := store.Compact(); err != nil || !ok {
		t.Fatalf("second Compact = (%v, %v)", ok, err)
	}
	if synced, err := mgrB.MirrorFrom(srvA.URL); synced != 1 || err != nil {
		t.Fatalf("second MirrorFrom = (%d, %v)", synced, err)
	}
	cmu.Lock()
	if gets[segPath] != 1 {
		t.Errorf("round 2 re-fetched the immutable blob %s", segPath)
	}
	cmu.Unlock()
	gotRecs, _, err = ReadRecords(mirrorDir)
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, _, _ = ReadRecords(store.Dir())
	if !reflect.DeepEqual(gotRecs, wantRecs) {
		t.Fatalf("round 2 mirror diverges: got %d records, want %d", len(gotRecs), len(wantRecs))
	}

	// The mirrored store opens cleanly — exactly what adoption will do.
	mst, err := OpenAny(mirrorDir)
	if err != nil {
		t.Fatal(err)
	}
	if done := mst.Completed(); len(done) != 4 {
		t.Errorf("mirrored store completed = %v, want 4 cells", done)
	}
	mst.Close()
}

// TestMirrorFromRefusesForeignDirectories pins the shared-sweepdir
// interlock: a directory that exists without our mirror marker is
// either this server's own sweep or the peer's files on a shared
// filesystem — both fatal to overwrite.
func TestMirrorFromRefusesForeignDirectories(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	mgrA := NewManager(fakeEngine(0), dirA, 0)
	dist := &stubDist{}
	mgrA.SetDistributor(dist)
	spec, _ := eightCells(t)
	spec.Distributed = true
	runA, err := mgrA.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "distributed run to launch", func() bool { s, _ := dist.snapshot(); return s != nil })
	store, stub := dist.snapshot()
	defer func() {
		stub.Cancel()
		<-runA.Done()
	}()
	store.Append(okRec("k1", 1))

	srvA := httptest.NewServer(mgrA.Handler())
	defer srvA.Close()

	// The target directory pre-exists without a marker (a local sweep,
	// or a shared -sweepdir where the peer's own files live).
	mirrorDir := filepath.Join(dirB, "sweep-"+spec.Key()[:16])
	if err := os.MkdirAll(mirrorDir, 0o755); err != nil {
		t.Fatal(err)
	}
	sentinel := filepath.Join(mirrorDir, ResultsFile)
	if err := os.WriteFile(sentinel, []byte("precious local data\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	mgrB := NewManager(fakeEngine(0), dirB, 0)
	if synced, err := mgrB.MirrorFrom(srvA.URL); synced != 0 || err != nil {
		t.Fatalf("MirrorFrom over a foreign dir = (%d, %v), want a skip", synced, err)
	}
	if got, _ := os.ReadFile(sentinel); string(got) != "precious local data\n" {
		t.Fatalf("mirror overwrote a directory it does not own: %q", got)
	}
	if _, err := os.Stat(filepath.Join(mirrorDir, MirrorMarkerFile)); !os.IsNotExist(err) {
		t.Error("mirror planted its marker in a foreign directory")
	}

	// A spec actively running on this server is skipped too — nothing
	// to mirror when we are the ones executing it.
	mgrC := NewManager(fakeEngine(0), t.TempDir(), 0)
	mgrC.mu.Lock()
	mgrC.active[spec.Key()] = &Run{}
	mgrC.mu.Unlock()
	if synced, err := mgrC.MirrorFrom(srvA.URL); synced != 0 || err != nil {
		t.Fatalf("MirrorFrom with the spec active locally = (%d, %v), want a skip", synced, err)
	}
}
