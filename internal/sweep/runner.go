package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

// State is a sweep run's lifecycle phase.
type State string

// Run states.
const (
	StateRunning   State = "running"
	StateDone      State = "done"
	StateCancelled State = "cancelled"
	StateFailed    State = "failed" // store I/O failure, not cell failure
	// StateDoneQuarantined ends a distributed sweep whose runnable
	// shards all finished while operator-quarantined shards stayed
	// parked: their cells never ran. Re-POSTing the spec starts a
	// fresh run over exactly those cells.
	StateDoneQuarantined State = "done-with-quarantined"
)

// Progress is a point-in-time view of a sweep run. Done counts cells
// with a stored success (including Skipped ones resumed from disk);
// Executed counts cells this process actually pushed through the
// engine.
type Progress struct {
	State    State `json:"state"`
	Total    int   `json:"total"`
	Done     int   `json:"done"`
	Failed   int   `json:"failed"`
	Skipped  int   `json:"skipped"`
	Executed int   `json:"executed"`
	// GeoMeanIPC aggregates the raw IPC of every successful cell so
	// far (resumed cells included) — the sweep-wide "geomean so far".
	GeoMeanIPC float64 `json:"geomean_ipc"`
	// Starved counts cells parked behind a capability constraint no
	// live worker currently satisfies (distributed sweeps only): the
	// sweep is waiting for a matching worker to join, not progressing.
	Starved int    `json:"starved,omitempty"`
	Error   string `json:"error,omitempty"`
	// Round/Rounds track a halving search's refinement progress
	// (1-based; zero on plain sweeps). Total then counts every cell
	// issued through the current round, not the final total — later
	// rounds grow it.
	Round  int `json:"round,omitempty"`
	Rounds int `json:"rounds,omitempty"`
	// Winners ranks the search's final top-k configuration points, set
	// once the search finishes.
	Winners []PointScore `json:"winners,omitempty"`
}

// Runner executes a sweep's cells through a service engine, appending
// every outcome to the sink.
type Runner struct {
	Engine *service.Engine
	// Store receives every cell outcome: a *Store for durable local
	// runs, a *MemStore for leased shards whose records upload to a
	// coordinator.
	Store Sink
	// Parallelism bounds concurrently submitted cells (0 = twice
	// GOMAXPROCS; the engine's worker pool bounds actual simulation
	// concurrency, extra submissions just queue on its slots).
	Parallelism int
	// Indexes restricts the runner to the cells whose Index appears in
	// the set — the explicit form of a shard, as handed out by the
	// coordinator or computed by ShardIndexes. Nil means every cell.
	// Every listed index must name a cell, so a shard cut against a
	// different expansion fails loudly instead of silently under-running.
	Indexes []int
	// OnProgress, when set, observes every progress change. It is
	// invoked synchronously under the runner's internal lock so
	// deliveries arrive in order (observers can difference successive
	// snapshots); keep it fast and never call back into the runner.
	OnProgress func(Progress)
}

// ShardIndexes returns the explicit index set of shard idx of n over
// total cells — round-robin, the same assignment the old
// Index%n == idx rule produced. n <= 1 returns nil (every cell); a
// shard with no cells returns an empty non-nil slice, which the Runner
// distinguishes from nil (an out-of-work shard runs nothing, not
// everything).
func ShardIndexes(total, idx, n int) []int {
	if n <= 1 {
		return nil
	}
	out := []int{}
	for i := idx; i < total; i += n {
		out = append(out, i)
	}
	return out
}

// Geo accumulates a running geometric mean in log space. Zero and
// negative values are skipped, matching metrics.GeoMean. The runner
// and the distributed coordinator share it so their "geomean so far"
// semantics cannot diverge.
type Geo struct {
	logSum float64
	n      int
}

// Add folds one value into the mean (non-positive values are ignored).
func (g *Geo) Add(v float64) {
	if v > 0 {
		g.logSum += math.Log(v)
		g.n++
	}
}

// Mean returns the geometric mean so far (0 with no values).
func (g *Geo) Mean() float64 {
	if g.n == 0 {
		return 0
	}
	return math.Exp(g.logSum / float64(g.n))
}

// Run executes cells until completion or ctx cancellation, returning
// the final progress. Cell failures are recorded and counted, not
// fatal; only store I/O errors abort the sweep.
func (r *Runner) Run(ctx context.Context, cells []Cell) (Progress, error) {
	par := r.Parallelism
	if par <= 0 {
		par = 2 * runtime.GOMAXPROCS(0)
	}
	mine := cells
	if r.Indexes != nil {
		want := make(map[int]bool, len(r.Indexes))
		for _, i := range r.Indexes {
			want[i] = true
		}
		mine = nil
		for _, c := range cells {
			if want[c.Index] {
				mine = append(mine, c)
				delete(want, c.Index)
			}
		}
		if len(want) > 0 {
			return Progress{State: StateFailed}, fmt.Errorf("sweep: %d shard index(es) name no cell (e.g. %d of %d cells) — shard cut against a different expansion?",
				len(want), anyKey(want), len(cells))
		}
	}

	var (
		mu   sync.Mutex
		prog = Progress{State: StateRunning, Total: len(mine)}
		gm   Geo
	)
	// notify delivers a snapshot while holding mu, so observers see
	// monotonically advancing progress (no reordered deliveries).
	notify := func() {
		if r.OnProgress == nil {
			return
		}
		mu.Lock()
		snap := prog
		snap.GeoMeanIPC = gm.Mean()
		r.OnProgress(snap)
		mu.Unlock()
	}

	// Resume: cells already completed on disk are skipped, their IPCs
	// seeding the running geomean.
	completed := r.Store.Completed()
	var todo []Cell
	for _, c := range mine {
		if ipc, ok := completed[c.Key()]; ok {
			prog.Done++
			prog.Skipped++
			gm.Add(ipc)
			continue
		}
		todo = append(todo, c)
	}
	notify()

	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, par)
		storeErr error
	)
loop:
	for _, c := range todo {
		mu.Lock()
		broken := storeErr != nil
		mu.Unlock()
		if broken {
			break
		}
		// Acquire the submission slot and the cancellation signal
		// together, so a cancel arriving while blocked on a full
		// semaphore does not launch one more cell.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break loop
		}
		if ctx.Err() != nil {
			<-sem
			break
		}
		wg.Add(1)
		go func(c Cell) {
			defer wg.Done()
			defer func() { <-sem }()
			rec := r.runCell(c)
			err := r.Store.Append(rec)
			mu.Lock()
			prog.Executed++
			if err != nil {
				if storeErr == nil {
					storeErr = err
				}
			} else if rec.Status == StatusOK {
				prog.Done++
				gm.Add(rec.IPC)
			} else {
				prog.Failed++
			}
			mu.Unlock()
			notify()
		}(c)
	}
	wg.Wait()

	mu.Lock()
	switch {
	case storeErr != nil:
		prog.State = StateFailed
		prog.Error = storeErr.Error()
	case ctx.Err() != nil && prog.Done+prog.Failed < prog.Total:
		prog.State = StateCancelled
	default:
		prog.State = StateDone
	}
	prog.GeoMeanIPC = gm.Mean()
	final := prog
	err := storeErr
	mu.Unlock()
	if r.OnProgress != nil {
		r.OnProgress(final)
	}
	return final, err
}

// anyKey returns an arbitrary key of a non-empty set (for error text).
func anyKey(m map[int]bool) int {
	for k := range m {
		return k
	}
	return -1
}

// runCell executes one cell through the engine and shapes the record.
func (r *Runner) runCell(c Cell) CellRecord {
	rec := CellRecord{
		Key:    c.Key(),
		Index:  c.Index,
		Bench:  c.Bench,
		Sched:  c.Sched,
		Config: c.Config,
	}
	start := time.Now()
	payload, source, err := r.Engine.Run(c.Spec)
	rec.Elapsed = time.Since(start).Milliseconds()
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
		return rec
	}
	rec.Status = StatusOK
	rec.Source = string(source)
	rec.Result = payload
	var cell harness.CellResult
	if json.Unmarshal(payload, &cell) == nil {
		rec.IPC = cell.IPC
	}
	return rec
}
