package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

// State is a sweep run's lifecycle phase.
type State string

// Run states.
const (
	StateRunning   State = "running"
	StateDone      State = "done"
	StateCancelled State = "cancelled"
	StateFailed    State = "failed" // store I/O failure, not cell failure
)

// Progress is a point-in-time view of a sweep run. Done counts cells
// with a stored success (including Skipped ones resumed from disk);
// Executed counts cells this process actually pushed through the
// engine.
type Progress struct {
	State    State `json:"state"`
	Total    int   `json:"total"`
	Done     int   `json:"done"`
	Failed   int   `json:"failed"`
	Skipped  int   `json:"skipped"`
	Executed int   `json:"executed"`
	// GeoMeanIPC aggregates the raw IPC of every successful cell so
	// far (resumed cells included) — the sweep-wide "geomean so far".
	GeoMeanIPC float64 `json:"geomean_ipc"`
	Error      string  `json:"error,omitempty"`
}

// Runner executes a sweep's cells through a service engine, appending
// every outcome to the store.
type Runner struct {
	Engine *service.Engine
	Store  *Store
	// Parallelism bounds concurrently submitted cells (0 = twice
	// GOMAXPROCS; the engine's worker pool bounds actual simulation
	// concurrency, extra submissions just queue on its slots).
	Parallelism int
	// ShardIndex/ShardCount split the cell list across processes:
	// this runner only executes cells with Index % ShardCount ==
	// ShardIndex. Zero ShardCount means one shard.
	ShardIndex int
	ShardCount int
	// OnProgress, when set, observes every progress change. It is
	// invoked synchronously under the runner's internal lock so
	// deliveries arrive in order (observers can difference successive
	// snapshots); keep it fast and never call back into the runner.
	OnProgress func(Progress)
}

// geo accumulates a running geometric mean in log space.
type geo struct {
	logSum float64
	n      int
}

func (g *geo) add(v float64) {
	if v > 0 {
		g.logSum += math.Log(v)
		g.n++
	}
}

func (g *geo) mean() float64 {
	if g.n == 0 {
		return 0
	}
	return math.Exp(g.logSum / float64(g.n))
}

// Run executes cells until completion or ctx cancellation, returning
// the final progress. Cell failures are recorded and counted, not
// fatal; only store I/O errors abort the sweep.
func (r *Runner) Run(ctx context.Context, cells []Cell) (Progress, error) {
	par := r.Parallelism
	if par <= 0 {
		par = 2 * runtime.GOMAXPROCS(0)
	}
	shards := r.ShardCount
	if shards <= 0 {
		shards = 1
	}
	if r.ShardIndex < 0 || r.ShardIndex >= shards {
		return Progress{State: StateFailed}, fmt.Errorf("sweep: shard %d out of range 0..%d", r.ShardIndex, shards-1)
	}

	var mine []Cell
	for _, c := range cells {
		if c.Index%shards == r.ShardIndex {
			mine = append(mine, c)
		}
	}

	var (
		mu   sync.Mutex
		prog = Progress{State: StateRunning, Total: len(mine)}
		gm   geo
	)
	// notify delivers a snapshot while holding mu, so observers see
	// monotonically advancing progress (no reordered deliveries).
	notify := func() {
		if r.OnProgress == nil {
			return
		}
		mu.Lock()
		snap := prog
		snap.GeoMeanIPC = gm.mean()
		r.OnProgress(snap)
		mu.Unlock()
	}

	// Resume: cells already completed on disk are skipped, their IPCs
	// seeding the running geomean.
	completed := r.Store.Completed()
	var todo []Cell
	for _, c := range mine {
		if ipc, ok := completed[c.Key()]; ok {
			prog.Done++
			prog.Skipped++
			gm.add(ipc)
			continue
		}
		todo = append(todo, c)
	}
	notify()

	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, par)
		storeErr error
	)
loop:
	for _, c := range todo {
		mu.Lock()
		broken := storeErr != nil
		mu.Unlock()
		if broken {
			break
		}
		// Acquire the submission slot and the cancellation signal
		// together, so a cancel arriving while blocked on a full
		// semaphore does not launch one more cell.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break loop
		}
		if ctx.Err() != nil {
			<-sem
			break
		}
		wg.Add(1)
		go func(c Cell) {
			defer wg.Done()
			defer func() { <-sem }()
			rec := r.runCell(c)
			err := r.Store.Append(rec)
			mu.Lock()
			prog.Executed++
			if err != nil {
				if storeErr == nil {
					storeErr = err
				}
			} else if rec.Status == StatusOK {
				prog.Done++
				gm.add(rec.IPC)
			} else {
				prog.Failed++
			}
			mu.Unlock()
			notify()
		}(c)
	}
	wg.Wait()

	mu.Lock()
	switch {
	case storeErr != nil:
		prog.State = StateFailed
		prog.Error = storeErr.Error()
	case ctx.Err() != nil && prog.Done+prog.Failed < prog.Total:
		prog.State = StateCancelled
	default:
		prog.State = StateDone
	}
	prog.GeoMeanIPC = gm.mean()
	final := prog
	err := storeErr
	mu.Unlock()
	if r.OnProgress != nil {
		r.OnProgress(final)
	}
	return final, err
}

// runCell executes one cell through the engine and shapes the record.
func (r *Runner) runCell(c Cell) CellRecord {
	rec := CellRecord{
		Key:    c.Key(),
		Index:  c.Index,
		Bench:  c.Bench,
		Sched:  c.Sched,
		Config: c.Config,
	}
	start := time.Now()
	payload, source, err := r.Engine.Run(c.Spec)
	rec.Elapsed = time.Since(start).Milliseconds()
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
		return rec
	}
	rec.Status = StatusOK
	rec.Source = string(source)
	rec.Result = payload
	var cell harness.CellResult
	if json.Unmarshal(payload, &cell) == nil {
		rec.IPC = cell.IPC
	}
	return rec
}
