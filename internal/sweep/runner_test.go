package sweep

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

// fakeEngine builds an engine whose executor fabricates a CellResult
// instead of simulating, so runner tests are instant. Simulations()
// still counts real executions — the cell-execution counter the
// resume tests assert on.
func fakeEngine(delay time.Duration) *service.Engine {
	return service.NewEngine(service.Config{
		Workers: 4,
		Run: func(spec service.Spec) ([]byte, error) {
			if delay > 0 {
				time.Sleep(delay)
			}
			return json.Marshal(harness.CellResult{Bench: spec.Bench, Sched: spec.Sched, IPC: 2})
		},
	})
}

func eightCells(t *testing.T) (Spec, []Cell) {
	t.Helper()
	spec := Spec{
		Name: "r",
		Axes: Axes{
			Schedulers: []string{"GTO", "CCWS"},
			Benchmarks: []string{"SYRK", "ATAX", "BICG", "KMN"},
		},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("got %d cells", len(cells))
	}
	return spec, cells
}

func TestRunnerCompletes(t *testing.T) {
	spec, cells := eightCells(t)
	st, err := Create(filepath.Join(t.TempDir(), "s"), "id", spec, len(cells))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng := fakeEngine(0)
	final, err := (&Runner{Engine: eng, Store: st}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Done != 8 || final.Failed != 0 || final.Executed != 8 {
		t.Fatalf("final = %+v", final)
	}
	if final.GeoMeanIPC < 1.99 || final.GeoMeanIPC > 2.01 {
		t.Errorf("geomean = %f, want 2", final.GeoMeanIPC)
	}
	if got := eng.Simulations(); got != 8 {
		t.Errorf("simulations = %d, want 8", got)
	}
}

func TestRunnerResumeAfterCancel(t *testing.T) {
	spec, cells := eightCells(t)
	dir := filepath.Join(t.TempDir(), "s")
	st, err := Create(dir, "id", spec, len(cells))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: cancel once three cells completed (sequential, so at
	// most one more cell can slip through in flight).
	eng1 := fakeEngine(0)
	ctx, cancel := context.WithCancel(context.Background())
	r1 := &Runner{
		Engine:      eng1,
		Store:       st,
		Parallelism: 1,
		OnProgress: func(p Progress) {
			if p.Done >= 3 {
				cancel()
			}
		},
	}
	partial, err := r1.Run(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if partial.State != StateCancelled {
		t.Fatalf("state = %q, want cancelled", partial.State)
	}
	if partial.Done < 3 || partial.Done >= 8 {
		t.Fatalf("done = %d, want a strict partial run", partial.Done)
	}
	if got := int(eng1.Simulations()); got != partial.Executed {
		t.Fatalf("phase-1 executed %d cells but engine ran %d", partial.Executed, got)
	}

	// Phase 2: a fresh process resumes and executes only the rest.
	st2, err := Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng2 := fakeEngine(0)
	final, err := (&Runner{Engine: eng2, Store: st2}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Done != 8 {
		t.Fatalf("final = %+v", final)
	}
	if final.Skipped != partial.Done {
		t.Errorf("resumed run skipped %d cells, want %d", final.Skipped, partial.Done)
	}
	want := 8 - partial.Done
	if got := int(eng2.Simulations()); got != want {
		t.Errorf("resumed run executed %d cells, want %d", got, want)
	}
	if final.GeoMeanIPC < 1.99 || final.GeoMeanIPC > 2.01 {
		t.Errorf("resumed geomean = %f, want 2 (skipped IPCs must seed it)", final.GeoMeanIPC)
	}
}

func TestRunnerShards(t *testing.T) {
	spec, cells := eightCells(t)
	base := t.TempDir()
	keys := map[string]int{}
	for shard := 0; shard < 2; shard++ {
		st, err := Create(filepath.Join(base, string(rune('a'+shard))), "id", spec, len(cells))
		if err != nil {
			t.Fatal(err)
		}
		eng := fakeEngine(0)
		final, err := (&Runner{Engine: eng, Store: st, Indexes: ShardIndexes(len(cells), shard, 2)}).Run(context.Background(), cells)
		if err != nil {
			t.Fatal(err)
		}
		if final.Total != 4 || final.Done != 4 {
			t.Fatalf("shard %d: %+v", shard, final)
		}
		for k := range st.Completed() {
			keys[k]++
		}
		st.Close()
	}
	if len(keys) != 8 {
		t.Fatalf("shards covered %d distinct cells, want 8", len(keys))
	}
	for k, n := range keys {
		if n != 1 {
			t.Errorf("cell %s ran in %d shards", k, n)
		}
	}
}

// TestEmptyShardRunsNothing pins the explicit-index-set semantics: a
// shard with no cells (more shards than cells) must run zero cells,
// not fall back to "nil means everything".
func TestEmptyShardRunsNothing(t *testing.T) {
	spec, cells := eightCells(t)
	idx := ShardIndexes(len(cells), 8, 9) // shard 8 of 9 over 8 cells
	if idx == nil || len(idx) != 0 {
		t.Fatalf("ShardIndexes = %#v, want empty non-nil", idx)
	}
	st, err := Create(filepath.Join(t.TempDir(), "s"), "id", spec, len(cells))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng := fakeEngine(0)
	final, err := (&Runner{Engine: eng, Store: st, Indexes: idx}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Total != 0 || final.Executed != 0 {
		t.Fatalf("empty shard final = %+v, want zero cells", final)
	}
	if got := eng.Simulations(); got != 0 {
		t.Errorf("empty shard ran %d simulations", got)
	}
}

func TestRunnerRecordsFailures(t *testing.T) {
	spec, cells := eightCells(t)
	st, err := Create(filepath.Join(t.TempDir(), "s"), "id", spec, len(cells))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng := service.NewEngine(service.Config{
		Workers: 2,
		Run: func(spec service.Spec) ([]byte, error) {
			if spec.Bench == "KMN" {
				return nil, context.DeadlineExceeded
			}
			return json.Marshal(harness.CellResult{IPC: 1})
		},
	})
	final, err := (&Runner{Engine: eng, Store: st}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Failed != 2 || final.Done != 6 {
		t.Fatalf("final = %+v", final)
	}
}
