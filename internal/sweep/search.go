package sweep

import (
	"context"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/harness"
)

// Search switches a sweep from a static configuration grid to an
// iterative successive-halving refinement: numeric override parameters
// declare ranges instead of point lists, the first round samples a
// coarse grid across the whole range box, and each later round keeps
// the top-k scoring configuration points, halves the region around
// each, and resamples. Every round expands into ordinary Cells that
// execute through the normal store/runner (or coordinator) path, so a
// search is as resumable and distributable as a plain sweep — and the
// next round is a pure function of the spec plus the settled results,
// which is what makes a killed search re-derive identically on resume.
type Search struct {
	// Algo names the refinement strategy; "halving" (the default) is
	// the only one.
	Algo string `json:"algo,omitempty"`
	// Axes are the searched parameter ranges (1..4 of them).
	Axes []RangeAxis `json:"axes"`
	// Rounds is the number of refinement rounds (default 3, max 8).
	Rounds int `json:"rounds,omitempty"`
	// TopK is how many scoring points survive each round and spawn
	// half-width child regions (default 2, max 32).
	TopK int `json:"top_k,omitempty"`
	// Grid is the per-axis sample count inside each region (default 3,
	// 2..9), endpoints included.
	Grid int `json:"grid,omitempty"`
	// Objective ranks configuration points: "geomean_ipc" (default),
	// "mean_ipc" or "min_ipc" over the point's successful cells.
	Objective string `json:"objective,omitempty"`
}

// RangeAxis is one searched parameter range. Param names a numeric
// harness.Override field by its JSON tag (e.g. "mshr_entries",
// "ciao_high_cutoff"). Sampled values snap to the parameter's
// legality grid — integers round, warps_per_sm rounds to multiples of
// 8, Pow2 axes round to powers of two — so every derived cell is a
// valid machine by construction.
type RangeAxis struct {
	Param string  `json:"param"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Log samples (and subdivides) the range in log2 space — the right
	// scale for multiplicative parameters like cutoffs.
	Log bool `json:"log,omitempty"`
	// Pow2 restricts samples to powers of two (implies log-space
	// sampling); Min and Max must themselves be powers of two.
	Pow2 bool `json:"pow2,omitempty"`
}

// Search objectives.
const (
	ObjectiveGeoMeanIPC = "geomean_ipc"
	ObjectiveMeanIPC    = "mean_ipc"
	ObjectiveMinIPC     = "min_ipc"
)

// Search bounds. They cap the static worst case — every round issuing
// topk full child grids — against the sweep's max_cells before
// anything runs.
const (
	maxSearchAxes   = 4
	maxSearchRounds = 8
	maxSearchTopK   = 32
	minSearchGrid   = 2
	maxSearchGrid   = 9
)

// searchParam describes how one Override field is sampled: integer
// parameters snap to their step (1 unless noted), float ones sample
// continuously.
type searchParam struct {
	integer bool
	step    float64 // snap multiple for integer params (0 = 1)
	set     func(*harness.Override, float64)
}

// searchParams registers the Override fields a RangeAxis may name, by
// JSON tag. warps_per_sm steps by the CTA size the whole suite uses;
// everything else steps by 1.
var searchParams = map[string]searchParam{
	"l1_size_kb":       {integer: true, set: func(o *harness.Override, v float64) { o.L1SizeKB = int(math.Round(v)) }},
	"l1_ways":          {integer: true, set: func(o *harness.Override, v float64) { o.L1Ways = int(math.Round(v)) }},
	"shared_mem_kb":    {integer: true, set: func(o *harness.Override, v float64) { o.SharedMemKB = int(math.Round(v)) }},
	"warps_per_sm":     {integer: true, step: 8, set: func(o *harness.Override, v float64) { o.WarpsPerSM = int(math.Round(v)) }},
	"vta_entries":      {integer: true, set: func(o *harness.Override, v float64) { o.VTAEntriesPerWarp = int(math.Round(v)) }},
	"mshr_entries":     {integer: true, set: func(o *harness.Override, v float64) { o.MSHREntries = int(math.Round(v)) }},
	"dram_bandwidth_x": {integer: true, set: func(o *harness.Override, v float64) { o.DRAMBandwidthX = int(math.Round(v)) }},
	"ciao_high_epoch":  {integer: true, set: func(o *harness.Override, v float64) { o.CIAOHighEpoch = uint64(math.Round(v)) }},
	"ciao_high_cutoff": {set: func(o *harness.Override, v float64) { o.CIAOHighCutoff = v }},
	"ciao_low_cutoff":  {set: func(o *harness.Override, v float64) { o.CIAOLowCutoff = v }},
}

// SearchParams lists the parameter names a RangeAxis may use, sorted.
func SearchParams() []string {
	out := make([]string, 0, len(searchParams))
	for k := range searchParams {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// searchAxis is a compiled RangeAxis: its parameter entry plus the
// sampling-space bounds.
type searchAxis struct {
	RangeAxis
	p searchParam
}

// logSpace reports whether the axis samples in log2 space.
func (a searchAxis) logSpace() bool { return a.Log || a.Pow2 }

// t maps a parameter value into sampling space; v inverts it.
func (a searchAxis) t(v float64) float64 {
	if a.logSpace() {
		return math.Log2(v)
	}
	return v
}

func (a searchAxis) v(t float64) float64 {
	if a.logSpace() {
		return math.Exp2(t)
	}
	return t
}

// snap rounds a raw sample onto the parameter's legality grid and
// clamps it into [Min, Max]. Snapping is monotone, so ascending raw
// samples stay ascending (duplicates collapse in sampleRegion).
func (a searchAxis) snap(v float64) float64 {
	if a.Pow2 {
		e := math.Round(math.Log2(v))
		if lo := math.Log2(a.Min); e < lo {
			e = lo
		}
		if hi := math.Log2(a.Max); e > hi {
			e = hi
		}
		return math.Exp2(e)
	}
	if a.p.integer {
		step := a.p.step
		if step <= 0 {
			step = 1
		}
		v = math.Round(v/step) * step
	}
	if v < a.Min {
		v = a.Min
	}
	if v > a.Max {
		v = a.Max
	}
	return v
}

// format renders one snapped value the way point signatures (and
// therefore config names) spell it.
func (a searchAxis) format(v float64) string {
	if a.p.integer {
		return strconv.FormatInt(int64(math.Round(v)), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// span is one axis's interval in sampling space.
type span struct{ lo, hi float64 }

// searchSpace is a validated, default-applied search compilation.
type searchSpace struct {
	rounds, topk, grid int
	objective          string
	axes               []searchAxis
	benches, scheds    []string
}

// compileSearch validates s.Search against the spec and applies
// defaults. It resolves the benchmark/scheduler axes eagerly so the
// worst-case cell count is checkable up front.
func (s Spec) compileSearch() (*searchSpace, error) {
	se := s.Search
	fail := func(format string, args ...any) error {
		return fmt.Errorf("sweep %s: search: "+format, append([]any{s.Name}, args...)...)
	}
	if se.Algo != "" && se.Algo != "halving" {
		return nil, fail("unknown algo %q (want \"halving\")", se.Algo)
	}
	if len(s.Axes.Configs) > 0 || len(s.Points) > 0 {
		return nil, fail("a search derives its own configuration points; drop axes.configs and points")
	}
	ss := &searchSpace{
		rounds:    se.Rounds,
		topk:      se.TopK,
		grid:      se.Grid,
		objective: se.Objective,
	}
	if ss.rounds == 0 {
		ss.rounds = 3
	}
	if ss.topk == 0 {
		ss.topk = 2
	}
	if ss.grid == 0 {
		ss.grid = 3
	}
	if ss.objective == "" {
		ss.objective = ObjectiveGeoMeanIPC
	}
	if ss.rounds < 1 || ss.rounds > maxSearchRounds {
		return nil, fail("rounds %d outside [1,%d]", ss.rounds, maxSearchRounds)
	}
	if ss.topk < 1 || ss.topk > maxSearchTopK {
		return nil, fail("top_k %d outside [1,%d]", ss.topk, maxSearchTopK)
	}
	if ss.grid < minSearchGrid || ss.grid > maxSearchGrid {
		return nil, fail("grid %d outside [%d,%d]", ss.grid, minSearchGrid, maxSearchGrid)
	}
	switch ss.objective {
	case ObjectiveGeoMeanIPC, ObjectiveMeanIPC, ObjectiveMinIPC:
	default:
		return nil, fail("unknown objective %q (want %s, %s or %s)",
			ss.objective, ObjectiveGeoMeanIPC, ObjectiveMeanIPC, ObjectiveMinIPC)
	}
	if len(se.Axes) == 0 || len(se.Axes) > maxSearchAxes {
		return nil, fail("%d axes outside [1,%d]", len(se.Axes), maxSearchAxes)
	}
	seen := map[string]bool{}
	for _, ra := range se.Axes {
		p, ok := searchParams[ra.Param]
		if !ok {
			return nil, fail("unknown param %q (want one of %s)", ra.Param, strings.Join(SearchParams(), ", "))
		}
		if seen[ra.Param] {
			return nil, fail("param %q repeated", ra.Param)
		}
		seen[ra.Param] = true
		if !(ra.Min > 0) || !(ra.Max >= ra.Min) {
			return nil, fail("param %q range [%g,%g] must satisfy 0 < min <= max", ra.Param, ra.Min, ra.Max)
		}
		if ra.Pow2 {
			if !p.integer {
				return nil, fail("param %q is not an integer; pow2 does not apply", ra.Param)
			}
			if !isPow2(ra.Min) || !isPow2(ra.Max) {
				return nil, fail("param %q pow2 bounds [%g,%g] must be powers of two", ra.Param, ra.Min, ra.Max)
			}
		}
		if p.integer {
			step := p.step
			if step <= 0 {
				step = 1
			}
			if !onStep(ra.Min, step) || !onStep(ra.Max, step) {
				return nil, fail("param %q bounds [%g,%g] must be multiples of %g", ra.Param, ra.Min, ra.Max, step)
			}
		}
		ss.axes = append(ss.axes, searchAxis{RangeAxis: ra, p: p})
	}
	benches, err := s.Axes.benches()
	if err != nil {
		return nil, err
	}
	scheds, err := s.Axes.scheds()
	if err != nil {
		return nil, err
	}
	ss.benches, ss.scheds = benches, scheds

	// Static worst case: round 0 samples one full grid, each later
	// round at most topk of them; every point crosses benches × scheds.
	perRegion := int64(1)
	for range ss.axes {
		perRegion *= int64(ss.grid)
	}
	worst := perRegion * (1 + int64(ss.rounds-1)*int64(ss.topk)) * int64(len(benches)) * int64(len(scheds))
	if max := int64(s.maxCells()); worst > max {
		return nil, fail("worst case %d cells (%d rounds × top_k %d × grid %d^%d axes × %d benches × %d scheds) exceeds the cap of %d; raise max_cells or shrink the search",
			worst, ss.rounds, ss.topk, ss.grid, len(ss.axes), len(benches), len(scheds), max)
	}
	return ss, nil
}

func isPow2(v float64) bool {
	n := int64(math.Round(v))
	return v == float64(n) && n > 0 && n&(n-1) == 0
}

func onStep(v, step float64) bool {
	q := math.Round(v / step)
	return v == q*step
}

// sig renders a point's canonical signature, the config name its cells
// carry: "param=value,..." in axis order.
func (ss *searchSpace) sig(pt []float64) string {
	var b strings.Builder
	for i, a := range ss.axes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Param)
		b.WriteByte('=')
		b.WriteString(a.format(pt[i]))
	}
	return b.String()
}

// override builds the harness override a point stands for.
func (ss *searchSpace) override(pt []float64) harness.Override {
	var ov harness.Override
	for i, a := range ss.axes {
		a.p.set(&ov, pt[i])
	}
	return ov
}

// sampleRegion samples the region's grid: per axis, grid evenly spaced
// values (endpoints included) snapped to the parameter's legality
// grid, per-axis duplicates collapsed; then the cross product in
// axis-major order.
func sampleRegion(axes []searchAxis, reg []span, grid int) [][]float64 {
	vals := make([][]float64, len(axes))
	for i, a := range axes {
		var vs []float64
		for g := 0; g < grid; g++ {
			t := reg[i].lo
			if grid > 1 {
				t += (reg[i].hi - reg[i].lo) * float64(g) / float64(grid-1)
			}
			v := a.snap(a.v(t))
			if len(vs) == 0 || v != vs[len(vs)-1] {
				vs = append(vs, v)
			}
		}
		vals[i] = vs
	}
	pts := [][]float64{{}}
	for _, vs := range vals {
		var next [][]float64
		for _, pt := range pts {
			for _, v := range vs {
				next = append(next, append(append([]float64(nil), pt...), v))
			}
		}
		pts = next
	}
	return pts
}

// PointScore ranks one configuration point by the search objective.
type PointScore struct {
	// Config is the point's signature — the config name its cells carry
	// in records and stores.
	Config string `json:"config"`
	// Values are the point's snapped parameter values.
	Values map[string]float64 `json:"values"`
	// Score is the objective over the point's successful cells (0 when
	// none succeeded).
	Score float64 `json:"score"`
	// Cells is how many of the point's cells scored.
	Cells int `json:"cells"`
}

// RoundMark journals one derived search round in the store manifest:
// how many configuration points it sampled, how many cells were new
// (not issued by an earlier round), and the cumulative issued total.
// Resume does not read the marks — the next round re-derives from the
// settled results — they are the durable audit trail of progression.
type RoundMark struct {
	Round       int `json:"round"`
	Points      int `json:"points"`
	NewCells    int `json:"new_cells"`
	TotalIssued int `json:"total_issued"`
}

// SearchPlan is the derivation of a search's current frontier: which
// round is next, its cells, and — once every round has settled — the
// final ranking.
type SearchPlan struct {
	// Round is the 0-based round the plan describes; Rounds the total.
	Round  int
	Rounds int
	// Points is how many configuration points the round samples.
	Points int
	// Issued counts the distinct cells issued through this round.
	Issued int
	// Unsettled counts this round's cells with neither a stored success
	// nor failure (0 once the round — and, on Finished, the search — is
	// settled).
	Unsettled int
	// NewCells are the round's cells not issued by any earlier round —
	// what the round actually executes. Indexes are positions in
	// RoundSpec's expansion, so a distributed worker that re-expands
	// RoundSpec shards consistently.
	NewCells []Cell
	// RoundSpec is a self-contained plain (non-search) spec whose
	// expansion reproduces the round's full cell list — the spec a
	// coordinator leases to workers.
	RoundSpec Spec
	// PriorDone/PriorFailed count settled outcomes among cells issued
	// by earlier rounds, for cumulative progress accounting.
	PriorDone   int
	PriorFailed int
	// Finished is set once every round has settled; Winners then ranks
	// the final round's points (top_k of them), and Done/Failed/
	// FinalGeo summarise every issued cell.
	Finished bool
	Winners  []PointScore
	Done     int
	Failed   int
	FinalGeo float64
}

// Mark shapes the plan's manifest round mark.
func (p *SearchPlan) Mark() RoundMark {
	return RoundMark{Round: p.Round, Points: p.Points, NewCells: len(p.NewCells), TotalIssued: p.Issued}
}

// fold lifts a round-local progress snapshot into search-wide terms:
// round counters, the cumulative issued total, and settled outcomes of
// earlier rounds. Prior successes also count as Skipped — like a
// resumed cell, they come from the store, not from this round's
// execution — which keeps observers' done-minus-skipped differencing
// exact across round boundaries.
func (p *SearchPlan) fold(pr Progress) Progress {
	pr.Round = p.Round + 1
	pr.Rounds = p.Rounds
	pr.Total = p.Issued
	pr.Done += p.PriorDone
	pr.Skipped += p.PriorDone
	pr.Failed += p.PriorFailed
	return pr
}

// Decorate wraps a round's progress observer with fold, mapping a
// round's terminal done states back to running — one round finishing
// is not the search finishing; RunSearch delivers the true final.
func (p *SearchPlan) Decorate(obs func(Progress)) func(Progress) {
	if obs == nil {
		return nil
	}
	return func(pr Progress) {
		pr = p.fold(pr)
		if pr.State == StateDone || pr.State == StateDoneQuarantined {
			pr.State = StateRunning
		}
		obs(pr)
	}
}

// finalProgress shapes the terminal snapshot of a finished search.
func (p *SearchPlan) finalProgress() Progress {
	return Progress{
		State:      StateDone,
		Total:      p.Issued,
		Done:       p.Done,
		Failed:     p.Failed,
		GeoMeanIPC: p.FinalGeo,
		Round:      p.Rounds,
		Rounds:     p.Rounds,
		Winners:    p.Winners,
	}
}

// rankedPoint pairs a public score with its sample index.
type rankedPoint struct {
	PointScore
	i int
}

// DeriveSearch derives the search frontier as a pure function of the
// spec and the settled results (a store's Completed and FailedCells
// sets): it replays round sampling from round 0, scoring and
// subdividing each fully settled round, and returns either the first
// round with unsettled cells or the finished ranking. Equal inputs
// derive equal plans byte for byte — the property crash-resume and
// distributed re-expansion both lean on. Both maps may be nil.
func (s Spec) DeriveSearch(completed map[string]float64, failed map[string]struct{}) (*SearchPlan, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("sweep: spec needs a name")
	}
	if s.Search == nil {
		return nil, fmt.Errorf("sweep %s: no search clause", s.Name)
	}
	ss, err := s.compileSearch()
	if err != nil {
		return nil, err
	}

	full := make([]span, len(ss.axes))
	for i, a := range ss.axes {
		full[i] = span{a.t(a.Min), a.t(a.Max)}
	}
	regions := [][]span{full}

	plan := &SearchPlan{Rounds: ss.rounds}
	seen := map[string]bool{}
	issued := 0
	priorDone, priorFailed := 0, 0
	var priorGeo Geo

	for r := 0; r < ss.rounds; r++ {
		// Sample every region; points that snap onto an already sampled
		// signature collapse (first region wins — regions arrive in
		// score order, so the better parent keeps the point).
		var (
			pts     [][]float64
			sigs    []string
			ptReg   []int
			sigSeen = map[string]bool{}
		)
		for ri, reg := range regions {
			for _, pt := range sampleRegion(ss.axes, reg, ss.grid) {
				sg := ss.sig(pt)
				if sigSeen[sg] {
					continue
				}
				sigSeen[sg] = true
				pts = append(pts, pt)
				sigs = append(sigs, sg)
				ptReg = append(ptReg, ri)
			}
		}
		configs := make([]Config, len(pts))
		for i := range pts {
			configs[i] = Config{Name: sigs[i], Override: ss.override(pts[i])}
		}
		roundSpec := Spec{
			Name:     fmt.Sprintf("%s/round%d", s.Name, r),
			Axes:     Axes{Schedulers: ss.scheds, Benchmarks: ss.benches, Configs: configs},
			Options:  s.Options,
			MaxCells: s.MaxCells,
			Requires: s.Requires,
		}
		roundCells, err := roundSpec.Expand()
		if err != nil {
			return nil, fmt.Errorf("sweep %s: search round %d: %w", s.Name, r, err)
		}

		var newCells []Cell
		unsettled := 0
		for _, c := range roundCells {
			key := c.Key()
			if !seen[key] {
				seen[key] = true
				issued++
				newCells = append(newCells, c)
			}
			if _, ok := completed[key]; ok {
				continue
			}
			if _, ok := failed[key]; ok {
				continue
			}
			unsettled++
		}
		plan.Round, plan.Points, plan.Issued = r, len(pts), issued
		plan.RoundSpec, plan.NewCells = roundSpec, newCells
		plan.PriorDone, plan.PriorFailed = priorDone, priorFailed
		if unsettled > 0 {
			plan.Unsettled = unsettled
			return plan, nil
		}

		// The round has settled: rank its points by the objective over
		// their successful cells.
		byConfig := map[string][]float64{}
		counted := map[string]bool{}
		for _, c := range roundCells {
			key := c.Key()
			// A key shared by several points scores for each, but only
			// once per (config, key) pair — Expand already deduped those.
			if ipc, ok := completed[key]; ok && !counted[c.Config+"\x00"+key] {
				counted[c.Config+"\x00"+key] = true
				byConfig[c.Config] = append(byConfig[c.Config], ipc)
			}
		}
		ranked := make([]rankedPoint, len(pts))
		for i := range pts {
			ipcs := byConfig[sigs[i]]
			vals := make(map[string]float64, len(ss.axes))
			for ai, a := range ss.axes {
				vals[a.Param] = pts[i][ai]
			}
			ranked[i] = rankedPoint{
				PointScore: PointScore{
					Config: sigs[i],
					Values: vals,
					Score:  objectiveScore(ss.objective, ipcs),
					Cells:  len(ipcs),
				},
				i: i,
			}
		}
		sortRanked(ranked)

		for _, c := range newCells {
			if ipc, ok := completed[c.Key()]; ok {
				priorDone++
				priorGeo.Add(ipc)
			} else {
				priorFailed++
			}
		}

		if r == ss.rounds-1 {
			top := ss.topk
			if top > len(ranked) {
				top = len(ranked)
			}
			plan.Finished = true
			plan.Winners = make([]PointScore, top)
			for i := 0; i < top; i++ {
				plan.Winners[i] = ranked[i].PointScore
			}
			plan.Done, plan.Failed = priorDone, priorFailed
			plan.FinalGeo = priorGeo.Mean()
			plan.PriorDone, plan.PriorFailed = priorDone, priorFailed
			return plan, nil
		}

		// Halve: each winner spawns a child region of half its parent's
		// width, centred on the winning point, clamped to the axis box.
		top := ss.topk
		if top > len(ranked) {
			top = len(ranked)
		}
		next := make([][]span, 0, top)
		for _, w := range ranked[:top] {
			parent := regions[ptReg[w.i]]
			child := make([]span, len(ss.axes))
			for ai, a := range ss.axes {
				width := parent[ai].hi - parent[ai].lo
				c := a.t(pts[w.i][ai])
				lo, hi := c-width/4, c+width/4
				if lo < full[ai].lo {
					lo = full[ai].lo
				}
				if hi > full[ai].hi {
					hi = full[ai].hi
				}
				child[ai] = span{lo, hi}
			}
			next = append(next, child)
		}
		regions = next
	}
	// Unreachable: the loop returns from its final round.
	return nil, fmt.Errorf("sweep %s: search derived no plan", s.Name)
}

// objectiveScore folds a point's successful-cell IPCs by objective.
func objectiveScore(objective string, ipcs []float64) float64 {
	if len(ipcs) == 0 {
		return 0
	}
	switch objective {
	case ObjectiveMeanIPC:
		sum := 0.0
		for _, v := range ipcs {
			sum += v
		}
		return sum / float64(len(ipcs))
	case ObjectiveMinIPC:
		min := ipcs[0]
		for _, v := range ipcs[1:] {
			if v < min {
				min = v
			}
		}
		return min
	default:
		var g Geo
		for _, v := range ipcs {
			g.Add(v)
		}
		return g.Mean()
	}
}

// sortRanked orders points by score descending, signature ascending —
// a total, deterministic order (insertion sort keeps it dependency-
// free; point counts are small).
func sortRanked(r []rankedPoint) {
	less := func(a, b rankedPoint) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Config < b.Config
	}
	for i := 1; i < len(r); i++ {
		for j := i; j > 0 && less(r[j], r[j-1]); j-- {
			r[j], r[j-1] = r[j-1], r[j]
		}
	}
}

// RoundRunner executes one derived round's new cells to a terminal
// Progress — a local Runner over plan.NewCells, or one distributed
// coordinator round over plan.RoundSpec.
type RoundRunner func(ctx context.Context, plan *SearchPlan) (Progress, error)

// RunSearch drives a halving search to completion against its store:
// derive the frontier, journal the round mark, execute the round
// through run, repeat. It returns the search-wide final progress
// (Winners populated on success). A round ending cancelled or failed
// stops the loop with that (folded) progress — re-running RunSearch
// against the same store resumes exactly where it stopped, because
// derivation reads only settled results.
func RunSearch(ctx context.Context, spec Spec, store *Store, run RoundRunner) (Progress, error) {
	if spec.Search == nil {
		err := fmt.Errorf("sweep %s: RunSearch needs a spec with a search clause", spec.Name)
		return Progress{State: StateFailed, Error: err.Error()}, err
	}
	prevRound, prevUnsettled := -1, 0
	for {
		plan, err := spec.DeriveSearch(store.Completed(), store.FailedCells())
		if err != nil {
			return Progress{State: StateFailed, Error: err.Error()}, err
		}
		if plan.Finished {
			// The final round's mark may not be journaled yet (it can
			// settle without issuing any new cell); complete the audit
			// trail, then stamp the search done.
			if err := store.MarkSearchRound(plan.Mark()); err != nil {
				return Progress{State: StateFailed, Error: err.Error()}, err
			}
			if err := store.MarkSearchDone(); err != nil {
				return Progress{State: StateFailed, Error: err.Error()}, err
			}
			return plan.finalProgress(), nil
		}
		// A completed round must shrink its unsettled set, or the loop
		// would spin forever on cells that can neither complete nor fail
		// (a quarantined shard, a shard index mismatch).
		if plan.Round == prevRound && plan.Unsettled >= prevUnsettled {
			err := fmt.Errorf("sweep %s: search round %d did not settle (%d cell(s) still pending)",
				spec.Name, plan.Round, plan.Unsettled)
			final := plan.fold(Progress{State: StateFailed})
			final.Error = err.Error()
			return final, err
		}
		prevRound, prevUnsettled = plan.Round, plan.Unsettled
		if err := store.MarkSearchRound(plan.Mark()); err != nil {
			return Progress{State: StateFailed, Error: err.Error()}, err
		}
		final, err := run(ctx, plan)
		final = plan.fold(final)
		if err != nil {
			if final.Error == "" {
				final.Error = err.Error()
			}
			return final, err
		}
		if final.State != StateDone {
			// Cancelled, quarantined or failed: stop with the folded
			// snapshot; the search resumes from here on the next run.
			return final, nil
		}
	}
}

// roundIDSuffix matches the ".r<round>.<attempt>" suffix a distributed
// search round appends to its sweep id.
var roundIDSuffix = regexp.MustCompile(`\.r\d+\.\d+$`)

// baseSearchID strips a distributed search round's id suffix,
// returning the run's base sweep id (ids without the suffix pass
// through).
func baseSearchID(id string) string { return roundIDSuffix.ReplaceAllString(id, "") }
