package sweep

import (
	"context"
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

// searchEngine fabricates results whose IPC depends on the cell's MSHR
// override — peaked at 32 entries — so a halving search over
// mshr_entries has a well-defined optimum to converge to.
func searchEngine() *service.Engine {
	return service.NewEngine(service.Config{
		Workers: 4,
		Run: func(spec service.Spec) ([]byte, error) {
			ipc := 1.0
			if spec.Config != nil && spec.Config.MSHREntries > 0 {
				ipc = 2 - math.Abs(math.Log2(float64(spec.Config.MSHREntries))-5)/4
			}
			return json.Marshal(harness.CellResult{Bench: spec.Bench, Sched: spec.Sched, IPC: ipc})
		},
	})
}

// searchSpec is the shared tiny search: one scheduler × one benchmark
// × a pow2 MSHR axis, three rounds of three samples keeping one
// winner. Round 0 samples {8,32,128}; the engine's peak at 32 pulls
// the refinement there by round 1.
func searchSpec(name string) Spec {
	return Spec{
		Name: name,
		Axes: Axes{
			Schedulers: []string{"GTO"},
			Benchmarks: []string{"SYRK"},
		},
		Search: &Search{
			Axes:   []RangeAxis{{Param: "mshr_entries", Min: 8, Max: 128, Pow2: true}},
			Rounds: 3,
			TopK:   1,
			Grid:   3,
		},
	}
}

func TestSearchValidation(t *testing.T) {
	base := func() Spec { return searchSpec("v") }
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown algo", func(s *Spec) { s.Search.Algo = "grid" }, "unknown algo"},
		{"no axes", func(s *Spec) { s.Search.Axes = nil }, "axes outside"},
		{"too many axes", func(s *Spec) {
			s.Search.Axes = []RangeAxis{
				{Param: "l1_size_kb", Min: 16, Max: 64}, {Param: "l1_ways", Min: 2, Max: 8},
				{Param: "mshr_entries", Min: 8, Max: 64}, {Param: "vta_entries", Min: 4, Max: 16},
				{Param: "dram_bandwidth_x", Min: 1, Max: 4},
			}
		}, "axes outside"},
		{"unknown param", func(s *Spec) { s.Search.Axes[0].Param = "warp_size" }, "unknown param"},
		{"dup param", func(s *Spec) {
			s.Search.Axes = append(s.Search.Axes, RangeAxis{Param: "mshr_entries", Min: 4, Max: 8, Pow2: true})
		}, "repeated"},
		{"non-positive min", func(s *Spec) { s.Search.Axes[0].Min = 0 }, "0 < min"},
		{"min above max", func(s *Spec) { s.Search.Axes[0].Min = 256 }, "0 < min <= max"},
		{"pow2 float param", func(s *Spec) {
			s.Search.Axes[0] = RangeAxis{Param: "ciao_high_cutoff", Min: 0.25, Max: 0.5, Pow2: true}
		}, "not an integer"},
		{"pow2 bad bounds", func(s *Spec) { s.Search.Axes[0].Max = 48 }, "powers of two"},
		{"step violation", func(s *Spec) {
			s.Search.Axes[0] = RangeAxis{Param: "warps_per_sm", Min: 12, Max: 48}
		}, "multiples of 8"},
		{"rounds out of range", func(s *Spec) { s.Search.Rounds = 9 }, "rounds 9"},
		{"topk out of range", func(s *Spec) { s.Search.TopK = -1 }, "top_k -1"},
		{"grid out of range", func(s *Spec) { s.Search.Grid = 1 }, "grid 1"},
		{"unknown objective", func(s *Spec) { s.Search.Objective = "max_ipc" }, "unknown objective"},
		{"configs clash", func(s *Spec) { s.Axes.Configs = []Config{{Name: "c"}} }, "drop axes.configs"},
		{"points clash", func(s *Spec) { s.Points = []Point{{Bench: "SYRK", Sched: "GTO"}} }, "drop axes.configs"},
		{"cell cap", func(s *Spec) {
			s.Search = &Search{
				Rounds: 8, TopK: 32, Grid: 9,
				Axes: []RangeAxis{
					{Param: "l1_size_kb", Min: 16, Max: 1024}, {Param: "l1_ways", Min: 1, Max: 512},
					{Param: "mshr_entries", Min: 1, Max: 512}, {Param: "vta_entries", Min: 1, Max: 512},
				},
			}
		}, "exceeds the cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want substring %q", err, tc.want)
			}
		})
	}

	// Defaults: zero rounds/top_k/grid/objective/algo are all legal.
	s := base()
	s.Search = &Search{Axes: []RangeAxis{{Param: "warps_per_sm", Min: 8, Max: 48}}}
	if err := s.Validate(); err != nil {
		t.Fatalf("defaulted search rejected: %v", err)
	}
}

func TestSearchRound0SamplingSnapsPow2(t *testing.T) {
	plan, err := searchSpec("snap").DeriveSearch(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Round != 0 || plan.Rounds != 3 || plan.Finished {
		t.Fatalf("plan = round %d/%d finished=%v", plan.Round, plan.Rounds, plan.Finished)
	}
	want := []string{"mshr_entries=8", "mshr_entries=32", "mshr_entries=128"}
	if len(plan.NewCells) != len(want) {
		t.Fatalf("%d round-0 cells, want %d", len(plan.NewCells), len(want))
	}
	for i, c := range plan.NewCells {
		if c.Config != want[i] {
			t.Errorf("cell %d config = %q, want %q", i, c.Config, want[i])
		}
		if c.Spec.Config == nil || c.Spec.Config.MSHREntries == 0 {
			t.Errorf("cell %d carries no MSHR override", i)
		}
	}
	// The worker contract: re-expanding the round's self-contained spec
	// must reproduce the round cells at matching indexes, or distributed
	// shards would cut against a different grid.
	again, err := plan.RoundSpec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.NewCells {
		if c.Index >= len(again) || again[c.Index].Key() != c.Key() {
			t.Fatalf("round spec expansion disagrees at index %d", c.Index)
		}
	}
	if plan.RoundSpec.Search != nil {
		t.Fatal("round spec must be a plain (non-search) spec")
	}
}

// driveDerivation completes a search purely through DeriveSearch,
// fabricating an IPC per cell key, and returns the per-round config
// signatures plus the final plan.
func driveDerivation(t *testing.T, spec Spec, ipcFor func(string) float64) ([][]string, *SearchPlan) {
	t.Helper()
	completed := map[string]float64{}
	var rounds [][]string
	for i := 0; i < 64; i++ {
		plan, err := spec.DeriveSearch(completed, nil)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Finished {
			return rounds, plan
		}
		var sigs []string
		for _, c := range plan.NewCells {
			sigs = append(sigs, c.Config)
			completed[c.Key()] = ipcFor(c.Key())
		}
		rounds = append(rounds, sigs)
	}
	t.Fatal("derivation did not converge")
	return nil, nil
}

func TestDeriveSearchIsDeterministic(t *testing.T) {
	spec := Spec{
		Name: "det",
		Axes: Axes{Schedulers: []string{"GTO"}, Benchmarks: []string{"SYRK", "ATAX"}},
		Search: &Search{
			Rounds: 3, TopK: 2, Grid: 3,
			Axes: []RangeAxis{
				{Param: "mshr_entries", Min: 8, Max: 64, Pow2: true},
				{Param: "ciao_high_cutoff", Min: 0.006, Max: 0.048, Log: true},
			},
		},
	}
	// Key-hash IPC: arbitrary but fixed, so replay must re-derive the
	// exact same rounds and winners.
	ipcFor := func(key string) float64 { return 1 + float64(key[0])/256 }
	r1, p1 := driveDerivation(t, spec, ipcFor)
	r2, p2 := driveDerivation(t, spec, ipcFor)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("round sigs diverged:\n%v\nvs\n%v", r1, r2)
	}
	if !reflect.DeepEqual(p1.Winners, p2.Winners) {
		t.Fatalf("winners diverged:\n%+v\nvs\n%+v", p1.Winners, p2.Winners)
	}
	if len(p1.Winners) != 2 {
		t.Fatalf("winners = %d, want top 2", len(p1.Winners))
	}
	if p1.Done != p1.Issued || p1.Failed != 0 {
		t.Fatalf("final plan: done %d failed %d of %d issued", p1.Done, p1.Failed, p1.Issued)
	}
}

func TestRunSearchLocalEndToEnd(t *testing.T) {
	spec := searchSpec("e2e")
	dir := filepath.Join(t.TempDir(), "s")
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	store, err := Create(dir, "id", spec, len(cells))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	eng := searchEngine()
	var rounds []int
	final, err := RunSearch(context.Background(), spec, store, func(ctx context.Context, plan *SearchPlan) (Progress, error) {
		rounds = append(rounds, plan.Round)
		return (&Runner{Engine: eng, Store: store}).Run(ctx, plan.NewCells)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Round != 3 || final.Rounds != 3 {
		t.Fatalf("final = %+v", final)
	}
	// Rounds 0 and 1 issue new cells; round 2 (centred on the winner)
	// re-samples only already-seen points and settles without running.
	if !reflect.DeepEqual(rounds, []int{0, 1}) {
		t.Fatalf("executed rounds = %v", rounds)
	}
	if len(final.Winners) != 1 || final.Winners[0].Config != "mshr_entries=32" {
		t.Fatalf("winners = %+v, want mshr_entries=32", final.Winners)
	}
	if got := final.Winners[0].Score; math.Abs(got-2) > 1e-9 {
		t.Errorf("winner score = %v, want 2", got)
	}
	if final.Total != 5 || final.Done != 5 {
		t.Errorf("total/done = %d/%d, want 5/5", final.Total, final.Done)
	}

	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !man.SearchDone {
		t.Error("manifest not stamped search_done")
	}
	wantMarks := []RoundMark{
		{Round: 0, Points: 3, NewCells: 3, TotalIssued: 3},
		{Round: 1, Points: 3, NewCells: 2, TotalIssued: 5},
		{Round: 2, Points: 2, NewCells: 0, TotalIssued: 5},
	}
	if !reflect.DeepEqual(man.SearchRounds, wantMarks) {
		t.Errorf("search rounds = %+v, want %+v", man.SearchRounds, wantMarks)
	}
}

// TestRunSearchResume simulates a kill mid-round: the first RunSearch
// executes half of round 1 and stops; a second full RunSearch against
// the same store must finish the search and end byte-identical to an
// uninterrupted run in a separate directory.
func TestRunSearchResume(t *testing.T) {
	spec := searchSpec("resume")
	eng := searchEngine()
	runDir := func(dir string, interrupt bool) (Progress, error) {
		cells, err := spec.Expand()
		if err != nil {
			t.Fatal(err)
		}
		store, err := Create(dir, "id", spec, len(cells))
		if err != nil {
			store, err = Open(dir, spec)
			if err != nil {
				t.Fatal(err)
			}
		}
		defer store.Close()
		interrupted := false
		return RunSearch(context.Background(), spec, store, func(ctx context.Context, plan *SearchPlan) (Progress, error) {
			if interrupt && plan.Round == 1 && !interrupted {
				interrupted = true
				half := plan.NewCells[:len(plan.NewCells)/2]
				if _, err := (&Runner{Engine: eng, Store: store}).Run(ctx, half); err != nil {
					return Progress{State: StateFailed}, err
				}
				return Progress{State: StateCancelled}, nil
			}
			return (&Runner{Engine: eng, Store: store}).Run(ctx, plan.NewCells)
		})
	}

	brokenDir := filepath.Join(t.TempDir(), "broken")
	cleanDir := filepath.Join(t.TempDir(), "clean")

	first, err := runDir(brokenDir, true)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != StateCancelled || first.Round != 2 {
		t.Fatalf("interrupted run = %+v, want cancelled in round 2/3", first)
	}
	resumed, err := runDir(brokenDir, false)
	if err != nil {
		t.Fatal(err)
	}
	control, err := runDir(cleanDir, false)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.State != StateDone || control.State != StateDone {
		t.Fatalf("states = %s / %s", resumed.State, control.State)
	}
	if !reflect.DeepEqual(resumed.Winners, control.Winners) {
		t.Fatalf("winners diverged: %+v vs %+v", resumed.Winners, control.Winners)
	}

	// The stores must agree cell for cell: same keys, same result
	// bytes, no cell run under a different identity.
	results := func(dir string) map[string]string {
		recs, corrupt, err := ReadRecords(dir)
		if err != nil || corrupt > 0 {
			t.Fatalf("ReadRecords(%s) = corrupt %d, %v", dir, corrupt, err)
		}
		out := map[string]string{}
		for _, rec := range recs {
			if rec.Status == StatusOK {
				out[rec.Key] = string(rec.Result)
			}
		}
		return out
	}
	got, want := results(brokenDir), results(cleanDir)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stores diverged: %d vs %d cells", len(got), len(want))
	}
	manB, _ := readManifest(brokenDir)
	manC, _ := readManifest(cleanDir)
	if !reflect.DeepEqual(manB.SearchRounds, manC.SearchRounds) || !manB.SearchDone {
		t.Fatalf("manifests diverged: %+v vs %+v", manB.SearchRounds, manC.SearchRounds)
	}
}

func TestManagerRunsLocalSearch(t *testing.T) {
	m := NewManager(searchEngine(), t.TempDir(), 0)
	spec := searchSpec("managed")
	run, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-run.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("managed search did not finish")
	}
	final := run.Progress()
	if final.State != StateDone || final.Round != 3 || final.Rounds != 3 {
		t.Fatalf("final = %+v", final)
	}
	if len(final.Winners) != 1 || final.Winners[0].Config != "mshr_entries=32" {
		t.Fatalf("winners = %+v", final.Winners)
	}

	// Re-POSTing the finished spec resumes against the settled store:
	// it must re-derive the same winners without executing anything.
	again, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-again.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("re-POSTed search did not finish")
	}
	re := again.Progress()
	if re.State != StateDone || !reflect.DeepEqual(re.Winners, final.Winners) {
		t.Fatalf("re-run = %+v", re)
	}
}

func TestSearchKeyIgnoresDistribution(t *testing.T) {
	a := searchSpec("k")
	b := searchSpec("k")
	b.Distributed = true
	b.Requires = []string{"bigmem"}
	if a.Key() != b.Key() {
		t.Error("distribution knobs changed the search spec key")
	}
	c := searchSpec("k")
	c.Search.Grid = 5
	if a.Key() == c.Key() {
		t.Error("search parameters must participate in the spec key")
	}
}
