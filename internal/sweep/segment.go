package sweep

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
)

// SegmentsFile is the blob naming the store's committed segment list.
// Writing it (atomically, via Backend.Put) is the commit point of a
// compaction: a segment blob not named here does not exist yet.
const SegmentsFile = "segments.json"

// maxSegmentBytes bounds one segment blob in memory (compressed or
// not). Compaction creates segments far smaller than this; the cap
// protects mirror readers from a garbage peer, not honest use.
const maxSegmentBytes = 256 << 20

// SegmentInfo describes one immutable compacted segment: a verbatim
// byte range of the logical results stream, frozen into a blob.
type SegmentInfo struct {
	// Name is the blob name (seg-000001.ndjson, .ndjson.gz when
	// compressed).
	Name string `json:"name"`
	// Records is how many NDJSON lines the segment holds.
	Records int `json:"records"`
	// Bytes is the uncompressed length — the segment's extent in the
	// logical stream. Offsets into the stream are sums of these, which
	// is what keeps follower positions valid across compactions.
	Bytes int64 `json:"bytes"`
	// Gzip records whether the blob is gzip-compressed.
	Gzip bool `json:"gzip"`
}

// segmentList is the segments.json schema.
type segmentList struct {
	Segments []SegmentInfo `json:"segments"`
}

// loadSegmentList reads the committed segment list; a store that was
// never compacted has none and loads empty.
func loadSegmentList(b Backend) ([]SegmentInfo, error) {
	data, err := b.Get(SegmentsFile)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: read segment list: %w", err)
	}
	var l segmentList
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("sweep: corrupt segment list: %w", err)
	}
	return l.Segments, nil
}

// commitSegmentList atomically replaces the committed segment list —
// the durable commit point of a compaction.
func commitSegmentList(b Backend, segs []SegmentInfo) error {
	data, err := json.MarshalIndent(segmentList{Segments: segs}, "", "  ")
	if err != nil {
		return err
	}
	if err := b.Put(SegmentsFile, append(data, '\n')); err != nil {
		return fmt.Errorf("sweep: commit segment list: %w", err)
	}
	return nil
}

// segmentName formats the blob name for segment index n (1-based).
func segmentName(n int, gzipped bool) string {
	name := fmt.Sprintf("seg-%06d.ndjson", n)
	if gzipped {
		name += ".gz"
	}
	return name
}

// encodeSegment turns a verbatim chunk of the results stream into
// blob bytes, gzip-compressing when asked.
func encodeSegment(data []byte, gzipped bool) ([]byte, error) {
	if !gzipped {
		return data, nil
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// readSegment fetches one segment and returns its uncompressed bytes,
// verified against the manifest's recorded extent — a length mismatch
// means the blob does not match the committed list and must not be
// spliced into the logical stream.
func readSegment(b Backend, seg SegmentInfo) ([]byte, error) {
	blob, err := b.Get(seg.Name)
	if err != nil {
		return nil, fmt.Errorf("sweep: read segment %s: %w", seg.Name, err)
	}
	data := blob
	if seg.Gzip {
		zr, err := gzip.NewReader(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("sweep: read segment %s: %w", seg.Name, err)
		}
		data, err = io.ReadAll(io.LimitReader(zr, maxSegmentBytes+1))
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("sweep: read segment %s: %w", seg.Name, err)
		}
	}
	if int64(len(data)) != seg.Bytes {
		return nil, fmt.Errorf("sweep: segment %s holds %d bytes, manifest says %d", seg.Name, len(data), seg.Bytes)
	}
	return data, nil
}
