// Package sweep is the declarative parameter-sweep engine: a JSON spec
// names axes over schedulers, benchmarks (or whole classes) and machine
// configuration overrides; the cross product (plus any explicit points)
// expands into "run" cells that execute through the service engine, so
// the content-addressed cache and in-flight coalescing apply per cell.
// Results append to an on-disk NDJSON store with a manifest, which is
// what makes a killed sweep resumable: reopening the store yields the
// completed cell set and the runner skips it.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/workload"
)

// Cell-count caps: DefaultMaxCells applies when the spec does not set
// max_cells; MaxCellsCeiling binds even explicit requests so a typo
// cannot enqueue an unbounded grid.
const (
	DefaultMaxCells = 2048
	MaxCellsCeiling = 1 << 16
)

// Config is one point on the configuration axis: a display name plus
// the machine/controller overrides it stands for.
type Config struct {
	// Name labels the configuration in results ("l1-32k"); empty names
	// derive from the position ("cfg0").
	Name string `json:"name,omitempty"`
	// Requires lists capability tags a worker must advertise to run
	// this configuration's cells (on top of the sweep-level Requires).
	// Only distributed sweeps route on it; local runs ignore it.
	Requires []string `json:"requires,omitempty"`
	harness.Override
}

// Point is one explicitly enumerated cell, for sweeps that are not
// full grids.
type Point struct {
	Bench string `json:"bench"`
	Sched string `json:"sched"`
	// Config optionally reshapes this point's machine.
	Config *Config `json:"config,omitempty"`
	// Options override the sweep-level options for this point.
	Options *service.OptionSpec `json:"options,omitempty"`
}

// Axes define a cross product. Empty scheduler/benchmark axes default
// to everything (all seven schedulers, the full 21-benchmark suite);
// an empty config axis is the baseline Table I machine.
type Axes struct {
	// Schedulers axis (names from harness.Schedulers).
	Schedulers []string `json:"schedulers,omitempty"`
	// Benchmarks axis (names from Table II).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Classes adds whole benchmark classes (LWS, SWS, CI) to the
	// benchmark axis.
	Classes []string `json:"classes,omitempty"`
	// Configs axis (machine/controller overrides).
	Configs []Config `json:"configs,omitempty"`
}

// Spec is a declarative sweep: the grid to explore, explicit extra
// points, base simulation options, and a safety cap.
type Spec struct {
	// Name identifies the sweep (used in store manifests and IDs).
	Name string `json:"name"`
	// Axes define the cross product; may be empty when Points is not.
	Axes Axes `json:"axes"`
	// Points appends explicit cells after the grid.
	Points []Point `json:"points,omitempty"`
	// Options apply to every cell (instr budget, seed, sampling).
	Options service.OptionSpec `json:"options,omitempty"`
	// MaxCells caps the expansion (0 = DefaultMaxCells; hard ceiling
	// MaxCellsCeiling).
	MaxCells int `json:"max_cells,omitempty"`
	// Distributed asks the sweep manager to run this sweep through the
	// shard coordinator (worker processes lease shards over /coord)
	// instead of executing cells in-process.
	Distributed bool `json:"distributed,omitempty"`
	// Requires lists capability tags every cell of the sweep demands
	// of its worker (distributed runs only; "bigmem", "gpu"). Per-axis
	// constraints add on via Config.Requires.
	Requires []string `json:"requires,omitempty"`
	// Search replaces the static configuration axis with an iterative
	// successive-halving refinement over numeric parameter ranges (see
	// Search). Mutually exclusive with Axes.Configs and Points. A
	// search spec's Expand returns its first round's cells; RunSearch
	// drives the full refinement.
	Search *Search `json:"search,omitempty"`
}

// Cell is one expanded simulation: its position in the sweep, its
// labels, and the service spec that executes (and content-addresses)
// it.
type Cell struct {
	Index  int          `json:"index"`
	Bench  string       `json:"bench"`
	Sched  string       `json:"sched"`
	Config string       `json:"config,omitempty"`
	Spec   service.Spec `json:"spec"`
	// Requires is the normalized union of the sweep- and config-level
	// capability tags: the coordinator leases this cell only to
	// workers advertising every one of them.
	Requires []string `json:"requires,omitempty"`
}

// Key returns the cell's content address — the underlying service
// spec's key, so two cells that simulate identical machines are the
// same cell no matter how their configs are labelled.
func (c Cell) Key() string { return c.Spec.Key() }

// Key content-addresses the whole sweep spec; the store manifest pins
// it so -resume cannot mix results from different sweeps. Distributed
// and the capability Requires constraints are execution/routing knobs,
// not part of the result's identity, so they are zeroed first (deep-
// copying the slices they live in, so the caller's spec is untouched):
// the same grid run locally, distributed, or pinned to tagged workers
// shares one store.
func (s Spec) Key() string {
	s.Distributed = false
	s.Requires = nil
	if len(s.Axes.Configs) > 0 {
		configs := append([]Config(nil), s.Axes.Configs...)
		for i := range configs {
			configs[i].Requires = nil
		}
		s.Axes.Configs = configs
	}
	if len(s.Points) > 0 {
		points := append([]Point(nil), s.Points...)
		for i := range points {
			if points[i].Config != nil && len(points[i].Config.Requires) > 0 {
				cfg := *points[i].Config
				cfg.Requires = nil
				points[i].Config = &cfg
			}
		}
		s.Points = points
	}
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func (s Spec) maxCells() int {
	switch {
	case s.MaxCells <= 0:
		return DefaultMaxCells
	case s.MaxCells > MaxCellsCeiling:
		return MaxCellsCeiling
	default:
		return s.MaxCells
	}
}

// Validate checks the spec by expanding it and discarding the cells.
func (s Spec) Validate() error {
	_, err := s.Expand()
	return err
}

// NormalizeTags canonicalises a capability tag list: tags are trimmed,
// empties dropped, duplicates removed and the result sorted, so tag
// sets compare (and group into shards) independently of how they were
// written. Tags containing whitespace or commas are rejected — they
// could not round-trip through the comma-separated worker CLI flag.
func NormalizeTags(tags []string) ([]string, error) {
	if len(tags) == 0 {
		return nil, nil
	}
	seen := map[string]bool{}
	var out []string
	for _, tag := range tags {
		tag = strings.TrimSpace(tag)
		if tag == "" {
			continue
		}
		if strings.ContainsAny(tag, ", \t\r\n") {
			return nil, fmt.Errorf("sweep: capability tag %q contains whitespace or a comma", tag)
		}
		if !seen[tag] {
			seen[tag] = true
			out = append(out, tag)
		}
	}
	sort.Strings(out)
	return out, nil
}

func classByName(name string) (workload.Class, error) {
	for _, c := range []workload.Class{workload.LWS, workload.SWS, workload.CI} {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown benchmark class %q (want LWS, SWS or CI)", name)
}

// benches resolves the benchmark axis: explicit names first, then
// class members not already present, suite order within each class;
// both empty means the full suite.
func (a Axes) benches() ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, name := range a.Benchmarks {
		if _, err := workload.ByName(name); err != nil {
			return nil, err
		}
		add(name)
	}
	for _, cls := range a.Classes {
		c, err := classByName(cls)
		if err != nil {
			return nil, err
		}
		for _, spec := range workload.ByClass(c) {
			add(spec.Name)
		}
	}
	if len(out) == 0 {
		for _, spec := range workload.Suite() {
			add(spec.Name)
		}
	}
	return out, nil
}

func (a Axes) scheds() ([]string, error) {
	if len(a.Schedulers) == 0 {
		var out []string
		for _, f := range harness.Schedulers() {
			out = append(out, f.Name)
		}
		return out, nil
	}
	for _, name := range a.Schedulers {
		if _, err := harness.SchedulerByName(name); err != nil {
			return nil, err
		}
	}
	return a.Schedulers, nil
}

func (c Config) name(i int) string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("cfg%d", i)
}

// cellSpec builds the service spec for one (bench, sched, config,
// options) combination.
func cellSpec(bench, sched string, cfg *Config, opts service.OptionSpec) service.Spec {
	spec := service.Spec{
		Experiment: service.ExpRun,
		Bench:      bench,
		Sched:      sched,
		Options:    opts,
	}
	if cfg != nil && !cfg.Override.IsZero() {
		ov := cfg.Override
		spec.Config = &ov
	}
	return spec
}

// Expand materialises the sweep: the axes' cross product in
// config-major order (all cells of one configuration are adjacent, so
// per-config aggregation streams), followed by explicit points. Cells
// that content-address identically are deduplicated — they would
// coalesce in the engine anyway and would double-count in geomeans.
// Dedup keys on the service spec alone, so two configs that differ
// only in Requires collapse into one cell carrying the first config's
// tags: identical machines are identical results no matter where they
// run.
func (s Spec) Expand() ([]Cell, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("sweep: spec needs a name")
	}
	if s.Search != nil {
		// A search's static expansion is its round-0 grid: enough for
		// Validate, cell counting and store sizing; the later rounds are
		// derived from results as they settle (see DeriveSearch).
		plan, err := s.DeriveSearch(nil, nil)
		if err != nil {
			return nil, err
		}
		return plan.NewCells, nil
	}
	if s.MaxCells < 0 {
		return nil, fmt.Errorf("sweep %s: negative max_cells", s.Name)
	}
	baseReq, err := NormalizeTags(s.Requires)
	if err != nil {
		return nil, fmt.Errorf("sweep %s: %w", s.Name, err)
	}
	benches, err := s.Axes.benches()
	if err != nil {
		return nil, err
	}
	scheds, err := s.Axes.scheds()
	if err != nil {
		return nil, err
	}
	configs := s.Axes.Configs
	if len(configs) == 0 {
		configs = []Config{{}}
	}

	grid := len(benches) * len(scheds) * len(configs)
	max := s.maxCells()
	if total := grid + len(s.Points); total > max {
		return nil, fmt.Errorf("sweep %s: %d cells (%d benches × %d schedulers × %d configs + %d points) exceed the cap of %d",
			s.Name, total, len(benches), len(scheds), len(configs), len(s.Points), max)
	}

	var cells []Cell
	seen := map[string]bool{}
	add := func(bench, sched, cfgName string, spec service.Spec, requires []string) error {
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("sweep %s: cell %s/%s/%s: %w", s.Name, bench, sched, cfgName, err)
		}
		key := spec.Key()
		if seen[key] {
			return nil
		}
		seen[key] = true
		cells = append(cells, Cell{
			Index:    len(cells),
			Bench:    bench,
			Sched:    sched,
			Config:   cfgName,
			Spec:     spec,
			Requires: requires,
		})
		return nil
	}
	// cellRequires folds extra tags onto the sweep-level baseline.
	cellRequires := func(extra []string) ([]string, error) {
		if len(extra) == 0 {
			return baseReq, nil
		}
		return NormalizeTags(append(append([]string(nil), baseReq...), extra...))
	}

	for i := range configs {
		cfg := configs[i]
		cfgName := cfg.name(i)
		if len(s.Axes.Configs) == 0 {
			// Implicit baseline axis: no config label on its cells.
			cfgName = ""
		}
		req, err := cellRequires(cfg.Requires)
		if err != nil {
			return nil, fmt.Errorf("sweep %s: config %s: %w", s.Name, cfgName, err)
		}
		for _, bench := range benches {
			for _, sched := range scheds {
				if err := add(bench, sched, cfgName, cellSpec(bench, sched, &cfg, s.Options), req); err != nil {
					return nil, err
				}
			}
		}
	}
	for i, p := range s.Points {
		opts := s.Options
		if p.Options != nil {
			opts = *p.Options
		}
		cfgName := ""
		var extra []string
		if p.Config != nil {
			cfgName = p.Config.name(len(s.Axes.Configs) + i)
			extra = p.Config.Requires
		}
		req, err := cellRequires(extra)
		if err != nil {
			return nil, fmt.Errorf("sweep %s: point %d: %w", s.Name, i, err)
		}
		if err := add(p.Bench, p.Sched, cfgName, cellSpec(p.Bench, p.Sched, p.Config, opts), req); err != nil {
			return nil, err
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("sweep %s: expands to zero cells", s.Name)
	}
	return cells, nil
}
