package sweep

import (
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/workload"
)

func TestExpandGrid(t *testing.T) {
	spec := Spec{
		Name: "grid",
		Axes: Axes{
			Schedulers: []string{"GTO", "CCWS", "CIAO-C"},
			Benchmarks: []string{"SYRK", "ATAX"},
			Configs: []Config{
				{Name: "base"},
				{Name: "l1-32k", Override: harness.Override{L1SizeKB: 32}},
			},
		},
		Options: service.OptionSpec{InstrPerWarp: 500},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	// Config-major order: the first six cells are the "base" config.
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		wantCfg := "base"
		if i >= 6 {
			wantCfg = "l1-32k"
		}
		if c.Config != wantCfg {
			t.Errorf("cell %d config = %q, want %q", i, c.Config, wantCfg)
		}
		if c.Spec.Experiment != service.ExpRun {
			t.Errorf("cell %d experiment = %q", i, c.Spec.Experiment)
		}
		if c.Spec.Options.InstrPerWarp != 500 {
			t.Errorf("cell %d lost the sweep options", i)
		}
	}
	// The base config carries no override; the l1-32k one does.
	if cells[0].Spec.Config != nil {
		t.Error("baseline cell should have nil config override")
	}
	if cells[6].Spec.Config == nil || cells[6].Spec.Config.L1SizeKB != 32 {
		t.Errorf("override cell config = %+v", cells[6].Spec.Config)
	}
	// All keys distinct.
	keys := map[string]bool{}
	for _, c := range cells {
		keys[c.Key()] = true
	}
	if len(keys) != len(cells) {
		t.Errorf("%d distinct keys for %d cells", len(keys), len(cells))
	}
}

func TestExpandClassAxis(t *testing.T) {
	spec := Spec{
		Name: "cls",
		Axes: Axes{
			Schedulers: []string{"GTO"},
			Benchmarks: []string{"SYRK"}, // also in SWS: must not duplicate
			Classes:    []string{"LWS"},
		},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + len(workload.ByClass(workload.LWS))
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	if cells[0].Bench != "SYRK" {
		t.Errorf("explicit benchmarks should come first, got %q", cells[0].Bench)
	}
}

func TestExpandDefaultsToFullAxes(t *testing.T) {
	cells, err := Spec{Name: "all"}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := len(workload.Suite()) * len(harness.Schedulers())
	if len(cells) != want {
		t.Fatalf("got %d cells, want the full %d-cell matrix", len(cells), want)
	}
}

func TestExpandPointsAndDedup(t *testing.T) {
	spec := Spec{
		Name: "pts",
		Axes: Axes{Schedulers: []string{"GTO"}, Benchmarks: []string{"SYRK"}},
		Points: []Point{
			{Bench: "SYRK", Sched: "GTO"}, // duplicate of the grid cell
			{Bench: "KMN", Sched: "CCWS", Options: &service.OptionSpec{Seed: 9}},
		},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2 (duplicate point dropped)", len(cells))
	}
	last := cells[len(cells)-1]
	if last.Bench != "KMN" || last.Spec.Options.Seed != 9 {
		t.Errorf("point cell = %+v", last)
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"no name", Spec{}, "needs a name"},
		{"bad sched", Spec{Name: "x", Axes: Axes{Schedulers: []string{"nope"}}}, "unknown scheduler"},
		{"bad bench", Spec{Name: "x", Axes: Axes{Benchmarks: []string{"nope"}}}, "unknown benchmark"},
		{"bad class", Spec{Name: "x", Axes: Axes{Classes: []string{"HUGE"}}}, "unknown benchmark class"},
		{"over cap", Spec{Name: "x", MaxCells: 10}, "exceed the cap"},
		{"bad override", Spec{Name: "x", Axes: Axes{
			Benchmarks: []string{"SYRK"}, Schedulers: []string{"GTO"},
			Configs: []Config{{Override: harness.Override{WarpsPerSM: 5}}},
		}}, "warps_per_sm"},
	}
	for _, tc := range cases {
		_, err := tc.spec.Expand()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecKeyStable(t *testing.T) {
	a := Spec{Name: "x", Axes: Axes{Schedulers: []string{"GTO"}}}
	if a.Key() != a.Key() {
		t.Error("key not deterministic")
	}
	b := Spec{Name: "x", Axes: Axes{Schedulers: []string{"CCWS"}}}
	if a.Key() == b.Key() {
		t.Error("different specs share a key")
	}
}

func TestNormalizeTags(t *testing.T) {
	got, err := NormalizeTags([]string{" gpu ", "bigmem", "gpu", "", "bigmem"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "bigmem" || got[1] != "gpu" {
		t.Fatalf("NormalizeTags = %v, want [bigmem gpu]", got)
	}
	if got, err := NormalizeTags(nil); got != nil || err != nil {
		t.Fatalf("NormalizeTags(nil) = (%v, %v)", got, err)
	}
	for _, bad := range []string{"big mem", "a,b"} {
		if _, err := NormalizeTags([]string{bad}); err == nil {
			t.Errorf("NormalizeTags accepted %q", bad)
		}
	}
}

func TestRequiresExpandAndKeyInvariance(t *testing.T) {
	spec := Spec{
		Name:     "req",
		Requires: []string{"fleet"},
		Axes: Axes{
			Schedulers: []string{"GTO"},
			Benchmarks: []string{"SYRK"},
			Configs: []Config{
				{Name: "base"},
				{Name: "big", Requires: []string{"bigmem", "fleet"}, Override: harness.Override{L1SizeKB: 32}},
			},
		},
		Points: []Point{
			{Bench: "ATAX", Sched: "GTO", Config: &Config{Name: "pt", Requires: []string{"gpu"}, Override: harness.Override{L1Ways: 8}}},
		},
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	want := [][]string{{"fleet"}, {"bigmem", "fleet"}, {"fleet", "gpu"}}
	for i, c := range cells {
		if len(c.Requires) != len(want[i]) {
			t.Fatalf("cell %d requires = %v, want %v", i, c.Requires, want[i])
		}
		for j := range want[i] {
			if c.Requires[j] != want[i][j] {
				t.Errorf("cell %d requires = %v, want %v", i, c.Requires, want[i])
			}
		}
	}

	// Requires and Distributed are routing knobs: stripping them must
	// not change the spec key (the same grid shares one store), and
	// Key must not mutate the caller's spec in the process.
	stripped := Spec{
		Name: "req",
		Axes: Axes{
			Schedulers: []string{"GTO"},
			Benchmarks: []string{"SYRK"},
			Configs: []Config{
				{Name: "base"},
				{Name: "big", Override: harness.Override{L1SizeKB: 32}},
			},
		},
		Points: []Point{
			{Bench: "ATAX", Sched: "GTO", Config: &Config{Name: "pt", Override: harness.Override{L1Ways: 8}}},
		},
	}
	distributed := spec
	distributed.Distributed = true
	if spec.Key() != stripped.Key() || distributed.Key() != stripped.Key() {
		t.Error("requires/distributed changed the spec key; resumed stores would not be shared")
	}
	if spec.Axes.Configs[1].Requires == nil || spec.Points[0].Config.Requires == nil {
		t.Error("Key() mutated the caller's spec")
	}
	// A bad tag fails expansion loudly.
	bad := spec
	bad.Requires = []string{"two words"}
	if _, err := bad.Expand(); err == nil {
		t.Error("Expand accepted a malformed requires tag")
	}
}
