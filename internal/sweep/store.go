package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Store file names inside a sweep directory.
const (
	ManifestFile = "manifest.json"
	ResultsFile  = "results.ndjson"
	// CoordJournalFile is the distributed coordinator's write-ahead
	// journal, co-located with the results so one directory is the
	// whole durable state of a sweep: the manifest pins the spec, the
	// results file settles cells, the journal restores the shard lease
	// table after a server restart. Only distributed sweeps have one;
	// its presence is how startup recovery spots them.
	CoordJournalFile = "coord.journal.ndjson"
)

// Manifest pins a results directory to one sweep spec, so resuming
// with a different spec fails loudly instead of silently mixing cells.
type Manifest struct {
	ID      string    `json:"id"`
	Spec    Spec      `json:"spec"`
	SpecKey string    `json:"spec_key"`
	Created time.Time `json:"created"`
	// TotalCells is the expansion size at creation time. For a search
	// sweep this is the round-0 grid; SearchRounds tracks growth.
	TotalCells int `json:"total_cells"`
	// SearchRounds journals the derived rounds of a halving search, in
	// order — the durable audit trail of how the sweep's cell set grew.
	SearchRounds []RoundMark `json:"search_rounds,omitempty"`
	// SearchDone is stamped once every search round has settled, so
	// startup recovery can skip the directory without opening the store.
	SearchDone bool `json:"search_done,omitempty"`
}

// CellRecord is one NDJSON line of the results file: the cell's
// identity, how it went, and (when it succeeded) the encoded
// harness.CellResult. If a cell appears more than once (a failed cell
// re-run on resume), the last record wins.
type CellRecord struct {
	Key     string `json:"key"`
	Index   int    `json:"index"`
	Bench   string `json:"bench"`
	Sched   string `json:"sched"`
	Config  string `json:"config,omitempty"`
	Status  string `json:"status"` // "ok" or "failed"
	Error   string `json:"error,omitempty"`
	Source  string `json:"source,omitempty"` // computed, cache, coalesced
	Elapsed int64  `json:"elapsed_ms"`
	// IPC is duplicated out of Result so resumed geomeans and quick
	// post-processing need not re-parse every payload.
	IPC    float64         `json:"ipc,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// StoreOptions tune the tiered store's durability and compaction.
// The zero value matches the historical behaviour: no fsync per
// append, compaction only on demand, uncompressed segments.
type StoreOptions struct {
	// SyncAppend fsyncs the results file after every append. Off, a
	// kill loses at most the OS page cache's unflushed lines (their
	// cells simply re-run on resume); on, a settled record survives
	// power loss at the cost of one fsync per cell.
	SyncAppend bool
	// CompactAfter triggers an automatic compaction from inside Append
	// once the live tail holds at least this many records (0 = manual
	// Compact() only).
	CompactAfter int
	// GzipSegments compresses newly written segments.
	GzipSegments bool
}

// Store is the tiered, append-only on-disk result set of one sweep:
// an ordered list of immutable (optionally gzip'd) segment blobs plus
// a live NDJSON tail, which read as one logical byte stream. Appends
// go to the tail, serialised, each record a single write of one
// complete line, so a killed process can lose at most the line being
// written — Open tolerates (and repairs) a truncated tail. Compaction
// freezes the tail's settled prefix into a new segment; logical byte
// offsets into the stream survive it, which is what lets live
// followers resync after a lag without re-reading from zero.
type Store struct {
	dir      string
	manifest Manifest
	backend  Backend // segment blobs + segments.json, under dir/segments

	mu       sync.Mutex
	f        *os.File
	segs     []SegmentInfo
	segBytes int64               // sum of segment extents: the tail's base logical offset
	tailLen  int64               // bytes currently in the live tail file
	tailRecs int                 // parseable records currently in the live tail
	done     map[string]float64  // key → IPC of the last "ok" record
	failed   map[string]struct{} // keys with failures and no success yet
	corrupt  int                 // complete-but-unparseable lines seen by load
	observer func(CellRecord)    // sees each appended record (metrics)
	opts     StoreOptions
	counters *metrics.StoreCounters
	subs     map[*tailSub]struct{} // live followers of the tail broadcast
}

// Sink receives cell records as a sweep executes. *Store is the
// durable implementation; MemStore collects records in memory (workers
// upload their records to the coordinator instead of owning a store).
type Sink interface {
	Append(CellRecord) error
	Completed() map[string]float64
}

// Create initialises dir (which must not already contain a manifest)
// for the given sweep and opens it for appending.
func Create(dir, id string, spec Spec, totalCells int) (*Store, error) {
	if spec.Name == "" {
		return nil, errors.New("sweep: refusing to create a store for a nameless spec")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create store: %w", err)
	}
	mpath := filepath.Join(dir, ManifestFile)
	m := Manifest{
		ID:         id,
		Spec:       spec,
		SpecKey:    spec.Key(),
		Created:    time.Now().UTC(),
		TotalCells: totalCells,
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	// O_EXCL makes directory ownership atomic: of two racing creators,
	// exactly one wins and the other fails loudly instead of both
	// appending to the same results file.
	f, err := os.OpenFile(mpath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("sweep: %s already holds a sweep (resume it or pick another directory)", dir)
		}
		return nil, fmt.Errorf("sweep: write manifest: %w", err)
	}
	_, werr := f.Write(append(b, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return nil, fmt.Errorf("sweep: write manifest: %w", werr)
	}
	return openResults(dir, m)
}

// Open reopens an existing store for resumption. The stored manifest's
// spec key must always match spec — a nameless spec is rejected rather
// than silently resuming against whatever the directory holds.
// Consumers that genuinely want "whatever is here" (read-only tooling)
// must say so explicitly via OpenAny.
func Open(dir string, spec Spec) (*Store, error) {
	if spec.Name == "" {
		return nil, errors.New("sweep: refusing to open a store against a nameless spec (use OpenAny to skip the spec check)")
	}
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if m.SpecKey != spec.Key() {
		return nil, fmt.Errorf("sweep: %s holds sweep %q (spec key %.12s…), not the requested spec (%.12s…)",
			dir, m.Spec.Name, m.SpecKey, spec.Key())
	}
	return openResults(dir, m)
}

// OpenAny reopens an existing store without pinning it to a spec — the
// explicit form of the spec-key skip, for read-only consumers (result
// streaming, store merging). Runners should use Open.
func OpenAny(dir string) (*Store, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	return openResults(dir, m)
}

func readManifest(dir string) (Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("sweep: no sweep at %s: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, fmt.Errorf("sweep: corrupt manifest in %s: %w", dir, err)
	}
	return m, nil
}

func openResults(dir string, m Manifest) (*Store, error) {
	s := &Store{
		dir:      dir,
		manifest: m,
		backend:  NewDirBackend(filepath.Join(dir, SegmentsDir)),
		done:     map[string]float64{},
		failed:   map[string]struct{}{},
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.tailPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open results: %w", err)
	}
	s.f = f
	if s.corrupt > 0 {
		log.Printf("sweep: %s: ignored %d corrupt result line(s); their cells count as incomplete and will re-run", s.tailPath(), s.corrupt)
	}
	return s, nil
}

// tailPath is where the live (not yet compacted) results tail lives.
func (s *Store) tailPath() string { return filepath.Join(s.dir, ResultsFile) }

// load replays the committed segments and then the live tail into the
// completed-cell set, repairing the two states a kill mid-compaction
// can leave behind (see Compact for the write protocol):
//
//   - a stale results.ndjson.tmp (the compaction died before its
//     commit point) is deleted — the tail is still whole;
//   - a tail still carrying the last committed segment's bytes as its
//     prefix (the compaction committed segments.json but died before
//     swapping the tail in) gets the swap finished now.
//
// A torn final tail line — a kill mid-append — is truncated away from
// the file itself, not just skipped by the parse: the next append
// would otherwise fuse with the fragment into one corrupt line, and
// follower byte offsets must agree with the bytes on disk. Any other
// unparseable line is mid-file corruption: it is counted (and logged
// by openResults) instead of being mistaken for cells to re-run.
func (s *Store) load() error {
	segs, err := loadSegmentList(s.backend)
	if err != nil {
		return err
	}
	var lastSeg []byte
	for i, seg := range segs {
		data, err := readSegment(s.backend, seg)
		if err != nil {
			return err
		}
		recs, corrupt := recordsFromBytes(data)
		s.corrupt += corrupt
		for _, rec := range recs {
			s.record(rec)
		}
		s.segBytes += seg.Bytes
		if i == len(segs)-1 {
			lastSeg = data
		}
	}
	s.segs = segs

	os.Remove(s.tailPath() + ".tmp")
	tail, err := os.ReadFile(s.tailPath())
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("sweep: read results tail: %w", err)
	}
	if len(lastSeg) > 0 && bytes.HasPrefix(tail, lastSeg) {
		tail = tail[len(lastSeg):]
		if err := writeFileSync(s.tailPath(), tail); err != nil {
			return fmt.Errorf("sweep: finish interrupted compaction: %w", err)
		}
	}
	if n := completeLen(tail); n < len(tail) {
		tail = tail[:n]
		if err := os.Truncate(s.tailPath(), int64(n)); err != nil {
			return fmt.Errorf("sweep: drop torn results tail: %w", err)
		}
	}
	recs, corrupt := recordsFromBytes(tail)
	s.corrupt += corrupt
	for _, rec := range recs {
		s.record(rec)
	}
	s.tailLen = int64(len(tail))
	s.tailRecs = len(recs)
	return nil
}

// completeLen returns the length of data up to and including its last
// newline — the complete-line prefix a torn append leaves intact.
func completeLen(data []byte) int {
	if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
		return i + 1
	}
	return 0
}

// writeFileSync atomically replaces path with data: temp file in the
// same directory, fsync, rename — the journal-rewrite discipline.
func writeFileSync(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, "."+base+".sync*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// record folds one record into the completed/failed cell sets.
// Callers hold s.mu (or, during load, sole ownership).
func (s *Store) record(rec CellRecord) {
	switch rec.Status {
	case StatusOK:
		s.done[rec.Key] = rec.IPC
		delete(s.failed, rec.Key)
	case StatusFailed:
		if _, ok := s.done[rec.Key]; !ok {
			s.failed[rec.Key] = struct{}{}
		}
	}
}

// maxLineBytes caps one NDJSON line. Real records are kilobytes; a
// longer run of newline-less bytes is corruption and is skipped in
// buffer-sized chunks instead of being slurped into memory whole.
const maxLineBytes = 1 << 20

// ScanNDJSON reads the NDJSON file at path line by line, handing each
// non-blank line to use, which reports whether it was usable. A torn
// final line (no trailing newline — a kill mid-append) is passed with
// torn=true and never counted corrupt; any other unusable line — use
// rejected it, or it exceeded maxLine — is. The append-only stores and
// the coordinator journal share this loop so their torn-tail semantics
// cannot diverge. A missing file surfaces as the os.Open error for
// callers to interpret.
func ScanNDJSON(path string, maxLine int, use func(line []byte, torn bool) bool) (corrupt int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return scanNDJSON(f, maxLine, use)
}

// scanNDJSON is ScanNDJSON over any reader — segment blobs read it
// from memory, files from disk, with identical torn-tail semantics.
func scanNDJSON(rd io.Reader, maxLine int, use func(line []byte, torn bool) bool) (corrupt int, err error) {
	r := bufio.NewReaderSize(rd, maxLine)
	for {
		line, rerr := r.ReadSlice('\n')
		if rerr == bufio.ErrBufferFull {
			// Over-long line: count it once, discard to the newline.
			corrupt++
			for rerr == bufio.ErrBufferFull {
				_, rerr = r.ReadSlice('\n')
			}
			if rerr == io.EOF {
				return corrupt, nil
			}
			if rerr != nil {
				return corrupt, rerr
			}
			continue
		}
		if rerr != nil && rerr != io.EOF {
			return corrupt, rerr
		}
		torn := rerr == io.EOF && len(line) > 0 // unterminated tail
		if len(bytes.TrimSpace(line)) > 0 {
			if !use(line, torn) && !torn {
				corrupt++
			}
		}
		if rerr == io.EOF {
			return corrupt, nil
		}
	}
}

// useRecord builds the ScanNDJSON callback that collects well-formed
// CellRecords: complete lines that fail to parse or parse without a
// cell key are corrupt.
func useRecord(recs *[]CellRecord) func(line []byte, torn bool) bool {
	return func(line []byte, torn bool) bool {
		var rec CellRecord
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" {
			return false
		}
		*recs = append(*recs, rec)
		return true
	}
}

// recordsFromBytes parses NDJSON result lines held in memory (a
// segment blob, a loaded tail), tolerating a torn final line.
func recordsFromBytes(data []byte) (recs []CellRecord, corrupt int) {
	corrupt, _ = scanNDJSON(bytes.NewReader(data), maxLineBytes, useRecord(&recs))
	return recs, corrupt
}

// ReadRecords loads every well-formed record from a store directory —
// committed segments first, then the live tail, i.e. logical stream
// order — tolerating a torn final tail line. Corrupt mid-file lines
// are counted, not fatal. It is a read-only scan: an interrupted
// compaction (segment committed, tail swap unfinished) is skipped
// over, not repaired — reopening the store repairs it.
func ReadRecords(dir string) (recs []CellRecord, corrupt int, err error) {
	return readStoreRecords(dir, NewDirBackend(filepath.Join(dir, SegmentsDir)))
}

func readStoreRecords(dir string, b Backend) (recs []CellRecord, corrupt int, err error) {
	segs, err := loadSegmentList(b)
	if err != nil {
		return nil, 0, err
	}
	var lastSeg []byte
	for i, seg := range segs {
		data, err := readSegment(b, seg)
		if err != nil {
			return nil, 0, err
		}
		r, c := recordsFromBytes(data)
		recs = append(recs, r...)
		corrupt += c
		if i == len(segs)-1 {
			lastSeg = data
		}
	}
	tail, err := os.ReadFile(filepath.Join(dir, ResultsFile))
	if errors.Is(err, fs.ErrNotExist) {
		return recs, corrupt, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if len(lastSeg) > 0 && bytes.HasPrefix(tail, lastSeg) {
		tail = tail[len(lastSeg):] // unfinished tail swap: don't read the frozen prefix twice
	}
	r, c := recordsFromBytes(tail)
	return append(recs, r...), corrupt + c, nil
}

// Record statuses.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// SetObserver installs a callback that sees every record Append
// accepts — the single choke point covering both local runner results
// and coordinator merges of worker uploads, which is where per-sweep
// RED metrics hook in. Pass nil to detach.
func (s *Store) SetObserver(fn func(CellRecord)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// SetOptions applies durability/compaction tuning. Call before the
// store sees concurrent appends (right after Create/Open).
func (s *Store) SetOptions(o StoreOptions) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts = o
}

// SetCounters points the store at a process-wide metrics block (shared
// across sweeps). Pass before serving; nil detaches.
func (s *Store) SetCounters(c *metrics.StoreCounters) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters = c
}

// Append writes one record as a single NDJSON line to the live tail,
// updates the completed set, and fans the line out to tail
// subscribers. With SyncAppend set the line is fsync'd before Append
// returns.
func (s *Store) Append(rec CellRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	if s.f == nil {
		s.mu.Unlock()
		return errors.New("sweep: append to a closed store")
	}
	_, werr := s.f.Write(line)
	if werr == nil && s.opts.SyncAppend {
		werr = s.f.Sync()
	}
	if werr == nil {
		s.record(rec)
		s.tailLen += int64(len(line))
		s.tailRecs++
		s.publishLocked(line)
		if s.opts.CompactAfter > 0 && s.tailRecs >= s.opts.CompactAfter {
			if _, _, cerr := s.compactLocked(); cerr != nil {
				// Compaction is an optimisation: a failure leaves the tail
				// longer, never the records worse off.
				log.Printf("sweep: %s: auto-compaction: %v", s.dir, cerr)
			}
		}
	}
	obs := s.observer
	s.mu.Unlock()
	if werr != nil {
		return fmt.Errorf("sweep: append result: %w", werr)
	}
	if obs != nil {
		obs(rec)
	}
	return nil
}

// Merge appends foreign records (another shard's store, a worker's
// upload) into this store with the CellRecord dedup semantics: a cell
// that already has a stored success is final, so both duplicate "ok"
// records and late "failed" records for it are skipped; everything
// else appends in order, which preserves last-ok-wins for
// failed-then-ok sequences. It returns how many records were appended
// and how many were dropped as duplicates (or keyless).
func (s *Store) Merge(recs []CellRecord) (merged, skipped int, err error) {
	for _, rec := range recs {
		if rec.Key == "" {
			skipped++
			continue
		}
		s.mu.Lock()
		_, done := s.done[rec.Key]
		s.mu.Unlock()
		if done {
			skipped++
			continue
		}
		if err := s.Append(rec); err != nil {
			return merged, skipped, err
		}
		merged++
	}
	return merged, skipped, nil
}

// MergeStore merges every record of the store at srcDir into dst —
// how separate hand-sharded stores collapse into one canonical store.
// The source manifest must pin the same spec as dst, upholding the
// cannot-mix-sweeps invariant across merges. Segmented sources read
// exactly like flat ones: ReadRecords walks segments then tail.
func MergeStore(dst *Store, srcDir string) (merged, skipped int, err error) {
	srcM, err := readManifest(srcDir)
	if err != nil {
		return 0, 0, err
	}
	if want := dst.Manifest().SpecKey; srcM.SpecKey != want {
		return 0, 0, fmt.Errorf("sweep: refusing to merge %s: it holds sweep %q (spec key %.12s…), not %q (%.12s…)",
			srcDir, srcM.Spec.Name, srcM.SpecKey, dst.Manifest().Spec.Name, want)
	}
	recs, corrupt, err := ReadRecords(srcDir)
	if err != nil {
		return 0, 0, fmt.Errorf("sweep: merge %s: %w", srcDir, err)
	}
	if corrupt > 0 {
		log.Printf("sweep: merge %s: ignored %d corrupt result line(s)", srcDir, corrupt)
	}
	return dst.Merge(recs)
}

// CorruptLines reports how many complete-but-unparseable result lines
// load encountered (mid-file corruption; a torn tail is not counted).
func (s *Store) CorruptLines() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

// FailedCells returns a copy of the keys that have recorded failures
// and no success yet — the cells a resumed run re-executes, and the
// failure counts a recovered coordinator restores.
func (s *Store) FailedCells() map[string]struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]struct{}, len(s.failed))
	for k := range s.failed {
		out[k] = struct{}{}
	}
	return out
}

// Completed returns a copy of the completed cell set: key → recorded
// IPC.
func (s *Store) Completed() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.done))
	for k, v := range s.done {
		out[k] = v
	}
	return out
}

// Manifest returns the pinned manifest.
func (s *Store) Manifest() Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.manifest
}

// MarkSearchRound journals one derived search round into the manifest
// (atomic rewrite). A mark for an already-journaled round replaces it
// — a resumed search re-derives the interrupted round and re-marks it
// with identical content, so the rewrite is skipped when nothing
// changed.
func (s *Store) MarkSearchRound(rm RoundMark) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	replaced := false
	for i, old := range s.manifest.SearchRounds {
		if old.Round == rm.Round {
			if old == rm {
				return nil
			}
			s.manifest.SearchRounds[i] = rm
			// Later rounds were derived from results this round now
			// supersedes; drop them so the journal stays a prefix of
			// the actual progression.
			s.manifest.SearchRounds = s.manifest.SearchRounds[:i+1]
			replaced = true
			break
		}
	}
	if !replaced {
		s.manifest.SearchRounds = append(s.manifest.SearchRounds, rm)
	}
	return s.rewriteManifestLocked()
}

// MarkSearchDone stamps the manifest once a halving search has fully
// settled. Idempotent.
func (s *Store) MarkSearchDone() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifest.SearchDone {
		return nil
	}
	s.manifest.SearchDone = true
	return s.rewriteManifestLocked()
}

// rewriteManifestLocked atomically rewrites the manifest file from the
// in-memory copy. Callers hold s.mu.
func (s *Store) rewriteManifestLocked() error {
	b, err := json.MarshalIndent(s.manifest, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(s.dir, ManifestFile), append(b, '\n')); err != nil {
		return fmt.Errorf("sweep: rewrite manifest: %w", err)
	}
	return nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ResultsPath returns the live tail's NDJSON file path. Readers that
// want the whole result set must not read just this file any more —
// use ReadRecords or CopyRange, which splice segments and tail back
// into one stream.
func (s *Store) ResultsPath() string { return filepath.Join(s.dir, ResultsFile) }

// CoordJournalPath returns where the distributed coordinator journals
// its shard lease table for this sweep.
func (s *Store) CoordJournalPath() string { return filepath.Join(s.dir, CoordJournalFile) }

// Backend exposes the store's segment blob backend (read-only use:
// the HTTP segment endpoints list and serve blobs through it).
func (s *Store) Backend() Backend { return s.backend }

// Segments snapshots the committed segment list.
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SegmentInfo(nil), s.segs...)
}

// ReadTail returns the live tail's current bytes, consistent under
// the store lock (a compaction cannot swap the file mid-read).
func (s *Store) ReadTail() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.tailPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	return data, err
}

// Close releases the results file and closes every tail subscription
// (followers drain what the broadcast already handed them, then see
// end-of-stream).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for sub := range s.subs {
		s.dropSubLocked(sub)
	}
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// MemStore is an in-memory Sink: it collects records instead of
// writing them, so a distributed worker can run a leased shard through
// the ordinary Runner and then upload the records to the coordinator.
type MemStore struct {
	mu   sync.Mutex
	recs []CellRecord
	done map[string]float64
}

// Append records one outcome.
func (m *MemStore) Append(rec CellRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, rec)
	if rec.Status == StatusOK {
		if m.done == nil {
			m.done = map[string]float64{}
		}
		m.done[rec.Key] = rec.IPC
	}
	return nil
}

// Completed returns a copy of the completed cell set.
func (m *MemStore) Completed() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.done))
	for k, v := range m.done {
		out[k] = v
	}
	return out
}

// Records returns a copy of every appended record in order.
func (m *MemStore) Records() []CellRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]CellRecord(nil), m.recs...)
}
