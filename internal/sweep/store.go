package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Store file names inside a sweep directory.
const (
	ManifestFile = "manifest.json"
	ResultsFile  = "results.ndjson"
)

// Manifest pins a results directory to one sweep spec, so resuming
// with a different spec fails loudly instead of silently mixing cells.
type Manifest struct {
	ID      string    `json:"id"`
	Spec    Spec      `json:"spec"`
	SpecKey string    `json:"spec_key"`
	Created time.Time `json:"created"`
	// TotalCells is the expansion size at creation time.
	TotalCells int `json:"total_cells"`
}

// CellRecord is one NDJSON line of the results file: the cell's
// identity, how it went, and (when it succeeded) the encoded
// harness.CellResult. If a cell appears more than once (a failed cell
// re-run on resume), the last record wins.
type CellRecord struct {
	Key     string `json:"key"`
	Index   int    `json:"index"`
	Bench   string `json:"bench"`
	Sched   string `json:"sched"`
	Config  string `json:"config,omitempty"`
	Status  string `json:"status"` // "ok" or "failed"
	Error   string `json:"error,omitempty"`
	Source  string `json:"source,omitempty"` // computed, cache, coalesced
	Elapsed int64  `json:"elapsed_ms"`
	// IPC is duplicated out of Result so resumed geomeans and quick
	// post-processing need not re-parse every payload.
	IPC    float64         `json:"ipc,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Store is the append-only on-disk result set of one sweep. Appends
// are serialised and each record is a single write of one complete
// line, so a killed process can lose at most the line being written —
// Open tolerates (and discards) a truncated tail.
type Store struct {
	dir      string
	manifest Manifest

	mu   sync.Mutex
	f    *os.File
	done map[string]float64 // key → IPC of the last "ok" record
}

// Create initialises dir (which must not already contain a manifest)
// for the given sweep and opens it for appending.
func Create(dir, id string, spec Spec, totalCells int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create store: %w", err)
	}
	mpath := filepath.Join(dir, ManifestFile)
	m := Manifest{
		ID:         id,
		Spec:       spec,
		SpecKey:    spec.Key(),
		Created:    time.Now().UTC(),
		TotalCells: totalCells,
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	// O_EXCL makes directory ownership atomic: of two racing creators,
	// exactly one wins and the other fails loudly instead of both
	// appending to the same results file.
	f, err := os.OpenFile(mpath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("sweep: %s already holds a sweep (resume it or pick another directory)", dir)
		}
		return nil, fmt.Errorf("sweep: write manifest: %w", err)
	}
	_, werr := f.Write(append(b, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return nil, fmt.Errorf("sweep: write manifest: %w", werr)
	}
	return openResults(dir, m)
}

// Open reopens an existing store for resumption. The stored manifest's
// spec key must match spec; pass the zero Spec to skip the check (used
// by read-only consumers).
func Open(dir string, spec Spec) (*Store, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("sweep: no sweep at %s: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("sweep: corrupt manifest in %s: %w", dir, err)
	}
	if spec.Name != "" && m.SpecKey != spec.Key() {
		return nil, fmt.Errorf("sweep: %s holds sweep %q (spec key %.12s…), not the requested spec (%.12s…)",
			dir, m.Spec.Name, m.SpecKey, spec.Key())
	}
	return openResults(dir, m)
}

func openResults(dir string, m Manifest) (*Store, error) {
	s := &Store{dir: dir, manifest: m, done: map[string]float64{}}
	rpath := filepath.Join(dir, ResultsFile)
	if err := s.load(rpath); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(rpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open results: %w", err)
	}
	s.f = f
	return s, nil
}

// load replays the results file into the completed-cell set. Lines
// that do not parse (a truncated tail after a kill) are skipped:
// their cells simply re-run.
func (s *Store) load(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var rec CellRecord
		if json.Unmarshal(sc.Bytes(), &rec) != nil || rec.Key == "" {
			continue
		}
		// Only successes complete a cell; failed-only cells re-run on
		// resume.
		if rec.Status == StatusOK {
			s.done[rec.Key] = rec.IPC
		}
	}
	return sc.Err()
}

// Record statuses.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// Append writes one record as a single NDJSON line and updates the
// completed set.
func (s *Store) Append(rec CellRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("sweep: append result: %w", err)
	}
	if rec.Status == StatusOK {
		s.done[rec.Key] = rec.IPC
	}
	return nil
}

// Completed returns a copy of the completed cell set: key → recorded
// IPC.
func (s *Store) Completed() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.done))
	for k, v := range s.done {
		out[k] = v
	}
	return out
}

// Manifest returns the pinned manifest.
func (s *Store) Manifest() Manifest { return s.manifest }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ResultsPath returns the NDJSON file path (for streaming readers).
func (s *Store) ResultsPath() string { return filepath.Join(s.dir, ResultsFile) }

// Close releases the results file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
