package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Store file names inside a sweep directory.
const (
	ManifestFile = "manifest.json"
	ResultsFile  = "results.ndjson"
	// CoordJournalFile is the distributed coordinator's write-ahead
	// journal, co-located with the results so one directory is the
	// whole durable state of a sweep: the manifest pins the spec, the
	// results file settles cells, the journal restores the shard lease
	// table after a server restart. Only distributed sweeps have one;
	// its presence is how startup recovery spots them.
	CoordJournalFile = "coord.journal.ndjson"
)

// Manifest pins a results directory to one sweep spec, so resuming
// with a different spec fails loudly instead of silently mixing cells.
type Manifest struct {
	ID      string    `json:"id"`
	Spec    Spec      `json:"spec"`
	SpecKey string    `json:"spec_key"`
	Created time.Time `json:"created"`
	// TotalCells is the expansion size at creation time.
	TotalCells int `json:"total_cells"`
}

// CellRecord is one NDJSON line of the results file: the cell's
// identity, how it went, and (when it succeeded) the encoded
// harness.CellResult. If a cell appears more than once (a failed cell
// re-run on resume), the last record wins.
type CellRecord struct {
	Key     string `json:"key"`
	Index   int    `json:"index"`
	Bench   string `json:"bench"`
	Sched   string `json:"sched"`
	Config  string `json:"config,omitempty"`
	Status  string `json:"status"` // "ok" or "failed"
	Error   string `json:"error,omitempty"`
	Source  string `json:"source,omitempty"` // computed, cache, coalesced
	Elapsed int64  `json:"elapsed_ms"`
	// IPC is duplicated out of Result so resumed geomeans and quick
	// post-processing need not re-parse every payload.
	IPC    float64         `json:"ipc,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Store is the append-only on-disk result set of one sweep. Appends
// are serialised and each record is a single write of one complete
// line, so a killed process can lose at most the line being written —
// Open tolerates (and discards) a truncated tail.
type Store struct {
	dir      string
	manifest Manifest

	mu       sync.Mutex
	f        *os.File
	done     map[string]float64  // key → IPC of the last "ok" record
	failed   map[string]struct{} // keys with failures and no success yet
	corrupt  int                 // complete-but-unparseable lines seen by load
	observer func(CellRecord)    // sees each appended record (metrics)
}

// Sink receives cell records as a sweep executes. *Store is the
// durable implementation; MemStore collects records in memory (workers
// upload their records to the coordinator instead of owning a store).
type Sink interface {
	Append(CellRecord) error
	Completed() map[string]float64
}

// Create initialises dir (which must not already contain a manifest)
// for the given sweep and opens it for appending.
func Create(dir, id string, spec Spec, totalCells int) (*Store, error) {
	if spec.Name == "" {
		return nil, errors.New("sweep: refusing to create a store for a nameless spec")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create store: %w", err)
	}
	mpath := filepath.Join(dir, ManifestFile)
	m := Manifest{
		ID:         id,
		Spec:       spec,
		SpecKey:    spec.Key(),
		Created:    time.Now().UTC(),
		TotalCells: totalCells,
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	// O_EXCL makes directory ownership atomic: of two racing creators,
	// exactly one wins and the other fails loudly instead of both
	// appending to the same results file.
	f, err := os.OpenFile(mpath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("sweep: %s already holds a sweep (resume it or pick another directory)", dir)
		}
		return nil, fmt.Errorf("sweep: write manifest: %w", err)
	}
	_, werr := f.Write(append(b, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return nil, fmt.Errorf("sweep: write manifest: %w", werr)
	}
	return openResults(dir, m)
}

// Open reopens an existing store for resumption. The stored manifest's
// spec key must always match spec — a nameless spec is rejected rather
// than silently resuming against whatever the directory holds.
// Consumers that genuinely want "whatever is here" (read-only tooling)
// must say so explicitly via OpenAny.
func Open(dir string, spec Spec) (*Store, error) {
	if spec.Name == "" {
		return nil, errors.New("sweep: refusing to open a store against a nameless spec (use OpenAny to skip the spec check)")
	}
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if m.SpecKey != spec.Key() {
		return nil, fmt.Errorf("sweep: %s holds sweep %q (spec key %.12s…), not the requested spec (%.12s…)",
			dir, m.Spec.Name, m.SpecKey, spec.Key())
	}
	return openResults(dir, m)
}

// OpenAny reopens an existing store without pinning it to a spec — the
// explicit form of the spec-key skip, for read-only consumers (result
// streaming, store merging). Runners should use Open.
func OpenAny(dir string) (*Store, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	return openResults(dir, m)
}

func readManifest(dir string) (Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("sweep: no sweep at %s: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, fmt.Errorf("sweep: corrupt manifest in %s: %w", dir, err)
	}
	return m, nil
}

func openResults(dir string, m Manifest) (*Store, error) {
	s := &Store{dir: dir, manifest: m, done: map[string]float64{}, failed: map[string]struct{}{}}
	rpath := filepath.Join(dir, ResultsFile)
	if err := s.load(rpath); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(rpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open results: %w", err)
	}
	s.f = f
	if s.corrupt > 0 {
		log.Printf("sweep: %s: ignored %d corrupt result line(s); their cells count as incomplete and will re-run", rpath, s.corrupt)
	}
	return s, nil
}

// load replays the results file into the completed-cell set. Exactly
// one malformation is expected in a healthy store — a torn,
// newline-less final line from a process killed mid-append — and that
// tail is dropped silently (its cell simply re-runs). Any other
// unparseable line is mid-file corruption: it is counted (and logged
// by openResults) instead of being mistaken for cells to re-run.
func (s *Store) load(path string) error {
	recs, corrupt, err := readRecords(path)
	if err != nil {
		return err
	}
	s.corrupt = corrupt
	for _, rec := range recs {
		// Only successes complete a cell; failed-only cells re-run on
		// resume (and are tracked so coordinator recovery can restore
		// its failure counts without re-parsing the file).
		s.record(rec)
	}
	return nil
}

// record folds one record into the completed/failed cell sets.
// Callers hold s.mu (or, during load, sole ownership).
func (s *Store) record(rec CellRecord) {
	switch rec.Status {
	case StatusOK:
		s.done[rec.Key] = rec.IPC
		delete(s.failed, rec.Key)
	case StatusFailed:
		if _, ok := s.done[rec.Key]; !ok {
			s.failed[rec.Key] = struct{}{}
		}
	}
}

// maxLineBytes caps one NDJSON line. Real records are kilobytes; a
// longer run of newline-less bytes is corruption and is skipped in
// buffer-sized chunks instead of being slurped into memory whole.
const maxLineBytes = 1 << 20

// ScanNDJSON reads the NDJSON file at path line by line, handing each
// non-blank line to use, which reports whether it was usable. A torn
// final line (no trailing newline — a kill mid-append) is passed with
// torn=true and never counted corrupt; any other unusable line — use
// rejected it, or it exceeded maxLine — is. The append-only stores and
// the coordinator journal share this loop so their torn-tail semantics
// cannot diverge. A missing file surfaces as the os.Open error for
// callers to interpret.
func ScanNDJSON(path string, maxLine int, use func(line []byte, torn bool) bool) (corrupt int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, maxLine)
	for {
		line, rerr := r.ReadSlice('\n')
		if rerr == bufio.ErrBufferFull {
			// Over-long line: count it once, discard to the newline.
			corrupt++
			for rerr == bufio.ErrBufferFull {
				_, rerr = r.ReadSlice('\n')
			}
			if rerr == io.EOF {
				return corrupt, nil
			}
			if rerr != nil {
				return corrupt, rerr
			}
			continue
		}
		if rerr != nil && rerr != io.EOF {
			return corrupt, rerr
		}
		torn := rerr == io.EOF && len(line) > 0 // unterminated tail
		if len(bytes.TrimSpace(line)) > 0 {
			if !use(line, torn) && !torn {
				corrupt++
			}
		}
		if rerr == io.EOF {
			return corrupt, nil
		}
	}
}

// readRecords parses an NDJSON results file, returning the well-formed
// records in file order plus the count of corrupt lines. A torn final
// line is tolerated and not counted; complete lines that fail to
// parse, parse without a cell key, or exceed maxLineBytes are corrupt.
func readRecords(path string) (recs []CellRecord, corrupt int, err error) {
	corrupt, err = ScanNDJSON(path, maxLineBytes, func(line []byte, torn bool) bool {
		var rec CellRecord
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" {
			return false
		}
		recs = append(recs, rec)
		return true
	})
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	return recs, corrupt, err
}

// ReadRecords loads every well-formed record from a store directory in
// file order, tolerating a torn final line. Corrupt mid-file lines are
// counted, not fatal.
func ReadRecords(dir string) (recs []CellRecord, corrupt int, err error) {
	return readRecords(filepath.Join(dir, ResultsFile))
}

// Record statuses.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// SetObserver installs a callback that sees every record Append
// accepts — the single choke point covering both local runner results
// and coordinator merges of worker uploads, which is where per-sweep
// RED metrics hook in. Pass nil to detach.
func (s *Store) SetObserver(fn func(CellRecord)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// Append writes one record as a single NDJSON line and updates the
// completed set.
func (s *Store) Append(rec CellRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	_, werr := s.f.Write(line)
	if werr == nil {
		s.record(rec)
	}
	obs := s.observer
	s.mu.Unlock()
	if werr != nil {
		return fmt.Errorf("sweep: append result: %w", werr)
	}
	if obs != nil {
		obs(rec)
	}
	return nil
}

// Merge appends foreign records (another shard's store, a worker's
// upload) into this store with the CellRecord dedup semantics: a cell
// that already has a stored success is final, so both duplicate "ok"
// records and late "failed" records for it are skipped; everything
// else appends in order, which preserves last-ok-wins for
// failed-then-ok sequences. It returns how many records were appended
// and how many were dropped as duplicates (or keyless).
func (s *Store) Merge(recs []CellRecord) (merged, skipped int, err error) {
	for _, rec := range recs {
		if rec.Key == "" {
			skipped++
			continue
		}
		s.mu.Lock()
		_, done := s.done[rec.Key]
		s.mu.Unlock()
		if done {
			skipped++
			continue
		}
		if err := s.Append(rec); err != nil {
			return merged, skipped, err
		}
		merged++
	}
	return merged, skipped, nil
}

// MergeStore merges every record of the store at srcDir into dst —
// how separate hand-sharded stores collapse into one canonical store.
// The source manifest must pin the same spec as dst, upholding the
// cannot-mix-sweeps invariant across merges.
func MergeStore(dst *Store, srcDir string) (merged, skipped int, err error) {
	srcM, err := readManifest(srcDir)
	if err != nil {
		return 0, 0, err
	}
	if want := dst.Manifest().SpecKey; srcM.SpecKey != want {
		return 0, 0, fmt.Errorf("sweep: refusing to merge %s: it holds sweep %q (spec key %.12s…), not %q (%.12s…)",
			srcDir, srcM.Spec.Name, srcM.SpecKey, dst.Manifest().Spec.Name, want)
	}
	recs, corrupt, err := ReadRecords(srcDir)
	if err != nil {
		return 0, 0, fmt.Errorf("sweep: merge %s: %w", srcDir, err)
	}
	if corrupt > 0 {
		log.Printf("sweep: merge %s: ignored %d corrupt result line(s)", srcDir, corrupt)
	}
	return dst.Merge(recs)
}

// CorruptLines reports how many complete-but-unparseable result lines
// load encountered (mid-file corruption; a torn tail is not counted).
func (s *Store) CorruptLines() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

// FailedCells returns a copy of the keys that have recorded failures
// and no success yet — the cells a resumed run re-executes, and the
// failure counts a recovered coordinator restores.
func (s *Store) FailedCells() map[string]struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]struct{}, len(s.failed))
	for k := range s.failed {
		out[k] = struct{}{}
	}
	return out
}

// Completed returns a copy of the completed cell set: key → recorded
// IPC.
func (s *Store) Completed() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.done))
	for k, v := range s.done {
		out[k] = v
	}
	return out
}

// Manifest returns the pinned manifest.
func (s *Store) Manifest() Manifest { return s.manifest }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ResultsPath returns the NDJSON file path (for streaming readers).
func (s *Store) ResultsPath() string { return filepath.Join(s.dir, ResultsFile) }

// CoordJournalPath returns where the distributed coordinator journals
// its shard lease table for this sweep.
func (s *Store) CoordJournalPath() string { return filepath.Join(s.dir, CoordJournalFile) }

// Close releases the results file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// MemStore is an in-memory Sink: it collects records instead of
// writing them, so a distributed worker can run a leased shard through
// the ordinary Runner and then upload the records to the coordinator.
type MemStore struct {
	mu   sync.Mutex
	recs []CellRecord
	done map[string]float64
}

// Append records one outcome.
func (m *MemStore) Append(rec CellRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, rec)
	if rec.Status == StatusOK {
		if m.done == nil {
			m.done = map[string]float64{}
		}
		m.done[rec.Key] = rec.IPC
	}
	return nil
}

// Completed returns a copy of the completed cell set.
func (m *MemStore) Completed() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.done))
	for k, v := range m.done {
		out[k] = v
	}
	return out
}

// Records returns a copy of every appended record in order.
func (m *MemStore) Records() []CellRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]CellRecord(nil), m.recs...)
}
