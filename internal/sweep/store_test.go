package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testSpec() Spec {
	return Spec{
		Name: "t",
		Axes: Axes{Schedulers: []string{"GTO"}, Benchmarks: []string{"SYRK", "ATAX"}},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	spec := testSpec()
	st, err := Create(dir, "id-1", spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := []CellRecord{
		{Key: "k1", Index: 0, Bench: "SYRK", Sched: "GTO", Status: StatusOK, IPC: 1.5, Result: json.RawMessage(`{"ipc":1.5}`)},
		{Key: "k2", Index: 1, Bench: "ATAX", Sched: "GTO", Status: StatusFailed, Error: "boom"},
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	done := re.Completed()
	if len(done) != 1 || done["k1"] != 1.5 {
		t.Errorf("completed = %v, want only k1→1.5 (failed cells re-run)", done)
	}
	if re.Manifest().ID != "id-1" || re.Manifest().TotalCells != 2 {
		t.Errorf("manifest = %+v", re.Manifest())
	}
}

func TestStoreTruncatedTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	spec := testSpec()
	st, err := Create(dir, "id", spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(CellRecord{Key: "k1", Status: StatusOK, IPC: 2}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Simulate a kill mid-append: a torn, unterminated final line.
	f, err := os.OpenFile(filepath.Join(dir, ResultsFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"k2","status":"o`)
	f.Close()

	re, err := Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if done := re.Completed(); len(done) != 1 {
		t.Errorf("completed = %v, want the torn record dropped", done)
	}
	// The store stays appendable after the torn tail.
	if err := re.Append(CellRecord{Key: "k3", Status: StatusOK, IPC: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSpecMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	if st, err := Create(dir, "id", testSpec(), 2); err != nil {
		t.Fatal(err)
	} else {
		st.Close()
	}
	other := testSpec()
	other.Axes.Schedulers = []string{"CCWS"}
	if _, err := Open(dir, other); err == nil || !strings.Contains(err.Error(), "not the requested spec") {
		t.Errorf("err = %v, want spec-mismatch", err)
	}
	// Creating over an existing sweep is refused.
	if _, err := Create(dir, "id2", testSpec(), 2); err == nil {
		t.Error("Create over an existing manifest should fail")
	}
}
