package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testSpec() Spec {
	return Spec{
		Name: "t",
		Axes: Axes{Schedulers: []string{"GTO"}, Benchmarks: []string{"SYRK", "ATAX"}},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	spec := testSpec()
	st, err := Create(dir, "id-1", spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := []CellRecord{
		{Key: "k1", Index: 0, Bench: "SYRK", Sched: "GTO", Status: StatusOK, IPC: 1.5, Result: json.RawMessage(`{"ipc":1.5}`)},
		{Key: "k2", Index: 1, Bench: "ATAX", Sched: "GTO", Status: StatusFailed, Error: "boom"},
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	done := re.Completed()
	if len(done) != 1 || done["k1"] != 1.5 {
		t.Errorf("completed = %v, want only k1→1.5 (failed cells re-run)", done)
	}
	if re.Manifest().ID != "id-1" || re.Manifest().TotalCells != 2 {
		t.Errorf("manifest = %+v", re.Manifest())
	}
}

func TestStoreTruncatedTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	spec := testSpec()
	st, err := Create(dir, "id", spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(CellRecord{Key: "k1", Status: StatusOK, IPC: 2}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Simulate a kill mid-append: a torn, unterminated final line.
	f, err := os.OpenFile(filepath.Join(dir, ResultsFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"k2","status":"o`)
	f.Close()

	re, err := Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if done := re.Completed(); len(done) != 1 {
		t.Errorf("completed = %v, want the torn record dropped", done)
	}
	// The store stays appendable after the torn tail.
	if err := re.Append(CellRecord{Key: "k3", Status: StatusOK, IPC: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreMidFileCorruptionIsCountedNotResumed(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	spec := testSpec()
	st, err := Create(dir, "id", spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(CellRecord{Key: "k1", Status: StatusOK, IPC: 2}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Corrupt the middle of the file (a complete, newline-terminated
	// garbage line), append a valid record after it, then a torn tail.
	f, err := os.OpenFile(filepath.Join(dir, ResultsFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"key\":\"k-corrupt\",oops}\n")
	f.WriteString("{\"status\":\"ok\",\"ipc\":9}\n") // parses but keyless: also corrupt
	b, _ := json.Marshal(CellRecord{Key: "k2", Status: StatusOK, IPC: 3})
	f.Write(append(b, '\n'))
	f.WriteString(`{"key":"k3","status":"o`) // torn tail: tolerated, not counted
	f.Close()

	re, err := Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	done := re.Completed()
	if len(done) != 2 || done["k1"] != 2 || done["k2"] != 3 {
		t.Errorf("completed = %v, want k1 and k2 (lines after corruption must still load)", done)
	}
	if got := re.CorruptLines(); got != 2 {
		t.Errorf("CorruptLines = %d, want 2 (mid-file garbage + keyless line; torn tail excluded)", got)
	}
}

func TestStoreOverlongLineIsCorruptNotSlurped(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	spec := testSpec()
	st, err := Create(dir, "id", spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(CellRecord{Key: "k1", Status: StatusOK, IPC: 2}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	f, err := os.OpenFile(filepath.Join(dir, ResultsFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A newline-less run of garbage longer than the line cap, then a
	// valid record: the garbage counts as one corrupt line, the record
	// after it still loads.
	junk := strings.Repeat("x", maxLineBytes+512)
	f.WriteString(junk + "\n")
	b, _ := json.Marshal(CellRecord{Key: "k2", Status: StatusOK, IPC: 3})
	f.Write(append(b, '\n'))
	f.Close()

	re, err := Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	done := re.Completed()
	if len(done) != 2 || done["k2"] != 3 {
		t.Errorf("completed = %v, want k1 and k2", done)
	}
	if got := re.CorruptLines(); got != 1 {
		t.Errorf("CorruptLines = %d, want 1 for the over-long line", got)
	}
}

func TestStoreRejectsNamelessSpec(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	if _, err := Create(dir, "id", Spec{}, 1); err == nil {
		t.Error("Create with a nameless spec should fail")
	}
	if st, err := Create(dir, "id", testSpec(), 2); err != nil {
		t.Fatal(err)
	} else {
		st.Close()
	}
	// The old behaviour silently resumed a nameless spec against any
	// directory; now it is rejected and OpenAny is the explicit opt-out.
	if _, err := Open(dir, Spec{}); err == nil || !strings.Contains(err.Error(), "nameless") {
		t.Errorf("Open with a nameless spec = %v, want nameless-spec rejection", err)
	}
	st, err := OpenAny(dir)
	if err != nil {
		t.Fatalf("OpenAny: %v", err)
	}
	defer st.Close()
	if st.Manifest().Spec.Name != "t" {
		t.Errorf("OpenAny manifest = %+v", st.Manifest())
	}
}

func TestStoreMergeDedupsAndLastOKWins(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	st, err := Create(dir, "id", testSpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Shard A: k1 ok, k2 failed.
	merged, skipped, err := st.Merge([]CellRecord{
		{Key: "k1", Status: StatusOK, IPC: 1.5},
		{Key: "k2", Status: StatusFailed, Error: "boom"},
	})
	if err != nil || merged != 2 || skipped != 0 {
		t.Fatalf("merge A = (%d, %d, %v)", merged, skipped, err)
	}
	// Shard B: duplicate k1 ok (dropped), k2 re-run ok (appended: last
	// ok wins over the earlier failure), late k1 failure (dropped — a
	// stored success is final), keyless garbage (dropped).
	merged, skipped, err = st.Merge([]CellRecord{
		{Key: "k1", Status: StatusOK, IPC: 9},
		{Key: "k2", Status: StatusOK, IPC: 2.5},
		{Key: "k1", Status: StatusFailed, Error: "late"},
		{Status: StatusOK, IPC: 3},
	})
	if err != nil || merged != 1 || skipped != 3 {
		t.Fatalf("merge B = (%d, %d, %v)", merged, skipped, err)
	}
	done := st.Completed()
	if len(done) != 2 || done["k1"] != 1.5 || done["k2"] != 2.5 {
		t.Errorf("completed = %v, want k1→1.5 (first ok kept) and k2→2.5 (failed-then-ok)", done)
	}
	st.Close()

	// A reopened store agrees, and each cell has exactly one ok record.
	recs, corrupt, err := ReadRecords(dir)
	if err != nil || corrupt != 0 {
		t.Fatalf("ReadRecords = (%d recs, %d corrupt, %v)", len(recs), corrupt, err)
	}
	okCount := map[string]int{}
	for _, r := range recs {
		if r.Status == StatusOK {
			okCount[r.Key]++
		}
	}
	if okCount["k1"] != 1 || okCount["k2"] != 1 {
		t.Errorf("ok records per key = %v, want exactly one each", okCount)
	}
}

func TestMergeStoreCollapsesShards(t *testing.T) {
	base := t.TempDir()
	spec := testSpec()
	mk := func(name string, recs ...CellRecord) string {
		dir := filepath.Join(base, name)
		st, err := Create(dir, name, spec, len(recs))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := st.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		st.Close()
		return dir
	}
	a := mk("a",
		CellRecord{Key: "k1", Status: StatusOK, IPC: 1},
		CellRecord{Key: "k2", Status: StatusFailed, Error: "boom"})
	b := mk("b",
		CellRecord{Key: "k2", Status: StatusOK, IPC: 2},
		CellRecord{Key: "k1", Status: StatusOK, IPC: 7}) // dup across shards

	dst, err := Create(filepath.Join(base, "merged"), "m", spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	for _, src := range []string{a, b} {
		if _, _, err := MergeStore(dst, src); err != nil {
			t.Fatal(err)
		}
	}
	done := dst.Completed()
	if len(done) != 2 || done["k1"] != 1 || done["k2"] != 2 {
		t.Errorf("merged completed = %v, want k1→1, k2→2", done)
	}

	// A source directory pinned to a different sweep is refused — the
	// same cannot-mix-sweeps invariant Open enforces.
	other := spec
	other.Name = "other"
	foreign := filepath.Join(base, "foreign")
	st, err := Create(foreign, "f", other, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, _, err := MergeStore(dst, foreign); err == nil || !strings.Contains(err.Error(), "refusing to merge") {
		t.Errorf("MergeStore across sweeps = %v, want refusal", err)
	}
}

func TestStoreSpecMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	if st, err := Create(dir, "id", testSpec(), 2); err != nil {
		t.Fatal(err)
	} else {
		st.Close()
	}
	other := testSpec()
	other.Axes.Schedulers = []string{"CCWS"}
	if _, err := Open(dir, other); err == nil || !strings.Contains(err.Error(), "not the requested spec") {
		t.Errorf("err = %v, want spec-mismatch", err)
	}
	// Creating over an existing sweep is refused.
	if _, err := Create(dir, "id2", testSpec(), 2); err == nil {
		t.Error("Create over an existing manifest should fail")
	}
}
