package sweep

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

// gatedEngine fabricates results instantly except for one cell, which
// blocks until the returned release function is called — the standard
// way these tests pin a sweep (and its store) open.
func gatedEngine(bench, sched string) (*service.Engine, func()) {
	gate := make(chan struct{})
	eng := service.NewEngine(service.Config{
		Workers: 4,
		Run: func(spec service.Spec) ([]byte, error) {
			if spec.Bench == bench && spec.Sched == sched {
				<-gate
			}
			return json.Marshal(harness.CellResult{Bench: spec.Bench, Sched: spec.Sched, IPC: 2})
		},
	})
	return eng, func() { close(gate) }
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestStreamResultsFollowEndsCleanly: the default (follow) stream
// delivers every record and then terminates — a clean EOF when the
// sweep finishes, not an idle hang.
func TestStreamResultsFollowEndsCleanly(t *testing.T) {
	mgr := NewManager(fakeEngine(2*time.Millisecond), t.TempDir(), 1)
	srv := httptest.NewServer(mgr.Handler())
	defer srv.Close()

	st := postSweep(t, srv.URL, `{"name":"follow","axes":{"schedulers":["GTO","CCWS"],"benchmarks":["SYRK","ATAX"]}}`)
	// Attach while the sweep is (likely) still running; the stream must
	// replay what it missed, follow the rest, and end by itself.
	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/sweeps/" + st.ID + "/results")
		if err != nil {
			done <- -1
			return
		}
		defer resp.Body.Close()
		lines := 0
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var rec CellRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Key == "" {
				done <- -1
				return
			}
			lines++
		}
		done <- lines
	}()
	waitDone(t, srv.URL, st.ID)
	select {
	case lines := <-done:
		if lines != 4 {
			t.Fatalf("followed stream delivered %d records, want 4", lines)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("followed stream never reached EOF after the sweep finished")
	}
}

// TestStreamResultsDisconnectDropsSubscriber: a follower that goes
// away is noticed via its request context and unsubscribed promptly —
// not discovered dead at the next append.
func TestStreamResultsDisconnectDropsSubscriber(t *testing.T) {
	eng, release := gatedEngine("ATAX", "GTO")
	mgr := NewManager(eng, t.TempDir(), 0)
	srv := httptest.NewServer(mgr.Handler())
	defer srv.Close()

	st := postSweep(t, srv.URL, `{"name":"gone","axes":{"schedulers":["GTO"],"benchmarks":["SYRK","ATAX"]}}`)
	run, ok := mgr.Get(st.ID)
	if !ok {
		t.Fatal("run not tracked")
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/sweeps/"+st.ID+"/results", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitFor(t, "follower subscribed", func() bool { return run.store.TailSubscribers() == 1 })

	cancel() // the client vanishes mid-follow
	waitFor(t, "subscriber dropped on disconnect", func() bool { return run.store.TailSubscribers() == 0 })

	release()
	waitDone(t, srv.URL, st.ID)
}

// TestStreamAndEndpointsAcrossCompaction: compacting a finished sweep
// through POST /sweeps/{id}/compact changes neither the snapshot nor
// the followed stream, and the segment/store endpoints expose exactly
// what a mirroring peer needs.
func TestStreamAndEndpointsAcrossCompaction(t *testing.T) {
	mgr := NewManager(fakeEngine(0), t.TempDir(), 0)
	srv := httptest.NewServer(mgr.Handler())
	defer srv.Close()

	st := postSweep(t, srv.URL, sweepBody)
	waitDone(t, srv.URL, st.ID)
	base := srv.URL + "/sweeps/" + st.ID
	before := getBody(t, base+"/results?follow=0")
	if len(before) == 0 {
		t.Fatal("empty snapshot before compaction")
	}

	resp, err := http.Post(base+"/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cr struct {
		Compacted bool         `json:"compacted"`
		Segment   *SegmentInfo `json:"segment"`
	}
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil || !cr.Compacted || cr.Segment == nil {
		t.Fatalf("POST /compact = (%+v, %v)", cr, err)
	}
	if cr.Segment.Records != 8 {
		t.Fatalf("segment = %+v, want all 8 records frozen", cr.Segment)
	}

	if after := getBody(t, base+"/results?follow=0"); !bytes.Equal(after, before) {
		t.Error("snapshot changed across compaction")
	}
	// The followed stream of a finished sweep replays everything and
	// ends; its bytes must match the snapshot too.
	if followed := getBody(t, base+"/results"); !bytes.Equal(followed, before) {
		t.Error("followed stream diverged from the snapshot after compaction")
	}

	var names []string
	if err := json.Unmarshal(getBody(t, base+"/segments"), &names); err != nil {
		t.Fatal(err)
	}
	wantNames := map[string]bool{cr.Segment.Name: true, SegmentsFile: true}
	if len(names) != 2 || !wantNames[names[0]] || !wantNames[names[1]] {
		t.Fatalf("segment listing = %v, want the blob and %s", names, SegmentsFile)
	}
	blob := getBody(t, base+"/segments/"+cr.Segment.Name)
	if !bytes.Equal(blob, before) { // uncompressed segment: verbatim stream prefix
		t.Error("served segment blob differs from the stream bytes it froze")
	}
	if resp, err := http.Get(base + "/segments/" + "..%2Fmanifest.json"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("traversal segment name: %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}

	var man Manifest
	if err := json.Unmarshal(getBody(t, base+"/store/manifest"), &man); err != nil || man.SpecKey == "" {
		t.Fatalf("store/manifest = (%+v, %v)", man, err)
	}
	if tail := getBody(t, base+"/store/tail"); len(tail) != 0 {
		t.Errorf("tail after full compaction holds %d bytes, want 0", len(tail))
	}
	// A local (non-distributed) sweep has no journal.
	if resp, err := http.Get(base + "/store/journal"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("store/journal on a local sweep: %d, want 404", resp.StatusCode)
		}
	}
	if resp, err := http.Get(base + "/store/passwd"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown store file: %d, want 404", resp.StatusCode)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSweepManagerAppliesStoreOptions: SetStoreOptions must reach the
// stores of newly started sweeps — the wiring ciaoserve's
// -compact-after flag rides on.
func TestSweepManagerAppliesStoreOptions(t *testing.T) {
	mgr := NewManager(fakeEngine(0), t.TempDir(), 0)
	mgr.SetStoreOptions(StoreOptions{CompactAfter: 4})
	srv := httptest.NewServer(mgr.Handler())
	defer srv.Close()

	st := postSweep(t, srv.URL, sweepBody) // 8 cells → two auto-compactions
	waitDone(t, srv.URL, st.ID)
	run, ok := mgr.Get(st.ID)
	if !ok {
		t.Fatal("run not tracked")
	}
	if segs := run.store.Segments(); len(segs) != 2 {
		t.Fatalf("auto-compaction wrote %d segments, want 2 (8 cells / compact-after 4): %+v", len(segs), segs)
	}
	if snap := mgr.MetricsSnapshot(); snap["store"] == nil {
		t.Fatal("metrics snapshot lacks the store block")
	}
	if got := mgr.storeCounters.Snapshot(); got.Compactions != 2 || got.SegmentsWritten != 2 {
		t.Errorf("store counters = %+v, want 2 compactions", got)
	}
	// The streamed results still hold all 8 records.
	lines := strings.Count(string(getBody(t, srv.URL+"/sweeps/"+st.ID+"/results?follow=0")), "\n")
	if lines != 8 {
		t.Errorf("snapshot holds %d lines, want 8", lines)
	}
}
