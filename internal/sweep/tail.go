package sweep

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// tailSubBuffer is each subscriber's line buffer. A follower that
// falls this many appends behind the broadcast is cut off and resyncs
// from its byte offset instead of backpressuring every other watcher
// (a var so tests can force the lag path cheaply).
var tailSubBuffer = 256

// tailSub is one live follower of the store's append broadcast.
type tailSub struct {
	ch   chan []byte
	once sync.Once
}

// Subscribe registers a follower of the result stream and returns the
// stream's current logical size, the channel future appended lines
// arrive on, and a cancel function (idempotent; always call it). The
// contract that makes N watchers cost one disk reader:
//
//   - replay [yourOffset, offset) via CopyRange, then consume ch;
//   - a closed ch means "resync": the subscription lagged the
//     broadcast or the store closed — call Subscribe again from the
//     byte offset you have counted, which stays valid across
//     compactions because they preserve logical offsets;
//   - ch == nil (with no error) means the store is closed: no line
//     will ever arrive again, so after replaying to offset the stream
//     is complete.
func (s *Store) Subscribe() (offset int64, ch <-chan []byte, cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	offset = s.segBytes + s.tailLen
	if s.f == nil {
		return offset, nil, func() {}
	}
	sub := &tailSub{ch: make(chan []byte, tailSubBuffer)}
	if s.subs == nil {
		s.subs = map[*tailSub]struct{}{}
	}
	s.subs[sub] = struct{}{}
	if s.counters != nil {
		s.counters.TailSubscribers.Inc()
	}
	return offset, sub.ch, func() {
		s.mu.Lock()
		s.dropSubLocked(sub)
		s.mu.Unlock()
	}
}

// publishLocked fans one appended line out to every subscriber. A
// subscriber whose buffer is full is dropped (its channel closed) —
// it resyncs from disk rather than slowing the append path or the
// other watchers. Callers hold s.mu.
func (s *Store) publishLocked(line []byte) {
	for sub := range s.subs {
		select {
		case sub.ch <- line:
		default:
			s.dropSubLocked(sub)
			if s.counters != nil {
				s.counters.TailLagged.Inc()
			}
		}
	}
}

// dropSubLocked unregisters a subscriber and closes its channel
// exactly once. Callers hold s.mu.
func (s *Store) dropSubLocked(sub *tailSub) {
	if _, ok := s.subs[sub]; !ok {
		return
	}
	delete(s.subs, sub)
	sub.once.Do(func() { close(sub.ch) })
	if s.counters != nil {
		s.counters.TailSubscribers.Dec()
	}
}

// TailSubscribers reports the number of live tail followers.
func (s *Store) TailSubscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// LogicalSize is the result stream's current extent in bytes:
// committed segments plus the live tail. Offsets into the stream
// survive compaction.
func (s *Store) LogicalSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segBytes + s.tailLen
}

// copyPart is one CopyRange read planned under the lock: a slice of a
// segment, executed lock-free afterwards because segments are
// immutable.
type copyPart struct {
	seg      SegmentInfo
	from, to int64 // relative to the segment
}

// CopyRange writes logical stream bytes [from, to) to w, splicing
// committed segments (decompressed) and the live tail back into the
// original byte order. The plan — which segments overlap, plus the
// tail portion — is taken under the store lock so a concurrent
// compaction cannot tear it; segment reads then run unlocked since
// blobs never change once committed. Works on a closed store (the
// files remain).
func (s *Store) CopyRange(w io.Writer, from, to int64) error {
	if from < 0 || from > to {
		return fmt.Errorf("sweep: bad copy range [%d, %d)", from, to)
	}
	if from == to {
		return nil
	}
	s.mu.Lock()
	var parts []copyPart
	base := int64(0)
	for _, seg := range s.segs {
		end := base + seg.Bytes
		if end > from && base < to {
			p := copyPart{seg: seg, from: from - base, to: to - base}
			if p.from < 0 {
				p.from = 0
			}
			if p.to > seg.Bytes {
				p.to = seg.Bytes
			}
			parts = append(parts, p)
		}
		base = end
	}
	var tailData []byte
	if to > base {
		data, err := os.ReadFile(s.tailPath())
		if err != nil && !os.IsNotExist(err) {
			s.mu.Unlock()
			return fmt.Errorf("sweep: copy range: %w", err)
		}
		tf, tt := from-base, to-base
		if tf < 0 {
			tf = 0
		}
		if tt > int64(len(data)) {
			tt = int64(len(data))
		}
		if tf < tt {
			tailData = data[tf:tt]
		}
	}
	s.mu.Unlock()

	for _, p := range parts {
		data, err := readSegment(s.backend, p.seg)
		if err != nil {
			return err
		}
		if _, err := w.Write(data[p.from:p.to]); err != nil {
			return err
		}
	}
	if len(tailData) > 0 {
		if _, err := w.Write(tailData); err != nil {
			return err
		}
	}
	return nil
}
