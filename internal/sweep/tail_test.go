package sweep

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// TestSubscribeReceivesAppends: a follower sees every line the append
// path publishes, byte-for-byte, and unsubscribing drops it from the
// hub.
func TestSubscribeReceivesAppends(t *testing.T) {
	st, err := Create(filepath.Join(t.TempDir(), "s"), "id", testSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	off, ch, cancel := st.Subscribe()
	if off != 0 || ch == nil {
		t.Fatalf("Subscribe on a fresh store = (%d, %v)", off, ch)
	}
	if got := st.TailSubscribers(); got != 1 {
		t.Fatalf("TailSubscribers = %d, want 1", got)
	}
	var want bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := st.Append(okRec(fmt.Sprintf("k%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CopyRange(&want, 0, st.LogicalSize()); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	for i := 0; i < 3; i++ {
		got.Write(<-ch)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("broadcast lines differ from the stream on disk")
	}
	cancel()
	cancel() // idempotent
	if got := st.TailSubscribers(); got != 0 {
		t.Errorf("TailSubscribers after cancel = %d, want 0", got)
	}
}

// TestSubscribeLagDropAndResync: a follower that stops draining is cut
// off (channel closed, lag counter bumped) instead of backpressuring
// the append path — and recovers losslessly by resubscribing and
// replaying from the byte offset it had counted.
func TestSubscribeLagDropAndResync(t *testing.T) {
	old := tailSubBuffer
	tailSubBuffer = 2
	defer func() { tailSubBuffer = old }()

	st, err := Create(filepath.Join(t.TempDir(), "s"), "id", testSpec(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var ctr metrics.StoreCounters
	st.SetCounters(&ctr)

	_, ch, cancel := st.Subscribe()
	defer cancel()
	for i := 0; i < 5; i++ { // buffer holds 2: the 3rd publish drops the laggard
		if err := st.Append(okRec(fmt.Sprintf("k%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	var sent int64
	n := 0
	for line := range ch { // drains the 2 buffered lines, then sees the close
		sent += int64(len(line))
		n++
	}
	if n != 2 {
		t.Fatalf("laggard drained %d lines, want the %d buffered", n, 2)
	}
	if got := ctr.Snapshot().TailLagged; got != 1 {
		t.Errorf("tail_lagged = %d, want 1", got)
	}
	if got := st.TailSubscribers(); got != 0 {
		t.Fatalf("TailSubscribers after lag drop = %d, want 0", got)
	}

	// Resync: resubscribe, copy [sent, off), and the stream is whole.
	off, ch2, cancel2 := st.Subscribe()
	defer cancel2()
	var caught bytes.Buffer
	if err := st.CopyRange(&caught, sent, off); err != nil {
		t.Fatal(err)
	}
	var whole bytes.Buffer
	if err := st.CopyRange(&whole, 0, st.LogicalSize()); err != nil {
		t.Fatal(err)
	}
	if sent+int64(caught.Len()) != int64(whole.Len()) {
		t.Errorf("resync: %d drained + %d caught up != %d total", sent, caught.Len(), whole.Len())
	}
	if !bytes.Equal(caught.Bytes(), whole.Bytes()[sent:]) {
		t.Error("resynced bytes differ from the stream")
	}
	_ = ch2
}

// TestSubscribeClosedStore: Close ends every live subscription, and a
// late Subscribe reports end-of-stream (nil channel) instead of
// blocking a follower forever.
func TestSubscribeClosedStore(t *testing.T) {
	st, err := Create(filepath.Join(t.TempDir(), "s"), "id", testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	st.Append(okRec("k1", 1))
	_, ch, cancel := st.Subscribe()
	defer cancel()
	st.Close()
	if _, ok := <-ch; ok {
		t.Error("subscription channel still open after Close")
	}
	off, ch2, cancel2 := st.Subscribe()
	defer cancel2()
	if ch2 != nil {
		t.Error("Subscribe on a closed store returned a live channel")
	}
	if off != st.LogicalSize() {
		t.Errorf("closed-store offset = %d, want the full stream %d", off, st.LogicalSize())
	}
}

// TestCopyRangeSplicesSegmentsAndTail: ranges crossing segment
// boundaries — and landing mid-segment or mid-tail — read back exactly
// the bytes of the logical stream, mixed gzip or not.
func TestCopyRangeSplicesSegmentsAndTail(t *testing.T) {
	st, err := Create(filepath.Join(t.TempDir(), "s"), "id", testSpec(), 9)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	append3 := func(base int) {
		for i := 0; i < 3; i++ {
			if err := st.Append(okRec(fmt.Sprintf("k%d", base+i), float64(base+i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	append3(0)
	st.SetOptions(StoreOptions{GzipSegments: true})
	if _, ok, err := st.Compact(); err != nil || !ok {
		t.Fatalf("Compact 1 = (%v, %v)", ok, err)
	}
	append3(3)
	st.SetOptions(StoreOptions{})
	if _, ok, err := st.Compact(); err != nil || !ok {
		t.Fatalf("Compact 2 = (%v, %v)", ok, err)
	}
	append3(6) // lives in the tail

	whole := streamBytes(t, st)
	if int64(len(whole)) != st.LogicalSize() {
		t.Fatalf("stream is %d bytes, LogicalSize says %d", len(whole), st.LogicalSize())
	}
	segs := st.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %+v, want 2", segs)
	}
	// Probe ranges: inside segment 1, across the 1→2 boundary, across
	// segment 2 into the tail, tail only, everything, empty, past-end.
	cuts := []int64{0, segs[0].Bytes / 2, segs[0].Bytes, segs[0].Bytes + segs[1].Bytes/2,
		segs[0].Bytes + segs[1].Bytes, st.LogicalSize() - 5, st.LogicalSize()}
	for _, from := range cuts {
		for _, to := range cuts {
			if from > to {
				continue
			}
			var buf bytes.Buffer
			if err := st.CopyRange(&buf, from, to); err != nil {
				t.Fatalf("CopyRange(%d, %d): %v", from, to, err)
			}
			if !bytes.Equal(buf.Bytes(), whole[from:to]) {
				t.Errorf("CopyRange(%d, %d) diverged from the stream", from, to)
			}
		}
	}
	// Reading past the end yields what exists, silently — a follower's
	// racing offset must not error.
	var buf bytes.Buffer
	if err := st.CopyRange(&buf, st.LogicalSize()-5, st.LogicalSize()+100); err != nil {
		t.Fatalf("CopyRange past end: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), whole[len(whole)-5:]) {
		t.Error("past-end CopyRange diverged")
	}
	if err := st.CopyRange(&buf, -1, 3); err == nil {
		t.Error("negative range must error")
	}
}

// TestStoreConcurrentAppendAndCompact races appenders, a compaction
// loop, subscribers and range readers against each other — the -race
// workout for the store's locking. Every appended record must survive,
// exactly once.
func TestStoreConcurrentAppendAndCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	st, err := Create(dir, "id", testSpec(), 64)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := st.Append(okRec(fmt.Sprintf("w%d-k%d", w, i), 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // compaction loop
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, _, err := st.Compact(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() { // follower churn: subscribe, drain a little, resync
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			off, ch, cancel := st.Subscribe()
			var buf bytes.Buffer
			if err := st.CopyRange(&buf, 0, off); err != nil {
				t.Error(err)
			}
			if ch != nil {
				select {
				case <-ch:
				default:
				}
			}
			cancel()
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()
	st.Close()

	recs, corrupt, err := ReadRecords(dir)
	if err != nil || corrupt != 0 {
		t.Fatalf("ReadRecords = (%d corrupt, %v)", corrupt, err)
	}
	if len(recs) != writers*perWriter {
		t.Fatalf("store holds %d records, want %d", len(recs), writers*perWriter)
	}
	seen := map[string]int{}
	for _, r := range recs {
		seen[r.Key]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("record %s appears %d times", k, n)
		}
	}
}

// TestMemStoreConcurrent races MemStore appends against snapshot
// reads — the worker-side sink must be safe under -race.
func TestMemStoreConcurrent(t *testing.T) {
	mem := &MemStore{}
	const writers, perWriter = 8, 64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := okRec(fmt.Sprintf("w%d-k%d", w, i), float64(i))
				if i%4 == 0 {
					rec.Status = StatusFailed
				}
				if err := mem.Append(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = mem.Records()
				_ = mem.Completed()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := len(mem.Records()); got != writers*perWriter {
		t.Fatalf("MemStore holds %d records, want %d", got, writers*perWriter)
	}
	if got := len(mem.Completed()); got != writers*(perWriter-perWriter/4) {
		t.Fatalf("MemStore completed %d cells, want %d", got, writers*(perWriter-perWriter/4))
	}
}
