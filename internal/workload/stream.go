package workload

import "repro/internal/memory"

// GlobalBase is the base global address of every benchmark's input.
const GlobalBase memory.Addr = 0x1000_0000

// rng is a splitmix64 PRNG: tiny, fast and deterministic across
// platforms, which matters more here than statistical sophistication.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed*0x9E3779B97F4A7C15 + 1} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// pct rolls a percentage in [0,100).
func (r *rng) pct() int { return int(r.next() % 100) }

// phaseRT is a phase's precomputed runtime view: every per-instruction
// derived quantity (heavy-warp adjustments, effective window geometry,
// slide threshold) folded into constants at stream construction, so
// the generation hot path reads fields instead of re-deriving them.
type phaseRT struct {
	bound   uint64 // cumulative instruction boundary (exclusive)
	memProb int    // global-access probability, per mille
	irrPct  int    // irregular-jump share of addresses, per cent
	winPct  int    // window re-reference share of addresses, per cent
	divPct  int    // fully-diverged share of memory instructions, per cent
	fanout  int    // addresses per memory instruction
	win     uint64 // effective window size in lines
	span    uint64 // streaming span beyond the window, >= 1
	slideAt int    // window touches between one-line slides
}

// WarpStream generates the instruction sequence of one warp, lazily
// and deterministically.
type WarpStream struct {
	spec     Spec
	warpID   int
	heavy    bool // heterogeneity: elevated traffic and window
	rnd      *rng
	issued   uint64    // instructions produced so far
	rt       []phaseRT // precomputed phases, in order
	cur      int       // index of the active phase in rt
	conflict int       // shared-op bank conflict degree, >= 1

	// Window-walk state.
	windowStart  uint64 // line offset of the window within the region
	windowPos    int    // cursor within the window
	windowTouch  int    // touches since the last slide
	streamCursor uint64 // one-touch streaming cursor within the region

	// Region geometry.
	regionLines uint64 // lines per region
	regionBase  memory.Addr
	inputLines  uint64

	// outCursor walks the warp's private output stream (stores write
	// results sequentially, like the y[] of a matrix-vector kernel;
	// they never revisit the reuse window).
	outCursor uint64
}

// OutputBase is the base address of the store output space, disjoint
// from every input region.
const OutputBase memory.Addr = 0x8000_0000

// NewWarpStream builds the stream for warp warpID of spec.
func NewWarpStream(spec Spec, warpID int) *WarpStream {
	phases := spec.effectivePhases()
	bounds := make([]uint64, len(phases))
	var acc float64
	for i, p := range phases {
		acc += p.Frac
		bounds[i] = uint64(acc * float64(spec.InstrPerWarp))
	}
	bounds[len(bounds)-1] = spec.InstrPerWarp // absorb rounding

	inputLines := uint64(spec.InputBytes / memory.LineSize)
	if inputLines == 0 {
		inputLines = 1
	}
	numRegions := spec.NumWarps / spec.RegionSharing
	if numRegions == 0 {
		numRegions = 1
	}
	regionLines := inputLines / uint64(numRegions)
	if regionLines == 0 {
		regionLines = 1
	}
	region := warpID / spec.RegionSharing % numRegions
	base := GlobalBase + memory.Addr(uint64(region)*regionLines*memory.LineSize)

	heavy := spec.HeavyEvery > 0 && warpID%spec.HeavyEvery == spec.HeavyEvery-1
	conflict := spec.ConflictDegree
	if conflict < 1 {
		conflict = 1
	}
	ws := &WarpStream{
		spec:        spec,
		warpID:      warpID,
		heavy:       heavy,
		rnd:         newRNG(spec.Seed ^ (uint64(warpID)+1)*0xA24BAED4963EE407),
		rt:          make([]phaseRT, len(phases)),
		conflict:    conflict,
		regionLines: regionLines,
		regionBase:  base,
		inputLines:  inputLines,
	}
	for i, p := range phases {
		ws.rt[i] = ws.compilePhase(p, bounds[i])
	}
	// Warps sharing a region start phase-shifted within the window so
	// they chase each other's lines rather than marching in lockstep.
	ws.windowPos = (warpID % spec.RegionSharing) * 2
	return ws
}

// WarpID returns the stream's warp.
func (s *WarpStream) WarpID() int { return s.warpID }

// Issued returns how many instructions have been generated.
func (s *WarpStream) Issued() uint64 { return s.issued }

// Remaining returns how many instructions are left.
func (s *WarpStream) Remaining() uint64 { return s.spec.InstrPerWarp - s.issued }

// Done reports stream exhaustion.
func (s *WarpStream) Done() bool { return s.issued >= s.spec.InstrPerWarp }

// compilePhase folds a phase's per-instruction derivations (the heavy
// 1.6× traffic boost, locality shift, effective window and slide
// threshold) into a phaseRT. The arithmetic mirrors what the old
// generation path computed per call; only the evaluation point moves.
func (s *WarpStream) compilePhase(ph Phase, bound uint64) phaseRT {
	rt := phaseRT{bound: bound, memProb: ph.MemProbPerMille(),
		irrPct: ph.IrregularPct, winPct: ph.WindowPct,
		divPct: ph.DivergentPct, fanout: ph.Fanout}
	if rt.fanout <= 0 {
		rt.fanout = 1
	}
	win := uint64(ph.WindowLines)
	if win == 0 {
		win = 1
	}
	reuse := ph.Reuse
	if reuse <= 0 {
		reuse = 1
	}
	if s.heavy {
		// Heavy warps run hotter and are the high-locality ones: more
		// window re-references, less irregularity, a scaled window.
		rt.memProb = rt.memProb * 8 / 5
		if rt.memProb > 980 {
			rt.memProb = 980
		}
		rt.irrPct /= 4
		rt.winPct += 20
		if rt.winPct > 85 {
			rt.winPct = 85
		}
		scale := ph.HeavyScale
		if scale <= 0 {
			scale = 1
		}
		win *= uint64(scale)
		reuse *= HeavyReuseScale
	}
	if win > s.regionLines {
		win = s.regionLines
	}
	rt.win = win
	rt.span = s.regionLines - win
	if rt.span == 0 {
		rt.span = 1
	}
	rt.slideAt = int(win) * reuse
	return rt
}

// Next produces the next instruction; ok=false when exhausted.
func (s *WarpStream) Next() (ins Instruction, ok bool) {
	if s.issued >= s.spec.InstrPerWarp {
		return Instruction{}, false
	}
	s.gen(&ins)
	return ins, true
}

// Fill generates up to len(dst) instructions into dst and returns how
// many it produced (0 when exhausted). Batching lets the SM refill a
// warp's instruction buffer in one call, amortising the phase lookup
// and call overhead of Next across the batch.
func (s *WarpStream) Fill(dst []Instruction) int {
	n := 0
	for n < len(dst) && s.issued < s.spec.InstrPerWarp {
		s.gen(&dst[n])
		n++
	}
	return n
}

// gen writes the next instruction into *ins and advances the stream.
// The caller has checked the stream is not exhausted.
func (s *WarpStream) gen(ins *Instruction) {
	issued := s.issued
	s.issued = issued + 1

	// Barriers fire at fixed indices so all warps of a CTA agree.
	if s.spec.Barriers && s.spec.BarrierEvery > 0 &&
		issued > 0 && issued%s.spec.BarrierEvery == 0 {
		*ins = Instruction{Kind: BarrierOp}
		return
	}

	// issued only grows, so the active phase advances monotonically: a
	// cursor bump replaces the old per-instruction boundary scan.
	for s.cur+1 < len(s.rt) && issued >= s.rt[s.cur].bound {
		s.cur++
	}
	ph := &s.rt[s.cur]

	// Explicit shared-memory traffic.
	if s.spec.SharedPct > 0 && s.rnd.pct() < s.spec.SharedPct {
		*ins = Instruction{Kind: SharedOp, Conflict: s.conflict}
		return
	}

	// Global memory access with probability derived from the phase's
	// thread-level APKI and coalescing fan-out.
	if int(s.rnd.next()%1000) < ph.memProb {
		kind := GlobalLoad
		if s.spec.StorePct > 0 && s.rnd.pct() < s.spec.StorePct {
			kind = GlobalStore
		}
		fan := ph.fanout
		// Divergence bursts: a diverged memory instruction touches the
		// maximum line count. The roll is gated on divPct > 0 so specs
		// without the knob consume exactly the pre-knob RNG sequence.
		if ph.divPct > 0 && s.rnd.pct() < ph.divPct {
			fan = MaxFanout
		}
		*ins = Instruction{Kind: kind, NAddr: uint8(fan)}
		if kind == GlobalStore {
			// Results stream to a private output array; they never
			// touch the reuse window.
			for k := 0; k < fan; k++ {
				line := uint64(s.warpID)<<24 + s.outCursor
				s.outCursor++
				ins.Addrs[k] = OutputBase + memory.Addr(line*memory.LineSize)
			}
			return
		}
		for k := 0; k < fan; k++ {
			ins.Addrs[k] = s.nextAddress(ph)
		}
		return
	}
	*ins = Instruction{Kind: Compute}
}

// nextAddress picks one line: a window re-reference (locality), an
// irregular jump (index-array), or a one-touch streaming line.
func (s *WarpStream) nextAddress(ph *phaseRT) memory.Addr {
	roll := s.rnd.pct()
	switch {
	case roll < ph.irrPct:
		// Index-array style access anywhere in the input.
		line := uint64(s.rnd.intn(int(s.inputLines)))
		return GlobalBase + memory.Addr(line*memory.LineSize)
	case roll < ph.irrPct+ph.winPct:
		return s.windowAddress(ph)
	default:
		// One-touch stream through the region, beyond the window area.
		line := (ph.win + s.streamCursor%ph.span) % s.regionLines
		s.streamCursor++
		return s.regionBase + memory.Addr(line*memory.LineSize)
	}
}

// windowAddress walks the window cyclically, sliding one line every
// win×reuse touches so cold misses stay rare while the phase's
// locality structure persists.
func (s *WarpStream) windowAddress(ph *phaseRT) memory.Addr {
	line := (s.windowStart + uint64(s.windowPos)%ph.win) % s.regionLines
	s.windowPos++
	if uint64(s.windowPos) >= ph.win {
		s.windowPos = 0
	}
	s.windowTouch++
	if s.windowTouch >= ph.slideAt {
		s.windowTouch = 0
		s.windowStart = (s.windowStart + 1) % s.regionLines
	}
	return s.regionBase + memory.Addr(line*memory.LineSize)
}

// Kernel bundles the per-warp streams of one benchmark instance.
type Kernel struct {
	spec    Spec
	streams []*WarpStream
}

// NewKernel validates spec and builds all warp streams.
func NewKernel(spec Spec) (*Kernel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	streams := make([]*WarpStream, spec.NumWarps)
	for w := range streams {
		streams[w] = NewWarpStream(spec, w)
	}
	return &Kernel{spec: spec, streams: streams}, nil
}

// MustKernel is NewKernel for known-good specs (panics on error).
func MustKernel(spec Spec) *Kernel {
	k, err := NewKernel(spec)
	if err != nil {
		panic(err)
	}
	return k
}

// Spec returns the kernel's specification.
func (k *Kernel) Spec() Spec { return k.spec }

// Stream returns warp w's stream.
func (k *Kernel) Stream(w int) *WarpStream { return k.streams[w] }

// NumWarps returns the warp count.
func (k *Kernel) NumWarps() int { return len(k.streams) }

// TotalInstructions returns the aggregate instruction budget.
func (k *Kernel) TotalInstructions() uint64 {
	return uint64(k.spec.NumWarps) * k.spec.InstrPerWarp
}
