package workload

import (
	"fmt"
	"slices"
	"sync"
)

// Default simulation scale. Experiments override InstrPerWarp for
// longer runs; the default keeps unit tests fast while still letting
// the interference dynamics develop.
const (
	// DefaultWarps is the Table I maximum resident warps per SM
	// (1536 threads / 32).
	DefaultWarps = 48
	// DefaultWarpsPerCTA groups warps into 6 CTAs.
	DefaultWarpsPerCTA = 8
	// DefaultInstrPerWarp is the per-warp instruction budget.
	DefaultInstrPerWarp = 6000
	// DefaultSeed seeds all suite streams.
	DefaultSeed = 0x5EED_C1A0
)

// buildSuite constructs the 21 Table II specs. It runs exactly once
// (see cachedSuite); all public accessors hand out defensive copies of
// the memoized result.
func buildSuite() []Spec {
	mk := func(name string, class Class, apki, inputBytes, nwrp int, fsmem float64, barriers bool) Spec {
		s := Spec{
			Name:          name,
			Class:         class,
			APKI:          apki,
			InputBytes:    inputBytes,
			NwrpBest:      nwrp,
			FsMem:         fsmem,
			Barriers:      barriers,
			NumWarps:      DefaultWarps,
			WarpsPerCTA:   DefaultWarpsPerCTA,
			InstrPerWarp:  DefaultInstrPerWarp,
			RegionSharing: 1, // private footprints: throttling a warp removes its window
			StorePct:      5,
			Seed:          DefaultSeed,
		}
		// MapReduce kernels (Mars) emit far more intermediate writes
		// than the streaming PolyBench/Rodinia reads.
		switch name {
		case "II", "PVC", "SS", "SM", "WC":
			s.StorePct = 15
		}
		// Coalescing quality: PolyBench column sweeps and MapReduce
		// hash scatters fan one warp access out over several lines;
		// compute-intensive kernels coalesce well. Every fifth warp is
		// a heavy high-locality one (see Spec.HeavyEvery).
		switch class {
		case LWS, SWS:
			s.Fanout = 4
		default:
			s.Fanout = 2
		}
		s.HeavyEvery = 5
		if barriers {
			s.BarrierEvery = 1500
		}
		if fsmem > 0 {
			s.SharedPct = 4
			s.ConflictDegree = 2
		}
		return s
	}

	const (
		kb = 1 << 10
		mb = 1 << 20
	)

	atax := mk("ATAX", LWS, 64, 64*mb, 2, 0, false)
	// §V-C: ATAX has a memory-intensive first phase and a
	// compute-intensive second phase within one kernel.
	atax.Phases = []Phase{
		{Frac: 0.3, APKI: 190, WindowLines: 16, Reuse: 4, WindowPct: 40, IrregularPct: 25, Fanout: 4, HeavyScale: 8},
		{Frac: 0.7, APKI: 10, WindowLines: 8, Reuse: 8, WindowPct: 60, IrregularPct: 4, Fanout: 1, HeavyScale: 2},
	}

	kmn := mk("KMN", LWS, 46, 168*kb, 4, 0.01, true)
	// KMN's redirected warps thrash even the shared-memory cache
	// (Figure 10): all warps hash-scatter over one small input whose
	// 1344 lines exceed the shared-memory cache, so redirection alone
	// cannot help and selective throttling (CIAO-T/C) must.
	kmn.RegionSharing = 48
	kmn.Phases = []Phase{{Frac: 1, APKI: 46, WindowLines: 16, Reuse: 3, WindowPct: 30, IrregularPct: 45, Fanout: 8, HeavyScale: 12}}

	backprop := mk("Backprop", CI, 3, 5*mb, 36, 0.13, true)
	// Figure 1a: a few high-locality (heavy) warps interfere fiercely
	// with one another while the kernel is otherwise compute-bound.
	backprop.Phases = []Phase{{Frac: 1, APKI: 3, WindowLines: 8, Reuse: 12, WindowPct: 55, IrregularPct: 2, Fanout: 2, HeavyScale: 8}}

	syrk := mk("SYRK", SWS, 94, 512*kb, 6, 0, false)

	specs := []Spec{
		atax,
		mk("BICG", LWS, 64, 64*mb, 2, 0, false),
		mk("MVT", LWS, 64, 64*mb, 2, 0, false),
		kmn,
		mk("Kmeans", LWS, 85, 101*mb, 2, 0, true),
		mk("GESUMMV", SWS, 136, 128*mb, 2, 0, false),
		mk("SYR2K", SWS, 108, 48*mb, 6, 0, false),
		syrk,
		mk("II", SWS, 75, 28*mb, 4, 0, true),
		mk("PVC", SWS, 64, 13*mb, 48, 0.33, true),
		mk("SS", SWS, 34, 23*mb, 48, 0.50, true),
		mk("SM", SWS, 140, 1*mb, 48, 0.01, true),
		mk("WC", SWS, 19, 88*kb, 48, 0.01, true),
		mk("Gaussian", CI, 18, 339*kb, 48, 0, false),
		mk("2DCONV", CI, 9, 64*mb, 36, 0, false),
		mk("CORR", CI, 10, 2*mb, 48, 0, false),
		backprop,
		mk("Hotspot", CI, 1, 2*mb, 48, 0.19, true),
		mk("Lud", CI, 2, 25*kb, 38, 0.50, true),
		mk("NN", CI, 8, 334*kb, 48, 0, false),
		mk("NW", CI, 5, 32*mb, 48, 0.35, true),
	}
	return specs
}

// The suite is immutable after construction, so it is built once and
// shared. Sweep expansion calls ByName per cell (O(n·m) rebuilds
// before memoization); the index map makes each lookup O(1).
var (
	cachedSuite = sync.OnceValue(buildSuite)
	suiteIndex  = sync.OnceValue(func() map[string]int {
		idx := make(map[string]int, len(cachedSuite()))
		for i, s := range cachedSuite() {
			idx[s.Name] = i
		}
		return idx
	})
)

// copySpec returns a mutation-safe copy: Phases is the only reference
// field of Spec.
func copySpec(s Spec) Spec {
	s.Phases = slices.Clone(s.Phases)
	return s
}

// Suite returns specs for all 21 benchmarks of Table II with their
// published APKI, input size, Best-SWL warp count, shared-memory
// fraction, barrier behaviour and class. Pattern parameters
// (window/reuse/irregularity/sharing) are the synthetic-model knobs
// chosen per class, with per-benchmark adjustments where the paper
// describes distinctive behaviour (ATAX's two phases, Backprop's
// high-locality interfering warp groups, KMN's shared-memory-thrashing
// redirection). Callers own the returned slice and may mutate it.
func Suite() []Spec {
	src := cachedSuite()
	out := make([]Spec, len(src))
	for i, s := range src {
		out[i] = copySpec(s)
	}
	return out
}

// ByName returns the spec with the given name: a Table II benchmark,
// or a "synthetic:" descriptor parsed into a generated spec (see
// ParseSynthetic).
func ByName(name string) (Spec, error) {
	if IsSynthetic(name) {
		d, err := ParseSynthetic(name)
		if err != nil {
			return Spec{}, err
		}
		return d.Spec(), nil
	}
	if i, ok := suiteIndex()[name]; ok {
		return copySpec(cachedSuite()[i]), nil
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// MemoryIntensive returns the LWS and SWS specs — the set Figures 11
// and 12 sweep.
func MemoryIntensive() []Spec {
	var out []Spec
	for _, s := range cachedSuite() {
		if s.Class == LWS || s.Class == SWS {
			out = append(out, copySpec(s))
		}
	}
	return out
}

// SensitivitySet returns the seven benchmarks of Figure 11:
// ATAX, GESUMMV, SYR2K, SYRK, BICG, MVT and Kmeans.
func SensitivitySet() []Spec {
	names := []string{"ATAX", "GESUMMV", "SYR2K", "SYRK", "BICG", "MVT", "Kmeans"}
	out := make([]Spec, 0, len(names))
	for _, n := range names {
		s, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

// ByClass filters the suite.
func ByClass(c Class) []Spec {
	var out []Spec
	for _, s := range cachedSuite() {
		if s.Class == c {
			out = append(out, copySpec(s))
		}
	}
	return out
}
