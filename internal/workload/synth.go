package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/memory"
)

// SyntheticPrefix marks a benchmark name as a generator descriptor
// rather than a Table II kernel. Everything after the prefix is a
// comma-separated key=value list, e.g.
//
//	synthetic:class=LWS,apki=80,window=24,reuse=6,irr_pct=30,seed=7
//
// Unset keys take class-derived defaults. The descriptor is parsed and
// validated by ParseSynthetic; Descriptor.Name renders the canonical
// full form (every effective key, fixed order, normalised values), so
// any two spellings of the same workload share one canonical name —
// and therefore one content-addressed cache/store key.
const SyntheticPrefix = "synthetic:"

// IsSynthetic reports whether name is a synthetic-workload descriptor.
func IsSynthetic(name string) bool { return strings.HasPrefix(name, SyntheticPrefix) }

// SynthPhase is one phase of a multi-phase descriptor: a fraction of
// the instruction budget with its own intensity and coalescing.
type SynthPhase struct {
	Frac   float64
	APKI   int
	Fanout int // 0 = descriptor-level fanout
}

// Descriptor is a validated synthetic-workload parameterisation. All
// fields are effective values (defaults already applied); Spec()
// lowers it to a workload.Spec and Name() renders the canonical
// benchmark name.
type Descriptor struct {
	Class      Class
	APKI       int     // accesses per kilo thread-instruction
	InputKB    int     // input size in KiB
	Warps      int     // resident warps
	CTA        int     // warps per CTA
	Instr      int     // instructions per warp
	Fanout     int     // lines per memory instruction (1..MaxFanout)
	Window     int     // re-reference window, lines
	Reuse      int     // slides once per Window×Reuse touches
	WindowPct  int     // % of addresses re-referencing the window
	IrrPct     int     // % of addresses falling anywhere in the input
	DivPct     int     // % of memory instructions fully diverged
	HeavyEvery int     // every k-th warp is heavy; 0 = homogeneous
	HeavyScale int     // heavy-warp window multiplier
	Sharing    int     // warps sharing one access region
	StorePct   int     // % of global accesses that are stores
	SharedPct  int     // % of instructions doing explicit shared ops
	Conflict   int     // bank-conflict degree of those ops
	Barrier    uint64  // barrier every N instructions; 0 = none
	Nwrp       int     // Best-SWL static limit
	FsMem      float64 // fraction of shared memory the kernel claims
	Seed       uint64
	Phases     []SynthPhase // empty = single phase
}

// descriptor key order of the canonical form. Phases, when present,
// renders last.
var synthKeys = []string{
	"class", "apki", "input_kb", "warps", "cta", "instr", "fanout",
	"window", "reuse", "window_pct", "irr_pct", "div_pct",
	"heavy_every", "heavy_scale", "sharing", "store_pct", "shared_pct",
	"conflict", "barrier", "nwrp", "fsmem", "seed",
}

// ParseSynthetic parses and validates a synthetic descriptor name.
func ParseSynthetic(name string) (Descriptor, error) {
	if !IsSynthetic(name) {
		return Descriptor{}, fmt.Errorf("workload: %q lacks the %q prefix", name, SyntheticPrefix)
	}
	body := name[len(SyntheticPrefix):]

	// Collect raw assignments first: class must be known before
	// class-derived defaults can be applied.
	raw := map[string]string{}
	if body != "" {
		for _, item := range strings.Split(body, ",") {
			k, v, ok := strings.Cut(item, "=")
			if !ok || k == "" || v == "" {
				return Descriptor{}, fmt.Errorf("workload: synthetic descriptor item %q is not key=value", item)
			}
			if _, dup := raw[k]; dup {
				return Descriptor{}, fmt.Errorf("workload: synthetic descriptor repeats %q", k)
			}
			raw[k] = v
		}
	}

	d := Descriptor{
		Class:      LWS,
		APKI:       64,
		InputKB:    1024,
		Warps:      DefaultWarps,
		CTA:        DefaultWarpsPerCTA,
		Instr:      DefaultInstrPerWarp,
		HeavyEvery: 5,
		Sharing:    1,
		StorePct:   5,
		Conflict:   2,
		Seed:       DefaultSeed,
	}
	if v, ok := raw["class"]; ok {
		switch v {
		case "LWS":
			d.Class = LWS
		case "SWS":
			d.Class = SWS
		case "CI":
			d.Class = CI
		default:
			return Descriptor{}, fmt.Errorf("workload: synthetic class %q (want LWS, SWS or CI)", v)
		}
	}
	// Locality knobs default to the class template, like suite kernels.
	tpl := classPhase(d.Class)
	d.Fanout = tpl.Fanout
	d.Window = tpl.WindowLines
	d.Reuse = tpl.Reuse
	d.WindowPct = tpl.WindowPct
	d.IrrPct = tpl.IrregularPct
	d.HeavyScale = tpl.HeavyScale

	for k, v := range raw {
		var err error
		switch k {
		case "class":
			// handled above
		case "apki":
			d.APKI, err = parseInt(v)
		case "input_kb":
			d.InputKB, err = parseInt(v)
		case "warps":
			d.Warps, err = parseInt(v)
		case "cta":
			d.CTA, err = parseInt(v)
		case "instr":
			d.Instr, err = parseInt(v)
		case "fanout":
			d.Fanout, err = parseInt(v)
		case "window":
			d.Window, err = parseInt(v)
		case "reuse":
			d.Reuse, err = parseInt(v)
		case "window_pct":
			d.WindowPct, err = parseInt(v)
		case "irr_pct":
			d.IrrPct, err = parseInt(v)
		case "div_pct":
			d.DivPct, err = parseInt(v)
		case "heavy_every":
			d.HeavyEvery, err = parseInt(v)
		case "heavy_scale":
			d.HeavyScale, err = parseInt(v)
		case "sharing":
			d.Sharing, err = parseInt(v)
		case "store_pct":
			d.StorePct, err = parseInt(v)
		case "shared_pct":
			d.SharedPct, err = parseInt(v)
		case "conflict":
			d.Conflict, err = parseInt(v)
		case "barrier":
			d.Barrier, err = strconv.ParseUint(v, 10, 64)
		case "nwrp":
			d.Nwrp, err = parseInt(v)
		case "fsmem":
			d.FsMem, err = strconv.ParseFloat(v, 64)
		case "seed":
			d.Seed, err = strconv.ParseUint(v, 10, 64)
		case "phases":
			d.Phases, err = parsePhases(v)
		default:
			return Descriptor{}, fmt.Errorf("workload: unknown synthetic key %q", k)
		}
		if err != nil {
			return Descriptor{}, fmt.Errorf("workload: synthetic %s=%q: %v", k, v, err)
		}
	}
	if _, set := raw["nwrp"]; !set {
		d.Nwrp = max(1, d.Warps/8)
	}
	if err := d.Validate(); err != nil {
		return Descriptor{}, err
	}
	return d, nil
}

func parseInt(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// parsePhases parses "frac:apki[:fanout]" terms joined by "+", e.g.
// "0.3:190:4+0.7:10:1".
func parsePhases(v string) ([]SynthPhase, error) {
	terms := strings.Split(v, "+")
	out := make([]SynthPhase, 0, len(terms))
	for _, t := range terms {
		parts := strings.Split(t, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("phase %q is not frac:apki[:fanout]", t)
		}
		frac, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("phase %q: %v", t, err)
		}
		apki, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("phase %q: %v", t, err)
		}
		p := SynthPhase{Frac: frac, APKI: apki}
		if len(parts) == 3 {
			if p.Fanout, err = strconv.Atoi(parts[2]); err != nil {
				return nil, fmt.Errorf("phase %q: %v", t, err)
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// Validate checks the descriptor's ranges. It is called by
// ParseSynthetic; direct Descriptor constructions should call it too.
func (d Descriptor) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("workload: synthetic descriptor: "+format, args...)
	}
	if d.APKI < 1 || d.APKI > 1000 {
		return fail("apki %d outside [1,1000]", d.APKI)
	}
	if d.InputKB*1024 < memory.LineSize || d.InputKB > 1<<20 {
		return fail("input_kb %d outside [1,%d]", d.InputKB, 1<<20)
	}
	if d.Warps < 1 || d.Warps > 1024 {
		return fail("warps %d outside [1,1024]", d.Warps)
	}
	if d.CTA < 1 || d.Warps%d.CTA != 0 {
		return fail("%d warps not divisible into CTAs of %d", d.Warps, d.CTA)
	}
	if d.Instr < 1 || d.Instr > 10_000_000 {
		return fail("instr %d outside [1,1e7]", d.Instr)
	}
	if d.Fanout < 1 || d.Fanout > MaxFanout {
		return fail("fanout %d outside [1,%d]", d.Fanout, MaxFanout)
	}
	if d.Window < 1 || d.Window > 1<<20 {
		return fail("window %d outside [1,2^20]", d.Window)
	}
	if d.Reuse < 1 || d.Reuse > 1<<20 {
		return fail("reuse %d outside [1,2^20]", d.Reuse)
	}
	for _, pct := range []struct {
		k string
		v int
	}{
		{"window_pct", d.WindowPct}, {"irr_pct", d.IrrPct},
		{"div_pct", d.DivPct}, {"store_pct", d.StorePct},
		{"shared_pct", d.SharedPct},
	} {
		if pct.v < 0 || pct.v > 100 {
			return fail("%s %d outside [0,100]", pct.k, pct.v)
		}
	}
	if d.WindowPct+d.IrrPct > 100 {
		return fail("window_pct+irr_pct %d exceeds 100", d.WindowPct+d.IrrPct)
	}
	if d.HeavyEvery < 0 {
		return fail("heavy_every %d negative", d.HeavyEvery)
	}
	if d.HeavyScale < 1 || d.HeavyScale > 64 {
		return fail("heavy_scale %d outside [1,64]", d.HeavyScale)
	}
	if d.Sharing < 1 || d.Sharing > d.Warps {
		return fail("sharing %d outside [1,warps=%d]", d.Sharing, d.Warps)
	}
	if d.Conflict < 1 || d.Conflict > 32 {
		return fail("conflict %d outside [1,32]", d.Conflict)
	}
	if d.Nwrp < 1 || d.Nwrp > d.Warps {
		return fail("nwrp %d outside [1,warps=%d]", d.Nwrp, d.Warps)
	}
	if d.FsMem < 0 || d.FsMem > 0.95 {
		return fail("fsmem %g outside [0,0.95]", d.FsMem)
	}
	if len(d.Phases) > 8 {
		return fail("%d phases exceeds 8", len(d.Phases))
	}
	var frac float64
	for i, p := range d.Phases {
		if p.Frac <= 0 || p.Frac > 1 {
			return fail("phase %d frac %g outside (0,1]", i, p.Frac)
		}
		if p.APKI < 1 || p.APKI > 1000 {
			return fail("phase %d apki %d outside [1,1000]", i, p.APKI)
		}
		if p.Fanout < 0 || p.Fanout > MaxFanout {
			return fail("phase %d fanout %d outside [0,%d]", i, p.Fanout, MaxFanout)
		}
		frac += p.Frac
	}
	if len(d.Phases) > 0 && (frac < 0.999 || frac > 1.001) {
		return fail("phase fractions sum to %g, want 1", frac)
	}
	return nil
}

// Name renders the canonical descriptor name: every key in fixed
// order with its effective value, phases last when present. Parsing
// the canonical name reproduces the descriptor exactly, so equal
// workloads always canonicalise to equal names (and equal cache keys).
func (d Descriptor) Name() string {
	var b strings.Builder
	b.WriteString(SyntheticPrefix)
	for i, k := range synthKeys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		switch k {
		case "class":
			b.WriteString(d.Class.String())
		case "apki":
			b.WriteString(strconv.Itoa(d.APKI))
		case "input_kb":
			b.WriteString(strconv.Itoa(d.InputKB))
		case "warps":
			b.WriteString(strconv.Itoa(d.Warps))
		case "cta":
			b.WriteString(strconv.Itoa(d.CTA))
		case "instr":
			b.WriteString(strconv.Itoa(d.Instr))
		case "fanout":
			b.WriteString(strconv.Itoa(d.Fanout))
		case "window":
			b.WriteString(strconv.Itoa(d.Window))
		case "reuse":
			b.WriteString(strconv.Itoa(d.Reuse))
		case "window_pct":
			b.WriteString(strconv.Itoa(d.WindowPct))
		case "irr_pct":
			b.WriteString(strconv.Itoa(d.IrrPct))
		case "div_pct":
			b.WriteString(strconv.Itoa(d.DivPct))
		case "heavy_every":
			b.WriteString(strconv.Itoa(d.HeavyEvery))
		case "heavy_scale":
			b.WriteString(strconv.Itoa(d.HeavyScale))
		case "sharing":
			b.WriteString(strconv.Itoa(d.Sharing))
		case "store_pct":
			b.WriteString(strconv.Itoa(d.StorePct))
		case "shared_pct":
			b.WriteString(strconv.Itoa(d.SharedPct))
		case "conflict":
			b.WriteString(strconv.Itoa(d.Conflict))
		case "barrier":
			b.WriteString(strconv.FormatUint(d.Barrier, 10))
		case "nwrp":
			b.WriteString(strconv.Itoa(d.Nwrp))
		case "fsmem":
			b.WriteString(strconv.FormatFloat(d.FsMem, 'g', -1, 64))
		case "seed":
			b.WriteString(strconv.FormatUint(d.Seed, 10))
		}
	}
	if len(d.Phases) > 0 {
		b.WriteString(",phases=")
		for i, p := range d.Phases {
			if i > 0 {
				b.WriteByte('+')
			}
			fan := p.Fanout
			if fan == 0 {
				fan = d.Fanout
			}
			fmt.Fprintf(&b, "%s:%d:%d",
				strconv.FormatFloat(p.Frac, 'g', -1, 64), p.APKI, fan)
		}
	}
	return b.String()
}

// CanonicalSynthetic parses name and returns its canonical form. Cache
// and store keys hash the canonical form, so descriptor spellings that
// produce the same workload share one content address.
func CanonicalSynthetic(name string) (string, error) {
	d, err := ParseSynthetic(name)
	if err != nil {
		return "", err
	}
	return d.Name(), nil
}

// Spec lowers the descriptor to a runnable workload.Spec. The phases
// are always explicit so every locality knob applies regardless of
// class defaults.
func (d Descriptor) Spec() Spec {
	s := Spec{
		Name:           d.Name(),
		Class:          d.Class,
		APKI:           d.APKI,
		InputBytes:     d.InputKB * 1024,
		NwrpBest:       d.Nwrp,
		FsMem:          d.FsMem,
		Barriers:       d.Barrier > 0,
		NumWarps:       d.Warps,
		WarpsPerCTA:    d.CTA,
		InstrPerWarp:   uint64(d.Instr),
		Fanout:         d.Fanout,
		HeavyEvery:     d.HeavyEvery,
		RegionSharing:  d.Sharing,
		SharedPct:      d.SharedPct,
		ConflictDegree: d.Conflict,
		StorePct:       d.StorePct,
		BarrierEvery:   d.Barrier,
		Seed:           d.Seed,
	}
	phases := d.Phases
	if len(phases) == 0 {
		phases = []SynthPhase{{Frac: 1, APKI: d.APKI, Fanout: d.Fanout}}
	}
	for _, p := range phases {
		fan := p.Fanout
		if fan == 0 {
			fan = d.Fanout
		}
		s.Phases = append(s.Phases, Phase{
			Frac:         p.Frac,
			APKI:         p.APKI,
			Fanout:       fan,
			WindowLines:  d.Window,
			Reuse:        d.Reuse,
			WindowPct:    d.WindowPct,
			IrregularPct: d.IrrPct,
			DivergentPct: d.DivPct,
			HeavyScale:   d.HeavyScale,
		})
	}
	return s
}
