package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"strings"
	"testing"
)

// streamDigest hashes every instruction of every warp of a kernel.
func streamDigest(t *testing.T, spec Spec) [32]byte {
	t.Helper()
	k, err := NewKernel(spec)
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	h := sha256.New()
	var buf [8]byte
	for w := 0; w < k.NumWarps(); w++ {
		st := k.Stream(w)
		for {
			ins, ok := st.Next()
			if !ok {
				break
			}
			h.Write([]byte{byte(ins.Kind), ins.NAddr, byte(ins.Conflict)})
			for _, a := range ins.AddrSlice() {
				binary.LittleEndian.PutUint64(buf[:], uint64(a))
				h.Write(buf[:])
			}
		}
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func TestSyntheticDeterminism(t *testing.T) {
	names := []string{
		"synthetic:",
		"synthetic:class=SWS,apki=120,window=32,reuse=8,seed=42",
		"synthetic:div_pct=35,irr_pct=40,window_pct=30,fanout=2",
		"synthetic:phases=0.3:190:4+0.7:10:1,heavy_every=3,sharing=8",
		"synthetic:class=CI,apki=4,shared_pct=10,conflict=4,barrier=1000",
	}
	for _, name := range names {
		s1, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		s2, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q) again: %v", name, err)
		}
		d1, d2 := streamDigest(t, s1), streamDigest(t, s2)
		if d1 != d2 {
			t.Errorf("%q: two builds of the same descriptor diverge", name)
		}
	}
}

func TestSyntheticSeedChangesStream(t *testing.T) {
	a, err := ByName("synthetic:seed=1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("synthetic:seed=2")
	if err != nil {
		t.Fatal(err)
	}
	if streamDigest(t, a) == streamDigest(t, b) {
		t.Error("different seeds produced identical streams")
	}
}

func TestSyntheticCanonicalName(t *testing.T) {
	// Two spellings of the same workload must canonicalise identically.
	c1, err := CanonicalSynthetic("synthetic:apki=80,class=LWS,window=16")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CanonicalSynthetic("synthetic:window=16,apki=80")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("canonical names differ:\n  %s\n  %s", c1, c2)
	}
	// The canonical form is a fixed point of canonicalisation.
	c3, err := CanonicalSynthetic(c1)
	if err != nil {
		t.Fatalf("canonical form failed to parse: %v", err)
	}
	if c3 != c1 {
		t.Errorf("canonicalisation is not idempotent:\n  %s\n  %s", c1, c3)
	}
	if !strings.Contains(c1, "apki=80") || !strings.Contains(c1, "window=16") {
		t.Errorf("canonical form lost explicit params: %s", c1)
	}
}

func TestSyntheticSpecValidates(t *testing.T) {
	s, err := ByName("synthetic:phases=0.5:200:8+0.5:5:1,div_pct=25")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
	if len(s.Phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(s.Phases))
	}
	for i, p := range s.Phases {
		if p.DivergentPct != 25 {
			t.Errorf("phase %d DivergentPct = %d, want 25", i, p.DivergentPct)
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	cases := []struct {
		name string
		bad  string // substring expected in the error; "" = must parse
	}{
		{"synthetic:", ""},
		{"synthetic:apki=64", ""},
		{"synthetic:class=SWS,div_pct=100", ""},
		{"synthetic:warps=8,cta=8,sharing=8", ""},
		{"synthetic:apki=0", "apki"},
		{"synthetic:apki=1001", "apki"},
		{"synthetic:input_kb=0", "input_kb"},
		{"synthetic:warps=0", "warps"},
		{"synthetic:warps=10,cta=4", "divisible"},
		{"synthetic:instr=0", "instr"},
		{"synthetic:fanout=0", "fanout"},
		{"synthetic:fanout=9", "fanout"},
		{"synthetic:window=0", "window"},
		{"synthetic:reuse=0", "reuse"},
		{"synthetic:window_pct=101", "window_pct"},
		{"synthetic:irr_pct=-1", "irr_pct"},
		{"synthetic:div_pct=101", "div_pct"},
		{"synthetic:window_pct=60,irr_pct=50", "exceeds 100"},
		{"synthetic:heavy_scale=0", "heavy_scale"},
		{"synthetic:sharing=0", "sharing"},
		{"synthetic:sharing=49", "sharing"},
		{"synthetic:store_pct=200", "store_pct"},
		{"synthetic:conflict=0", "conflict"},
		{"synthetic:nwrp=0", "nwrp"},
		{"synthetic:nwrp=99", "nwrp"},
		{"synthetic:fsmem=0.99", "fsmem"},
		{"synthetic:seed=abc", "seed"},
		{"synthetic:phases=0.5:100", "fractions"},
		{"synthetic:phases=1:0", "apki"},
		{"synthetic:phases=1:100:9", "fanout"},
		{"synthetic:phases=nope", "phase"},
		{"synthetic:bogus=1", "unknown"},
		{"synthetic:apki=1,apki=2", "repeats"},
		{"synthetic:apki", "key=value"},
		{"synthetic:=5", "key=value"},
	}
	for _, c := range cases {
		_, err := ParseSynthetic(c.name)
		if c.bad == "" {
			if err != nil {
				t.Errorf("%q: unexpected error: %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%q: expected error containing %q, got nil", c.name, c.bad)
		} else if !strings.Contains(err.Error(), c.bad) {
			t.Errorf("%q: error %q does not mention %q", c.name, err, c.bad)
		}
	}
}

func TestByNameRejectsNonSynthetic(t *testing.T) {
	if _, err := ByName("no-such-kernel"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestSuiteImmutable is the memoization regression test: mutating a
// returned spec (including its Phases) must not leak into later calls.
func TestSuiteImmutable(t *testing.T) {
	first := Suite()
	firstATAX, err := ByName("ATAX")
	if err != nil {
		t.Fatal(err)
	}

	// Vandalise everything the accessors hand out.
	for i := range first {
		first[i].Name = "corrupted"
		first[i].APKI = -1
		for j := range first[i].Phases {
			first[i].Phases[j].APKI = -999
		}
	}
	firstATAX.Phases[0].WindowLines = -5
	for _, s := range ByClass(LWS) {
		s.Seed = 0
		if len(s.Phases) > 0 {
			s.Phases[0].Frac = -1
		}
	}
	for _, s := range MemoryIntensive() {
		if len(s.Phases) > 0 {
			s.Phases[0].Reuse = -7
		}
	}

	again := Suite()
	if len(again) != 21 {
		t.Fatalf("suite has %d specs, want 21", len(again))
	}
	for _, s := range again {
		if s.Name == "corrupted" || s.APKI < 0 {
			t.Fatalf("suite spec %q mutated through a caller's copy", s.Name)
		}
		for _, p := range s.Phases {
			if p.APKI < 0 || p.Frac < 0 || p.WindowLines < 0 || p.Reuse < 0 {
				t.Fatalf("suite spec %q phases mutated through a caller's copy", s.Name)
			}
		}
	}
	atax, err := ByName("ATAX")
	if err != nil {
		t.Fatal(err)
	}
	if atax.Phases[0].WindowLines != 16 {
		t.Fatalf("ATAX phase mutated: WindowLines = %d", atax.Phases[0].WindowLines)
	}
}
